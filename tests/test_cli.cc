/**
 * @file
 * End-to-end tests of the rmp command-line binary (robustness satellite):
 * malformed invocations must print the usage text and exit non-zero;
 * well-formed ones must succeed and honor --trace/--stats. Shells out to
 * the real binary (path injected as RMP_BIN by CMake).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace
{

struct RunResult
{
    int status = -1;
    std::string output; ///< stdout + stderr interleaved
};

/** Run `RMP_BIN <args>` capturing combined output and exit status. */
RunResult
run(const std::string &args)
{
    std::string cmd = std::string(RMP_BIN) + " " + args + " 2>&1";
    RunResult r;
    FILE *p = popen(cmd.c_str(), "r");
    if (!p)
        return r;
    std::array<char, 4096> buf;
    size_t n;
    while ((n = fread(buf.data(), 1, buf.size(), p)) > 0)
        r.output.append(buf.data(), n);
    int rc = pclose(p);
    r.status = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
    return r;
}

bool
mentionsUsage(const std::string &out)
{
    return out.find("usage: rmp") != std::string::npos;
}

} // anonymous namespace

TEST(Cli, NoCommandFailsWithUsage)
{
    RunResult r = run("");
    EXPECT_NE(r.status, 0);
    EXPECT_TRUE(mentionsUsage(r.output)) << r.output;
}

TEST(Cli, UnknownCommandFailsWithUsage)
{
    RunResult r = run("frobnicate");
    EXPECT_NE(r.status, 0);
    EXPECT_TRUE(mentionsUsage(r.output)) << r.output;
    EXPECT_NE(r.output.find("unknown command"), std::string::npos);
}

TEST(Cli, MissingSubcommandArgsFailWithUsage)
{
    for (const char *cmd : {"upaths", "leakage", "contracts", "bugs",
                            "lint", "synth", "upaths tiny3"}) {
        RunResult r = run(cmd);
        EXPECT_NE(r.status, 0) << cmd;
        EXPECT_TRUE(mentionsUsage(r.output)) << cmd << ": " << r.output;
    }
}

TEST(Cli, UnknownFlagFailsWithUsage)
{
    RunResult r = run("bugs tiny3 --frob");
    EXPECT_NE(r.status, 0);
    EXPECT_TRUE(mentionsUsage(r.output)) << r.output;
    EXPECT_NE(r.output.find("unknown option '--frob'"), std::string::npos);
}

TEST(Cli, FlagMissingArgumentFailsWithUsage)
{
    RunResult r = run("bugs tiny3 --budget");
    EXPECT_NE(r.status, 0);
    EXPECT_TRUE(mentionsUsage(r.output)) << r.output;
    EXPECT_NE(r.output.find("requires an argument"), std::string::npos);
}

TEST(Cli, UnknownDuvFailsNonZero)
{
    RunResult r = run("bugs nosuchduv");
    EXPECT_NE(r.status, 0);
    EXPECT_NE(r.output.find("unknown DUV"), std::string::npos);
}

TEST(Cli, HelpSucceeds)
{
    RunResult r = run("help");
    EXPECT_EQ(r.status, 0);
    EXPECT_TRUE(mentionsUsage(r.output));
}

TEST(Cli, ListSucceeds)
{
    RunResult r = run("list");
    EXPECT_EQ(r.status, 0);
    EXPECT_NE(r.output.find("tiny3"), std::string::npos);
}

TEST(Cli, BugsTiny3Succeeds)
{
    RunResult r = run("bugs tiny3");
    EXPECT_EQ(r.status, 0) << r.output;
    EXPECT_NE(r.output.find("candidate PLs reachable"), std::string::npos);
}

TEST(Cli, SynthWithTraceAndStats)
{
    std::string trace =
        ::testing::TempDir() + "/rmp_cli_trace.json";
    std::remove(trace.c_str());
    RunResult r = run("synth tiny3 --trace " + trace + " --stats");
    EXPECT_EQ(r.status, 0) << r.output;
    EXPECT_NE(r.output.find("uPATH"), std::string::npos);
    EXPECT_NE(r.output.find("Run metrics"), std::string::npos);
    // The trace file exists and is chrome-trace shaped.
    std::FILE *f = std::fopen(trace.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string content;
    std::array<char, 4096> buf;
    size_t n;
    while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0)
        content.append(buf.data(), n);
    std::fclose(f);
    EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(content.find("\"sat-solve\""), std::string::npos);
    EXPECT_NE(content.find("\"bmc-unroll\""), std::string::npos);
    EXPECT_NE(content.find("\"pool-lane\""), std::string::npos);
    std::remove(trace.c_str());
}

TEST(Cli, CheckVerdictsAuditsEveryVerdictCleanly)
{
    // The acceptance gate for the verdict-audit layer: a full audited
    // synthesis run replays every reachable witness and DRAT-checks
    // every solver-backed unsat frame, with zero mismatches, and exits 0.
    RunResult r = run("synth tiny3 --check-verdicts=all --jobs 4");
    EXPECT_EQ(r.status, 0) << r.output;
    EXPECT_NE(r.output.find("verdict audit:"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("0 mismatch(es)"), std::string::npos)
        << r.output;
    // The audit actually ran: at least one replay and one proof check.
    EXPECT_EQ(r.output.find("0 witness replay(s)"), std::string::npos)
        << r.output;
    EXPECT_EQ(r.output.find("0 DRAT-closed"), std::string::npos)
        << r.output;
}

TEST(Cli, SimLanesRejectsUnsupportedWidthsAtTheBoundary)
{
    // Invalid lane widths must die at argument parsing — exit 2 with
    // the usage text naming the supported widths — not deep inside the
    // engine as an assertion.
    for (const char *bad : {"0", "17", "99", "abc", "8x", ""}) {
        RunResult r = run("bugs tiny3 --sim-lanes '" +
                          std::string(bad) + "'");
        EXPECT_EQ(r.status, 2) << "--sim-lanes " << bad;
        EXPECT_TRUE(mentionsUsage(r.output))
            << "--sim-lanes " << bad << ": " << r.output;
        EXPECT_NE(r.output.find("supported widths"), std::string::npos)
            << "--sim-lanes " << bad << ": " << r.output;
    }
}

TEST(Cli, SimBackendRejectsUnknownAndAcceptsKnown)
{
    RunResult bad = run("bugs tiny3 --sim-backend bogus");
    EXPECT_EQ(bad.status, 2);
    EXPECT_TRUE(mentionsUsage(bad.output)) << bad.output;

    RunResult simd = run("bugs tiny3 --sim-backend simd");
    EXPECT_EQ(simd.status, 0) << simd.output;
    RunResult tape = run("bugs tiny3 --sim-backend tape");
    EXPECT_EQ(tape.status, 0) << tape.output;
    // Backends are bit-identical, so the reports must agree too.
    EXPECT_EQ(simd.output, tape.output);
}

TEST(Cli, CheckVerdictsRejectsUnknownMode)
{
    RunResult r = run("synth tiny3 --check-verdicts=frob");
    EXPECT_NE(r.status, 0);
    EXPECT_TRUE(mentionsUsage(r.output)) << r.output;
}

TEST(Cli, StatsJsonIsWellFormedSummary)
{
    RunResult r = run("bugs tiny3 --stats --json");
    EXPECT_EQ(r.status, 0) << r.output;
    // The summary is the last line of stdout: a flat JSON object in the
    // BENCH_*.json schema with the "bench" key first.
    size_t pos = r.output.rfind("{\"bench\": \"rmp-bugs\"");
    ASSERT_NE(pos, std::string::npos) << r.output;
    EXPECT_NE(r.output.find("\"pool\": {", pos), std::string::npos);
    EXPECT_NE(r.output.find("\"metrics\": {", pos), std::string::npos);
    EXPECT_NE(r.output.find("\"design\": \"tiny3\"", pos),
              std::string::npos);
}
