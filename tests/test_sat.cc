/**
 * @file
 * Unit and property tests for the CDCL SAT solver: basic semantics,
 * assumptions, incrementality, budgets, and randomized cross-checks
 * against brute-force enumeration on small formulas.
 */

#include <gtest/gtest.h>

#include <random>

#include "sat/solver.hh"

using namespace rmp::sat;

namespace
{

Lit
pos(Var v)
{
    return Lit(v, false);
}

Lit
neg(Var v)
{
    return Lit(v, true);
}

} // namespace

TEST(Sat, TrivialSat)
{
    Solver s;
    Var a = s.newVar();
    s.addClause(pos(a));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
}

TEST(Sat, TrivialUnsat)
{
    Solver s;
    Var a = s.newVar();
    s.addClause(pos(a));
    EXPECT_FALSE(s.addClause(neg(a)));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, UnitPropagationChain)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.addClause(pos(a));
    s.addClause(neg(a), pos(b)); // a -> b
    s.addClause(neg(b), pos(c)); // b -> c
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
    EXPECT_TRUE(s.modelValue(b));
    EXPECT_TRUE(s.modelValue(c));
}

TEST(Sat, XorChainRequiresSearch)
{
    // (a xor b), (b xor c), (a xor c) is unsat.
    Solver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    auto add_xor = [&](Var x, Var y) {
        s.addClause(pos(x), pos(y));
        s.addClause(neg(x), neg(y));
    };
    add_xor(a, b);
    add_xor(b, c);
    add_xor(a, c);
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, AssumptionsSelectBranch)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    s.addClause(pos(a), pos(b));
    EXPECT_EQ(s.solve({neg(a)}), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(b));
    EXPECT_EQ(s.solve({neg(b)}), SatResult::Sat);
    EXPECT_TRUE(s.modelValue(a));
    EXPECT_EQ(s.solve({neg(a), neg(b)}), SatResult::Unsat);
    // The formula itself is still satisfiable afterwards (incremental).
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, ContradictoryAssumptions)
{
    Solver s;
    Var a = s.newVar();
    s.addClause(pos(a), neg(a)); // tautology, removed
    EXPECT_EQ(s.solve({pos(a), neg(a)}), SatResult::Unsat);
    EXPECT_EQ(s.solve({pos(a)}), SatResult::Sat);
}

TEST(Sat, DuplicateAndTautologyClauses)
{
    Solver s;
    Var a = s.newVar(), b = s.newVar();
    EXPECT_TRUE(s.addClause({pos(a), pos(a), pos(b)}));
    EXPECT_TRUE(s.addClause({pos(a), neg(a)}));
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, PigeonHole3Into2IsUnsat)
{
    // PHP(3,2): 3 pigeons, 2 holes. x[p][h].
    Solver s;
    Var x[3][2];
    for (auto &row : x)
        for (auto &v : row)
            v = s.newVar();
    // Each pigeon in some hole.
    for (int p = 0; p < 3; p++)
        s.addClause(pos(x[p][0]), pos(x[p][1]));
    // No two pigeons share a hole.
    for (int h = 0; h < 2; h++)
        for (int p = 0; p < 3; p++)
            for (int q = p + 1; q < 3; q++)
                s.addClause(neg(x[p][h]), neg(x[q][h]));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, PigeonHole5Into4IsUnsat)
{
    Solver s;
    const int P = 5, H = 4;
    std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
    for (int p = 0; p < P; p++)
        for (int h = 0; h < H; h++)
            x[p][h] = s.newVar();
    for (int p = 0; p < P; p++) {
        std::vector<Lit> cl;
        for (int h = 0; h < H; h++)
            cl.push_back(pos(x[p][h]));
        s.addClause(cl);
    }
    for (int h = 0; h < H; h++)
        for (int p = 0; p < P; p++)
            for (int q = p + 1; q < P; q++)
                s.addClause(neg(x[p][h]), neg(x[q][h]));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Sat, BudgetYieldsUndetermined)
{
    // A hard instance with a 1-conflict budget must give up.
    Solver s;
    const int P = 7, H = 6;
    std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
    for (int p = 0; p < P; p++)
        for (int h = 0; h < H; h++)
            x[p][h] = s.newVar();
    for (int p = 0; p < P; p++) {
        std::vector<Lit> cl;
        for (int h = 0; h < H; h++)
            cl.push_back(pos(x[p][h]));
        s.addClause(cl);
    }
    for (int h = 0; h < H; h++)
        for (int p = 0; p < P; p++)
            for (int q = p + 1; q < P; q++)
                s.addClause(neg(x[p][h]), neg(x[q][h]));
    SatBudget tight;
    tight.maxConflicts = 1;
    EXPECT_EQ(s.solve({}, tight), SatResult::Undetermined);
    // With no budget it finishes.
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

namespace
{

/** Brute-force satisfiability of a CNF over <= 16 vars. */
bool
bruteForceSat(int nvars, const std::vector<std::vector<Lit>> &cnf)
{
    for (uint32_t m = 0; m < (1u << nvars); m++) {
        bool all = true;
        for (const auto &cl : cnf) {
            bool any = false;
            for (Lit l : cl) {
                bool v = (m >> l.var()) & 1;
                if (v != l.sign()) {
                    any = true;
                    break;
                }
            }
            if (!any) {
                all = false;
                break;
            }
        }
        if (all)
            return true;
    }
    return false;
}

} // namespace

class SatRandomCnf : public ::testing::TestWithParam<int>
{
};

TEST_P(SatRandomCnf, MatchesBruteForce)
{
    std::mt19937 rng(GetParam());
    const int nvars = 8;
    std::uniform_int_distribution<int> nclauses_dist(5, 40);
    std::uniform_int_distribution<int> len_dist(1, 4);
    std::uniform_int_distribution<int> var_dist(0, nvars - 1);
    std::uniform_int_distribution<int> sign_dist(0, 1);

    for (int iter = 0; iter < 20; iter++) {
        int nclauses = nclauses_dist(rng);
        std::vector<std::vector<Lit>> cnf;
        for (int i = 0; i < nclauses; i++) {
            std::vector<Lit> cl;
            int len = len_dist(rng);
            for (int j = 0; j < len; j++)
                cl.push_back(Lit(var_dist(rng), sign_dist(rng)));
            cnf.push_back(cl);
        }
        Solver s;
        for (int v = 0; v < nvars; v++)
            s.newVar();
        bool trivially_unsat = false;
        for (const auto &cl : cnf)
            if (!s.addClause(cl))
                trivially_unsat = true;
        bool expect = bruteForceSat(nvars, cnf);
        if (trivially_unsat) {
            EXPECT_FALSE(expect);
            continue;
        }
        SatResult r = s.solve();
        EXPECT_EQ(r, expect ? SatResult::Sat : SatResult::Unsat)
            << "seed " << GetParam() << " iter " << iter;
        if (r == SatResult::Sat) {
            // The model must actually satisfy the formula.
            for (const auto &cl : cnf) {
                bool any = false;
                for (Lit l : cl)
                    if (s.modelValue(l.var()) != l.sign())
                        any = true;
                EXPECT_TRUE(any);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomCnf, ::testing::Range(1, 9));
