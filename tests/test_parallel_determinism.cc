/**
 * @file
 * Determinism of the parallel evaluation path: the full RTL2MμPATH +
 * SynthLC flow on Tiny3 must produce bit-identical results with jobs=1
 * and jobs=4 — the same μPATHs (PL sets, schedules, revisit classes, HB
 * edges), the same decisions, the same per-step verdict tallies, and the
 * same rendered SynthLC leakage signatures. The engine pool guarantees
 * this by fixing the lane count independently of the thread count
 * (DESIGN.md §"Parallel evaluation").
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "designs/dcache.hh"
#include "designs/tiny3.hh"
#include "report/report.hh"
#include "rtl2mupath/synth.hh"
#include "synthlc/synthlc.hh"

using namespace rmp;
using namespace rmp::designs;
using namespace rmp::r2m;
using namespace rmp::uhb;

namespace
{

/** Canonical rendering of one full flow run (order-stable by design). */
struct FlowResult
{
    std::string paths;       ///< every IUV's μPATHs + decisions, rendered
    std::string signatures;  ///< sorted SynthLC signature renderings
    std::vector<uint64_t> tallies; ///< per-step (q, r, u, undet) tuples
};

FlowResult
runFlow(bool zeroSkip, unsigned jobs, bool closure)
{
    Harness hx(buildTiny3({.withZeroSkip = zeroSkip}));
    SynthesisConfig scfg;
    scfg.jobs = jobs;
    scfg.closureChecks = closure;
    scfg.revisitCounts = closure;
    MuPathSynthesizer synth(hx, scfg);
    slc::SynthLcConfig lcfg;
    lcfg.jobs = jobs;
    slc::SynthLc slc(hx, lcfg);

    std::vector<InstrId> ids;
    for (InstrId i = 0; i < hx.duv().instrs.size(); i++)
        ids.push_back(i);
    auto all = synth.synthesizeAll(ids);

    FlowResult out;
    std::vector<std::string> sigs;
    for (InstrId i : ids) {
        const InstrPaths &p = all.at(i);
        out.paths += report::renderInstrPaths(hx, p);
        out.paths += report::renderDecisions(hx, p);
        for (const auto &s : slc.analyze(i, p.decisions, ids))
            sigs.push_back(slc.render(s));
    }
    std::sort(sigs.begin(), sigs.end());
    for (const auto &s : sigs)
        out.signatures += s + "\n";
    for (const auto &st : synth.stepStats()) {
        out.tallies.push_back(st.queries);
        out.tallies.push_back(st.reachable);
        out.tallies.push_back(st.unreachable);
        out.tallies.push_back(st.undetermined);
    }
    out.tallies.push_back(slc.stats().queries);
    out.tallies.push_back(slc.stats().reachable);
    out.tallies.push_back(slc.stats().unreachable);
    out.tallies.push_back(slc.stats().undetermined);
    out.tallies.push_back(slc.stats().simHits);
    return out;
}

} // namespace

TEST(ParallelDeterminism, Tiny3SemiFormalFlowIsJobsInvariant)
{
    FlowResult serial = runFlow(false, 1, false);
    FlowResult threaded = runFlow(false, 4, false);
    EXPECT_EQ(serial.paths, threaded.paths);
    EXPECT_EQ(serial.signatures, threaded.signatures);
    EXPECT_EQ(serial.tallies, threaded.tallies);
    EXPECT_FALSE(serial.paths.empty());
}

TEST(ParallelDeterminism, Tiny3ClosureFlowIsJobsInvariant)
{
    // The formal profile (closure queries + revisit counts) exercises
    // every batched step plus the memoized global revisit/edge covers.
    FlowResult serial = runFlow(true, 1, true);
    FlowResult threaded = runFlow(true, 4, true);
    EXPECT_EQ(serial.paths, threaded.paths);
    EXPECT_EQ(serial.signatures, threaded.signatures);
    EXPECT_EQ(serial.tallies, threaded.tallies);
    // The zero-skip core leaks: signatures must actually exist here.
    EXPECT_FALSE(serial.signatures.empty());
}

TEST(ParallelDeterminism, QueryCacheHitsAreNonZeroOnFullSynthesis)
{
    // Closure-mode synthesis re-issues the per-instruction global
    // revisit/no-edge covers once per Reachable PL Set; every repeat must
    // be served by the query cache, never a solver. The cache DUV's LDREQ
    // has several Reachable PL Sets (hit / miss / queued-miss) sharing
    // PLs, so repeats are guaranteed.
    Harness hx(buildDcache());
    SynthesisConfig scfg;
    scfg.closureChecks = true;
    scfg.jobs = 2;
    MuPathSynthesizer synth(hx, scfg);
    InstrPaths r = synth.synthesize(hx.duv().instrId("LDREQ"));
    EXPECT_GT(r.paths.size(), 1u);
    exec::PoolStats s = synth.pool().stats();
    EXPECT_GT(s.cache.hits, 0u)
        << "repeated covers should replay from the query cache";
    EXPECT_GT(s.cache.misses, 0u);
    EXPECT_EQ(s.cache.misses, s.engine.queries);
}
