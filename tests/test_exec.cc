/**
 * @file
 * Tests for the parallel evaluation layer (src/exec): engine-pool eval
 * vs. a direct engine, cross-query memoization (hits replay identical
 * results, including witnesses), in-batch deduplication, jobs-invariant
 * batch results, SAT-budget exhaustion surfacing end-to-end as
 * Undetermined, and parallelFor coverage.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "exec/engine_pool.hh"
#include "rtlir/builder.hh"

using namespace rmp;
using namespace rmp::bmc;
using namespace rmp::exec;
using namespace rmp::prop;

namespace
{

/** A free-running 4-bit counter design. */
struct CounterDesign
{
    Design d{"counter"};
    SigId cnt;

    CounterDesign()
    {
        Builder b(d);
        RegSig c = b.regh("cnt", 4, 0);
        b.assign(c, c.q + b.lit(4, 1));
        b.finalize();
        cnt = c.q.id;
    }
};

/**
 * A hard instance for a conflict-limited solver: a registered 16x16-bit
 * multiplier product of two free inputs, covered against a fixed
 * semiprime constant. Finding (or refuting) a factorization needs far
 * more than one conflict.
 */
struct FactorDesign
{
    Design d{"factor"};
    SigId prod;

    FactorDesign()
    {
        Builder b(d);
        Sig a = b.input("a", 16);
        Sig x = b.input("b", 16);
        RegSig p = b.regh("prod", 16, 0);
        b.assign(p, a * x);
        b.finalize();
        prod = p.q.id;
    }

    /** 251 * 241: a semiprime that fits 16 bits. */
    static constexpr uint64_t kSemiprime = 60491;
};

EngineConfig
counterCfg()
{
    EngineConfig cfg;
    cfg.bound = 10;
    return cfg;
}

void
expectSameResult(const CoverResult &a, const CoverResult &b, SigId watch)
{
    ASSERT_EQ(a.outcome, b.outcome);
    if (a.outcome != Outcome::Reachable)
        return;
    EXPECT_EQ(a.witness.matchFrame, b.witness.matchFrame);
    ASSERT_EQ(a.witness.trace.numCycles(), b.witness.trace.numCycles());
    for (size_t t = 0; t < a.witness.trace.numCycles(); t++)
        EXPECT_EQ(a.witness.trace.value(t, watch),
                  b.witness.trace.value(t, watch))
            << "cycle " << t;
}

} // namespace

TEST(Exec, EvalMatchesDirectEngine)
{
    CounterDesign cd;
    Engine eng(cd.d, counterCfg());
    CoverResult direct = eng.cover(pEq(cd.cnt, 7), {});

    EnginePool pool(cd.d, counterCfg(), ExecConfig{1, 2});
    CoverResult pooled = pool.eval(Query{pEq(cd.cnt, 7), {}, -1});
    expectSameResult(direct, pooled, cd.cnt);
    EXPECT_EQ(pooled.witness.matchFrame, 7u);
}

TEST(Exec, RepeatedQueryHitsCacheAndReplaysWitness)
{
    CounterDesign cd;
    EnginePool pool(cd.d, counterCfg(), ExecConfig{1, 2});
    CoverResult first = pool.eval(Query{pEq(cd.cnt, 7), {}, -1});
    CoverResult again = pool.eval(Query{pEq(cd.cnt, 7), {}, -1});
    expectSameResult(first, again, cd.cnt);

    PoolStats s = pool.stats();
    EXPECT_EQ(s.engine.queries, 1u); // one solver evaluation...
    EXPECT_EQ(s.cache.hits, 1u);     // ...and one memoized replay
    EXPECT_EQ(s.cache.misses, 1u);
    EXPECT_EQ(s.cache.entries, 1u);
}

TEST(Exec, DistinctAssumesAndFramesAreDistinctCacheKeys)
{
    CounterDesign cd;
    EnginePool pool(cd.d, counterCfg(), ExecConfig{1, 2});
    CoverResult plain = pool.eval(Query{pEq(cd.cnt, 7), {}, -1});
    // Same cover under a tautological assume: a different cache key even
    // though the verdict cannot change.
    ExprRef tauto = pOr(pEq(cd.cnt, 7), pNot(pEq(cd.cnt, 7)));
    CoverResult assumed = pool.eval(Query{pEq(cd.cnt, 7), {tauto}, -1});
    // Same cover pinned to a fixed frame: also a different query.
    CoverResult pinned = pool.eval(Query{pEq(cd.cnt, 7), {}, 7});
    EXPECT_EQ(plain.outcome, Outcome::Reachable);
    EXPECT_EQ(assumed.outcome, Outcome::Reachable);
    EXPECT_EQ(pinned.outcome, Outcome::Reachable);
    PoolStats s = pool.stats();
    EXPECT_EQ(s.cache.hits, 0u);
    EXPECT_EQ(s.cache.misses, 3u);
    EXPECT_EQ(s.cache.entries, 3u);
}

TEST(Exec, BatchDeduplicatesAndPreservesOrder)
{
    CounterDesign cd;
    EnginePool pool(cd.d, counterCfg(), ExecConfig{4, 2});
    std::vector<Query> qs;
    for (unsigned v = 0; v < 4; v++)
        qs.push_back(Query{pEq(cd.cnt, v + 3), {}, -1});
    // Duplicates of the first and third query, plus an unreachable one.
    qs.push_back(Query{pEq(cd.cnt, 3), {}, -1});
    qs.push_back(Query{pEq(cd.cnt, 5), {}, -1});
    qs.push_back(Query{pEq(cd.cnt, 12), {}, -1}); // beyond bound 10

    std::vector<CoverResult> rs = pool.evalBatch(qs);
    ASSERT_EQ(rs.size(), qs.size());
    for (unsigned v = 0; v < 4; v++) {
        ASSERT_EQ(rs[v].outcome, Outcome::Reachable) << v;
        EXPECT_EQ(rs[v].witness.matchFrame, v + 3);
    }
    expectSameResult(rs[0], rs[4], cd.cnt);
    expectSameResult(rs[2], rs[5], cd.cnt);
    EXPECT_EQ(rs[6].outcome, Outcome::Unreachable);

    PoolStats s = pool.stats();
    EXPECT_EQ(s.engine.queries, 5u); // 4 distinct reachable + 1 unreachable
    EXPECT_EQ(s.cache.hits, 2u);     // the two in-batch duplicates
}

TEST(Exec, BatchResultsAreJobsInvariant)
{
    CounterDesign cd;
    std::vector<Query> qs;
    for (unsigned v = 0; v < 10; v++)
        qs.push_back(Query{pEq(cd.cnt, v), {}, -1});

    EnginePool serial(cd.d, counterCfg(), ExecConfig{1, 4});
    EnginePool threaded(cd.d, counterCfg(), ExecConfig{4, 4});
    std::vector<CoverResult> a = serial.evalBatch(qs);
    std::vector<CoverResult> b = threaded.evalBatch(qs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++)
        expectSameResult(a[i], b[i], cd.cnt);
    EXPECT_EQ(serial.stats().engine.queries,
              threaded.stats().engine.queries);
}

TEST(Exec, BudgetExhaustionYieldsUndeterminedEndToEnd)
{
    FactorDesign fd;
    EngineConfig cfg;
    cfg.bound = 3;
    cfg.budget.maxConflicts = 1;

    // Direct engine: the budget-limited cover is Undetermined and tallied.
    Engine eng(fd.d, cfg);
    CoverResult direct =
        eng.cover(pEq(fd.prod, FactorDesign::kSemiprime), {});
    EXPECT_EQ(direct.outcome, Outcome::Undetermined);
    EXPECT_EQ(eng.stats().queries, 1u);
    EXPECT_EQ(eng.stats().undetermined, 1u);

    // Through the pool: same verdict, tallied in the merged EngineStats,
    // and the memoized verdict replays as a cache hit (the budget is part
    // of the cache key, so it cannot leak into differently-budgeted runs).
    EnginePool pool(fd.d, cfg, ExecConfig{2, 2});
    Query q{pEq(fd.prod, FactorDesign::kSemiprime), {}, -1};
    CoverResult pooled = pool.eval(q);
    EXPECT_EQ(pooled.outcome, Outcome::Undetermined);
    CoverResult cached = pool.eval(q);
    EXPECT_EQ(cached.outcome, Outcome::Undetermined);
    PoolStats s = pool.stats();
    EXPECT_EQ(s.engine.queries, 1u);
    EXPECT_EQ(s.engine.undetermined, 1u);
    EXPECT_EQ(s.cache.hits, 1u);

    // A roomier budget is a different key and gets its own evaluation.
    EngineConfig roomy = cfg;
    roomy.budget.maxConflicts = 2'000'000;
    EnginePool pool2(fd.d, roomy, ExecConfig{2, 2});
    CoverResult solved = pool2.eval(q);
    EXPECT_EQ(solved.outcome, Outcome::Reachable);
}

TEST(Exec, ParallelForRunsEveryIndexExactlyOnce)
{
    CounterDesign cd;
    EnginePool pool(cd.d, counterCfg(), ExecConfig{4, 2});
    std::vector<std::atomic<int>> seen(257);
    for (auto &s : seen)
        s = 0;
    pool.parallelFor(seen.size(), [&](size_t i) { seen[i]++; });
    for (size_t i = 0; i < seen.size(); i++)
        EXPECT_EQ(seen[i].load(), 1) << i;
}

TEST(Exec, DigestCollisionIsDetectedNotAliased)
{
    // Regression for the cache-collision latent defect: the 128-bit
    // QueryKey is a hash digest, so two distinct queries CAN land on the
    // same key. Force that case by hand — same QueryKey, different
    // canonical bytes — and require the cache to keep the two results
    // separate, serve each probe its own verdict, and count the
    // collision, instead of silently aliasing one query's verdict to the
    // other.
    QueryCache cache;
    QueryKey key{0x1234, 0x5678};
    bmc::CoverResult reach;
    reach.outcome = Outcome::Reachable;
    bmc::CoverResult unreach;
    unreach.outcome = Outcome::Unreachable;

    cache.put(key, "query-A", reach);
    CachedResult out;
    // Probe with different bytes under the same digest: a miss, counted
    // as a collision — NOT query A's verdict.
    EXPECT_FALSE(cache.get(key, "query-B", &out));
    EXPECT_EQ(cache.stats().collisions, 1u);

    // Publish B under the same digest; both now coexist and resolve to
    // their own verdicts.
    cache.put(key, "query-B", unreach);
    ASSERT_TRUE(cache.get(key, "query-A", &out));
    EXPECT_EQ(out.outcome, Outcome::Reachable);
    ASSERT_TRUE(cache.get(key, "query-B", &out));
    EXPECT_EQ(out.outcome, Outcome::Unreachable);
    EXPECT_EQ(cache.stats().entries, 2u);

    // Re-publishing an existing entry is a no-op, not a new collision.
    cache.put(key, "query-A", reach);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(Exec, KeyBytesCanonicalization)
{
    // The canonical bytes must be insensitive to exactly what the digest
    // is insensitive to (assume order, DAG sharing) and sensitive to
    // everything else.
    CounterDesign cd;
    EngineConfig cfg = counterCfg();
    uint64_t fp = designFingerprint(cd.d);
    auto a1 = pEq(cd.cnt, 1);
    auto a2 = pEq(cd.cnt, 2);
    std::string fwd = makeQueryKeyBytes(fp, cfg, pTrue(), {a1, a2}, -1);
    std::string rev = makeQueryKeyBytes(fp, cfg, pTrue(), {a2, a1}, -1);
    EXPECT_EQ(fwd, rev);

    // Structurally identical expressions with different node sharing
    // serialize identically (tree expansion).
    auto shared = pAnd(a1, a1);
    auto unshared = pAnd(pEq(cd.cnt, 1), pEq(cd.cnt, 1));
    EXPECT_EQ(makeQueryKeyBytes(fp, cfg, shared, {}, -1),
              makeQueryKeyBytes(fp, cfg, unshared, {}, -1));

    // Different queries differ.
    EXPECT_NE(makeQueryKeyBytes(fp, cfg, a1, {}, -1),
              makeQueryKeyBytes(fp, cfg, a2, {}, -1));
    EXPECT_NE(makeQueryKeyBytes(fp, cfg, a1, {}, -1),
              makeQueryKeyBytes(fp, cfg, a1, {}, 0));
    EngineConfig other = cfg;
    other.budget.maxConflicts = 1;
    EXPECT_NE(makeQueryKeyBytes(fp, cfg, a1, {}, -1),
              makeQueryKeyBytes(fp, other, a1, {}, -1));
}
