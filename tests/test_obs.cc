/**
 * @file
 * Tests for the observability subsystem (src/obs): registry metric
 * kinds, labels, snapshots and in-place reset; histogram bucketing;
 * span recording and chrome-trace JSON shape; the disabled-mode
 * fast path; exact counter totals under concurrent hammering; progress
 * sink plumbing; and end-to-end cache-counter accuracy under a
 * multi-threaded engine-pool load (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine_pool.hh"
#include "obs/obs.hh"
#include "obs/progress.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "rtlir/builder.hh"

using namespace rmp;
using namespace rmp::obs;

namespace
{

/** Reset global obs state around each test. */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setEnabled(false);
        Registry::global().reset();
        clearTrace();
    }
    void
    TearDown() override
    {
        setEnabled(false);
        setProgressSink(nullptr);
        Registry::global().reset();
        clearTrace();
    }
};

} // anonymous namespace

TEST_F(ObsTest, CounterGaugeHistogramBasics)
{
    Registry reg;
    Counter &c = reg.counter("c");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);

    Gauge &g = reg.gauge("g");
    g.set(-7);
    g.add(10);
    EXPECT_EQ(g.value(), 3);

    Histogram &h = reg.histogram("h");
    h.record(0);
    h.record(1);
    h.record(100);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 101u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 101.0 / 3.0);
}

TEST_F(ObsTest, HistogramLog2Buckets)
{
    Histogram h;
    h.record(0);  // bucket 0
    h.record(1);  // bucket 0
    h.record(2);  // bucket 1
    h.record(3);  // bucket 1
    h.record(4);  // bucket 2
    h.record(~0ULL); // clamped to the last bucket
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
}

TEST_F(ObsTest, LabelsDistinguishSeriesAndSortCanonically)
{
    Registry reg;
    Counter &a = reg.counter("m", {{"design", "tiny3"}, {"iuv", "MUL"}});
    // Same labels in the opposite order: identical series.
    Counter &b = reg.counter("m", {{"iuv", "MUL"}, {"design", "tiny3"}});
    Counter &c = reg.counter("m", {{"iuv", "ADD"}, {"design", "tiny3"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);
    a.add(2);
    c.add(1);
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].labels, "design=tiny3,iuv=ADD");
    EXPECT_EQ(snap[0].value, 1);
    EXPECT_EQ(snap[1].labels, "design=tiny3,iuv=MUL");
    EXPECT_EQ(snap[1].value, 2);
}

TEST_F(ObsTest, ResetZeroesInPlaceWithoutInvalidatingHandles)
{
    Registry reg;
    Counter &c = reg.counter("c");
    Histogram &h = reg.histogram("h");
    c.add(9);
    h.record(16);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
    // The old handles keep working after reset.
    c.add(1);
    h.record(2);
    EXPECT_EQ(c.value(), 1u);
    EXPECT_EQ(h.count(), 1u);
}

TEST_F(ObsTest, SnapshotReportsKindsAndAggregates)
{
    Registry reg;
    reg.counter("z.count").add(3);
    reg.gauge("a.gauge").set(-2);
    Histogram &h = reg.histogram("m.hist");
    h.record(10);
    h.record(30);
    auto snap = reg.snapshot(); // sorted by (name, labels)
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a.gauge");
    EXPECT_EQ(snap[0].kind, Sample::Kind::Gauge);
    EXPECT_EQ(snap[0].value, -2);
    EXPECT_EQ(snap[1].name, "m.hist");
    EXPECT_EQ(snap[1].kind, Sample::Kind::Histogram);
    EXPECT_EQ(snap[1].value, 2);
    EXPECT_EQ(snap[1].sum, 40u);
    EXPECT_EQ(snap[1].max, 30u);
    EXPECT_EQ(snap[2].name, "z.count");
    EXPECT_EQ(snap[2].kind, Sample::Kind::Counter);
}

TEST_F(ObsTest, DisabledSpansRecordNothing)
{
    ASSERT_FALSE(enabled());
    {
        Span s("invisible", "test");
        s.arg("k", 1);
        EXPECT_FALSE(s.active());
    }
    EXPECT_EQ(eventCount(), 0u);
}

TEST_F(ObsTest, SpansRecordAndExportChromeTraceJson)
{
    setEnabled(true);
    {
        Span outer("outer", "test");
        outer.arg("n", 42);
        Span inner("inner", "test");
    }
    {
        ScopedTrack t(3);
        setTrackName(3, "lane-3");
        Span s("on-lane", "test");
    }
    setEnabled(false);
    EXPECT_EQ(eventCount(), 3u);

    std::string json = traceJson();
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"on-lane\""), std::string::npos);
    EXPECT_NE(json.find("\"n\": 42"), std::string::npos);
    // The named track appears as thread-name metadata with tid 3.
    EXPECT_NE(json.find("\"lane-3\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST_F(ObsTest, ClearTraceDropsEvents)
{
    setEnabled(true);
    { Span s("x", "test"); }
    setEnabled(false);
    EXPECT_EQ(eventCount(), 1u);
    clearTrace();
    EXPECT_EQ(eventCount(), 0u);
}

TEST_F(ObsTest, ConcurrentCounterTotalsAreExact)
{
    Registry reg;
    Counter &c = reg.counter("hammer");
    Histogram &h = reg.histogram("hammer.h");
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kIters = 20'000;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; t++)
        ts.emplace_back([&] {
            for (uint64_t i = 0; i < kIters; i++) {
                c.add(1);
                h.record(i);
            }
        });
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kIters);
    EXPECT_EQ(h.count(), kThreads * kIters);
    EXPECT_EQ(h.sum(), kThreads * (kIters * (kIters - 1) / 2));
    EXPECT_EQ(h.max(), kIters - 1);
}

TEST_F(ObsTest, ConcurrentSpanRecordingIsRaceFree)
{
    setEnabled(true);
    constexpr unsigned kThreads = 4;
    constexpr unsigned kSpans = 500;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; t++)
        ts.emplace_back([t] {
            ScopedTrack track(static_cast<int32_t>(t));
            for (unsigned i = 0; i < kSpans; i++) {
                Span s("worker-span", "test");
                s.arg("i", i);
            }
        });
    for (auto &t : ts)
        t.join();
    setEnabled(false);
    EXPECT_EQ(eventCount(), kThreads * kSpans);
    // Export while worker buffers exist must be consistent.
    std::string json = traceJson();
    EXPECT_NE(json.find("worker-span"), std::string::npos);
}

TEST_F(ObsTest, ProgressSinkReceivesUpdates)
{
    struct CaptureSink : ProgressSink
    {
        std::atomic<uint64_t> updates{0};
        uint64_t lastDone = 0, lastTotal = 0;
        std::string lastPhase;
        void
        update(const Progress &p) override
        {
            updates++;
            lastDone = p.done;
            lastTotal = p.total;
            lastPhase = p.phase;
        }
    } sink;
    progress("before-install", 1, 2); // no sink: dropped
    setProgressSink(&sink);
    progress("phase-a", 3, 10, "tiny3");
    setProgressSink(nullptr);
    progress("after-uninstall", 4, 10);
    EXPECT_EQ(sink.updates.load(), 1u);
    EXPECT_EQ(sink.lastPhase, "phase-a");
    EXPECT_EQ(sink.lastDone, 3u);
    EXPECT_EQ(sink.lastTotal, 10u);
}

namespace
{

/** A free-running 4-bit counter design (same shape as test_exec). */
struct CounterDesign
{
    Design d{"counter"};
    SigId cnt;

    CounterDesign()
    {
        Builder b(d);
        RegSig c = b.regh("cnt", 4, 0);
        b.assign(c, c.q + b.lit(4, 1));
        b.finalize();
        cnt = c.q.id;
    }
};

} // anonymous namespace

TEST_F(ObsTest, PoolCacheCountersExactUnderConcurrentLoad)
{
    // Satellite: QueryCache hit/miss counters live in the registry now;
    // they must stay exact when a jobs=4 pool evaluates a batch full of
    // duplicates. 16 distinct queries, each submitted 4 times: every
    // submission probes the (still empty) cache in the serial pass (64
    // misses), the 16 unique units solve once each (16 entries), and
    // the 48 in-batch duplicates are then served from the published
    // entries (48 hits) — exactly, on every run.
    CounterDesign cd;
    bmc::EngineConfig ecfg;
    ecfg.bound = 18;
    exec::EnginePool pool(cd.d, ecfg, exec::ExecConfig{4, 0});
    std::vector<exec::Query> qs;
    for (unsigned rep = 0; rep < 4; rep++)
        for (unsigned v = 0; v < 16; v++)
            qs.push_back(exec::Query{
                prop::pEq(cd.cnt, v), {}, -1});
    auto rs = pool.evalBatch(qs);
    ASSERT_EQ(rs.size(), qs.size());
    for (const auto &r : rs)
        EXPECT_EQ(r.outcome, bmc::Outcome::Reachable);
    exec::CacheStats cs = pool.stats().cache;
    EXPECT_EQ(cs.misses, 64u);
    EXPECT_EQ(cs.hits, 48u);
    EXPECT_EQ(cs.entries, 16u);

    // A second pool (its own cache instance) tallies independently: the
    // first pool's numbers must not move.
    exec::EnginePool pool2(cd.d, ecfg, exec::ExecConfig{2, 0});
    auto r2 = pool2.eval(exec::Query{prop::pEq(cd.cnt, 3), {}, -1});
    EXPECT_EQ(r2.outcome, bmc::Outcome::Reachable);
    EXPECT_EQ(pool2.stats().cache.misses, 1u);
    EXPECT_EQ(pool2.stats().cache.hits, 0u);
    EXPECT_EQ(pool.stats().cache.misses, 64u);
    EXPECT_EQ(pool.stats().cache.hits, 48u);
}

TEST_F(ObsTest, PoolInstrumentationDoesNotChangeVerdicts)
{
    // Determinism contract: enabling observability must not perturb
    // outcomes. Same batch, obs off vs on.
    CounterDesign cd;
    bmc::EngineConfig ecfg;
    ecfg.bound = 18;
    std::vector<exec::Query> qs;
    for (unsigned v = 0; v < 16; v++)
        qs.push_back(exec::Query{prop::pEq(cd.cnt, v), {}, -1});

    exec::EnginePool off(cd.d, ecfg, exec::ExecConfig{4, 0});
    auto r_off = off.evalBatch(qs);

    setEnabled(true);
    exec::EnginePool on(cd.d, ecfg, exec::ExecConfig{4, 0});
    auto r_on = on.evalBatch(qs);
    setEnabled(false);

    ASSERT_EQ(r_off.size(), r_on.size());
    for (size_t i = 0; i < r_off.size(); i++)
        EXPECT_EQ(r_off[i].outcome, r_on[i].outcome) << i;
    EXPECT_GT(eventCount(), 0u); // the enabled run actually recorded
}
