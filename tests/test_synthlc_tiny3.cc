/**
 * @file
 * End-to-end SynthLC tests on the Tiny3 cores.
 *
 * The baseline core has μPATH variability (stalls behind the fixed-latency
 * multiplier) but its path selection never depends on operand values, so
 * no leakage signature may be synthesized. The zero-skip variant's MUL
 * latency depends on its rs1 operand, making MUL an intrinsic transmitter
 * (for its own decisions) and a dynamic transmitter (for the decisions of
 * instructions stalled behind it) — Fig. 1 in miniature.
 */

#include <gtest/gtest.h>

#include "designs/tiny3.hh"
#include "rtl2mupath/synth.hh"
#include "synthlc/synthlc.hh"

using namespace rmp;
using namespace rmp::designs;
using namespace rmp::slc;
using namespace rmp::uhb;

namespace
{

struct SynthResult
{
    std::vector<LeakageSignature> sigs;
    InstrPaths paths;
};

SynthResult
runFlow(Harness &hx, SynthLc &slc, r2m::MuPathSynthesizer &synth,
        const std::string &transponder,
        const std::vector<std::string> &transmitters)
{
    InstrId p = hx.duv().instrId(transponder);
    InstrPaths paths = synth.synthesize(p);
    std::vector<InstrId> ts;
    for (const auto &t : transmitters)
        ts.push_back(hx.duv().instrId(t));
    return {slc.analyze(p, paths.decisions, ts), std::move(paths)};
}

} // namespace

TEST(SynthLcTiny3, BaselineHasNoLeakage)
{
    Harness hx(buildTiny3());
    r2m::MuPathSynthesizer synth(hx);
    SynthLc slc(hx);
    // MUL's decisions exist, but path selection is operand-independent.
    auto r = runFlow(hx, slc, synth, "MUL", {"MUL", "ADD"});
    EXPECT_TRUE(r.sigs.empty());
    EXPECT_FALSE(r.paths.decisions.empty());
    // ADD stalls behind MULs, but again operand-independently.
    auto r2 = runFlow(hx, slc, synth, "ADD", {"MUL"});
    EXPECT_TRUE(r2.sigs.empty());
}

TEST(SynthLcTiny3, ZeroSkipMulIsIntrinsicTransmitter)
{
    Harness hx(buildTiny3({.withZeroSkip = true}));
    r2m::MuPathSynthesizer synth(hx);
    SynthLc slc(hx);
    auto r = runFlow(hx, slc, synth, "MUL", {"MUL"});
    ASSERT_FALSE(r.sigs.empty());
    // Some signature must carry an intrinsic MUL transmitter on rs1 (the
    // zero-skip check reads the rs1 operand register).
    bool intrinsic_rs1 = false;
    for (const auto &sig : r.sigs)
        for (const auto &ti : sig.inputs)
            if (ti.type == TxType::Intrinsic && ti.op == Operand::Rs1 &&
                hx.duv().instrs[ti.instr].name == "MUL")
                intrinsic_rs1 = true;
    EXPECT_TRUE(intrinsic_rs1);
}

TEST(SynthLcTiny3, ZeroSkipMulIsDynamicTransmitterForAdd)
{
    Harness hx(buildTiny3({.withZeroSkip = true}));
    r2m::MuPathSynthesizer synth(hx);
    SynthLc slc(hx);
    // An ADD stalled behind a zero-skip MUL leaks the MUL's rs1 operand
    // through its own stall decision at IF: MUL is a dynamic (older)
    // transmitter, the ADD is its transponder.
    auto r = runFlow(hx, slc, synth, "ADD", {"MUL"});
    ASSERT_FALSE(r.sigs.empty());
    bool dyn_older = false;
    for (const auto &sig : r.sigs) {
        EXPECT_EQ(hx.plName(sig.src), "IF");
        for (const auto &ti : sig.inputs)
            if (ti.type == TxType::DynamicOlder && ti.op == Operand::Rs1)
                dyn_older = true;
    }
    EXPECT_TRUE(dyn_older);
}

TEST(SynthLcTiny3, NoStaticTransmittersWithoutPersistentState)
{
    // Tiny3 has no persistent microarchitectural state (no caches), so
    // the sticky-taint flush kills all taint once the transmitter leaves:
    // no static transmitters can be flagged (§VII-A1's finding for the
    // CVA6 core).
    Harness hx(buildTiny3({.withZeroSkip = true}));
    r2m::MuPathSynthesizer synth(hx);
    SynthLc slc(hx);
    for (const char *p : {"MUL", "ADD"}) {
        auto r = runFlow(hx, slc, synth, p, {"MUL"});
        for (const auto &sig : r.sigs)
            for (const auto &ti : sig.inputs)
                EXPECT_NE(ti.type, TxType::Static)
                    << "spurious static transmitter for " << p;
    }
}

TEST(SynthLcTiny3, Rs2DoesNotLeakThroughZeroSkip)
{
    // The zero-skip check reads only rs1 (ex_a); rs2 must not be flagged
    // for the MUL's own (intrinsic) decisions.
    Harness hx(buildTiny3({.withZeroSkip = true}));
    r2m::MuPathSynthesizer synth(hx);
    SynthLc slc(hx);
    auto r = runFlow(hx, slc, synth, "MUL", {"MUL"});
    for (const auto &sig : r.sigs)
        for (const auto &ti : sig.inputs)
            if (ti.type == TxType::Intrinsic)
                EXPECT_EQ(ti.op, Operand::Rs1);
}

TEST(SynthLcTiny3, RenderedSignatureLooksLikeFig5)
{
    Harness hx(buildTiny3({.withZeroSkip = true}));
    r2m::MuPathSynthesizer synth(hx);
    SynthLc slc(hx);
    auto r = runFlow(hx, slc, synth, "MUL", {"MUL"});
    ASSERT_FALSE(r.sigs.empty());
    std::string s = slc.render(r.sigs[0]);
    EXPECT_NE(s.find("dst MUL_"), std::string::npos);
    EXPECT_NE(s.find("-> one of {"), std::string::npos);
}

TEST(SynthLcTiny3, StatsAreTallied)
{
    Harness hx(buildTiny3({.withZeroSkip = true}));
    r2m::MuPathSynthesizer synth(hx);
    SynthLc slc(hx);
    runFlow(hx, slc, synth, "MUL", {"MUL"});
    EXPECT_GT(slc.stats().queries, 0u);
    EXPECT_EQ(slc.stats().queries,
              slc.stats().reachable + slc.stats().unreachable +
                  slc.stats().undetermined);
}
