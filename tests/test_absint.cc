/**
 * @file
 * Tests for the abstract-interpretation layer (DESIGN.md §3i): AbsVal
 * transfer functions and the fixpoint's soundness against simulation,
 * FSM reachable-state enumeration, the engine's static cover evaluator
 * and pruning (verdict identity with and without, audited and not), the
 * absint lint rules over seeded defects, known-bits tape folding, and
 * the IFT soundness lint on the mcva variant configurations.
 */

#include <gtest/gtest.h>

#include <random>

#include "analysis/absint.hh"
#include "analysis/fsmreach.hh"
#include "analysis/lint.hh"
#include "bmc/engine.hh"
#include "designs/mcva.hh"
#include "designs/tiny3.hh"
#include "exec/engine_pool.hh"
#include "report/report.hh"
#include "rtl2mupath/synth.hh"
#include "rtlir/builder.hh"
#include "sim/batch.hh"
#include "sim/simulator.hh"
#include "sim/tape.hh"

using namespace rmp;
using namespace rmp::analysis;

namespace
{

size_t
countRule(const LintReport &rep, Rule r)
{
    size_t n = 0;
    for (const auto &di : rep.diags)
        if (di.rule == r)
            n++;
    return n;
}

/**
 * A small netlist with facts of every flavor: a stuck register (r0 <- r0,
 * reset 7), a 2-bit FSM cycling 0 -> 1 -> 2 -> 0 (3 unreachable), a free
 * counter, and observers of each.
 */
struct FactsRig
{
    Design d{"facts_rig"};
    SigId stuck, fsm, ctr, in, hit_stuck, hit_dead, hit_ctr;

    FactsRig()
    {
        Builder b(d);
        Sig x = b.input("x", 8);
        RegSig r0 = b.regh("stuck", 8, 7);
        b.assign(r0, r0.q); // holds its reset value forever
        RegSig st = b.regh("fsm", 2);
        // 0->1->2->0; valuation 3 is never produced.
        b.assign(st, b.mux(st.q == b.lit(2, 2), b.lit(2, 0),
                           st.q + b.lit(2, 1)));
        RegSig c = b.regh("ctr", 8);
        b.assign(c, c.q + x);
        Sig hs = b.named("hit_stuck", r0.q == b.lit(8, 7));
        Sig hd = b.named("hit_dead", st.q == b.lit(2, 3));
        Sig hc = b.named("hit_ctr", c.q == b.lit(8, 200));
        b.finalize();
        stuck = r0.q.id;
        fsm = st.q.id;
        ctr = c.q.id;
        in = x.id;
        hit_stuck = hs.id;
        hit_dead = hd.id;
        hit_ctr = hc.id;
    }
};

} // namespace

// ------------------------------------------------------------- absint --

TEST(Absint, StuckRegisterIsProvenConstant)
{
    FactsRig t;
    AbsFacts f = absInterpret(t.d);
    ASSERT_EQ(f.val.size(), t.d.numCells());
    const AbsVal &v = f.of(t.stuck);
    EXPECT_TRUE(v.known(0xFF));
    EXPECT_EQ(v.cval(), 7u);
    // ...and the fact propagates through the comparator.
    EXPECT_TRUE(f.of(t.hit_stuck).known(1));
    EXPECT_EQ(f.of(t.hit_stuck).cval(), 1u);
    // The free counter is unknown; the input is top.
    EXPECT_FALSE(f.of(t.ctr).known(0xFF));
    EXPECT_FALSE(f.of(t.in).known(0xFF));
    EXPECT_GT(f.bitsKnown, 0u);
    EXPECT_GT(f.bitsTotal, f.bitsKnown);
    EXPECT_NE(f.fingerprint, 0u);
}

TEST(Absint, FactsAdmitEverySimulatedValue)
{
    // Soundness: every value any cell takes on a random run from reset
    // must be admitted by its fixpoint abstraction.
    FactsRig t;
    AbsFacts f = absInterpret(t.d);
    Simulator sim(t.d);
    std::mt19937_64 rng(11);
    for (int cyc = 0; cyc < 64; cyc++)
        sim.step({{t.in, rng() & 0xFF}});
    const SimTrace &tr = sim.trace();
    for (size_t cyc = 0; cyc < tr.numCycles(); cyc++)
        for (SigId s = 0; s < t.d.numCells(); s++)
            EXPECT_TRUE(f.of(s).admits(tr.value(cyc, s)))
                << "cell " << s << " cycle " << cyc << " value "
                << tr.value(cyc, s);
}

TEST(Absint, JoinOnlyLosesKnowledge)
{
    AbsVal a = AbsVal::constant(5, 0xFF);
    AbsVal b = AbsVal::constant(9, 0xFF);
    AbsVal j = joinAbs(a, b, 0xFF);
    EXPECT_TRUE(j.admits(5));
    EXPECT_TRUE(j.admits(9));
    EXPECT_FALSE(j.admits(2)); // 5|9 vs 5&9 pin bits 5 and 9 share
    EXPECT_EQ(j.set, (std::vector<uint64_t>{5, 9}));
    AbsVal top = AbsVal::top(0xFF);
    AbsVal jt = joinAbs(j, top, 0xFF);
    EXPECT_TRUE(jt.admits(0xAB));
}

TEST(Absint, MuxSelectFactsPinConstantSelects)
{
    Design d("muxsel");
    Builder b(d);
    Sig x = b.input("x", 4);
    Sig y = b.input("y", 4);
    RegSig one = b.regh("one", 1, 1);
    b.assign(one, one.q); // constant-1 select
    Sig m = b.named("m", b.mux(one.q, x, y));
    Sig free_m = b.named("free_m", b.mux(x.bit(0), x, y));
    b.finalize();
    AbsFacts f = absInterpret(d);
    std::vector<int8_t> sel = muxSelectFacts(d, f);
    ASSERT_EQ(sel.size(), d.numCells());
    EXPECT_EQ(sel[m.id], 1);
    EXPECT_EQ(sel[free_m.id], -1);
    EXPECT_EQ(sel[x.id], -1); // non-Mux cells are always -1
}

// ----------------------------------------------------------- fsmreach --

TEST(FsmReach, EnumeratesExactStateSet)
{
    FactsRig t;
    AbsFacts f = absInterpret(t.d);
    // Globally, the FSM register's join is coarse (could be anything).
    std::vector<FsmReachResult> rr = fsmReachability(t.d, {t.fsm}, f);
    ASSERT_EQ(rr.size(), 1u);
    EXPECT_EQ(rr[0].reg, t.fsm);
    EXPECT_TRUE(rr[0].exact);
    EXPECT_EQ(rr[0].states, (std::vector<uint64_t>{0, 1, 2}));
    // The refinement lands in the facts: state 3 is refuted, so the
    // dead-state comparator is proven false.
    EXPECT_FALSE(f.of(t.fsm).admits(3));
    EXPECT_TRUE(f.of(t.hit_dead).known(1));
    EXPECT_EQ(f.of(t.hit_dead).cval(), 0u);
}

TEST(FsmReach, StaticFactsConvenienceMatchesManualPipeline)
{
    FactsRig t;
    AbsFacts manual = absInterpret(t.d);
    fsmReachability(t.d, {t.fsm}, manual);
    AbsFacts conv = staticFacts(t.d, {t.fsm});
    EXPECT_EQ(conv.fingerprint, manual.fingerprint);
    EXPECT_EQ(conv.bitsKnown, manual.bitsKnown);
}

// ---------------------------------------------------------- staticEval --

TEST(StaticEval, TernaryVerdictsMatchTheFacts)
{
    FactsRig t;
    AbsFacts f = staticFacts(t.d, {t.fsm});
    auto ev = [&](const prop::ExprRef &e) {
        return bmc::staticEval(t.d, f, e);
    };
    EXPECT_EQ(ev(prop::pEq(t.stuck, 7)), bmc::StaticTern::True);
    EXPECT_EQ(ev(prop::pEq(t.stuck, 5)), bmc::StaticTern::False);
    EXPECT_EQ(ev(prop::pEq(t.fsm, 3)), bmc::StaticTern::False);
    EXPECT_EQ(ev(prop::pEq(t.ctr, 200)), bmc::StaticTern::Unknown);
    // Kleene connectives.
    EXPECT_EQ(ev(prop::pNot(prop::pEq(t.stuck, 7))),
              bmc::StaticTern::False);
    EXPECT_EQ(ev(prop::pAnd(prop::pEq(t.ctr, 1), prop::pEq(t.fsm, 3))),
              bmc::StaticTern::False);
    EXPECT_EQ(ev(prop::pOr(prop::pEq(t.ctr, 1), prop::pEq(t.stuck, 7))),
              bmc::StaticTern::True);
    // Bounded-semantics guard: Delay propagates False but NEVER True
    // (a match can be cut off by the bound), so Not(Delay(True, True))
    // must stay Unknown rather than becoming a false prune.
    prop::ExprRef dly =
        prop::pDelay(prop::pEq(t.stuck, 7), 1, prop::pEq(t.stuck, 7));
    EXPECT_EQ(ev(dly), bmc::StaticTern::Unknown);
    EXPECT_EQ(ev(prop::pDelay(prop::pEq(t.stuck, 5), 1,
                              prop::pEq(t.stuck, 7))),
              bmc::StaticTern::False);
    EXPECT_EQ(ev(prop::pNot(dly)), bmc::StaticTern::Unknown);
}

// ------------------------------------------------------- static prune --

TEST(StaticPrune, EngineDischargesImpossibleCoversWithoutSolving)
{
    FactsRig t;
    bmc::EngineConfig cfg;
    cfg.bound = 8;
    cfg.staticPrune = true;
    bmc::Engine eng(t.d, cfg);

    // Statically-false cover: no solver query, verdict Unreachable.
    bmc::CoverResult r = eng.cover(prop::pEq(t.stuck, 5), {});
    EXPECT_EQ(r.outcome, bmc::Outcome::Unreachable);
    EXPECT_EQ(eng.stats().staticPruned, 1u);
    EXPECT_EQ(eng.stats().queries, 1u);

    // Statically-false assume: the query is vacuous.
    bmc::CoverResult rv =
        eng.cover(prop::pEq(t.ctr, 3), {prop::pEq(t.stuck, 5)});
    EXPECT_EQ(rv.outcome, bmc::Outcome::Unreachable);
    EXPECT_EQ(eng.stats().staticPruned, 2u);

    // A cover the facts cannot refute still goes to the solver and is
    // genuinely reachable.
    bmc::CoverResult rr = eng.cover(prop::pEq(t.ctr, 200), {});
    EXPECT_EQ(rr.outcome, bmc::Outcome::Reachable);
    EXPECT_EQ(eng.stats().staticPruned, 2u);
}

TEST(StaticPrune, VerdictsIdenticalWithAndWithoutPruning)
{
    FactsRig t;
    std::vector<exec::Query> qs;
    qs.push_back({prop::pEq(t.stuck, 5), {}, -1});           // pruned
    qs.push_back({prop::pEq(t.fsm, 3), {}, -1});             // solver-only
    qs.push_back({prop::pEq(t.ctr, 200), {}, -1});           // reachable
    qs.push_back({prop::pEq(t.ctr, 3), {prop::pEq(t.stuck, 5)}, -1});
    qs.push_back({prop::pBit(t.hit_stuck), {}, 0});

    bmc::EngineConfig on;
    on.bound = 8;
    on.staticPrune = true;
    on.staticFacts =
        std::make_shared<const AbsFacts>(staticFacts(t.d, {t.fsm}));
    bmc::EngineConfig off;
    off.bound = 8;

    exec::ExecConfig xc{1, 2};
    exec::EnginePool with(t.d, on, xc);
    exec::EnginePool without(t.d, off, xc);
    auto ra = with.evalBatch(qs);
    auto rb = without.evalBatch(qs);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); i++)
        EXPECT_EQ(ra[i].outcome, rb[i].outcome) << "query " << i;
    exec::PoolStats ps = with.stats();
    EXPECT_GE(ps.engine.staticPruned, 2u);
    EXPECT_EQ(without.stats().engine.staticPruned, 0u);
}

TEST(StaticPrune, AuditedPrunesReproveWithZeroMismatches)
{
    FactsRig t;
    bmc::EngineConfig cfg;
    cfg.bound = 8;
    cfg.staticPrune = true;
    cfg.staticFacts =
        std::make_shared<const AbsFacts>(staticFacts(t.d, {t.fsm}));
    cfg.auditProof = true;
    cfg.auditReplay = true;
    bmc::Engine eng(t.d, cfg);
    bmc::CoverResult r = eng.cover(prop::pEq(t.stuck, 5), {});
    EXPECT_EQ(r.outcome, bmc::Outcome::Unreachable);
    bmc::CoverResult r2 = eng.cover(prop::pEq(t.fsm, 3), {});
    EXPECT_EQ(r2.outcome, bmc::Outcome::Unreachable);
    // The solver independently re-proved both statically-pruned covers.
    EXPECT_EQ(eng.stats().staticPruned, 2u);
    EXPECT_EQ(eng.stats().auditMismatches, 0u);
}

TEST(StaticPrune, Tiny3SynthesisIdenticalWithAndWithout)
{
    designs::Harness hx(designs::buildTiny3());
    uhb::InstrId add = hx.duv().instrId("ADD");

    r2m::SynthesisConfig on;
    on.jobs = 1;
    on.staticPrune = true;
    r2m::MuPathSynthesizer a(hx, on);
    uhb::InstrPaths pa = a.synthesize(add);

    r2m::SynthesisConfig off = on;
    off.staticPrune = false;
    r2m::MuPathSynthesizer b(hx, off);
    uhb::InstrPaths pb = b.synthesize(add);

    EXPECT_EQ(report::renderInstrPaths(hx, pa),
              report::renderInstrPaths(hx, pb));
    EXPECT_EQ(report::renderDecisions(hx, pa),
              report::renderDecisions(hx, pb));
}

// ------------------------------------------------- absint lint rules --

TEST(LintAbsint, DetectsConstantRegisterAndUnreachableFsmState)
{
    FactsRig t;
    LintConfig cfg;
    cfg.controlRegs = {t.fsm};
    LintReport rep = lint(t.d, cfg);
    EXPECT_EQ(rep.errors(), 0u) << rep.render(t.d);
    EXPECT_GE(countRule(rep, Rule::ConstantRegister), 1u)
        << rep.render(t.d);
    ASSERT_EQ(countRule(rep, Rule::UnreachableFsmState), 1u)
        << rep.render(t.d);
    for (const auto &di : rep.diags) {
        if (di.rule == Rule::UnreachableFsmState) {
            EXPECT_EQ(di.sig, t.fsm);
            EXPECT_NE(di.message.find("3"), std::string::npos);
        }
    }
}

TEST(LintAbsint, DetectsDeadMuxArmAndTruncatedAssignment)
{
    Design d("deadarm");
    Builder b(d);
    Sig x = b.input("x", 4);
    Sig y = b.input("y", 4);
    RegSig one = b.regh("one", 1, 1);
    b.assign(one, one.q);
    Sig m = b.named("m", b.mux(one.q, x, y));
    // Slice that drops bits proven 1: wide has 0xF0 set, keep [3:0].
    RegSig wide = b.regh("wide", 8, 0xF5);
    b.assign(wide, wide.q);
    Sig tr = b.named("tr", wide.q.slice(0, 4));
    b.named("use", m + tr);
    b.finalize();
    LintReport rep = lint(d);
    EXPECT_EQ(rep.errors(), 0u) << rep.render(d);
    ASSERT_GE(countRule(rep, Rule::DeadMuxArm), 1u) << rep.render(d);
    ASSERT_GE(countRule(rep, Rule::TruncatedAssignment), 1u)
        << rep.render(d);
    for (const auto &di : rep.diags)
        if (di.rule == Rule::DeadMuxArm)
            EXPECT_EQ(di.sig, m.id);
}

TEST(LintAbsint, SkippedWhenStructurallyBroken)
{
    // A broken netlist (dangling operand) must not run the absint rules
    // (their evaluation assumes a well-formed graph).
    Design d("broken");
    Builder b(d);
    Sig x = b.input("x", 4);
    RegSig r = b.regh("stuck", 4, 3);
    b.assign(r, r.q);
    Sig n = b.named("n", ~x);
    b.finalize();
    const_cast<Cell &>(d.cell(n.id)).args[0] = 9999;
    LintReport rep = lint(d);
    EXPECT_GE(rep.errors(), 1u);
    EXPECT_EQ(countRule(rep, Rule::ConstantRegister), 0u)
        << rep.render(d);
}

TEST(LintAbsint, DetectsUntaintedTaintSink)
{
    // r <- a is the taint source; "clean" observes only input b, so its
    // shadow is statically zero — an untainted sink. "out" observes r
    // and must NOT be flagged.
    Design d("untainted");
    Builder b(d);
    Sig a = b.input("a", 8);
    Sig bb = b.input("b", 8);
    RegSig r = b.regh("r", 8);
    b.assign(r, a);
    Sig out = b.named("out", r.q == b.lit(8, 9));
    Sig clean = b.named("clean", bb == b.lit(8, 5));
    b.finalize();
    ift::IftConfig icfg;
    icfg.taintSources = {r.q.id};
    ift::Instrumented inst = ift::instrument(d, icfg);
    LintReport rep = lintIft(d, inst);
    EXPECT_EQ(rep.errors(), 0u) << rep.render(*inst.design);
    ASSERT_GE(countRule(rep, Rule::UntaintedTaintSink), 1u)
        << rep.render(*inst.design);
    bool clean_flagged = false, out_flagged = false;
    for (const auto &di : rep.diags)
        if (di.rule == Rule::UntaintedTaintSink) {
            clean_flagged |= di.sig == clean.id;
            out_flagged |= di.sig == out.id;
        }
    EXPECT_TRUE(clean_flagged);
    EXPECT_FALSE(out_flagged);
}

// --------------------------------------------------- tape kb folding --

TEST(TapeKb, SeededFoldMatchesUnseededBitForBit)
{
    FactsRig t;
    std::vector<SigId> watch = {t.hit_stuck, t.hit_dead, t.hit_ctr,
                                t.ctr};

    sim::FoldCache plain_fc;
    sim::Tape plain = sim::compileTape(t.d, watch, &plain_fc);

    sim::FoldCache kb_fc;
    AbsFacts f = staticFacts(t.d, {t.fsm});
    seedFoldCache(t.d, f, &kb_fc);
    sim::Tape folded = sim::compileTape(t.d, watch, &kb_fc);

    // The facts constantize comb cells syntactic folding cannot see
    // (hit_stuck compares a stuck register; hit_dead a dead state).
    EXPECT_GT(kb_fc.kbFoldedCells, 0u);
    EXPECT_LE(folded.opc.size(), plain.opc.size());

    sim::BatchSim sa(plain, 2);
    sim::BatchSim sb(folded, 2);
    sa.setRecording(true);
    sb.setRecording(true);
    std::mt19937_64 rng(23);
    for (int cyc = 0; cyc < 48; cyc++) {
        sa.clearInputs();
        sb.clearInputs();
        for (unsigned lane = 0; lane < 2; lane++) {
            uint64_t v = rng() & 0xFF;
            sa.stageInput(lane, t.in, v);
            sb.stageInput(lane, t.in, v);
        }
        sa.step();
        sb.step();
    }
    ASSERT_EQ(sa.numWatch(), sb.numWatch());
    for (size_t cyc = 0; cyc < 48; cyc++)
        for (size_t k = 0; k < sa.numWatch(); k++)
            for (unsigned lane = 0; lane < 2; lane++)
                EXPECT_EQ(sa.watched(cyc, k, lane),
                          sb.watched(cyc, k, lane))
                    << "cycle " << cyc << " watch " << k << " lane "
                    << lane;
}

// ------------------------------------- IFT lint on the mcva variants --

namespace
{

/** The harness instrumentation (same config the CLI and SynthLC use). */
LintReport
iftLintOf(const designs::Harness &hx)
{
    const uhb::DuvInfo &info = hx.duv();
    ift::IftConfig icfg;
    icfg.taintSources = {info.rs1Reg, info.rs2Reg};
    icfg.blockRegs = info.arfRegs;
    icfg.blockRegs.insert(icfg.blockRegs.end(), info.amemRegs.begin(),
                          info.amemRegs.end());
    icfg.persistentRegs = info.persistentRegs;
    icfg.txmGone = hx.txmGone;
    ift::Instrumented inst = ift::instrument(hx.design(), icfg);
    return lintIft(hx.design(), inst);
}

} // namespace

TEST(LintIftVariants, McvaOperandPackingIsSound)
{
    designs::Harness hx(
        designs::buildMcva({.withOperandPacking = true}));
    LintReport rep = iftLintOf(hx);
    EXPECT_EQ(rep.errors(), 0u) << rep.render(hx.design());
}

TEST(LintIftVariants, McvaZeroSkipMulIsSound)
{
    designs::Harness hx(designs::buildMcva({.withZeroSkipMul = true}));
    LintReport rep = iftLintOf(hx);
    EXPECT_EQ(rep.errors(), 0u) << rep.render(hx.design());
}
