/**
 * @file
 * Differential tests for the SIMD and native execution backends
 * (DESIGN.md §3h, "Backend selection"). Two families:
 *
 * 1. Boundary-width kernels. The vector kernels manipulate masked
 *    64-bit lanes, so the widths where mask handling can silently go
 *    wrong are 1 (everything collapses to one bit), 63 (the widest
 *    non-trivial mask, (1<<63)-1), and 64 (mask = ~0, where an
 *    unmasked shift≥width or carry out of bit 63 must wrap exactly).
 *    A width-65 case is impossible by construction: the IR caps every
 *    signal at 64 bits (Design::addBinary asserts concat ≤ 64), so the
 *    64-bit lane is the worst case, not a sample. Each width gets a
 *    toy design covering every tape opcode — including shift counts
 *    ≥ 64, which must yield 0 — replayed against the interpreted
 *    oracle on every backend × lane width.
 *
 * 2. Native-kernel cache behavior. The .so cache must hit (memory,
 *    then disk), miss on a stale fingerprint, reject a corrupted
 *    object, and fall back to the SIMD interpreter when no compiler
 *    is available — each observable through NativeKernel::stats() and
 *    BatchSim::activeBackend(), and none ever allowed to produce a
 *    wrong value.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "designs/harness.hh"
#include "designs/tiny3.hh"
#include "sim/batch.hh"
#include "sim/codegen.hh"
#include "sim/simd.hh"
#include "sim/simulator.hh"
#include "sim/tape.hh"

using namespace rmp;

namespace
{

/** Point the native-kernel disk cache at a fresh private directory:
 *  ctest runs suites in parallel, so tests that count disk hits or
 *  plant corrupted objects must not share ~/.cache/rmp. */
class ScopedCacheDir
{
  public:
    ScopedCacheDir()
    {
        char tmpl[] = "/tmp/rmp-backends-XXXXXX";
        dir_ = mkdtemp(tmpl);
        if (const char *old = std::getenv("RMP_CACHE_DIR"))
            saved_ = old;
        setenv("RMP_CACHE_DIR", dir_.c_str(), 1);
    }
    ~ScopedCacheDir()
    {
        if (saved_.empty())
            unsetenv("RMP_CACHE_DIR");
        else
            setenv("RMP_CACHE_DIR", saved_.c_str(), 1);
        std::system(("rm -rf " + dir_).c_str());
    }
    const std::string &dir() const { return dir_; }

  private:
    std::string dir_;
    std::string saved_;
};

/**
 * A toy design at bit width @p w exercising every tape opcode: the
 * boundary-mask torture chamber. The shift-count input is 7 bits wide
 * so counts ≥ 64 occur and must produce 0, and a register closes the
 * sequential loop so the two-phase latch path runs too.
 */
Design
buildBoundary(unsigned w)
{
    Design d("boundary" + std::to_string(w));
    SigId a = d.addInput("a", w);
    SigId b = d.addInput("b", w);
    SigId s = d.addInput("s", 7); // counts 0..127: ≥64 must yield 0
    SigId sel = d.addInput("sel", 1);

    std::vector<SigId> outs;
    outs.push_back(d.addUnary(Op::Not, a, w));
    outs.push_back(d.addBinary(Op::And, a, b));
    outs.push_back(d.addBinary(Op::Or, a, b));
    outs.push_back(d.addBinary(Op::Xor, a, b));
    outs.push_back(d.addUnary(Op::RedOr, a, 1));
    outs.push_back(d.addUnary(Op::RedAnd, a, 1));
    outs.push_back(d.addBinary(Op::Eq, a, b));
    outs.push_back(d.addBinary(Op::Ult, a, b));
    outs.push_back(d.addBinary(Op::Add, a, b));
    outs.push_back(d.addBinary(Op::Sub, a, b));
    outs.push_back(d.addBinary(Op::Mul, a, b));
    outs.push_back(d.addBinary(Op::Shl, a, s));
    outs.push_back(d.addBinary(Op::Shr, b, s));
    outs.push_back(d.addMux(sel, a, b));
    if (w > 1) {
        unsigned half = w / 2;
        SigId lo = d.addUnary(Op::Slice, a, half, 0);
        SigId hi = d.addUnary(Op::Slice, a, w - half, half);
        outs.push_back(lo);
        outs.push_back(hi);
        outs.push_back(d.addBinary(Op::Concat, hi, lo));
    }
    if (w < 64)
        outs.push_back(d.addUnary(Op::Zext, a, w + 1));

    // Fold every result into one w-bit accumulator through a register.
    SigId acc = d.addBinary(Op::Xor, a, b);
    for (SigId o : outs) {
        SigId z = d.cell(o).width == w ? o
                                       : d.addUnary(Op::Zext, o, 64);
        if (d.cell(z).width != w)
            z = d.addUnary(Op::Slice, z, w, 0);
        acc = d.addBinary(Op::Xor, acc, z);
    }
    SigId r = d.addReg("r", BitVec(w, 0));
    d.connectRegNext(r, d.addBinary(Op::Xor, acc, r));
    return d;
}

std::vector<SigId>
watchAll(const Design &d)
{
    std::vector<SigId> w(d.numCells());
    for (SigId i = 0; i < d.numCells(); i++)
        w[i] = i;
    return w;
}

std::vector<InputMap>
randomProgram(const Design &d, unsigned cycles, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<InputMap> prog(cycles);
    for (unsigned t = 0; t < cycles; t++)
        for (SigId in : d.inputs())
            prog[t][in] = rng() & BitVec::maskOf(d.width(in));
    return prog;
}

/** Mismatching (cycle, watch, lane) positions vs the interpreted
 *  oracle when running on @p backend with @p lanes lanes. */
size_t
diffCount(const Design &d, const sim::Tape &tape, unsigned lanes,
          sim::SimBackend backend, unsigned cycles, uint64_t seed)
{
    std::vector<std::vector<InputMap>> progs;
    for (unsigned l = 0; l < lanes; l++)
        progs.push_back(randomProgram(d, cycles, seed + 1000 * l));
    sim::BatchSim bs(tape, lanes, backend);
    bs.reserveTrace(cycles);
    std::vector<Simulator> oracle;
    for (unsigned l = 0; l < lanes; l++)
        oracle.emplace_back(d);
    size_t diffs = 0;
    for (unsigned t = 0; t < cycles; t++) {
        bs.clearInputs();
        for (unsigned l = 0; l < lanes; l++) {
            bs.stageInputs(l, progs[l][t]);
            oracle[l].step(progs[l][t]);
        }
        bs.step();
        for (unsigned l = 0; l < lanes; l++)
            for (size_t k = 0; k < tape.watchSigs.size(); k++)
                if (bs.watched(t, k, l) !=
                    oracle[l].value(tape.watchSigs[k]))
                    diffs++;
    }
    return diffs;
}

} // namespace

TEST(SimBackends, BoundaryWidthsMatchOracleOnEveryBackendAndLaneWidth)
{
    ScopedCacheDir cache;
    const bool haveCc = sim::nativeCompilerAvailable();
    for (unsigned w : {1u, 63u, 64u}) {
        Design d = buildBoundary(w);
        sim::Tape tape = sim::compileTape(d, watchAll(d));
        for (unsigned lanes : {1u, 2u, 4u, 8u, 16u}) {
            EXPECT_EQ(diffCount(d, tape, lanes, sim::SimBackend::Simd,
                                32, 101 + w),
                      0u)
                << "simd width " << w << " lanes " << lanes;
            if (haveCc)
                EXPECT_EQ(diffCount(d, tape, lanes,
                                    sim::SimBackend::Native, 32,
                                    101 + w),
                          0u)
                    << "native width " << w << " lanes " << lanes;
        }
    }
}

TEST(SimBackends, SimdIsaReportsSomething)
{
    // Whatever the host is, the dispatcher must name its choice.
    for (unsigned p : {1u, 2u, 4u, 8u, 16u}) {
        const char *isa = sim::simdIsa(p);
        ASSERT_NE(isa, nullptr);
        EXPECT_GT(std::string(isa).size(), 0u) << "P=" << p;
    }
}

TEST(SimBackends, NativeCacheHitsMemoryThenDisk)
{
    if (!sim::nativeCompilerAvailable())
        GTEST_SKIP() << "no C compiler on this host";
    ScopedCacheDir cache;
    designs::Harness hx(designs::buildTiny3());
    sim::Tape tape =
        sim::compileTape(hx.design(), watchAll(hx.design()));

    sim::NativeKernel::resetStats();
    auto k1 = sim::NativeKernel::acquire(tape, 4);
    ASSERT_NE(k1, nullptr);
    EXPECT_EQ(sim::NativeKernel::stats().compiles, 1u);

    // Same tape while k1 is alive: the in-process registry answers.
    auto k2 = sim::NativeKernel::acquire(tape, 4);
    ASSERT_EQ(k2.get(), k1.get());
    EXPECT_EQ(sim::NativeKernel::stats().memHits, 1u);

    // Drop every reference, acquire again: the .so on disk answers.
    std::string so = k1->path();
    k1.reset();
    k2.reset();
    auto k3 = sim::NativeKernel::acquire(tape, 4);
    ASSERT_NE(k3, nullptr);
    EXPECT_EQ(sim::NativeKernel::stats().diskHits, 1u);
    EXPECT_EQ(sim::NativeKernel::stats().compiles, 1u);
    EXPECT_EQ(k3->path(), so);

    // A different lane count is a different kernel (lanes are baked
    // into the emitted C), so it compiles fresh.
    auto k8 = sim::NativeKernel::acquire(tape, 8);
    ASSERT_NE(k8, nullptr);
    EXPECT_NE(k8->fingerprint(), k3->fingerprint());
    EXPECT_EQ(sim::NativeKernel::stats().compiles, 2u);
}

TEST(SimBackends, NativeStaleFingerprintMisses)
{
    if (!sim::nativeCompilerAvailable())
        GTEST_SKIP() << "no C compiler on this host";
    ScopedCacheDir cache;
    designs::Harness hx(designs::buildTiny3());
    const Design &d = hx.design();
    sim::Tape tape = sim::compileTape(d, watchAll(d));

    // Plant the WRONG kernel at the tape's cache path: a valid .so
    // whose embedded fingerprint belongs to a different tape (the
    // same tape at a different lane count).
    auto other = sim::NativeKernel::acquire(tape, 2);
    ASSERT_NE(other, nullptr);
    uint64_t fp = sim::tapeFingerprint(tape, 4);
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(fp));
    std::string victim =
        sim::nativeCacheDir() + "/tape-" + hex + ".so";
    ASSERT_EQ(std::system(
                  ("cp " + other->path() + " " + victim).c_str()),
              0);

    sim::NativeKernel::resetStats();
    auto k = sim::NativeKernel::acquire(tape, 4);
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(sim::NativeKernel::stats().rejected, 1u)
        << "the stale object must be unlinked, not trusted";
    EXPECT_EQ(sim::NativeKernel::stats().compiles, 1u);
    EXPECT_EQ(k->fingerprint(), fp);
}

TEST(SimBackends, NativeCorruptedObjectIsRejectedAndRebuilt)
{
    if (!sim::nativeCompilerAvailable())
        GTEST_SKIP() << "no C compiler on this host";
    ScopedCacheDir cache;
    designs::Harness hx(designs::buildTiny3());
    const Design &d = hx.design();
    sim::Tape tape = sim::compileTape(d, watchAll(d));

    uint64_t fp = sim::tapeFingerprint(tape, 4);
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(fp));
    std::string so = sim::nativeCacheDir() + "/tape-" + hex + ".so";
    {
        std::ofstream f(so, std::ios::binary);
        f << "this is not an ELF object";
    }

    sim::NativeKernel::resetStats();
    auto k = sim::NativeKernel::acquire(tape, 4);
    ASSERT_NE(k, nullptr);
    EXPECT_EQ(sim::NativeKernel::stats().rejected, 1u);
    EXPECT_EQ(sim::NativeKernel::stats().compiles, 1u);
    // And the rebuilt kernel computes correctly.
    EXPECT_EQ(diffCount(d, tape, 4, sim::SimBackend::Native, 16, 7),
              0u);
}

TEST(SimBackends, MissingCompilerFallsBackToSimd)
{
    ScopedCacheDir cache;
    setenv("RMP_CC", "/nonexistent/definitely-not-a-compiler", 1);
    designs::Harness hx(designs::buildTiny3());
    const Design &d = hx.design();
    sim::Tape tape = sim::compileTape(d, watchAll(d));

    EXPECT_FALSE(sim::nativeCompilerAvailable());
    sim::NativeKernel::resetStats();
    EXPECT_EQ(sim::NativeKernel::acquire(tape, 4), nullptr);
    EXPECT_GE(sim::NativeKernel::stats().fallbacks, 1u);

    // Requesting the native backend must degrade, not fail: BatchSim
    // lands on the SIMD interpreter and still matches the oracle.
    sim::BatchSim bs(tape, 4, sim::SimBackend::Native);
    EXPECT_EQ(bs.backend(), sim::SimBackend::Native);
    EXPECT_EQ(bs.activeBackend(), sim::SimBackend::Simd);
    EXPECT_EQ(diffCount(d, tape, 4, sim::SimBackend::Native, 16, 9),
              0u);
    unsetenv("RMP_CC");
}

TEST(SimBackends, FoldCacheReusesAcrossCompilesOfOneDesign)
{
    // Satellite property: the const-fold pass is computed once per
    // design and reused by later compileTape calls on any watch set
    // (the witness re-derivation path recompiles per witness).
    designs::Harness hx(designs::buildTiny3());
    const Design &d = hx.design();
    sim::FoldCache fold;
    sim::Tape t1 = sim::compileTape(d, watchAll(d), &fold);
    EXPECT_EQ(fold.hits, 0u);
    std::vector<SigId> narrow = {hx.plSig(0).occupied};
    sim::Tape t2 = sim::compileTape(d, narrow, &fold);
    EXPECT_EQ(fold.hits, 1u);
    sim::Tape t3 = sim::compileTape(d, watchAll(d), &fold);
    EXPECT_EQ(fold.hits, 2u);
    EXPECT_GT(t1.constsPooled, 0u);
    // Identical watch set + reused folding ⇒ identical tape program.
    ASSERT_EQ(t1.numOps(), t3.numOps());
    EXPECT_EQ(t1.opc, t3.opc);
    EXPECT_EQ(t1.dst, t3.dst);
    EXPECT_EQ(t1.mask, t3.mask);
    // And the cached folding is watch-set independent: both tapes
    // still match the oracle exactly.
    EXPECT_EQ(diffCount(d, t2, 2, sim::SimBackend::Simd, 16, 31), 0u);
    EXPECT_EQ(diffCount(d, t3, 2, sim::SimBackend::Simd, 16, 33), 0u);
}
