/**
 * @file
 * Tests for DIMACS import/export round-tripping and the Engine::prove
 * bounded-safety API.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bmc/engine.hh"
#include "rtlir/builder.hh"
#include "sat/dimacs.hh"

using namespace rmp;
using namespace rmp::sat;

TEST(Dimacs, ParseSolveSatisfiable)
{
    std::istringstream in("c a comment\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n");
    Cnf cnf = parseDimacs(in);
    EXPECT_EQ(cnf.numVars, 3);
    ASSERT_EQ(cnf.clauses.size(), 3u);
    Solver s;
    ASSERT_TRUE(loadCnf(s, cnf));
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Dimacs, ParseSolveUnsat)
{
    std::istringstream in("p cnf 1 2\n1 0\n-1 0\n");
    Cnf cnf = parseDimacs(in);
    Solver s;
    loadCnf(s, cnf);
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Dimacs, RoundTrip)
{
    Cnf cnf;
    cnf.numVars = 2;
    cnf.clauses = {{Lit(0, false), Lit(1, true)}, {Lit(1, false)}};
    std::string text = toDimacs(cnf);
    std::istringstream in(text);
    Cnf back = parseDimacs(in);
    EXPECT_EQ(back.numVars, cnf.numVars);
    ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
    for (size_t i = 0; i < cnf.clauses.size(); i++)
        EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
}

namespace
{

/** write -> parse -> write must be byte-identical. */
void
expectWriteParseWriteStable(const Cnf &cnf)
{
    std::string text = toDimacs(cnf);
    std::istringstream in(text);
    Cnf back = parseDimacs(in);
    EXPECT_EQ(toDimacs(back), text);
}

} // namespace

TEST(Dimacs, EmptyClauseSetRoundTrips)
{
    // Zero clauses is a valid formula (trivially satisfiable).
    std::istringstream in("p cnf 4 0\n");
    Cnf cnf = parseDimacs(in);
    EXPECT_EQ(cnf.numVars, 4);
    EXPECT_TRUE(cnf.clauses.empty());
    expectWriteParseWriteStable(cnf);

    // So is a formula containing an *empty clause* (trivially unsat):
    // a bare "0" terminator with no literals.
    std::istringstream in2("p cnf 1 2\n1 0\n0\n");
    Cnf cnf2 = parseDimacs(in2);
    ASSERT_EQ(cnf2.clauses.size(), 2u);
    EXPECT_TRUE(cnf2.clauses[1].empty());
    Solver s;
    EXPECT_FALSE(loadCnf(s, cnf2));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    expectWriteParseWriteStable(cnf2);
}

TEST(Dimacs, MissingTrailingNewlineAndTerminator)
{
    // A file truncated right after the last literal — no final "0", no
    // trailing newline — must still yield the final clause.
    std::istringstream in("p cnf 3 2\n1 2 0\n-1 3");
    Cnf cnf = parseDimacs(in);
    ASSERT_EQ(cnf.clauses.size(), 2u);
    EXPECT_EQ(cnf.clauses[1],
              (std::vector<Lit>{Lit(0, true), Lit(2, false)}));
    expectWriteParseWriteStable(cnf);

    // Terminated final clause but no trailing newline: same formula.
    std::istringstream in2("p cnf 3 2\n1 2 0\n-1 3 0");
    Cnf cnf2 = parseDimacs(in2);
    ASSERT_EQ(cnf2.clauses.size(), 2u);
    EXPECT_EQ(cnf2.clauses[1], cnf.clauses[1]);
}

TEST(Dimacs, HeaderUnderDeclaringVarsIsWidened)
{
    // Machine-generated files sometimes declare fewer variables than
    // their literals use; the parser widens (with a warning) instead of
    // dying, and the round trip is stable from the widened form.
    std::istringstream in("p cnf 2 2\n1 2 0\n-5 1 0\n");
    Cnf cnf = parseDimacs(in);
    EXPECT_EQ(cnf.numVars, 5);
    ASSERT_EQ(cnf.clauses.size(), 2u);
    EXPECT_EQ(cnf.clauses[1][0], Lit(4, true));
    Solver s;
    ASSERT_TRUE(loadCnf(s, cnf));
    EXPECT_EQ(s.numVars(), 5);
    EXPECT_EQ(s.solve(), SatResult::Sat);
    expectWriteParseWriteStable(cnf);
}

TEST(Dimacs, LeadingWhitespaceAndComments)
{
    std::istringstream in("  c indented comment\n\t p cnf 2 1\n 1 -2 0\n");
    Cnf cnf = parseDimacs(in);
    EXPECT_EQ(cnf.numVars, 2);
    ASSERT_EQ(cnf.clauses.size(), 1u);
    expectWriteParseWriteStable(cnf);
}

namespace
{

/** A saturating counter that (correctly) never exceeds 10. */
struct SatCounter
{
    Design d{"satcnt"};
    SigId cnt;
    SatCounter()
    {
        Builder b(d);
        RegSig c = b.regh("cnt", 4, 0);
        b.when(c.q < b.lit(4, 10));
        b.assign(c, c.q + b.lit(4, 1));
        b.end();
        b.finalize();
        cnt = c.q.id;
    }
};

} // namespace

TEST(Prove, InvariantHolds)
{
    SatCounter sc;
    bmc::EngineConfig cfg;
    cfg.bound = 16;
    bmc::Engine eng(sc.d, cfg);
    // cnt <= 10 always (within the bound).
    auto inv = prop::pNot(prop::pEq(sc.cnt, 11));
    EXPECT_EQ(eng.prove(inv, {}), bmc::Engine::ProveOutcome::Proven);
}

TEST(Prove, ViolationProducesCounterexample)
{
    SatCounter sc;
    bmc::EngineConfig cfg;
    cfg.bound = 16;
    bmc::Engine eng(sc.d, cfg);
    // Claim cnt != 7: falsified at cycle 7.
    auto inv = prop::pNot(prop::pEq(sc.cnt, 7));
    bmc::Witness cex;
    EXPECT_EQ(eng.prove(inv, {}, &cex),
              bmc::Engine::ProveOutcome::Falsified);
    EXPECT_EQ(cex.matchFrame, 7u);
    EXPECT_EQ(cex.trace.value(7, sc.cnt), 7u);
}

TEST(Prove, UndeterminedUnderTinyBudget)
{
    // A 16-bit multiplier equivalence claim that a 1-conflict budget
    // cannot decide.
    Design d("mulcmp");
    SigId neq;
    {
        Builder b(d);
        Sig x = b.input("x", 16);
        Sig y = b.input("y", 16);
        Sig p1 = x * y;
        Sig p2 = y * x;
        RegSig r = b.regh("neq", 1, 0);
        b.assign(r, p1 != p2);
        b.finalize();
        neq = r.q.id;
    }
    bmc::EngineConfig cfg;
    cfg.bound = 3;
    cfg.budget.maxConflicts = 1;
    bmc::Engine eng(d, cfg);
    auto outcome = eng.prove(prop::pNot(prop::pBit(neq)), {});
    // Either it proves it instantly via structural hashing (p1 == p2
    // fold) or runs out of budget; both are acceptable, Falsified is not.
    EXPECT_NE(outcome, bmc::Engine::ProveOutcome::Falsified);
}
