/**
 * @file
 * Tests for DIMACS import/export round-tripping and the Engine::prove
 * bounded-safety API.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "bmc/engine.hh"
#include "rtlir/builder.hh"
#include "sat/dimacs.hh"

using namespace rmp;
using namespace rmp::sat;

TEST(Dimacs, ParseSolveSatisfiable)
{
    std::istringstream in("c a comment\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n");
    Cnf cnf = parseDimacs(in);
    EXPECT_EQ(cnf.numVars, 3);
    ASSERT_EQ(cnf.clauses.size(), 3u);
    Solver s;
    ASSERT_TRUE(loadCnf(s, cnf));
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Dimacs, ParseSolveUnsat)
{
    std::istringstream in("p cnf 1 2\n1 0\n-1 0\n");
    Cnf cnf = parseDimacs(in);
    Solver s;
    loadCnf(s, cnf);
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Dimacs, RoundTrip)
{
    Cnf cnf;
    cnf.numVars = 2;
    cnf.clauses = {{Lit(0, false), Lit(1, true)}, {Lit(1, false)}};
    std::string text = toDimacs(cnf);
    std::istringstream in(text);
    Cnf back = parseDimacs(in);
    EXPECT_EQ(back.numVars, cnf.numVars);
    ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
    for (size_t i = 0; i < cnf.clauses.size(); i++)
        EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
}

namespace
{

/** A saturating counter that (correctly) never exceeds 10. */
struct SatCounter
{
    Design d{"satcnt"};
    SigId cnt;
    SatCounter()
    {
        Builder b(d);
        RegSig c = b.regh("cnt", 4, 0);
        b.when(c.q < b.lit(4, 10));
        b.assign(c, c.q + b.lit(4, 1));
        b.end();
        b.finalize();
        cnt = c.q.id;
    }
};

} // namespace

TEST(Prove, InvariantHolds)
{
    SatCounter sc;
    bmc::EngineConfig cfg;
    cfg.bound = 16;
    bmc::Engine eng(sc.d, cfg);
    // cnt <= 10 always (within the bound).
    auto inv = prop::pNot(prop::pEq(sc.cnt, 11));
    EXPECT_EQ(eng.prove(inv, {}), bmc::Engine::ProveOutcome::Proven);
}

TEST(Prove, ViolationProducesCounterexample)
{
    SatCounter sc;
    bmc::EngineConfig cfg;
    cfg.bound = 16;
    bmc::Engine eng(sc.d, cfg);
    // Claim cnt != 7: falsified at cycle 7.
    auto inv = prop::pNot(prop::pEq(sc.cnt, 7));
    bmc::Witness cex;
    EXPECT_EQ(eng.prove(inv, {}, &cex),
              bmc::Engine::ProveOutcome::Falsified);
    EXPECT_EQ(cex.matchFrame, 7u);
    EXPECT_EQ(cex.trace.value(7, sc.cnt), 7u);
}

TEST(Prove, UndeterminedUnderTinyBudget)
{
    // A 16-bit multiplier equivalence claim that a 1-conflict budget
    // cannot decide.
    Design d("mulcmp");
    SigId neq;
    {
        Builder b(d);
        Sig x = b.input("x", 16);
        Sig y = b.input("y", 16);
        Sig p1 = x * y;
        Sig p2 = y * x;
        RegSig r = b.regh("neq", 1, 0);
        b.assign(r, p1 != p2);
        b.finalize();
        neq = r.q.id;
    }
    bmc::EngineConfig cfg;
    cfg.bound = 3;
    cfg.budget.maxConflicts = 1;
    bmc::Engine eng(d, cfg);
    auto outcome = eng.prove(prop::pNot(prop::pBit(neq)), {});
    // Either it proves it instantly via structural hashing (p1 == p2
    // fold) or runs out of budget; both are acceptable, Falsified is not.
    EXPECT_NE(outcome, bmc::Engine::ProveOutcome::Falsified);
}
