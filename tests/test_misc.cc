/**
 * @file
 * Tests for the auxiliary tooling: VCD export, Graphviz μHB rendering,
 * the RV-lite ISA table invariants, program-driver delays, and property
 * AST rendering/evaluation corners.
 */

#include <gtest/gtest.h>

#include <set>

#include "designs/driver.hh"
#include "designs/mcva_isa.hh"
#include "designs/tiny3.hh"
#include "prop/property.hh"
#include "sim/vcd.hh"
#include "uhb/graph.hh"

using namespace rmp;
using namespace rmp::designs;

TEST(Vcd, ContainsDeclarationsAndChanges)
{
    Design d("vcd");
    SigId in_id, reg_id;
    {
        Builder b(d);
        Sig in = b.input("data_in", 4);
        RegSig r = b.regh("acc", 8, 0);
        b.assign(r, r.q + in.zext(8));
        b.finalize();
        in_id = in.id;
        reg_id = r.q.id;
    }
    Simulator sim(d);
    sim.step({{in_id, 3}});
    sim.step({{in_id, 5}});
    sim.step({{in_id, 0}});
    std::string vcd = traceToVcd(d, sim.trace());
    EXPECT_NE(vcd.find("$var wire 4"), std::string::npos);
    EXPECT_NE(vcd.find("data_in"), std::string::npos);
    EXPECT_NE(vcd.find("acc"), std::string::npos);
    EXPECT_NE(vcd.find("#0"), std::string::npos);
    EXPECT_NE(vcd.find("#2"), std::string::npos);
    // acc is 3 during cycle 1: binary 00000011 appears.
    EXPECT_NE(vcd.find("b00000011"), std::string::npos);
    (void)reg_id;
}

TEST(Vcd, NarrowedSignalSelection)
{
    Design d("vcd2");
    SigId in_id;
    {
        Builder b(d);
        Sig in = b.input("only_me", 1);
        RegSig r = b.regh("hidden", 1, 0);
        b.assign(r, in);
        b.finalize();
        in_id = in.id;
    }
    Simulator sim(d);
    sim.step({{in_id, 1}});
    std::string vcd = traceToVcd(d, sim.trace(), {in_id});
    EXPECT_NE(vcd.find("only_me"), std::string::npos);
    EXPECT_EQ(vcd.find("hidden"), std::string::npos);
}

TEST(Dot, RendersNodesEdgesAndDecisionColors)
{
    uhb::UPath p;
    p.schedule = {{0}, {1}, {2}};
    p.edges = {{0, 0, 1, 1}, {1, 1, 2, 2}};
    uhb::Decision d;
    d.src = 1;
    d.dst = {2};
    std::string dot =
        uhb::renderUPathDot(p, {"IF", "EX", "WB"}, {d});
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("n0_0 -> n1_1"), std::string::npos);
    EXPECT_NE(dot.find("fillcolor=orange"), std::string::npos);   // src
    EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos); // dst
}

TEST(McvaIsa, Exactly72InstructionsWithUniqueOpcodes)
{
    auto table = mcvaInstrTable();
    EXPECT_EQ(table.size(), 72u); // the RV64IM count from §VI
    std::set<uint64_t> opcodes;
    std::set<std::string> names;
    for (const auto &i : table) {
        EXPECT_TRUE(opcodes.insert(i.opcode).second)
            << "duplicate opcode for " << i.name;
        EXPECT_TRUE(names.insert(i.name).second)
            << "duplicate name " << i.name;
        EXPECT_LT(i.opcode, 128u); // 7-bit opcode field
    }
}

TEST(McvaIsa, ClassCountsMatchThePaper)
{
    auto table = mcvaInstrTable();
    std::map<uhb::InstrClass, int> by_class;
    for (const auto &i : table)
        by_class[i.cls]++;
    // §VII-A1: 8 DIV/REM variants, 7 load variants, 4 store variants,
    // 6 branches, 2 jumps, 5 multiplies.
    EXPECT_EQ(by_class[uhb::InstrClass::DivRem], 8);
    EXPECT_EQ(by_class[uhb::InstrClass::Load], 7);
    EXPECT_EQ(by_class[uhb::InstrClass::Store], 4);
    EXPECT_EQ(by_class[uhb::InstrClass::Branch], 6);
    EXPECT_EQ(by_class[uhb::InstrClass::Jump], 2);
    EXPECT_EQ(by_class[uhb::InstrClass::Mul], 5);
}

TEST(McvaIsa, SubsetsAreValidNames)
{
    auto table = mcvaInstrTable();
    std::set<std::string> names;
    for (const auto &i : table)
        names.insert(i.name);
    for (const auto &n : mcvaArtifactSubset())
        EXPECT_TRUE(names.count(n)) << n;
    for (const auto &n : mcvaClassRepresentatives())
        EXPECT_TRUE(names.count(n)) << n;
}

TEST(Driver, DelayBeforeInsertsBubbles)
{
    Harness hx(buildTiny3());
    ProgramDriver drv(hx);
    const auto &info = hx.duv();
    auto t = drv.run({{info.encode("ADD", 1, 0, 0)},
                      {info.encode("ADD", 2, 0, 0), true, false, 5}},
                     20);
    // The marked instruction's first visit happens >= 5 cycles after the
    // first instruction's.
    SigId at_if = hx.plSig(0).iuvAt;
    int first_visit = -1;
    for (size_t c = 0; c < t.numCycles(); c++)
        if (t.value(c, at_if)) {
            first_visit = static_cast<int>(c);
            break;
        }
    ASSERT_GE(first_visit, 6);
}

TEST(Prop, StrRendersReadably)
{
    Design d("p");
    Builder b(d);
    Sig a = b.input("a", 4);
    Sig v = b.input("v", 1);
    b.finalize();
    auto e = prop::pDelay(prop::pAnd(prop::pBit(v.id),
                                     prop::pNot(prop::pEq(a.id, 3))),
                          1, prop::pBit(v.id));
    std::string s = e->str(d);
    EXPECT_NE(s.find("##1"), std::string::npos);
    EXPECT_NE(s.find("a==3"), std::string::npos);
    EXPECT_NE(s.find("v"), std::string::npos);
}

TEST(Prop, EvalBeyondTraceIsFalse)
{
    Design d("p2");
    SigId vid;
    {
        Builder b(d);
        Sig v = b.input("v", 1);
        RegSig r = b.regh("r", 1, 0);
        b.assign(r, v);
        b.finalize();
        vid = v.id;
    }
    Simulator sim(d);
    sim.step({{vid, 1}});
    auto e = prop::pDelay(prop::pBit(vid), 3, prop::pBit(vid));
    EXPECT_FALSE(prop::evalOnTrace(e, sim.trace(), 0)); // runs off the end
}
