/**
 * @file
 * Tests for the verdict-audit layer (EngineConfig::auditReplay /
 * auditProof): reachable verdicts are replay-validated and unreachable
 * verdicts DRAT-closed with zero mismatches on healthy designs; audited
 * and unaudited runs return identical verdicts (including across --jobs
 * values under a SAT budget); trivially-unreachable verdicts stay in the
 * trusted base; and the replay oracle rejects seeded witness defects.
 */

#include <gtest/gtest.h>

#include "exec/engine_pool.hh"
#include "rtlir/builder.hh"

using namespace rmp;
using namespace rmp::bmc;
using namespace rmp::exec;
using namespace rmp::prop;

namespace
{

/** A free-running 4-bit counter design. */
struct CounterDesign
{
    Design d{"counter"};
    SigId cnt;

    CounterDesign()
    {
        Builder b(d);
        RegSig c = b.regh("cnt", 4, 0);
        b.assign(c, c.q + b.lit(4, 1));
        b.finalize();
        cnt = c.q.id;
    }
};

/** Input-driven accumulator: reachable covers with non-trivial witnesses. */
struct AccDesign
{
    Design d{"acc"};
    SigId in, acc;

    AccDesign()
    {
        Builder b(d);
        Sig i = b.input("in", 4);
        RegSig a = b.regh("acc", 8, 0);
        b.assign(a, a.q + i.zext(8));
        b.finalize();
        in = i.id;
        acc = a.q.id;
    }
};

/** Registered 16x16 multiplier: hard under a small conflict budget. */
struct FactorDesign
{
    Design d{"factor"};
    SigId prod;

    FactorDesign()
    {
        Builder b(d);
        Sig a = b.input("a", 16);
        Sig x = b.input("b", 16);
        RegSig p = b.regh("prod", 16, 0);
        b.assign(p, a * x);
        b.finalize();
        prod = p.q.id;
    }
};

EngineConfig
auditedCfg(unsigned bound)
{
    EngineConfig cfg;
    cfg.bound = bound;
    cfg.auditReplay = true;
    cfg.auditProof = true;
    return cfg;
}

} // namespace

TEST(Audit, ReachableVerdictIsReplayAudited)
{
    CounterDesign cd;
    Engine eng(cd.d, auditedCfg(10));
    CoverResult r = eng.cover(pEq(cd.cnt, 7), {});
    ASSERT_EQ(r.outcome, Outcome::Reachable);
    EXPECT_TRUE(r.audit.replayed);
    EXPECT_FALSE(r.audit.proofChecked);
    EXPECT_FALSE(r.audit.mismatch);
    EXPECT_EQ(r.witness.matchFrame, 7u);
    EXPECT_EQ(eng.stats().auditReplayed, 1u);
    EXPECT_EQ(eng.stats().auditMismatches, 0u);
}

TEST(Audit, UnreachableVerdictIsProofChecked)
{
    // The accumulator's inputs are free, so this unreachability is a
    // genuine solver-backed UNSAT (a closed design would constant-fold
    // and never reach the solver): 3 additions of at most 15 cannot
    // produce 50 within bound 4.
    AccDesign ad;
    Engine eng(ad.d, auditedCfg(4));
    CoverResult r = eng.cover(pEq(ad.acc, 50), {});
    ASSERT_EQ(r.outcome, Outcome::Unreachable);
    EXPECT_TRUE(r.audit.proofChecked);
    EXPECT_FALSE(r.audit.replayed);
    EXPECT_FALSE(r.audit.mismatch);
    EXPECT_EQ(eng.stats().auditProofChecked, 1u);
    EXPECT_EQ(eng.stats().auditMismatches, 0u);
}

TEST(Audit, TriviallyUnreachableStaysInTrustedBase)
{
    CounterDesign cd;
    Engine eng(cd.d, auditedCfg(4));
    // Contradictory assumes fold to constant-false before any solver
    // call; there is no SAT evidence to audit (DESIGN.md §3g).
    auto contradiction = pAnd(pEq(cd.cnt, 0), pNot(pEq(cd.cnt, 0)));
    CoverResult r = eng.cover(pTrue(), {contradiction});
    ASSERT_EQ(r.outcome, Outcome::Unreachable);
    EXPECT_FALSE(r.audit.proofChecked);
    EXPECT_FALSE(r.audit.mismatch);
    EXPECT_EQ(eng.stats().auditProofChecked, 0u);
}

TEST(Audit, ReplayOracleRejectsCorruptedWitness)
{
    AccDesign ad;
    Engine eng(ad.d, auditedCfg(6));
    auto seq = pEq(ad.acc, 45);
    CoverResult r = eng.cover(seq, {});
    ASSERT_EQ(r.outcome, Outcome::Reachable);
    ASSERT_FALSE(r.audit.mismatch);

    // The intact witness passes the standalone oracle.
    ReplayCheck good = replayWitness(ad.d, r.witness.inputs, seq, {}, 6);
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(good.matchFrame, r.witness.matchFrame);

    // Seeded defect: zero every stimulus frame — the accumulator stays 0
    // and the cover can no longer fire. The oracle must say so.
    std::vector<InputMap> bad = r.witness.inputs;
    for (auto &frame : bad)
        frame[ad.in] = 0;
    ReplayCheck rc = replayWitness(ad.d, bad, seq, {}, 6);
    EXPECT_FALSE(rc.ok());
    EXPECT_FALSE(rc.matched);

    // Seeded defect: a witness whose inputs violate an assume. in==2
    // every cycle satisfies the cover acc==8 at frame 4 but breaks the
    // assume in!=2; the oracle must flag the assume, not the cover.
    std::vector<InputMap> two(6);
    for (auto &frame : two)
        frame[ad.in] = 2;
    ReplayCheck rc2 =
        replayWitness(ad.d, two, pEq(ad.acc, 8), {pNot(pEq(ad.in, 2))}, 6);
    EXPECT_TRUE(rc2.matched);
    EXPECT_FALSE(rc2.assumesHold);
    EXPECT_FALSE(rc2.ok());
}

TEST(Audit, AuditedVerdictsMatchUnaudited)
{
    // The audit must be an observer: identical verdicts, witnesses, and
    // match frames with auditing on and off — including the budget-
    // limited Undetermined path, whose determinism the single-point
    // budget check in the solver guarantees.
    FactorDesign fd;
    EngineConfig plain;
    plain.bound = 2;
    plain.budget.maxConflicts = 30;
    EngineConfig audited = plain;
    audited.auditReplay = true;
    audited.auditProof = true;

    std::vector<prop::ExprRef> seqs = {
        pEq(fd.prod, 60491), // 251*241 semiprime: hard, likely budgeted
        pEq(fd.prod, 12),    // easy reachable
    };
    for (const auto &seq : seqs) {
        Engine e1(fd.d, plain);
        Engine e2(fd.d, audited);
        CoverResult r1 = e1.cover(seq, {});
        CoverResult r2 = e2.cover(seq, {});
        ASSERT_EQ(r1.outcome, r2.outcome);
        EXPECT_FALSE(r2.audit.mismatch);
        if (r1.outcome == Outcome::Reachable) {
            EXPECT_EQ(r1.witness.matchFrame, r2.witness.matchFrame);
            EXPECT_EQ(r1.witness.inputs, r2.witness.inputs);
        }
    }
}

TEST(Audit, PoolVerdictsJobsInvariantUnderAuditAndBudget)
{
    // jobs=1 vs jobs=4 with auditing and a tight budget: same verdicts,
    // zero mismatches, and the audit tallies themselves identical (lane
    // assignment is jobs-independent by construction).
    FactorDesign fd;
    EngineConfig cfg;
    cfg.bound = 2;
    cfg.budget.maxConflicts = 25;
    cfg.auditReplay = true;
    cfg.auditProof = true;

    std::vector<Query> qs;
    for (uint64_t v : {60491ULL, 35ULL, 6ULL, 59989ULL, 12ULL, 143ULL})
        qs.push_back(Query{pEq(fd.prod, v), {}, -1});

    EnginePool p1(fd.d, cfg, ExecConfig{1, 2});
    EnginePool p4(fd.d, cfg, ExecConfig{4, 2});
    auto r1 = p1.evalBatch(qs);
    auto r4 = p4.evalBatch(qs);
    ASSERT_EQ(r1.size(), r4.size());
    for (size_t i = 0; i < r1.size(); i++) {
        EXPECT_EQ(r1[i].outcome, r4[i].outcome) << "query " << i;
        EXPECT_FALSE(r1[i].audit.mismatch);
        EXPECT_FALSE(r4[i].audit.mismatch);
    }
    PoolStats s1 = p1.stats(), s4 = p4.stats();
    EXPECT_EQ(s1.engine.auditReplayed, s4.engine.auditReplayed);
    EXPECT_EQ(s1.engine.auditProofChecked, s4.engine.auditProofChecked);
    EXPECT_EQ(s1.engine.auditMismatches, 0u);
    EXPECT_EQ(s4.engine.auditMismatches, 0u);
    // Every solver-backed verdict in this batch was audited one way or
    // the other.
    EXPECT_EQ(s1.engine.auditReplayed + s1.engine.auditProofChecked,
              s1.engine.reachable + s1.engine.unreachable);
}

TEST(Audit, CacheHitsDoNotReAudit)
{
    CounterDesign cd;
    EnginePool pool(cd.d, auditedCfg(10), ExecConfig{1, 2});
    Query q{pEq(cd.cnt, 7), {}, -1};
    CoverResult first = pool.eval(q);
    ASSERT_EQ(first.outcome, Outcome::Reachable);
    CoverResult again = pool.eval(q);
    EXPECT_EQ(again.outcome, Outcome::Reachable);
    PoolStats s = pool.stats();
    // One solver evaluation, one audit; the hit replays the memoized
    // (already-audited) result.
    EXPECT_EQ(s.engine.queries, 1u);
    EXPECT_EQ(s.engine.auditReplayed, 1u);
    EXPECT_EQ(s.cache.hits, 1u);
}
