/**
 * @file
 * Unit tests for the netlist IR and builder, cross-checked through the
 * simulator: operator semantics, when/elseWhen/otherwise lowering,
 * memories, fan-in queries, validation, and design statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "rtlir/builder.hh"
#include "sim/simulator.hh"

using namespace rmp;

namespace
{

/** Build a pure-combinational design computing f(a, b) and evaluate it. */
uint64_t
evalBinary(unsigned width, uint64_t av, uint64_t bv,
           Sig (*f)(Builder &, Sig, Sig))
{
    Design d("comb");
    Builder b(d);
    Sig a = b.input("a", width);
    Sig bb = b.input("b", width);
    Sig out = f(b, a, bb);
    b.named("out", out);
    b.finalize();
    Simulator sim(d);
    sim.step({{a.id, av}, {bb.id, bv}});
    return sim.value(out.id);
}

} // namespace

TEST(Rtlir, AddSubMulWrapAround)
{
    EXPECT_EQ(evalBinary(8, 200, 100,
                         [](Builder &, Sig a, Sig b) { return a + b; }),
              (200 + 100) & 0xff);
    EXPECT_EQ(evalBinary(8, 5, 9,
                         [](Builder &, Sig a, Sig b) { return a - b; }),
              (5 - 9) & 0xff);
    EXPECT_EQ(evalBinary(8, 20, 30,
                         [](Builder &, Sig a, Sig b) { return a * b; }),
              (20 * 30) & 0xff);
}

TEST(Rtlir, CompareOps)
{
    EXPECT_EQ(evalBinary(8, 3, 3,
                         [](Builder &, Sig a, Sig b) { return a == b; }),
              1u);
    EXPECT_EQ(evalBinary(8, 3, 4,
                         [](Builder &, Sig a, Sig b) { return a != b; }),
              1u);
    EXPECT_EQ(evalBinary(8, 3, 4,
                         [](Builder &, Sig a, Sig b) { return a < b; }),
              1u);
    EXPECT_EQ(evalBinary(8, 4, 3,
                         [](Builder &, Sig a, Sig b) { return a >= b; }),
              1u);
}

TEST(Rtlir, BitwiseAndReductions)
{
    Design d("bits");
    Builder b(d);
    Sig a = b.input("a", 4);
    Sig n = b.named("n", ~a);
    Sig ro = b.named("ro", a.orR());
    Sig ra = b.named("ra", a.andR());
    Sig sl = b.named("sl", a.slice(1, 2));
    b.finalize();
    Simulator sim(d);
    sim.step({{a.id, 0b0110}});
    EXPECT_EQ(sim.value(n.id), 0b1001u);
    EXPECT_EQ(sim.value(ro.id), 1u);
    EXPECT_EQ(sim.value(ra.id), 0u);
    EXPECT_EQ(sim.value(sl.id), 0b11u);
    sim.step({{a.id, 0b1111}});
    EXPECT_EQ(sim.value(ra.id), 1u);
    sim.step({{a.id, 0}});
    EXPECT_EQ(sim.value(ro.id), 0u);
}

TEST(Rtlir, ConcatAndZext)
{
    Design d("cc");
    Builder b(d);
    Sig a = b.input("a", 4);
    Sig c = b.input("c", 4);
    Sig cat = b.named("cat", b.cat(a, c)); // a is high part
    Sig z = b.named("z", a.zext(8));
    b.finalize();
    Simulator sim(d);
    sim.step({{a.id, 0xA}, {c.id, 0x5}});
    EXPECT_EQ(sim.value(cat.id), 0xA5u);
    EXPECT_EQ(sim.value(z.id), 0x0Au);
}

TEST(Rtlir, VariableShifts)
{
    Design d("sh");
    Builder b(d);
    Sig a = b.input("a", 8);
    Sig amt = b.input("amt", 3);
    Sig l = b.named("l", b.shl(a, amt));
    Sig r = b.named("r", b.shr(a, amt));
    b.finalize();
    Simulator sim(d);
    for (unsigned s = 0; s < 8; s++) {
        sim.step({{a.id, 0xC3}, {amt.id, s}});
        EXPECT_EQ(sim.value(l.id), (0xC3u << s) & 0xff) << "shl by " << s;
        EXPECT_EQ(sim.value(r.id), 0xC3u >> s) << "shr by " << s;
    }
}

TEST(Rtlir, RegisterCounterAndReset)
{
    Design d("cnt");
    Builder b(d);
    RegSig cnt = b.regh("cnt", 8, 3); // resets to 3
    b.assign(cnt, cnt.q + b.lit(8, 1));
    b.finalize();
    Simulator sim(d);
    sim.step();
    EXPECT_EQ(sim.value(cnt.q.id), 3u);
    sim.step();
    EXPECT_EQ(sim.value(cnt.q.id), 4u);
    sim.reset();
    sim.step();
    EXPECT_EQ(sim.value(cnt.q.id), 3u);
}

TEST(Rtlir, WhenElseWhenOtherwisePriority)
{
    Design d("whens");
    Builder b(d);
    Sig sel = b.input("sel", 2);
    RegSig r = b.regh("r", 8, 0);
    b.when(sel == b.lit(2, 0));
    b.assign(r, b.lit(8, 10));
    b.elseWhen(sel == b.lit(2, 1));
    b.assign(r, b.lit(8, 20));
    b.otherwise();
    b.assign(r, b.lit(8, 30));
    b.end();
    b.finalize();
    Simulator sim(d);
    sim.step({{sel.id, 0}});
    sim.step({{sel.id, 1}});
    EXPECT_EQ(sim.value(r.q.id), 10u); // latched from cycle 0
    sim.step({{sel.id, 2}});
    EXPECT_EQ(sim.value(r.q.id), 20u);
    sim.step({{sel.id, 3}});
    EXPECT_EQ(sim.value(r.q.id), 30u);
    sim.step();
    EXPECT_EQ(sim.value(r.q.id), 30u);
}

TEST(Rtlir, LastAssignmentWins)
{
    Design d("last");
    Builder b(d);
    Sig c = b.input("c", 1);
    RegSig r = b.regh("r", 4, 0);
    b.assign(r, b.lit(4, 1));
    b.when(c);
    b.assign(r, b.lit(4, 2));
    b.end();
    b.finalize();
    Simulator sim(d);
    sim.step({{c.id, 1}});
    sim.step({{c.id, 0}});
    EXPECT_EQ(sim.value(r.q.id), 2u);
    sim.step();
    EXPECT_EQ(sim.value(r.q.id), 1u);
}

TEST(Rtlir, UnassignedRegisterHoldsValue)
{
    Design d("hold");
    Builder b(d);
    Sig en = b.input("en", 1);
    RegSig r = b.regh("r", 8, 7);
    b.when(en);
    b.assign(r, b.lit(8, 42));
    b.end();
    b.finalize();
    Simulator sim(d);
    sim.step({{en.id, 0}});
    sim.step({{en.id, 0}});
    EXPECT_EQ(sim.value(r.q.id), 7u);
    sim.step({{en.id, 1}});
    EXPECT_EQ(sim.value(r.q.id), 7u);
    sim.step({{en.id, 0}});
    EXPECT_EQ(sim.value(r.q.id), 42u);
    sim.step();
    EXPECT_EQ(sim.value(r.q.id), 42u);
}

TEST(Rtlir, MemoryReadWrite)
{
    Design d("mem");
    Builder b(d);
    Sig we = b.input("we", 1);
    Sig waddr = b.input("waddr", 2);
    Sig wdata = b.input("wdata", 8);
    Sig raddr = b.input("raddr", 2);
    MemArray m = b.mem("m", 4, 8);
    Sig rdata = b.named("rdata", b.memRead(m, raddr));
    b.memWrite(m, we, waddr, wdata);
    b.finalize();
    Simulator sim(d);
    // Write 0x55 to word 2.
    sim.step({{we.id, 1}, {waddr.id, 2}, {wdata.id, 0x55}});
    // Read back.
    sim.step({{we.id, 0}, {raddr.id, 2}});
    EXPECT_EQ(sim.value(rdata.id), 0x55u);
    sim.step({{we.id, 0}, {raddr.id, 1}});
    EXPECT_EQ(sim.value(rdata.id), 0u);
}

TEST(Rtlir, CombFanInSources)
{
    Design d("fan");
    Builder b(d);
    Sig a = b.input("a", 4);
    Sig r1 = b.reg("r1", 4);
    Sig r2 = b.reg("r2", 4);
    Sig s = (a + r1) == r2;
    b.named("s", s);
    // Connect registers trivially.
    b.finalize();
    auto srcs = d.combFanInSources(s.id);
    EXPECT_EQ(srcs.size(), 3u);
    // Each source is one of {a, r1, r2}.
    for (SigId id : srcs) {
        EXPECT_TRUE(id == a.id || id == r1.id || id == r2.id);
    }
    // Cone stops at registers: r1's next input (itself) not traversed.
    auto srcs_a = d.combFanInSources(a.id);
    ASSERT_EQ(srcs_a.size(), 1u);
    EXPECT_EQ(srcs_a[0], a.id);
}

TEST(Rtlir, CombFanInSourcesThroughMemoryPorts)
{
    // A mux-tree read port's cone contains every memory word plus the
    // address; a write port contributes nothing to the read data's cone.
    Design d("memfan");
    Builder b(d);
    Sig we = b.input("we", 1);
    Sig waddr = b.input("waddr", 2);
    Sig wdata = b.input("wdata", 8);
    Sig raddr = b.input("raddr", 2);
    MemArray m = b.mem("m", 4, 8);
    Sig rdata = b.named("rdata", b.memRead(m, raddr));
    b.memWrite(m, we, waddr, wdata);
    b.finalize();

    auto srcs = d.combFanInSources(rdata.id);
    EXPECT_TRUE(std::binary_search(srcs.begin(), srcs.end(), raddr.id));
    for (const RegSig &w : m.words)
        EXPECT_TRUE(std::binary_search(srcs.begin(), srcs.end(), w.q.id))
            << "memory word missing from read cone";
    // The write-port inputs are sequential-only influences.
    EXPECT_FALSE(std::binary_search(srcs.begin(), srcs.end(), we.id));
    EXPECT_FALSE(std::binary_search(srcs.begin(), srcs.end(), wdata.id));
    EXPECT_FALSE(std::binary_search(srcs.begin(), srcs.end(), waddr.id));
    EXPECT_EQ(srcs.size(), m.words.size() + 1);

    // ...but they do reach the words' next-state signals.
    auto next0 = d.combFanInSources(d.cell(m.words[0].q.id).args[0]);
    EXPECT_TRUE(std::binary_search(next0.begin(), next0.end(), we.id));
    EXPECT_TRUE(std::binary_search(next0.begin(), next0.end(), wdata.id));
}

TEST(Rtlir, CombFanInSourcesConstantOnlyCone)
{
    // A cone made only of constants has no sources at all.
    Design d("constfan");
    Builder b(d);
    Sig k = b.named("k", b.lit(8, 3) + b.lit(8, 4));
    b.input("unused", 1);
    b.finalize();
    auto srcs = d.combFanInSources(k.id);
    EXPECT_TRUE(srcs.empty());
}

TEST(Rtlir, CombFanInSourcesMultiRootDedup)
{
    // The multi-root overload de-duplicates sources shared between
    // roots and equals the union of the per-root cones.
    Design d("multiroot");
    Builder b(d);
    Sig a = b.input("a", 4);
    Sig x = b.input("x", 4);
    Sig y = b.input("y", 4);
    Sig s1 = b.named("s1", a + x);
    Sig s2 = b.named("s2", a + y);
    b.finalize();
    auto both = d.combFanInSources({s1.id, s2.id});
    EXPECT_EQ(both, (std::vector<SigId>{a.id, x.id, y.id}));
    // Duplicate roots collapse too.
    auto dup = d.combFanInSources({s1.id, s1.id, s1.id});
    EXPECT_EQ(dup, (std::vector<SigId>{a.id, x.id}));
    // A register root reports itself exactly once.
    auto empty = d.combFanInSources(std::vector<SigId>{});
    EXPECT_TRUE(empty.empty());
}

TEST(Rtlir, CombFanInSourcesSelfLoopRegister)
{
    // r <- r + 1: the register feeds its own next-state. The cone of r
    // is just {r}; the cone of r's next-state stops at r, not looping.
    Design d("selffan");
    Builder b(d);
    RegSig r = b.regh("r", 8);
    b.assign(r, r.q + b.lit(8, 1));
    Sig obs = b.named("obs", r.q == b.lit(8, 5));
    b.finalize();
    auto at_reg = d.combFanInSources(r.q.id);
    EXPECT_EQ(at_reg, (std::vector<SigId>{r.q.id}));
    auto at_next = d.combFanInSources(d.cell(r.q.id).args[0]);
    EXPECT_EQ(at_next, (std::vector<SigId>{r.q.id}));
    auto at_obs = d.combFanInSources(obs.id);
    EXPECT_EQ(at_obs, (std::vector<SigId>{r.q.id}));
}

TEST(Rtlir, StatsCountCells)
{
    Design d("stats");
    Builder b(d);
    Sig a = b.input("a", 8);
    RegSig r = b.regh("r", 8, 0);
    b.assign(r, a + r.q);
    b.finalize();
    DesignStats st = d.stats();
    EXPECT_EQ(st.inputs, 1u);
    EXPECT_EQ(st.registers, 1u);
    EXPECT_EQ(st.flopBits, 8u);
    EXPECT_GE(st.combCells, 1u);
}

TEST(RtlirDeath, CombinationalCycleIsFatal)
{
    // A mux loop with no register: must be rejected at validate().
    EXPECT_EXIT(
        {
            Design d("loop");
            d.name();
            SigId a = d.addInput("a", 1);
            // x = a & x is a combinational cycle; emulate by connecting
            // a cell to itself through a second cell.
            SigId x = d.addBinary(Op::And, a, a);
            // Rewire: create y = x & a, then make x depend on y via
            // const-cast style is not possible through the API, so build
            // the cycle through a register-free pair directly.
            SigId y = d.addBinary(Op::And, x, a);
            const_cast<Cell &>(d.cell(x)).args[1] = y;
            d.validate();
        },
        ::testing::ExitedWithCode(1), "combinational cycle");
}

TEST(RtlirDeath, WidthMismatchPanics)
{
    EXPECT_DEATH(
        {
            Design d("w");
            SigId a = d.addInput("a", 4);
            SigId b = d.addInput("b", 5);
            d.addBinary(Op::Add, a, b);
        },
        "width mismatch");
}
