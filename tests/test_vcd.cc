/**
 * @file
 * VCD writer edge cases: 1-bit scalar formatting, never-changing
 * signals, identifier rollover past 94 dumped signals, and empty
 * traces.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rtlir/builder.hh"
#include "sim/simulator.hh"
#include "sim/vcd.hh"

using namespace rmp;

namespace
{

/** All "$var ..." identifier codes, in declaration order. */
std::vector<std::string>
varIds(const std::string &vcd)
{
    std::vector<std::string> out;
    std::istringstream is(vcd);
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("$var ", 0) != 0)
            continue;
        // $var wire <w> <id> <name> $end
        std::istringstream ls(line);
        std::string var, wire, w, id;
        ls >> var >> wire >> w >> id;
        out.push_back(id);
    }
    return out;
}

/** Count occurrences of a whole line. */
size_t
countLines(const std::string &vcd, const std::string &needle)
{
    size_t n = 0;
    std::istringstream is(vcd);
    std::string line;
    while (std::getline(is, line))
        if (line == needle)
            n++;
    return n;
}

} // anonymous namespace

TEST(Vcd, OneBitSignalsUseScalarFormat)
{
    Design d("bit");
    Builder b(d);
    Sig in = b.input("in", 1);
    RegSig r = b.regh("r", 1, 0);
    b.assign(r, in);
    b.finalize();

    Simulator sim(d);
    sim.step({{in.id, 1}});
    sim.step({{in.id, 0}});
    sim.step({{in.id, 1}});

    std::string vcd = traceToVcd(d, sim.trace());
    // Scalar (1-bit) changes are emitted as "0<id>" / "1<id>", never as
    // vector "b... <id>" records.
    EXPECT_EQ(vcd.find("b0 "), std::string::npos);
    EXPECT_EQ(vcd.find("b1 "), std::string::npos);
    auto ids = varIds(vcd);
    ASSERT_EQ(ids.size(), 2u); // "in" and "r"
    for (const auto &id : ids)
        EXPECT_TRUE(countLines(vcd, "0" + id) > 0 ||
                    countLines(vcd, "1" + id) > 0);
    // The input toggles 1,0,1: both polarities must appear for it.
    EXPECT_GE(countLines(vcd, "1" + ids[0]), 2u);
    EXPECT_GE(countLines(vcd, "0" + ids[0]), 1u);
}

TEST(Vcd, ConstantSignalDumpedExactlyOnce)
{
    Design d("consts");
    Builder b(d);
    Sig in = b.input("in", 4);
    RegSig frozen = b.regh("frozen", 4, 5); // never assigned: stays 5
    (void)frozen;
    b.named("mirror", in);
    b.finalize();

    Simulator sim(d);
    for (int t = 0; t < 6; t++)
        sim.step({{in.id, 9}}); // constant input too

    std::string vcd = traceToVcd(d, sim.trace());
    auto ids = varIds(vcd);
    ASSERT_GE(ids.size(), 2u);
    // Every signal holds one value for the whole trace, so each value
    // record appears exactly once (at #0) despite 6 cycles.
    for (const auto &id : ids) {
        size_t records = 0;
        std::istringstream is(vcd);
        std::string line;
        while (std::getline(is, line))
            if (line.size() > id.size() &&
                line.compare(line.size() - id.size(), id.size(), id) == 0 &&
                line[0] != '$')
                records++;
        EXPECT_EQ(records, 1u) << "id " << id;
    }
    // All 6 timesteps are still present.
    for (int t = 0; t <= 6; t++)
        EXPECT_EQ(countLines(vcd, "#" + std::to_string(t)), 1u);
}

TEST(Vcd, IdentifierRolloverPast94Signals)
{
    // 100 named signals force multi-character VCD identifiers (the code
    // space is the 94 printable chars '!'..'~' per position).
    Design d("many");
    Builder b(d);
    Sig in = b.input("sig0", 8);
    for (int i = 1; i < 100; i++)
        b.named("sig" + std::to_string(i), in + b.lit(8, i));
    b.finalize();

    Simulator sim(d);
    sim.step({{in.id, 1}});
    sim.step({{in.id, 2}});

    std::string vcd = traceToVcd(d, sim.trace());
    auto ids = varIds(vcd);
    ASSERT_EQ(ids.size(), 100u);
    std::set<std::string> uniq(ids.begin(), ids.end());
    EXPECT_EQ(uniq.size(), 100u) << "identifier collision after rollover";
    // The 95th signal (index 94) rolls over to a two-char identifier.
    EXPECT_EQ(ids[93].size(), 1u);
    EXPECT_EQ(ids[94].size(), 2u);
    for (const auto &id : ids) {
        for (char c : id) {
            EXPECT_GE(c, '!');
            EXPECT_LE(c, '~');
        }
    }
}

TEST(Vcd, EmptyTraceIsWellFormed)
{
    Design d("empty");
    Builder b(d);
    b.input("in", 2);
    b.finalize();

    Simulator sim(d); // no steps: zero-cycle trace
    std::string vcd = traceToVcd(d, sim.trace());
    EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
    EXPECT_NE(vcd.find("$scope module empty $end"), std::string::npos);
    EXPECT_EQ(countLines(vcd, "#0"), 1u); // final timestamp only
    auto ids = varIds(vcd);
    EXPECT_EQ(ids.size(), 1u);
    // No value records at all.
    std::istringstream is(vcd);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '$' || line[0] == '#')
            continue;
        ADD_FAILURE() << "unexpected value record in empty trace: " << line;
    }
}
