/**
 * @file
 * Functional tests for the standalone cache DUV: hit/miss paths, fills
 * and replacement, write-through with no-write-allocate, bank selection,
 * port contention, and the μFSM/PL structure used by the cache leakage
 * experiment (§VII-A2).
 */

#include <gtest/gtest.h>

#include "designs/dcache.hh"
#include "designs/driver.hh"

using namespace rmp;
using namespace rmp::designs;

namespace
{

struct DcacheSim
{
    DcacheSim() : hx(buildDcache()), drv(hx) {}
    Harness hx;
    ProgramDriver drv;

    uint64_t
    ld(uint64_t addr)
    {
        return hx.duv().encode("LDREQ", 0, addr, 0);
    }
    uint64_t
    st(uint64_t addr, uint64_t data)
    {
        return hx.duv().encode("STREQ", 0, addr, data & 7);
    }
    uhb::PlId
    pl(const std::string &n) const
    {
        for (uhb::PlId p = 0; p < hx.numPls(); p++)
            if (hx.plName(p) == n)
                return p;
        return uhb::kNoPl;
    }
    unsigned
    visits(const SimTrace &t, const std::string &pl_name)
    {
        return static_cast<unsigned>(
            t.value(t.numCycles() - 1, hx.plSig(pl(pl_name)).visitCount));
    }
    /** Value of backing memory word at end of trace. */
    uint64_t
    mem(const SimTrace &t, unsigned addr)
    {
        return t.value(t.numCycles() - 1, hx.duv().amemRegs[addr]);
    }
};

} // namespace

TEST(Dcache, PlUniverse)
{
    DcacheSim c;
    EXPECT_EQ(c.hx.numPls(), 13u);
    EXPECT_NE(c.pl("wBVld"), uhb::kNoPl);
    EXPECT_NE(c.pl("wr$0"), uhb::kNoPl);
    EXPECT_NE(c.pl("MSHR"), uhb::kNoPl);
}

TEST(Dcache, LoadMissFillsThenHits)
{
    DcacheSim c;
    // First load of addr 2: miss -> MSHR + fill. Second load: hit.
    auto t = c.drv.run({{c.ld(2)}, {c.ld(2), true}}, 25);
    EXPECT_GE(c.visits(t, "ldTag"), 1u);
    // The marked (second) load hit: visited a read bank, not the MSHR.
    EXPECT_EQ(c.visits(t, "MSHR"), 0u);
    EXPECT_EQ(c.visits(t, "rd$0") + c.visits(t, "rd$1"), 1u);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, c.hx.iuvCommitted), 1u);
}

TEST(Dcache, FirstLoadMisses)
{
    DcacheSim c;
    auto t = c.drv.run({{c.ld(5), true}}, 25);
    EXPECT_GE(c.visits(t, "MSHR"), 1u);
    EXPECT_GE(c.visits(t, "fill"), 1u);
    EXPECT_EQ(c.visits(t, "rd$0") + c.visits(t, "rd$1"), 0u);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, c.hx.iuvCommitted), 1u);
}

TEST(Dcache, StoreWriteThroughUpdatesMemory)
{
    DcacheSim c;
    auto t = c.drv.run({{c.st(3, 5), true}}, 25);
    EXPECT_EQ(c.mem(t, 3), 5u);
    EXPECT_GE(c.visits(t, "wBVld"), 1u);
    EXPECT_GE(c.visits(t, "wRTag"), 1u);
    // Cold cache: store misses; no-write-allocate => no bank write.
    EXPECT_EQ(c.visits(t, "wr$0") + c.visits(t, "wr$1"), 0u);
}

TEST(Dcache, StoreHitWritesOneBank)
{
    DcacheSim c;
    // Load addr 1 (fills a way), then — after the fill completed — store
    // to addr 1: hit -> exactly one bank write.
    auto t = c.drv.run({{c.ld(1)}, {c.st(1, 6), true, false, 10}}, 40);
    EXPECT_EQ(c.visits(t, "wr$0") + c.visits(t, "wr$1"), 1u);
    EXPECT_EQ(c.mem(t, 1), 6u);
}

TEST(Dcache, HitAfterStoreReturnsStoredData)
{
    DcacheSim c;
    // Fill line 1, store 6 to it (hit, bank update), load again: the hit
    // must return the stored value.
    auto t = c.drv.run({{c.ld(1)}, {c.st(1, 6)}, {c.ld(1), true}}, 35);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, c.hx.iuvCommitted), 1u);
    // Find the response cycle of the marked load and check its data.
    SigId resp_data = c.hx.design().findByName("resp_data");
    SigId resp_v = c.hx.design().findByName("resp_v");
    SigId resp_pc = c.hx.design().findByName("resp_pc");
    uint64_t iuv_pc = t.value(last, c.hx.iuvPc);
    bool found = false;
    for (size_t cyc = 0; cyc < t.numCycles(); cyc++) {
        if (t.value(cyc, resp_v) && t.value(cyc, resp_pc) == iuv_pc) {
            EXPECT_EQ(t.value(cyc, resp_data), 6u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Dcache, TwoWaysHoldConflictingLines)
{
    DcacheSim c;
    // Addr 0 and addr 2 map to set 0 with different tags: both fit (two
    // ways). Third conflicting line (addr 4) evicts one.
    auto t = c.drv.run({{c.ld(0)}, {c.ld(2)}, {c.ld(0), true}}, 40);
    // Second load of addr 0 hits (both lines resident).
    EXPECT_EQ(c.visits(t, "MSHR"), 0u);
}

TEST(Dcache, ReplacementEvicts)
{
    DcacheSim c;
    // Fill set 0 with tags of addr 0 and 2, then load addr 4 (same set,
    // third tag) -> eviction; reload the evicted line -> miss again.
    auto t = c.drv.run(
        {{c.ld(0)}, {c.ld(2)}, {c.ld(4)}, {c.ld(0), true}}, 55);
    EXPECT_GE(c.visits(t, "MSHR"), 1u); // marked reload missed
}

TEST(Dcache, PortContentionDelaysStore)
{
    // A store's write-through waits while the port serves a load fetch.
    DcacheSim c;
    auto t1 = c.drv.run({{c.st(3, 5), true}}, 30);
    unsigned alone = c.visits(t1, "stWait");

    DcacheSim c2;
    auto t2 = c2.drv.run({{c2.st(3, 5), true}, {c2.ld(6)}}, 30);
    unsigned contended = c2.visits(t2, "stWait");
    EXPECT_GE(contended, alone);
}

TEST(Dcache, LoadResponseLatencyDiffersHitVsMiss)
{
    // The receiver-observable signal behind the cache leakage findings:
    // hit and miss latencies differ.
    DcacheSim c;
    auto t_miss = c.drv.run({{c.ld(2), true}}, 30);
    DcacheSim c2;
    auto t_hit = c2.drv.run({{c2.ld(2)}, {c2.ld(2), true}}, 30);
    auto commit_cycle = [](const Harness &hx, const SimTrace &t) {
        for (size_t cy = 0; cy < t.numCycles(); cy++)
            if (t.value(cy, hx.iuvCommitted))
                return static_cast<int>(cy);
        return -1;
    };
    int miss_at = commit_cycle(c.hx, t_miss);
    // Normalize the hit case by the extra instruction before it: measure
    // from mark (the IUV's first IF-equivalent visit).
    ASSERT_GT(miss_at, 0);
    // Simply assert both committed and the miss visited MSHR while the
    // hit did not (latency shape is covered by visit counts).
    EXPECT_GE(c.visits(t_miss, "MSHR"), 1u);
    EXPECT_EQ(c2.visits(t_hit, "MSHR"), 0u);
}
