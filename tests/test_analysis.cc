/**
 * @file
 * Tests for src/analysis: sequential cone-of-influence (backward and
 * forward, with register-depth limits), the netlist lint over seeded
 * defects (exact rule and severity per defect), IFT soundness lint, and
 * verdict equivalence of COI-pruned vs full-design BMC.
 */

#include <gtest/gtest.h>

#include "analysis/coi.hh"
#include "analysis/lint.hh"
#include "bmc/engine.hh"
#include "designs/tiny3.hh"
#include "exec/engine_pool.hh"
#include "report/report.hh"
#include "rtl2mupath/synth.hh"
#include "rtlir/builder.hh"

using namespace rmp;
using namespace rmp::analysis;

namespace
{

/** Mutable access to a finalized design's cell, for seeding defects. */
Cell &
corrupt(Design &d, SigId id)
{
    return const_cast<Cell &>(d.cell(id));
}

/** Count diagnostics matching a rule. */
size_t
countRule(const LintReport &rep, Rule r)
{
    size_t n = 0;
    for (const auto &di : rep.diags)
        if (di.rule == r)
            n++;
    return n;
}

/** First diagnostic of a rule; aborts the test if absent. */
const Diagnostic &
firstOf(const LintReport &rep, Rule r)
{
    for (const auto &di : rep.diags)
        if (di.rule == r)
            return di;
    ADD_FAILURE() << "no diagnostic of rule " << ruleName(r);
    static Diagnostic none;
    return none;
}

/**
 * Two independent register chains: ra accumulates input a, rb xors
 * input b. Each chain is one sequential cone; "hit_a"/"hit_b" observe
 * them separately.
 */
struct TwoChains
{
    Design d{"two_chains"};
    SigId a, b, ra, rb, hit_a, hit_b;

    TwoChains()
    {
        Builder bld(d);
        Sig in_a = bld.input("a", 8);
        Sig in_b = bld.input("b", 8);
        RegSig r_a = bld.regh("ra", 8);
        bld.assign(r_a, r_a.q + in_a);
        RegSig r_b = bld.regh("rb", 8);
        bld.assign(r_b, r_b.q ^ in_b);
        Sig h_a = bld.named("hit_a", r_a.q == bld.lit(8, 42));
        Sig h_b = bld.named("hit_b", r_b.q == bld.lit(8, 7));
        bld.finalize();
        a = in_a.id;
        b = in_b.id;
        ra = r_a.q.id;
        rb = r_b.q.id;
        hit_a = h_a.id;
        hit_b = h_b.id;
    }
};

} // namespace

// ---------------------------------------------------------------- COI --

TEST(Coi, BackwardConeStopsAtIndependentChain)
{
    TwoChains t;
    Cone c = analysis::backwardCone(t.d, {t.hit_a});
    EXPECT_TRUE(c.contains(t.hit_a));
    EXPECT_TRUE(c.contains(t.ra));
    EXPECT_TRUE(c.contains(t.a));
    EXPECT_FALSE(c.contains(t.rb));
    EXPECT_FALSE(c.contains(t.b));
    EXPECT_FALSE(c.contains(t.hit_b));
    EXPECT_LT(c.size(), t.d.numCells());
    // Membership lists agree with the mask.
    for (SigId r : c.regs)
        EXPECT_EQ(t.d.cell(r).op, Op::Reg);
    for (SigId i : c.inputs)
        EXPECT_EQ(t.d.cell(i).op, Op::Input);
}

TEST(Coi, BackwardConeCrossesRegisterBoundaries)
{
    TwoChains t;
    // combFanInSources stops at ra; the sequential cone continues into
    // ra's next-state logic and reaches input a.
    auto comb = t.d.combFanInSources(t.hit_a);
    EXPECT_EQ(comb, (std::vector<SigId>{t.ra}));
    Cone c = analysis::backwardCone(t.d, {t.hit_a});
    EXPECT_TRUE(c.contains(t.a));
}

TEST(Coi, BackwardConeDepthLimit)
{
    // r0 <- in, r1 <- r0, r2 <- r1: a 3-deep register pipeline.
    Design d("pipe");
    Builder b(d);
    Sig in = b.input("in", 4);
    RegSig r0 = b.regh("r0", 4);
    RegSig r1 = b.regh("r1", 4);
    RegSig r2 = b.regh("r2", 4);
    b.assign(r0, in);
    b.assign(r1, r0.q);
    b.assign(r2, r1.q);
    Sig out = b.named("out", r2.q == b.lit(4, 3));
    b.finalize();

    // Depth 1: r2 is entered, its next-state (r1) is a member at the
    // limit, but r1's own next-state logic is not explored.
    Cone c1 = analysis::backwardCone(d, {out.id}, 1);
    EXPECT_TRUE(c1.contains(r2.q.id));
    EXPECT_TRUE(c1.contains(r1.q.id));
    EXPECT_FALSE(c1.contains(r0.q.id));
    EXPECT_FALSE(c1.contains(in.id));
    Cone c2 = analysis::backwardCone(d, {out.id}, 2);
    EXPECT_TRUE(c2.contains(r0.q.id));
    EXPECT_FALSE(c2.contains(in.id));
    Cone cfix = analysis::backwardCone(d, {out.id});
    EXPECT_TRUE(cfix.contains(in.id));
    EXPECT_LT(c1.size(), c2.size());
    EXPECT_LT(c2.size(), cfix.size());
    // Distinct member sets -> distinct fingerprints.
    EXPECT_NE(c1.fingerprint, c2.fingerprint);
    EXPECT_NE(c2.fingerprint, cfix.fingerprint);
}

TEST(Coi, FingerprintIsRootOrderInsensitive)
{
    TwoChains t;
    Cone c1 = analysis::backwardCone(t.d, {t.hit_a, t.hit_b});
    Cone c2 = analysis::backwardCone(t.d, {t.hit_b, t.hit_a});
    EXPECT_EQ(c1.fingerprint, c2.fingerprint);
    EXPECT_EQ(c1.cells, c2.cells);
    Cone ca = analysis::backwardCone(t.d, {t.hit_a});
    EXPECT_NE(ca.fingerprint, c1.fingerprint);
}

TEST(Coi, ForwardReachFollowsRegisters)
{
    TwoChains t;
    auto fwd = analysis::forwardReach(t.d, {t.a});
    // a feeds ra's next-state, ra, and the hit_a comparator...
    EXPECT_TRUE(std::find(fwd.begin(), fwd.end(), t.ra) != fwd.end());
    EXPECT_TRUE(std::find(fwd.begin(), fwd.end(), t.hit_a) != fwd.end());
    // ...but never the rb chain.
    EXPECT_TRUE(std::find(fwd.begin(), fwd.end(), t.rb) == fwd.end());
    EXPECT_TRUE(std::find(fwd.begin(), fwd.end(), t.hit_b) == fwd.end());

    // Depth 0 stops at the register's input edge: ra itself (a
    // register crossing) is out of reach.
    auto fwd0 = analysis::forwardReach(t.d, {t.a}, 0);
    EXPECT_TRUE(std::find(fwd0.begin(), fwd0.end(), t.ra) == fwd0.end());
}

// --------------------------------------------------------------- lint --

TEST(Lint, CleanDesignIsClean)
{
    TwoChains t;
    LintReport rep = lint(t.d);
    EXPECT_EQ(rep.errors(), 0u);
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.warnings(), 0u) << rep.render(t.d);
}

TEST(Lint, DetectsCombCycle)
{
    Design d("cyc");
    Builder b(d);
    Sig in = b.input("in", 1);
    Sig n1 = b.named("n1", ~in);
    Sig n2 = b.named("n2", ~n1);
    b.finalize();
    // Rewire n1's operand onto n2: a two-cell combinational loop.
    corrupt(d, n1.id).args[0] = n2.id;
    LintReport rep = lint(d);
    ASSERT_EQ(countRule(rep, Rule::CombCycle), 1u) << rep.render(d);
    const Diagnostic &di = firstOf(rep, Rule::CombCycle);
    EXPECT_EQ(di.severity, Severity::Error);
    EXPECT_NE(di.message.find("n1"), std::string::npos);
    EXPECT_NE(di.message.find("n2"), std::string::npos);
    EXPECT_FALSE(rep.clean());
}

TEST(Lint, DetectsCombSelfLoop)
{
    Design d("selfloop");
    Builder b(d);
    Sig in = b.input("in", 1);
    Sig n1 = b.named("n1", ~in);
    b.finalize();
    corrupt(d, n1.id).args[0] = n1.id;
    LintReport rep = lint(d);
    EXPECT_EQ(countRule(rep, Rule::CombCycle), 1u) << rep.render(d);
    EXPECT_EQ(firstOf(rep, Rule::CombCycle).sig, n1.id);
}

TEST(Lint, DetectsUndrivenRegister)
{
    Design d("undriven");
    d.addInput("in", 4);
    SigId r = d.addReg("r", BitVec(4, 0));
    // connectRegNext(r, ...) never called.
    LintReport rep = lint(d);
    ASSERT_EQ(countRule(rep, Rule::UndrivenReg), 1u) << rep.render(d);
    const Diagnostic &di = firstOf(rep, Rule::UndrivenReg);
    EXPECT_EQ(di.severity, Severity::Error);
    EXPECT_EQ(di.sig, r);
}

TEST(Lint, DetectsWidthMismatch)
{
    Design d("widths");
    Builder b(d);
    Sig x = b.input("x", 8);
    Sig y = b.input("y", 8);
    Sig s = b.named("s", x + y);
    b.finalize();
    corrupt(d, s.id).width = 4; // add of two 8-bit operands
    LintReport rep = lint(d);
    ASSERT_EQ(countRule(rep, Rule::WidthMismatch), 1u) << rep.render(d);
    const Diagnostic &di = firstOf(rep, Rule::WidthMismatch);
    EXPECT_EQ(di.severity, Severity::Error);
    EXPECT_EQ(di.sig, s.id);
}

TEST(Lint, DetectsDanglingOperand)
{
    Design d("dangle");
    Builder b(d);
    Sig x = b.input("x", 1);
    Sig n = b.named("n", ~x);
    b.finalize();
    corrupt(d, n.id).args[0] = 9999; // beyond the design
    LintReport rep = lint(d);
    ASSERT_EQ(countRule(rep, Rule::DanglingOperand), 1u) << rep.render(d);
    EXPECT_EQ(firstOf(rep, Rule::DanglingOperand).severity,
              Severity::Error);
}

TEST(Lint, DetectsDuplicateName)
{
    Design d("dupes");
    Builder b(d);
    Sig x = b.input("x", 1);
    Sig n1 = b.named("w", ~x);
    Sig n2 = b.named("other", ~n1);
    b.finalize();
    corrupt(d, n2.id).name = "w";
    LintReport rep = lint(d);
    ASSERT_EQ(countRule(rep, Rule::DuplicateName), 1u) << rep.render(d);
    const Diagnostic &di = firstOf(rep, Rule::DuplicateName);
    EXPECT_EQ(di.severity, Severity::Error);
    EXPECT_EQ(di.sig, n2.id);
}

TEST(Lint, DetectsDeadCellAndNeverReadReg)
{
    Design d("dead");
    Builder b(d);
    Sig x = b.input("x", 4);
    RegSig live = b.regh("live", 4);
    b.assign(live, x);
    b.named("out", live.q == b.lit(4, 1));
    // An unnamed comb cell and an unnamed register nothing observes.
    Sig orphan = ~x.bit(0);
    SigId orphan_reg = d.addReg("", BitVec(1, 0));
    d.connectRegNext(orphan_reg, orphan.id);
    b.finalize();
    LintReport rep = lint(d);
    EXPECT_EQ(rep.errors(), 0u) << rep.render(d);
    ASSERT_GE(countRule(rep, Rule::DeadCell), 1u) << rep.render(d);
    EXPECT_EQ(firstOf(rep, Rule::DeadCell).severity, Severity::Warning);
    ASSERT_EQ(countRule(rep, Rule::NeverReadReg), 1u) << rep.render(d);
    const Diagnostic &di = firstOf(rep, Rule::NeverReadReg);
    EXPECT_EQ(di.severity, Severity::Warning);
    EXPECT_EQ(di.sig, orphan_reg);
}

TEST(Lint, LivenessRespectsExplicitRoots)
{
    TwoChains t;
    // With only hit_a observable, the whole rb chain is dead/never-read.
    LintConfig cfg;
    cfg.roots = {t.hit_a};
    LintReport rep = lint(t.d, cfg);
    EXPECT_EQ(rep.errors(), 0u);
    EXPECT_GE(countRule(rep, Rule::DeadCell), 1u);
    EXPECT_EQ(countRule(rep, Rule::NeverReadReg), 1u);
    EXPECT_EQ(firstOf(rep, Rule::NeverReadReg).sig, t.rb);
}

TEST(Lint, NeverAbortsOnBadlyBrokenNetlist)
{
    // Several defects at once: lint must report them all, not die on
    // the first (Design::validate would rmp_fatal here).
    Design d("broken");
    Builder b(d);
    Sig x = b.input("x", 8);
    Sig n1 = b.named("n1", ~x);
    Sig n2 = b.named("n2", n1 & x);
    b.finalize();
    corrupt(d, n1.id).args[0] = n2.id;  // comb cycle
    corrupt(d, n2.id).width = 3;        // width mismatch
    d.addReg("r", BitVec(4, 0));        // undriven register
    LintReport rep = lint(d);
    EXPECT_GE(countRule(rep, Rule::CombCycle), 1u) << rep.render(d);
    EXPECT_GE(countRule(rep, Rule::WidthMismatch), 1u);
    EXPECT_EQ(countRule(rep, Rule::UndrivenReg), 1u);
}

TEST(Lint, Tiny3HarnessHasNoErrors)
{
    designs::Harness hx(designs::buildTiny3());
    LintReport rep = lint(hx.design());
    EXPECT_EQ(rep.errors(), 0u) << rep.render(hx.design());
    // JSON renders and mentions every rule it found.
    std::string js = rep.json(hx.design());
    EXPECT_NE(js.find("\"design\": \"tiny3\""), std::string::npos);
    EXPECT_NE(js.find("\"errors\": 0"), std::string::npos);
}

// ----------------------------------------------------------- lintIft --

namespace
{

/** r <- a (tainted source); out observes r combinationally. */
struct IftFixture
{
    Design d{"iftlint"};
    SigId a, r, out;
    IftFixture()
    {
        Builder b(d);
        Sig in = b.input("a", 8);
        RegSig rr = b.regh("r", 8);
        b.assign(rr, in);
        Sig o = b.named("out", rr.q == b.lit(8, 9));
        b.finalize();
        a = in.id;
        r = rr.q.id;
        out = o.id;
    }
};

} // namespace

TEST(LintIft, InstrumentedDesignIsSound)
{
    IftFixture f;
    ift::IftConfig icfg;
    icfg.taintSources = {f.r};
    ift::Instrumented inst = ift::instrument(f.d, icfg);
    LintReport rep = lintIft(f.d, inst);
    EXPECT_EQ(rep.errors(), 0u) << rep.render(*inst.design);
}

TEST(LintIft, Tiny3InstrumentationIsSound)
{
    designs::Harness hx(designs::buildTiny3());
    const uhb::DuvInfo &info = hx.duv();
    ift::IftConfig icfg;
    icfg.taintSources = {info.rs1Reg, info.rs2Reg};
    icfg.blockRegs = info.arfRegs;
    icfg.blockRegs.insert(icfg.blockRegs.end(), info.amemRegs.begin(),
                          info.amemRegs.end());
    icfg.persistentRegs = info.persistentRegs;
    icfg.txmGone = hx.txmGone;
    ift::Instrumented inst = ift::instrument(hx.design(), icfg);
    LintReport rep = lintIft(hx.design(), inst);
    EXPECT_EQ(rep.errors(), 0u) << rep.render(*inst.design);
}

TEST(LintIft, DetectsSeededTaintConeGap)
{
    IftFixture f;
    ift::IftConfig icfg;
    icfg.taintSources = {f.r};
    ift::Instrumented inst = ift::instrument(f.d, icfg);
    // Sever the taint plane: point out's shadow at a fresh constant, so
    // its cone no longer covers r's shadow sources.
    inst.shadow[f.out] = inst.design->addConst(BitVec(1, 0));
    LintReport rep = lintIft(f.d, inst);
    ASSERT_GE(countRule(rep, Rule::TaintConeGap), 1u)
        << rep.render(*inst.design);
    const Diagnostic &di = firstOf(rep, Rule::TaintConeGap);
    EXPECT_EQ(di.severity, Severity::Error);
    EXPECT_EQ(di.sig, f.out);
}

// --------------------------------------------- COI-pruned BMC engine --

TEST(CoiBmc, PrunedVerdictsMatchFullWithFewerVars)
{
    TwoChains t;
    prop::ExprRef seq = prop::pBit(t.hit_a);
    bmc::EngineConfig full_cfg{4, {}, true, false};
    bmc::EngineConfig coi_cfg{4, {}, true, true};
    bmc::Engine full(t.d, full_cfg);
    bmc::Engine pruned(t.d, coi_cfg);

    bmc::CoverResult rf = full.cover(seq, {});
    bmc::CoverResult rp = pruned.cover(seq, {});
    EXPECT_EQ(rf.outcome, bmc::Outcome::Reachable);
    EXPECT_EQ(rp.outcome, bmc::Outcome::Reachable);
    // Both witnesses were simulator-replayed by the engine; the pruned
    // one must still match (off-cone inputs default to 0 harmlessly).
    EXPECT_EQ(rf.witness.matchFrame, rp.witness.matchFrame);

    // The pruned instance excludes the rb chain entirely, so it
    // materializes fewer cells and AIG nodes. SAT variables are encoded
    // lazily from the compiled property cone, which is structurally
    // identical in both modes, so a single query sees no var difference.
    EXPECT_LT(rp.coiCells, rf.coiCells);
    EXPECT_EQ(rf.coiCells, t.d.numCells());
    EXPECT_LE(rp.satVars, rf.satVars);
    EXPECT_LT(rp.aigNodes, rf.aigNodes);
}

TEST(CoiBmc, QueriesWithSameSupportShareOneInstance)
{
    TwoChains t;
    bmc::EngineConfig cfg{4, {}, true, true};
    bmc::Engine eng(t.d, cfg);
    eng.cover(prop::pBit(t.hit_a), {});
    eng.cover(prop::pNot(prop::pBit(t.hit_a)), {});
    // An assume on input a adds no new cells: a is already in the cone.
    eng.cover(prop::pBit(t.hit_a), {prop::pEq(t.a, 1)});
    EXPECT_EQ(eng.coiStats().conesBuilt, 1u);
    // A query over the other chain builds a second cone; one on a strict
    // sub-cone (just the ra chain, without the comparator) a third.
    eng.cover(prop::pBit(t.hit_b), {});
    EXPECT_EQ(eng.coiStats().conesBuilt, 2u);
    eng.cover(prop::pEq(t.ra, 3), {});
    EXPECT_EQ(eng.coiStats().conesBuilt, 3u);
    EXPECT_EQ(eng.coiStats().queries, 5u);
}

TEST(CoiBmc, UnreachableAndFixedFrameAgree)
{
    TwoChains t;
    bmc::Engine full(t.d, bmc::EngineConfig{3, {}, true, false});
    bmc::Engine pruned(t.d, bmc::EngineConfig{3, {}, true, true});
    // ra is 0 at reset: ra==5 cannot hold at frame 0.
    auto at0 = prop::pEq(t.ra, 5);
    EXPECT_EQ(full.coverAt(at0, {}, 0).outcome,
              bmc::Outcome::Unreachable);
    EXPECT_EQ(pruned.coverAt(at0, {}, 0).outcome,
              bmc::Outcome::Unreachable);
    // Contradictory assumes: vacuously unreachable in both modes.
    auto contra = prop::pAnd(prop::pEq(t.a, 1), prop::pEq(t.a, 2));
    EXPECT_EQ(full.cover(prop::pBit(t.hit_a), {contra}).outcome,
              bmc::Outcome::Unreachable);
    EXPECT_EQ(pruned.cover(prop::pBit(t.hit_a), {contra}).outcome,
              bmc::Outcome::Unreachable);
}

TEST(CoiBmc, PoolVerdictsMatchAcrossPruningModes)
{
    TwoChains t;
    std::vector<exec::Query> qs;
    qs.push_back({prop::pBit(t.hit_a), {}, -1});
    qs.push_back({prop::pBit(t.hit_b), {}, -1});
    qs.push_back({prop::pEq(t.ra, 200), {prop::pEq(t.a, 0)}, -1});
    qs.push_back({prop::pBit(t.hit_a), {}, 0});

    exec::ExecConfig xc{1, 2};
    exec::EnginePool full(t.d, bmc::EngineConfig{4, {}, true, false}, xc);
    exec::EnginePool pruned(t.d, bmc::EngineConfig{4, {}, true, true}, xc);
    auto rf = full.evalBatch(qs);
    auto rp = pruned.evalBatch(qs);
    ASSERT_EQ(rf.size(), rp.size());
    for (size_t i = 0; i < rf.size(); i++)
        EXPECT_EQ(rf[i].outcome, rp[i].outcome) << "query " << i;
    // Pruned pool averages a smaller cone than the design.
    exec::PoolStats ps = pruned.stats();
    EXPECT_GT(ps.coi.queries, 0u);
    EXPECT_LT(ps.coi.coneCells, ps.coi.designCells);
    // renderCoiStats produces the summary table.
    std::string table = report::renderCoiStats(ps.coi);
    EXPECT_NE(table.find("cone share of design"), std::string::npos);
}

TEST(CoiBmc, Tiny3SynthesisIdenticalUnderPruning)
{
    designs::Harness hx(designs::buildTiny3());
    uhb::InstrId add = hx.duv().instrId("ADD");

    r2m::SynthesisConfig base;
    base.jobs = 1;
    r2m::MuPathSynthesizer full(hx, base);
    uhb::InstrPaths pf = full.synthesize(add);

    r2m::SynthesisConfig coi = base;
    coi.coiPruning = true;
    r2m::MuPathSynthesizer pruned(hx, coi);
    uhb::InstrPaths pp = pruned.synthesize(add);

    EXPECT_EQ(report::renderInstrPaths(hx, pf),
              report::renderInstrPaths(hx, pp));
    EXPECT_EQ(report::renderDecisions(hx, pf),
              report::renderDecisions(hx, pp));
}
