/**
 * @file
 * Tests for the AIG, the unroller, the property layer, and the BMC engine:
 * cover reachability/unreachability with witnesses, assumes, ##1 sequences,
 * budgets, and randomized equivalence between the bit-blaster and the
 * simulator.
 */

#include <gtest/gtest.h>

#include <random>

#include "bmc/engine.hh"
#include "rtlir/builder.hh"

using namespace rmp;
using namespace rmp::bmc;
using namespace rmp::prop;

TEST(Aig, ConstantFolding)
{
    Aig g;
    AigLit a = g.addInput();
    EXPECT_EQ(g.mkAnd(a, kFalse), kFalse);
    EXPECT_EQ(g.mkAnd(a, kTrue), a);
    EXPECT_EQ(g.mkAnd(a, a), a);
    EXPECT_EQ(g.mkAnd(a, aigNot(a)), kFalse);
    EXPECT_EQ(g.mkOr(a, kTrue), kTrue);
    EXPECT_EQ(g.mkXor(a, a), kFalse);
    EXPECT_EQ(g.mkXor(a, aigNot(a)), kTrue);
}

TEST(Aig, StructuralHashing)
{
    Aig g;
    AigLit a = g.addInput();
    AigLit b = g.addInput();
    AigLit x = g.mkAnd(a, b);
    AigLit y = g.mkAnd(b, a);
    EXPECT_EQ(x, y);
    size_t n = g.numAnds();
    g.mkAnd(a, b);
    EXPECT_EQ(g.numAnds(), n);
}

namespace
{

/** A free-running 4-bit counter design. */
struct CounterDesign
{
    Design d{"counter"};
    SigId cnt;

    CounterDesign()
    {
        Builder b(d);
        RegSig c = b.regh("cnt", 4, 0);
        b.assign(c, c.q + b.lit(4, 1));
        b.finalize();
        cnt = c.q.id;
    }
};

} // namespace

TEST(Bmc, CounterReachesValueWithinBound)
{
    CounterDesign cd;
    EngineConfig cfg;
    cfg.bound = 10;
    Engine eng(cd.d, cfg);
    CoverResult r = eng.cover(pEq(cd.cnt, 7), {});
    ASSERT_EQ(r.outcome, Outcome::Reachable);
    EXPECT_EQ(r.witness.matchFrame, 7u);
}

TEST(Bmc, CounterCannotReachValueBeyondBound)
{
    CounterDesign cd;
    EngineConfig cfg;
    cfg.bound = 5;
    Engine eng(cd.d, cfg);
    CoverResult r = eng.cover(pEq(cd.cnt, 9), {});
    EXPECT_EQ(r.outcome, Outcome::Unreachable);
}

TEST(Bmc, CoverAtSpecificFrame)
{
    CounterDesign cd;
    EngineConfig cfg;
    cfg.bound = 10;
    Engine eng(cd.d, cfg);
    EXPECT_EQ(eng.coverAt(pEq(cd.cnt, 3), {}, 3).outcome,
              Outcome::Reachable);
    EXPECT_EQ(eng.coverAt(pEq(cd.cnt, 3), {}, 4).outcome,
              Outcome::Unreachable);
}

TEST(Bmc, SequenceDelayMatches)
{
    CounterDesign cd;
    EngineConfig cfg;
    cfg.bound = 10;
    Engine eng(cd.d, cfg);
    // cnt==2 ##1 cnt==3 is reachable; cnt==2 ##1 cnt==5 is not.
    CoverResult r =
        eng.cover(pDelay(pEq(cd.cnt, 2), 1, pEq(cd.cnt, 3)), {});
    ASSERT_EQ(r.outcome, Outcome::Reachable);
    EXPECT_EQ(r.witness.matchFrame, 2u);
    EXPECT_EQ(eng.cover(pDelay(pEq(cd.cnt, 2), 1, pEq(cd.cnt, 5)), {})
                  .outcome,
              Outcome::Unreachable);
}

TEST(Bmc, InputDrivenCoverWithWitness)
{
    Design d("acc");
    Builder b(d);
    Sig in = b.input("in", 4);
    RegSig acc = b.regh("acc", 8, 0);
    b.assign(acc, acc.q + in.zext(8));
    b.finalize();
    EngineConfig cfg;
    cfg.bound = 6;
    Engine eng(d, cfg);
    // Accumulator can reach 45 = 15*3 within 6 cycles (value appears the
    // cycle after the last addend is applied).
    CoverResult r = eng.cover(pEq(acc.q.id, 45), {});
    ASSERT_EQ(r.outcome, Outcome::Reachable);
    // Witness was replayed on the simulator by the engine; re-derive sum.
    uint64_t sum = 0;
    for (unsigned t = 0; t + 1 <= r.witness.matchFrame; t++)
        sum += r.witness.inputs[t].at(in.id);
    EXPECT_EQ(sum, 45u);
    // 8-bit accumulator in 6 cycles cannot exceed 5*15 = 75.
    EXPECT_EQ(eng.cover(pEq(acc.q.id, 80), {}).outcome,
              Outcome::Unreachable);
}

TEST(Bmc, AssumesConstrainInputs)
{
    Design d("asm");
    Builder b(d);
    Sig in = b.input("in", 4);
    RegSig seen = b.regh("seen", 1, 0);
    b.when(in == b.lit(4, 9));
    b.assign(seen, b.lit1(true));
    b.end();
    b.finalize();
    EngineConfig cfg;
    cfg.bound = 4;
    Engine eng(d, cfg);
    // Without assumes: in==9 reachable.
    EXPECT_EQ(eng.cover(pBit(seen.q.id), {}).outcome, Outcome::Reachable);
    // Assume in != 9 every cycle: unreachable.
    EXPECT_EQ(eng.cover(pBit(seen.q.id), {pNot(pEq(in.id, 9))}).outcome,
              Outcome::Unreachable);
    // Assume in == 9 every cycle: still reachable.
    EXPECT_EQ(eng.cover(pBit(seen.q.id), {pEq(in.id, 9)}).outcome,
              Outcome::Reachable);
}

TEST(Bmc, ContradictoryAssumesAreUnreachable)
{
    CounterDesign cd;
    EngineConfig cfg;
    cfg.bound = 4;
    Engine eng(cd.d, cfg);
    auto contradiction = pAnd(pEq(cd.cnt, 0), pNot(pEq(cd.cnt, 0)));
    EXPECT_EQ(eng.cover(pTrue(), {contradiction}).outcome,
              Outcome::Unreachable);
}

TEST(Bmc, ArithmeticCoverFindsFactors)
{
    // "Find x, y with x * y == 35": a tiny SAT-style query through the
    // multiplier bit-blasting.
    Design d("mul");
    Builder b(d);
    Sig x = b.input("x", 8);
    Sig y = b.input("y", 8);
    RegSig p = b.regh("p", 8, 0);
    b.assign(p, x * y);
    b.finalize();
    EngineConfig cfg;
    cfg.bound = 2;
    Engine eng(d, cfg);
    auto not_one = [&](SigId s) {
        return pAnd(pNot(pEq(s, 1)), pNot(pEq(s, 0)));
    };
    CoverResult r = eng.cover(pEq(p.q.id, 35),
                              {not_one(x.id), not_one(y.id)});
    ASSERT_EQ(r.outcome, Outcome::Reachable);
    uint64_t xv = r.witness.inputs[0].at(x.id);
    uint64_t yv = r.witness.inputs[0].at(y.id);
    EXPECT_EQ((xv * yv) & 0xff, 35u);
    EXPECT_NE(xv, 1u);
    EXPECT_NE(yv, 1u);
}

TEST(Bmc, PropertyDepthAccounting)
{
    auto e = pDelay(pTrue(), 3, pDelay(pTrue(), 2, pTrue()));
    EXPECT_EQ(e->depth(), 5u);
    EXPECT_EQ(pTrue()->depth(), 0u);
}

class BmcVsSim : public ::testing::TestWithParam<int>
{
};

TEST_P(BmcVsSim, RandomDesignEquivalence)
{
    // Build a random small design; drive random inputs through the
    // simulator; then ask the engine to cover the exact final state via
    // coverAt with the same input constraints, which must be reachable.
    std::mt19937 rng(GetParam() * 7919);
    Design d("rand");
    Builder b(d);
    Sig i0 = b.input("i0", 4);
    Sig i1 = b.input("i1", 4);
    RegSig r0 = b.regh("r0", 4, GetParam() & 0xf);
    RegSig r1 = b.regh("r1", 4, 0);
    // Random-ish datapath mixing ops.
    Sig t0 = (r0.q + i0) ^ r1.q;
    Sig t1 = b.mux(i1.bit(0), r0.q * i1, r0.q - i0);
    b.assign(r0, t0);
    b.assign(r1, t1 | i0);
    b.finalize();

    const unsigned T = 5;
    std::vector<InputMap> ins(T);
    Simulator sim(d);
    for (unsigned t = 0; t < T; t++) {
        ins[t] = {{i0.id, rng() & 0xf}, {i1.id, rng() & 0xf}};
        sim.step(ins[t]);
    }
    uint64_t fr0 = sim.value(r0.q.id), fr1 = sim.value(r1.q.id);

    EngineConfig cfg;
    cfg.bound = T;
    Engine eng(d, cfg);
    // Constrain inputs per-cycle via a big assume: inputs follow the
    // recorded values (encoded as (cycle marker) implications using a
    // counter is overkill; instead check reachability of the joint final
    // state without constraints — it must be reachable since we exhibited
    // it — then validate the witness equivalence through the replayed
    // trace values).
    CoverResult r = eng.coverAt(
        pAnd(pEq(r0.q.id, fr0), pEq(r1.q.id, fr1)), {}, T - 1);
    ASSERT_EQ(r.outcome, Outcome::Reachable)
        << "state (" << fr0 << "," << fr1 << ") reached in sim but not BMC";
    EXPECT_EQ(r.witness.trace.value(T - 1, r0.q.id), fr0);
    EXPECT_EQ(r.witness.trace.value(T - 1, r1.q.id), fr1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BmcVsSim, ::testing::Range(0, 12));

TEST(Bmc, StatsAccumulate)
{
    CounterDesign cd;
    EngineConfig cfg;
    cfg.bound = 8;
    Engine eng(cd.d, cfg);
    eng.cover(pEq(cd.cnt, 1), {});
    eng.cover(pEq(cd.cnt, 12), {});
    EXPECT_EQ(eng.stats().queries, 2u);
    EXPECT_EQ(eng.stats().reachable, 1u);
    EXPECT_EQ(eng.stats().unreachable, 1u);
}
