/**
 * @file
 * Functional (simulation-driven) tests for MiniCVA: ISA semantics,
 * variable-latency units, store buffers and the store-to-load stall, the
 * single-port drain priority, speculation/flush, exceptions, the planted
 * CVA6 bugs, and the CVA6-MUL / CVA6-OP variants.
 */

#include <gtest/gtest.h>

#include "designs/driver.hh"
#include "designs/mcva.hh"
#include "designs/mcva_isa.hh"

using namespace rmp;
using namespace rmp::designs;

namespace
{

struct McvaSim
{
    explicit McvaSim(const McvaConfig &cfg = {})
        : hx(buildMcva(cfg)), drv(hx)
    {
    }
    Harness hx;
    ProgramDriver drv;

    const uhb::DuvInfo &info() const { return hx.duv(); }
    uint64_t
    enc(const std::string &n, uint64_t rd = 0, uint64_t rs1 = 0,
        uint64_t rs2 = 0, uint64_t imm = 0)
    {
        return info().encode(n, rd, rs1, rs2, imm);
    }
    uhb::PlId
    pl(const std::string &n) const
    {
        for (uhb::PlId p = 0; p < hx.numPls(); p++)
            if (hx.plName(p) == n)
                return p;
        return uhb::kNoPl;
    }
    unsigned
    visits(const SimTrace &t, const std::string &pl_name)
    {
        return static_cast<unsigned>(
            t.value(t.numCycles() - 1, hx.plSig(pl(pl_name)).visitCount));
    }
};

} // namespace

TEST(Mcva, PlUniverse)
{
    McvaSim m;
    // 13 single-state μFSMs + scb0/scb1/retire with 3 candidate non-idle
    // states each minus declared idle {3}: 2 each => 13 + 6 = 19? scb/ret
    // declare idle {0} and {3}, so 2 PLs each: total 12*1 + 3*2 = wrong;
    // count precisely: IF ID issue aluU mulU divU LSQ ldStall ldFin
    // specSTB comSTB memRq = 12 singles, scb0, scb1, retire = 2 each.
    EXPECT_EQ(m.hx.numPls(), 12u + 6u);
    EXPECT_NE(m.pl("IF"), uhb::kNoPl);
    EXPECT_NE(m.pl("scb0Iss"), uhb::kNoPl);
    EXPECT_NE(m.pl("scbCmt"), uhb::kNoPl);
    EXPECT_NE(m.pl("scbExcp"), uhb::kNoPl);
    EXPECT_NE(m.pl("ldStall"), uhb::kNoPl);
    EXPECT_NE(m.pl("memRq"), uhb::kNoPl);
}

TEST(Mcva, AluImmediateAndRegisterOps)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 5)}, // r1 = 5
            {m.enc("ADDI", 2, 0, 0, 3)}, // r2 = 3
            {m.enc("ADD", 3, 1, 2)},     // r3 = 8
            {m.enc("SUB", 3, 3, 2)},     // r3 = 5
            {m.enc("XOR", 1, 1, 2)},     // r1 = 6
            {m.enc("SLL", 2, 2, 1)},     // r2 = 3 << (6&7) = 192
        },
        40);
    EXPECT_EQ(m.drv.arfValue(t, 1), 6u);
    EXPECT_EQ(m.drv.arfValue(t, 2), 192u);
    EXPECT_EQ(m.drv.arfValue(t, 3), 5u);
}

TEST(Mcva, WFormsBehaveLikeBaseForms)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 7)},
            {m.enc("ADDI", 2, 0, 0, 2)},
            {m.enc("ADDW", 3, 1, 2)}, // r3 = 9
            {m.enc("SUBW", 3, 3, 2)}, // r3 = 7
        },
        35);
    EXPECT_EQ(m.drv.arfValue(t, 3), 7u);
}

TEST(Mcva, MulFixedTwoCycleLatency)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 6)},
            {m.enc("ADDI", 2, 0, 0, 7)},
            {m.enc("MUL", 3, 1, 2), true}, // marked IUV
        },
        40);
    EXPECT_EQ(m.drv.arfValue(t, 3), 42u);
    EXPECT_EQ(m.visits(t, "mulU"), 2u);
}

TEST(Mcva, MulHighReturnsUpperByte)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 7)},
            {m.enc("SLL", 1, 1, 1)},      // r1 = 7 << 7 = 128 (wrapped)
            {m.enc("ADDI", 2, 0, 0, 4)},
            {m.enc("MULH", 3, 1, 2)},     // (128*4)>>8 = 2
        },
        45);
    EXPECT_EQ(m.drv.arfValue(t, 3), 2u);
}

TEST(Mcva, DivQuotientRemainderAndLatency)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 7)}, // dividend 7 (msb index 2)
            {m.enc("ADDI", 2, 0, 0, 3)},
            {m.enc("DIV", 3, 1, 2), true},
        },
        40);
    EXPECT_EQ(m.drv.arfValue(t, 3), 2u); // 7/3
    // Dividend 7 -> bits 2..0 -> 3 divU cycles.
    EXPECT_EQ(m.visits(t, "divU"), 3u);

    McvaSim m2;
    auto t2 = m2.drv.run(
        {
            {m2.enc("ADDI", 1, 0, 0, 7)},
            {m2.enc("ADDI", 2, 0, 0, 3)},
            {m2.enc("REM", 3, 1, 2), true},
        },
        40);
    EXPECT_EQ(m2.drv.arfValue(t2, 3), 1u); // 7%3
}

TEST(Mcva, DivLatencyDependsOnDividend)
{
    // Dividend 0 -> 1 cycle; dividend with msb 7 -> 8 cycles.
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 2, 0, 0, 1)},
            {m.enc("DIV", 3, 0, 2), true}, // 0 / 1
        },
        40);
    EXPECT_EQ(m.visits(t, "divU"), 1u);
    EXPECT_EQ(m.drv.arfValue(t, 3), 0u);

    McvaSim m2;
    auto t2 = m2.drv.run(
        {
            {m2.enc("ADDI", 1, 0, 0, 7)},
            {m2.enc("SLL", 1, 1, 1)},       // r1 = 7<<7 = 128: msb 7
            {m2.enc("ADDI", 2, 0, 0, 3)},
            {m2.enc("DIV", 3, 1, 2), true}, // 128 / 3 = 42
        },
        45);
    EXPECT_EQ(m2.visits(t2, "divU"), 8u);
    EXPECT_EQ(m2.drv.arfValue(t2, 3), 42u);
}

TEST(Mcva, DivideByZero)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 5)},
            {m.enc("DIV", 3, 1, 0)}, // 5 / 0 = 0xff
            {m.enc("REM", 2, 1, 0)}, // 5 % 0 = 5
        },
        45);
    EXPECT_EQ(m.drv.arfValue(t, 3), 0xffu);
    EXPECT_EQ(m.drv.arfValue(t, 2), 5u);
}

TEST(Mcva, StoreThenLoadRoundTrip)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 5)}, // value
            {m.enc("SW", 0, 0, 1, 4)},   // mem[4] = 5 (addr r0+4)
            {m.enc("ADDI", 2, 0, 0, 0)},
            {m.enc("LW", 2, 0, 0, 4), true}, // r2 = mem[4]
        },
        50);
    EXPECT_EQ(m.drv.arfValue(t, 2), 5u);
    // Same page offset (4 & 3 == 0 vs 4 & 3 == 0): the load issued while
    // the store was still buffered stalls (Fig. 4b right path).
    EXPECT_GE(m.visits(t, "ldStall"), 1u);
    // The store (not the marked IUV) passed through comSTB and memRq.
    bool com_used = false, rq_used = false;
    for (size_t c = 0; c < t.numCycles(); c++) {
        com_used |= t.value(c, m.hx.plSig(m.pl("comSTB")).occupied) != 0;
        rq_used |= t.value(c, m.hx.plSig(m.pl("memRq")).occupied) != 0;
    }
    EXPECT_TRUE(com_used);
    EXPECT_TRUE(rq_used);
}

TEST(Mcva, LoadWithDifferentOffsetDoesNotStall)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 5)},
            {m.enc("SW", 0, 0, 1, 4)},       // offset 0
            {m.enc("LW", 2, 0, 0, 1), true}, // offset 1: no match
        },
        50);
    EXPECT_EQ(m.visits(t, "ldStall"), 0u);
    EXPECT_EQ(m.visits(t, "LSQ"), 0u);
    EXPECT_EQ(m.visits(t, "ldFin"), 1u);
}

TEST(Mcva, BranchTakenFlushesYounger)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("BEQ", 0, 0, 0, 0)},        // r0==r0: taken -> flush
            {m.enc("ADDI", 1, 0, 0, 7), true}, // squashed
        },
        40);
    // The younger ADDI must never commit; r1 stays 0.
    EXPECT_EQ(m.drv.arfValue(t, 1), 0u);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, m.hx.iuvCommitted), 0u);
    EXPECT_EQ(t.value(last, m.hx.iuvGone), 1u);
    // Squash μPATH: the ADDI visited IF (at least) but no FU.
    EXPECT_GE(m.visits(t, "IF"), 1u);
    EXPECT_EQ(m.visits(t, "aluU"), 0u);
}

TEST(Mcva, BranchNotTakenDoesNotFlush)
{
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 1)},
            {m.enc("BEQ", 0, 0, 1, 0)},        // r0!=r1: not taken
            {m.enc("ADDI", 2, 0, 0, 7), true},
        },
        40);
    EXPECT_EQ(m.drv.arfValue(t, 2), 7u);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, m.hx.iuvCommitted), 1u);
}

TEST(Mcva, JalrMispredictFlushes)
{
    McvaSim m;
    // JALR target r1 = 0x20: low PC bits != pc+1 -> mispredict -> flush.
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 4)},
            {m.enc("SLL", 1, 1, 0, 0)},         // keep r1 = 4
            {m.enc("JALR", 2, 1, 0, 0)},
            {m.enc("ADDI", 3, 0, 0, 7), true},  // squashed
        },
        45);
    EXPECT_EQ(m.drv.arfValue(t, 3), 0u);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, m.hx.iuvCommitted), 0u);
}

TEST(Mcva, EcallRaisesException)
{
    McvaSim m;
    auto t = m.drv.run({{m.enc("ECALL"), true}}, 30);
    EXPECT_GE(m.visits(t, "scbExcp"), 1u);
    EXPECT_EQ(m.visits(t, "scbCmt"), 0u);
}

TEST(Mcva, BuggyJalrNeverRaisesAlignmentException)
{
    // Default (buggy, like CVA6): JALR to a misaligned target commits.
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 5)}, // misaligned byte target (5&3!=0)
            {m.enc("JALR", 2, 1, 0, 0), true},
        },
        40);
    EXPECT_GE(m.visits(t, "scbExcp") + m.visits(t, "scbCmt"), 1u);
    EXPECT_EQ(m.visits(t, "scbExcp"), 0u);

    // Fixed design: the same JALR raises the exception.
    McvaSim mf({.fixAlignmentBugs = true});
    auto tf = mf.drv.run(
        {
            {mf.enc("ADDI", 1, 0, 0, 5)},
            {mf.enc("JALR", 2, 1, 0, 0), true},
        },
        40);
    EXPECT_GE(mf.visits(tf, "scbExcp"), 1u);
}

TEST(Mcva, BuggyBranchExceptsEvenWhenNotTaken)
{
    // imm=2 is 4-byte misaligned; branch is NOT taken. Buggy design
    // raises the exception anyway (§VII-B2); fixed design does not.
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 1)},
            {m.enc("BEQ", 0, 0, 1, 2), true}, // r0 != r1: not taken
        },
        40);
    EXPECT_GE(m.visits(t, "scbExcp"), 1u);

    McvaSim mf({.fixAlignmentBugs = true});
    auto tf = mf.drv.run(
        {
            {mf.enc("ADDI", 1, 0, 0, 1)},
            {mf.enc("BEQ", 0, 0, 1, 2), true},
        },
        40);
    EXPECT_EQ(mf.visits(tf, "scbExcp"), 0u);
    EXPECT_GE(mf.visits(tf, "scbCmt"), 1u);
}

TEST(Mcva, ScbCounterBugLeavesEntryUnused)
{
    McvaSim m({.withScbCounterBug = true});
    // Back-to-back independent ALU ops would normally overlap in the SCB;
    // with the counter bug only one entry is ever occupied.
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 1)},
            {m.enc("ADDI", 2, 0, 0, 2)},
            {m.enc("ADDI", 3, 0, 0, 3)},
        },
        45);
    // scb1 never occupied in any cycle.
    bool scb1_used = false;
    for (size_t c = 0; c < t.numCycles(); c++)
        if (t.value(c, m.hx.plSig(m.pl("scb1Iss")).occupied) ||
            t.value(c, m.hx.plSig(m.pl("scb1Fin")).occupied))
            scb1_used = true;
    EXPECT_FALSE(scb1_used);
    EXPECT_EQ(m.drv.arfValue(t, 3), 3u);

    // Baseline uses both entries for the same program.
    McvaSim m0;
    auto t0 = m0.drv.run(
        {
            {m0.enc("ADDI", 1, 0, 0, 1)},
            {m0.enc("ADDI", 2, 0, 0, 2)},
            {m0.enc("ADDI", 3, 0, 0, 3)},
        },
        45);
    bool scb1_used0 = false;
    for (size_t c = 0; c < t0.numCycles(); c++)
        if (t0.value(c, m0.hx.plSig(m0.pl("scb1Iss")).occupied))
            scb1_used0 = true;
    EXPECT_TRUE(scb1_used0);
}

TEST(McvaMulVariant, ZeroSkipLatency)
{
    McvaSim m({.withZeroSkipMul = true});
    // Zero operand: 1 mulU cycle (Fig. 1 μPATH 0).
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 6)},
            {m.enc("MUL", 3, 1, 0), true}, // r2=0 operand
        },
        40);
    EXPECT_EQ(m.visits(t, "mulU"), 1u);
    EXPECT_EQ(m.drv.arfValue(t, 3), 0u);

    // Non-zero operands: 4 cycles (Fig. 1 μPATH 1).
    McvaSim m2({.withZeroSkipMul = true});
    auto t2 = m2.drv.run(
        {
            {m2.enc("ADDI", 1, 0, 0, 6)},
            {m2.enc("ADDI", 2, 0, 0, 7)},
            {m2.enc("MUL", 3, 1, 2), true},
        },
        40);
    EXPECT_EQ(m2.visits(t2, "mulU"), 4u);
    EXPECT_EQ(m2.drv.arfValue(t2, 3), 42u);
}

TEST(McvaOpVariant, PackedVsNonPackedIdOccupancy)
{
    // Non-packed: the second ADD has wide operands -> extra ID cycle.
    McvaSim m({.withOperandPacking = true});
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 7)},
            {m.enc("SLL", 1, 1, 1)},           // r1 wide (>= 16)
            {m.enc("ADD", 2, 1, 1)},
            {m.enc("ADD", 3, 1, 1), true},     // behind ADD, wide
        },
        50);
    EXPECT_GE(m.visits(t, "ID"), 2u);

    // Packed: narrow operands -> single ID cycle (Fig. 2b).
    McvaSim m2({.withOperandPacking = true});
    auto t2 = m2.drv.run(
        {
            {m2.enc("ADDI", 1, 0, 0, 3)},      // narrow
            {m2.enc("ADD", 2, 1, 1)},
            {m2.enc("ADD", 3, 1, 1), true},
        },
        50);
    EXPECT_EQ(m2.visits(t2, "ID"), 1u);
    EXPECT_EQ(m2.drv.arfValue(t2, 3), 6u);
}

TEST(Mcva, ComStbDrainWaitsForYoungerLoad)
{
    // A committed store's drain is delayed by a younger non-matching
    // load that wins the memory port (the paper's new channel).
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 5)},
            {m.enc("SW", 0, 0, 1, 4), true}, // store, offset 0
            {m.enc("LW", 2, 0, 0, 1)},       // younger load, offset 1
        },
        50);
    EXPECT_EQ(m.drv.arfValue(t, 2) != 0u, false); // mem[1] is 0
    EXPECT_GE(m.visits(t, "comSTB"), 1u);
    // Compare with no younger load: comSTB occupancy shorter or equal.
    McvaSim m2;
    auto t2 = m2.drv.run(
        {
            {m2.enc("ADDI", 1, 0, 0, 5)},
            {m2.enc("SW", 0, 0, 1, 4), true},
        },
        50);
    EXPECT_LE(m2.visits(t2, "comSTB"), m.visits(t, "comSTB"));
}

TEST(Mcva, OutOfOrderCompletionInOrderCommit)
{
    // A young ALU op finishes while an older DIV is still dividing; the
    // ALU op waits at scbFin (scb1Fin) until the DIV commits.
    McvaSim m;
    auto t = m.drv.run(
        {
            {m.enc("ADDI", 1, 0, 0, 7)},
            {m.enc("SLL", 1, 1, 1)},            // r1 = 128: 8-cycle DIV
            {m.enc("ADDI", 2, 0, 0, 3)},
            {m.enc("DIV", 3, 1, 2)},
            {m.enc("ADDI", 1, 0, 0, 1), true},  // independent, finishes early
        },
        60);
    EXPECT_EQ(m.drv.arfValue(t, 3), 42u);
    EXPECT_EQ(m.drv.arfValue(t, 1), 1u);
    // The marked ADDI sat finished in scb entry 1 for several cycles.
    size_t last = t.numCycles() - 1;
    EXPECT_GE(t.value(last, m.hx.plSig(m.pl("scb1Fin")).visitCount), 2u);
}
