/**
 * @file
 * Unit tests for common utilities: BitVec masking/arith semantics and the
 * ASCII table renderer.
 */

#include <gtest/gtest.h>

#include "common/bitvec.hh"
#include "common/table.hh"

using namespace rmp;

TEST(BitVec, MaskingOnConstruction)
{
    BitVec v(4, 0xff);
    EXPECT_EQ(v.value(), 0xfu);
    EXPECT_EQ(v.width(), 4u);
}

TEST(BitVec, FullWidth64)
{
    BitVec v(64, ~0ULL);
    EXPECT_EQ(v.value(), ~0ULL);
    EXPECT_EQ(v.mask(), ~0ULL);
}

TEST(BitVec, BitAccess)
{
    BitVec v(8, 0b10100101);
    EXPECT_TRUE(v.bit(0));
    EXPECT_FALSE(v.bit(1));
    EXPECT_TRUE(v.bit(2));
    EXPECT_TRUE(v.bit(7));
    EXPECT_FALSE(v.bit(8)); // out of range reads as 0
}

TEST(BitVec, SignedConversion)
{
    EXPECT_EQ(BitVec(4, 0xf).toSigned(), -1);
    EXPECT_EQ(BitVec(4, 0x7).toSigned(), 7);
    EXPECT_EQ(BitVec(4, 0x8).toSigned(), -8);
    EXPECT_EQ(BitVec(64, ~0ULL).toSigned(), -1);
}

TEST(BitVec, EqualityIncludesWidth)
{
    EXPECT_EQ(BitVec(4, 3), BitVec(4, 3));
    EXPECT_NE(BitVec(4, 3), BitVec(5, 3));
    EXPECT_NE(BitVec(4, 3), BitVec(4, 4));
}

TEST(BitVec, Str)
{
    EXPECT_EQ(BitVec(4, 9).str(), "4'h9");
    EXPECT_EQ(BitVec(16, 0xabc).str(), "16'habc");
}

TEST(BitVec, MaskOf)
{
    EXPECT_EQ(BitVec::maskOf(1), 1u);
    EXPECT_EQ(BitVec::maskOf(8), 0xffu);
    EXPECT_EQ(BitVec::maskOf(64), ~0ULL);
}

TEST(AsciiTable, RendersHeaderAndRows)
{
    AsciiTable t;
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::string s = t.str();
    EXPECT_NE(s.find("| a   | bb |"), std::string::npos);
    EXPECT_NE(s.find("| 333 | 4  |"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(AsciiTable, SeparatorDoesNotCountAsRow)
{
    AsciiTable t;
    t.setHeader({"x"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
}
