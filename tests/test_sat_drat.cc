/**
 * @file
 * Tests for DRAT proof emission and the standalone forward checker:
 * solver-emitted refutations must check, corrupted logs must be
 * rejected (the seeded-defect obligation — the audit layer has to fail
 * when it should, not just pass when it should), unsat-under-assumptions
 * verdicts must close via DratChecker::checkUnsat, and the SAT budget
 * must cut deterministically per (formula, budget) pair.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sat/dimacs.hh"
#include "sat/drat.hh"
#include "sat/solver.hh"

using namespace rmp::sat;

namespace
{

Lit
lit(int dimacs)
{
    int v = dimacs < 0 ? -dimacs : dimacs;
    return Lit(static_cast<Var>(v - 1), dimacs < 0);
}

std::vector<Lit>
cl(std::initializer_list<int> dimacs)
{
    std::vector<Lit> out;
    for (int d : dimacs)
        out.push_back(lit(d));
    return out;
}

/** Pigeonhole PHP(n+1 pigeons, n holes): classic small unsat family. */
Cnf
pigeonhole(int holes)
{
    Cnf cnf;
    int pigeons = holes + 1;
    auto var = [&](int p, int h) { return p * holes + h + 1; };
    cnf.numVars = pigeons * holes;
    for (int p = 0; p < pigeons; p++) {
        std::vector<Lit> some;
        for (int h = 0; h < holes; h++)
            some.push_back(lit(var(p, h)));
        cnf.clauses.push_back(some);
    }
    for (int h = 0; h < holes; h++)
        for (int p1 = 0; p1 < pigeons; p1++)
            for (int p2 = p1 + 1; p2 < pigeons; p2++)
                cnf.clauses.push_back(cl({-var(p1, h), -var(p2, h)}));
    return cnf;
}

/** Solve @p cnf while recording the proof trace. */
SatResult
solveRecorded(const Cnf &cnf, DratLogRecorder *rec)
{
    Solver s;
    s.setProofSink(rec);
    loadCnf(s, cnf);
    return s.solve();
}

} // anonymous namespace

TEST(Drat, SolverRefutationChecks)
{
    for (int holes = 2; holes <= 4; holes++) {
        Cnf cnf = pigeonhole(holes);
        DratLogRecorder rec;
        ASSERT_EQ(solveRecorded(cnf, &rec), SatResult::Unsat);
        std::string why;
        EXPECT_TRUE(checkDrat(cnf, rec.log(), &why))
            << "holes=" << holes << ": " << why;
    }
}

TEST(Drat, RecorderInputsMatchFormula)
{
    Cnf cnf = pigeonhole(3);
    DratLogRecorder rec;
    solveRecorded(cnf, &rec);
    // The recorder's input side mirrors what was loaded, so the
    // (inputs, log) pair is self-contained.
    EXPECT_EQ(rec.inputs().clauses.size(), cnf.clauses.size());
    EXPECT_TRUE(checkDrat(rec.inputs(), rec.log()));
}

TEST(Drat, CorruptedLogRejected)
{
    Cnf cnf = pigeonhole(3);
    DratLogRecorder rec;
    ASSERT_EQ(solveRecorded(cnf, &rec), SatResult::Unsat);
    ASSERT_TRUE(checkDrat(cnf, rec.log()));

    // Seeded defect 1: an empty proof proves nothing — PHP is not
    // refutable by unit propagation alone. (Merely dropping the final
    // explicit empty-clause step is NOT a defect: the checker's eager
    // propagation rediscovers the root conflict from the learned clauses
    // preceding it, which is sound.)
    {
        std::string why;
        EXPECT_FALSE(checkDrat(cnf, DratLog{}, &why));
        EXPECT_NE(why.find("empty clause"), std::string::npos) << why;
    }

    // Seeded defect 2: smuggle in an underived unit. A fresh variable's
    // unit clause can never be RUP.
    {
        DratLog log = rec.log();
        DratStep bogus;
        bogus.lits = {lit(cnf.numVars + 7)};
        log.insert(log.begin(), bogus);
        std::string why;
        EXPECT_FALSE(checkDrat(cnf, log, &why));
        EXPECT_NE(why.find("not RUP"), std::string::npos) << why;
    }

    // Seeded defect 3: flip a literal in the first real addition.
    {
        DratLog log = rec.log();
        for (auto &s : log) {
            if (s.kind == DratStep::Kind::Add && !s.lits.empty()) {
                s.lits[0] = ~s.lits[0];
                break;
            }
        }
        // Either some addition now fails RUP or (rarely) the flipped
        // clause is still derivable; the checker must never crash, and
        // the empty clause requirement still guards the verdict.
        std::string why;
        checkDrat(cnf, log, &why);
    }
}

TEST(Drat, DeletionsAreHonored)
{
    // Deleting a clause and then "deriving" something only it justified
    // must fail: deletions genuinely weaken the live set.
    DratChecker chk;
    chk.addInput(cl({1, 2}));
    chk.addInput(cl({-1, 2}));
    DratStep del;
    del.kind = DratStep::Kind::Delete;
    del.lits = cl({-1, 2});
    ASSERT_TRUE(chk.step(del));
    DratStep add;
    add.lits = cl({2}); // RUP only with both inputs present
    EXPECT_FALSE(chk.step(add));
    EXPECT_FALSE(chk.ok());
}

TEST(Drat, CheckUnsatUnderAssumptions)
{
    // (a | b) & (~a | c): satisfiable, but unsat under {~b, ~c}.
    Solver s;
    DratChecker chk;
    s.setProofSink(&chk);
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.addClause(mkLit(a), mkLit(b));
    s.addClause(~mkLit(a), mkLit(c));
    std::vector<Lit> assume{~mkLit(b), ~mkLit(c)};
    EXPECT_EQ(s.solve(assume), SatResult::Unsat);
    EXPECT_TRUE(chk.ok());
    EXPECT_TRUE(chk.checkUnsat(assume));
    // The formula itself is satisfiable: no refutation without the
    // assumptions, and the satisfiable query still solves afterwards
    // (checkUnsat must not perturb checker or solver state).
    EXPECT_FALSE(chk.checkUnsat({}));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(chk.checkUnsat(assume));
}

TEST(Drat, LiveCheckerTracksIncrementalSolves)
{
    // Interleave clause additions and queries the way the BMC engine
    // does; every learned clause must check as it is derived.
    Cnf cnf = pigeonhole(4);
    Solver s;
    DratChecker chk;
    s.setProofSink(&chk);
    while (s.numVars() < cnf.numVars)
        s.newVar();
    // Load all but the last clause: still satisfiable.
    for (size_t i = 0; i + 1 < cnf.clauses.size(); i++)
        ASSERT_TRUE(s.addClause(cnf.clauses[i]));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_TRUE(chk.ok());
    // Now complete the formula: unsat, and the trace must close it.
    s.addClause(cnf.clauses.back());
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_TRUE(chk.ok());
    EXPECT_TRUE(chk.checkUnsat({}));
    EXPECT_TRUE(chk.refuted());
}

TEST(Drat, TextRoundTrip)
{
    DratLog log;
    log.push_back({DratStep::Kind::Add, cl({1, -2, 3})});
    log.push_back({DratStep::Kind::Delete, cl({-1, 2})});
    log.push_back({DratStep::Kind::Add, {}}); // empty clause
    std::string text = toDratText(log);
    std::istringstream in(text);
    DratLog back = parseDratText(in);
    ASSERT_EQ(back.size(), log.size());
    for (size_t i = 0; i < log.size(); i++)
        EXPECT_TRUE(back[i] == log[i]) << "step " << i;
    EXPECT_EQ(toDratText(back), text);
}

TEST(Drat, SolverEmittedTextRoundTrips)
{
    Cnf cnf = pigeonhole(3);
    DratLogRecorder rec;
    ASSERT_EQ(solveRecorded(cnf, &rec), SatResult::Unsat);
    std::string text = toDratText(rec.log());
    std::istringstream in(text);
    DratLog back = parseDratText(in);
    EXPECT_TRUE(checkDrat(cnf, back));
}

TEST(SatBudget, DeterministicAcrossRepeatedRuns)
{
    // The same (formula, budget) pair on a fresh solver must return the
    // same verdict and stop at the same conflict/propagation counts,
    // every time — the audit layer depends on budget verdicts being
    // reproducible (DESIGN.md §3g).
    Cnf cnf = pigeonhole(5); // hard enough to exhaust small budgets
    for (uint64_t conflicts : {1ULL, 10ULL, 100ULL, 1000ULL}) {
        SatBudget budget;
        budget.maxConflicts = conflicts;
        SatResult first{};
        uint64_t firstConf = 0, firstProp = 0;
        for (int run = 0; run < 3; run++) {
            Solver s;
            loadCnf(s, cnf);
            SatResult r = s.solve({}, budget);
            if (run == 0) {
                first = r;
                firstConf = s.stats().conflicts;
                firstProp = s.stats().propagations;
            } else {
                EXPECT_EQ(r, first) << "budget " << conflicts;
                EXPECT_EQ(s.stats().conflicts, firstConf);
                EXPECT_EQ(s.stats().propagations, firstProp);
            }
        }
    }
}

TEST(SatBudget, PropagationBudgetCutsWithoutConflicts)
{
    // A long implication chain propagates plenty without a single
    // conflict; the propagation budget must still be able to cut it.
    Solver s;
    const int n = 2000;
    for (int i = 0; i < n; i++)
        s.newVar();
    for (int i = 0; i + 1 < n; i++)
        s.addClause(~mkLit(i), mkLit(i + 1));
    // One extra variable keeps the chain's propagation round from
    // already completing a model (a completed round returns its answer;
    // the budget cuts before the *next* round starts).
    s.newVar();
    // Trigger the chain from an assumption (a root-level unit clause
    // would propagate during addClause, outside the budget window).
    SatBudget budget;
    budget.maxPropagations = 50;
    EXPECT_EQ(s.solve({mkLit(0)}, budget), SatResult::Undetermined);
    // Unlimited, the same (now warmed) solver finishes.
    EXPECT_EQ(s.solve({mkLit(0)}), SatResult::Sat);
}
