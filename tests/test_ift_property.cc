/**
 * @file
 * Property-based soundness test for the IFT instrumentation:
 * non-interference. If a bit is reported UNtainted (in both runs), its
 * value must be independent of the taint-source register's content.
 *
 * For each random design and random input schedule, we simulate twice
 * with different source-register contents (all other inputs equal, taint
 * introduced on the source's full width in both runs). Any signal bit
 * whose shadow is 0 in both runs must carry identical values across the
 * two runs — otherwise the propagation rules under-taint, which would
 * let SynthLC miss real leakage.
 */

#include <gtest/gtest.h>

#include <random>

#include "ift/instrument.hh"
#include "rtlir/builder.hh"
#include "sim/simulator.hh"

using namespace rmp;
using namespace rmp::ift;

namespace
{

/** A random 8-bit datapath mixing every operator class. */
struct RandomDesign
{
    Design d{"rand_ift"};
    SigId src = kNoSig;   // taint-source register
    SigId seed_in = kNoSig;
    SigId free_in = kNoSig;
    std::vector<SigId> regs;

    explicit RandomDesign(std::mt19937_64 &rng)
    {
        Builder b(d);
        Sig seed = b.input("seed", 8);
        Sig other = b.input("other", 8);
        seed_in = seed.id;
        free_in = other.id;
        RegSig s = b.regh("srcreg", 8, 0);
        b.assign(s, seed);
        src = s.q.id;
        // A pool of expressions built from the source, the free input,
        // and previously created register outputs.
        std::vector<Sig> pool{s.q, other};
        std::vector<RegSig> rs;
        for (int i = 0; i < 10; i++) {
            Sig a = pool[rng() % pool.size()];
            Sig c = pool[rng() % pool.size()];
            Sig v;
            switch (rng() % 11) {
              case 0: v = a & c; break;
              case 1: v = a | c; break;
              case 2: v = a ^ c; break;
              case 3: v = a + c; break;
              case 4: v = a - c; break;
              case 5: v = a * c; break;
              case 6: v = b.mux((a == c), a, c); break;
              case 7: v = b.mux(a.bit(rng() % 8), a, c); break;
              case 8: v = b.shl(a, c.slice(0, 3)); break;
              case 9: v = b.shr(a, c.slice(0, 3)); break;
              default: v = (~a) ^ (a.orR().zext(8) + c); break;
            }
            RegSig r = b.regh("r" + std::to_string(i), 8, 0);
            b.assign(r, v);
            rs.push_back(r);
            pool.push_back(r.q);
        }
        b.finalize();
        for (auto &r : rs)
            regs.push_back(r.q.id);
    }
};

} // namespace

class IftNonInterference : public ::testing::TestWithParam<int>
{
};

TEST_P(IftNonInterference, UntaintedBitsAreSourceIndependent)
{
    std::mt19937_64 rng(GetParam() * 0x9e3779b9u + 5);
    RandomDesign rd(rng);
    IftConfig cfg;
    cfg.taintSources = {rd.src};
    Instrumented inst = instrument(rd.d, cfg);
    SigId tin = inst.taintIn.at(rd.src);

    const unsigned T = 8;
    // Two runs: identical free inputs, different source seeds, taint
    // always introduced on the source's full width.
    std::vector<uint64_t> frees(T);
    for (auto &f : frees)
        f = rng() & 0xff;
    uint64_t seed1 = rng() & 0xff, seed2 = rng() & 0xff;

    auto run = [&](uint64_t seed) {
        Simulator sim(*inst.design);
        for (unsigned t = 0; t < T; t++)
            sim.step({{rd.seed_in, seed},
                      {rd.free_in, frees[t]},
                      {tin, 0xff}});
        return sim.trace();
    };
    SimTrace t1 = run(seed1);
    SimTrace t2 = run(seed2);

    for (unsigned t = 0; t < T; t++) {
        for (SigId r : rd.regs) {
            uint64_t sh = t1.value(t, inst.shadow[r]) |
                          t2.value(t, inst.shadow[r]);
            uint64_t v1 = t1.value(t, r), v2 = t2.value(t, r);
            // Bits untainted in both runs must agree.
            uint64_t clean = ~sh & 0xff;
            EXPECT_EQ(v1 & clean, v2 & clean)
                << "under-taint at reg " << rd.d.cell(r).name
                << " cycle " << t << " seed " << GetParam();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IftNonInterference,
                         ::testing::Range(1, 25));
