/**
 * @file
 * Targeted formal-pipeline tests on MiniCVA using the semi-formal
 * profile (simulation-guided exploration + budget-limited closure), plus
 * direct tests of the simulation explorer.
 */

#include <gtest/gtest.h>

#include <set>

#include "designs/mcva.hh"
#include "rtl2mupath/sim_explore.hh"
#include "rtl2mupath/synth.hh"
#include "synthlc/synthlc.hh"

using namespace rmp;
using namespace rmp::designs;
using namespace rmp::r2m;
using namespace rmp::uhb;

namespace
{

SynthesisConfig
fastCfg()
{
    SynthesisConfig cfg;
    cfg.budget.maxConflicts = 8000;
    cfg.closureChecks = false; // semi-formal profile
    cfg.explore.runs = 800;
    return cfg;
}

PlId
plByName(const Harness &hx, const std::string &n)
{
    for (PlId p = 0; p < hx.numPls(); p++)
        if (hx.plName(p) == n)
            return p;
    return kNoPl;
}

} // namespace

TEST(McvaExplore, SimFindsLoadStallAndFinishPaths)
{
    Harness hx(buildMcva());
    SimExploreConfig cfg;
    cfg.runs = 1500;
    SimFacts f = exploreSim(hx, hx.duv().instrId("LW"), cfg);
    PlId ld_stall = plByName(hx, "ldStall");
    PlId ld_fin = plByName(hx, "ldFin");
    EXPECT_TRUE(f.iuvPls.count(ld_fin));
    EXPECT_TRUE(f.iuvPls.count(ld_stall));
    // Both decision branches at issue observed.
    PlId issue = plByName(hx, "issue");
    ASSERT_TRUE(f.succ.count(issue));
    bool to_stall = false, to_fin = false;
    for (const auto &pat : f.succ.at(issue)) {
        std::set<PlId> s(pat.begin(), pat.end());
        if (s.count(ld_stall))
            to_stall = true;
        if (s.count(ld_fin) && !s.count(ld_stall))
            to_fin = true;
    }
    EXPECT_TRUE(to_stall);
    EXPECT_TRUE(to_fin);
}

TEST(McvaExplore, WitnessesReplayConsistently)
{
    Harness hx(buildMcva());
    SimExploreConfig cfg;
    cfg.runs = 200;
    SimFacts f = exploreSim(hx, hx.duv().instrId("ADD"), cfg);
    ASSERT_FALSE(f.sets.empty());
    // Replaying a witness's inputs must reproduce its trace.
    const auto &sf = f.sets.begin()->second;
    Simulator sim(hx.design());
    for (const auto &in : sf.witness.inputs)
        sim.step(in);
    ASSERT_EQ(sim.trace().numCycles(), sf.witness.trace.numCycles());
    size_t last = sim.trace().numCycles() - 1;
    for (PlId p = 0; p < hx.numPls(); p++)
        EXPECT_EQ(sim.trace().value(last, hx.plSig(p).iuvVisited),
                  sf.witness.trace.value(last, hx.plSig(p).iuvVisited));
}

TEST(McvaFormal, LoadHasStallAndFinishUPaths)
{
    Harness hx(buildMcva());
    MuPathSynthesizer synth(hx, fastCfg());
    InstrPaths r = synth.synthesize(hx.duv().instrId("LW"));
    ASSERT_GE(r.paths.size(), 2u);
    PlId ld_stall = plByName(hx, "ldStall");
    bool stall_set = false, fin_set = false;
    for (const auto &p : r.paths) {
        if (p.plSet.count(ld_stall))
            stall_set = true;
        else
            fin_set = true;
    }
    EXPECT_TRUE(stall_set);
    EXPECT_TRUE(fin_set);
    // The decision at issue exists with >= 2 destinations (Fig. 4b).
    auto srcs = r.decisionSources();
    std::set<std::string> names;
    for (PlId s : srcs)
        names.insert(hx.plName(s));
    EXPECT_TRUE(names.count("issue"));
}

TEST(McvaFormal, DivRevisitCountsCoverLatencyRange)
{
    Harness hx(buildMcva());
    SynthesisConfig cfg = fastCfg();
    cfg.revisitCounts = true;
    cfg.maxRevisitCount = 8;
    cfg.explore.runs = 2500;
    MuPathSynthesizer synth(hx, cfg);
    InstrPaths r = synth.synthesize(hx.duv().instrId("DIV"));
    PlId divu = plByName(hx, "divU");
    std::set<unsigned> counts;
    for (const auto &p : r.paths)
        if (p.revisitCounts.count(divu))
            for (unsigned c : p.revisitCounts.at(divu))
                counts.insert(c);
    // The serial divider's dividend-dependent latency: many distinct
    // occupancy counts within 1..8 must be realizable.
    EXPECT_GE(counts.size(), 5u);
    EXPECT_TRUE(counts.count(1));
    EXPECT_TRUE(counts.count(8));
}

TEST(McvaFormal, StoreToLoadLeakSignatureAtIssue)
{
    Harness hx(buildMcva());
    MuPathSynthesizer synth(hx, fastCfg());
    slc::SynthLcConfig lcfg;
    lcfg.budget.maxConflicts = 1000;
    lcfg.simRuns = 300;
    lcfg.testDynamicYounger = false; // scope to the Fig. 5 LD_issue types
    lcfg.testStatic = false;
    slc::SynthLc slc(hx, lcfg);
    InstrId lw = hx.duv().instrId("LW");
    InstrId sw = hx.duv().instrId("SW");
    InstrPaths r = synth.synthesize(lw);
    // Scope the analysis to the issue decision source (Fig. 4b / Fig. 5).
    std::vector<Decision> at_issue;
    for (const auto &d : r.decisions)
        if (hx.plName(d.src) == "issue")
            at_issue.push_back(d);
    auto sigs = slc.analyze(lw, at_issue, {lw, sw});
    // LD_issue (Fig. 5): the load's stall decision depends on its own
    // rs1 (intrinsic) and an older store's rs1 (dynamic).
    bool intrinsic_rs1 = false, st_dyn_rs1 = false;
    for (const auto &s : sigs) {
        if (hx.plName(s.src) != "issue")
            continue;
        for (const auto &ti : s.inputs) {
            if (ti.instr == lw && ti.type == slc::TxType::Intrinsic &&
                ti.op == slc::Operand::Rs1)
                intrinsic_rs1 = true;
            if (ti.instr == sw && ti.type == slc::TxType::DynamicOlder &&
                ti.op == slc::Operand::Rs1)
                st_dyn_rs1 = true;
        }
    }
    EXPECT_TRUE(intrinsic_rs1);
    EXPECT_TRUE(st_dyn_rs1);
}

TEST(McvaFormal, ComStbChannelFlagsYoungerLoad)
{
    // The paper's novel channel: a committed store's drain decision
    // depends on a YOUNGER in-flight load's address operand.
    Harness hx(buildMcva());
    MuPathSynthesizer synth(hx, fastCfg());
    slc::SynthLcConfig lcfg;
    lcfg.budget.maxConflicts = 1000;
    lcfg.simRuns = 300;
    lcfg.testIntrinsic = false; // scope to the younger-transmitter type
    lcfg.testDynamicOlder = false;
    lcfg.testStatic = false;
    slc::SynthLc slc(hx, lcfg);
    InstrId lw = hx.duv().instrId("LW");
    InstrId sw = hx.duv().instrId("SW");
    InstrPaths r = synth.synthesize(sw);
    // Scope the analysis to the committed-store-buffer decision source.
    std::vector<Decision> at_com;
    for (const auto &d : r.decisions)
        if (hx.plName(d.src) == "comSTB")
            at_com.push_back(d);
    auto sigs = slc.analyze(sw, at_com, {lw});
    bool younger_ld = false;
    for (const auto &s : sigs)
        for (const auto &ti : s.inputs)
            if (ti.instr == lw &&
                ti.type == slc::TxType::DynamicYounger)
                younger_ld = true;
    EXPECT_TRUE(younger_ld);
}
