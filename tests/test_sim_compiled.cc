/**
 * @file
 * Differential tests for the compiled batched simulation engine
 * (DESIGN.md §3h): the op tape + BatchSim are only trusted because this
 * file replays seeded random programs through both engines on every
 * built-in design and asserts bit-identical watched values — at every
 * lane position, at 1 and at kMaxLanes lanes — and because a seeded
 * corrupted-tape check proves the differential harness actually detects
 * injected defects (i.e. the oracle comparison is not vacuous).
 *
 * Also pins down the acceptance property of the exploration rewrite:
 * exploreSim facts are bit-identical across engines and across any
 * lane/thread count (factsEqual is deep, witnesses included).
 */

#include <gtest/gtest.h>

#include <random>

#include "designs/dcache.hh"
#include "designs/harness.hh"
#include "designs/mcva.hh"
#include "designs/tiny3.hh"
#include "rtl2mupath/sim_explore.hh"
#include "sim/batch.hh"
#include "sim/codegen.hh"
#include "sim/simulator.hh"
#include "sim/tape.hh"

using namespace rmp;
using namespace rmp::designs;

namespace
{

/** Every built-in DUV, harnessed (the configuration the engines run). */
std::vector<Harness>
allHarnesses()
{
    std::vector<Harness> v;
    v.emplace_back(buildTiny3());
    v.emplace_back(buildTiny3({.withZeroSkip = true}));
    v.emplace_back(buildMcva());
    v.emplace_back(buildMcva({.withZeroSkipMul = true}));
    v.emplace_back(buildMcva({.withOperandPacking = true}));
    v.emplace_back(buildMcva({.fixAlignmentBugs = true}));
    v.emplace_back(buildMcva({.withScbCounterBug = true}));
    v.emplace_back(buildDcache());
    return v;
}

/** Watch everything: the strongest differential (no pruning slack). */
std::vector<SigId>
watchAll(const Design &d)
{
    std::vector<SigId> w(d.numCells());
    for (SigId s = 0; s < d.numCells(); s++)
        w[s] = s;
    return w;
}

/** One seeded random program: per-cycle input valuations. */
std::vector<InputMap>
randomProgram(const Design &d, unsigned cycles, uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::vector<InputMap> prog(cycles);
    for (unsigned t = 0; t < cycles; t++)
        for (SigId in : d.inputs())
            prog[t][in] = rng() & BitVec::maskOf(d.width(in));
    return prog;
}

/**
 * Run @p progs (one per lane) through the interpreted oracle and through
 * one BatchSim over @p tape, and return the number of (cycle, watch,
 * lane) positions whose values differ. Zero on a healthy tape.
 */
size_t
diffCount(const Design &d, const sim::Tape &tape,
          const std::vector<std::vector<InputMap>> &progs, unsigned cycles)
{
    sim::BatchSim bs(tape, static_cast<unsigned>(progs.size()));
    bs.reserveTrace(cycles);
    std::vector<Simulator> oracle;
    for (size_t l = 0; l < progs.size(); l++)
        oracle.emplace_back(d);
    size_t diffs = 0;
    for (unsigned t = 0; t < cycles; t++) {
        bs.clearInputs();
        for (size_t l = 0; l < progs.size(); l++) {
            bs.stageInputs(static_cast<unsigned>(l), progs[l][t]);
            oracle[l].step(progs[l][t]);
        }
        bs.step();
        for (size_t l = 0; l < progs.size(); l++)
            for (size_t k = 0; k < tape.watchSigs.size(); k++)
                if (bs.watched(t, k, static_cast<unsigned>(l)) !=
                    oracle[l].value(tape.watchSigs[k]))
                    diffs++;
    }
    return diffs;
}

std::vector<std::vector<InputMap>>
randomPrograms(const Design &d, size_t lanes, unsigned cycles,
               uint64_t seed)
{
    std::vector<std::vector<InputMap>> progs;
    for (size_t l = 0; l < lanes; l++)
        progs.push_back(randomProgram(d, cycles, seed + 1000 * l));
    return progs;
}

} // namespace

TEST(SimCompiled, EveryDesignMatchesOracleAtOneAndMaxLanes)
{
    constexpr unsigned kCycles = 24;
    for (const Harness &hx : allHarnesses()) {
        const Design &d = hx.design();
        sim::Tape tape = sim::compileTape(d, watchAll(d));
        EXPECT_EQ(tape.cellsPruned, 0u)
            << d.name() << ": watching everything must prune nothing";
        // kMaxLanes distinct programs, one per lane position.
        auto progs = randomPrograms(d, sim::kMaxLanes, kCycles, 7);
        EXPECT_EQ(diffCount(d, tape, progs, kCycles), 0u)
            << d.name() << " at " << sim::kMaxLanes << " lanes";
        // The same programs again, one lane at a time: lane-position
        // independence (lane 0 of a 1-lane batch == lane l of a 16-lane
        // batch, both == the oracle).
        for (size_t l = 0; l < progs.size(); l += 5)
            EXPECT_EQ(diffCount(d, tape, {progs[l]}, kCycles), 0u)
                << d.name() << " single-lane replay of lane " << l;
    }
}

TEST(SimCompiled, PrunedWatchSubsetStaysExact)
{
    Harness hx(buildMcva());
    const Design &d = hx.design();
    // Watch only the PL occupancy bits: plenty of combinational logic
    // (decode of untracked paths) falls outside watch + register cone.
    std::vector<SigId> watch;
    for (uhb::PlId p = 0; p < hx.numPls(); p++)
        watch.push_back(hx.plSig(p).occupied);
    sim::Tape tape = sim::compileTape(d, watch);
    EXPECT_GT(tape.cellsPruned, 0u) << "narrow watch should prune";
    EXPECT_GT(tape.constsFolded, 0u);
    EXPECT_LT(tape.numOps(), static_cast<size_t>(tape.cellsTotal));
    auto progs = randomPrograms(d, 8, 32, 11);
    EXPECT_EQ(diffCount(d, tape, progs, 32), 0u);
}

TEST(SimCompiled, CorruptedTapeIsDetected)
{
    // Guard against a vacuous differential: inject a defect into the
    // compiled artifact and require the oracle comparison to notice.
    Harness hx(buildTiny3());
    const Design &d = hx.design();
    sim::Tape tape = sim::compileTape(d, watchAll(d));
    auto progs = randomPrograms(d, 8, 24, 13);
    ASSERT_EQ(diffCount(d, tape, progs, 24), 0u);

    std::mt19937_64 rng(17);
    size_t detected = 0, tried = 0;
    while (tried < 6) {
        sim::Tape bad = tape;
        size_t i = rng() % bad.numOps();
        // Flip the op to a different one with compatible arity so the
        // corrupted tape still executes safely.
        auto o = static_cast<sim::TOp>(bad.opc[i]);
        sim::TOp swapped;
        switch (o) {
        case sim::TOp::Add: swapped = sim::TOp::Sub; break;
        case sim::TOp::Sub: swapped = sim::TOp::Add; break;
        case sim::TOp::And: swapped = sim::TOp::Or; break;
        case sim::TOp::Or: swapped = sim::TOp::Xor; break;
        case sim::TOp::Xor: swapped = sim::TOp::And; break;
        case sim::TOp::Eq: swapped = sim::TOp::Ult; break;
        default: continue; // try another op index
        }
        bad.opc[i] = static_cast<uint8_t>(swapped);
        tried++;
        if (diffCount(d, bad, progs, 24) > 0)
            detected++;
    }
    // Random operands make an undetected opcode swap vanishingly rare;
    // require a decisive majority so the harness provably has teeth.
    EXPECT_GE(detected, tried - 1) << "differential harness missed "
                                   << tried - detected << "/" << tried
                                   << " injected defects";
}

TEST(SimCompiled, DenseInputPathMatchesMapShim)
{
    Harness hx(buildTiny3());
    const Design &d = hx.design();
    sim::Tape tape = sim::compileTape(d, watchAll(d));
    auto prog = randomProgram(d, 16, 23);
    sim::BatchSim viaMap(tape, 1), viaDense(tape, 1);
    for (unsigned t = 0; t < 16; t++) {
        viaMap.clearInputs();
        viaDense.clearInputs();
        viaMap.stageInputs(0, prog[t]);
        for (const auto &[sig, v] : prog[t]) {
            uint32_t ord = tape.inputOrdinal[sig];
            ASSERT_NE(ord, sim::kNoInput);
            viaDense.setInput(0, ord, v & BitVec::maskOf(d.width(sig)));
        }
        viaMap.step();
        viaDense.step();
        for (size_t k = 0; k < tape.watchSigs.size(); k++)
            ASSERT_EQ(viaMap.watched(t, k, 0), viaDense.watched(t, k, 0));
    }
}

TEST(SimCompiled, StageInputRejectsPrunedInputs)
{
    // A DUV's inputs all reach register cones, so build a toy design
    // with an input whose entire fanout is dead under a narrow watch.
    Design d("toy");
    SigId a = d.addInput("a", 8);
    SigId b = d.addInput("b", 8);
    SigId sum = d.addBinary(Op::Add, a, a);
    SigId r = d.addReg("r", BitVec(8, 0));
    d.connectRegNext(r, sum);
    (void)d.addBinary(Op::Xor, b, b); // outside watch + register cone
    sim::Tape tape = sim::compileTape(d, {r});
    EXPECT_NE(tape.inputOrdinal[a], sim::kNoInput);
    EXPECT_EQ(tape.inputOrdinal[b], sim::kNoInput);
    sim::BatchSim bs(tape, 1);
    EXPECT_TRUE(bs.stageInput(0, a, 3));
    EXPECT_FALSE(bs.stageInput(0, b, 3));
    bs.step();
    bs.step();
    // r latched a+a; the dead input staged nothing anywhere.
    EXPECT_EQ(bs.watched(1, 0, 0), 6u);
}

TEST(SimCompiled, SparseLaneTraceExposesOnlyWatchedSignals)
{
    Harness hx(buildTiny3());
    const Design &d = hx.design();
    std::vector<SigId> watch = {hx.plSig(0).occupied,
                                hx.plSig(1).occupied};
    sim::Tape tape = sim::compileTape(d, watch);
    sim::BatchSim bs(tape, 2);
    auto progs = randomPrograms(d, 2, 10, 29);
    Simulator oracle(d);
    for (unsigned t = 0; t < 10; t++) {
        bs.clearInputs();
        bs.stageInputs(0, progs[0][t]);
        bs.stageInputs(1, progs[1][t]);
        bs.step();
        oracle.step(progs[1][t]);
    }
    SimTrace trace = bs.laneTrace(1, d.numCells());
    ASSERT_EQ(trace.numCycles(), 10u);
    for (unsigned t = 0; t < 10; t++) {
        ASSERT_EQ(trace.frames[t].size(), d.numCells());
        for (SigId w : watch)
            EXPECT_EQ(trace.value(t, w), oracle.trace().value(t, w));
    }
}

#if !defined(NDEBUG)
TEST(SimCompiled, TraceValueBoundsCheckedInDebugBuilds)
{
    SimTrace t;
    t.frames = {{1, 2, 3}};
    EXPECT_EQ(t.value(0, 2), 3u);
    EXPECT_DEATH((void)t.value(1, 0), "out of range");
    EXPECT_DEATH((void)t.value(0, 3), "out of range");
}
#endif

TEST(SimCompiled, ExploreFactsInvariantAcrossEnginesLanesThreadsBackends)
{
    // The acceptance property of the exploration rewrite: SimFacts —
    // witnesses included — are bit-identical across the engine choice,
    // every lane/thread count (runs are seeded per (seed, iuv, run) and
    // merged serially in run order), and every execution backend
    // (DESIGN.md §3h: tape interpreter, SIMD kernels, native codegen).
    const bool haveCc = sim::nativeCompilerAvailable();
    for (const char *duv : {"tiny3", "mcva"}) {
        Harness hx(std::string(duv) == "tiny3" ? buildTiny3()
                                               : buildMcva());
        uhb::InstrId iuv = hx.duv().instrId(
            std::string(duv) == "tiny3" ? "MUL" : "DIV");
        r2m::SimExploreConfig base;
        base.runs = 250;
        base.engine = r2m::SimEngine::Interpreted;
        r2m::SimFacts ref = r2m::exploreSim(hx, iuv, base);
        EXPECT_TRUE(r2m::factsEqual(ref, ref));

        struct Cfg
        {
            unsigned lanes, threads;
            sim::SimBackend backend;
        };
        using B = sim::SimBackend;
        for (Cfg c : {Cfg{1, 1, B::Tape}, Cfg{8, 4, B::Tape},
                      Cfg{16, 3, B::Tape}, Cfg{5, 2, B::Tape},
                      Cfg{1, 1, B::Simd}, Cfg{8, 4, B::Simd},
                      Cfg{16, 3, B::Simd}, Cfg{5, 2, B::Simd},
                      Cfg{8, 2, B::Native}, Cfg{16, 1, B::Native}}) {
            if (c.backend == B::Native && !haveCc)
                continue;
            r2m::SimExploreConfig cc = base;
            cc.engine = r2m::SimEngine::Compiled;
            cc.lanes = c.lanes;
            cc.threads = c.threads;
            cc.backend = c.backend;
            r2m::SimFacts got = r2m::exploreSim(hx, iuv, cc);
            EXPECT_TRUE(r2m::factsEqual(ref, got))
                << duv << " facts diverge at backend="
                << sim::backendName(c.backend) << " lanes=" << c.lanes
                << " threads=" << c.threads;
        }
    }
}
