/**
 * @file
 * Tests for the Table I contract derivations and report rendering, using
 * a hand-built AnalysisDb over the Tiny3 zero-skip harness (fast: no
 * model checking involved — derivations are pure functions).
 */

#include <gtest/gtest.h>

#include "contracts/contracts.hh"
#include "designs/tiny3.hh"
#include "report/report.hh"

using namespace rmp;
using namespace rmp::ct;
using namespace rmp::slc;
using namespace rmp::uhb;

namespace
{

struct ContractsFixture : public ::testing::Test
{
    ContractsFixture() : hx(designs::buildTiny3({.withZeroSkip = true}))
    {
        db.hx = &hx;
        mul = hx.duv().instrId("MUL");
        add = hx.duv().instrId("ADD");
        // PLs: 0=IF 1=EX 2=mulU 3=WB.
        // MUL's μPATH & decisions (shaped like the real synthesis output).
        InstrPaths mp;
        mp.instr = mul;
        UPath p;
        p.instr = mul;
        p.plSet = {0, 1, 2, 3};
        p.schedule = {{0}, {1, 2}, {1, 2}, {3}};
        p.revisit[1] = Revisit::Consecutive;
        p.revisit[2] = Revisit::Consecutive;
        mp.paths.push_back(p);
        UPath p2 = p;
        p2.schedule = {{0}, {1, 2}, {3}};
        mp.paths.push_back(p2);
        mp.decisions = {{1, {1, 2}}, {1, {3}}, {0, {0}}, {0, {1, 2}}};
        db.paths[mul] = mp;

        // Signature 1: MUL_EX — intrinsic + dynamic-older rs1.
        LeakageSignature s1;
        s1.transponder = mul;
        s1.src = 1;
        s1.inputs = {{mul, Operand::Rs1, TxType::Intrinsic},
                     {mul, Operand::Rs1, TxType::DynamicOlder}};
        TaggedDecision td1{{1, {1, 2}}, {s1.inputs[0]}};
        TaggedDecision td2{{1, {3}}, {s1.inputs[0], s1.inputs[1]}};
        s1.decisions = {td1, td2};
        db.signatures.push_back(s1);

        // Signature 2: ADD_IF — dynamic-older MUL rs1 + a static input to
        // exercise the static-channel paths.
        LeakageSignature s2;
        s2.transponder = add;
        s2.src = 0;
        s2.inputs = {{mul, Operand::Rs1, TxType::DynamicOlder},
                     {mul, Operand::Rs2, TxType::Static}};
        s2.decisions = {TaggedDecision{{0, {0}}, {s2.inputs[0]}},
                        TaggedDecision{{0, {1}}, {s2.inputs[1]}}};
        db.signatures.push_back(s2);
    }

    designs::Harness hx;
    AnalysisDb db;
    InstrId mul = 0, add = 0;
};

} // namespace

TEST_F(ContractsFixture, CtContractCollapsesOperands)
{
    CtContract c = deriveConstantTime(db);
    ASSERT_EQ(c.transmitters.size(), 1u); // only MUL transmits
    EXPECT_EQ(c.transmitters[0].instr, mul);
    EXPECT_TRUE(c.transmitters[0].rs1Unsafe);
    EXPECT_TRUE(c.transmitters[0].rs2Unsafe); // via the static input
}

TEST_F(ContractsFixture, Mi6SplitsDynamicAndStatic)
{
    Mi6Contract c = deriveMi6(db);
    EXPECT_EQ(c.dynamicChannels.size(), 2u); // both signatures have dyn
    ASSERT_EQ(c.staticChannels.size(), 1u);  // only ADD_IF has static
    EXPECT_EQ(c.staticChannels[0].transponder, add);
}

TEST_F(ContractsFixture, OisaFindsVariableLatencyUnit)
{
    OisaContract c = deriveOisa(db);
    ASSERT_EQ(c.units.size(), 1u);
    EXPECT_EQ(c.units[0].unitPl, "EX");
    EXPECT_EQ(c.units[0].transmitter, mul);
    EXPECT_TRUE(c.units[0].rs1Unsafe);
    EXPECT_FALSE(c.units[0].rs2Unsafe);
}

TEST_F(ContractsFixture, SttClassifiesChannels)
{
    SttContract c = deriveStt(db);
    ASSERT_EQ(c.explicitChannels.size(), 1u); // MUL_EX (intrinsic input)
    EXPECT_EQ(c.explicitChannels[0].transponder, mul);
    EXPECT_EQ(c.implicitChannels.size(), 2u); // both have non-intrinsic
    // ADD and MUL both exhibit variability from others' operands.
    EXPECT_EQ(c.implicitBranches.size(), 2u);
    ASSERT_EQ(c.predictionBased.size(), 1u); // static input => predictor
    EXPECT_EQ(c.predictionBased[0].transponder, add);
    EXPECT_EQ(c.resolutionBased.size(), 2u);
    // Tiny3 has no architectural branches.
    EXPECT_TRUE(c.explicitBranches.empty());
}

TEST_F(ContractsFixture, SdoVariantsComeFromUPaths)
{
    SdoContract c = deriveSdo(db);
    ASSERT_EQ(c.perTransmitter.size(), 1u);
    EXPECT_EQ(c.perTransmitter[0].transmitter, mul);
    EXPECT_EQ(c.perTransmitter[0].numVariants, 2u);
    EXPECT_EQ(c.perTransmitter[0].latencies,
              (std::vector<unsigned>{4, 3}));
}

TEST_F(ContractsFixture, DolmaComponents)
{
    DolmaContract c = deriveDolma(db);
    EXPECT_EQ(c.variableTimeOps, std::vector<InstrId>{mul});
    // ADD is induced by MUL; MUL also induces itself as dynamic-older
    // for other MULs, so both appear inducive.
    EXPECT_EQ(c.inducive.size(), 2u);
    EXPECT_EQ(c.resolvent, std::vector<InstrId>{mul});
    EXPECT_EQ(c.resolutionPoints.size(), 2u);
    // MUL modulates a static channel => persistent-state modifying.
    EXPECT_EQ(c.persistentStateModifying, std::vector<InstrId>{mul});
}

TEST_F(ContractsFixture, RenderContractsMentionsAllSix)
{
    std::string s = renderContracts(db);
    EXPECT_NE(s.find("Constant-time"), std::string::npos);
    EXPECT_NE(s.find("MI6"), std::string::npos);
    EXPECT_NE(s.find("OISA"), std::string::npos);
    EXPECT_NE(s.find("STT/SDO/SPT"), std::string::npos);
    EXPECT_NE(s.find("data-oblivious variants"), std::string::npos);
    EXPECT_NE(s.find("Dolma"), std::string::npos);
}

TEST_F(ContractsFixture, Fig8MatrixHasSignatureColumns)
{
    std::string s = report::renderFig8Matrix(db);
    EXPECT_NE(s.find("MUL_EX"), std::string::npos);
    EXPECT_NE(s.find("ADD_IF"), std::string::npos);
    EXPECT_NE(s.find("2 signatures"), std::string::npos);
}

TEST_F(ContractsFixture, TableIIRendersCounts)
{
    std::string s = report::renderTableII(hx);
    EXPECT_NE(s.find("IFR"), std::string::npos);
    EXPECT_NE(s.find("candidate PLs"), std::string::npos);
    EXPECT_NE(s.find("4 words"), std::string::npos); // tiny3 ARF
}

TEST_F(ContractsFixture, StepStatsRendersTotals)
{
    std::vector<r2m::StepStats> steps(2);
    steps[0].step = "1:duv-pl-reach";
    steps[0].queries = 10;
    steps[0].reachable = 8;
    steps[0].unreachable = 1;
    steps[0].undetermined = 1;
    steps[0].seconds = 1.0;
    slc::SynthLcStats ls;
    ls.queries = 5;
    ls.reachable = 2;
    ls.unreachable = 3;
    std::string s = report::renderStepStats(steps, &ls);
    EXPECT_NE(s.find("10.0"), std::string::npos); // undet percentage
    EXPECT_NE(s.find("SynthLC"), std::string::npos);
}
