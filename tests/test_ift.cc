/**
 * @file
 * Tests for CellIFT-style instrumentation: per-op propagation precision,
 * taint introduction, architectural blocking, and the Assumption-3
 * sticky-taint flush with persistent state.
 */

#include <gtest/gtest.h>

#include "ift/instrument.hh"
#include "rtlir/builder.hh"
#include "sim/simulator.hh"

using namespace rmp;
using namespace rmp::ift;

namespace
{

/** A design with one taint-source register feeding various cells. */
struct PropFixture : public ::testing::Test
{
    Design d{"prop"};
    SigId src, other, out_and, out_or, out_xor, out_eq, out_redor,
        out_add, out_mul, out_mux, out_sel_mux;
    SigId in_src, in_other, in_sel;
    Instrumented inst;

    PropFixture()
    {
        Builder b(d);
        Sig iv = b.input("iv", 8);
        Sig ov = b.input("ov", 8);
        Sig sel = b.input("sel", 1);
        in_src = iv.id;
        in_other = ov.id;
        in_sel = sel.id;
        RegSig s = b.regh("srcreg", 8, 0);
        RegSig o = b.regh("otherreg", 8, 0);
        b.assign(s, iv);
        b.assign(o, ov);
        src = s.q.id;
        other = o.q.id;
        out_and = (s.q & o.q).id;
        out_or = (s.q | o.q).id;
        out_xor = (s.q ^ o.q).id;
        out_eq = (s.q == o.q).id;
        out_redor = s.q.orR().id;
        out_add = (s.q + o.q).id;
        out_mul = (s.q * o.q).id;
        out_mux = b.mux(sel, s.q, o.q).id;
        out_sel_mux = b.mux(s.q.bit(0), o.q, o.q + b.lit(8, 1)).id;
        b.finalize();

        IftConfig cfg;
        cfg.taintSources = {src};
        inst = instrument(d, cfg);
    }

    /**
     * Step the instrumented design: cycle 0 loads values into the
     * registers; cycle 1 marks srcreg's content tainted (combinational
     * read-path introduction) and observes propagation in-cycle.
     */
    Simulator
    runCycle(uint64_t sv, uint64_t ov, uint64_t taint_mask,
             uint64_t sel = 0)
    {
        Simulator sim(*inst.design);
        SigId tin = inst.taintIn.at(src);
        sim.step({{in_src, sv}, {in_other, ov}});
        sim.step({{in_sel, sel}, {tin, taint_mask}});
        return sim;
    }

    uint64_t taintOf(Simulator &sim, SigId sig)
    {
        return sim.value(inst.shadow[sig]);
    }
};

} // namespace

TEST_F(PropFixture, XorPropagatesUnion)
{
    auto sim = runCycle(0x0f, 0x33, 0b1010);
    EXPECT_EQ(taintOf(sim, out_xor), 0b1010u);
}

TEST_F(PropFixture, AndMasksByOtherOperandValue)
{
    // Tainted bit only matters where the untainted operand is 1.
    auto sim = runCycle(0xff, 0b1100, 0b1111);
    EXPECT_EQ(taintOf(sim, out_and), 0b1100u);
}

TEST_F(PropFixture, OrMasksByOtherOperandZero)
{
    // A 1 in the untainted operand forces the output bit to 1.
    auto sim = runCycle(0x00, 0b1100, 0b1111);
    EXPECT_EQ(taintOf(sim, out_or), 0b0011u);
}

TEST_F(PropFixture, EqUntaintedWhenUntaintedBitsDiffer)
{
    // Bits 4..7 untainted and differ (0x0 vs 0x3 in high nibble): output
    // is definitely 0 regardless of tainted bits.
    auto sim = runCycle(0x0f, 0x3f, 0b1111);
    EXPECT_EQ(taintOf(sim, out_eq), 0u);
    // With equal untainted parts, equality depends on tainted bits.
    auto sim2 = runCycle(0x0f, 0x0f, 0b1111);
    EXPECT_EQ(taintOf(sim2, out_eq), 1u);
}

TEST_F(PropFixture, RedOrUntaintedWhenUntaintedOneExists)
{
    // Untainted bit 7 is 1: reduction is 1 regardless of taint.
    auto sim = runCycle(0x81, 0x00, 0b0001);
    EXPECT_EQ(taintOf(sim, out_redor), 0u);
    // All-zero untainted part: reduction depends on tainted bit.
    auto sim2 = runCycle(0x01, 0x00, 0b0001);
    EXPECT_EQ(taintOf(sim2, out_redor), 1u);
}

TEST_F(PropFixture, AddTaintFlowsUpwardOnly)
{
    auto sim = runCycle(0x00, 0x00, 0b0100);
    // Prefix-or: bits >= 2 tainted, bits 0..1 clean.
    EXPECT_EQ(taintOf(sim, out_add), 0xfcu);
}

TEST_F(PropFixture, MulSmearsAllBits)
{
    auto sim = runCycle(0x02, 0x03, 0b0001);
    EXPECT_EQ(taintOf(sim, out_mul), 0xffu);
}

TEST_F(PropFixture, MuxSelectsTaintOfChosenArm)
{
    auto sim = runCycle(0x55, 0xaa, 0xff, /*sel=*/1);
    EXPECT_EQ(taintOf(sim, out_mux), 0xffu); // picks tainted srcreg
    auto sim2 = runCycle(0x55, 0xaa, 0xff, /*sel=*/0);
    EXPECT_EQ(taintOf(sim2, out_mux), 0x00u); // picks clean otherreg
}

TEST_F(PropFixture, TaintedSelectTaintsDifferingArmBits)
{
    // Arms are ov and ov+1: differ at least in bit 0; select bit comes
    // from tainted srcreg.
    auto sim = runCycle(0x01, 0x10, 0x01);
    EXPECT_NE(taintOf(sim, out_sel_mux), 0u);
}

TEST_F(PropFixture, NoTaintWithoutIntroduction)
{
    auto sim = runCycle(0xff, 0xff, 0);
    EXPECT_EQ(taintOf(sim, out_xor), 0u);
    EXPECT_EQ(taintOf(sim, out_add), 0u);
    EXPECT_EQ(taintOf(sim, out_mul), 0u);
}

TEST(IftBlocking, ArchitecturalBoundaryStopsTaint)
{
    Design d("blk");
    SigId src, arf, downstream, in_v;
    {
        Builder b(d);
        Sig iv = b.input("iv", 8);
        in_v = iv.id;
        RegSig s = b.regh("op_reg", 8, 0);
        b.assign(s, iv);
        RegSig a = b.regh("arf0", 8, 0);
        b.assign(a, s.q); // result written to ARF
        RegSig dn = b.regh("consumer", 8, 0);
        b.assign(dn, a.q); // next instruction reads ARF
        b.finalize();
        src = s.q.id;
        arf = a.q.id;
        downstream = dn.q.id;
    }
    IftConfig cfg;
    cfg.taintSources = {src};
    cfg.blockRegs = {arf};
    Instrumented inst = instrument(d, cfg);
    Simulator sim(*inst.design);
    SigId tin = inst.taintIn.at(src);
    // Keep the source marked tainted throughout.
    for (int i = 0; i < 5; i++)
        sim.step({{in_v, 0x42}, {tin, 0xff}});
    // The value flows through, but the taint is blocked at the ARF.
    EXPECT_EQ(sim.value(downstream), 0x42u);
    EXPECT_EQ(sim.value(inst.shadow[arf]), 0u);
    EXPECT_EQ(sim.value(inst.shadow[downstream]), 0u);
}

TEST(IftFlush, StickyFlushClearsTransientKeepsPersistent)
{
    Design d("flush");
    SigId src, pipe, cache, reader, gone_in, in_v, wr_in;
    {
        Builder b(d);
        Sig iv = b.input("iv", 8);
        Sig gone = b.input("txm_gone", 1);
        Sig wr = b.input("cache_wr", 1);
        in_v = iv.id;
        gone_in = gone.id;
        wr_in = wr.id;
        RegSig s = b.regh("op_reg", 8, 0);
        b.assign(s, iv);
        RegSig p = b.regh("pipe_reg", 8, 0);
        b.assign(p, s.q);
        // A cache-like persistent cell: holds unless written.
        RegSig c = b.regh("cache_line", 8, 0);
        b.when(wr);
        b.assign(c, p.q);
        b.end();
        // Later reads pull the (possibly tainted) cache contents back
        // into the pipeline: the static leakage path.
        RegSig rd = b.regh("reader", 8, 0);
        b.assign(rd, c.q);
        b.finalize();
        src = s.q.id;
        pipe = p.q.id;
        cache = c.q.id;
        reader = rd.q.id;
    }
    IftConfig cfg;
    cfg.taintSources = {src};
    cfg.persistentRegs = {cache};
    cfg.txmGone = gone_in;
    Instrumented inst = instrument(d, cfg);
    SigId tin = inst.taintIn.at(src);

    // Sticky mode ON: taint flows src -> pipe -> cache, then the
    // transmitter leaves (gone rises) and transient taint is flushed.
    Simulator sim(*inst.design);
    auto step = [&](uint64_t taint, uint64_t gone, uint64_t wr) {
        sim.step({{in_v, 1},
                  {tin, taint},
                  {gone_in, gone},
                  {wr_in, wr},
                  {inst.stickyMode, 1}});
    };
    step(0xff, 0, 0); // src reads as tainted; pipe latches the taint
    step(0, 0, 1);    // pipe shadow visible; cache writes
    step(0, 1, 0);    // cache tainted; transmitter leaves -> flush pulse
    EXPECT_NE(sim.value(inst.shadow[cache]), 0u);
    step(0, 1, 0);
    // Transient regs were cleared at the pulse; persistent cache keeps
    // its taint and re-taints the reader register (static channel).
    EXPECT_NE(sim.value(inst.shadow[cache]), 0u);
    step(0, 1, 0);
    EXPECT_NE(sim.value(inst.shadow[reader]), 0u);
}

TEST(IftFlush, NoFlushWhenStickyModeOff)
{
    Design d("noflush");
    SigId src, pipe, gone_in, in_v;
    {
        Builder b(d);
        Sig iv = b.input("iv", 8);
        Sig gone = b.input("txm_gone", 1);
        in_v = iv.id;
        gone_in = gone.id;
        RegSig s = b.regh("op_reg", 8, 0);
        b.assign(s, iv | s.q);
        RegSig p = b.regh("pipe_reg", 8, 0);
        b.assign(p, s.q);
        b.finalize();
        src = s.q.id;
        pipe = p.q.id;
    }
    IftConfig cfg;
    cfg.taintSources = {src};
    cfg.txmGone = gone_in;
    Instrumented inst = instrument(d, cfg);
    SigId tin = inst.taintIn.at(src);
    Simulator sim(*inst.design);
    sim.step({{in_v, 1}, {tin, 0xff}, {inst.stickyMode, 0}});
    // Taint reached pipe; gone rises but sticky mode is off: no flush.
    sim.step({{gone_in, 1}, {inst.stickyMode, 0}});
    EXPECT_NE(sim.value(inst.shadow[pipe]), 0u);
    sim.step({{gone_in, 1}, {inst.stickyMode, 0}});
}

TEST(IftApi, AnyTaintWireReducesShadows)
{
    Design d("any");
    SigId src, in_v;
    {
        Builder b(d);
        Sig iv = b.input("iv", 4);
        in_v = iv.id;
        RegSig s = b.regh("r", 4, 0);
        b.assign(s, iv);
        b.finalize();
        src = s.q.id;
    }
    IftConfig cfg;
    cfg.taintSources = {src};
    Instrumented inst = instrument(d, cfg);
    SigId any = inst.anyTaintWire({src});
    Simulator sim(*inst.design);
    sim.step({{in_v, 5}});
    sim.step({{inst.taintIn.at(src), 0b0010}});
    EXPECT_EQ(sim.value(any), 1u);
}

TEST(IftApi, OriginalSigIdsPreserved)
{
    Design d("ids");
    Builder b(d);
    Sig iv = b.input("iv", 4);
    RegSig s = b.regh("r", 4, 0);
    b.assign(s, iv + b.lit(4, 1));
    b.finalize();
    Instrumented inst = instrument(d, {});
    for (SigId i = 0; i < d.numCells(); i++) {
        EXPECT_EQ(inst.design->cell(i).op, d.cell(i).op);
        EXPECT_EQ(inst.design->cell(i).width, d.cell(i).width);
    }
}
