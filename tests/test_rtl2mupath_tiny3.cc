/**
 * @file
 * End-to-end tests of RTL2MμPATH on the Tiny3 cores: DUV/IUV PL
 * reachability, pruning facts, Reachable PL Sets, concrete schedules,
 * revisit classification, HB edges, revisit counts, and decisions.
 */

#include <gtest/gtest.h>

#include <set>

#include "designs/tiny3.hh"
#include "rtl2mupath/synth.hh"

using namespace rmp;
using namespace rmp::designs;
using namespace rmp::r2m;
using namespace rmp::uhb;

namespace
{

struct R2mTiny3 : public ::testing::Test
{
    R2mTiny3() : hx(buildTiny3()), synth(hx) {}
    Harness hx;
    MuPathSynthesizer synth;

    PlId
    plByName(const std::string &n) const
    {
        for (PlId p = 0; p < hx.numPls(); p++)
            if (hx.plName(p) == n)
                return p;
        return kNoPl;
    }
    std::set<std::string>
    names(const std::set<PlId> &pls) const
    {
        std::set<std::string> out;
        for (PlId p : pls)
            out.insert(hx.plName(p));
        return out;
    }
};

} // namespace

TEST_F(R2mTiny3, AllFourPlsReachableOnDuv)
{
    auto pls = synth.duvPls();
    EXPECT_EQ(pls.size(), 4u);
}

TEST_F(R2mTiny3, AddDoesNotReachMulUnit)
{
    auto pls = synth.iuvPls(hx.duv().instrId("ADD"));
    std::set<std::string> got;
    for (PlId p : pls)
        got.insert(hx.plName(p));
    EXPECT_EQ(got, (std::set<std::string>{"IF", "EX", "WB"}));
}

TEST_F(R2mTiny3, MulReachesAllPls)
{
    auto pls = synth.iuvPls(hx.duv().instrId("MUL"));
    EXPECT_EQ(pls.size(), 4u);
}

TEST_F(R2mTiny3, AddPruneFactsAllMandatory)
{
    InstrId add = hx.duv().instrId("ADD");
    auto facts = synth.pruneFacts(add, synth.iuvPls(add));
    for (size_t i = 0; i < facts.iuvPls.size(); i++)
        EXPECT_TRUE(facts.mandatory[i])
            << hx.plName(facts.iuvPls[i]) << " should be mandatory";
    // With everything mandatory there is exactly one candidate set.
    auto cands = synth.enumerateCandidateSets(facts);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].size(), 3u);
}

TEST_F(R2mTiny3, AddHasSingleUPath)
{
    InstrPaths r = synth.synthesize(hx.duv().instrId("ADD"));
    ASSERT_EQ(r.paths.size(), 1u);
    EXPECT_EQ(names(r.paths[0].plSet),
              (std::set<std::string>{"IF", "EX", "WB"}));
}

TEST_F(R2mTiny3, AddScheduleIsPipelined)
{
    InstrPaths r = synth.synthesize(hx.duv().instrId("ADD"));
    ASSERT_EQ(r.paths.size(), 1u);
    const UPath &p = r.paths[0];
    // Latency 3 (no stall witness) or 4 (stalled); the witness may be
    // either, but the schedule must start at IF and end at WB.
    ASSERT_GE(p.latency(), 3u);
    EXPECT_EQ(p.schedule.front(),
              std::vector<PlId>{plByName("IF")});
    EXPECT_EQ(p.schedule.back(),
              std::vector<PlId>{plByName("WB")});
}

TEST_F(R2mTiny3, AddIfStageMayBeRevisitedConsecutively)
{
    // The stall behind a MUL revisits IF consecutively; EX and WB never.
    InstrPaths r = synth.synthesize(hx.duv().instrId("ADD"));
    ASSERT_EQ(r.paths.size(), 1u);
    const UPath &p = r.paths[0];
    EXPECT_EQ(p.revisit.at(plByName("IF")), Revisit::Consecutive);
    EXPECT_EQ(p.revisit.at(plByName("EX")), Revisit::None);
    EXPECT_EQ(p.revisit.at(plByName("WB")), Revisit::None);
}

TEST_F(R2mTiny3, AddDecisionsAtIF)
{
    InstrPaths r = synth.synthesize(hx.duv().instrId("ADD"));
    auto srcs = r.decisionSources();
    ASSERT_EQ(srcs.size(), 1u);
    EXPECT_EQ(hx.plName(srcs[0]), "IF");
    // Two decisions: stay in IF, or advance to EX.
    std::set<std::set<std::string>> dsts;
    for (const auto &d : r.decisions) {
        std::set<std::string> dn;
        for (PlId q : d.dst)
            dn.insert(hx.plName(q));
        dsts.insert(dn);
    }
    EXPECT_TRUE(dsts.count({"IF"}));
    EXPECT_TRUE(dsts.count({"EX"}));
}

TEST_F(R2mTiny3, MulDecisionsIncludeExUnit)
{
    InstrPaths r = synth.synthesize(hx.duv().instrId("MUL"));
    ASSERT_EQ(r.paths.size(), 1u);
    EXPECT_EQ(names(r.paths[0].plSet),
              (std::set<std::string>{"IF", "EX", "mulU", "WB"}));
    // EX (and mulU) are decision sources: continue in the unit or retire.
    auto srcs = r.decisionSources();
    std::set<std::string> src_names;
    for (PlId s : srcs)
        src_names.insert(hx.plName(s));
    EXPECT_TRUE(src_names.count("IF"));
    EXPECT_TRUE(src_names.count("EX"));
}

TEST_F(R2mTiny3, AddHasHbEdgesAlongPipeline)
{
    InstrPaths r = synth.synthesize(hx.duv().instrId("ADD"));
    ASSERT_EQ(r.paths.size(), 1u);
    bool if_ex = false, ex_wb = false;
    for (const auto &e : r.paths[0].edges) {
        if (hx.plName(e.from) == "IF" && hx.plName(e.to) == "EX")
            if_ex = true;
        if (hx.plName(e.from) == "EX" && hx.plName(e.to) == "WB")
            ex_wb = true;
    }
    EXPECT_TRUE(if_ex);
    EXPECT_TRUE(ex_wb);
}

TEST_F(R2mTiny3, StatsAreTallied)
{
    synth.synthesize(hx.duv().instrId("NOP"));
    uint64_t total = 0;
    for (const auto &st : synth.stepStats())
        total += st.queries;
    EXPECT_GT(total, 10u);
}

TEST(R2mTiny3Counts, MulRevisitCountsBaselineVsZeroSkip)
{
    // Baseline: mulU always visited exactly 2 cycles.
    {
        Harness hx(buildTiny3());
        SynthesisConfig cfg;
        cfg.revisitCounts = true;
        cfg.maxRevisitCount = 4;
        MuPathSynthesizer synth(hx, cfg);
        InstrPaths r = synth.synthesize(hx.duv().instrId("MUL"));
        ASSERT_EQ(r.paths.size(), 1u);
        PlId mulu = 2;
        ASSERT_TRUE(r.paths[0].revisitCounts.count(mulu));
        EXPECT_EQ(r.paths[0].revisitCounts.at(mulu),
                  (std::vector<unsigned>{2}));
    }
    // Zero-skip: 1 or 2 cycles, operand dependent (Fig. 1 in miniature).
    {
        Harness hx(buildTiny3({.withZeroSkip = true}));
        SynthesisConfig cfg;
        cfg.revisitCounts = true;
        cfg.maxRevisitCount = 4;
        MuPathSynthesizer synth(hx, cfg);
        InstrPaths r = synth.synthesize(hx.duv().instrId("MUL"));
        ASSERT_EQ(r.paths.size(), 1u);
        PlId mulu = 2;
        ASSERT_TRUE(r.paths[0].revisitCounts.count(mulu));
        EXPECT_EQ(r.paths[0].revisitCounts.at(mulu),
                  (std::vector<unsigned>{1, 2}));
    }
}
