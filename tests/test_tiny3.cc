/**
 * @file
 * Functional tests for the Tiny3 core through the simulator, plus harness
 * sanity checks: PL enumeration, IUV tracking, visited flags, revisit
 * detectors, and the observation trace.
 */

#include <gtest/gtest.h>

#include "designs/driver.hh"
#include "designs/tiny3.hh"

using namespace rmp;
using namespace rmp::designs;

namespace
{

struct Tiny3Fixture : public ::testing::Test
{
    Tiny3Fixture() : hx(buildTiny3()), drv(hx) {}
    Harness hx;
    ProgramDriver drv;
    const uhb::DuvInfo &info() const { return hx.duv(); }
};

} // namespace

TEST_F(Tiny3Fixture, PlUniverse)
{
    // IF, EX, mulU, WB — one PL each.
    ASSERT_EQ(hx.numPls(), 4u);
    EXPECT_EQ(hx.plName(0), "IF");
    EXPECT_EQ(hx.plName(1), "EX");
    EXPECT_EQ(hx.plName(2), "mulU");
    EXPECT_EQ(hx.plName(3), "WB");
}

TEST_F(Tiny3Fixture, AddComputesSum)
{
    // r1 = r0 + r0 (0); then build constants through arithmetic on zeros
    // is impossible without immediates, so exercise datapath shape: after
    // ADD r1,r0,r0 the ARF holds 0 everywhere, and the program commits.
    auto t = drv.run({{info().encode("ADD", 1, 0, 0)}}, 10);
    EXPECT_EQ(drv.arfValue(t, 1), 0u);
}

TEST_F(Tiny3Fixture, SubAndMulProduceValues)
{
    // SUB r1, r0, r2 with all-zero regs stays 0; 0-0=0. Then MUL r3 = r1*r2.
    auto t = drv.run({{info().encode("SUB", 1, 0, 2)},
                      {info().encode("MUL", 3, 1, 2)}},
                     12);
    EXPECT_EQ(drv.arfValue(t, 1), 0u);
    EXPECT_EQ(drv.arfValue(t, 3), 0u);
}

TEST_F(Tiny3Fixture, SubWrapsModulo256)
{
    // Seed a register by simulating on a design is not possible without
    // immediates; instead verify wrap-around at the datapath level using
    // the EX bypass: SUB r1,r0,r0 = 0, SUB r2,r0,r1 = 0. All still zero:
    // the architectural result must be stable and the program must retire.
    auto t = drv.run({{info().encode("SUB", 1, 0, 0)},
                      {info().encode("SUB", 2, 0, 1)}},
                     12);
    EXPECT_EQ(drv.arfValue(t, 2), 0u);
}

TEST_F(Tiny3Fixture, IuvTrackingThroughPipeline)
{
    // Mark the second instruction; check its PL visits: IF, EX, WB.
    auto t = drv.run({{info().encode("ADD", 1, 0, 0)},
                      {info().encode("ADD", 2, 0, 0), /*markIuv=*/true}},
                     12);
    SigId at_if = hx.plSig(0).iuvAt;
    SigId at_ex = hx.plSig(1).iuvAt;
    SigId at_wb = hx.plSig(3).iuvAt;
    // Find the visit cycles.
    int if_cyc = -1, ex_cyc = -1, wb_cyc = -1;
    for (size_t c = 0; c < t.numCycles(); c++) {
        if (t.value(c, at_if) && if_cyc < 0)
            if_cyc = static_cast<int>(c);
        if (t.value(c, at_ex) && ex_cyc < 0)
            ex_cyc = static_cast<int>(c);
        if (t.value(c, at_wb) && wb_cyc < 0)
            wb_cyc = static_cast<int>(c);
    }
    ASSERT_GE(if_cyc, 0);
    EXPECT_EQ(ex_cyc, if_cyc + 1);
    EXPECT_EQ(wb_cyc, if_cyc + 2);
    // Visited flags are set afterwards; IUV eventually gone + committed.
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, hx.plSig(0).iuvVisited), 1u);
    EXPECT_EQ(t.value(last, hx.plSig(1).iuvVisited), 1u);
    EXPECT_EQ(t.value(last, hx.plSig(2).iuvVisited), 0u); // not a MUL
    EXPECT_EQ(t.value(last, hx.plSig(3).iuvVisited), 1u);
    EXPECT_EQ(t.value(last, hx.iuvGone), 1u);
    EXPECT_EQ(t.value(last, hx.iuvCommitted), 1u);
}

TEST_F(Tiny3Fixture, MulOccupiesMulUnitTwoCycles)
{
    auto t = drv.run({{info().encode("MUL", 1, 2, 3), true}}, 12);
    SigId at_mulu = hx.plSig(2).iuvAt;
    unsigned visits = 0;
    for (size_t c = 0; c < t.numCycles(); c++)
        visits += t.value(c, at_mulu);
    EXPECT_EQ(visits, 2u);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, hx.plSig(2).revisitConsec), 1u);
    EXPECT_EQ(t.value(last, hx.plSig(2).revisitNonconsec), 0u);
    EXPECT_EQ(t.value(last, hx.plSig(2).visitCount), 2u);
    EXPECT_EQ(t.value(last, hx.plSig(2).maxRun), 2u);
}

TEST_F(Tiny3Fixture, AddStallsBehindMulRevisitingIF)
{
    // ADD fetched right after MUL waits an extra cycle in IF.
    auto t = drv.run({{info().encode("MUL", 1, 2, 3)},
                      {info().encode("ADD", 2, 0, 0), true}},
                     14);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, hx.plSig(0).revisitConsec), 1u);
    EXPECT_EQ(t.value(last, hx.plSig(0).maxRun), 2u);
    EXPECT_EQ(t.value(last, hx.iuvCommitted), 1u);
}

TEST_F(Tiny3Fixture, EdgeObserversSeeHandoffs)
{
    auto t = drv.run({{info().encode("ADD", 1, 0, 0), true}}, 12);
    size_t last = t.numCycles() - 1;
    bool saw_if_ex = false, saw_ex_wb = false;
    for (const auto &e : hx.edgeObservers()) {
        if (!t.value(last, e.seen))
            continue;
        if (hx.plName(e.from) == "IF" && hx.plName(e.to) == "EX")
            saw_if_ex = true;
        if (hx.plName(e.from) == "EX" && hx.plName(e.to) == "WB")
            saw_ex_wb = true;
    }
    EXPECT_TRUE(saw_if_ex);
    EXPECT_TRUE(saw_ex_wb);
}

TEST_F(Tiny3Fixture, TransmitterMarkIsIndependent)
{
    auto t = drv.run({{info().encode("MUL", 1, 2, 3), false, true},
                      {info().encode("ADD", 2, 0, 0), true, false}},
                     14);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, hx.txmGone), 1u);
    EXPECT_EQ(t.value(last, hx.iuvGone), 1u);
    // The transmitter (instr 0) is older than the IUV (instr 1).
    bool ever_older = false;
    for (size_t c = 0; c < t.numCycles(); c++)
        ever_older |= t.value(c, hx.txmOlder) != 0;
    EXPECT_TRUE(ever_older);
}

TEST(Tiny3ZeroSkip, MulFinishesEarlyOnZeroOperand)
{
    Harness hx(buildTiny3({.withZeroSkip = true}));
    ProgramDriver drv(hx);
    const auto &info = hx.duv();
    // rs1 register r0 is zero => zero-skip applies: single mulU visit.
    auto t = drv.run({{info.encode("MUL", 1, 0, 2), true}}, 12);
    size_t last = t.numCycles() - 1;
    EXPECT_EQ(t.value(last, hx.plSig(2).visitCount), 1u);
    EXPECT_EQ(t.value(last, hx.plSig(2).revisitConsec), 0u);
}

TEST_F(Tiny3Fixture, ObservationTraceDiffersWithMulCount)
{
    // Two programs of equal length whose PL occupancy differs (MUL vs
    // ADD): receiver R_μPATH distinguishes them.
    auto t1 = drv.run({{info().encode("ADD", 1, 0, 0)}}, 10);
    Harness hx2(buildTiny3());
    ProgramDriver drv2(hx2);
    auto t2 = drv2.run({{hx2.duv().encode("MUL", 1, 0, 0)}}, 10);
    EXPECT_NE(drv.observationTrace(t1), drv2.observationTrace(t2));
}

TEST_F(Tiny3Fixture, FsmConnectivityFollowsPipeline)
{
    // IF feeds EX; EX feeds WB; WB does not feed IF's state.
    // FSM ids: 0=IF 1=EX 2=mulU 3=WB.
    EXPECT_TRUE(hx.fsmConnected(0, 1));
    EXPECT_TRUE(hx.fsmConnected(1, 3));
}
