/**
 * @file
 * rmp — the command-line front end to the RTL2MμPATH/SynthLC library.
 *
 * Run `rmp help` (or any malformed command line) for the full usage
 * text; the observability flags (--trace / --stats / --progress) are
 * documented in docs/TUTORIAL.md along with a Perfetto walkthrough.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/fsmreach.hh"
#include "analysis/lint.hh"
#include "contracts/contracts.hh"
#include "designs/dcache.hh"
#include "designs/mcva.hh"
#include "designs/tiny3.hh"
#include "obs/progress.hh"
#include "obs/trace.hh"
#include "report/json.hh"
#include "report/report.hh"
#include "rtl2mupath/synth.hh"
#include "sim/vcd.hh"
#include "synthlc/synthlc.hh"

using namespace rmp;
using namespace rmp::designs;

namespace
{

void
usage(std::FILE *f)
{
    std::fprintf(
        f,
        "usage: rmp <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                      list the built-in DUVs\n"
        "  synth     <duv>           synthesize uPATHs for every"
        " instruction\n"
        "  prove     <duv>           synth with the full BMC closure"
        " queries\n"
        "                            (equivalent to synth --closure)\n"
        "  upaths    <duv> <instr>   synthesize one instruction's uPATHs\n"
        "  leakage   <duv> <instr>   SynthLC leakage signatures\n"
        "  contracts <duv>           end-to-end contract synthesis\n"
        "  bugs      <duv>           DUV PL reachability summary\n"
        "  lint      <duv>|all       netlist + IFT soundness lint\n"
        "  analyze   <duv>|all       abstract interpretation report:\n"
        "                            known bits, FSM reachable states,\n"
        "                            and the full lint diagnostics\n"
        "  help                      print this message\n"
        "\n"
        "DUVs: tiny3 tiny3-zs mcva mcva-mul mcva-op mcva-fixed"
        " mcva-scbbug dcache\n"
        "\n"
        "options:\n"
        "  --budget N     per-query SAT conflict budget (default 20000)\n"
        "  --closure      run the full BMC closure queries (slow, formal)\n"
        "  --counts       enumerate revisit cycle counts (mode (i))\n"
        "  --jobs N       worker threads for property evaluation\n"
        "                 (default: hardware concurrency; verdicts are\n"
        "                 identical for every value)\n"
        "  --sim-lanes N  SoA lanes per compiled-simulation batch\n"
        "                 (supported widths: 1-16, rounded up to a power\n"
        "                 of two; default 8; results identical for every\n"
        "                 value)\n"
        "  --sim-threads N\n"
        "                 threads fanning compiled-simulation batches\n"
        "                 (default 4; results identical for every value)\n"
        "  --sim-backend interp|tape|simd|native\n"
        "                 simulation execution backend (default simd):\n"
        "                 'interp' = interpreted reference simulator,\n"
        "                 'tape' = compiled op-tape interpreter, 'simd' =\n"
        "                 explicit vector kernels, 'native' = per-design\n"
        "                 compiled C (falls back to simd without a C\n"
        "                 compiler); results identical for every backend\n"
        "  --sim-interp   shorthand for --sim-backend interp\n"
        "  --coi          unroll only each query's sequential cone of\n"
        "                 influence (verdicts unchanged; prints COI stats)\n"
        "  --static-prune / --no-static-prune\n"
        "                 discharge covers the absint fixpoint proves\n"
        "                 false without a solver call (default: on;\n"
        "                 verdicts identical either way)\n"
        "  --check-verdicts[=replay|proof|all]\n"
        "                 trust-but-verify every BMC verdict (default:"
        " all):\n"
        "                 'replay' re-simulates each reachable witness,\n"
        "                 'proof' DRAT-checks each unsat frame; prints an\n"
        "                 audit summary and exits non-zero on any"
        " mismatch\n"
        "  --tx A,B,...   transmitter instructions (leakage)\n"
        "  --instrs A,... instruction subset (synth, contracts)\n"
        "  --dot DIR      write one Graphviz file per synthesized uPATH\n"
        "  --vcd FILE     write the first uPATH witness as a VCD waveform\n"
        "  --trace FILE   record a chrome://tracing / Perfetto trace of\n"
        "                 the whole run and write it to FILE\n"
        "  --stats        print run metrics after the command; with\n"
        "                 --json, emit the machine-readable run summary\n"
        "  --progress     live progress line on stderr\n"
        "  --json         machine-readable output (lint, --stats)\n");
}

[[noreturn]] void
usageError(const char *fmt, const char *arg)
{
    std::fprintf(stderr, "rmp: ");
    std::fprintf(stderr, fmt, arg);
    std::fprintf(stderr, "\n\n");
    usage(stderr);
    std::exit(2);
}

DuvUnderConstruction
buildByName(const std::string &name)
{
    if (name == "tiny3")
        return buildTiny3();
    if (name == "tiny3-zs")
        return buildTiny3({.withZeroSkip = true});
    if (name == "mcva")
        return buildMcva();
    if (name == "mcva-mul")
        return buildMcva({.withZeroSkipMul = true});
    if (name == "mcva-op")
        return buildMcva({.withOperandPacking = true});
    if (name == "mcva-fixed")
        return buildMcva({.fixAlignmentBugs = true});
    if (name == "mcva-scbbug")
        return buildMcva({.withScbCounterBug = true});
    if (name == "dcache")
        return buildDcache();
    std::fprintf(stderr, "rmp: unknown DUV '%s' (try: rmp list)\n",
                 name.c_str());
    std::exit(2);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

struct CliOptions
{
    uint64_t budget = 20'000;
    bool closure = false;
    bool counts = false;
    bool coi = false;
    bool staticPrune = true;
    bool checkReplay = false;
    bool checkProof = false;
    bool json = false;
    bool stats = false;
    bool progress = false;
    unsigned jobs = 0; // 0 = hardware_concurrency()
    unsigned simLanes = sim::kDefaultLanes;
    unsigned simThreads = 4;
    bool simInterp = false;
    sim::SimBackend simBackend = sim::SimBackend::Simd;
    std::string dotDir;
    std::string vcdFile;
    std::string traceFile;
    std::vector<std::string> tx;
    std::vector<std::string> instrs;
};

CliOptions
parseOptions(int argc, char **argv, int first)
{
    CliOptions o;
    for (int i = first; i < argc; i++) {
        std::string a = argv[i];
        auto need = [&](const char *flag) {
            if (i + 1 >= argc)
                usageError("option %s requires an argument", flag);
            return std::string(argv[++i]);
        };
        if (a == "--budget")
            o.budget = std::stoull(need("--budget"));
        else if (a == "--closure")
            o.closure = true;
        else if (a == "--counts")
            o.counts = true;
        else if (a == "--coi")
            o.coi = true;
        else if (a == "--static-prune")
            o.staticPrune = true;
        else if (a == "--no-static-prune")
            o.staticPrune = false;
        else if (a == "--check-verdicts" ||
                 a.rfind("--check-verdicts=", 0) == 0) {
            std::string mode =
                a == "--check-verdicts" ? "all" : a.substr(17);
            if (mode == "replay")
                o.checkReplay = true;
            else if (mode == "proof")
                o.checkProof = true;
            else if (mode == "all")
                o.checkReplay = o.checkProof = true;
            else
                usageError("unknown --check-verdicts mode '%s'",
                           mode.c_str());
        }
        else if (a == "--json")
            o.json = true;
        else if (a == "--stats")
            o.stats = true;
        else if (a == "--progress")
            o.progress = true;
        else if (a == "--jobs")
            o.jobs = static_cast<unsigned>(std::stoul(need("--jobs")));
        else if (a == "--sim-lanes") {
            // Validate at the CLI boundary: BatchSim asserts on bad lane
            // counts, which is a crash, not a diagnostic.
            std::string v = need("--sim-lanes");
            char *end = nullptr;
            unsigned long n = std::strtoul(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0' || n < 1 ||
                n > sim::kMaxLanes)
                usageError("invalid --sim-lanes '%s' (supported widths: "
                           "1 to 16, rounded up to a power of two)",
                           v.c_str());
            o.simLanes = static_cast<unsigned>(n);
        }
        else if (a == "--sim-backend") {
            std::string v = need("--sim-backend");
            if (v == "interp")
                o.simInterp = true;
            else if (v == "tape")
                o.simBackend = sim::SimBackend::Tape;
            else if (v == "simd")
                o.simBackend = sim::SimBackend::Simd;
            else if (v == "native")
                o.simBackend = sim::SimBackend::Native;
            else
                usageError("unknown --sim-backend '%s' (choose interp, "
                           "tape, simd, or native)",
                           v.c_str());
        }
        else if (a == "--sim-threads")
            o.simThreads =
                static_cast<unsigned>(std::stoul(need("--sim-threads")));
        else if (a == "--sim-interp")
            o.simInterp = true;
        else if (a == "--dot")
            o.dotDir = need("--dot");
        else if (a == "--vcd")
            o.vcdFile = need("--vcd");
        else if (a == "--trace")
            o.traceFile = need("--trace");
        else if (a == "--tx")
            o.tx = splitCsv(need("--tx"));
        else if (a == "--instrs")
            o.instrs = splitCsv(need("--instrs"));
        else
            usageError("unknown option '%s'", a.c_str());
    }
    return o;
}

r2m::SynthesisConfig
synthConfig(const CliOptions &o)
{
    r2m::SynthesisConfig c;
    c.budget.maxConflicts = o.budget;
    c.closureChecks = o.closure;
    c.revisitCounts = o.counts;
    c.jobs = o.jobs;
    c.coiPruning = o.coi;
    c.staticPrune = o.staticPrune;
    c.auditReplay = o.checkReplay;
    c.auditProof = o.checkProof;
    c.explore.engine = o.simInterp ? r2m::SimEngine::Interpreted
                                   : r2m::SimEngine::Compiled;
    c.explore.lanes = o.simLanes;
    c.explore.threads = o.simThreads;
    c.explore.backend = o.simBackend;
    return c;
}

/**
 * Run outcome captured for the --stats / --trace epilogue in main():
 * commands that drive an engine pool snapshot its statistics here
 * before their pool is destroyed.
 */
std::string g_design;
exec::PoolStats g_pool;
bool g_havePool = false;

/**
 * Verdict-audit tallies accumulated across every pool a command drives
 * (commands like leakage/contracts run two: the uPATH synthesizer's and
 * SynthLC's). The --check-verdicts epilogue prints these and fails the
 * run on any mismatch.
 */
struct AuditTotals
{
    uint64_t replayed = 0;
    uint64_t proofChecked = 0;
    uint64_t mismatches = 0;
} g_audit;

void
foldAudit(const exec::EnginePool &pool)
{
    exec::PoolStats s = pool.stats();
    g_audit.replayed += s.engine.auditReplayed;
    g_audit.proofChecked += s.engine.auditProofChecked;
    g_audit.mismatches += s.engine.auditMismatches;
}

void
snapshotPool(const designs::Harness &hx, const exec::EnginePool &pool)
{
    g_design = hx.design().name();
    g_pool = pool.stats();
    g_havePool = true;
    foldAudit(pool);
}

int
cmdSynth(const std::string &duv, const CliOptions &o)
{
    Harness hx(buildByName(duv));
    r2m::MuPathSynthesizer synth(hx, synthConfig(o));
    std::vector<std::string> names = o.instrs;
    if (names.empty())
        for (const auto &ins : hx.duv().instrs)
            names.push_back(ins.name);
    std::vector<uhb::InstrId> ids;
    for (const auto &n : names)
        ids.push_back(hx.duv().instrId(n));
    auto all = synth.synthesizeAll(ids);
    size_t paths = 0, decisions = 0;
    for (uhb::InstrId i : ids) {
        const uhb::InstrPaths &r = all.at(i);
        std::printf("%-10s %2zu uPATH(s)  %2zu decision(s)\n",
                    hx.duv().instrs[i].name.c_str(), r.paths.size(),
                    r.decisions.size());
        paths += r.paths.size();
        decisions += r.decisions.size();
    }
    std::printf("%s: %zu instruction(s), %zu uPATH(s), %zu decision(s)\n",
                hx.duv().name.c_str(), ids.size(), paths, decisions);
    std::printf("\n%s",
                report::renderStepStats(synth.stepStats()).c_str());
    if (o.coi)
        std::printf("\nCone-of-influence statistics:\n%s",
                    report::renderCoiStats(synth.pool().stats().coi)
                        .c_str());
    snapshotPool(hx, synth.pool());
    return 0;
}

int
cmdUpaths(const std::string &duv, const std::string &instr,
          const CliOptions &o)
{
    Harness hx(buildByName(duv));
    r2m::MuPathSynthesizer synth(hx, synthConfig(o));
    uhb::InstrPaths r = synth.synthesize(hx.duv().instrId(instr));
    std::printf("%s\n", report::renderInstrPaths(hx, r).c_str());
    std::printf("%s", report::renderDecisions(hx, r).c_str());
    if (!o.dotDir.empty()) {
        for (size_t i = 0; i < r.paths.size(); i++) {
            std::string path = o.dotDir + "/" + instr + "_upath" +
                               std::to_string(i) + ".dot";
            std::ofstream f(path);
            f << uhb::renderUPathDot(r.paths[i], hx.plNames(),
                                     r.decisions);
            std::printf("wrote %s\n", path.c_str());
        }
    }
    if (!o.vcdFile.empty() && !r.paths.empty()) {
        // Re-derive the first path's witness trace via its schedule run.
        // The synthesizer stores only the schedule; export a whole
        // exploration witness instead. Exploration traces are sparse
        // (watch-set only), so replay the witness inputs through the
        // full interpreted simulator to get every signal for the VCD.
        r2m::SimFacts f = r2m::exploreSim(hx, hx.duv().instrId(instr),
                                          synthConfig(o).explore);
        if (!f.sets.empty()) {
            const bmc::Witness &w = f.sets.begin()->second.witness;
            Simulator replay(hx.design());
            replay.reserveTrace(w.inputs.size());
            for (const InputMap &in : w.inputs)
                replay.step(in);
            writeVcd(hx.design(), replay.trace(), o.vcdFile);
            std::printf("wrote %s\n", o.vcdFile.c_str());
        }
    }
    std::printf("\n%s",
                report::renderStepStats(synth.stepStats()).c_str());
    if (o.coi)
        std::printf("\nCone-of-influence statistics:\n%s",
                    report::renderCoiStats(synth.pool().stats().coi)
                        .c_str());
    snapshotPool(hx, synth.pool());
    return 0;
}

int
cmdLeakage(const std::string &duv, const std::string &instr,
           const CliOptions &o)
{
    Harness hx(buildByName(duv));
    r2m::MuPathSynthesizer synth(hx, synthConfig(o));
    slc::SynthLcConfig lc;
    lc.budget.maxConflicts = o.budget;
    lc.jobs = o.jobs;
    lc.staticPrune = o.staticPrune;
    lc.auditReplay = o.checkReplay;
    lc.auditProof = o.checkProof;
    lc.simBackend = o.simBackend;
    slc::SynthLc slc(hx, lc);
    uhb::InstrId p = hx.duv().instrId(instr);
    uhb::InstrPaths r = synth.synthesize(p);
    std::vector<uhb::InstrId> tx;
    if (o.tx.empty())
        tx.push_back(p);
    else
        for (const auto &t : o.tx)
            tx.push_back(hx.duv().instrId(t));
    auto sigs = slc.analyze(p, r.decisions, tx);
    if (sigs.empty())
        std::printf("no leakage signatures for %s\n", instr.c_str());
    for (const auto &s : sigs)
        std::printf("%s\n", slc.render(s).c_str());
    std::printf("\n%s",
                report::renderStepStats(synth.stepStats(), &slc.stats())
                    .c_str());
    snapshotPool(hx, synth.pool());
    foldAudit(slc.pool());
    return 0;
}

int
cmdContracts(const std::string &duv, const CliOptions &o)
{
    Harness hx(buildByName(duv));
    r2m::MuPathSynthesizer synth(hx, synthConfig(o));
    slc::SynthLcConfig lc;
    lc.budget.maxConflicts = o.budget;
    lc.jobs = o.jobs;
    lc.staticPrune = o.staticPrune;
    lc.auditReplay = o.checkReplay;
    lc.auditProof = o.checkProof;
    lc.simBackend = o.simBackend;
    slc::SynthLc slc(hx, lc);
    std::vector<std::string> names = o.instrs;
    if (names.empty()) {
        for (const auto &ins : hx.duv().instrs)
            names.push_back(ins.name);
        if (names.size() > 5)
            names.resize(5);
    }
    ct::AnalysisDb db;
    db.hx = &hx;
    std::vector<uhb::InstrId> ids;
    for (const auto &n : names)
        ids.push_back(hx.duv().instrId(n));
    // Cross-IUV parallel synthesis: simulation exploration and the
    // independent covers of every instruction go through the pool first.
    auto all = synth.synthesizeAll(ids);
    for (uhb::InstrId i : ids) {
        std::fprintf(stderr, "analyzing %s...\n",
                     hx.duv().instrs[i].name.c_str());
        auto paths = std::move(all.at(i));
        auto sigs = slc.analyze(i, paths.decisions, ids);
        for (auto &s : sigs)
            db.signatures.push_back(std::move(s));
        db.paths[i] = std::move(paths);
    }
    std::printf("%s\n", ct::renderContracts(db).c_str());
    std::printf("%s\n", report::renderFig8Matrix(db).c_str());
    snapshotPool(hx, synth.pool());
    foldAudit(slc.pool());
    return 0;
}

int
cmdBugs(const std::string &duv, const CliOptions &o)
{
    Harness hx(buildByName(duv));
    r2m::MuPathSynthesizer synth(hx, synthConfig(o));
    auto pls = synth.duvPls();
    std::printf("%s: %zu/%zu candidate PLs reachable\n",
                hx.duv().name.c_str(), pls.size(), hx.numPls());
    std::vector<bool> reach(hx.numPls(), false);
    for (uhb::PlId p : pls)
        reach[p] = true;
    for (uhb::PlId p = 0; p < hx.numPls(); p++)
        if (!reach[p])
            std::printf("  UNREACHABLE: %s\n", hx.plName(p).c_str());
    snapshotPool(hx, synth.pool());
    return 0;
}

std::vector<std::string>
duvNames(const std::string &duv)
{
    if (duv == "all")
        return {"tiny3",      "tiny3-zs",   "mcva",        "mcva-mul",
                "mcva-op",    "mcva-fixed", "mcva-scbbug", "dcache"};
    return {duv};
}

/** The μFSM state variables — the control registers every absint
 *  consumer (pruning, lint, analyze) sharpens with fsmReachability. */
std::vector<SigId>
controlRegsOf(const Harness &hx)
{
    std::vector<SigId> ctrl;
    for (const uhb::MicroFsm &fsm : hx.duv().fsms)
        for (SigId v : fsm.vars)
            ctrl.push_back(v);
    return ctrl;
}

/** Append the IFT soundness lint (over the same instrumentation SynthLC
 *  uses) to @p rep, when the DUV declares operand registers. */
void
appendIftLint(const Harness &hx, analysis::LintReport *rep)
{
    const uhb::DuvInfo &info = hx.duv();
    if (info.rs1Reg == kNoSig || info.rs2Reg == kNoSig)
        return;
    ift::IftConfig icfg;
    icfg.taintSources = {info.rs1Reg, info.rs2Reg};
    icfg.blockRegs = info.arfRegs;
    icfg.blockRegs.insert(icfg.blockRegs.end(), info.amemRegs.begin(),
                          info.amemRegs.end());
    icfg.persistentRegs = info.persistentRegs;
    icfg.txmGone = hx.txmGone;
    ift::Instrumented inst = ift::instrument(hx.design(), icfg);
    analysis::LintReport irep = analysis::lintIft(hx.design(), inst);
    rep->diags.insert(rep->diags.end(), irep.diags.begin(),
                      irep.diags.end());
}

int
cmdLint(const std::string &duv, const CliOptions &o)
{
    std::vector<std::string> names = duvNames(duv);
    size_t errors = 0;
    if (o.json)
        std::printf("[");
    for (size_t i = 0; i < names.size(); i++) {
        Harness hx(buildByName(names[i]));
        analysis::LintConfig lcfg;
        lcfg.controlRegs = controlRegsOf(hx);
        analysis::LintReport rep = analysis::lint(hx.design(), lcfg);
        appendIftLint(hx, &rep);
        errors += rep.errors();
        if (o.json)
            std::printf("%s%s", i ? ",\n " : "",
                        rep.json(hx.design()).c_str());
        else
            std::printf("%s%s", i ? "\n" : "",
                        rep.render(hx.design()).c_str());
    }
    if (o.json)
        std::printf("]\n");
    return errors ? 1 : 0;
}

int
cmdAnalyze(const std::string &duv, const CliOptions &o)
{
    std::vector<std::string> names = duvNames(duv);
    size_t errors = 0;
    if (o.json)
        std::printf("[");
    for (size_t i = 0; i < names.size(); i++) {
        Harness hx(buildByName(names[i]));
        const Design &d = hx.design();
        std::vector<SigId> ctrl = controlRegsOf(hx);

        // The same fact set the synthesizer prunes with: global fixpoint
        // sharpened by FSM successor enumeration on the control regs.
        analysis::AbsFacts facts = analysis::absInterpret(d);
        std::vector<analysis::FsmReachResult> reach =
            analysis::fsmReachability(d, ctrl, facts);

        // reg -> "fsm.var" label for the report.
        std::vector<std::string> regLabel(d.numCells());
        for (const uhb::MicroFsm &fsm : hx.duv().fsms)
            for (size_t v = 0; v < fsm.vars.size(); v++)
                regLabel[fsm.vars[v]] =
                    fsm.name +
                    (fsm.vars.size() > 1 ? "." + std::to_string(v) : "");

        analysis::LintConfig lcfg;
        lcfg.controlRegs = ctrl;
        analysis::LintReport rep = analysis::lint(d, lcfg);
        appendIftLint(hx, &rep);
        errors += rep.errors();

        if (o.json) {
            report::JsonReport j;
            j.put("design", d.name());
            j.put("cells", static_cast<uint64_t>(d.numCells()));
            j.put("bits_known", facts.bitsKnown);
            j.put("bits_total", facts.bitsTotal);
            j.put("fixpoint_iters",
                  static_cast<uint64_t>(facts.fixpointIters));
            report::JsonArray fsms;
            for (const analysis::FsmReachResult &r : reach) {
                report::JsonReport e;
                e.put("fsm", regLabel[r.reg]);
                e.put("reg", static_cast<uint64_t>(r.reg));
                e.putRaw("exact", r.exact ? "true" : "false");
                report::JsonArray states;
                for (uint64_t s : r.states)
                    states.add(s);
                e.putRaw("states", states.str());
                fsms.addRaw(e.str());
            }
            j.putRaw("fsm_regs", fsms.str());
            j.putRaw("lint", report::diagnosticsJson(d, rep));
            std::printf("%s%s", i ? ",\n " : "", j.str().c_str());
            continue;
        }

        double pct = facts.bitsTotal
                         ? 100.0 * static_cast<double>(facts.bitsKnown) /
                               static_cast<double>(facts.bitsTotal)
                         : 0.0;
        std::printf("%s%s: %zu cells, %llu/%llu bits known (%.1f%%), "
                    "%u fixpoint iteration(s)\n",
                    i ? "\n" : "", d.name().c_str(), d.numCells(),
                    static_cast<unsigned long long>(facts.bitsKnown),
                    static_cast<unsigned long long>(facts.bitsTotal), pct,
                    facts.fixpointIters);
        for (const analysis::FsmReachResult &r : reach) {
            std::string vals;
            for (size_t s = 0; s < r.states.size(); s++)
                vals += (s ? "," : "") + std::to_string(r.states[s]);
            std::printf("  %-12s cell %-4u %zu reachable state(s) {%s}%s\n",
                        regLabel[r.reg].c_str(), r.reg, r.states.size(),
                        vals.c_str(), r.exact ? "" : " [inexact]");
        }
        std::printf("%s", rep.render(d).c_str());
    }
    if (o.json)
        std::printf("]\n");
    return errors ? 1 : 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usageError("missing command%s", "");
    std::string cmd = argv[1];
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
        usage(stdout);
        return 0;
    }
    if (cmd == "list") {
        std::printf("tiny3 tiny3-zs mcva mcva-mul mcva-op mcva-fixed "
                    "mcva-scbbug dcache\n");
        return 0;
    }

    // Positional-argument count per command; options follow.
    int npos;
    if (cmd == "upaths" || cmd == "leakage")
        npos = 2;
    else if (cmd == "synth" || cmd == "prove" || cmd == "contracts" ||
             cmd == "bugs" || cmd == "lint" || cmd == "analyze")
        npos = 1;
    else
        usageError("unknown command '%s'", cmd.c_str());
    if (argc < 2 + npos)
        usageError("command '%s' is missing arguments", cmd.c_str());
    CliOptions o = parseOptions(argc, argv, 2 + npos);

    // Observability setup: --trace and --stats both record through the
    // global switch; --progress installs the stderr status line. The
    // sink lives to end of main — synthesis layers only touch it inside
    // progress() calls, which stop before the commands return.
    obs::StderrProgress progressSink;
    if (!o.traceFile.empty() || o.stats)
        obs::setEnabled(true);
    if (o.progress)
        obs::setProgressSink(&progressSink);

    auto t0 = std::chrono::steady_clock::now();
    int rc;
    if (cmd == "synth")
        rc = cmdSynth(argv[2], o);
    else if (cmd == "prove") {
        // prove = synth with every closure query run formally.
        o.closure = true;
        rc = cmdSynth(argv[2], o);
    } else if (cmd == "upaths")
        rc = cmdUpaths(argv[2], argv[3], o);
    else if (cmd == "leakage")
        rc = cmdLeakage(argv[2], argv[3], o);
    else if (cmd == "contracts")
        rc = cmdContracts(argv[2], o);
    else if (cmd == "bugs")
        rc = cmdBugs(argv[2], o);
    else if (cmd == "analyze")
        rc = cmdAnalyze(argv[2], o);
    else
        rc = cmdLint(argv[2], o);
    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    obs::setProgressSink(nullptr);
    if (!o.traceFile.empty()) {
        if (obs::exportChromeTrace(o.traceFile))
            std::fprintf(stderr, "wrote %s (%zu events)\n",
                         o.traceFile.c_str(), obs::eventCount());
        else {
            std::fprintf(stderr, "rmp: cannot write trace to %s\n",
                         o.traceFile.c_str());
            rc = rc ? rc : 1;
        }
    }
    if (o.stats) {
        if (o.json)
            std::printf("%s\n",
                        report::runSummaryJson("rmp-" + cmd, g_design, wall,
                                               g_havePool ? &g_pool
                                                          : nullptr)
                            .c_str());
        else
            std::printf("\n%s", report::renderObsStats().c_str());
    }
    if (o.checkReplay || o.checkProof) {
        std::printf("\nverdict audit: %llu witness replay(s), "
                    "%llu DRAT-closed unsat frame(s), %llu mismatch(es)\n",
                    static_cast<unsigned long long>(g_audit.replayed),
                    static_cast<unsigned long long>(g_audit.proofChecked),
                    static_cast<unsigned long long>(g_audit.mismatches));
        if (g_audit.mismatches) {
            std::fprintf(
                stderr,
                "rmp: verdict audit FAILED: %llu verdict(s) were not "
                "supported by their own evidence\n",
                static_cast<unsigned long long>(g_audit.mismatches));
            rc = rc ? rc : 1;
        }
    }
    return rc;
}
