/**
 * @file
 * rmp — the command-line front end to the RTL2MμPATH/SynthLC library.
 *
 * Usage:
 *   rmp list
 *   rmp upaths   <duv> <instr> [options]
 *   rmp leakage  <duv> <instr> [--tx A,B,...] [options]
 *   rmp contracts <duv> [--instrs A,B,...] [options]
 *   rmp bugs     <duv>           (DUV PL reachability summary)
 *   rmp lint     <duv>|all [--json]   (netlist + IFT soundness lint)
 *
 * DUVs: tiny3, tiny3-zs, mcva, mcva-mul, mcva-op, mcva-fixed,
 *       mcva-scbbug, dcache.
 *
 * Options:
 *   --budget N      per-query SAT conflict budget (default 20000)
 *   --closure       run the full BMC closure queries (slow, formal)
 *   --counts        enumerate revisit cycle counts (§V-B6 mode (i))
 *   --jobs N        worker threads for property evaluation
 *                   (default: hardware concurrency; results identical
 *                   for every value)
 *   --coi           unroll only each query's sequential cone of
 *                   influence (verdicts unchanged; prints COI stats)
 *   --json          machine-readable lint output
 *   --dot DIR       write one Graphviz file per synthesized μPATH
 *   --vcd FILE      write the first μPATH witness as a VCD waveform
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "analysis/lint.hh"
#include "contracts/contracts.hh"
#include "designs/dcache.hh"
#include "designs/mcva.hh"
#include "designs/tiny3.hh"
#include "report/report.hh"
#include "rtl2mupath/synth.hh"
#include "sim/vcd.hh"
#include "synthlc/synthlc.hh"

using namespace rmp;
using namespace rmp::designs;

namespace
{

DuvUnderConstruction
buildByName(const std::string &name)
{
    if (name == "tiny3")
        return buildTiny3();
    if (name == "tiny3-zs")
        return buildTiny3({.withZeroSkip = true});
    if (name == "mcva")
        return buildMcva();
    if (name == "mcva-mul")
        return buildMcva({.withZeroSkipMul = true});
    if (name == "mcva-op")
        return buildMcva({.withOperandPacking = true});
    if (name == "mcva-fixed")
        return buildMcva({.fixAlignmentBugs = true});
    if (name == "mcva-scbbug")
        return buildMcva({.withScbCounterBug = true});
    if (name == "dcache")
        return buildDcache();
    std::fprintf(stderr, "unknown DUV '%s' (try: rmp list)\n",
                 name.c_str());
    std::exit(1);
}

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

struct CliOptions
{
    uint64_t budget = 20'000;
    bool closure = false;
    bool counts = false;
    bool coi = false;
    bool json = false;
    unsigned jobs = 0; // 0 = hardware_concurrency()
    std::string dotDir;
    std::string vcdFile;
    std::vector<std::string> tx;
    std::vector<std::string> instrs;
};

CliOptions
parseOptions(int argc, char **argv, int first)
{
    CliOptions o;
    for (int i = first; i < argc; i++) {
        std::string a = argv[i];
        auto need = [&](const char *flag) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n", flag);
                std::exit(1);
            }
            return std::string(argv[++i]);
        };
        if (a == "--budget")
            o.budget = std::stoull(need("--budget"));
        else if (a == "--closure")
            o.closure = true;
        else if (a == "--counts")
            o.counts = true;
        else if (a == "--coi")
            o.coi = true;
        else if (a == "--json")
            o.json = true;
        else if (a == "--jobs")
            o.jobs = static_cast<unsigned>(std::stoul(need("--jobs")));
        else if (a == "--dot")
            o.dotDir = need("--dot");
        else if (a == "--vcd")
            o.vcdFile = need("--vcd");
        else if (a == "--tx")
            o.tx = splitCsv(need("--tx"));
        else if (a == "--instrs")
            o.instrs = splitCsv(need("--instrs"));
        else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            std::exit(1);
        }
    }
    return o;
}

r2m::SynthesisConfig
synthConfig(const CliOptions &o)
{
    r2m::SynthesisConfig c;
    c.budget.maxConflicts = o.budget;
    c.closureChecks = o.closure;
    c.revisitCounts = o.counts;
    c.jobs = o.jobs;
    c.coiPruning = o.coi;
    return c;
}

int
cmdUpaths(const std::string &duv, const std::string &instr,
          const CliOptions &o)
{
    Harness hx(buildByName(duv));
    r2m::MuPathSynthesizer synth(hx, synthConfig(o));
    uhb::InstrPaths r = synth.synthesize(hx.duv().instrId(instr));
    std::printf("%s\n", report::renderInstrPaths(hx, r).c_str());
    std::printf("%s", report::renderDecisions(hx, r).c_str());
    if (!o.dotDir.empty()) {
        for (size_t i = 0; i < r.paths.size(); i++) {
            std::string path = o.dotDir + "/" + instr + "_upath" +
                               std::to_string(i) + ".dot";
            std::ofstream f(path);
            f << uhb::renderUPathDot(r.paths[i], hx.plNames(),
                                     r.decisions);
            std::printf("wrote %s\n", path.c_str());
        }
    }
    if (!o.vcdFile.empty() && !r.paths.empty()) {
        // Re-derive the first path's witness trace via its schedule run.
        // The synthesizer stores only the schedule; export the whole
        // exploration trace instead.
        r2m::SimFacts f = r2m::exploreSim(hx, hx.duv().instrId(instr),
                                          r2m::SimExploreConfig{});
        if (!f.sets.empty()) {
            writeVcd(hx.design(), f.sets.begin()->second.witness.trace,
                     o.vcdFile);
            std::printf("wrote %s\n", o.vcdFile.c_str());
        }
    }
    std::printf("\n%s",
                report::renderStepStats(synth.stepStats()).c_str());
    if (o.coi)
        std::printf("\nCone-of-influence statistics:\n%s",
                    report::renderCoiStats(synth.pool().stats().coi)
                        .c_str());
    return 0;
}

int
cmdLeakage(const std::string &duv, const std::string &instr,
           const CliOptions &o)
{
    Harness hx(buildByName(duv));
    r2m::MuPathSynthesizer synth(hx, synthConfig(o));
    slc::SynthLcConfig lc;
    lc.budget.maxConflicts = o.budget;
    lc.jobs = o.jobs;
    slc::SynthLc slc(hx, lc);
    uhb::InstrId p = hx.duv().instrId(instr);
    uhb::InstrPaths r = synth.synthesize(p);
    std::vector<uhb::InstrId> tx;
    if (o.tx.empty())
        tx.push_back(p);
    else
        for (const auto &t : o.tx)
            tx.push_back(hx.duv().instrId(t));
    auto sigs = slc.analyze(p, r.decisions, tx);
    if (sigs.empty())
        std::printf("no leakage signatures for %s\n", instr.c_str());
    for (const auto &s : sigs)
        std::printf("%s\n", slc.render(s).c_str());
    std::printf("\n%s",
                report::renderStepStats(synth.stepStats(), &slc.stats())
                    .c_str());
    return 0;
}

int
cmdContracts(const std::string &duv, const CliOptions &o)
{
    Harness hx(buildByName(duv));
    r2m::MuPathSynthesizer synth(hx, synthConfig(o));
    slc::SynthLcConfig lc;
    lc.budget.maxConflicts = o.budget;
    lc.jobs = o.jobs;
    slc::SynthLc slc(hx, lc);
    std::vector<std::string> names = o.instrs;
    if (names.empty()) {
        for (const auto &ins : hx.duv().instrs)
            names.push_back(ins.name);
        if (names.size() > 5)
            names.resize(5);
    }
    ct::AnalysisDb db;
    db.hx = &hx;
    std::vector<uhb::InstrId> ids;
    for (const auto &n : names)
        ids.push_back(hx.duv().instrId(n));
    // Cross-IUV parallel synthesis: simulation exploration and the
    // independent covers of every instruction go through the pool first.
    auto all = synth.synthesizeAll(ids);
    for (uhb::InstrId i : ids) {
        std::fprintf(stderr, "analyzing %s...\n",
                     hx.duv().instrs[i].name.c_str());
        auto paths = std::move(all.at(i));
        auto sigs = slc.analyze(i, paths.decisions, ids);
        for (auto &s : sigs)
            db.signatures.push_back(std::move(s));
        db.paths[i] = std::move(paths);
    }
    std::printf("%s\n", ct::renderContracts(db).c_str());
    std::printf("%s\n", report::renderFig8Matrix(db).c_str());
    return 0;
}

int
cmdBugs(const std::string &duv, const CliOptions &o)
{
    Harness hx(buildByName(duv));
    r2m::MuPathSynthesizer synth(hx, synthConfig(o));
    auto pls = synth.duvPls();
    std::printf("%s: %zu/%zu candidate PLs reachable\n",
                hx.duv().name.c_str(), pls.size(), hx.numPls());
    std::vector<bool> reach(hx.numPls(), false);
    for (uhb::PlId p : pls)
        reach[p] = true;
    for (uhb::PlId p = 0; p < hx.numPls(); p++)
        if (!reach[p])
            std::printf("  UNREACHABLE: %s\n", hx.plName(p).c_str());
    return 0;
}

int
cmdLint(const std::string &duv, const CliOptions &o)
{
    std::vector<std::string> names;
    if (duv == "all")
        names = {"tiny3",      "tiny3-zs",  "mcva",        "mcva-mul",
                 "mcva-op",    "mcva-fixed", "mcva-scbbug", "dcache"};
    else
        names.push_back(duv);
    size_t errors = 0;
    if (o.json)
        std::printf("[");
    for (size_t i = 0; i < names.size(); i++) {
        Harness hx(buildByName(names[i]));
        analysis::LintReport rep = analysis::lint(hx.design());
        // IFT soundness lint over the same instrumentation SynthLC uses.
        const uhb::DuvInfo &info = hx.duv();
        if (info.rs1Reg != kNoSig && info.rs2Reg != kNoSig) {
            ift::IftConfig icfg;
            icfg.taintSources = {info.rs1Reg, info.rs2Reg};
            icfg.blockRegs = info.arfRegs;
            icfg.blockRegs.insert(icfg.blockRegs.end(),
                                  info.amemRegs.begin(),
                                  info.amemRegs.end());
            icfg.persistentRegs = info.persistentRegs;
            icfg.txmGone = hx.txmGone;
            ift::Instrumented inst = ift::instrument(hx.design(), icfg);
            analysis::LintReport irep = analysis::lintIft(hx.design(), inst);
            rep.diags.insert(rep.diags.end(), irep.diags.begin(),
                             irep.diags.end());
        }
        errors += rep.errors();
        if (o.json)
            std::printf("%s%s", i ? ",\n " : "",
                        rep.json(hx.design()).c_str());
        else
            std::printf("%s%s", i ? "\n" : "",
                        rep.render(hx.design()).c_str());
    }
    if (o.json)
        std::printf("]\n");
    return errors ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: rmp "
                             "list|upaths|leakage|contracts|bugs|lint ...\n");
        return 1;
    }
    std::string cmd = argv[1];
    if (cmd == "list") {
        std::printf("tiny3 tiny3-zs mcva mcva-mul mcva-op mcva-fixed "
                    "mcva-scbbug dcache\n");
        return 0;
    }
    if (cmd == "upaths" && argc >= 4)
        return cmdUpaths(argv[2], argv[3], parseOptions(argc, argv, 4));
    if (cmd == "leakage" && argc >= 4)
        return cmdLeakage(argv[2], argv[3], parseOptions(argc, argv, 4));
    if (cmd == "contracts" && argc >= 3)
        return cmdContracts(argv[2], parseOptions(argc, argv, 3));
    if (cmd == "bugs" && argc >= 3)
        return cmdBugs(argv[2], parseOptions(argc, argv, 3));
    if (cmd == "lint" && argc >= 3)
        return cmdLint(argv[2], parseOptions(argc, argv, 3));
    std::fprintf(stderr, "bad command line; see the header comment\n");
    return 1;
}
