#include "designs/mcva.hh"

#include "common/logging.hh"
#include "designs/dutil.hh"
#include "designs/mcva_isa.hh"

namespace rmp::designs
{

using namespace uhb;

namespace
{

constexpr unsigned kData = 8;  ///< datapath width
constexpr unsigned kPcW = 6;   ///< fetch-PC counter width
constexpr unsigned kAddrW = 3; ///< memory address width (8 words)
constexpr unsigned kInstrW = 16;

} // anonymous namespace

DuvUnderConstruction
buildMcva(const McvaConfig &cfg)
{
    DuvUnderConstruction duc;
    std::string name = "mcva";
    if (cfg.withZeroSkipMul)
        name += "-mul";
    if (cfg.withOperandPacking)
        name += "-op";
    if (cfg.fixAlignmentBugs)
        name += "-fixed";
    if (cfg.withScbCounterBug)
        name += "-scbbug";
    duc.design = std::make_shared<Design>(name);
    duc.builder = std::make_shared<Builder>(*duc.design);
    Builder &b = *duc.builder;
    DuvInfo &info = duc.info;
    info.design = duc.design;
    info.name = name;

    auto L = [&](unsigned w, uint64_t v) { return b.lit(w, v); };
    auto L1 = [&](bool v) { return b.lit1(v); };

    // =================== Frontend interface ==========================
    Sig fetch_valid = b.input("fetch_valid", 1);
    Sig ifr = b.input("ifr", kInstrW);
    RegSig pc_ctr = b.regh("pc_ctr", kPcW, 0);

    // =================== State declarations ===========================
    RegSig if_valid = b.regh("if_valid", 1, 0);
    RegSig if_instr = b.regh("if_instr", kInstrW, 0);
    RegSig if_pc = b.regh("if_pc", kPcW, 0);

    RegSig id_valid = b.regh("id_valid", 1, 0);
    RegSig id_instr = b.regh("id_instr", kInstrW, 0);
    RegSig id_pc = b.regh("id_pc", kPcW, 0);

    // Issue stage: one instruction, with the shared operand registers
    // (the §V-A taint-introduction point).
    RegSig iss_active = b.regh("iss_active", 1, 0);
    RegSig iss_pc = b.regh("iss_pc", kPcW, 0);
    RegSig iss_cls = b.regh("iss_cls", 3, 0);
    RegSig iss_subop = b.regh("iss_subop", 4, 0);
    RegSig iss_rd = b.regh("iss_rd", 2, 0);
    RegSig iss_we = b.regh("iss_we", 1, 0);
    RegSig iss_imm = b.regh("iss_imm", 3, 0);
    RegSig iss_a = b.regh("iss_a", kData, 0);
    RegSig iss_b = b.regh("iss_b", kData, 0);

    // ALU (also executes branches, jumps, and system ops).
    RegSig alu_busy = b.regh("alu_busy", 1, 0);
    RegSig alu_pc = b.regh("alu_pc", kPcW, 0);
    RegSig alu_cls = b.regh("alu_cls", 3, 0);
    RegSig alu_subop = b.regh("alu_subop", 4, 0);
    RegSig alu_a = b.regh("alu_a", kData, 0);
    RegSig alu_b = b.regh("alu_b", kData, 0);
    RegSig alu_imm = b.regh("alu_imm", 3, 0);

    // Multiplier.
    RegSig mul_busy = b.regh("mul_busy", 1, 0);
    RegSig mul_pc = b.regh("mul_pc", kPcW, 0);
    RegSig mul_res = b.regh("mul_res", kData, 0);
    RegSig mul_cnt = b.regh("mul_cnt", 2, 0);
    RegSig mul_lat = b.regh("mul_lat", 2, 0);

    // Serial divider (restoring; skips the dividend's leading zeros, so
    // latency is dividend-dependent: 1..8 busy cycles).
    RegSig div_busy = b.regh("div_busy", 1, 0);
    RegSig div_pc = b.regh("div_pc", kPcW, 0);
    RegSig div_num = b.regh("div_num", kData, 0);
    RegSig div_den = b.regh("div_den", kData, 0);
    RegSig div_quo = b.regh("div_quo", kData, 0);
    RegSig div_rem = b.regh("div_rem", 9, 0);
    RegSig div_i = b.regh("div_i", 3, 0);
    RegSig div_isrem = b.regh("div_isrem", 1, 0);

    // Load unit: LSQ + ldStall (store-to-load page-offset stall), ldFin.
    RegSig lsq_valid = b.regh("lsq_valid", 1, 0);
    RegSig ld_stalled = b.regh("ld_stalled", 1, 0);
    RegSig ld_fin = b.regh("ld_fin", 1, 0);
    RegSig ld_pc = b.regh("ld_pc", kPcW, 0);
    RegSig ld_addr = b.regh("ld_addr", kAddrW, 0);

    // Store buffers: 1-entry speculative, 1-entry committed, plus the
    // memory-request (drain) state.
    RegSig sstb_valid = b.regh("sstb_valid", 1, 0);
    RegSig sstb_pc = b.regh("sstb_pc", kPcW, 0);
    RegSig sstb_addr = b.regh("sstb_addr", kAddrW, 0);
    RegSig sstb_data = b.regh("sstb_data", kData, 0);
    RegSig cstb_valid = b.regh("cstb_valid", 1, 0);
    RegSig cstb_pc = b.regh("cstb_pc", kPcW, 0);
    RegSig cstb_addr = b.regh("cstb_addr", kAddrW, 0);
    RegSig cstb_data = b.regh("cstb_data", kData, 0);
    RegSig memrq_active = b.regh("memrq_active", 1, 0);

    // Scoreboard: 2-entry collapsing FIFO (entry 0 is the oldest).
    // state: 0 idle, 1 issued, 2 finished.
    RegSig scb_state[2] = {b.regh("scb0_state", 2, 0),
                           b.regh("scb1_state", 2, 0)};
    RegSig scb_pc[2] = {b.regh("scb0_pc", kPcW, 0),
                        b.regh("scb1_pc", kPcW, 0)};
    RegSig scb_rd[2] = {b.regh("scb0_rd", 2, 0), b.regh("scb1_rd", 2, 0)};
    RegSig scb_we[2] = {b.regh("scb0_we", 1, 0), b.regh("scb1_we", 1, 0)};
    RegSig scb_excp[2] = {b.regh("scb0_excp", 1, 0),
                          b.regh("scb1_excp", 1, 0)};
    RegSig scb_st[2] = {b.regh("scb0_st", 1, 0), b.regh("scb1_st", 1, 0)};
    RegSig scb_res[2] = {b.regh("scb0_res", kData, 0),
                         b.regh("scb1_res", kData, 0)};

    // Retire stage: 1 cmt (scbCmt), 2 excp (scbExcp).
    RegSig ret_state = b.regh("ret_state", 2, 0);
    RegSig ret_pc = b.regh("ret_pc", kPcW, 0);
    RegSig ret_rd = b.regh("ret_rd", 2, 0);
    RegSig ret_we = b.regh("ret_we", 1, 0);
    RegSig ret_st = b.regh("ret_st", 1, 0);
    RegSig ret_res = b.regh("ret_res", kData, 0);

    // Architectural state (symbolically initialized at reset, §V-B).
    MemArray arf = b.mem("arf", 4, kData);
    symbolicInit(b, arf, "arf");
    MemArray amem = b.mem("amem", 8, kData);
    symbolicInit(b, amem, "amem");

    // =================== Decode (combinational, at ID) =================
    Sig opc = id_instr.q.slice(0, 7);
    Sig cls = b.named("id_cls", opc.slice(4, 3));
    Sig subop = b.named("id_subop", opc.slice(0, 4));
    Sig rd = id_instr.q.slice(7, 2);
    Sig rs1 = id_instr.q.slice(9, 2);
    Sig rs2 = id_instr.q.slice(11, 2);
    Sig imm = id_instr.q.slice(13, 3);

    auto clsIs = [&](uint64_t c) { return cls == L(3, c); };
    auto subIs = [&](uint64_t s) { return subop == L(4, s); };
    Sig is_alu_r = clsIs(kClsAluReg);
    Sig is_alu_i = clsIs(kClsAluImm);
    Sig is_mul = clsIs(kClsMul);
    Sig is_div = clsIs(kClsDiv);
    Sig is_load = clsIs(kClsLoad);
    Sig is_store = clsIs(kClsStore);
    Sig is_branch = clsIs(kClsBranch);
    Sig is_jsys = clsIs(kClsJumpSys);

    // W-form subop normalization (see mcva_isa.hh).
    Sig eff_subop = subop;
    {
        auto remap = [&](Sig cond, uint64_t from, uint64_t to) {
            eff_subop = b.mux(cond & subIs(from), L(4, to), eff_subop);
        };
        remap(is_alu_r, 10, kAluAdd);
        remap(is_alu_r, 11, kAluSub);
        remap(is_alu_r, 12, kAluSll);
        remap(is_alu_r, 13, kAluSrl);
        remap(is_alu_r, 14, kAluSra);
        remap(is_alu_i, 12, kAluAdd);
        remap(is_alu_i, 13, kAluSll);
        remap(is_alu_i, 14, kAluSrl);
        remap(is_alu_i, 15, kAluSra);
        eff_subop = b.named("id_eff_subop", eff_subop);
    }

    Sig is_jal = is_jsys & subIs(kJmpJal);
    Sig is_jalr = is_jsys & subIs(kJmpJalr);
    Sig is_csr_reg = is_jsys & (subIs(kSysCsrBase + 0) |
                                subIs(kSysCsrBase + 1) |
                                subIs(kSysCsrBase + 2));
    Sig is_lui_auipc = is_alu_i & (subIs(kAluLui) | subIs(kAluAuipc));
    Sig needs_rs1 =
        b.named("id_needs_rs1",
                (is_alu_r | is_mul | is_div | is_load | is_store |
                 is_branch | is_jalr | is_csr_reg |
                 (is_alu_i & ~is_lui_auipc)));
    Sig needs_rs2 = b.named(
        "id_needs_rs2", is_alu_r | is_mul | is_div | is_store | is_branch);
    Sig id_we = b.named("id_we",
                        (is_alu_r | is_alu_i | is_mul | is_div | is_load |
                         is_jal | is_jalr) &
                            ~(rd == L(2, 0)));

    // =================== Hazards & structural blocks ===================
    auto producer_hazard = [&](Sig rs) {
        Sig h = L1(false);
        for (int e = 0; e < 2; e++) {
            h = h | (~(scb_state[e].q == L(2, 0)) & scb_we[e].q &
                     (scb_rd[e].q == rs));
        }
        h = h | ((ret_state.q == L(2, 1)) & ret_we.q & (ret_rd.q == rs));
        return h;
    };
    Sig raw_hazard = b.named("id_raw_hazard",
                             (needs_rs1 & producer_hazard(rs1)) |
                                 (needs_rs2 & producer_hazard(rs2)));

    auto iss_holds = [&](uint64_t c) {
        return iss_active.q & (iss_cls.q == L(3, c));
    };
    Sig ld_unit_busy = lsq_valid.q | ld_fin.q;
    Sig fu_block = b.named(
        "id_fu_block",
        (is_mul & (mul_busy.q | iss_holds(kClsMul))) |
            (is_div & (div_busy.q | iss_holds(kClsDiv))) |
            (is_load & (ld_unit_busy | iss_holds(kClsLoad))) |
            (is_store & (sstb_valid.q | iss_holds(kClsStore))));

    // Operand packing (CVA6-OP): a register-ALU op in ID waits an extra
    // decode cycle behind a register-ALU op at issue unless the pair
    // packs — identical operation and all four operands narrow.
    Sig pack_block = L1(false);
    if (cfg.withOperandPacking) {
        auto narrow = [&](Sig v) { return v.slice(4, 4) == L(4, 0); };
        Sig my_a = b.memRead(arf, rs1);
        Sig my_b = b.memRead(arf, rs2);
        Sig pack_ok = b.named(
            "id_pack_ok",
            (iss_subop.q == eff_subop) & narrow(iss_a.q) & narrow(iss_b.q) &
                narrow(my_a) & narrow(my_b));
        pack_block = b.named("id_pack_block",
                             is_alu_r & iss_holds(kClsAluReg) & ~pack_ok);
    }

    // Scoreboard allocation availability (the §VII-B2 counter bug uses a
    // truncated occupancy count: "full" as soon as one entry is busy).
    Sig e0_occ = ~(scb_state[0].q == L(2, 0));
    Sig e1_occ = ~(scb_state[1].q == L(2, 0));
    Sig pop;  // defined below (retire); forward-declared via wire trick
    // We need pop in scb_free; compute retire pop condition here.
    Sig e0_fin = scb_state[0].q == L(2, 2);
    Sig pop_ok = e0_fin & ~(scb_st[0].q & cstb_valid.q);
    pop = b.named("scb_pop", pop_ok);
    Sig scb_free_real = ~e0_occ | ~e1_occ | pop;
    Sig scb_free_bug = ~e0_occ & ~e1_occ; // truncated counter: 1 entry max
    Sig scb_free = cfg.withScbCounterBug ? b.named("scb_free", scb_free_bug)
                                         : b.named("scb_free", scb_free_real);

    // =================== Branch resolution & flush =====================
    Sig alu_is_branch = alu_busy.q & (alu_cls.q == L(3, kClsBranch));
    Sig alu_is_jalr = alu_busy.q & (alu_cls.q == L(3, kClsJumpSys)) &
                      (alu_subop.q == L(4, kJmpJalr));
    Sig alu_is_jal = alu_busy.q & (alu_cls.q == L(3, kClsJumpSys)) &
                     (alu_subop.q == L(4, kJmpJal));
    Sig beq = alu_a.q == alu_b.q;
    Sig blt = alu_a.q < alu_b.q;
    Sig taken = b.named(
        "br_taken",
        (alu_subop.q == L(4, kBrEq) & beq) |
            (alu_subop.q == L(4, kBrNe) & ~beq) |
            ((alu_subop.q == L(4, kBrLt) | alu_subop.q == L(4, kBrLtu)) &
             blt) |
            ((alu_subop.q == L(4, kBrGe) | alu_subop.q == L(4, kBrGeu)) &
             ~blt));
    // JALR predicted target is pc+1; actual is rs1 (low PC bits).
    Sig jalr_mispredict = b.named(
        "jalr_mispredict",
        ~(alu_a.q.slice(0, kPcW) == (alu_pc.q + L(kPcW, 1))));
    Sig flush_br = b.named("flush_br", (alu_is_branch & taken) |
                                           (alu_is_jalr & jalr_mispredict));
    Sig flush_pc = alu_pc.q;
    Sig flush_ex = b.named("flush_ex", ret_state.q == L(2, 2));
    Sig flush_any = b.named("flush_any", flush_br | flush_ex);
    auto younger_than_branch = [&](Sig pc) { return flush_pc < pc; };
    auto killed = [&](Sig pc) {
        return flush_ex | (flush_br & younger_than_branch(pc));
    };

    // =================== Alignment exceptions (§VII-B2) ================
    // Scaled byte addresses: branch/JAL targets are pc*4 + imm (imm in
    // bytes); JALR's target byte address is its rs1 value.
    Sig imm_misaligned4 = ~(alu_imm.q.slice(0, 2) == L(2, 0));
    Sig imm_misaligned2 = alu_imm.q.bit(0);
    Sig jalr_misaligned = ~(alu_a.q.slice(0, 2) == L(2, 0));
    Sig br_excp = cfg.fixAlignmentBugs
                      ? (taken & imm_misaligned4)   // correct: only if taken
                      : imm_misaligned4;            // bug: regardless
    Sig jal_excp = cfg.fixAlignmentBugs
                       ? imm_misaligned4
                       : imm_misaligned2;           // bug: 2-byte check only
    Sig jalr_excp = cfg.fixAlignmentBugs
                        ? jalr_misaligned
                        : L1(false);                // bug: never checked
    Sig alu_is_sys_excp =
        alu_busy.q & (alu_cls.q == L(3, kClsJumpSys)) &
        ((alu_subop.q == L(4, kSysEcall)) | (alu_subop.q == L(4, kSysEbreak)));
    Sig alu_excp = b.named("alu_excp",
                           (alu_is_branch & br_excp) |
                               (alu_is_jal & jal_excp) |
                               (alu_is_jalr & jalr_excp) | alu_is_sys_excp);

    // =================== Pipeline advance ==============================
    Sig id_fire = b.named("id_fire", id_valid.q & ~raw_hazard & ~fu_block &
                                         ~pack_block & scb_free &
                                         ~flush_any);
    Sig if_advance =
        b.named("if_advance", if_valid.q & (~id_valid.q | id_fire));
    Sig fetch_ready =
        b.named("fetch_ready", (~if_valid.q | if_advance) & ~flush_any);
    Sig fetch_fire = b.named("fetch_fire", fetch_valid & fetch_ready);

    b.when(fetch_fire);
    b.assign(if_valid, L1(true));
    b.assign(if_instr, ifr);
    b.assign(if_pc, pc_ctr.q);
    b.assign(pc_ctr, pc_ctr.q + L(kPcW, 1));
    b.elseWhen(if_advance | killed(if_pc.q));
    b.assign(if_valid, L1(false));
    b.end();

    b.when(if_advance & ~killed(if_pc.q) & ~flush_any);
    b.assign(id_valid, L1(true));
    b.assign(id_instr, if_instr.q);
    b.assign(id_pc, if_pc.q);
    b.elseWhen(id_fire | killed(id_pc.q));
    b.assign(id_valid, L1(false));
    b.end();

    // =================== Issue (operand read) ==========================
    b.when(id_fire);
    b.assign(iss_active, L1(true));
    b.assign(iss_pc, id_pc.q);
    b.assign(iss_cls, cls);
    b.assign(iss_subop, eff_subop);
    b.assign(iss_rd, rd);
    b.assign(iss_we, id_we);
    b.assign(iss_imm, imm);
    b.assign(iss_a, b.memRead(arf, rs1));
    b.assign(iss_b, b.memRead(arf, rs2));
    b.otherwise();
    b.assign(iss_active, L1(false));
    b.end();
    // A flush invalidates whatever sits at issue.
    b.when(killed(iss_pc.q));
    b.assign(iss_active, L1(false));
    b.end();

    Sig iss_live = b.named("iss_live", iss_active.q & ~killed(iss_pc.q));
    Sig imm8 = iss_imm.q.zext(kData);

    // =================== ALU capture & completion ======================
    Sig alu_capture = b.named(
        "alu_capture",
        iss_live & (iss_holds(kClsAluReg) | iss_holds(kClsAluImm) |
                    iss_holds(kClsBranch) | iss_holds(kClsJumpSys)));
    b.when(alu_capture);
    b.assign(alu_busy, L1(true));
    b.assign(alu_pc, iss_pc.q);
    b.assign(alu_cls, iss_cls.q);
    b.assign(alu_subop, iss_subop.q);
    b.assign(alu_a, iss_a.q);
    b.assign(alu_b, b.mux(iss_holds(kClsAluImm), imm8, iss_b.q));
    b.assign(alu_imm, iss_imm.q);
    b.otherwise();
    b.assign(alu_busy, L1(false));
    b.end();

    // ALU datapath (evaluated during the aluU cycle).
    Sig sh = alu_b.q.slice(0, 3);
    Sig sra_fill =
        b.mux(alu_a.q.bit(7), ~b.shr(L(kData, 0xff), sh), L(kData, 0));
    Sig alu_out = L(kData, 0);
    {
        auto pick = [&](uint64_t op, Sig v) {
            alu_out = b.mux(alu_subop.q == L(4, op), v, alu_out);
        };
        pick(kAluAdd, alu_a.q + alu_b.q);
        pick(kAluSub, alu_a.q - alu_b.q);
        pick(kAluSll, b.shl(alu_a.q, sh));
        pick(kAluSlt, (alu_a.q < alu_b.q).zext(kData));
        pick(kAluSltu, (alu_a.q < alu_b.q).zext(kData));
        pick(kAluXor, alu_a.q ^ alu_b.q);
        pick(kAluSrl, b.shr(alu_a.q, sh));
        pick(kAluSra, b.shr(alu_a.q, sh) | sra_fill);
        pick(kAluOr, alu_a.q | alu_b.q);
        pick(kAluAnd, alu_a.q & alu_b.q);
        pick(kAluLui, alu_b.q);
        pick(kAluAuipc, alu_pc.q.zext(kData) + alu_b.q);
    }
    Sig link = (alu_pc.q + L(kPcW, 1)).zext(kData);
    Sig alu_res = b.named(
        "alu_res",
        b.mux(alu_cls.q == L(3, kClsJumpSys), b.mux(alu_is_jal | alu_is_jalr,
                                                    link, L(kData, 0)),
              b.mux(alu_cls.q == L(3, kClsBranch), L(kData, 0), alu_out)));
    Sig alu_done = b.named("alu_done", alu_busy.q);

    // =================== Multiplier =====================================
    Sig p16 = iss_a.q.zext(16) * iss_b.q.zext(16);
    Sig mul_low = p16.slice(0, 8);
    Sig mul_high = p16.slice(8, 8);
    Sig mul_sel_high = (iss_subop.q == L(4, 1)) | (iss_subop.q == L(4, 2)) |
                       (iss_subop.q == L(4, 3));
    Sig mul_capture = b.named("mul_capture", iss_live & iss_holds(kClsMul));
    Sig zero_op = (iss_a.q == L(kData, 0)) | (iss_b.q == L(kData, 0));
    Sig mul_lat_new = cfg.withZeroSkipMul
                          ? b.mux(zero_op, L(2, 0), L(2, 3)) // 1 or 4 cycles
                          : L(2, 1);                         // fixed 2
    Sig mul_done = b.named("mul_done", mul_busy.q & (mul_cnt.q == mul_lat.q));
    b.when(mul_capture);
    b.assign(mul_busy, L1(true));
    b.assign(mul_pc, iss_pc.q);
    b.assign(mul_res, b.mux(mul_sel_high, mul_high, mul_low));
    b.assign(mul_cnt, L(2, 0));
    b.assign(mul_lat, mul_lat_new);
    b.elseWhen(mul_done);
    b.assign(mul_busy, L1(false));
    b.end();
    b.when(mul_busy.q & ~mul_done & ~mul_capture);
    b.assign(mul_cnt, mul_cnt.q + L(2, 1));
    b.end();

    // =================== Serial divider =================================
    // Start position: the dividend's MSB index (leading-zero skip).
    Sig msb_idx = L(3, 0);
    for (unsigned i = 1; i < kData; i++)
        msb_idx = b.mux(iss_a.q.bit(i), L(3, i), msb_idx);
    Sig div_capture = b.named("div_capture", iss_live & iss_holds(kClsDiv));
    b.when(div_capture);
    b.assign(div_busy, L1(true));
    b.assign(div_pc, iss_pc.q);
    b.assign(div_num, iss_a.q);
    b.assign(div_den, iss_b.q);
    b.assign(div_quo, L(kData, 0));
    b.assign(div_rem, L(9, 0));
    b.assign(div_i, msb_idx);
    b.assign(div_isrem, iss_subop.q.bit(1));
    b.end();
    // One restoring-division step per busy cycle, bit div_i.
    Sig num_bit = b.shr(div_num.q, div_i.q.zext(kData)).bit(0);
    Sig rem_sh = b.cat(div_rem.q.slice(0, 8), num_bit);
    Sig den9 = div_den.q.zext(9);
    Sig ge = ~(rem_sh < den9); // rem' >= den
    Sig rem_next = b.mux(ge, rem_sh - den9, rem_sh);
    Sig quo_bit = b.shl(L(kData, 1), div_i.q.zext(kData));
    Sig quo_next = div_quo.q | b.mux(ge, quo_bit, L(kData, 0));
    Sig div_done = b.named("div_done", div_busy.q & (div_i.q == L(3, 0)));
    b.when(div_busy.q & ~div_capture);
    b.assign(div_rem, rem_next);
    b.assign(div_quo, quo_next);
    b.when(~div_done);
    b.assign(div_i, div_i.q - L(3, 1));
    b.otherwise();
    b.assign(div_busy, L1(false));
    b.end();
    b.end();
    Sig div_by_zero = div_den.q == L(kData, 0);
    Sig div_res = b.named(
        "div_res",
        b.mux(div_isrem.q, b.mux(div_by_zero, div_num.q, rem_next.slice(0, 8)),
              b.mux(div_by_zero, L(kData, 0xff), quo_next)));

    // =================== Load unit ======================================
    Sig ld_sum = iss_a.q + imm8;
    Sig ld_addr_new = ld_sum.slice(0, kAddrW);
    Sig ld_off_new = ld_sum.slice(0, 2);
    Sig stb_match_new = b.named(
        "ld_match_new",
        (sstb_valid.q & (sstb_addr.q.slice(0, 2) == ld_off_new)) |
            (cstb_valid.q & (cstb_addr.q.slice(0, 2) == ld_off_new)));
    Sig ld_capture = b.named("ld_capture", iss_live & iss_holds(kClsLoad));
    // Stall re-check for a load parked in the LSQ.
    Sig ld_off_cur = ld_addr.q.slice(0, 2);
    Sig stb_match_cur = b.named(
        "ld_match_cur",
        (sstb_valid.q & (sstb_addr.q.slice(0, 2) == ld_off_cur)) |
            (cstb_valid.q & (cstb_addr.q.slice(0, 2) == ld_off_cur)));
    Sig ld_unstall = b.named("ld_unstall",
                             lsq_valid.q & ld_stalled.q & ~stb_match_cur);
    b.when(ld_capture);
    b.assign(ld_pc, iss_pc.q);
    b.assign(ld_addr, ld_addr_new);
    b.when(stb_match_new);
    b.assign(lsq_valid, L1(true));
    b.assign(ld_stalled, L1(true));
    b.otherwise();
    b.assign(ld_fin, L1(true));
    b.end();
    b.end();
    b.when(ld_unstall);
    b.assign(lsq_valid, L1(false));
    b.assign(ld_stalled, L1(false));
    b.assign(ld_fin, L1(true));
    b.end();
    b.when(ld_fin.q & ~ld_capture & ~ld_unstall);
    b.assign(ld_fin, L1(false));
    b.end();
    Sig ld_done = b.named("ld_done", ld_fin.q);
    Sig ld_res = b.memRead(amem, ld_addr.q);

    // The exception flush clears the load unit and the execution units:
    // everything in flight is younger than the excepting instruction
    // (in-order commit).
    b.when(flush_ex);
    b.assign(lsq_valid, L1(false));
    b.assign(ld_stalled, L1(false));
    b.assign(ld_fin, L1(false));
    b.assign(alu_busy, L1(false));
    b.assign(mul_busy, L1(false));
    b.assign(div_busy, L1(false));
    b.end();

    // =================== Store path ====================================
    Sig st_capture = b.named("st_capture", iss_live & iss_holds(kClsStore));
    b.when(st_capture);
    b.assign(sstb_valid, L1(true));
    b.assign(sstb_pc, iss_pc.q);
    b.assign(sstb_addr, ld_sum.slice(0, kAddrW));
    b.assign(sstb_data, iss_b.q);
    b.end();
    // Exception flush clears the (younger, uncommitted) store.
    b.when(flush_ex);
    b.assign(sstb_valid, L1(false));
    b.end();
    // Branch flush of a younger speculative store.
    b.when(flush_br & younger_than_branch(sstb_pc.q) & sstb_valid.q);
    b.assign(sstb_valid, L1(false));
    b.end();

    // Committed-store drain: the single memory port prioritizes loads
    // (the ST_comSTB channel, §VII-A1): the drain only starts on a cycle
    // after which no load will occupy the port.
    Sig ld_fin_next = b.named(
        "ld_fin_next", (ld_capture & ~stb_match_new) | ld_unstall);
    Sig memrq_start = b.named("memrq_start", cstb_valid.q & ~memrq_active.q &
                                                 ~ld_fin_next);
    b.when(memrq_start);
    b.assign(memrq_active, L1(true));
    b.elseWhen(memrq_active.q);
    b.assign(memrq_active, L1(false));
    b.assign(cstb_valid, L1(false));
    b.end();
    b.memWrite(amem, memrq_active.q, cstb_addr.q, cstb_data.q);

    // =================== Completion -> scoreboard =======================
    struct Completion
    {
        Sig valid, pc, res, excp;
    };
    std::vector<Completion> compl_srcs = {
        {b.named("c_alu", alu_done & ~killed(alu_pc.q)), alu_pc.q, alu_res,
         alu_excp},
        {b.named("c_mul", mul_done & ~killed(mul_pc.q)), mul_pc.q,
         mul_res.q, L1(false)},
        {b.named("c_div", div_done & ~killed(div_pc.q)), div_pc.q, div_res,
         L1(false)},
        {b.named("c_ld", ld_done & ~flush_ex), ld_pc.q, ld_res, L1(false)},
        {b.named("c_st", st_capture), iss_pc.q, L(kData, 0), L1(false)},
    };

    // Scoreboard next-state: collapse/alloc first, then completions.
    Sig alloc = id_fire; // allocation happens with issue fire
    Sig alloc_to_e0 = ~e0_occ | (pop & ~e1_occ);
    struct ScbNext
    {
        Sig state, pc, rd, we, excp, st, res;
    };
    ScbNext nxt[2];
    for (int e = 0; e < 2; e++) {
        // Base: shift on pop.
        Sig state = scb_state[e].q, pcv = scb_pc[e].q, rdv = scb_rd[e].q,
            wev = scb_we[e].q, ex = scb_excp[e].q, st = scb_st[e].q,
            res = scb_res[e].q;
        if (e == 0) {
            state = b.mux(pop, scb_state[1].q, state);
            pcv = b.mux(pop, scb_pc[1].q, pcv);
            rdv = b.mux(pop, scb_rd[1].q, rdv);
            wev = b.mux(pop, scb_we[1].q, wev);
            ex = b.mux(pop, scb_excp[1].q, ex);
            st = b.mux(pop, scb_st[1].q, st);
            res = b.mux(pop, scb_res[1].q, res);
        } else {
            state = b.mux(pop, L(2, 0), state);
        }
        // Allocation of the newly issued instruction.
        Sig here = e == 0 ? alloc & alloc_to_e0 : alloc & ~alloc_to_e0;
        state = b.mux(here, L(2, 1), state);
        pcv = b.mux(here, id_pc.q, pcv);
        rdv = b.mux(here, rd, rdv);
        wev = b.mux(here, id_we, wev);
        ex = b.mux(here, L1(false), ex);
        st = b.mux(here, is_store, st);
        res = b.mux(here, L(kData, 0), res);
        nxt[e] = {state, pcv, rdv, wev, ex, st, res};
    }
    // Apply completions (match by PC against the post-shift contents).
    for (int e = 0; e < 2; e++) {
        Sig state = nxt[e].state, res = nxt[e].res, ex = nxt[e].excp;
        for (const auto &c : compl_srcs) {
            Sig hit = c.valid & (nxt[e].pc == c.pc) &
                      (state == L(2, 1));
            state = b.mux(hit, L(2, 2), state);
            res = b.mux(hit, c.res, res);
            ex = b.mux(hit, c.excp, ex);
        }
        nxt[e].state = state;
        nxt[e].res = res;
        nxt[e].excp = ex;
    }
    // Flushes kill younger entries.
    for (int e = 0; e < 2; e++) {
        Sig kill = flush_ex | (flush_br & younger_than_branch(nxt[e].pc) &
                               ~(nxt[e].pc == flush_pc));
        nxt[e].state = b.mux(kill, L(2, 0), nxt[e].state);
        b.assign(scb_state[e], nxt[e].state);
        b.assign(scb_pc[e], nxt[e].pc);
        b.assign(scb_rd[e], nxt[e].rd);
        b.assign(scb_we[e], nxt[e].we);
        b.assign(scb_excp[e], nxt[e].excp);
        b.assign(scb_st[e], nxt[e].st);
        b.assign(scb_res[e], nxt[e].res);
    }

    // =================== Retire ========================================
    b.when(pop);
    b.assign(ret_state, b.mux(scb_excp[0].q, L(2, 2), L(2, 1)));
    b.assign(ret_pc, scb_pc[0].q);
    b.assign(ret_rd, scb_rd[0].q);
    b.assign(ret_we, scb_we[0].q);
    b.assign(ret_st, scb_st[0].q);
    b.assign(ret_res, scb_res[0].q);
    b.otherwise();
    b.assign(ret_state, L(2, 0));
    b.end();
    // Store commit: move speculative entry to the committed STB.
    b.when(pop & scb_st[0].q & ~scb_excp[0].q);
    b.assign(cstb_valid, L1(true));
    b.assign(cstb_pc, sstb_pc.q);
    b.assign(cstb_addr, sstb_addr.q);
    b.assign(cstb_data, sstb_data.q);
    b.assign(sstb_valid, L1(false));
    b.end();
    // Architectural register write at commit.
    Sig ret_cmt = ret_state.q == L(2, 1);
    b.memWrite(arf, ret_cmt & ret_we.q, ret_rd.q, ret_res.q);

    Sig commit = b.named("commit", ret_cmt | flush_ex);

    // =================== Metadata (§V-A, Table II) ======================
    info.ifr = ifr.id;
    info.fetchValid = fetch_valid.id;
    info.fetchReady = fetch_ready.id;
    info.fetchPc = pc_ctr.q.id;
    info.commit = commit.id;
    info.commitPc = ret_pc.q.id;
    info.opcodeLo = 0;
    info.opcodeWidth = 7;
    info.layout = {7, 2, 9, 2, 11, 2, 13, 3};
    info.instrs = mcvaInstrTable();
    info.fsms = {
        {"IF", if_pc.q.id, {if_valid.q.id}, {{0}}, {}},
        {"ID", id_pc.q.id, {id_valid.q.id}, {{0}}, {}},
        {"issue", iss_pc.q.id, {iss_active.q.id}, {{0}}, {}},
        {"aluU", alu_pc.q.id, {alu_busy.q.id}, {{0}}, {}},
        {"mulU", mul_pc.q.id, {mul_busy.q.id}, {{0}}, {}},
        {"divU", div_pc.q.id, {div_busy.q.id}, {{0}}, {}},
        {"LSQ", ld_pc.q.id, {lsq_valid.q.id}, {{0}}, {}},
        {"ldStall", ld_pc.q.id, {ld_stalled.q.id}, {{0}}, {}},
        {"ldFin", ld_pc.q.id, {ld_fin.q.id}, {{0}}, {}},
        {"scb0",
         scb_pc[0].q.id,
         {scb_state[0].q.id},
         {{0}, {3}},
         {{{1}, "scb0Iss"}, {{2}, "scb0Fin"}}},
        {"scb1",
         scb_pc[1].q.id,
         {scb_state[1].q.id},
         {{0}, {3}},
         {{{1}, "scb1Iss"}, {{2}, "scb1Fin"}}},
        {"retire",
         ret_pc.q.id,
         {ret_state.q.id},
         {{0}, {3}},
         {{{1}, "scbCmt"}, {{2}, "scbExcp"}}},
        {"specSTB", sstb_pc.q.id, {sstb_valid.q.id}, {{0}}, {}},
        {"comSTB", cstb_pc.q.id, {cstb_valid.q.id}, {{0}}, {}},
        {"memRq", cstb_pc.q.id, {memrq_active.q.id}, {{0}}, {}},
    };
    info.rs1Reg = iss_a.q.id;
    info.rs2Reg = iss_b.q.id;
    info.issueOccupied = iss_active.q.id;
    info.issuePcr = iss_pc.q.id;
    for (const auto &w : arf.words)
        info.arfRegs.push_back(w.q.id);
    for (const auto &w : amem.words)
        info.amemRegs.push_back(w.q.id);
    info.completenessBound = 30;
    info.pcWidth = kPcW;
    return duc;
}

} // namespace rmp::designs
