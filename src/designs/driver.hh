/**
 * @file
 * Program driver: runs concrete instruction sequences on a harnessed DUV
 * through the simulator. Used by functional tests, examples, and the
 * SC-Safe observation-trace experiment (Def. V.1).
 */

#ifndef DESIGNS_DRIVER_HH
#define DESIGNS_DRIVER_HH

#include <vector>

#include "designs/harness.hh"
#include "sim/simulator.hh"

namespace rmp::designs
{

/** One program instruction: the encoded word plus optional marks. */
struct ProgInstr
{
    uint64_t word = 0;
    bool markIuv = false;
    bool markTxm = false;
    /** Idle cycles to insert before offering this instruction. */
    unsigned delayBefore = 0;
};

/**
 * Feeds a program into the harnessed DUV cycle by cycle, respecting
 * fetch back-pressure, and returns the recorded trace.
 */
class ProgramDriver
{
  public:
    explicit ProgramDriver(const Harness &harness) : hx(harness) {}

    /**
     * Run @p prog, then keep simulating idle cycles until @p total_cycles
     * have elapsed. Returns the full signal trace.
     */
    SimTrace run(const std::vector<ProgInstr> &prog, unsigned total_cycles);

    /**
     * The architectural value of ARF word @p reg at the end of @p trace.
     */
    uint64_t arfValue(const SimTrace &trace, unsigned reg) const;

    /**
     * The R_μPATH observation trace (§V-C2): per cycle, the bitset of
     * occupied PLs — what a receiver observing instruction/PL occupancy
     * perceives.
     */
    std::vector<uint64_t> observationTrace(const SimTrace &trace) const;

  private:
    const Harness &hx;
};

} // namespace rmp::designs

#endif // DESIGNS_DRIVER_HH
