/**
 * @file
 * Program driver: runs concrete instruction sequences on a harnessed DUV
 * through the simulator. Used by functional tests, examples, and the
 * SC-Safe observation-trace experiment (Def. V.1).
 *
 * Two engines are available. The interpreted engine (default) records a
 * full trace of every signal — the reference oracle. The compiled engine
 * steps an op tape (sim::BatchSim) and records only the observation
 * watch set — fetchReady, per-PL occupancy, and the architectural
 * register file — returning a sparse trace that arfValue() and
 * observationTrace() read identically.
 */

#ifndef DESIGNS_DRIVER_HH
#define DESIGNS_DRIVER_HH

#include <memory>
#include <vector>

#include "designs/harness.hh"
#include "sim/batch.hh"
#include "sim/simulator.hh"
#include "sim/tape.hh"

namespace rmp::designs
{

/** One program instruction: the encoded word plus optional marks. */
struct ProgInstr
{
    uint64_t word = 0;
    bool markIuv = false;
    bool markTxm = false;
    /** Idle cycles to insert before offering this instruction. */
    unsigned delayBefore = 0;
};

/**
 * Feeds a program into the harnessed DUV cycle by cycle, respecting
 * fetch back-pressure, and returns the recorded trace.
 */
class ProgramDriver
{
  public:
    /** @p compiled selects the op-tape engine (watch-set traces);
     *  @p backend picks its execution kernel (bit-identical results). */
    explicit ProgramDriver(const Harness &harness, bool compiled = false,
                           sim::SimBackend backend = sim::SimBackend::Tape);

    /**
     * Run @p prog, then keep simulating idle cycles until @p total_cycles
     * have elapsed. @p init is merged into the first cycle's inputs
     * (symbolic architectural init, e.g. a secret register seed).
     * Returns the recorded trace: every signal on the interpreted
     * engine, the observation watch set on the compiled engine.
     */
    SimTrace run(const std::vector<ProgInstr> &prog, unsigned total_cycles,
                 const InputMap &init = {});

    /**
     * The architectural value of ARF word @p reg at the end of @p trace.
     */
    uint64_t arfValue(const SimTrace &trace, unsigned reg) const;

    /**
     * The R_μPATH observation trace (§V-C2): per cycle, the bitset of
     * occupied PLs — what a receiver observing instruction/PL occupancy
     * perceives.
     */
    std::vector<uint64_t> observationTrace(const SimTrace &trace) const;

  private:
    const Harness &hx;
    /** Observation-watch tape (compiled engine only, built once). */
    std::unique_ptr<sim::Tape> tape_;
    sim::SimBackend backend_ = sim::SimBackend::Tape;
};

} // namespace rmp::designs

#endif // DESIGNS_DRIVER_HH
