#include "designs/harness.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rmp::designs
{

using namespace uhb;

Harness::Harness(DuvUnderConstruction duc) : info(std::move(duc.info))
{
    rmp_assert(info.design == duc.design, "DuvInfo does not own the design");
    rmp_assert(info.ifr != kNoSig && info.fetchValid != kNoSig &&
                   info.fetchPc != kNoSig,
               "DUV %s missing frontend metadata", info.name.c_str());
    rmp_assert(!info.fsms.empty(), "DUV %s declares no μFSMs",
               info.name.c_str());

    // Finalize the DUV's own construction first so that register
    // next-state connections exist for the connectivity analysis.
    duc.builder->finalize();

    enumeratePls();
    computeFsmConnectivity();

    // Harness state is built with a second builder over the same design
    // (the paper's verification-only auxiliary state, §V-A footnote 2).
    Builder b(*info.design);
    buildTracking(b);
    buildEdgeObservers(b);
    b.finalize();
}

void
Harness::enumeratePls()
{
    const Design &d = *info.design;
    for (FsmId f = 0; f < info.fsms.size(); f++) {
        const MicroFsm &fsm = info.fsms[f];
        rmp_assert(fsm.pcr != kNoSig, "μFSM %s has no PCR",
                   fsm.name.c_str());
        unsigned total_width = 0;
        for (SigId v : fsm.vars)
            total_width += d.cell(v).width;
        rmp_assert(total_width >= 1 && total_width <= 8,
                   "μFSM %s vars width %u out of range (1..8)",
                   fsm.name.c_str(), total_width);
        for (uint64_t enc = 0; enc < (1ULL << total_width); enc++) {
            // Unpack the encoding into per-var values.
            PerfLoc pl;
            pl.fsm = f;
            uint64_t rest = enc;
            for (SigId v : fsm.vars) {
                unsigned w = d.cell(v).width;
                pl.state.push_back(rest & BitVec::maskOf(w));
                rest >>= w;
            }
            bool idle = false;
            for (const auto &ist : fsm.idleStates)
                if (ist == pl.state)
                    idle = true;
            if (idle)
                continue;
            plNames_.push_back(plLabel(fsm, pl));
            pls_.push_back(std::move(pl));
        }
    }
}

void
Harness::computeFsmConnectivity()
{
    const Design &d = *info.design;
    size_t n = info.fsms.size();
    connectivity.assign(n * n, false);

    // For each μFSM, the register sources feeding its state cone.
    std::vector<std::vector<SigId>> fanin(n);
    for (size_t f = 0; f < n; f++) {
        std::vector<SigId> roots;
        for (SigId v : info.fsms[f].vars)
            roots.push_back(d.cell(v).args[0]); // next-state signal
        roots.push_back(d.cell(info.fsms[f].pcr).args[0]);
        fanin[f] = d.combFanInSources(roots);
    }
    for (size_t a = 0; a < n; a++) {
        std::vector<SigId> a_regs = info.fsms[a].vars;
        a_regs.push_back(info.fsms[a].pcr);
        std::sort(a_regs.begin(), a_regs.end());
        for (size_t q = 0; q < n; q++) {
            bool hit = false;
            for (SigId src : fanin[q])
                if (std::binary_search(a_regs.begin(), a_regs.end(), src))
                    hit = true;
            connectivity[a * n + q] = hit;
        }
    }
}

bool
Harness::fsmConnected(FsmId a, FsmId b) const
{
    return connectivity[a * info.fsms.size() + b];
}

void
Harness::buildTracking(Builder &b)
{
    const Design &d = *info.design;
    auto sig = [&](SigId id) { return Sig{&b, id}; };

    Sig fetch_valid = sig(info.fetchValid);
    Sig fetch_ready = info.fetchReady != kNoSig ? sig(info.fetchReady)
                                                : b.lit1(true);
    Sig fetch_fire = fetch_valid & fetch_ready;
    Sig fetch_pc = sig(info.fetchPc);
    unsigned pcw = d.cell(info.fetchPc).width;

    // Valid-encoding wire: whenever an instruction is fetched its opcode
    // field must match one of the implemented encodings.
    Sig opc = sig(info.ifr).slice(info.opcodeLo, info.opcodeWidth);
    Sig any;
    for (const auto &ins : info.instrs) {
        Sig m = opc == b.lit(info.opcodeWidth, ins.opcode);
        any = any.valid() ? (any | m) : m;
    }
    encValidWire = b.named("hx_enc_valid", ~fetch_valid | any).id;

    // --- IUV mark ---------------------------------------------------
    Sig mark_iuv = b.input("hx_mark_iuv", 1);
    RegSig iuv_taken = b.regh("hx_iuv_taken", 1, 0);
    RegSig iuv_pc = b.regh("hx_iuv_pc", pcw, 0);
    Sig iuv_fire =
        b.named("hx_mark_iuv_fire", mark_iuv & fetch_fire & ~iuv_taken.q);
    b.when(iuv_fire);
    b.assign(iuv_taken, b.lit1(true));
    b.assign(iuv_pc, fetch_pc);
    b.end();
    iuvTaken = iuv_taken.q.id;
    iuvPc = iuv_pc.q.id;
    markIuvFire = iuv_fire.id;

    // --- Transmitter mark --------------------------------------------
    Sig mark_txm = b.input("hx_mark_txm", 1);
    RegSig txm_taken = b.regh("hx_txm_taken", 1, 0);
    RegSig txm_pc = b.regh("hx_txm_pc", pcw, 0);
    Sig txm_fire =
        b.named("hx_mark_txm_fire", mark_txm & fetch_fire & ~txm_taken.q);
    b.when(txm_fire);
    b.assign(txm_taken, b.lit1(true));
    b.assign(txm_pc, fetch_pc);
    b.end();
    txmTaken = txm_taken.q.id;
    txmPc = txm_pc.q.id;
    markTxmFire = txm_fire.id;

    // --- Per-instruction mark implications ---------------------------
    for (const auto &ins : info.instrs) {
        Sig is_i = opc == b.lit(info.opcodeWidth, ins.opcode);
        iuvIsWires.push_back(
            b.named("hx_iuv_is_" + ins.name, ~iuv_fire | is_i).id);
        txmIsWires.push_back(
            b.named("hx_txm_is_" + ins.name, ~txm_fire | is_i).id);
    }

    // --- Per-PL tracking ----------------------------------------------
    plSigs.resize(pls_.size());
    Sig iuv_any, txm_any;
    for (PlId p = 0; p < pls_.size(); p++) {
        const PerfLoc &pl = pls_[p];
        const MicroFsm &fsm = info.fsms[pl.fsm];
        const std::string &pn = plNames_[p];
        PlSignals &ps = plSigs[p];

        // State match: vars hold exactly this valuation.
        Sig occ;
        for (size_t i = 0; i < fsm.vars.size(); i++) {
            Sig v = sig(fsm.vars[i]);
            Sig m = v == b.lit(v.width(), pl.state[i]);
            occ = occ.valid() ? (occ & m) : m;
        }
        occ = b.named("hx_occ_" + pn, occ);
        ps.occupied = occ.id;

        Sig pc_match = sig(fsm.pcr) == iuv_pc.q;
        Sig at = b.named("hx_iuv_at_" + pn, occ & pc_match & iuv_taken.q);
        ps.iuvAt = at.id;

        Sig txm_pc_match = sig(fsm.pcr) == txm_pc.q;
        Sig tat =
            b.named("hx_txm_at_" + pn, occ & txm_pc_match & txm_taken.q);
        ps.txmAt = tat.id;

        RegSig prev = b.regh("hx_prev_" + pn, 1, 0);
        b.assign(prev, at);
        ps.iuvPrevAt = prev.q.id;

        RegSig visited = b.regh("hx_visited_" + pn, 1, 0);
        b.assign(visited, visited.q | at);
        ps.iuvVisited = visited.q.id;

        RegSig consec = b.regh("hx_consec_" + pn, 1, 0);
        b.assign(consec, consec.q | (at & prev.q));
        ps.revisitConsec = consec.q.id;

        RegSig nonconsec = b.regh("hx_nonconsec_" + pn, 1, 0);
        b.assign(nonconsec, nonconsec.q | (at & ~prev.q & visited.q));
        ps.revisitNonconsec = nonconsec.q.id;

        // Saturating visit counter and max consecutive-run tracker.
        unsigned cw = kCountWidth;
        Sig maxc = b.lit(cw, BitVec::maskOf(cw));
        RegSig count = b.regh("hx_count_" + pn, cw, 0);
        Sig count_sat = count.q == maxc;
        b.when(at & ~count_sat);
        b.assign(count, count.q + b.lit(cw, 1));
        b.end();
        ps.visitCount = count.q.id;

        RegSig cur_run = b.regh("hx_run_" + pn, cw, 0);
        RegSig max_run = b.regh("hx_maxrun_" + pn, cw, 0);
        Sig run_sat = cur_run.q == maxc;
        Sig run_now = b.mux(
            at, b.mux(prev.q, cur_run.q + b.mux(run_sat, b.lit(cw, 0),
                                                b.lit(cw, 1)),
                      b.lit(cw, 1)),
            b.lit(cw, 0));
        b.assign(cur_run, run_now);
        b.when(max_run.q < run_now);
        b.assign(max_run, run_now);
        b.end();
        ps.maxRun = max_run.q.id;

        iuv_any = iuv_any.valid() ? (iuv_any | at) : at;
        txm_any = txm_any.valid() ? (txm_any | tat) : tat;
    }
    iuv_any = b.named("hx_iuv_present", iuv_any);
    txm_any = b.named("hx_txm_present", txm_any);
    iuvPresent = iuv_any.id;
    txmPresent = txm_any.id;

    RegSig iuv_ever = b.regh("hx_iuv_ever", 1, 0);
    b.assign(iuv_ever, iuv_ever.q | iuv_any);
    iuvGone = b.named("hx_iuv_gone", iuv_ever.q & ~iuv_any).id;

    RegSig txm_ever = b.regh("hx_txm_ever", 1, 0);
    b.assign(txm_ever, txm_ever.q | txm_any);
    txmGone = b.named("hx_txm_gone", txm_ever.q & ~txm_any).id;

    // IUV commit tracking.
    if (info.commit != kNoSig && info.commitPc != kNoSig) {
        RegSig committed = b.regh("hx_iuv_committed", 1, 0);
        Sig now = sig(info.commit) & (sig(info.commitPc) == iuv_pc.q) &
                  iuv_taken.q;
        b.assign(committed, committed.q | now);
        iuvCommitted = committed.q.id;
    }

    // Transmitter-at-issue (taint introduction point, §V-C1).
    if (info.issueOccupied != kNoSig && info.issuePcr != kNoSig) {
        txmAtIssue = b.named("hx_txm_at_issue",
                             sig(info.issueOccupied) &
                                 (sig(info.issuePcr) == txm_pc.q) &
                                 txm_taken.q)
                         .id;
    }

    // Program-order relations between the two marked instructions. The
    // fetch PC is a monotonically increasing counter, so PC order is
    // program order.
    Sig both = iuv_taken.q & txm_taken.q;
    txmOlder = b.named("hx_txm_older", both & (txm_pc.q < iuv_pc.q)).id;
    txmSame = b.named("hx_txm_same", both & (txm_pc.q == iuv_pc.q)).id;
}

void
Harness::buildEdgeObservers(Builder &b)
{
    for (PlId p = 0; p < pls_.size(); p++) {
        for (PlId q = 0; q < pls_.size(); q++) {
            if (p == q)
                continue;
            FsmId fp = pls_[p].fsm, fq = pls_[q].fsm;
            if (fp != fq && !fsmConnected(fp, fq))
                continue;
            Sig prev_p{&b, plSigs[p].iuvPrevAt};
            Sig at_q{&b, plSigs[q].iuvAt};
            RegSig seen = b.regh(
                "hx_edge_" + plNames_[p] + "__" + plNames_[q], 1, 0);
            b.assign(seen, seen.q | (prev_p & at_q));
            edges_.push_back({p, q, seen.q.id});
        }
    }
}

std::vector<prop::ExprRef>
Harness::baseAssumes() const
{
    return {prop::pBit(encValidWire)};
}

prop::ExprRef
Harness::assumeIuvIs(InstrId i) const
{
    return prop::pBit(iuvIsWires[i]);
}

prop::ExprRef
Harness::assumeTxmIs(InstrId i) const
{
    return prop::pBit(txmIsWires[i]);
}

} // namespace rmp::designs
