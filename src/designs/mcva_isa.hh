/**
 * @file
 * The RV-lite ISA: 72 instructions mirroring the RV64IM instruction count
 * and class structure of the paper's CVA6 case study (§VI), mapped onto
 * MiniCVA's scaled datapath.
 *
 * Encoding (16-bit IFR word):
 *   [6:0]  opcode  — [6:4] = class, [3:0] = subop
 *   [8:7]  rd
 *   [10:9] rs1
 *   [12:11] rs2
 *   [15:13] imm (3 bits; byte-granular for control-flow targets)
 *
 * Classes: 0 ALU-reg, 1 ALU-imm (incl. LUI/AUIPC), 2 MUL, 3 DIV/REM,
 * 4 LOAD, 5 STORE, 6 BRANCH, 7 JUMP/SYSTEM.
 *
 * W-form instructions collapse onto their base-form subops: on the scaled
 * 8-bit datapath the 32/64-bit distinction has no analog, but keeping the
 * opcodes preserves the paper's per-class instruction counts (e.g. eight
 * DIV/REM variants, seven loads, four stores — §VII-A1).
 */

#ifndef DESIGNS_MCVA_ISA_HH
#define DESIGNS_MCVA_ISA_HH

#include <cstdint>
#include <vector>

#include "uhb/duv.hh"

namespace rmp::designs
{

/** Instruction classes as encoded in opcode[6:4]. */
enum McvaClass : uint64_t
{
    kClsAluReg = 0,
    kClsAluImm = 1,
    kClsMul = 2,
    kClsDiv = 3,
    kClsLoad = 4,
    kClsStore = 5,
    kClsBranch = 6,
    kClsJumpSys = 7,
};

/** ALU subops (shared by reg and imm forms). */
enum McvaAluOp : uint64_t
{
    kAluAdd = 0,
    kAluSub = 1,
    kAluSll = 2,
    kAluSlt = 3,
    kAluSltu = 4,
    kAluXor = 5,
    kAluSrl = 6,
    kAluSra = 7,
    kAluOr = 8,
    kAluAnd = 9,
    kAluLui = 10,   ///< result = imm
    kAluAuipc = 11, ///< result = pc + imm
};

/** Branch subops. */
enum McvaBrOp : uint64_t
{
    kBrEq = 0,
    kBrNe = 1,
    kBrLt = 2,
    kBrGe = 3,
    kBrLtu = 4,
    kBrGeu = 5,
};

/** Jump/system subops. */
enum McvaJmpOp : uint64_t
{
    kJmpJal = 0,
    kJmpJalr = 1,
    kSysFence = 2,
    kSysFenceI = 3,
    kSysEcall = 4,  ///< raises an exception at retire
    kSysEbreak = 5, ///< raises an exception at retire
    kSysCsrBase = 6, ///< six CSR ops occupy subops 6..11 (NOP semantics)
};

/** Compose an opcode from class and subop. */
constexpr uint64_t
mcvaOpcode(uint64_t cls, uint64_t subop)
{
    return (cls << 4) | subop;
}

/** The full 72-instruction table. */
std::vector<uhb::InstrSpec> mcvaInstrTable();

/** The artifact's 5-instruction subset: ADD, DIV, LW, SW, BEQ (App. I). */
std::vector<std::string> mcvaArtifactSubset();

/** One representative instruction per transmitter class (for Fig. 8). */
std::vector<std::string> mcvaClassRepresentatives();

} // namespace rmp::designs

#endif // DESIGNS_MCVA_ISA_HH
