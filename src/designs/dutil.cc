#include "designs/dutil.hh"

namespace rmp::designs
{

Sig
symbolicInit(Builder &b, MemArray &m, const std::string &prefix)
{
    RegSig booted = b.regh(prefix + "_booted", 1, 0);
    b.assign(booted, b.lit1(true));
    for (size_t i = 0; i < m.size(); i++) {
        Sig iv = b.input(prefix + "_init" + std::to_string(i),
                         m.wordWidth);
        b.when(~booted.q);
        b.assign(m.words[i], iv);
        b.end();
    }
    return booted.q;
}

} // namespace rmp::designs
