/**
 * @file
 * The standalone L1 data-cache DUV (§VII-A2).
 *
 * Mirrors the paper's CVA6 cache experiment: the cache plus its
 * controller are analyzed in isolation, with the model checker driving
 * load/store requests at the request port (the cache's "IFR") and
 * transaction ids serving as IIDs. Structure:
 *
 *   reqQ -> loads:  ldTag -> hit: rd$0 / rd$1 -> resp
 *                        -> miss: MSHR -> memPort(2 cycles) -> fill -> resp
 *        -> stores: wBVld -> hit:  {wRTag, wr$bank} -> memPort -> resp
 *                        -> miss: {wRTag}           -> memPort -> resp
 *
 * 2-way set-associative, 2 sets, one data bank per way, no-write-allocate
 * write-through stores with a 1-entry write buffer, a 1-entry MSHR, and a
 * single shared memory port that prioritizes load fetches — reproducing
 * the paper's findings: the ST_wBVld leakage function (Fig. 5: hit
 * selects a data bank) with LDs as *static* transmitters (fills change
 * later hit/miss) but STs not (no-write-allocate), plus dynamic
 * port-contention channels.
 *
 * Cache arrays (tags, valids, data, replacement state) are persistent
 * microarchitectural state for the Assumption-3 sticky-taint flush.
 *
 * Request encoding (7-bit word): [0] = op (0 load, 1 store),
 * [3:1] = address, [6:4] = data.
 */

#ifndef DESIGNS_DCACHE_HH
#define DESIGNS_DCACHE_HH

#include "designs/harness.hh"

namespace rmp::designs
{

/** Build the cache DUV (unfinalized; feed it to Harness). */
DuvUnderConstruction buildDcache();

} // namespace rmp::designs

#endif // DESIGNS_DCACHE_HH
