/**
 * @file
 * MiniCVA: the scaled CVA6 analog (DESIGN.md §1).
 *
 * A 6-stage in-order single-issue core with speculation and out-of-order
 * completion, mirroring the microarchitectural structure of the paper's
 * CVA6 case study (§VI):
 *
 *   IF buffer -> ID -> issue -> {aluU | mulU | divU | LSU} -> 2-entry
 *   FIFO scoreboard (collapsing) -> retire (scbCmt/scbExcp) ->
 *   [stores: specSTB -> comSTB -> memRq]
 *
 * Channels reproduced from the paper:
 *  - serial divider with dividend-dependent latency (1..8 cycles; the
 *    paper's 1..66-cycle divider, §VII-A1),
 *  - optional zero-skip multiplier (CVA6-MUL, Fig. 1): 1 cycle when an
 *    operand is zero, else 4,
 *  - optional operand packing (CVA6-OP, Fig. 2): back-to-back identical
 *    narrow-operand ALU ops share an ID slot,
 *  - store-to-load page-offset stalling (Fig. 4b / LD_issue in Fig. 5),
 *  - committed-store drain vs younger-load port priority — the paper's
 *    novel ST_comSTB channel enabling speculative interference (§VII-A1),
 *  - predict-not-taken branches and predicted JALR with operand-dependent
 *    flush (branches/JALR are dynamic transmitters; JAL is not),
 *  - the three CVA6 control-flow bugs (§VII-B2): JALR missing its target
 *    alignment check, JAL checking only 2-byte alignment, and branches
 *    raising misaligned-target exceptions regardless of outcome
 *    (present by default; fixAlignmentBugs enables correct behavior),
 *  - the SCB counter-width bug (§VII-B2): withScbCounterBug makes the
 *    occupancy check use a truncated counter, so one entry is never used.
 *
 * Scaling (documented in DESIGN.md): 8-bit datapath, 4 architectural
 * registers, 8-word memory, 2-entry scoreboard, 1-entry speculative and
 * committed store buffers.
 */

#ifndef DESIGNS_MCVA_HH
#define DESIGNS_MCVA_HH

#include "designs/harness.hh"

namespace rmp::designs
{

/** MiniCVA configuration. */
struct McvaConfig
{
    /** CVA6-MUL: zero-skip multiplier (1 vs 4 cycles). */
    bool withZeroSkipMul = false;
    /** CVA6-OP: operand packing for back-to-back narrow ALU ops. */
    bool withOperandPacking = false;
    /** Fix the three control-flow alignment bugs (§VII-B2). */
    bool fixAlignmentBugs = false;
    /** Plant the SCB counter-width bug (§VII-B2). */
    bool withScbCounterBug = false;
};

/** Build a MiniCVA DUV (unfinalized; feed it to Harness). */
DuvUnderConstruction buildMcva(const McvaConfig &cfg = {});

} // namespace rmp::designs

#endif // DESIGNS_MCVA_HH
