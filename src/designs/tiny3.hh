/**
 * @file
 * Tiny3: a 3-stage (IF buffer / EX / WB) in-order core used by the
 * quickstart example and as the first-light DUV for the tool pipeline.
 *
 * ISA: 4 opcodes over 4 registers of 8 bits — ADD, SUB, MUL (2-cycle
 * multiplier), NOP. Instruction word: [opcode(4) | rd(2) | rs1(2) |
 * rs2(2)], 10 bits.
 *
 * Two configurations:
 *  - baseline: MUL always takes 2 EX cycles. Younger instructions may
 *    stall behind it, so instructions exhibit >1 μPATH, but the path
 *    selection is operand-independent — μPATH variability WITHOUT leakage
 *    (the path selector function has only implicit inputs, §IV-C).
 *  - zero-skip (withZeroSkip): MUL finishes in 1 cycle when its rs1
 *    operand is zero (the CVA6-MUL optimization of Fig. 1 in miniature),
 *    making MUL an intrinsic and dynamic transmitter.
 */

#ifndef DESIGNS_TINY3_HH
#define DESIGNS_TINY3_HH

#include "designs/harness.hh"

namespace rmp::designs
{

/** Tiny3 configuration. */
struct Tiny3Config
{
    /** Zero-skip multiplier: 1-cycle MUL when rs1 operand is zero. */
    bool withZeroSkip = false;
};

/** Build a Tiny3 DUV (unfinalized; feed it to Harness). */
DuvUnderConstruction buildTiny3(const Tiny3Config &cfg = {});

} // namespace rmp::designs

#endif // DESIGNS_TINY3_HH
