#include "designs/mcva_isa.hh"

namespace rmp::designs
{

using uhb::InstrClass;
using uhb::InstrSpec;

std::vector<InstrSpec>
mcvaInstrTable()
{
    std::vector<InstrSpec> t;
    auto add = [&](const char *name, uint64_t cls, uint64_t subop,
                   InstrClass ic, bool rs1, bool rs2) {
        t.push_back({name, mcvaOpcode(cls, subop), ic, rs1, rs2});
    };

    // --- Class 0: register-register ALU (15, incl. W forms) ----------
    add("ADD", kClsAluReg, kAluAdd, InstrClass::Alu, true, true);
    add("SUB", kClsAluReg, kAluSub, InstrClass::Alu, true, true);
    add("SLL", kClsAluReg, kAluSll, InstrClass::Alu, true, true);
    add("SLT", kClsAluReg, kAluSlt, InstrClass::Alu, true, true);
    add("SLTU", kClsAluReg, kAluSltu, InstrClass::Alu, true, true);
    add("XOR", kClsAluReg, kAluXor, InstrClass::Alu, true, true);
    add("SRL", kClsAluReg, kAluSrl, InstrClass::Alu, true, true);
    add("SRA", kClsAluReg, kAluSra, InstrClass::Alu, true, true);
    add("OR", kClsAluReg, kAluOr, InstrClass::Alu, true, true);
    add("AND", kClsAluReg, kAluAnd, InstrClass::Alu, true, true);
    // W forms reuse base subops shifted into 10..14; decode maps them
    // back onto the base operation (see mcva.cc).
    add("ADDW", kClsAluReg, 10, InstrClass::Alu, true, true);
    add("SUBW", kClsAluReg, 11, InstrClass::Alu, true, true);
    add("SLLW", kClsAluReg, 12, InstrClass::Alu, true, true);
    add("SRLW", kClsAluReg, 13, InstrClass::Alu, true, true);
    add("SRAW", kClsAluReg, 14, InstrClass::Alu, true, true);

    // --- Class 1: immediate ALU + LUI/AUIPC (15) ----------------------
    add("ADDI", kClsAluImm, kAluAdd, InstrClass::Alu, true, false);
    add("SLTI", kClsAluImm, kAluSlt, InstrClass::Alu, true, false);
    add("SLTIU", kClsAluImm, kAluSltu, InstrClass::Alu, true, false);
    add("XORI", kClsAluImm, kAluXor, InstrClass::Alu, true, false);
    add("ORI", kClsAluImm, kAluOr, InstrClass::Alu, true, false);
    add("ANDI", kClsAluImm, kAluAnd, InstrClass::Alu, true, false);
    add("SLLI", kClsAluImm, kAluSll, InstrClass::Alu, true, false);
    add("SRLI", kClsAluImm, kAluSrl, InstrClass::Alu, true, false);
    add("SRAI", kClsAluImm, kAluSra, InstrClass::Alu, true, false);
    add("LUI", kClsAluImm, kAluLui, InstrClass::Alu, false, false);
    add("AUIPC", kClsAluImm, kAluAuipc, InstrClass::Alu, false, false);
    add("ADDIW", kClsAluImm, 12, InstrClass::Alu, true, false);
    add("SLLIW", kClsAluImm, 13, InstrClass::Alu, true, false);
    add("SRLIW", kClsAluImm, 14, InstrClass::Alu, true, false);
    add("SRAIW", kClsAluImm, 15, InstrClass::Alu, true, false);

    // --- Class 2: multiplier (5) --------------------------------------
    add("MUL", kClsMul, 0, InstrClass::Mul, true, true);
    add("MULH", kClsMul, 1, InstrClass::Mul, true, true);
    add("MULHSU", kClsMul, 2, InstrClass::Mul, true, true);
    add("MULHU", kClsMul, 3, InstrClass::Mul, true, true);
    add("MULW", kClsMul, 4, InstrClass::Mul, true, true);

    // --- Class 3: serial divider (8) ----------------------------------
    add("DIV", kClsDiv, 0, InstrClass::DivRem, true, true);
    add("DIVU", kClsDiv, 1, InstrClass::DivRem, true, true);
    add("REM", kClsDiv, 2, InstrClass::DivRem, true, true);
    add("REMU", kClsDiv, 3, InstrClass::DivRem, true, true);
    add("DIVW", kClsDiv, 4, InstrClass::DivRem, true, true);
    add("DIVUW", kClsDiv, 5, InstrClass::DivRem, true, true);
    add("REMW", kClsDiv, 6, InstrClass::DivRem, true, true);
    add("REMUW", kClsDiv, 7, InstrClass::DivRem, true, true);

    // --- Class 4: loads (7) --------------------------------------------
    add("LB", kClsLoad, 0, InstrClass::Load, true, false);
    add("LH", kClsLoad, 1, InstrClass::Load, true, false);
    add("LW", kClsLoad, 2, InstrClass::Load, true, false);
    add("LD", kClsLoad, 3, InstrClass::Load, true, false);
    add("LBU", kClsLoad, 4, InstrClass::Load, true, false);
    add("LHU", kClsLoad, 5, InstrClass::Load, true, false);
    add("LWU", kClsLoad, 6, InstrClass::Load, true, false);

    // --- Class 5: stores (4) --------------------------------------------
    add("SB", kClsStore, 0, InstrClass::Store, true, true);
    add("SH", kClsStore, 1, InstrClass::Store, true, true);
    add("SW", kClsStore, 2, InstrClass::Store, true, true);
    add("SD", kClsStore, 3, InstrClass::Store, true, true);

    // --- Class 6: branches (6) ------------------------------------------
    add("BEQ", kClsBranch, kBrEq, InstrClass::Branch, true, true);
    add("BNE", kClsBranch, kBrNe, InstrClass::Branch, true, true);
    add("BLT", kClsBranch, kBrLt, InstrClass::Branch, true, true);
    add("BGE", kClsBranch, kBrGe, InstrClass::Branch, true, true);
    add("BLTU", kClsBranch, kBrLtu, InstrClass::Branch, true, true);
    add("BGEU", kClsBranch, kBrGeu, InstrClass::Branch, true, true);

    // --- Class 7: jumps + system (12) ------------------------------------
    add("JAL", kClsJumpSys, kJmpJal, InstrClass::Jump, false, false);
    add("JALR", kClsJumpSys, kJmpJalr, InstrClass::Jump, true, false);
    add("FENCE", kClsJumpSys, kSysFence, InstrClass::Alu, false, false);
    add("FENCE.I", kClsJumpSys, kSysFenceI, InstrClass::Alu, false, false);
    add("ECALL", kClsJumpSys, kSysEcall, InstrClass::Alu, false, false);
    add("EBREAK", kClsJumpSys, kSysEbreak, InstrClass::Alu, false, false);
    add("CSRRW", kClsJumpSys, kSysCsrBase + 0, InstrClass::Alu, true,
        false);
    add("CSRRS", kClsJumpSys, kSysCsrBase + 1, InstrClass::Alu, true,
        false);
    add("CSRRC", kClsJumpSys, kSysCsrBase + 2, InstrClass::Alu, true,
        false);
    add("CSRRWI", kClsJumpSys, kSysCsrBase + 3, InstrClass::Alu, false,
        false);
    add("CSRRSI", kClsJumpSys, kSysCsrBase + 4, InstrClass::Alu, false,
        false);
    add("CSRRCI", kClsJumpSys, kSysCsrBase + 5, InstrClass::Alu, false,
        false);

    return t;
}

std::vector<std::string>
mcvaArtifactSubset()
{
    return {"ADD", "DIV", "LW", "SW", "BEQ"};
}

std::vector<std::string>
mcvaClassRepresentatives()
{
    return {"ADD", "MUL", "DIV", "LW", "SW", "BEQ", "JAL", "JALR"};
}

} // namespace rmp::designs
