/**
 * @file
 * The verification harness: the auxiliary verification-only state that the
 * paper adds around a DUV (§V-A, footnote 2).
 *
 * Given a design under construction plus its §V-A metadata, the harness:
 *
 *  - enumerates the candidate PL universe (every non-idle valuation of
 *    every μFSM's vars, §V-B1);
 *  - adds instruction-under-verification (IUV) tracking: a mark input
 *    binds one fetched instruction, whose PC then identifies it at every
 *    μFSM (the paper's IID mechanism, §III-C);
 *  - adds a second, independent transmitter (txm) mark for SynthLC's
 *    symbolic-IFT assumptions 1/2a/2b/3 (§V-C1, Fig. 7);
 *  - adds per-PL sticky visited flags, consecutive/non-consecutive revisit
 *    detectors, and visit counters (§V-B4, §V-B6);
 *  - adds per-candidate-HB-edge sticky observers, with candidates pruned
 *    by combinational connectivity between μFSMs (§V-B5);
 *  - provides the base assume set (valid instruction encodings, mark
 *    well-formedness) that every generated property includes.
 *
 * All of this state exists only in the verification environment, exactly
 * as in the paper ("removed prior to synthesis and fabrication").
 */

#ifndef DESIGNS_HARNESS_HH
#define DESIGNS_HARNESS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "prop/property.hh"
#include "rtlir/builder.hh"
#include "uhb/duv.hh"
#include "uhb/graph.hh"

namespace rmp::designs
{

/** A DUV mid-construction: design + open builder + filled-in metadata. */
struct DuvUnderConstruction
{
    std::shared_ptr<Design> design;
    std::shared_ptr<Builder> builder;
    uhb::DuvInfo info;
};

/** Per-PL harness signals. */
struct PlSignals
{
    SigId occupied = kNoSig;      ///< someone occupies this PL (wire)
    SigId iuvAt = kNoSig;         ///< the IUV occupies this PL (wire)
    SigId iuvPrevAt = kNoSig;     ///< iuvAt delayed one cycle (reg)
    SigId iuvVisited = kNoSig;    ///< sticky: IUV visited before now (reg)
    SigId revisitConsec = kNoSig; ///< sticky: >=2 consecutive visits
    SigId revisitNonconsec = kNoSig; ///< sticky: revisit after a gap
    SigId visitCount = kNoSig;    ///< saturating total-visit counter
    SigId maxRun = kNoSig;        ///< max consecutive-run length
    SigId txmAt = kNoSig;         ///< the transmitter occupies this PL
};

/**
 * The finalized, analysis-ready wrapper around a DUV.
 *
 * Construction finalizes the design; afterwards the Design is immutable
 * and all tool queries go through signals and assume-expressions exposed
 * here.
 */
class Harness
{
  public:
    explicit Harness(DuvUnderConstruction duc);

    const uhb::DuvInfo &duv() const { return info; }
    const Design &design() const { return *info.design; }

    /** @name PL universe (§V-B1 candidates, before reachability pruning) */
    /// @{
    size_t numPls() const { return pls_.size(); }
    const uhb::PerfLoc &pl(uhb::PlId p) const { return pls_[p]; }
    const std::string &plName(uhb::PlId p) const { return plNames_[p]; }
    const std::vector<std::string> &plNames() const { return plNames_; }
    const PlSignals &plSig(uhb::PlId p) const { return plSigs[p]; }
    /// @}

    /** @name Global IUV / transmitter tracking signals */
    /// @{
    SigId iuvTaken = kNoSig;   ///< sticky: IUV has been marked
    SigId iuvPc = kNoSig;      ///< latched PC of the IUV
    SigId iuvPresent = kNoSig; ///< wire: IUV occupies some PL now
    SigId iuvGone = kNoSig;    ///< wire: IUV was present earlier, not now
    SigId iuvCommitted = kNoSig; ///< sticky: IUV committed
    SigId markIuvFire = kNoSig;  ///< wire: the IUV is being marked now

    SigId txmTaken = kNoSig;
    SigId txmPc = kNoSig;
    SigId txmPresent = kNoSig;
    SigId txmGone = kNoSig;
    SigId markTxmFire = kNoSig;
    SigId txmAtIssue = kNoSig; ///< wire: transmitter at the issue stage
    SigId txmOlder = kNoSig;   ///< wire: txm PC < iuv PC (both taken)
    SigId txmSame = kNoSig;    ///< wire: txm PC == iuv PC (both taken)
    /// @}

    /** @name Candidate HB edges (§V-B5) */
    /// @{
    struct EdgeObserver
    {
        uhb::PlId from, to;
        SigId seen; ///< sticky: IUV at `from` one cycle before at `to`
    };
    const std::vector<EdgeObserver> &edgeObservers() const { return edges_; }
    /** True iff μFSM @p b's state cone combinationally reads μFSM @p a. */
    bool fsmConnected(uhb::FsmId a, uhb::FsmId b) const;
    /// @}

    /** @name Assume-expression builders */
    /// @{
    /** Base assumes every query includes (valid encodings etc.). */
    std::vector<prop::ExprRef> baseAssumes() const;
    /** The marked IUV is instruction @p i. */
    prop::ExprRef assumeIuvIs(uhb::InstrId i) const;
    /** The marked transmitter is instruction @p i. */
    prop::ExprRef assumeTxmIs(uhb::InstrId i) const;
    /// @}

    /** Width of the per-PL visit counters. */
    static constexpr unsigned kCountWidth = 7;

  private:
    void enumeratePls();
    void buildTracking(Builder &b);
    void buildEdgeObservers(Builder &b);
    void computeFsmConnectivity();

    uhb::DuvInfo info;
    std::vector<uhb::PerfLoc> pls_;
    std::vector<std::string> plNames_;
    std::vector<PlSignals> plSigs;
    std::vector<EdgeObserver> edges_;
    /** connectivity[a * numFsms + b] = b reads a combinationally. */
    std::vector<bool> connectivity;
    /** Per-instruction: wire asserting markIuvFire implies this opcode. */
    std::vector<SigId> iuvIsWires;
    std::vector<SigId> txmIsWires;
    SigId encValidWire = kNoSig;
    SigId pcWire = kNoSig;
};

} // namespace rmp::designs

#endif // DESIGNS_HARNESS_HH
