#include "designs/driver.hh"

#include "common/logging.hh"
#include "sim/batch.hh"

namespace rmp::designs
{

namespace
{

/** The compiled engine's watch set: everything run()'s own loop and the
 *  trace consumers (arfValue, observationTrace) read. fetchReady comes
 *  first so the driver can poll back-pressure from the recorded frame
 *  (it may be a register, whose raw slot latches ahead of the frame). */
std::vector<SigId>
observationWatch(const Harness &hx)
{
    std::vector<SigId> w;
    const uhb::DuvInfo &info = hx.duv();
    if (info.fetchReady != kNoSig)
        w.push_back(info.fetchReady);
    for (uhb::PlId p = 0; p < hx.numPls(); p++)
        w.push_back(hx.plSig(p).occupied);
    for (SigId r : info.arfRegs)
        w.push_back(r);
    return w;
}

} // anonymous namespace

ProgramDriver::ProgramDriver(const Harness &harness, bool compiled,
                             sim::SimBackend backend)
    : hx(harness), backend_(backend)
{
    if (compiled)
        tape_ = std::make_unique<sim::Tape>(
            sim::compileTape(hx.design(), observationWatch(hx)));
}

SimTrace
ProgramDriver::run(const std::vector<ProgInstr> &prog, unsigned total_cycles,
                   const InputMap &init)
{
    const uhb::DuvInfo &info = hx.duv();
    SigId mark_iuv = hx.design().findByName("hx_mark_iuv");
    SigId mark_txm = hx.design().findByName("hx_mark_txm");
    size_t pos = 0;
    unsigned wait = prog.empty() ? 0 : prog[0].delayBefore;

    if (!tape_) {
        Simulator sim(hx.design());
        sim.reserveTrace(total_cycles);
        for (unsigned t = 0; t < total_cycles; t++) {
            InputMap in;
            if (t == 0)
                in = init;
            bool offering = pos < prog.size() && wait == 0;
            if (offering) {
                in[info.fetchValid] = 1;
                in[info.ifr] = prog[pos].word;
                in[mark_iuv] = prog[pos].markIuv;
                in[mark_txm] = prog[pos].markTxm;
            }
            sim.step(in);
            if (wait > 0) {
                wait--;
            } else if (offering) {
                bool ready = info.fetchReady == kNoSig ||
                             sim.value(info.fetchReady);
                if (ready) {
                    pos++;
                    if (pos < prog.size())
                        wait = prog[pos].delayBefore;
                }
            }
        }
        rmp_assert(pos == prog.size(),
                   "program did not fully issue in %u cycles (%zu/%zu)",
                   total_cycles, pos, prog.size());
        return sim.trace();
    }

    sim::BatchSim bs(*tape_, 1, backend_);
    bs.reserveTrace(total_cycles);
    for (unsigned t = 0; t < total_cycles; t++) {
        bs.clearInputs();
        if (t == 0)
            bs.stageInputs(0, init);
        bool offering = pos < prog.size() && wait == 0;
        if (offering) {
            bs.stageInput(0, info.fetchValid, 1);
            bs.stageInput(0, info.ifr, prog[pos].word);
            bs.stageInput(0, mark_iuv, prog[pos].markIuv);
            bs.stageInput(0, mark_txm, prog[pos].markTxm);
        }
        bs.step();
        if (wait > 0) {
            wait--;
        } else if (offering) {
            bool ready = info.fetchReady == kNoSig ||
                         bs.watched(t, 0, 0) != 0;
            if (ready) {
                pos++;
                if (pos < prog.size())
                    wait = prog[pos].delayBefore;
            }
        }
    }
    rmp_assert(pos == prog.size(),
               "program did not fully issue in %u cycles (%zu/%zu)",
               total_cycles, pos, prog.size());
    return bs.laneTrace(0, hx.design().numCells());
}

uint64_t
ProgramDriver::arfValue(const SimTrace &trace, unsigned reg) const
{
    const auto &arf = hx.duv().arfRegs;
    rmp_assert(reg < arf.size(), "ARF index out of range");
    return trace.value(trace.numCycles() - 1, arf[reg]);
}

std::vector<uint64_t>
ProgramDriver::observationTrace(const SimTrace &trace) const
{
    rmp_assert(hx.numPls() <= 64, "too many PLs for a 64-bit observation");
    std::vector<uint64_t> obs;
    obs.reserve(trace.numCycles());
    for (size_t t = 0; t < trace.numCycles(); t++) {
        uint64_t bits = 0;
        for (uhb::PlId p = 0; p < hx.numPls(); p++)
            if (trace.value(t, hx.plSig(p).occupied))
                bits |= 1ULL << p;
        obs.push_back(bits);
    }
    return obs;
}

} // namespace rmp::designs
