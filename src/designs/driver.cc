#include "designs/driver.hh"

#include "common/logging.hh"

namespace rmp::designs
{

SimTrace
ProgramDriver::run(const std::vector<ProgInstr> &prog, unsigned total_cycles)
{
    const uhb::DuvInfo &info = hx.duv();
    Simulator sim(hx.design());
    SigId mark_iuv = hx.design().findByName("hx_mark_iuv");
    SigId mark_txm = hx.design().findByName("hx_mark_txm");
    size_t pos = 0;
    unsigned wait = prog.empty() ? 0 : prog[0].delayBefore;
    for (unsigned t = 0; t < total_cycles; t++) {
        InputMap in;
        bool offering = pos < prog.size() && wait == 0;
        if (offering) {
            in[info.fetchValid] = 1;
            in[info.ifr] = prog[pos].word;
            in[mark_iuv] = prog[pos].markIuv;
            in[mark_txm] = prog[pos].markTxm;
        }
        sim.step(in);
        if (wait > 0) {
            wait--;
        } else if (offering) {
            bool ready = info.fetchReady == kNoSig ||
                         sim.value(info.fetchReady);
            if (ready) {
                pos++;
                if (pos < prog.size())
                    wait = prog[pos].delayBefore;
            }
        }
    }
    rmp_assert(pos == prog.size(),
               "program did not fully issue in %u cycles (%zu/%zu)",
               total_cycles, pos, prog.size());
    return sim.trace();
}

uint64_t
ProgramDriver::arfValue(const SimTrace &trace, unsigned reg) const
{
    const auto &arf = hx.duv().arfRegs;
    rmp_assert(reg < arf.size(), "ARF index out of range");
    return trace.value(trace.numCycles() - 1, arf[reg]);
}

std::vector<uint64_t>
ProgramDriver::observationTrace(const SimTrace &trace) const
{
    rmp_assert(hx.numPls() <= 64, "too many PLs for a 64-bit observation");
    std::vector<uint64_t> obs;
    obs.reserve(trace.numCycles());
    for (size_t t = 0; t < trace.numCycles(); t++) {
        uint64_t bits = 0;
        for (uhb::PlId p = 0; p < hx.numPls(); p++)
            if (trace.value(t, hx.plSig(p).occupied))
                bits |= 1ULL << p;
        obs.push_back(bits);
    }
    return obs;
}

} // namespace rmp::designs
