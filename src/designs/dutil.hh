/**
 * @file
 * Shared DUV construction utilities.
 */

#ifndef DESIGNS_DUTIL_HH
#define DESIGNS_DUTIL_HH

#include "rtlir/builder.hh"

namespace rmp::designs
{

/**
 * Symbolically initialize architectural state at reset (§V-B: "only
 * architectural state is symbolically initialized"). Each word of @p m is
 * loaded from a fresh input during the first cycle after reset, letting
 * the model checker choose arbitrary initial ARF/AMEM contents. The
 * simulator leaves unspecified inputs at zero, so functional tests see a
 * zero-initialized machine unless they drive the init inputs explicitly.
 *
 * @return the "booted" wire (false during the init cycle only).
 */
Sig symbolicInit(Builder &b, MemArray &m, const std::string &prefix);

} // namespace rmp::designs

#endif // DESIGNS_DUTIL_HH
