#include "designs/dcache.hh"

#include "common/logging.hh"
#include "designs/dutil.hh"

namespace rmp::designs
{

using namespace uhb;

DuvUnderConstruction
buildDcache()
{
    DuvUnderConstruction duc;
    duc.design = std::make_shared<Design>("dcache");
    duc.builder = std::make_shared<Builder>(*duc.design);
    Builder &b = *duc.builder;
    DuvInfo &info = duc.info;
    info.design = duc.design;
    info.name = "dcache";

    constexpr unsigned kData = 8;
    constexpr unsigned kAddrW = 3; // set = addr[0], tag = addr[2:1]
    constexpr unsigned kPcW = 5;   // transaction-id width

    auto L = [&](unsigned w, uint64_t v) { return b.lit(w, v); };
    auto L1 = [&](bool v) { return b.lit1(v); };

    // ---- Request port (the cache's "frontend") ------------------------
    Sig req_valid = b.input("req_valid", 1);
    Sig req_word = b.input("req_word", 7);
    RegSig txn_ctr = b.regh("txn_ctr", kPcW, 0);

    // ---- Request queue (1 entry) -------------------------------------
    RegSig rq_valid = b.regh("rq_valid", 1, 0);
    RegSig rq_pc = b.regh("rq_pc", kPcW, 0);
    RegSig rq_is_st = b.regh("rq_is_st", 1, 0);
    RegSig rq_addr = b.regh("rq_addr", kAddrW, 0);
    RegSig rq_data = b.regh("rq_data", kData, 0);

    // ---- Load path ------------------------------------------------------
    RegSig ldtag_v = b.regh("ldtag_v", 1, 0);
    RegSig ld_pc = b.regh("ld_pc", kPcW, 0);
    RegSig ld_addr = b.regh("ld_addr", kAddrW, 0);
    RegSig rd0_v = b.regh("rd0_v", 1, 0); // data-bank 0 read (way 0 hit)
    RegSig rd1_v = b.regh("rd1_v", 1, 0); // data-bank 1 read (way 1 hit)
    RegSig mshr_v = b.regh("mshr_v", 1, 0);
    RegSig fill_v = b.regh("fill_v", 1, 0);

    // ---- Store path ------------------------------------------------------
    RegSig wbv = b.regh("wbv", 1, 0); // write buffer valid (wBVld)
    RegSig st_pc = b.regh("st_pc", kPcW, 0);
    RegSig st_addr = b.regh("st_addr", kAddrW, 0);
    RegSig st_data = b.regh("st_data", kData, 0);
    RegSig wrtag_v = b.regh("wrtag_v", 1, 0);
    RegSig wrb0_v = b.regh("wrb0_v", 1, 0); // wr$0
    RegSig wrb1_v = b.regh("wrb1_v", 1, 0); // wr$1
    RegSig st_hit_way = b.regh("st_hit_way", 1, 0);
    RegSig st_memw = b.regh("st_memw", 1, 0); // waiting for write-through

    // ---- Shared memory port (loads prioritized) ------------------------
    RegSig mem_busy = b.regh("mem_busy", 1, 0);
    RegSig mem_pc = b.regh("mem_pc", kPcW, 0);
    RegSig mem_is_st = b.regh("mem_is_st", 1, 0);
    RegSig mem_cnt = b.regh("mem_cnt", 1, 0);
    RegSig mem_addr = b.regh("mem_addr", kAddrW, 0);
    RegSig mem_wdata = b.regh("mem_wdata", kData, 0);

    // ---- Response (the cache's "commit") -------------------------------
    RegSig resp_v = b.regh("resp_v", 1, 0);
    RegSig resp_pc = b.regh("resp_pc", kPcW, 0);
    RegSig resp_data = b.regh("resp_data", kData, 0);

    // ---- Cache arrays (persistent state) -------------------------------
    // tags[set*2+way] (2 bits), valid bits, data[set*2+way] per-way banks,
    // round-robin replacement bit per set.
    MemArray tags = b.mem("cacheTag", 4, 2);
    MemArray vbits = b.mem("cacheVld", 4, 1);
    MemArray datab = b.mem("cacheData", 4, kData);
    MemArray rr = b.mem("cacheRR", 2, 1);

    // ---- Backing memory (architectural) --------------------------------
    MemArray amem = b.mem("amem", 8, kData);
    symbolicInit(b, amem, "amem");

    // ---- Request acceptance ---------------------------------------------
    Sig in_is_st = req_word.bit(0);
    Sig in_addr = req_word.slice(1, 3);
    Sig in_data = req_word.slice(4, 3).zext(kData);
    Sig rq_dispatch_ld = rq_valid.q & ~rq_is_st.q & ~ldtag_v.q &
                         ~mshr_v.q & ~fill_v.q & ~rd0_v.q & ~rd1_v.q;
    Sig rq_dispatch_st = rq_valid.q & rq_is_st.q & ~wbv.q & ~wrtag_v.q &
                         ~st_memw.q;
    Sig rq_dispatch = b.named("rq_dispatch", rq_dispatch_ld | rq_dispatch_st);
    Sig req_ready = b.named("req_ready", ~rq_valid.q | rq_dispatch);
    Sig req_fire = b.named("req_fire", req_valid & req_ready);

    b.when(req_fire);
    b.assign(rq_valid, L1(true));
    b.assign(rq_pc, txn_ctr.q);
    b.assign(rq_is_st, in_is_st);
    b.assign(rq_addr, in_addr);
    b.assign(rq_data, in_data);
    b.assign(txn_ctr, txn_ctr.q + L(kPcW, 1));
    b.elseWhen(rq_dispatch);
    b.assign(rq_valid, L1(false));
    b.end();

    // ---- Tag lookup helpers ---------------------------------------------
    auto tag_of = [&](Sig addr) { return addr.slice(1, 2); };
    auto set_of = [&](Sig addr) { return addr.slice(0, 1); };
    auto way_idx = [&](Sig set, Sig way) {
        return b.cat(set, way); // index = set*2 + way
    };
    auto lookup = [&](Sig addr, Sig &hit, Sig &hit_way) {
        Sig set = set_of(addr);
        Sig t = tag_of(addr);
        Sig h0 = (b.memRead(tags, way_idx(set, L(1, 0))) == t) &
                 b.memRead(vbits, way_idx(set, L(1, 0))).bit(0);
        Sig h1 = (b.memRead(tags, way_idx(set, L(1, 1))) == t) &
                 b.memRead(vbits, way_idx(set, L(1, 1))).bit(0);
        hit = h0 | h1;
        hit_way = h1; // way 1 iff h1
    };

    // ---- Load pipeline ---------------------------------------------------
    b.when(rq_dispatch_ld);
    b.assign(ldtag_v, L1(true));
    b.assign(ld_pc, rq_pc.q);
    b.assign(ld_addr, rq_addr.q);
    b.otherwise();
    b.assign(ldtag_v, L1(false));
    b.end();

    Sig ld_hit, ld_hit_way;
    lookup(ld_addr.q, ld_hit, ld_hit_way);
    ld_hit = b.named("ld_hit", ldtag_v.q & ld_hit);

    // Hit: read the selected data bank next cycle.
    b.when(ld_hit & ~ld_hit_way);
    b.assign(rd0_v, L1(true));
    b.otherwise();
    b.assign(rd0_v, L1(false));
    b.end();
    b.when(ld_hit & ld_hit_way);
    b.assign(rd1_v, L1(true));
    b.otherwise();
    b.assign(rd1_v, L1(false));
    b.end();

    // Miss: allocate the MSHR and fetch through the memory port.
    Sig ld_miss = b.named("ld_miss", ldtag_v.q & ~ld_hit);
    b.when(ld_miss);
    b.assign(mshr_v, L1(true));
    b.end();

    // Memory-port arbitration: load fetch beats store write-through.
    Sig ld_wants_mem = mshr_v.q & ~mem_busy.q;
    Sig st_wants_mem = st_memw.q & ~mem_busy.q;
    Sig mem_start_ld = b.named("mem_start_ld", ld_wants_mem);
    Sig mem_start_st = b.named("mem_start_st", st_wants_mem & ~ld_wants_mem);
    Sig mem_done = b.named("mem_done", mem_busy.q & (mem_cnt.q == L(1, 1)));
    b.when(mem_start_ld | mem_start_st);
    b.assign(mem_busy, L1(true));
    b.assign(mem_pc, b.mux(mem_start_ld, ld_pc.q, st_pc.q));
    b.assign(mem_is_st, mem_start_st);
    b.assign(mem_addr, b.mux(mem_start_ld, ld_addr.q, st_addr.q));
    b.assign(mem_wdata, st_data.q);
    b.assign(mem_cnt, L(1, 0));
    b.elseWhen(mem_done);
    b.assign(mem_busy, L1(false));
    b.end();
    b.when(mem_busy.q & ~mem_done);
    b.assign(mem_cnt, L(1, 1));
    b.end();
    // Write-through commits to backing memory when the port finishes.
    b.memWrite(amem, mem_done & mem_is_st.q, mem_addr.q, mem_wdata.q);

    // Load fetch completes: fill the victim way (read-allocate).
    Sig ld_fetch_done = b.named("ld_fetch_done", mem_done & ~mem_is_st.q);
    b.when(ld_fetch_done);
    b.assign(mshr_v, L1(false));
    b.assign(fill_v, L1(true));
    b.elseWhen(fill_v.q);
    b.assign(fill_v, L1(false));
    b.end();
    Sig fill_set = set_of(ld_addr.q);
    Sig victim = b.memRead(rr, fill_set).bit(0);
    Sig fill_idx = way_idx(fill_set, victim);
    // Forward a pending write-through to a fill of the same address so
    // the cache never captures stale memory.
    Sig fetched = b.mux(st_memw.q & (st_addr.q == ld_addr.q), st_data.q,
                        b.memRead(amem, ld_addr.q));
    b.memWrite(tags, fill_v.q, fill_idx, tag_of(ld_addr.q));
    b.memWrite(vbits, fill_v.q, fill_idx, L(1, 1));
    b.memWrite(datab, fill_v.q, fill_idx, fetched);
    b.memWrite(rr, fill_v.q, fill_set, (~victim).zext(1));

    // ---- Store pipeline ---------------------------------------------------
    b.when(rq_dispatch_st);
    b.assign(wbv, L1(true));
    b.assign(st_pc, rq_pc.q);
    b.assign(st_addr, rq_addr.q);
    b.assign(st_data, rq_data.q);
    b.otherwise();
    b.assign(wbv, L1(false));
    b.end();

    Sig st_hit, st_hw;
    lookup(st_addr.q, st_hit, st_hw);
    st_hit = b.named("st_hit", wbv.q & st_hit);
    // The ST_wBVld decision (Fig. 5): hit -> {wRTag, wr$bank}; miss ->
    // {wRTag} only (no-write-allocate).
    b.when(wbv.q);
    b.assign(wrtag_v, L1(true));
    b.assign(st_hit_way, st_hw);
    b.assign(st_memw, L1(true));
    b.otherwise();
    b.assign(wrtag_v, L1(false));
    b.end();
    b.when(st_hit & ~st_hw);
    b.assign(wrb0_v, L1(true));
    b.otherwise();
    b.assign(wrb0_v, L1(false));
    b.end();
    b.when(st_hit & st_hw);
    b.assign(wrb1_v, L1(true));
    b.otherwise();
    b.assign(wrb1_v, L1(false));
    b.end();
    // Data-bank update on hit.
    Sig st_idx = way_idx(set_of(st_addr.q), st_hit_way.q);
    b.memWrite(datab, wrb0_v.q | wrb1_v.q, st_idx, st_data.q);
    // Write-through finishes when the memory port completes the store.
    Sig st_mem_done = b.named("st_mem_done", mem_done & mem_is_st.q);
    b.when(st_mem_done);
    b.assign(st_memw, L1(false));
    b.end();

    // ---- Responses --------------------------------------------------------
    Sig ld_resp = rd0_v.q | rd1_v.q | fill_v.q;
    Sig ld_rdata = b.mux(
        fill_v.q, fetched,
        b.memRead(datab, way_idx(set_of(ld_addr.q), rd1_v.q)));
    b.when(ld_resp);
    b.assign(resp_v, L1(true));
    b.assign(resp_pc, ld_pc.q);
    b.assign(resp_data, ld_rdata);
    b.elseWhen(st_mem_done);
    b.assign(resp_v, L1(true));
    b.assign(resp_pc, mem_pc.q);
    b.assign(resp_data, L(kData, 0));
    b.otherwise();
    b.assign(resp_v, L1(false));
    b.end();

    // ---- Metadata ----------------------------------------------------------
    info.ifr = req_word.id;
    info.fetchValid = req_valid.id;
    info.fetchReady = req_ready.id;
    info.fetchPc = txn_ctr.q.id;
    info.commit = resp_v.q.id;
    info.commitPc = resp_pc.q.id;
    info.opcodeLo = 0;
    info.opcodeWidth = 1;
    info.layout = {0, 0, 1, 3, 4, 3, 0, 0}; // rs1 = address, rs2 = data
    info.instrs = {
        {"LDREQ", 0, InstrClass::Load, true, false},
        {"STREQ", 1, InstrClass::Store, true, true},
    };
    info.fsms = {
        {"reqQ", rq_pc.q.id, {rq_valid.q.id}, {{0}}, {}},
        {"ldTag", ld_pc.q.id, {ldtag_v.q.id}, {{0}}, {}},
        {"rd$0", ld_pc.q.id, {rd0_v.q.id}, {{0}}, {}},
        {"rd$1", ld_pc.q.id, {rd1_v.q.id}, {{0}}, {}},
        {"MSHR", ld_pc.q.id, {mshr_v.q.id}, {{0}}, {}},
        {"fill", ld_pc.q.id, {fill_v.q.id}, {{0}}, {}},
        {"wBVld", st_pc.q.id, {wbv.q.id}, {{0}}, {}},
        {"stWait", st_pc.q.id, {st_memw.q.id}, {{0}}, {}},
        {"wRTag", st_pc.q.id, {wrtag_v.q.id}, {{0}}, {}},
        {"wr$0", st_pc.q.id, {wrb0_v.q.id}, {{0}}, {}},
        {"wr$1", st_pc.q.id, {wrb1_v.q.id}, {{0}}, {}},
        {"memPort", mem_pc.q.id, {mem_busy.q.id}, {{0}}, {}},
        {"resp", resp_pc.q.id, {resp_v.q.id}, {{0}}, {}},
    };
    // The request buffer's address/data registers are the "operand
    // registers" at the cache's issue point.
    info.rs1Reg = rq_addr.q.id;
    info.rs2Reg = rq_data.q.id;
    info.issueOccupied = rq_valid.q.id;
    info.issuePcr = rq_pc.q.id;
    for (const auto &w : amem.words)
        info.amemRegs.push_back(w.q.id);
    for (const auto &arr : {&tags, &vbits, &datab, &rr})
        for (const auto &w : arr->words)
            info.persistentRegs.push_back(w.q.id);
    info.completenessBound = 20;
    info.pcWidth = kPcW;
    return duc;
}

} // namespace rmp::designs
