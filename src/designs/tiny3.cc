#include "designs/tiny3.hh"

#include "common/logging.hh"
#include "designs/dutil.hh"

namespace rmp::designs
{

using namespace uhb;

DuvUnderConstruction
buildTiny3(const Tiny3Config &cfg)
{
    DuvUnderConstruction duc;
    duc.design = std::make_shared<Design>(cfg.withZeroSkip ? "tiny3-zs"
                                                           : "tiny3");
    duc.builder = std::make_shared<Builder>(*duc.design);
    Builder &b = *duc.builder;
    DuvInfo &info = duc.info;
    info.design = duc.design;
    info.name = duc.design->name();

    constexpr unsigned kData = 8; // datapath width
    constexpr unsigned kPcW = 4;  // fetch PC counter width
    constexpr uint64_t kOpNop = 0, kOpAdd = 1, kOpSub = 2, kOpMul = 3;

    // ---- Frontend interface -----------------------------------------
    Sig fetch_valid = b.input("fetch_valid", 1);
    Sig ifr = b.input("ifr", 10);

    RegSig pc_ctr = b.regh("pc_ctr", kPcW, 0);

    // ---- IF buffer -----------------------------------------------------
    RegSig if_valid = b.regh("if_valid", 1, 0);
    RegSig if_instr = b.regh("if_instr", 10, 0);
    RegSig if_pc = b.regh("if_pc", kPcW, 0);

    // ---- EX stage -------------------------------------------------------
    RegSig ex_valid = b.regh("ex_valid", 1, 0);
    RegSig ex_op = b.regh("ex_op", 4, 0);
    RegSig ex_rd = b.regh("ex_rd", 2, 0);
    RegSig ex_pc = b.regh("ex_pc", kPcW, 0);
    RegSig ex_a = b.regh("ex_a", kData, 0);
    RegSig ex_b = b.regh("ex_b", kData, 0);
    RegSig ex_cnt = b.regh("ex_cnt", 1, 0);
    RegSig ex_we = b.regh("ex_we", 1, 0);
    RegSig mulu_busy = b.regh("mulu_busy", 1, 0);

    // ---- WB stage ---------------------------------------------------
    RegSig wb_valid = b.regh("wb_valid", 1, 0);
    RegSig wb_we = b.regh("wb_we", 1, 0);
    RegSig wb_rd = b.regh("wb_rd", 2, 0);
    RegSig wb_val = b.regh("wb_val", kData, 0);
    RegSig wb_pc = b.regh("wb_pc", kPcW, 0);

    // ---- Architectural register file ---------------------------------
    // Symbolically initialized at reset, as in the paper's setup (§V-B).
    MemArray arf = b.mem("arf", 4, kData);
    symbolicInit(b, arf, "arf");

    // ---- Control ------------------------------------------------------
    Sig is_mul = ex_op.q == b.lit(4, kOpMul);
    Sig zero_skip = cfg.withZeroSkip
                        ? (ex_a.q == b.lit(kData, 0))
                        : b.lit1(false);
    // A MUL occupies EX for 2 cycles (1 if zero-skip applies); everything
    // else finishes in 1 cycle.
    Sig ex_done = b.named(
        "ex_done",
        ex_valid.q &
            b.mux(is_mul, (ex_cnt.q == b.lit(1, 1)) | zero_skip,
                  b.lit1(true)));
    Sig ex_accept = b.named("ex_accept", ~ex_valid.q | ex_done);
    Sig if_advance = b.named("if_advance", if_valid.q & ex_accept);
    Sig fetch_ready = b.named("fetch_ready", ~if_valid.q | if_advance);
    Sig fetch_fire = b.named("fetch_fire", fetch_valid & fetch_ready);

    // ---- IF buffer update ------------------------------------------
    b.when(fetch_fire);
    b.assign(if_valid, b.lit1(true));
    b.assign(if_instr, ifr);
    b.assign(if_pc, pc_ctr.q);
    b.assign(pc_ctr, pc_ctr.q + b.lit(kPcW, 1));
    b.elseWhen(if_advance);
    b.assign(if_valid, b.lit1(false));
    b.end();

    // ---- Operand read with bypass (EX-done result, then WB, then ARF).
    Sig rs1 = if_instr.q.slice(6, 2);
    Sig rs2 = if_instr.q.slice(8, 2);
    Sig ex_add = ex_a.q + ex_b.q;
    Sig ex_sub = ex_a.q - ex_b.q;
    Sig ex_mul = ex_a.q * ex_b.q;
    Sig ex_result = b.named(
        "ex_result",
        b.mux(ex_op.q == b.lit(4, kOpAdd), ex_add,
              b.mux(ex_op.q == b.lit(4, kOpSub), ex_sub, ex_mul)));
    auto read_operand = [&](Sig rs) {
        Sig val = b.memRead(arf, rs);
        val = b.mux(wb_valid.q & wb_we.q & (wb_rd.q == rs), wb_val.q, val);
        val = b.mux(ex_done & ex_we.q & (ex_rd.q == rs), ex_result, val);
        return val;
    };

    // ---- IF -> EX hand-off --------------------------------------------
    Sig if_op = if_instr.q.slice(0, 4);
    b.when(if_advance);
    b.assign(ex_valid, b.lit1(true));
    b.assign(ex_op, if_op);
    b.assign(ex_rd, if_instr.q.slice(4, 2));
    b.assign(ex_pc, if_pc.q);
    b.assign(ex_a, read_operand(rs1));
    b.assign(ex_b, read_operand(rs2));
    b.assign(ex_cnt, b.lit(1, 0));
    b.assign(ex_we, ~(if_op == b.lit(4, kOpNop)));
    b.assign(mulu_busy, if_op == b.lit(4, kOpMul));
    b.elseWhen(ex_done);
    b.assign(ex_valid, b.lit1(false));
    b.assign(mulu_busy, b.lit1(false));
    b.end();

    // MUL occupancy counter (advances while not done, not handing off).
    b.when(ex_valid.q & is_mul & ~ex_done);
    b.assign(ex_cnt, b.lit(1, 1));
    b.end();

    // ---- EX -> WB hand-off -------------------------------------------
    b.when(ex_done);
    b.assign(wb_valid, b.lit1(true));
    b.assign(wb_we, ex_we.q);
    b.assign(wb_rd, ex_rd.q);
    b.assign(wb_val, ex_result);
    b.assign(wb_pc, ex_pc.q);
    b.elseWhen(wb_valid.q);
    b.assign(wb_valid, b.lit1(false));
    b.end();

    // ---- Commit + ARF write ------------------------------------------
    Sig commit = b.named("commit", wb_valid.q);
    b.memWrite(arf, wb_valid.q & wb_we.q, wb_rd.q, wb_val.q);

    // ---- Metadata (§V-A) ------------------------------------------------
    info.ifr = ifr.id;
    info.fetchValid = fetch_valid.id;
    info.fetchReady = fetch_ready.id;
    info.fetchPc = pc_ctr.q.id;
    info.commit = commit.id;
    info.commitPc = wb_pc.q.id;
    info.opcodeLo = 0;
    info.opcodeWidth = 4;
    info.layout = {4, 2, 6, 2, 8, 2, 0, 0};
    info.instrs = {
        {"NOP", kOpNop, InstrClass::Alu, false, false},
        {"ADD", kOpAdd, InstrClass::Alu, true, true},
        {"SUB", kOpSub, InstrClass::Alu, true, true},
        {"MUL", kOpMul, InstrClass::Mul, true, true},
    };
    info.fsms = {
        {"IF", if_pc.q.id, {if_valid.q.id}, {{0}}},
        {"EX", ex_pc.q.id, {ex_valid.q.id}, {{0}}},
        {"mulU", ex_pc.q.id, {mulu_busy.q.id}, {{0}}},
        {"WB", wb_pc.q.id, {wb_valid.q.id}, {{0}}},
    };
    info.rs1Reg = ex_a.q.id;
    info.rs2Reg = ex_b.q.id;
    // The operand registers belong to the EX stage: an instruction's
    // operands sit in ex_a/ex_b exactly while it occupies EX, so EX is
    // the taint-introduction point (§V-A "operand registers, located at
    // the issue or register read stage").
    info.issueOccupied = ex_valid.q.id;
    info.issuePcr = ex_pc.q.id;
    for (const auto &w : arf.words)
        info.arfRegs.push_back(w.q.id);
    info.completenessBound = 12;
    info.pcWidth = kPcW;
    return duc;
}

} // namespace rmp::designs
