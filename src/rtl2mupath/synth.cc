#include "rtl2mupath/synth.hh"
#include <functional>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <cstdio>

#include "analysis/fsmreach.hh"
#include "common/logging.hh"
#include "obs/progress.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace rmp::r2m
{

using namespace uhb;
using namespace prop;
using bmc::CoverResult;
using bmc::Outcome;

namespace
{

enum Step : size_t
{
    kSimExplore = 0,
    kDuvPl,
    kIuvPl,
    kPrune,
    kSetReach,
    kRevisit,
    kHbEdge,
    kRevisitCount,
    kDecision,
    kNumSteps,
};

const char *kStepNames[kNumSteps] = {
    "0:sim-explore (runs)", "1:duv-pl-reach", "2:iuv-pl-reach",
    "3:dom-excl-prune", "4:pl-set-reach", "5:revisit-class", "6:hb-edges",
    "6b:revisit-counts", "7:decisions",
};

/** Named-field engine configuration (positional init breaks silently as
 *  EngineConfig grows). Witness validation rides the compiled tape
 *  engine: the synthesizer only reads the harness PL trackers (and the
 *  queries' own supports, added automatically) from witness traces. */
bmc::EngineConfig
engineConfigFor(const designs::Harness &hx, const SynthesisConfig &config)
{
    bmc::EngineConfig ec;
    ec.bound = hx.duv().completenessBound;
    ec.budget = config.budget;
    ec.validateWitnesses = true;
    ec.coiPruning = config.coiPruning;
    ec.auditReplay = config.auditReplay;
    ec.auditProof = config.auditProof;
    ec.compiledReplay = true;
    ec.simBackend = config.explore.backend;
    if (config.staticPrune) {
        ec.staticPrune = true;
        // μFSM state variables are the control registers whose reachable
        // sets sharpen the fixpoint (unreachable PL valuations are what
        // the occupancy covers mostly ask about).
        std::vector<SigId> ctrl;
        for (const uhb::MicroFsm &fsm : hx.duv().fsms)
            for (SigId v : fsm.vars)
                ctrl.push_back(v);
        ec.staticFacts = std::make_shared<const analysis::AbsFacts>(
            analysis::staticFacts(hx.design(), ctrl));
    }
    ec.witnessWatch.push_back(hx.iuvGone);
    for (uhb::PlId p = 0; p < hx.numPls(); p++) {
        const designs::PlSignals &ps = hx.plSig(p);
        ec.witnessWatch.push_back(ps.occupied);
        ec.witnessWatch.push_back(ps.iuvAt);
        ec.witnessWatch.push_back(ps.iuvVisited);
        ec.witnessWatch.push_back(ps.visitCount);
    }
    return ec;
}

} // anonymous namespace

MuPathSynthesizer::MuPathSynthesizer(const designs::Harness &harness,
                                     const SynthesisConfig &config)
    : hx(harness), cfg(config),
      pool_(harness.design(), engineConfigFor(harness, config),
            exec::ExecConfig{config.jobs, config.lanes}),
      base(harness.baseAssumes())
{
    stats_.resize(kNumSteps);
    for (size_t i = 0; i < kNumSteps; i++)
        stats_[i].step = kStepNames[i];
}

exec::Query
MuPathSynthesizer::mkQuery(const ExprRef &seq,
                           std::vector<ExprRef> assumes) const
{
    for (const auto &a : base)
        assumes.push_back(a);
    return exec::Query{seq, std::move(assumes), -1};
}

namespace
{

void
tallyQuery(StepStats &st, const CoverResult &r)
{
    st.queries++;
    st.seconds += r.seconds;
    switch (r.outcome) {
      case Outcome::Reachable: st.reachable++; break;
      case Outcome::Unreachable: st.unreachable++; break;
      case Outcome::Undetermined: st.undetermined++; break;
    }
}

void
traceQuery(const Design &d, size_t step, const exec::Query &q,
           const CoverResult &r)
{
    static const bool trace = std::getenv("RMP_TRACE_QUERIES") != nullptr;
    if (trace)
        std::fprintf(stderr, "[%s %s %.2fs] %s\n", kStepNames[step],
                     bmc::outcomeName(r.outcome), r.seconds,
                     q.seq->str(d).substr(0, 60).c_str());
}

} // anonymous namespace

CoverResult
MuPathSynthesizer::query(size_t step, const ExprRef &seq,
                         std::vector<ExprRef> assumes)
{
    exec::Query q = mkQuery(seq, std::move(assumes));
    CoverResult r = pool_.eval(q);
    traceQuery(hx.design(), step, q, r);
    tallyQuery(stats_[step], r);
    if (obs::enabled())
        obs::Registry::global()
            .counter("r2m.covers", {{"step", kStepNames[step]},
                                    {"design", hx.design().name()}})
            .add(1);
    return r;
}

std::vector<CoverResult>
MuPathSynthesizer::queryBatch(size_t step, std::vector<exec::Query> qs)
{
    std::vector<CoverResult> rs = pool_.evalBatch(qs);
    for (size_t i = 0; i < rs.size(); i++) {
        traceQuery(hx.design(), step, qs[i], rs[i]);
        tallyQuery(stats_[step], rs[i]);
    }
    if (obs::enabled() && !rs.empty())
        obs::Registry::global()
            .counter("r2m.covers", {{"step", kStepNames[step]},
                                    {"design", hx.design().name()}})
            .add(rs.size());
    obs::progress(kStepNames[step], stats_[step].queries, 0,
                  hx.design().name());
    return rs;
}

const SimFacts &
MuPathSynthesizer::facts(InstrId iuv)
{
    auto it = factsCache.find(iuv);
    if (it != factsCache.end())
        return it->second;
    SimFacts f;
    if (cfg.useSimExploration) {
        obs::Span span("sim-explore", "r2m");
        span.arg("iuv", iuv);
        span.arg("runs", cfg.explore.runs);
        auto t0 = std::chrono::steady_clock::now();
        f = exploreSim(hx, iuv, cfg.explore);
        auto t1 = std::chrono::steady_clock::now();
        StepStats &st = stats_[kSimExplore];
        st.queries += cfg.explore.runs;
        st.reachable += f.sets.size();
        st.seconds += std::chrono::duration<double>(t1 - t0).count();
    }
    return factsCache.emplace(iuv, std::move(f)).first->second;
}

bool
MuPathSynthesizer::isReach(const CoverResult &r) const
{
    if (r.outcome == Outcome::Undetermined)
        return cfg.undeterminedAsReachable;
    return r.outcome == Outcome::Reachable;
}

const std::vector<PlId> &
MuPathSynthesizer::duvPls()
{
    if (duvPlsDone)
        return duvPls_;
    // Step-1 covers are mutually independent: one batch through the pool.
    std::vector<exec::Query> qs;
    for (PlId p = 0; p < hx.numPls(); p++)
        qs.push_back(mkQuery(pBit(hx.plSig(p).occupied), {}));
    std::vector<CoverResult> rs = queryBatch(kDuvPl, std::move(qs));
    for (PlId p = 0; p < hx.numPls(); p++)
        if (isReach(rs[p]))
            duvPls_.push_back(p);
    duvPlsDone = true;
    return duvPls_;
}

std::vector<PlId>
MuPathSynthesizer::iuvPls(InstrId iuv)
{
    const SimFacts &f = facts(iuv);
    // Per-PL step-2 covers are independent; batch the ones simulation did
    // not already discharge, then merge in original PL order.
    std::vector<std::pair<PlId, int>> slots; // (pl, query idx | -1)
    std::vector<exec::Query> qs;
    for (PlId p : duvPls()) {
        if (f.iuvPls.count(p)) {
            slots.emplace_back(p, -1); // reachable with a sim witness
            continue;
        }
        if (!cfg.closureChecks && cfg.useSimExploration)
            continue; // semi-formal profile: unobserved => unreachable
        slots.emplace_back(p, static_cast<int>(qs.size()));
        qs.push_back(
            mkQuery(pBit(hx.plSig(p).iuvAt), {hx.assumeIuvIs(iuv)}));
    }
    std::vector<CoverResult> rs = queryBatch(kIuvPl, std::move(qs));
    std::vector<PlId> out;
    for (auto [p, qi] : slots)
        if (qi < 0 || isReach(rs[qi]))
            out.push_back(p);
    return out;
}

PruneFacts
MuPathSynthesizer::pruneFacts(InstrId iuv, const std::vector<PlId> &iuv_pls)
{
    PruneFacts f;
    f.iuvPls = iuv_pls;
    size_t n = iuv_pls.size();
    f.dom.assign(n, std::vector<bool>(n, false));
    f.excl.assign(n, std::vector<bool>(n, false));
    f.mandatory.assign(n, false);
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    ExprRef gone = pBit(hx.iuvGone);

    // Mandatory: no completed execution misses the PL. The n covers are
    // independent: one batch.
    {
        std::vector<exec::Query> qs;
        for (size_t i = 0; i < n; i++) {
            ExprRef vis = pBit(hx.plSig(iuv_pls[i]).iuvVisited);
            qs.push_back(mkQuery(pAnd(gone, pNot(vis)), {is_iuv}));
        }
        std::vector<CoverResult> rs = queryBatch(kPrune, std::move(qs));
        // Note the polarity: an unreachable cover *proves* the fact; an
        // undetermined one must conservatively deny it (§VII-B4).
        for (size_t i = 0; i < n; i++)
            f.mandatory[i] = rs[i].outcome == Outcome::Unreachable;
    }
    // Exclusive / dominance facts. Which dominance covers run depends only
    // on the mandatory wave above, so the remaining O(n^2) covers form a
    // second independent batch (same queries and skip rule as issuing them
    // sequentially).
    {
        struct Slot
        {
            size_t i, j;
            bool excl;
        };
        std::vector<Slot> slots;
        std::vector<exec::Query> qs;
        for (size_t i = 0; i < n; i++) {
            for (size_t j = 0; j < n; j++) {
                if (i == j)
                    continue;
                ExprRef vi = pBit(hx.plSig(iuv_pls[i]).iuvVisited);
                ExprRef vj = pBit(hx.plSig(iuv_pls[j]).iuvVisited);
                if (i < j) {
                    // Exclusive: both visited is unreachable.
                    slots.push_back({i, j, true});
                    qs.push_back(mkQuery(pAnd(vi, vj), {is_iuv}));
                }
                if (f.mandatory[i])
                    continue; // dominance implied; skip the query
                // dom[i][j]: visiting j implies visiting i.
                slots.push_back({i, j, false});
                qs.push_back(
                    mkQuery(pAnd(gone, pAnd(vj, pNot(vi))), {is_iuv}));
            }
        }
        std::vector<CoverResult> rs = queryBatch(kPrune, std::move(qs));
        for (size_t k = 0; k < slots.size(); k++) {
            bool proven = rs[k].outcome == Outcome::Unreachable;
            const Slot &s = slots[k];
            if (s.excl) {
                f.excl[s.i][s.j] = proven;
                f.excl[s.j][s.i] = proven;
            } else {
                f.dom[s.i][s.j] = proven;
            }
        }
    }
    for (size_t i = 0; i < n; i++)
        if (f.mandatory[i])
            for (size_t j = 0; j < n; j++)
                if (i != j)
                    f.dom[i][j] = true;
    return f;
}

std::vector<std::vector<PlId>>
MuPathSynthesizer::enumerateCandidateSets(const PruneFacts &f) const
{
    size_t n = f.iuvPls.size();
    std::vector<std::vector<PlId>> out;
    // DFS over include/exclude with constraint propagation.
    std::vector<int> state(n, -1); // -1 undecided, 0 out, 1 in
    struct Frame
    {
        size_t idx;
        int choice;
    };
    std::vector<uint8_t> chosen(n, 0);

    std::function<bool(const std::vector<int> &)> consistent =
        [&](const std::vector<int> &st) {
            for (size_t i = 0; i < n; i++) {
                if (st[i] != 1)
                    continue;
                for (size_t j = 0; j < n; j++) {
                    if (st[j] == 1 && f.excl[i][j])
                        return false;
                    // dom[j][i]: i needs j.
                    if (f.dom[j][i] && st[j] == 0)
                        return false;
                }
            }
            return true;
        };

    std::function<void(size_t)> rec = [&](size_t idx) {
        if (out.size() >= cfg.maxCandidateSets)
            return;
        if (idx == n) {
            std::vector<PlId> set;
            for (size_t i = 0; i < n; i++)
                if (state[i] == 1)
                    set.push_back(f.iuvPls[i]);
            if (!set.empty())
                out.push_back(std::move(set));
            return;
        }
        for (int choice : {1, 0}) {
            if (choice == 0 && f.mandatory[idx])
                continue;
            state[idx] = choice;
            if (consistent(state))
                rec(idx + 1);
        }
        state[idx] = -1;
    };
    rec(0);
    return out;
}

ExprRef
MuPathSynthesizer::exprVisitedExactly(const std::vector<PlId> &iuv_pls,
                                      const std::vector<PlId> &set) const
{
    std::vector<ExprRef> terms;
    for (PlId p : iuv_pls) {
        bool in = std::find(set.begin(), set.end(), p) != set.end();
        ExprRef v = pBit(hx.plSig(p).iuvVisited);
        terms.push_back(in ? v : pNot(v));
    }
    return pAndN(terms);
}

UPath
MuPathSynthesizer::buildPath(InstrId iuv, const std::vector<PlId> &set,
                             const bmc::Witness &witness)
{
    UPath path;
    path.instr = iuv;
    path.plSet.insert(set.begin(), set.end());

    // Extract the concrete schedule from the replayed witness trace.
    const SimTrace &tr = witness.trace;
    int first = -1, last = -1;
    std::vector<std::vector<PlId>> sched;
    for (size_t t = 0; t < tr.numCycles(); t++) {
        std::vector<PlId> now;
        for (PlId p : set)
            if (tr.value(t, hx.plSig(p).iuvAt))
                now.push_back(p);
        if (!now.empty()) {
            if (first < 0)
                first = static_cast<int>(t);
            last = static_cast<int>(t);
        }
        sched.push_back(std::move(now));
    }
    rmp_assert(first >= 0, "witness contains no IUV visit");
    path.schedule.assign(sched.begin() + first, sched.begin() + last + 1);
    return path;
}

std::vector<std::pair<std::vector<PlId>, bmc::Witness>>
MuPathSynthesizer::reachableSetsPaper(InstrId iuv,
                                      const std::vector<PlId> &iuv_pls)
{
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    ExprRef gone = pBit(hx.iuvGone);
    PruneFacts facts = pruneFacts(iuv, iuv_pls);
    auto cands = enumerateCandidateSets(facts);
    // One exact-visited-set cover per surviving candidate, all mutually
    // independent: a single batch through the pool.
    std::vector<exec::Query> qs;
    for (const auto &set : cands) {
        ExprRef exact = exprVisitedExactly(iuv_pls, set);
        qs.push_back(mkQuery(pAnd(gone, exact), {is_iuv}));
    }
    std::vector<CoverResult> rs = queryBatch(kSetReach, std::move(qs));
    std::vector<std::pair<std::vector<PlId>, bmc::Witness>> out;
    for (size_t k = 0; k < cands.size(); k++)
        if (rs[k].outcome == Outcome::Reachable)
            out.emplace_back(cands[k], std::move(rs[k].witness));
    return out;
}

std::vector<std::pair<std::vector<PlId>, bmc::Witness>>
MuPathSynthesizer::reachableSetsAllSat(InstrId iuv,
                                       const std::vector<PlId> &iuv_pls)
{
    // Witness-driven enumeration: ask for any completed execution whose
    // exact visited set is none of the sets found so far; each witness
    // contributes one new Reachable PL Set. Unreachable terminates the
    // enumeration with the same bound-completeness guarantee as the
    // per-candidate covers; Undetermined terminates it conservatively
    // (flagged in the step statistics, §VII-B4).
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    ExprRef gone = pBit(hx.iuvGone);
    std::vector<std::pair<std::vector<PlId>, bmc::Witness>> out;
    std::vector<ExprRef> assumes{is_iuv};
    for (const auto &[set, sf] : facts(iuv).sets) {
        out.emplace_back(set, sf.witness);
        assumes.push_back(
            pNot(pAnd(gone, exprVisitedExactly(iuv_pls, set))));
    }
    while (out.size() < cfg.maxCandidateSets) {
        CoverResult r = query(kSetReach, gone, assumes);
        if (r.outcome != Outcome::Reachable)
            break;
        // Read the exact visited set off the frozen tail of the trace.
        const SimTrace &tr = r.witness.trace;
        size_t last = tr.numCycles() - 1;
        std::vector<PlId> set;
        for (PlId p : iuv_pls)
            if (tr.value(last, hx.plSig(p).iuvVisited))
                set.push_back(p);
        rmp_assert(!set.empty(), "gone with empty visited set");
        // Block this set: no later witness may end gone with exactly it.
        assumes.push_back(
            pNot(pAnd(gone, exprVisitedExactly(iuv_pls, set))));
        out.emplace_back(std::move(set), std::move(r.witness));
    }
    return out;
}

uhb::InstrPaths
MuPathSynthesizer::synthesize(InstrId iuv)
{
    obs::Span span("r2m-synthesize", "r2m");
    span.arg("iuv", iuv);
    InstrPaths result;
    result.instr = iuv;
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    ExprRef gone = pBit(hx.iuvGone);

    std::vector<PlId> ipls = iuvPls(iuv);
    auto sets = cfg.usePaperEnumeration ? reachableSetsPaper(iuv, ipls)
                                        : reachableSetsAllSat(iuv, ipls);

    const SimFacts &sfacts = facts(iuv);

    // Negative facts (no revisit / no edge / no count anywhere) are
    // established ONCE per instruction by unconditioned covers and shared
    // across sets; a reachable witness is attributed to the exact set it
    // exhibits (read off its trace), preserving per-set precision without
    // the paper's per-(set, fact) query blowup. "Once" is enforced by the
    // engine pool's query cache: re-issuing the identical cover from a
    // later set replays the memoized verdict (and its witness) without
    // touching a solver.
    auto witness_set_of = [&](const bmc::Witness &w) {
        std::vector<PlId> s;
        size_t last = w.trace.numCycles() - 1;
        for (PlId p : ipls)
            if (w.trace.value(last, hx.plSig(p).iuvVisited))
                s.push_back(p);
        return s;
    };
    // Per-set extra positives discovered through global witnesses.
    std::map<std::vector<PlId>, std::set<PlId>> extra_consec,
        extra_nonconsec;
    std::map<std::vector<PlId>, std::set<std::pair<PlId, PlId>>>
        extra_edges;
    auto glob_check = [&](PlId p, SigId flag,
                          std::map<std::vector<PlId>, std::set<PlId>>
                              &extra) {
        if (!cfg.closureChecks)
            return 0;
        CoverResult r =
            query(kRevisit, pAnd(gone, pBit(flag)), {is_iuv});
        int v = r.outcome == Outcome::Reachable ? 1 : 0;
        if (v) // idempotent on a cache-hit replay of the same witness
            extra[witness_set_of(r.witness)].insert(p);
        return v;
    };

    for (auto &[set, witness] : sets) {
        ExprRef exact = exprVisitedExactly(ipls, set);
        UPath path = buildPath(iuv, set, witness);
        const SimSetFact *sf = nullptr;
        auto sfit = sfacts.sets.find(set);
        if (sfit != sfacts.sets.end())
            sf = &sfit->second;

        // Step 5: revisit classification (sim-observed per set; global
        // fallback otherwise).
        for (PlId p : set) {
            bool c = (sf && sf->consec.count(p)) ||
                     extra_consec[set].count(p);
            bool nc = (sf && sf->nonconsec.count(p)) ||
                      extra_nonconsec[set].count(p);
            if (!c && glob_check(p, hx.plSig(p).revisitConsec,
                                 extra_consec))
                c = extra_consec[set].count(p) != 0;
            if (!nc && glob_check(p, hx.plSig(p).revisitNonconsec,
                                  extra_nonconsec))
                nc = extra_nonconsec[set].count(p) != 0;
            path.revisit[p] = c && nc ? Revisit::Both
                              : c     ? Revisit::Consecutive
                              : nc    ? Revisit::NonConsecutive
                                      : Revisit::None;
        }

        // Step 6: HB edges over combinational-connectivity candidates
        // (§V-B5), same sim-first/global-fallback scheme.
        std::vector<std::pair<PlId, PlId>> set_edges;
        for (const auto &eo : hx.edgeObservers()) {
            if (!path.plSet.count(eo.from) || !path.plSet.count(eo.to))
                continue;
            std::pair<PlId, PlId> key{eo.from, eo.to};
            bool have = (sf && sf->edges.count(key)) ||
                        extra_edges[set].count(key);
            if (!have && cfg.closureChecks) {
                CoverResult re = query(
                    kHbEdge, pAnd(gone, pBit(eo.seen)), {is_iuv});
                if (re.outcome == Outcome::Reachable)
                    extra_edges[witness_set_of(re.witness)].insert(key);
                have = extra_edges[set].count(key) != 0;
            }
            if (have)
                set_edges.emplace_back(eo.from, eo.to);
        }
        // Place cycle-accurate edges on the concrete schedule.
        for (size_t t = 0; t + 1 < path.schedule.size(); t++) {
            for (PlId p : path.schedule[t]) {
                for (PlId q : path.schedule[t + 1]) {
                    bool same = p == q;
                    bool verified =
                        std::find(set_edges.begin(), set_edges.end(),
                                  std::make_pair(p, q)) != set_edges.end();
                    if (same || verified)
                        path.edges.push_back(
                            {p, static_cast<unsigned>(t), q,
                             static_cast<unsigned>(t + 1)});
                }
            }
        }

        // Step 6b: revisit cycle counts (§V-B6 mode (i)). The per-(p, k)
        // probes under this set are independent: one batch per set.
        if (cfg.revisitCounts) {
            unsigned maxk = std::min(
                cfg.maxRevisitCount,
                (1u << designs::Harness::kCountWidth) - 1);
            std::vector<std::tuple<PlId, unsigned, int>> probes;
            std::vector<exec::Query> qs;
            for (PlId p : set) {
                if (path.revisit[p] == Revisit::None)
                    continue;
                path.revisitCounts[p]; // materialize (possibly empty)
                for (unsigned k = 1; k <= maxk; k++) {
                    if (sf && sf->counts.count(p) &&
                        sf->counts.at(p).count(k)) {
                        probes.emplace_back(p, k, -1);
                        continue;
                    }
                    if (!cfg.closureChecks)
                        continue;
                    probes.emplace_back(p, k,
                                        static_cast<int>(qs.size()));
                    qs.push_back(mkQuery(
                        pAnd(gone,
                             pAnd(exact,
                                  pEq(hx.plSig(p).visitCount, k))),
                        {is_iuv}));
                }
            }
            std::vector<CoverResult> rs =
                queryBatch(kRevisitCount, std::move(qs));
            for (auto [p, k, qi] : probes)
                if (qi < 0 || isReach(rs[qi]))
                    path.revisitCounts[p].push_back(k);
        }

        result.paths.push_back(std::move(path));
    }

    synthesizeDecisions(iuv, ipls, result);
    if (span.active()) {
        span.arg("upaths", result.paths.size());
        span.arg("decisions", result.decisions.size());
        const std::string &iname = hx.duv().instrs[iuv].name;
        obs::Registry &reg = obs::Registry::global();
        obs::Labels labels{{"design", hx.design().name()}, {"iuv", iname}};
        reg.counter("r2m.upaths", labels).add(result.paths.size());
        reg.counter("r2m.decisions", labels).add(result.decisions.size());
    }
    return result;
}

std::map<InstrId, uhb::InstrPaths>
MuPathSynthesizer::synthesizeAll(const std::vector<InstrId> &iuvs)
{
    // Phase 1: simulation exploration per IUV. The explorations are pure
    // functions of (harness, iuv, config) and run concurrently; tallies
    // and the facts cache are merged serially in submission order.
    if (cfg.useSimExploration) {
        std::vector<InstrId> todo;
        for (InstrId iuv : iuvs)
            if (!factsCache.count(iuv))
                todo.push_back(iuv);
        obs::Span span("r2m-explore-all", "r2m");
        span.arg("iuvs", todo.size());
        std::vector<SimFacts> fresh(todo.size());
        std::vector<double> secs(todo.size(), 0.0);
        std::atomic<uint64_t> explored{0};
        pool_.parallelFor(todo.size(), [&](size_t k) {
            obs::Span inner("sim-explore", "r2m");
            inner.arg("iuv", todo[k]);
            inner.arg("runs", cfg.explore.runs);
            auto t0 = std::chrono::steady_clock::now();
            fresh[k] = exploreSim(hx, todo[k], cfg.explore);
            auto t1 = std::chrono::steady_clock::now();
            secs[k] = std::chrono::duration<double>(t1 - t0).count();
            obs::progress("0:sim-explore (runs)", explored.fetch_add(1) + 1,
                          todo.size(), hx.design().name());
        });
        for (size_t k = 0; k < todo.size(); k++) {
            StepStats &st = stats_[kSimExplore];
            st.queries += cfg.explore.runs;
            st.reachable += fresh[k].sets.size();
            st.seconds += secs[k];
            factsCache.emplace(todo[k], std::move(fresh[k]));
        }
    }

    // Phase 2: step-1 covers, shared by every IUV.
    duvPls();

    // Phase 3: prefetch every IUV's independent step-2 covers as one
    // cross-IUV batch. No tallying here — the sequential synthesize()
    // calls below re-issue the same queries, replay them from the cache,
    // and tally each exactly once in the canonical order.
    if (cfg.closureChecks || !cfg.useSimExploration) {
        std::vector<exec::Query> prefetch;
        for (InstrId iuv : iuvs) {
            const SimFacts &f = facts(iuv);
            for (PlId p : duvPls()) {
                if (f.iuvPls.count(p))
                    continue;
                prefetch.push_back(mkQuery(pBit(hx.plSig(p).iuvAt),
                                           {hx.assumeIuvIs(iuv)}));
            }
        }
        pool_.evalBatch(prefetch);
    }

    std::map<InstrId, InstrPaths> out;
    for (InstrId iuv : iuvs)
        out.emplace(iuv, synthesize(iuv));
    return out;
}

void
MuPathSynthesizer::synthesizeDecisions(InstrId iuv,
                                       const std::vector<PlId> &iuv_pls,
                                       InstrPaths &out)
{
    // Witness-driven all-SAT per decision source: repeatedly cover "the
    // IUV visits src followed one cycle later by an occupancy pattern
    // distinct from every pattern found so far", and read the new
    // destination set off the witness. Terminates with a bound-complete
    // Unreachable once every successor pattern is known.
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    std::map<PlId, std::vector<std::vector<PlId>>> per_src;

    const SimFacts &sfacts = facts(iuv);
    for (PlId src : iuv_pls) {
        ExprRef at_src = pBit(hx.plSig(src).iuvAt);
        std::vector<std::vector<PlId>> dsts;
        auto seed = sfacts.succ.find(src);
        if (seed != sfacts.succ.end())
            dsts.assign(seed->second.begin(), seed->second.end());
        while (cfg.closureChecks && dsts.size() < 64) {
            // mismatch(D): the next-cycle occupancy differs from D.
            std::vector<ExprRef> mismatches;
            for (const auto &dst : dsts) {
                std::vector<ExprRef> diffs;
                for (PlId q : iuv_pls) {
                    bool in = std::find(dst.begin(), dst.end(), q) !=
                              dst.end();
                    ExprRef at_q = pBit(hx.plSig(q).iuvAt);
                    diffs.push_back(in ? pNot(at_q) : at_q);
                }
                mismatches.push_back(pOrN(diffs));
            }
            CoverResult r = query(
                kDecision, pDelay(at_src, 1, pAndN(mismatches)), {is_iuv});
            if (r.outcome != Outcome::Reachable)
                break;
            unsigned f = r.witness.matchFrame;
            const SimTrace &tr = r.witness.trace;
            rmp_assert(f + 1 < tr.numCycles(), "match at last frame");
            std::vector<PlId> dst;
            for (PlId q : iuv_pls)
                if (tr.value(f + 1, hx.plSig(q).iuvAt))
                    dst.push_back(q);
            dsts.push_back(std::move(dst));
        }
        if (dsts.size() >= 2)
            per_src[src] = std::move(dsts);
    }
    for (auto &[src, dsts] : per_src) {
        for (auto &dst : dsts) {
            Decision d;
            d.src = src;
            d.dst = std::move(dst);
            std::sort(d.dst.begin(), d.dst.end());
            out.decisions.push_back(std::move(d));
        }
    }
    std::sort(out.decisions.begin(), out.decisions.end());
}

} // namespace rmp::r2m
