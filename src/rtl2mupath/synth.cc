#include "rtl2mupath/synth.hh"
#include <functional>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>
#include <cstdio>

#include "common/logging.hh"

namespace rmp::r2m
{

using namespace uhb;
using namespace prop;
using bmc::CoverResult;
using bmc::Outcome;

namespace
{

enum Step : size_t
{
    kSimExplore = 0,
    kDuvPl,
    kIuvPl,
    kPrune,
    kSetReach,
    kRevisit,
    kHbEdge,
    kRevisitCount,
    kDecision,
    kNumSteps,
};

const char *kStepNames[kNumSteps] = {
    "0:sim-explore (runs)", "1:duv-pl-reach", "2:iuv-pl-reach",
    "3:dom-excl-prune", "4:pl-set-reach", "5:revisit-class", "6:hb-edges",
    "6b:revisit-counts", "7:decisions",
};

} // anonymous namespace

MuPathSynthesizer::MuPathSynthesizer(const designs::Harness &harness,
                                     const SynthesisConfig &config)
    : hx(harness), cfg(config),
      eng(harness.design(),
          bmc::EngineConfig{harness.duv().completenessBound, config.budget,
                            true}),
      base(harness.baseAssumes())
{
    stats_.resize(kNumSteps);
    for (size_t i = 0; i < kNumSteps; i++)
        stats_[i].step = kStepNames[i];
}

CoverResult
MuPathSynthesizer::query(size_t step, const ExprRef &seq,
                         std::vector<ExprRef> assumes)
{
    for (const auto &a : base)
        assumes.push_back(a);
    CoverResult r = eng.cover(seq, assumes);
    static const bool trace = std::getenv("RMP_TRACE_QUERIES") != nullptr;
    if (trace)
        std::fprintf(stderr, "[%s %s %.2fs] %s\n", kStepNames[step],
                     bmc::outcomeName(r.outcome), r.seconds,
                     seq->str(hx.design()).substr(0, 60).c_str());
    StepStats &st = stats_[step];
    st.queries++;
    st.seconds += r.seconds;
    switch (r.outcome) {
      case Outcome::Reachable: st.reachable++; break;
      case Outcome::Unreachable: st.unreachable++; break;
      case Outcome::Undetermined: st.undetermined++; break;
    }
    return r;
}

const SimFacts &
MuPathSynthesizer::facts(InstrId iuv)
{
    auto it = factsCache.find(iuv);
    if (it != factsCache.end())
        return it->second;
    SimFacts f;
    if (cfg.useSimExploration) {
        auto t0 = std::chrono::steady_clock::now();
        f = exploreSim(hx, iuv, cfg.explore);
        auto t1 = std::chrono::steady_clock::now();
        StepStats &st = stats_[kSimExplore];
        st.queries += cfg.explore.runs;
        st.reachable += f.sets.size();
        st.seconds += std::chrono::duration<double>(t1 - t0).count();
    }
    return factsCache.emplace(iuv, std::move(f)).first->second;
}

bool
MuPathSynthesizer::isReach(const CoverResult &r) const
{
    if (r.outcome == Outcome::Undetermined)
        return cfg.undeterminedAsReachable;
    return r.outcome == Outcome::Reachable;
}

const std::vector<PlId> &
MuPathSynthesizer::duvPls()
{
    if (duvPlsDone)
        return duvPls_;
    for (PlId p = 0; p < hx.numPls(); p++) {
        CoverResult r = query(kDuvPl, pBit(hx.plSig(p).occupied), {});
        if (isReach(r))
            duvPls_.push_back(p);
    }
    duvPlsDone = true;
    return duvPls_;
}

std::vector<PlId>
MuPathSynthesizer::iuvPls(InstrId iuv)
{
    const SimFacts &f = facts(iuv);
    std::vector<PlId> out;
    for (PlId p : duvPls()) {
        if (f.iuvPls.count(p)) {
            out.push_back(p); // reachable with a concrete sim witness
            continue;
        }
        if (!cfg.closureChecks && cfg.useSimExploration)
            continue; // semi-formal profile: unobserved => unreachable
        CoverResult r = query(kIuvPl, pBit(hx.plSig(p).iuvAt),
                              {hx.assumeIuvIs(iuv)});
        if (isReach(r))
            out.push_back(p);
    }
    return out;
}

PruneFacts
MuPathSynthesizer::pruneFacts(InstrId iuv, const std::vector<PlId> &iuv_pls)
{
    PruneFacts f;
    f.iuvPls = iuv_pls;
    size_t n = iuv_pls.size();
    f.dom.assign(n, std::vector<bool>(n, false));
    f.excl.assign(n, std::vector<bool>(n, false));
    f.mandatory.assign(n, false);
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    ExprRef gone = pBit(hx.iuvGone);

    // Mandatory: no completed execution misses the PL.
    for (size_t i = 0; i < n; i++) {
        ExprRef vis = pBit(hx.plSig(iuv_pls[i]).iuvVisited);
        CoverResult r = query(kPrune, pAnd(gone, pNot(vis)), {is_iuv});
        // Note the polarity: an unreachable cover *proves* the fact; an
        // undetermined one must conservatively deny it (§VII-B4).
        f.mandatory[i] = r.outcome == Outcome::Unreachable;
    }
    for (size_t i = 0; i < n; i++) {
        for (size_t j = 0; j < n; j++) {
            if (i == j)
                continue;
            ExprRef vi = pBit(hx.plSig(iuv_pls[i]).iuvVisited);
            ExprRef vj = pBit(hx.plSig(iuv_pls[j]).iuvVisited);
            if (i < j) {
                // Exclusive: both visited is unreachable.
                CoverResult r =
                    query(kPrune, pAnd(vi, vj), {is_iuv});
                bool ex = r.outcome == Outcome::Unreachable;
                f.excl[i][j] = ex;
                f.excl[j][i] = ex;
            }
            if (f.mandatory[i])
                continue; // dominance implied; skip the query
            // dom[i][j]: visiting j implies visiting i.
            CoverResult r =
                query(kPrune, pAnd(gone, pAnd(vj, pNot(vi))), {is_iuv});
            f.dom[i][j] = r.outcome == Outcome::Unreachable;
        }
    }
    for (size_t i = 0; i < n; i++)
        if (f.mandatory[i])
            for (size_t j = 0; j < n; j++)
                if (i != j)
                    f.dom[i][j] = true;
    return f;
}

std::vector<std::vector<PlId>>
MuPathSynthesizer::enumerateCandidateSets(const PruneFacts &f) const
{
    size_t n = f.iuvPls.size();
    std::vector<std::vector<PlId>> out;
    // DFS over include/exclude with constraint propagation.
    std::vector<int> state(n, -1); // -1 undecided, 0 out, 1 in
    struct Frame
    {
        size_t idx;
        int choice;
    };
    std::vector<uint8_t> chosen(n, 0);

    std::function<bool(const std::vector<int> &)> consistent =
        [&](const std::vector<int> &st) {
            for (size_t i = 0; i < n; i++) {
                if (st[i] != 1)
                    continue;
                for (size_t j = 0; j < n; j++) {
                    if (st[j] == 1 && f.excl[i][j])
                        return false;
                    // dom[j][i]: i needs j.
                    if (f.dom[j][i] && st[j] == 0)
                        return false;
                }
            }
            return true;
        };

    std::function<void(size_t)> rec = [&](size_t idx) {
        if (out.size() >= cfg.maxCandidateSets)
            return;
        if (idx == n) {
            std::vector<PlId> set;
            for (size_t i = 0; i < n; i++)
                if (state[i] == 1)
                    set.push_back(f.iuvPls[i]);
            if (!set.empty())
                out.push_back(std::move(set));
            return;
        }
        for (int choice : {1, 0}) {
            if (choice == 0 && f.mandatory[idx])
                continue;
            state[idx] = choice;
            if (consistent(state))
                rec(idx + 1);
        }
        state[idx] = -1;
    };
    rec(0);
    return out;
}

ExprRef
MuPathSynthesizer::exprVisitedExactly(const std::vector<PlId> &iuv_pls,
                                      const std::vector<PlId> &set) const
{
    std::vector<ExprRef> terms;
    for (PlId p : iuv_pls) {
        bool in = std::find(set.begin(), set.end(), p) != set.end();
        ExprRef v = pBit(hx.plSig(p).iuvVisited);
        terms.push_back(in ? v : pNot(v));
    }
    return pAndN(terms);
}

UPath
MuPathSynthesizer::buildPath(InstrId iuv, const std::vector<PlId> &set,
                             const bmc::Witness &witness)
{
    UPath path;
    path.instr = iuv;
    path.plSet.insert(set.begin(), set.end());

    // Extract the concrete schedule from the replayed witness trace.
    const SimTrace &tr = witness.trace;
    int first = -1, last = -1;
    std::vector<std::vector<PlId>> sched;
    for (size_t t = 0; t < tr.numCycles(); t++) {
        std::vector<PlId> now;
        for (PlId p : set)
            if (tr.value(t, hx.plSig(p).iuvAt))
                now.push_back(p);
        if (!now.empty()) {
            if (first < 0)
                first = static_cast<int>(t);
            last = static_cast<int>(t);
        }
        sched.push_back(std::move(now));
    }
    rmp_assert(first >= 0, "witness contains no IUV visit");
    path.schedule.assign(sched.begin() + first, sched.begin() + last + 1);
    return path;
}

std::vector<std::pair<std::vector<PlId>, bmc::Witness>>
MuPathSynthesizer::reachableSetsPaper(InstrId iuv,
                                      const std::vector<PlId> &iuv_pls)
{
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    ExprRef gone = pBit(hx.iuvGone);
    PruneFacts facts = pruneFacts(iuv, iuv_pls);
    auto cands = enumerateCandidateSets(facts);
    std::vector<std::pair<std::vector<PlId>, bmc::Witness>> out;
    for (const auto &set : cands) {
        ExprRef exact = exprVisitedExactly(iuv_pls, set);
        CoverResult r = query(kSetReach, pAnd(gone, exact), {is_iuv});
        if (r.outcome == Outcome::Reachable)
            out.emplace_back(set, std::move(r.witness));
    }
    return out;
}

std::vector<std::pair<std::vector<PlId>, bmc::Witness>>
MuPathSynthesizer::reachableSetsAllSat(InstrId iuv,
                                       const std::vector<PlId> &iuv_pls)
{
    // Witness-driven enumeration: ask for any completed execution whose
    // exact visited set is none of the sets found so far; each witness
    // contributes one new Reachable PL Set. Unreachable terminates the
    // enumeration with the same bound-completeness guarantee as the
    // per-candidate covers; Undetermined terminates it conservatively
    // (flagged in the step statistics, §VII-B4).
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    ExprRef gone = pBit(hx.iuvGone);
    std::vector<std::pair<std::vector<PlId>, bmc::Witness>> out;
    std::vector<ExprRef> assumes{is_iuv};
    for (const auto &[set, sf] : facts(iuv).sets) {
        out.emplace_back(set, sf.witness);
        assumes.push_back(
            pNot(pAnd(gone, exprVisitedExactly(iuv_pls, set))));
    }
    while (out.size() < cfg.maxCandidateSets) {
        CoverResult r = query(kSetReach, gone, assumes);
        if (r.outcome != Outcome::Reachable)
            break;
        // Read the exact visited set off the frozen tail of the trace.
        const SimTrace &tr = r.witness.trace;
        size_t last = tr.numCycles() - 1;
        std::vector<PlId> set;
        for (PlId p : iuv_pls)
            if (tr.value(last, hx.plSig(p).iuvVisited))
                set.push_back(p);
        rmp_assert(!set.empty(), "gone with empty visited set");
        // Block this set: no later witness may end gone with exactly it.
        assumes.push_back(
            pNot(pAnd(gone, exprVisitedExactly(iuv_pls, set))));
        out.emplace_back(std::move(set), std::move(r.witness));
    }
    return out;
}

uhb::InstrPaths
MuPathSynthesizer::synthesize(InstrId iuv)
{
    InstrPaths result;
    result.instr = iuv;
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    ExprRef gone = pBit(hx.iuvGone);

    std::vector<PlId> ipls = iuvPls(iuv);
    auto sets = cfg.usePaperEnumeration ? reachableSetsPaper(iuv, ipls)
                                        : reachableSetsAllSat(iuv, ipls);

    const SimFacts &sfacts = facts(iuv);

    // Negative facts (no revisit / no edge / no count anywhere) are
    // established ONCE per instruction by unconditioned covers and shared
    // across sets; a reachable witness is attributed to the exact set it
    // exhibits (read off its trace), preserving per-set precision without
    // the paper's per-(set, fact) query blowup.
    std::map<PlId, int> consec_glob, nonconsec_glob; // -1 unknown
    std::map<std::pair<PlId, PlId>, int> edge_glob;
    auto witness_set_of = [&](const bmc::Witness &w) {
        std::vector<PlId> s;
        size_t last = w.trace.numCycles() - 1;
        for (PlId p : ipls)
            if (w.trace.value(last, hx.plSig(p).iuvVisited))
                s.push_back(p);
        return s;
    };
    // Per-set extra positives discovered through global witnesses.
    std::map<std::vector<PlId>, std::set<PlId>> extra_consec,
        extra_nonconsec;
    std::map<std::vector<PlId>, std::set<std::pair<PlId, PlId>>>
        extra_edges;
    auto glob_check = [&](std::map<PlId, int> &cache, PlId p, SigId flag,
                          std::map<std::vector<PlId>, std::set<PlId>>
                              &extra) {
        auto it = cache.find(p);
        if (it != cache.end())
            return it->second;
        if (!cfg.closureChecks) {
            cache[p] = 0;
            return 0;
        }
        CoverResult r =
            query(kRevisit, pAnd(gone, pBit(flag)), {is_iuv});
        int v = r.outcome == Outcome::Reachable ? 1 : 0;
        if (v)
            extra[witness_set_of(r.witness)].insert(p);
        cache[p] = v;
        return v;
    };

    for (auto &[set, witness] : sets) {
        ExprRef exact = exprVisitedExactly(ipls, set);
        UPath path = buildPath(iuv, set, witness);
        const SimSetFact *sf = nullptr;
        auto sfit = sfacts.sets.find(set);
        if (sfit != sfacts.sets.end())
            sf = &sfit->second;

        // Step 5: revisit classification (sim-observed per set; global
        // fallback otherwise).
        for (PlId p : set) {
            bool c = (sf && sf->consec.count(p)) ||
                     extra_consec[set].count(p);
            bool nc = (sf && sf->nonconsec.count(p)) ||
                      extra_nonconsec[set].count(p);
            if (!c && glob_check(consec_glob, p,
                                 hx.plSig(p).revisitConsec,
                                 extra_consec))
                c = extra_consec[set].count(p) != 0;
            if (!nc && glob_check(nonconsec_glob, p,
                                  hx.plSig(p).revisitNonconsec,
                                  extra_nonconsec))
                nc = extra_nonconsec[set].count(p) != 0;
            path.revisit[p] = c && nc ? Revisit::Both
                              : c     ? Revisit::Consecutive
                              : nc    ? Revisit::NonConsecutive
                                      : Revisit::None;
        }

        // Step 6: HB edges over combinational-connectivity candidates
        // (§V-B5), same sim-first/global-fallback scheme.
        std::vector<std::pair<PlId, PlId>> set_edges;
        for (const auto &eo : hx.edgeObservers()) {
            if (!path.plSet.count(eo.from) || !path.plSet.count(eo.to))
                continue;
            std::pair<PlId, PlId> key{eo.from, eo.to};
            bool have = (sf && sf->edges.count(key)) ||
                        extra_edges[set].count(key);
            if (!have && cfg.closureChecks) {
                auto it = edge_glob.find(key);
                if (it == edge_glob.end()) {
                    CoverResult re = query(
                        kHbEdge, pAnd(gone, pBit(eo.seen)), {is_iuv});
                    int v = re.outcome == Outcome::Reachable ? 1 : 0;
                    if (v)
                        extra_edges[witness_set_of(re.witness)].insert(
                            key);
                    edge_glob[key] = v;
                }
                have = extra_edges[set].count(key) != 0;
            }
            if (have)
                set_edges.emplace_back(eo.from, eo.to);
        }
        // Place cycle-accurate edges on the concrete schedule.
        for (size_t t = 0; t + 1 < path.schedule.size(); t++) {
            for (PlId p : path.schedule[t]) {
                for (PlId q : path.schedule[t + 1]) {
                    bool same = p == q;
                    bool verified =
                        std::find(set_edges.begin(), set_edges.end(),
                                  std::make_pair(p, q)) != set_edges.end();
                    if (same || verified)
                        path.edges.push_back(
                            {p, static_cast<unsigned>(t), q,
                             static_cast<unsigned>(t + 1)});
                }
            }
        }

        // Step 6b: revisit cycle counts (§V-B6 mode (i)).
        if (cfg.revisitCounts) {
            for (PlId p : set) {
                if (path.revisit[p] == Revisit::None)
                    continue;
                std::vector<unsigned> counts;
                unsigned maxk = std::min(
                    cfg.maxRevisitCount,
                    (1u << designs::Harness::kCountWidth) - 1);
                for (unsigned k = 1; k <= maxk; k++) {
                    if (sf && sf->counts.count(p) &&
                        sf->counts.at(p).count(k)) {
                        counts.push_back(k);
                        continue;
                    }
                    if (!cfg.closureChecks)
                        continue;
                    CoverResult rk = query(
                        kRevisitCount,
                        pAnd(gone,
                             pAnd(exact,
                                  pEq(hx.plSig(p).visitCount, k))),
                        {is_iuv});
                    if (isReach(rk))
                        counts.push_back(k);
                }
                path.revisitCounts[p] = std::move(counts);
            }
        }

        result.paths.push_back(std::move(path));
    }

    synthesizeDecisions(iuv, ipls, result);
    return result;
}

void
MuPathSynthesizer::synthesizeDecisions(InstrId iuv,
                                       const std::vector<PlId> &iuv_pls,
                                       InstrPaths &out)
{
    // Witness-driven all-SAT per decision source: repeatedly cover "the
    // IUV visits src followed one cycle later by an occupancy pattern
    // distinct from every pattern found so far", and read the new
    // destination set off the witness. Terminates with a bound-complete
    // Unreachable once every successor pattern is known.
    ExprRef is_iuv = hx.assumeIuvIs(iuv);
    std::map<PlId, std::vector<std::vector<PlId>>> per_src;

    const SimFacts &sfacts = facts(iuv);
    for (PlId src : iuv_pls) {
        ExprRef at_src = pBit(hx.plSig(src).iuvAt);
        std::vector<std::vector<PlId>> dsts;
        auto seed = sfacts.succ.find(src);
        if (seed != sfacts.succ.end())
            dsts.assign(seed->second.begin(), seed->second.end());
        while (cfg.closureChecks && dsts.size() < 64) {
            // mismatch(D): the next-cycle occupancy differs from D.
            std::vector<ExprRef> mismatches;
            for (const auto &dst : dsts) {
                std::vector<ExprRef> diffs;
                for (PlId q : iuv_pls) {
                    bool in = std::find(dst.begin(), dst.end(), q) !=
                              dst.end();
                    ExprRef at_q = pBit(hx.plSig(q).iuvAt);
                    diffs.push_back(in ? pNot(at_q) : at_q);
                }
                mismatches.push_back(pOrN(diffs));
            }
            CoverResult r = query(
                kDecision, pDelay(at_src, 1, pAndN(mismatches)), {is_iuv});
            if (r.outcome != Outcome::Reachable)
                break;
            unsigned f = r.witness.matchFrame;
            const SimTrace &tr = r.witness.trace;
            rmp_assert(f + 1 < tr.numCycles(), "match at last frame");
            std::vector<PlId> dst;
            for (PlId q : iuv_pls)
                if (tr.value(f + 1, hx.plSig(q).iuvAt))
                    dst.push_back(q);
            dsts.push_back(std::move(dst));
        }
        if (dsts.size() >= 2)
            per_src[src] = std::move(dsts);
    }
    for (auto &[src, dsts] : per_src) {
        for (auto &dst : dsts) {
            Decision d;
            d.src = src;
            d.dst = std::move(dst);
            std::sort(d.dst.begin(), d.dst.end());
            out.decisions.push_back(std::move(d));
        }
    }
    std::sort(out.decisions.begin(), out.decisions.end());
}

} // namespace rmp::r2m
