#include "rtl2mupath/sim_explore.hh"

#include <algorithm>
#include <random>

#include "common/logging.hh"
#include "sim/simulator.hh"

namespace rmp::r2m
{

using namespace uhb;

SimRun
randomConstrainedRun(const designs::Harness &hx, const Design &design,
                     unsigned cycles, InstrId iuv, unsigned mark_pos,
                     int txm, unsigned txm_pos, const SimExploreConfig &cfg,
                     std::mt19937_64 &rng,
                     const std::function<void(unsigned, Simulator &,
                                              InputMap &)> &extra)
{
    const DuvInfo &info = hx.duv();
    SigId mark_iuv = design.findByName("hx_mark_iuv");
    SigId mark_txm = design.findByName("hx_mark_txm");
    std::uniform_real_distribution<double> coin(0.0, 1.0);

    Simulator sim(design);
    SimRun rr;
    rr.inputs.resize(cycles);
    unsigned fired = 0;
    for (unsigned t = 0; t < cycles; t++) {
        InputMap &in = rr.inputs[t];
        // Symbolic architectural init: driven in the first cycle only.
        if (t == 0) {
            for (SigId i : design.inputs()) {
                const std::string &n = design.cell(i).name;
                if (n.find("_init") == std::string::npos)
                    continue;
                uint64_t mask = BitVec::maskOf(design.cell(i).width);
                uint64_t v = coin(rng) < cfg.specialInitProb
                                 ? (rng() & 3)
                                 : (rng() & mask);
                in[i] = v & mask;
            }
        }
        bool offer = coin(rng) < cfg.fetchProb;
        bool is_iuv_slot = fired == mark_pos;
        bool is_txm_slot = txm >= 0 && fired == txm_pos;
        if (offer || is_iuv_slot || is_txm_slot) {
            // Random valid instruction word; forced opcode for marks.
            InstrId pick = is_iuv_slot
                               ? iuv
                               : (is_txm_slot ? static_cast<InstrId>(txm)
                                              : static_cast<InstrId>(
                                                    rng() %
                                                    info.instrs.size()));
            uint64_t word = rng() & BitVec::maskOf(
                                        design.cell(info.ifr).width);
            // Overwrite the opcode field.
            uint64_t opc_mask = BitVec::maskOf(info.opcodeWidth)
                                << info.opcodeLo;
            word = (word & ~opc_mask) |
                   (info.instrs[pick].opcode << info.opcodeLo);
            in[info.fetchValid] = 1;
            in[info.ifr] = word;
            in[mark_iuv] = is_iuv_slot;
            in[mark_txm] = is_txm_slot || (txm >= 0 && is_iuv_slot &&
                                           txm_pos == mark_pos);
        }
        if (extra)
            extra(t, sim, in);
        sim.step(in);
        if (in.count(info.fetchValid) &&
            (info.fetchReady == kNoSig || sim.value(info.fetchReady)))
            fired++;
    }
    rr.trace = sim.trace();
    return rr;
}

SimFacts
exploreSim(const designs::Harness &hx, InstrId iuv,
           const SimExploreConfig &cfg)
{
    SimFacts facts;
    std::mt19937_64 rng(cfg.seed * 0x9e3779b97f4a7c15ULL + iuv);
    unsigned bound = hx.duv().completenessBound;

    for (unsigned run = 0; run < cfg.runs; run++) {
        unsigned mark_pos = rng() % (cfg.maxMarkPos + 1);
        SimRun rr = randomConstrainedRun(hx, hx.design(), bound, iuv,
                                         mark_pos, -1, 0, cfg, rng);
        const SimTrace &tr = rr.trace;
        size_t last = tr.numCycles() - 1;
        // Only completed executions contribute set-level facts; PL visits
        // and successor patterns are valid regardless.
        std::vector<PlId> visited;
        for (PlId p = 0; p < hx.numPls(); p++)
            if (tr.value(last, hx.plSig(p).iuvVisited))
                visited.push_back(p);
        for (PlId p : visited)
            facts.iuvPls.insert(p);

        // Successor patterns at every cycle where the IUV sits anywhere.
        for (size_t t = 0; t + 1 < tr.numCycles(); t++) {
            std::vector<PlId> now, next;
            for (PlId p = 0; p < hx.numPls(); p++) {
                if (tr.value(t, hx.plSig(p).iuvAt))
                    now.push_back(p);
                if (tr.value(t + 1, hx.plSig(p).iuvAt))
                    next.push_back(p);
            }
            if (now.empty())
                continue;
            bool gone_next = tr.value(t + 1, hx.iuvGone);
            if (next.empty() && !gone_next)
                continue; // should not happen on gap-free designs
            for (PlId src : now)
                facts.succ[src].insert(next);
        }

        bool gone = tr.value(last, hx.iuvGone);
        if (!gone || visited.empty())
            continue;
        SimSetFact &sf = facts.sets[visited];
        if (sf.set.empty()) {
            sf.set = visited;
            sf.witness.inputs = std::move(rr.inputs);
            sf.witness.trace = tr;
        }
        for (PlId p : visited) {
            if (tr.value(last, hx.plSig(p).revisitConsec))
                sf.consec.insert(p);
            if (tr.value(last, hx.plSig(p).revisitNonconsec))
                sf.nonconsec.insert(p);
            sf.counts[p].insert(static_cast<unsigned>(
                tr.value(last, hx.plSig(p).visitCount)));
        }
        for (const auto &eo : hx.edgeObservers())
            if (tr.value(last, eo.seen))
                sf.edges.insert({eo.from, eo.to});
    }
    return facts;
}

} // namespace rmp::r2m
