#include "rtl2mupath/sim_explore.hh"

#include <algorithm>
#include <optional>
#include <random>
#include <set>
#include <thread>
#include <utility>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/batch.hh"
#include "sim/simulator.hh"
#include "sim/tape.hh"

namespace rmp::r2m
{

using namespace uhb;

namespace
{

/** The harness marking inputs, resolved once per engine invocation so
 *  per-run StimGen construction skips the name lookups. */
struct MarkSigs
{
    SigId iuv = kNoSig;
    SigId txm = kNoSig;
};

MarkSigs
lookupMarks(const Design &design)
{
    return {design.findByName("hx_mark_iuv"),
            design.findByName("hx_mark_txm")};
}

/**
 * The constrained-random stimulus generator, shared by every execution
 * engine so one run index always means one program. The RNG draw order —
 * coins, init values, instruction picks, words — is part of the repo's
 * determinism contract: randomConstrainedRun has always drawn in exactly
 * this order and SynthLC's leakage probes (and their tests) depend on it.
 */
struct StimGen
{
    const Design &design;
    const DuvInfo &info;
    SigId markIuv, markTxm;
    InstrId iuv;
    unsigned markPos;
    int txm;
    unsigned txmPos;
    const SimExploreConfig &cfg;
    std::mt19937_64 &rng;
    std::uniform_real_distribution<double> coin{0.0, 1.0};
    unsigned fired = 0;
    /** fetchValid was driven by the latest cycleInputs(). */
    bool offeredFetch = false;

    StimGen(const Design &design_, const DuvInfo &info_, InstrId iuv_,
            unsigned mark_pos, int txm_, unsigned txm_pos,
            const SimExploreConfig &cfg_, std::mt19937_64 &rng_,
            MarkSigs marks = {})
        : design(design_), info(info_),
          markIuv(marks.iuv != kNoSig
                      ? marks.iuv
                      : design_.findByName("hx_mark_iuv")),
          markTxm(marks.txm != kNoSig
                      ? marks.txm
                      : design_.findByName("hx_mark_txm")),
          iuv(iuv_), markPos(mark_pos), txm(txm_), txmPos(txm_pos),
          cfg(cfg_), rng(rng_)
    {
    }

    /** Stimulus for cycle @p t as (signal, value) pairs, appended to the
     *  caller's (cleared) buffer — the hot loops reuse one allocation. */
    void
    cycleInputs(unsigned t, std::vector<std::pair<SigId, uint64_t>> &in)
    {
        in.clear();
        // Symbolic architectural init: driven in the first cycle only.
        if (t == 0) {
            for (SigId i : design.inputs()) {
                const std::string &n = design.cell(i).name;
                if (n.find("_init") == std::string::npos)
                    continue;
                uint64_t mask = BitVec::maskOf(design.cell(i).width);
                uint64_t v = coin(rng) < cfg.specialInitProb
                                 ? (rng() & 3)
                                 : (rng() & mask);
                in.emplace_back(i, v & mask);
            }
        }
        bool offer = coin(rng) < cfg.fetchProb;
        bool is_iuv_slot = fired == markPos;
        bool is_txm_slot = txm >= 0 && fired == txmPos;
        offeredFetch = offer || is_iuv_slot || is_txm_slot;
        if (offeredFetch) {
            // Random valid instruction word; forced opcode for marks.
            InstrId pick = is_iuv_slot
                               ? iuv
                               : (is_txm_slot ? static_cast<InstrId>(txm)
                                              : static_cast<InstrId>(
                                                    rng() %
                                                    info.instrs.size()));
            uint64_t word = rng() & BitVec::maskOf(
                                        design.cell(info.ifr).width);
            // Overwrite the opcode field.
            uint64_t opc_mask = BitVec::maskOf(info.opcodeWidth)
                                << info.opcodeLo;
            word = (word & ~opc_mask) |
                   (info.instrs[pick].opcode << info.opcodeLo);
            in.emplace_back(info.fetchValid, 1);
            in.emplace_back(info.ifr, word);
            in.emplace_back(markIuv, is_iuv_slot);
            in.emplace_back(markTxm,
                            is_txm_slot || (txm >= 0 && is_iuv_slot &&
                                            txmPos == markPos));
        }
    }

    /** Advance the fetched-instruction count after the cycle stepped. */
    void
    onStepped(bool fetch_offered, bool fetch_ready)
    {
        if (fetch_offered && fetch_ready)
            fired++;
    }
};

/**
 * The exploration watch set and where each signal lands in it. Index
 * layout: [fetchReady?] [iuvGone] [5 per PL: at, visited, consec,
 * nonconsec, count] [1 per edge observer].
 */
struct WatchPlan
{
    std::vector<SigId> sigs;
    int fetchReady = -1; ///< index in sigs, -1 when the DUV has none
    size_t gone = 0;
    size_t plBase = 0;
    size_t edgeBase = 0;

    size_t at(PlId p) const { return plBase + size_t(p) * 5; }
    size_t visited(PlId p) const { return at(p) + 1; }
    size_t consec(PlId p) const { return at(p) + 2; }
    size_t nonconsec(PlId p) const { return at(p) + 3; }
    size_t count(PlId p) const { return at(p) + 4; }
    size_t edge(size_t j) const { return edgeBase + j; }
};

WatchPlan
makeWatchPlan(const designs::Harness &hx)
{
    WatchPlan wp;
    const DuvInfo &info = hx.duv();
    if (info.fetchReady != kNoSig) {
        wp.fetchReady = static_cast<int>(wp.sigs.size());
        wp.sigs.push_back(info.fetchReady);
    }
    wp.gone = wp.sigs.size();
    wp.sigs.push_back(hx.iuvGone);
    wp.plBase = wp.sigs.size();
    for (PlId p = 0; p < hx.numPls(); p++) {
        const designs::PlSignals &ps = hx.plSig(p);
        wp.sigs.push_back(ps.iuvAt);
        wp.sigs.push_back(ps.iuvVisited);
        wp.sigs.push_back(ps.revisitConsec);
        wp.sigs.push_back(ps.revisitNonconsec);
        wp.sigs.push_back(ps.visitCount);
    }
    wp.edgeBase = wp.sigs.size();
    for (const auto &eo : hx.edgeObservers())
        wp.sigs.push_back(eo.seen);
    return wp;
}

/**
 * Compact per-run summaries, flat across all runs (three allocations for
 * the whole batch instead of dozens per run — the full watched-value
 * matrix at ~30 KB/run dominated exploration wall time before this).
 * mergeRun() derives every fact from these; representative witnesses are
 * re-derived on demand from the run seed (runs are cheap and replayable,
 * so only the handful that discover a new set are ever re-simulated).
 *
 * at[run * bound + t]: bitmask of PLs the IUV occupies at cycle t, with
 * bit 63 = iuvGone (so numPls must stay below 63).
 */
struct RunSummaries
{
    unsigned bound = 0;
    size_t numPls = 0;
    size_t edgeWords = 0;
    std::vector<uint64_t> at;       ///< runs * bound occupancy+gone masks
    std::vector<uint64_t> last;     ///< runs * 3: visited/consec/nonconsec
    std::vector<uint8_t> counts;    ///< runs * numPls (kCountWidth <= 8)
    std::vector<uint64_t> edges;    ///< runs * edgeWords seen-bitmap

    RunSummaries(unsigned runs, unsigned bound_, size_t num_pls,
                 size_t num_edges)
        : bound(bound_), numPls(num_pls),
          edgeWords((num_edges + 63) / 64),
          at(size_t(runs) * bound_, 0), last(size_t(runs) * 3, 0),
          counts(size_t(runs) * num_pls, 0),
          edges(size_t(runs) * edgeWords, 0)
    {
        static_assert(designs::Harness::kCountWidth <= 8,
                      "visit counters must fit the uint8 summary");
        rmp_assert(num_pls < 63, "too many PLs for a 64-bit run summary");
    }

    static constexpr uint64_t kGoneBit = 1ULL << 63;
};

/** Fold one cycle's PL-occupancy mask into @p s and return it (shared
 *  by both engines; @p wv(k) = watch signal k's value this cycle). */
template <typename WatchFn>
uint64_t
summarizeAt(RunSummaries &s, const WatchPlan &plan, unsigned run,
            unsigned t, size_t num_pls, WatchFn wv)
{
    uint64_t m = 0;
    for (PlId p = 0; p < num_pls; p++)
        if (wv(plan.at(p)))
            m |= 1ULL << p;
    if (wv(plan.gone))
        m |= RunSummaries::kGoneBit;
    s.at[size_t(run) * s.bound + t] = m;
    return m;
}

/** Fold the run's sticky end-of-run accumulators (visited / consec /
 *  nonconsec masks, visit counts, seen edges) into @p s. The harness
 *  only updates them while the IUV is in flight, so they may be read at
 *  any cycle at or after retirement — early-exited batches harvest them
 *  from the last cycle they actually simulated. */
template <typename WatchFn>
void
summarizeFinal(RunSummaries &s, const WatchPlan &plan, unsigned run,
               size_t num_pls, size_t num_edges, WatchFn wv)
{
    uint64_t vis = 0, con = 0, non = 0;
    for (PlId p = 0; p < num_pls; p++) {
        if (wv(plan.visited(p)))
            vis |= 1ULL << p;
        if (wv(plan.consec(p)))
            con |= 1ULL << p;
        if (wv(plan.nonconsec(p)))
            non |= 1ULL << p;
        s.counts[size_t(run) * num_pls + p] =
            static_cast<uint8_t>(wv(plan.count(p)));
    }
    s.last[size_t(run) * 3 + 0] = vis;
    s.last[size_t(run) * 3 + 1] = con;
    s.last[size_t(run) * 3 + 2] = non;
    for (size_t j = 0; j < num_edges; j++)
        if (wv(plan.edge(j)))
            s.edges[size_t(run) * s.edgeWords + j / 64] |= 1ULL
                                                           << (j % 64);
}

/** splitmix64 finalizer. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Per-run seed: runs are independent streams, so any partition of the
 *  run space onto lanes and threads replays identically. */
uint64_t
runSeed(uint64_t seed, InstrId iuv, unsigned run)
{
    return mix64(mix64(mix64(seed) ^ (iuv + 1)) + run);
}

/** Reference engine: one scalar interpreted Simulator per run. */
void
runsInterpreted(const designs::Harness &hx, InstrId iuv,
                const SimExploreConfig &cfg, unsigned bound,
                const WatchPlan &plan, RunSummaries &sum)
{
    const Design &design = hx.design();
    const DuvInfo &info = hx.duv();
    const size_t num_pls = hx.numPls();
    const size_t num_edges = hx.edgeObservers().size();
    const MarkSigs marks = lookupMarks(design);
    std::vector<std::pair<SigId, uint64_t>> pairs;
    InputMap in;
    for (unsigned run = 0; run < cfg.runs; run++) {
        std::mt19937_64 rng(runSeed(cfg.seed, iuv, run));
        unsigned mark_pos = rng() % (cfg.maxMarkPos + 1);
        StimGen gen(design, info, iuv, mark_pos, -1, 0, cfg, rng, marks);
        Simulator sim(design);
        sim.setRecording(false); // the watch plan is all we record
        for (unsigned t = 0; t < bound; t++) {
            gen.cycleInputs(t, pairs);
            in.clear();
            for (const auto &[s, v] : pairs)
                in[s] = v;
            sim.step(in);
            bool ready = info.fetchReady == kNoSig ||
                         sim.value(info.fetchReady) != 0;
            gen.onStepped(gen.offeredFetch, ready);
            summarizeAt(sum, plan, run, t, num_pls, [&](size_t k) {
                return sim.value(plan.sigs[k]);
            });
            if (t + 1 == bound)
                summarizeFinal(sum, plan, run, num_pls, num_edges,
                               [&](size_t k) {
                                   return sim.value(plan.sigs[k]);
                               });
        }
    }
}

/** Compiled engine: lanes-wide BatchSim batches fanned over threads.
 *  Thread k owns batches k, k+T, ...; every run writes only its own
 *  rows of the pre-sized summaries, so workers share nothing mutable.
 *  A batch stops stepping as soon as every lane's IUV has retired;
 *  post-retirement cycles cannot change any fact, so the summaries
 *  stay bit-identical to a full-bound simulation. */
void
runsCompiled(const designs::Harness &hx, InstrId iuv,
             const SimExploreConfig &cfg, unsigned bound,
             const WatchPlan &plan, const sim::Tape &tape, unsigned lanes,
             unsigned threads, RunSummaries &sum)
{
    const Design &design = hx.design();
    const DuvInfo &info = hx.duv();
    const size_t num_pls = hx.numPls();
    const size_t num_edges = hx.edgeObservers().size();
    const MarkSigs marks = lookupMarks(design);
    const unsigned nbatch = (cfg.runs + lanes - 1) / lanes;

    auto work = [&](unsigned tid) {
        sim::BatchSim bs(tape, lanes, cfg.backend);
        bs.reserveTrace(bound);
        struct LaneCtx
        {
            std::mt19937_64 rng;
            std::optional<StimGen> gen;
        };
        std::vector<std::pair<SigId, uint64_t>> pairs;
        for (unsigned b = tid; b < nbatch; b += threads) {
            const unsigned r0 = b * lanes;
            const unsigned active = std::min(lanes, cfg.runs - r0);
            bs.reset();
            std::vector<LaneCtx> lc(active);
            for (unsigned l = 0; l < active; l++) {
                lc[l].rng.seed(runSeed(cfg.seed, iuv, r0 + l));
                unsigned mark_pos = lc[l].rng() % (cfg.maxMarkPos + 1);
                lc[l].gen.emplace(design, info, iuv, mark_pos, -1, 0,
                                  cfg, lc[l].rng, marks);
            }
            // Step until the bound — or until every lane's IUV has
            // retired. Once iuvGone is set a run's facts are frozen
            // (empty occupancy, sticky accumulators), so the remaining
            // cycles are provably inert and their at-masks can be
            // backfilled without simulating them.
            unsigned ran = bound;
            for (unsigned t = 0; t < bound; t++) {
                bs.clearInputs();
                for (unsigned l = 0; l < active; l++) {
                    lc[l].gen->cycleInputs(t, pairs);
                    for (const auto &[s, v] : pairs)
                        bs.stageInput(l, s, v);
                }
                bs.step();
                bool allGone = true;
                for (unsigned l = 0; l < active; l++) {
                    // fetchReady may be a register, so read it from the
                    // recorded (pre-latch) frame, not the raw slot.
                    bool ready =
                        plan.fetchReady < 0 ||
                        bs.watched(t, size_t(plan.fetchReady), l) != 0;
                    lc[l].gen->onStepped(lc[l].gen->offeredFetch, ready);
                    if (!bs.watched(t, plan.gone, l))
                        allGone = false;
                }
                if (allGone) {
                    ran = t + 1;
                    break;
                }
            }
            for (unsigned l = 0; l < active; l++) {
                for (unsigned t = 0; t < ran; t++)
                    summarizeAt(sum, plan, r0 + l, t, num_pls,
                                [&](size_t k) {
                                    return bs.watched(t, k, l);
                                });
                for (unsigned t = ran; t < bound; t++)
                    sum.at[size_t(r0 + l) * bound + t] =
                        RunSummaries::kGoneBit;
                summarizeFinal(sum, plan, r0 + l, num_pls, num_edges,
                               [&](size_t k) {
                                   return bs.watched(ran - 1, k, l);
                               });
            }
        }
    };

    if (threads <= 1) {
        work(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned tid = 0; tid < threads; tid++)
            pool.emplace_back(work, tid);
        for (auto &th : pool)
            th.join();
    }
}

/**
 * Re-derive run @p run's representative witness: replayable per-cycle
 * inputs plus a sparse watch-set trace (full-width frames, non-watched
 * signals zero). Runs are deterministic functions of their seed, so the
 * hot loops keep only compact summaries and the handful of runs that
 * discover a new Reachable PL Set are re-simulated here, on the
 * interpreted oracle — which also makes the materialized witness
 * trivially engine-independent.
 */
bmc::Witness
materializeWitness(const designs::Harness &hx, const WatchPlan &plan,
                   const SimExploreConfig &cfg, InstrId iuv, unsigned run,
                   unsigned bound, size_t num_cells, Simulator &sim,
                   MarkSigs marks)
{
    const Design &design = hx.design();
    const DuvInfo &info = hx.duv();
    std::mt19937_64 rng(runSeed(cfg.seed, iuv, run));
    unsigned mark_pos = rng() % (cfg.maxMarkPos + 1);
    StimGen gen(design, info, iuv, mark_pos, -1, 0, cfg, rng, marks);
    sim.reset();
    sim.setRecording(false);
    bmc::Witness w;
    w.inputs.resize(bound);
    w.trace.frames.assign(bound, std::vector<uint64_t>(num_cells, 0));
    std::vector<std::pair<SigId, uint64_t>> pairs;
    for (unsigned t = 0; t < bound; t++) {
        gen.cycleInputs(t, pairs);
        for (const auto &[s, v] : pairs)
            w.inputs[t][s] = v;
        sim.step(w.inputs[t]);
        bool ready = info.fetchReady == kNoSig ||
                     sim.value(info.fetchReady) != 0;
        gen.onStepped(gen.offeredFetch, ready);
        for (size_t k = 0; k < plan.sigs.size(); k++)
            w.trace.frames[t][plan.sigs[k]] = sim.value(plan.sigs[k]);
    }
    return w;
}

/**
 * Fold one run's summary into the facts. Runs are merged serially in run
 * order regardless of which engine / lane / thread produced them — this
 * is what makes SimFacts engine- and parallelism-invariant. @p scratch
 * vectors are reused across runs (zero allocations in the common case).
 */
struct MergeScratch
{
    std::vector<PlId> visited, now, next;
    /** Distinct (now, next) occupancy-mask pairs already folded into
     *  facts.succ — the same handful of patterns recurs across tens of
     *  thousands of run-cycles, so the set-of-vectors inserts run once
     *  per pattern instead of once per cycle. */
    std::set<std::pair<uint64_t, uint64_t>> seenSucc;
    /** Distinct visited masks already folded into facts.iuvPls. */
    std::set<uint64_t> seenVisited;
    /** Lazily built interpreted oracle, reset per materialized witness —
     *  construction walks the whole design, so one instance serves every
     *  new-set run in an exploreSim call. */
    std::optional<Simulator> oracle;
    /** Harness mark signals, looked up once per exploreSim call. */
    MarkSigs marks;
};

void
mergeRun(SimFacts &facts, const designs::Harness &hx,
         const WatchPlan &plan, const RunSummaries &sum, unsigned run,
         const SimExploreConfig &cfg, InstrId iuv, size_t num_cells,
         MergeScratch &scratch)
{
    const unsigned bound = sum.bound;
    const uint64_t *at = sum.at.data() + size_t(run) * bound;
    auto unpack = [&](uint64_t m, std::vector<PlId> &out) {
        out.clear();
        for (PlId p = 0; p < hx.numPls(); p++)
            if (m & (1ULL << p))
                out.push_back(p);
    };

    // Only completed executions contribute set-level facts; PL visits
    // and successor patterns are valid regardless.
    const uint64_t vis = sum.last[size_t(run) * 3 + 0];
    unpack(vis, scratch.visited);
    if (scratch.seenVisited.insert(vis).second)
        for (PlId p : scratch.visited)
            facts.iuvPls.insert(p);

    // Successor patterns at every cycle where the IUV sits anywhere.
    for (size_t t = 0; t + 1 < bound; t++) {
        const uint64_t now_m = at[t] & ~RunSummaries::kGoneBit;
        const uint64_t next_m = at[t + 1];
        if (!now_m)
            continue;
        if (!(next_m & ~RunSummaries::kGoneBit) &&
            !(next_m & RunSummaries::kGoneBit))
            continue; // should not happen on gap-free designs
        if (!scratch.seenSucc.insert({now_m, next_m}).second)
            continue;
        unpack(now_m, scratch.now);
        unpack(next_m & ~RunSummaries::kGoneBit, scratch.next);
        for (PlId src : scratch.now)
            facts.succ[src].insert(scratch.next);
    }

    bool gone = (at[bound - 1] & RunSummaries::kGoneBit) != 0;
    if (!gone || scratch.visited.empty())
        return;
    SimSetFact &sf = facts.sets[scratch.visited];
    if (sf.set.empty()) {
        sf.set = scratch.visited;
        if (!scratch.oracle)
            scratch.oracle.emplace(hx.design());
        sf.witness =
            materializeWitness(hx, plan, cfg, iuv, run, bound, num_cells,
                               *scratch.oracle, scratch.marks);
    }
    const uint64_t con = sum.last[size_t(run) * 3 + 1];
    const uint64_t non = sum.last[size_t(run) * 3 + 2];
    for (PlId p : scratch.visited) {
        if (con & (1ULL << p))
            sf.consec.insert(p);
        if (non & (1ULL << p))
            sf.nonconsec.insert(p);
        sf.counts[p].insert(sum.counts[size_t(run) * sum.numPls + p]);
    }
    const auto &eos = hx.edgeObservers();
    const uint64_t *ew = sum.edges.data() + size_t(run) * sum.edgeWords;
    for (size_t j = 0; j < eos.size(); j++)
        if (ew[j / 64] & (1ULL << (j % 64)))
            sf.edges.insert({eos[j].from, eos[j].to});
}

} // anonymous namespace

SimRun
randomConstrainedRun(const designs::Harness &hx, const Design &design,
                     unsigned cycles, InstrId iuv, unsigned mark_pos,
                     int txm, unsigned txm_pos, const SimExploreConfig &cfg,
                     std::mt19937_64 &rng,
                     const std::function<void(unsigned, Simulator &,
                                              InputMap &)> &extra)
{
    const DuvInfo &info = hx.duv();
    StimGen gen(design, info, iuv, mark_pos, txm, txm_pos, cfg, rng);
    Simulator sim(design);
    sim.reserveTrace(cycles);
    SimRun rr;
    rr.inputs.resize(cycles);
    std::vector<std::pair<SigId, uint64_t>> pairs;
    for (unsigned t = 0; t < cycles; t++) {
        InputMap &in = rr.inputs[t];
        gen.cycleInputs(t, pairs);
        for (const auto &[s, v] : pairs)
            in[s] = v;
        if (extra)
            extra(t, sim, in);
        sim.step(in);
        gen.onStepped(in.count(info.fetchValid) != 0,
                      info.fetchReady == kNoSig ||
                          sim.value(info.fetchReady) != 0);
    }
    rr.trace = sim.trace();
    return rr;
}

SimFacts
exploreSim(const designs::Harness &hx, InstrId iuv,
           const SimExploreConfig &cfg)
{
    SimFacts facts;
    if (cfg.runs == 0)
        return facts;
    const unsigned bound = hx.duv().completenessBound;
    const WatchPlan plan = makeWatchPlan(hx);
    const unsigned lanes =
        std::clamp(cfg.lanes, 1U, sim::kMaxLanes);
    const unsigned threads = std::max(cfg.threads, 1U);
    const bool compiled = cfg.engine == SimEngine::Compiled;

    obs::Span span("sim-explore", "sim");
    if (span.active()) {
        span.arg("iuv", iuv);
        span.arg("runs", cfg.runs);
        span.arg("lanes", compiled ? lanes : 1);
        span.arg("threads", compiled ? threads : 1);
    }

    RunSummaries sum(cfg.runs, bound, hx.numPls(),
                     hx.edgeObservers().size());

    if (compiled) {
        sim::Tape tape = sim::compileTape(hx.design(), plan.sigs);
        runsCompiled(hx, iuv, cfg, bound, plan, tape, lanes, threads,
                     sum);
    } else {
        runsInterpreted(hx, iuv, cfg, bound, plan, sum);
    }

    MergeScratch scratch;
    scratch.marks = lookupMarks(hx.design());
    for (unsigned run = 0; run < cfg.runs; run++)
        mergeRun(facts, hx, plan, sum, run, cfg, iuv,
                 hx.design().numCells(), scratch);

    if (obs::enabled()) {
        auto &reg = obs::Registry::global();
        reg.counter("sim.runs").add(cfg.runs);
        reg.counter("sim.cycles").add(uint64_t(cfg.runs) * bound);
        reg.gauge("sim.lanes").set(compiled ? lanes : 1);
        if (compiled) {
            auto &occ = reg.histogram("sim.lane_occupancy");
            for (unsigned r0 = 0; r0 < cfg.runs; r0 += lanes)
                occ.record(std::min(lanes, cfg.runs - r0));
        }
    }
    return facts;
}

bool
factsEqual(const SimFacts &x, const SimFacts &y)
{
    if (x.iuvPls != y.iuvPls || x.succ != y.succ ||
        x.sets.size() != y.sets.size())
        return false;
    auto ix = x.sets.begin();
    auto iy = y.sets.begin();
    for (; ix != x.sets.end(); ++ix, ++iy) {
        if (ix->first != iy->first)
            return false;
        const SimSetFact &a = ix->second;
        const SimSetFact &b = iy->second;
        if (a.set != b.set || a.consec != b.consec ||
            a.nonconsec != b.nonconsec || a.counts != b.counts ||
            a.edges != b.edges)
            return false;
        if (a.witness.matchFrame != b.witness.matchFrame ||
            a.witness.inputs != b.witness.inputs ||
            a.witness.trace.frames != b.witness.trace.frames)
            return false;
    }
    return true;
}

} // namespace rmp::r2m
