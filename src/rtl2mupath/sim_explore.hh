/**
 * @file
 * Simulation-guided exploration: the semi-formal front half of the
 * synthesis pipeline.
 *
 * Randomized constrained simulation discovers reachable facts — IUV PL
 * visits, exact Reachable PL Sets with concrete schedules, revisit
 * behavior and counts, HB-edge observations, and decision successor
 * patterns — each backed by a concrete trace, i.e. with the same
 * Reachable-with-witness status a SAT witness would have. The BMC engine
 * is then only needed for the closure queries ("nothing else is
 * reachable") and for facts random simulation missed, which is where the
 * paper's undetermined-timeout regime applies (§VII-B3/B4).
 *
 * Exploration runs on the compiled batched engine (sim::BatchSim) by
 * default: runs are seeded per (seed, iuv, run index), stepped in
 * multi-lane lockstep batches fanned across worker threads, and only the
 * harness watch set (PL trackers, iuvGone, fetchReady, edge observers) is
 * recorded. Per-run results are merged into facts serially in run order,
 * so the produced SimFacts are bit-identical across engines and across
 * any lane/thread count (DESIGN.md §3h). The interpreted engine remains
 * available as the reference oracle (SimEngine::Interpreted).
 */

#ifndef RTL2MUPATH_SIM_EXPLORE_HH
#define RTL2MUPATH_SIM_EXPLORE_HH

#include <functional>
#include <random>
#include <map>
#include <set>
#include <vector>

#include "bmc/engine.hh"
#include "sim/batch.hh"
#include "sim/simulator.hh"
#include "designs/harness.hh"
#include "uhb/graph.hh"

namespace rmp::r2m
{

/** Which simulation engine drives the exploration runs. */
enum class SimEngine : uint8_t {
    Compiled,    ///< op-tape BatchSim, multi-lane, multi-thread
    Interpreted, ///< scalar reference Simulator (the oracle)
};

/** Randomized-exploration configuration. */
struct SimExploreConfig
{
    /** Number of random programs to simulate per instruction. */
    unsigned runs = 1200;
    /** PRNG seed (deterministic exploration). */
    uint64_t seed = 1;
    /** Probability of offering an instruction on a given cycle. */
    double fetchProb = 0.85;
    /** Latest cycle index at which the IUV may be marked. */
    unsigned maxMarkPos = 6;
    /**
     * Probability that a symbolic-init input is biased to a "special"
     * value (0 or a small constant) — needed to hit value-sensitive
     * channels such as zero-skip multiplication.
     */
    double specialInitProb = 0.4;
    /** Engine choice. Facts are engine-identical by construction. */
    SimEngine engine = SimEngine::Compiled;
    /**
     * Batch lanes for the compiled engine (clamped to
     * [1, sim::kMaxLanes]). Results are lane-count invariant.
     */
    unsigned lanes = sim::kDefaultLanes;
    /** Execution backend for the compiled engine (facts are backend
     *  invariant by contract; Simd is the measured default). */
    sim::SimBackend backend = sim::SimBackend::Simd;
    /** Worker threads fanning batches; results are thread-count
     *  invariant. */
    unsigned threads = 4;
};

/** Everything one exact Reachable PL Set's runs established. */
struct SimSetFact
{
    std::vector<uhb::PlId> set;
    /** One representative witness (inputs + replayable watch trace). */
    bmc::Witness witness;
    /** PLs observed revisited consecutively / non-consecutively. */
    std::set<uhb::PlId> consec, nonconsec;
    /** Observed visit counts per PL. */
    std::map<uhb::PlId, std::set<unsigned>> counts;
    /** Observed one-cycle-successor (HB edge) pairs. */
    std::set<std::pair<uhb::PlId, uhb::PlId>> edges;
};

/** Aggregated facts from one exploration batch. */
struct SimFacts
{
    /** PLs the IUV was observed to visit. */
    std::set<uhb::PlId> iuvPls;
    /** Exact visited sets, keyed by the sorted set. */
    std::map<std::vector<uhb::PlId>, SimSetFact> sets;
    /** Observed successor patterns per decision source. */
    std::map<uhb::PlId, std::set<std::vector<uhb::PlId>>> succ;
};

/** Deep equality over facts, witnesses included. Used by the engine
 *  differential tests and bench_sim_throughput's identity verdict. */
bool factsEqual(const SimFacts &x, const SimFacts &y);

/** Explore @p iuv's behavior with random constrained simulation. */
SimFacts exploreSim(const designs::Harness &hx, uhb::InstrId iuv,
                    const SimExploreConfig &cfg);

/** One random constrained run: replayable inputs plus the full trace. */
struct SimRun
{
    std::vector<InputMap> inputs;
    SimTrace trace;
};

/**
 * Simulate one random valid run of @p cycles cycles on @p design (the
 * harnessed DUV or its IFT-instrumented clone — original SigIds are
 * preserved by instrumentation). The @p mark_pos-th fetched instruction
 * is the IUV (forced opcode, IUV-marked); when @p txm >= 0 the
 * @p txm_pos-th fetched instruction is forced to that opcode and
 * transmitter-marked (equal positions mark one instruction as both).
 * @p extra may inject additional per-cycle inputs (taint introduction,
 * sticky mode) with access to the pre-step simulator state.
 *
 * Always runs on the interpreted Simulator: SynthLC's leakage probes
 * need pre-step register access in @p extra, and the RNG draw order here
 * is part of the determinism contract its tests pin down.
 */
SimRun randomConstrainedRun(
    const designs::Harness &hx, const Design &design, unsigned cycles,
    uhb::InstrId iuv, unsigned mark_pos, int txm, unsigned txm_pos,
    const SimExploreConfig &cfg, std::mt19937_64 &rng,
    const std::function<void(unsigned, Simulator &, InputMap &)> &extra =
        {});

} // namespace rmp::r2m

#endif // RTL2MUPATH_SIM_EXPLORE_HH
