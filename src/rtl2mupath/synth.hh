/**
 * @file
 * RTL2MμPATH: multi-μPATH synthesis from a harnessed netlist (§V-B).
 *
 * The synthesis pipeline mirrors the paper step by step:
 *   1. PL reachability for the DUV (any instruction),
 *   2. PL reachability for the IUV,
 *   3. fine-grained pruning via dominates / exclusive / mandatory facts,
 *   4. PL-set reachability (exact-visited-set covers) -> Reachable PL Sets,
 *   5. revisit classification (consecutive / non-consecutive) per set,
 *   6. happens-before edge synthesis from combinational-connectivity
 *      candidates, evaluated per Reachable PL Set,
 *   7. (optional) revisit cycle-count enumeration (§V-B6 mode (i)),
 *   8. decision synthesis: exact-successor-set covers per decision source
 *      (§IV-B), consumed by SynthLC.
 *
 * Every fact above is established by a cover property evaluated by the BMC
 * engine; Reachable verdicts carry simulator-replayed witnesses from which
 * the concrete cycle-accurate schedules (the μHB graphs of the figures)
 * are extracted.
 */

#ifndef RTL2MUPATH_SYNTH_HH
#define RTL2MUPATH_SYNTH_HH

#include <map>
#include <string>
#include <vector>

#include "bmc/engine.hh"
#include "designs/harness.hh"
#include "exec/engine_pool.hh"
#include "rtl2mupath/sim_explore.hh"
#include "uhb/graph.hh"

namespace rmp::r2m
{

/** Synthesis configuration. */
struct SynthesisConfig
{
    /** Per-query SAT budget (0 = unlimited). */
    sat::SatBudget budget{};
    /**
     * Seed the synthesis with randomized-simulation exploration: facts
     * discovered by simulation are Reachable-with-witness and skip their
     * BMC covers; the engine then only runs closure and negative queries
     * (the semi-formal mode; see sim_explore.hh).
     */
    bool useSimExploration = true;
    SimExploreConfig explore{};
    /**
     * Run the BMC closure/negative queries (IUV-PL unreachability,
     * no-revisit/no-edge proofs, decision and count closure). When false,
     * only the Reachable-PL-Set closure query runs and everything else is
     * taken from simulation witnesses — the fast semi-formal profile the
     * benches use by default (equivalent to the paper's regime where the
     * remaining covers all time out and are read as unreachable,
     * §VII-B4).
     */
    bool closureChecks = true;
    /** Enumerate achievable visit counts per revisited PL (§V-B6 (i)). */
    bool revisitCounts = false;
    /** Largest visit count probed when revisitCounts is on. */
    unsigned maxRevisitCount = 16;
    /** Abort candidate-set enumeration beyond this many sets. */
    size_t maxCandidateSets = 4096;
    /**
     * Treat undetermined verdicts as reachable (true) or unreachable
     * (false, the paper's default — §VII-B3/B4).
     */
    bool undeterminedAsReachable = false;
    /**
     * Discover Reachable PL Sets and decisions with the paper's §V-B3/B4
     * procedure (dominates/exclusive pruning of the power set followed by
     * per-candidate covers) instead of the default witness-driven all-SAT
     * enumeration. Both are sound and bound-complete; the paper's
     * procedure issues O(|PLs|^2 + |candidates|) properties because a
     * black-box commercial verifier cannot enumerate witnesses
     * incrementally, while the all-SAT path issues O(|results|). The
     * ablation bench compares the two (DESIGN.md §4).
     */
    bool usePaperEnumeration = false;
    /**
     * Worker threads for parallel property evaluation (the reproduction's
     * stand-in for JasperGold's proof grid). 0 = hardware_concurrency().
     * Verdicts and synthesized results are identical for every value
     * (DESIGN.md §"Parallel evaluation").
     */
    unsigned jobs = 0;
    /** Engine lanes (0 = exec::EnginePool::kDefaultLanes). Fixed
     *  independently of jobs to keep verdicts jobs-invariant. */
    unsigned lanes = 0;
    /**
     * Unroll only each query's sequential cone of influence
     * (analysis::backwardCone) instead of the whole design.
     * Reachable/Unreachable verdicts are unchanged; BENCH_static_coi
     * measures the AIG/SAT-variable reduction.
     */
    bool coiPruning = false;
    /**
     * Discharge covers statically via the abstract-interpretation
     * fixpoint sharpened by μFSM reachable-state enumeration
     * (analysis::staticFacts; bmc::EngineConfig::staticPrune). μPATHs
     * and verdicts are identical with this on or off — a pruned cover
     * is one the solver would have proven Unreachable — which the
     * static-prune CI job asserts per DUV. On by default: the
     * semi-formal profile's remaining solver work is dominated by
     * exactly the unreachable PL-occupancy covers the facts refute.
     */
    bool staticPrune = true;
    /** Audit Reachable verdicts by simulator witness replay
     *  (bmc::EngineConfig::auditReplay). */
    bool auditReplay = false;
    /** Audit Unreachable verdicts against the solver's DRAT trace
     *  (bmc::EngineConfig::auditProof). */
    bool auditProof = false;
};

/** Statistics for one pipeline step (drives bench_perf_properties). */
struct StepStats
{
    std::string step;
    uint64_t queries = 0;
    uint64_t reachable = 0;
    uint64_t unreachable = 0;
    uint64_t undetermined = 0;
    double seconds = 0.0;
};

/** Pairwise pruning facts for one IUV (§V-B3). */
struct PruneFacts
{
    /** iuvPls[i] indexes into the harness PL universe. */
    std::vector<uhb::PlId> iuvPls;
    /** dom[i][j]: every execution visiting iuvPls[j] also visits [i]. */
    std::vector<std::vector<bool>> dom;
    /** excl[i][j]: no execution visits both. */
    std::vector<std::vector<bool>> excl;
    /** mandatory[i]: every completed execution visits iuvPls[i]. */
    std::vector<bool> mandatory;
};

/**
 * The synthesizer. One instance per harnessed DUV; step-1 results and the
 * BMC unrolling are shared across all IUVs.
 */
class MuPathSynthesizer
{
  public:
    MuPathSynthesizer(const designs::Harness &harness,
                      const SynthesisConfig &config = {});

    /** Step 1: PLs reachable by any instruction on the DUV. */
    const std::vector<uhb::PlId> &duvPls();

    /** Steps 2-8 for one instruction; returns its μPATHs and decisions. */
    uhb::InstrPaths synthesize(uhb::InstrId iuv);

    /**
     * Synthesize several instructions, exploiting cross-IUV parallelism:
     * simulation exploration runs concurrently for all IUVs and every
     * IUV's independent step-2 covers are prefetched through the engine
     * pool as one batch (per-IUV results then hit the query cache).
     * Results are deterministic and jobs-invariant; they match calling
     * synthesize() per IUV in order (the prefetch can only shift which
     * lane first proves a fact, never the verdict, except at SAT-budget
     * boundaries where both orders are individually deterministic).
     */
    std::map<uhb::InstrId, uhb::InstrPaths>
    synthesizeAll(const std::vector<uhb::InstrId> &iuvs);

    /** Step 2 only (used by modular flows). */
    std::vector<uhb::PlId> iuvPls(uhb::InstrId iuv);

    /** Step 3 only. */
    PruneFacts pruneFacts(uhb::InstrId iuv,
                          const std::vector<uhb::PlId> &iuv_pls);

    /** Candidate-set enumeration given pruning facts (pure, no solver). */
    std::vector<std::vector<uhb::PlId>>
    enumerateCandidateSets(const PruneFacts &facts) const;

    /** Per-step statistics accumulated so far. */
    const std::vector<StepStats> &stepStats() const { return stats_; }

    /** Simulation-exploration facts for @p iuv (cached; empty when the
     *  semi-formal mode is disabled). */
    const SimFacts &facts(uhb::InstrId iuv);

    /** Underlying engine pool (aggregate SAT/cache statistics). */
    const exec::EnginePool &pool() const { return pool_; }

    const designs::Harness &harness() const { return hx; }

  private:
    /** Build a pool query: seq under @p assumes plus the base assumes. */
    exec::Query mkQuery(const prop::ExprRef &seq,
                        std::vector<prop::ExprRef> assumes) const;

    /** Evaluate a cover, tally into the stats bucket for @p step. */
    bmc::CoverResult query(size_t step, const prop::ExprRef &seq,
                           std::vector<prop::ExprRef> assumes);

    /**
     * Evaluate a batch of *independent* covers through the pool; results
     * (and the per-step tallies, applied in submission order) are
     * identical to issuing the queries sequentially.
     */
    std::vector<bmc::CoverResult> queryBatch(size_t step,
                                             std::vector<exec::Query> qs);
    /** Reachability decision honoring the undetermined policy. */
    bool isReach(const bmc::CoverResult &r) const;

    prop::ExprRef exprVisitedExactly(
        const std::vector<uhb::PlId> &iuv_pls,
        const std::vector<uhb::PlId> &set) const;

    uhb::UPath buildPath(uhb::InstrId iuv,
                         const std::vector<uhb::PlId> &set,
                         const bmc::Witness &witness);

    /** Reachable PL Sets via the paper's §V-B3/B4 prune-and-cover. */
    std::vector<std::pair<std::vector<uhb::PlId>, bmc::Witness>>
    reachableSetsPaper(uhb::InstrId iuv,
                       const std::vector<uhb::PlId> &iuv_pls);

    /** Reachable PL Sets via witness-driven all-SAT enumeration. */
    std::vector<std::pair<std::vector<uhb::PlId>, bmc::Witness>>
    reachableSetsAllSat(uhb::InstrId iuv,
                        const std::vector<uhb::PlId> &iuv_pls);

    void synthesizeDecisions(uhb::InstrId iuv,
                             const std::vector<uhb::PlId> &iuv_pls,
                             uhb::InstrPaths &out);

    const designs::Harness &hx;
    SynthesisConfig cfg;
    exec::EnginePool pool_;
    std::vector<prop::ExprRef> base;
    std::vector<uhb::PlId> duvPls_;
    bool duvPlsDone = false;
    std::map<uhb::InstrId, SimFacts> factsCache;
    std::vector<StepStats> stats_;
};

} // namespace rmp::r2m

#endif // RTL2MUPATH_SYNTH_HH
