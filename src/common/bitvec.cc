#include "common/bitvec.hh"

#include <cstdio>

namespace rmp
{

std::string
BitVec::str() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%u'h%llx", _width,
                  static_cast<unsigned long long>(_value));
    return buf;
}

} // namespace rmp
