/**
 * @file
 * Minimal logging / fatal-error helpers in the spirit of gem5's
 * base/logging.hh. panic() marks internal invariant violations; fatal()
 * marks user/configuration errors.
 */

#ifndef COMMON_LOGGING_HH
#define COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace rmp
{

/** Abort with a message: an internal bug, never a user error. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Exit(1) with a message: a user/configuration error. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a warning to stderr and continue. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace rmp

#define rmp_panic(...) ::rmp::panicImpl(__FILE__, __LINE__, \
                                        ::rmp::strfmt(__VA_ARGS__))
#define rmp_fatal(...) ::rmp::fatalImpl(__FILE__, __LINE__, \
                                        ::rmp::strfmt(__VA_ARGS__))
#define rmp_assert(cond, ...)                                          \
    do {                                                               \
        if (!(cond))                                                   \
            ::rmp::panicImpl(__FILE__, __LINE__,                       \
                             std::string("assertion failed: " #cond    \
                                         " — ") +                      \
                                 ::rmp::strfmt(__VA_ARGS__));          \
    } while (0)

#endif // COMMON_LOGGING_HH
