#include "common/table.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace rmp
{

void
AsciiTable::setHeader(std::vector<std::string> cols)
{
    header = std::move(cols);
}

void
AsciiTable::addRow(std::vector<std::string> cols)
{
    rmp_assert(header.empty() || cols.size() == header.size(),
               "row has %zu columns, header has %zu", cols.size(),
               header.size());
    rows.push_back(std::move(cols));
}

void
AsciiTable::addSeparator()
{
    rows.emplace_back();
}

size_t
AsciiTable::numRows() const
{
    size_t n = 0;
    for (const auto &r : rows)
        if (!r.empty())
            n++;
    return n;
}

std::string
AsciiTable::str() const
{
    size_t ncols = header.size();
    for (const auto &r : rows)
        ncols = std::max(ncols, r.size());
    std::vector<size_t> w(ncols, 0);
    auto widen = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); i++)
            w[i] = std::max(w[i], r[i].size());
    };
    widen(header);
    for (const auto &r : rows)
        widen(r);

    std::ostringstream os;
    auto sep = [&]() {
        os << '+';
        for (size_t i = 0; i < ncols; i++)
            os << std::string(w[i] + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string> &r) {
        os << '|';
        for (size_t i = 0; i < ncols; i++) {
            std::string cell = i < r.size() ? r[i] : "";
            os << ' ' << cell << std::string(w[i] - cell.size(), ' ')
               << " |";
        }
        os << '\n';
    };
    sep();
    if (!header.empty()) {
        emit(header);
        sep();
    }
    for (const auto &r : rows) {
        if (r.empty())
            sep();
        else
            emit(r);
    }
    sep();
    return os.str();
}

} // namespace rmp
