/**
 * @file
 * Simple ASCII table renderer used by the report module and the benches to
 * print paper-style tables and figure summaries.
 */

#ifndef COMMON_TABLE_HH
#define COMMON_TABLE_HH

#include <string>
#include <vector>

namespace rmp
{

/** Row-oriented ASCII table with a header and left-aligned columns. */
class AsciiTable
{
  public:
    /** Set the header row. Column count is fixed by this call. */
    void setHeader(std::vector<std::string> cols);

    /** Append a data row; must match the header column count. */
    void addRow(std::vector<std::string> cols);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table. */
    std::string str() const;

    /** Number of data rows (separators excluded). */
    size_t numRows() const;

  private:
    std::vector<std::string> header;
    // Empty vector encodes a separator.
    std::vector<std::vector<std::string>> rows;
};

} // namespace rmp

#endif // COMMON_TABLE_HH
