/**
 * @file
 * Fixed-width two-state bit vector used throughout the netlist IR,
 * simulator, and bit-blaster.
 *
 * Widths are limited to 64 bits: every signal in our scaled designs fits,
 * and a single machine word keeps the simulator and the taint shadow logic
 * cheap. Values are always kept masked to their declared width so that
 * equality and hashing are well defined.
 */

#ifndef COMMON_BITVEC_HH
#define COMMON_BITVEC_HH

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>

namespace rmp
{

/** A value of a fixed bit width (1..64), always masked to that width. */
class BitVec
{
  public:
    /** Default: 1-bit zero. */
    BitVec() : _width(1), _value(0) {}

    /** Construct a @p width bit value holding @p value (masked). */
    BitVec(unsigned width, uint64_t value)
        : _width(width), _value(value & maskOf(width))
    {
        assert(width >= 1 && width <= 64);
    }

    /** Width in bits. */
    unsigned width() const { return _width; }

    /** Raw value, guaranteed masked to width(). */
    uint64_t value() const { return _value; }

    /** Bit @p i (0 = LSB). */
    bool bit(unsigned i) const { return i < _width && ((_value >> i) & 1); }

    /** All-ones mask for @p width bits. */
    static uint64_t
    maskOf(unsigned width)
    {
        return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
    }

    /** Mask for this vector's width. */
    uint64_t mask() const { return maskOf(_width); }

    /** Value sign-extended to 64 bits (two's complement). */
    int64_t
    toSigned() const
    {
        if (_width == 64)
            return static_cast<int64_t>(_value);
        uint64_t sign = 1ULL << (_width - 1);
        return static_cast<int64_t>((_value ^ sign)) -
               static_cast<int64_t>(sign);
    }

    bool
    operator==(const BitVec &o) const
    {
        return _width == o._width && _value == o._value;
    }
    bool operator!=(const BitVec &o) const { return !(*this == o); }

    /** Render as width'hHEX, e.g. 4'h9. */
    std::string str() const;

  private:
    unsigned _width;
    uint64_t _value;
};

} // namespace rmp

namespace std
{
template <>
struct hash<rmp::BitVec>
{
    size_t
    operator()(const rmp::BitVec &v) const
    {
        return std::hash<uint64_t>()(v.value() * 0x9e3779b97f4a7c15ULL +
                                     v.width());
    }
};
} // namespace std

#endif // COMMON_BITVEC_HH
