/**
 * @file
 * And-inverter graph with structural hashing and constant folding.
 *
 * The bit-blaster lowers the word-level netlist into this representation,
 * one literal per signal bit per time frame. Structural hashing plus
 * constant folding is what keeps property cones small after the harness
 * pins instruction encodings to constants (DESIGN.md §4 ablation 2).
 */

#ifndef BMC_AIG_HH
#define BMC_AIG_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rmp::bmc
{

/**
 * AIG literal: node index * 2 + negation flag.
 * Node 0 is the constant FALSE node, so lit 0 = false, lit 1 = true.
 */
using AigLit = uint32_t;

constexpr AigLit kFalse = 0;
constexpr AigLit kTrue = 1;

inline AigLit aigNot(AigLit l) { return l ^ 1; }
inline uint32_t aigNode(AigLit l) { return l >> 1; }
inline bool aigSign(AigLit l) { return l & 1; }

/** The graph: node 0 = const false, others are inputs or AND gates. */
class Aig
{
  public:
    Aig();

    /** Create a primary input; returns its (positive) literal. */
    AigLit addInput();

    /** AND with folding and structural hashing. */
    AigLit mkAnd(AigLit a, AigLit b);

    /** Derived gates. */
    AigLit mkOr(AigLit a, AigLit b) { return aigNot(mkAnd(aigNot(a), aigNot(b))); }
    AigLit mkXor(AigLit a, AigLit b);
    AigLit mkMux(AigLit sel, AigLit t, AigLit f);
    AigLit mkXnor(AigLit a, AigLit b) { return aigNot(mkXor(a, b)); }

    /** N-ary helpers (balanced trees). */
    AigLit mkAndN(const std::vector<AigLit> &ls);
    AigLit mkOrN(const std::vector<AigLit> &ls);

    /** True iff node @p n is a primary input. */
    bool isInput(uint32_t n) const { return nodes[n].isInput; }

    /** Fan-ins of AND node @p n. */
    AigLit fanin0(uint32_t n) const { return nodes[n].a; }
    AigLit fanin1(uint32_t n) const { return nodes[n].b; }

    size_t numNodes() const { return nodes.size(); }
    size_t numAnds() const { return andCount; }

  private:
    struct Node
    {
        AigLit a = 0, b = 0;
        bool isInput = false;
    };

    struct Key
    {
        AigLit a, b;
        bool operator==(const Key &o) const { return a == o.a && b == o.b; }
    };
    struct KeyHash
    {
        size_t
        operator()(const Key &k) const
        {
            return k.a * 0x9e3779b97f4a7c15ULL ^ (uint64_t(k.b) << 17);
        }
    };

    std::vector<Node> nodes;
    std::unordered_map<Key, AigLit, KeyHash> strash;
    size_t andCount = 0;
};

} // namespace rmp::bmc

#endif // BMC_AIG_HH
