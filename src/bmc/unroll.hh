/**
 * @file
 * Time-frame unrolling of a netlist into an AIG.
 *
 * Frame 0 registers take their reset values (the paper's "valid reset
 * state", §V-B); frame t>0 registers take the previous frame's next-state
 * values. Inputs are fresh AIG inputs per frame, which is exactly the
 * paper's setup of driving issued instructions at the IFR with the model
 * checker (§VI) — constraints on those inputs come from assume properties.
 */

#ifndef BMC_UNROLL_HH
#define BMC_UNROLL_HH

#include <vector>

#include "bmc/aig.hh"
#include "rtlir/design.hh"

namespace rmp::bmc
{

/** A word as a vector of AIG literals, LSB first. */
using Word = std::vector<AigLit>;

/**
 * Lazily bit-blasts frames of a Design into one shared AIG.
 *
 * frame(t) materializes frames 0..t. sig(t, id) returns the literals of
 * signal @p id during cycle t. inputVar(t, id, bit) exposes the AIG input
 * node index backing an Input cell bit, for witness extraction.
 */
class Unrolling
{
  public:
    explicit Unrolling(const Design &design);

    const Design &design() const { return d; }
    Aig &aig() { return g; }

    /** Ensure frames 0..t exist. */
    void ensureFrames(unsigned t);

    /** Number of materialized frames. */
    unsigned numFrames() const { return static_cast<unsigned>(frames.size()); }

    /** Literals of signal @p id at frame @p t (materializes frames). */
    const Word &sig(unsigned t, SigId id);

    /** Single bit of a signal at a frame. */
    AigLit sigBit(unsigned t, SigId id, unsigned bit);

    /** AIG input literal backing bit @p bit of Input cell @p id at @p t. */
    AigLit inputLit(unsigned t, SigId id, unsigned bit) const;

    /** Equality of a signal with a constant, as one literal. */
    AigLit sigEqConst(unsigned t, SigId id, uint64_t value);

  private:
    void buildFrame();

    const Design &d;
    Aig g;
    /** frames[t][sigId] = word of literals. */
    std::vector<std::vector<Word>> frames;
    /** inputLits[t][inputIndexInDesign] = word of input literals. */
    std::vector<std::vector<Word>> inputWords;
};

} // namespace rmp::bmc

#endif // BMC_UNROLL_HH
