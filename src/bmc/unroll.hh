/**
 * @file
 * Time-frame unrolling of a netlist into an AIG.
 *
 * Frame 0 registers take their reset values (the paper's "valid reset
 * state", §V-B); frame t>0 registers take the previous frame's next-state
 * values. Inputs are fresh AIG inputs per frame, which is exactly the
 * paper's setup of driving issued instructions at the IFR with the model
 * checker (§VI) — constraints on those inputs come from assume properties.
 */

#ifndef BMC_UNROLL_HH
#define BMC_UNROLL_HH

#include <vector>

#include "bmc/aig.hh"
#include "rtlir/design.hh"

namespace rmp::bmc
{

/** A word as a vector of AIG literals, LSB first. */
using Word = std::vector<AigLit>;

/**
 * Lazily bit-blasts frames of a Design into one shared AIG.
 *
 * frame(t) materializes frames 0..t. sig(t, id) returns the literals of
 * signal @p id during cycle t. inputVar(t, id, bit) exposes the AIG input
 * node index backing an Input cell bit, for witness extraction.
 *
 * An optional cone-of-influence mask restricts the unrolling: registers
 * and combinational cells outside the mask are never bit-blasted, so
 * their AIG nodes (and downstream SAT variables) are never created. The
 * mask must be backward-closed — every operand of a member cell is a
 * member (analysis::backwardCone's fixpoint guarantees this) — or frame
 * construction panics. Inputs are always materialized (each is one free
 * AIG node; keeping them uniform keeps witness extraction cone-agnostic).
 *
 * An optional mux-select vector (analysis::muxSelectFacts) marks Mux
 * cells whose select is a proven constant on every reachable cycle; such
 * a mux emits its taken arm's literals verbatim, reading neither the
 * select word nor the dead arm. The vector MUST be the same one the COI
 * mask was narrowed with (backwardCone's muxSel argument), or closure
 * breaks: the mask may omit exactly the words the fixed muxes skip.
 */
class Unrolling
{
  public:
    /** @p coi_mask: per-cell membership (empty = unrestricted).
     *  @p mux_sel: per-cell fixed mux select, -1/0/1 (empty = none). */
    explicit Unrolling(const Design &design,
                       std::vector<uint8_t> coi_mask = {},
                       std::vector<int8_t> mux_sel = {});

    const Design &design() const { return d; }
    Aig &aig() { return g; }
    const Aig &aig() const { return g; }

    /** Ensure frames 0..t exist. */
    void ensureFrames(unsigned t);

    /** Number of materialized frames. */
    unsigned numFrames() const { return static_cast<unsigned>(frames.size()); }

    /** Literals of signal @p id at frame @p t (materializes frames). */
    const Word &sig(unsigned t, SigId id);

    /** Single bit of a signal at a frame. */
    AigLit sigBit(unsigned t, SigId id, unsigned bit);

    /** AIG input literal backing bit @p bit of Input cell @p id at @p t. */
    AigLit inputLit(unsigned t, SigId id, unsigned bit) const;

    /** Equality of a signal with a constant, as one literal. */
    AigLit sigEqConst(unsigned t, SigId id, uint64_t value);

    /** True when a COI mask restricts this unrolling. */
    bool restricted() const { return !mask.empty(); }

    /** True when cell @p id is materialized by this unrolling. */
    bool
    materializes(SigId id) const
    {
        return mask.empty() || mask[id] ||
               d.cell(id).op == Op::Input;
    }

  private:
    void buildFrame();

    const Design &d;
    /** COI membership per cell; empty = all cells. */
    std::vector<uint8_t> mask;
    /** Fixed mux selects per cell (-1 = not fixed); empty = none. */
    std::vector<int8_t> muxSel;
    Aig g;
    /** frames[t][sigId] = word of literals. */
    std::vector<std::vector<Word>> frames;
    /** inputLits[t][inputIndexInDesign] = word of input literals. */
    std::vector<std::vector<Word>> inputWords;
};

} // namespace rmp::bmc

#endif // BMC_UNROLL_HH
