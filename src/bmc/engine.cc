#include "bmc/engine.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "sim/batch.hh"

namespace rmp::bmc
{

const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Reachable: return "reachable";
      case Outcome::Unreachable: return "unreachable";
      case Outcome::Undetermined: return "undetermined";
    }
    return "?";
}

StaticTern
staticEval(const Design &design, const analysis::AbsFacts &facts,
           const prop::ExprRef &e)
{
    using K = prop::ExprKind;
    switch (e->kind) {
      case K::True:
        return StaticTern::True;
      case K::SigEqConst: {
          const analysis::AbsVal &v = facts.of(e->sig);
          // Compare in-width bits only (the bit-blasted semantics:
          // sigEqConst never reads constant bits past the signal width).
          uint64_t mask = BitVec::maskOf(design.cell(e->sig).width);
          uint64_t c = e->value & mask;
          if (!v.admits(c))
              return StaticTern::False;
          if (v.known(mask) && v.cval() == c)
              return StaticTern::True;
          return StaticTern::Unknown;
      }
      case K::SigBit: {
          if (e->value >= design.cell(e->sig).width)
              return StaticTern::Unknown;
          const analysis::AbsVal &v = facts.of(e->sig);
          uint64_t bit = 1ULL << e->value;
          if (v.zeros & bit)
              return StaticTern::False;
          if (v.ones & bit)
              return StaticTern::True;
          return StaticTern::Unknown;
      }
      case K::Not:
        switch (staticEval(design, facts, e->a)) {
          case StaticTern::False: return StaticTern::True;
          case StaticTern::True: return StaticTern::False;
          case StaticTern::Unknown: return StaticTern::Unknown;
        }
        return StaticTern::Unknown;
      case K::And: {
          StaticTern a = staticEval(design, facts, e->a);
          StaticTern b = staticEval(design, facts, e->b);
          if (a == StaticTern::False || b == StaticTern::False)
              return StaticTern::False;
          if (a == StaticTern::True && b == StaticTern::True)
              return StaticTern::True;
          return StaticTern::Unknown;
      }
      case K::Or: {
          StaticTern a = staticEval(design, facts, e->a);
          StaticTern b = staticEval(design, facts, e->b);
          if (a == StaticTern::True || b == StaticTern::True)
              return StaticTern::True;
          if (a == StaticTern::False && b == StaticTern::False)
              return StaticTern::False;
          return StaticTern::Unknown;
      }
      case K::Delay: {
          // a ##k b: the facts are time-invariant, so a constant-false
          // child falsifies the sequence at every alignment. Never True:
          // the bounded semantics falsifies matches whose delayed child
          // would land past the unrolling bound.
          StaticTern a = staticEval(design, facts, e->a);
          StaticTern b = staticEval(design, facts, e->b);
          if (a == StaticTern::False || b == StaticTern::False)
              return StaticTern::False;
          return StaticTern::Unknown;
      }
    }
    return StaticTern::Unknown;
}

Engine::Engine(const Design &design, const EngineConfig &config)
    : d(design), cfg(config)
{
    rmp_assert(cfg.bound >= 1, "bound must be positive");
    if (cfg.staticPrune) {
        if (!cfg.staticFacts)
            cfg.staticFacts = std::make_shared<const analysis::AbsFacts>(
                analysis::absInterpret(d));
        rmp_assert(cfg.staticFacts->val.size() == d.numCells(),
                   "static facts cover %zu of %zu cells",
                   cfg.staticFacts->val.size(), d.numCells());
        if (cfg.coiPruning)
            muxSel_ = analysis::muxSelectFacts(d, *cfg.staticFacts);
    }
    if (!cfg.coiPruning) {
        full_ = std::make_unique<Ctx>(
            d, std::vector<uint8_t>{}, std::vector<int8_t>{},
            static_cast<uint32_t>(d.numCells()), cfg.auditProof);
        full_->unrolling.ensureFrames(cfg.bound - 1);
        coi_.conesBuilt = 1;
    }
}

Engine::Ctx &
Engine::ctxFor(const prop::ExprRef &seq,
               const std::vector<prop::ExprRef> &assumes)
{
    if (!cfg.coiPruning)
        return *full_;
    std::vector<SigId> roots;
    prop::collectSigs(seq, &roots);
    for (const auto &a : assumes)
        prop::collectSigs(a, &roots);
    // The narrowed cone and the unrolling must share one muxSel vector:
    // the cone omits exactly the cells the fixed muxes skip reading.
    const std::vector<int8_t> *ms = muxSel_.empty() ? nullptr : &muxSel_;
    analysis::Cone cone = analysis::backwardCone(d, roots, -1, ms);
    auto it = cones_.find(cone.fingerprint);
    if (it == cones_.end()) {
        auto ctx = std::make_unique<Ctx>(
            d, std::move(cone.inCone), muxSel_,
            static_cast<uint32_t>(cone.size()), cfg.auditProof);
        ctx->unrolling.ensureFrames(cfg.bound - 1);
        it = cones_.emplace(cone.fingerprint, std::move(ctx)).first;
        coi_.conesBuilt++;
    }
    return *it->second;
}

bool
Engine::staticallyFalse(const prop::ExprRef &seq,
                        const std::vector<prop::ExprRef> &assumes) const
{
    if (!cfg.staticPrune || !cfg.staticFacts)
        return false;
    if (staticEval(d, *cfg.staticFacts, seq) == StaticTern::False)
        return true;
    // An assume that is statically false fails at cycle 0 of every
    // reachable trace: the query is vacuous, hence Unreachable.
    for (const auto &a : assumes)
        if (staticEval(d, *cfg.staticFacts, a) == StaticTern::False)
            return true;
    return false;
}

sat::Lit
Engine::satLit(Ctx &ctx, AigLit lit)
{
    // Iteratively Tseitin-encode the cone under `lit`.
    sat::Solver &solver = ctx.solver;
    std::vector<int32_t> &nodeVar = ctx.nodeVar;
    uint32_t root = aigNode(lit);
    if (nodeVar.size() < ctx.unrolling.aig().numNodes())
        nodeVar.resize(ctx.unrolling.aig().numNodes(), -1);
    std::vector<uint32_t> stack{root};
    while (!stack.empty()) {
        uint32_t n = stack.back();
        if (nodeVar[n] >= 0) {
            stack.pop_back();
            continue;
        }
        if (n == 0) {
            // Constant-false node: a var pinned to false.
            sat::Var v = solver.newVar();
            solver.addClause(~sat::mkLit(v));
            nodeVar[0] = v;
            stack.pop_back();
            continue;
        }
        const Aig &g = ctx.unrolling.aig();
        if (g.isInput(n)) {
            nodeVar[n] = solver.newVar();
            stack.pop_back();
            continue;
        }
        uint32_t n0 = aigNode(g.fanin0(n));
        uint32_t n1 = aigNode(g.fanin1(n));
        bool ready = true;
        if (nodeVar[n0] < 0) {
            stack.push_back(n0);
            ready = false;
        }
        if (nodeVar[n1] < 0) {
            stack.push_back(n1);
            ready = false;
        }
        if (!ready)
            continue;
        sat::Var v = solver.newVar();
        sat::Lit lv = sat::mkLit(v);
        sat::Lit la(nodeVar[n0], aigSign(g.fanin0(n)));
        sat::Lit lb(nodeVar[n1], aigSign(g.fanin1(n)));
        // v <-> la & lb
        solver.addClause(~lv, la);
        solver.addClause(~lv, lb);
        solver.addClause(lv, ~la, ~lb);
        nodeVar[n] = v;
        stack.pop_back();
    }
    return sat::Lit(nodeVar[root], aigSign(lit));
}

CoverResult
Engine::cover(const prop::ExprRef &seq,
              const std::vector<prop::ExprRef> &assumes)
{
    return run(seq, assumes, -1);
}

CoverResult
Engine::coverAt(const prop::ExprRef &seq,
                const std::vector<prop::ExprRef> &assumes, unsigned frame)
{
    return run(seq, assumes, static_cast<int>(frame));
}

Engine::ProveOutcome
Engine::prove(const prop::ExprRef &invariant,
              const std::vector<prop::ExprRef> &assumes, Witness *cex)
{
    CoverResult r = cover(prop::pNot(invariant), assumes);
    switch (r.outcome) {
      case Outcome::Unreachable:
        return ProveOutcome::Proven;
      case Outcome::Reachable:
        if (cex)
            *cex = std::move(r.witness);
        return ProveOutcome::Falsified;
      case Outcome::Undetermined:
        return ProveOutcome::Undetermined;
    }
    return ProveOutcome::Undetermined;
}

CoverResult
Engine::run(const prop::ExprRef &seq,
            const std::vector<prop::ExprRef> &assumes, int fixed_frame)
{
    obs::Span span("bmc-cover", "bmc");
    auto t0 = std::chrono::steady_clock::now();

    // Static pruning: a cover refuted by the absint facts is Unreachable
    // without unrolling or solving. Under verdict auditing the query
    // falls through to the solver and the answers are reconciled below.
    const bool static_false = staticallyFalse(seq, assumes);
    const bool auditing = cfg.auditReplay || cfg.auditProof;
    if (static_false && !auditing) {
        CoverResult res;
        res.outcome = Outcome::Unreachable;
        auto t1 = std::chrono::steady_clock::now();
        res.seconds = std::chrono::duration<double>(t1 - t0).count();
        stats_.queries++;
        stats_.unreachable++;
        stats_.staticPruned++;
        stats_.totalSeconds += res.seconds;
        coi_.queries++;
        coi_.designCells += d.numCells();
        if (span.active()) {
            span.arg("outcome", static_cast<uint64_t>(res.outcome));
            span.arg("static_pruned", uint64_t{1});
            obs::Registry &reg = obs::Registry::global();
            reg.counter("bmc.queries",
                        {{"outcome", outcomeName(res.outcome)}})
                .add(1);
            reg.counter("absint.covers_pruned").add(1);
            reg.histogram("bmc.query_ns")
                .record(static_cast<uint64_t>(res.seconds * 1e9));
        }
        return res;
    }

    Ctx &ctx = ctxFor(seq, assumes);
    Unrolling &unrolling = ctx.unrolling;
    Aig &g = unrolling.aig();

    // Cover literal: OR over permitted start frames.
    std::vector<AigLit> starts;
    if (fixed_frame >= 0) {
        starts.push_back(
            prop::compile(seq, unrolling, fixed_frame, cfg.bound));
    } else {
        for (unsigned t = 0; t < cfg.bound; t++)
            starts.push_back(prop::compile(seq, unrolling, t, cfg.bound));
    }
    AigLit cover_lit = g.mkOrN(starts);

    // Assumption literals: each assume holds at every frame.
    std::vector<sat::Lit> assumptions;
    bool vacuous = false;
    for (const auto &a : assumes) {
        unsigned last = cfg.bound > a->depth() ? cfg.bound - a->depth() : 1;
        for (unsigned t = 0; t < last && !vacuous; t++) {
            AigLit l = prop::compile(a, unrolling, t, cfg.bound);
            if (l == kTrue)
                continue;
            if (l == kFalse) {
                // Vacuous: assumes are contradictory within the bound.
                vacuous = true;
                break;
            }
            assumptions.push_back(satLit(ctx, l));
        }
        if (vacuous)
            break;
    }

    CoverResult res;
    if (vacuous || cover_lit == kFalse) {
        res.outcome = Outcome::Unreachable;
    } else {
        // The cover literal goes FIRST: deciding it immediately focuses
        // the search on executions that could match, which speeds both
        // witness discovery and unreachability proofs considerably.
        assumptions.insert(assumptions.begin(), satLit(ctx, cover_lit));
        sat::SatResult sres = ctx.solver.solve(assumptions, cfg.budget);
        switch (sres) {
          case sat::SatResult::Sat:
            res.outcome = Outcome::Reachable;
            res.witness = extractWitness(ctx, seq, assumes, &res.audit);
            break;
          case sat::SatResult::Unsat:
            res.outcome = Outcome::Unreachable;
            // Trust-but-verify: close this unsat frame against the
            // solver's DRAT trace. ok() guards the additions (every
            // learned clause was RUP when derived); checkUnsat() confirms
            // clauses + this query's assumption units propagate to a
            // conflict.
            if (ctx.drat) {
                res.audit.proofChecked = true;
                if (!ctx.drat->ok()) {
                    res.audit.mismatch = true;
                    res.audit.detail = "DRAT audit: " +
                                       ctx.drat->firstFailure();
                } else if (!ctx.drat->checkUnsat(assumptions)) {
                    res.audit.mismatch = true;
                    res.audit.detail =
                        "DRAT audit: unsat verdict not closed by unit "
                        "propagation over the logged clause set";
                }
            }
            break;
          case sat::SatResult::Undetermined:
            res.outcome = Outcome::Undetermined;
            break;
        }
    }

    if (static_false) {
        // Audit fall-through: the solver re-proved the pruned query. A
        // Reachable answer contradicts the static proof — one of the two
        // is defective; record it for the caller to quarantine. Either
        // way the reported verdict matches the non-audited path.
        stats_.staticPruned++;
        if (res.outcome == Outcome::Reachable) {
            res.audit.mismatch = true;
            res.audit.detail =
                "static prune audit: solver found a witness for a "
                "statically-false cover";
            res.witness = Witness{};
        }
        res.outcome = Outcome::Unreachable;
    }

    auto t1 = std::chrono::steady_clock::now();
    res.seconds = std::chrono::duration<double>(t1 - t0).count();
    res.coiCells = ctx.cells;
    res.aigNodes = g.numNodes();
    res.satVars = static_cast<uint64_t>(ctx.solver.numVars());
    stats_.queries++;
    stats_.totalSeconds += res.seconds;
    coi_.queries++;
    coi_.coneCells += ctx.cells;
    coi_.designCells += d.numCells();
    switch (res.outcome) {
      case Outcome::Reachable: stats_.reachable++; break;
      case Outcome::Unreachable: stats_.unreachable++; break;
      case Outcome::Undetermined: stats_.undetermined++; break;
    }
    if (res.audit.replayed)
        stats_.auditReplayed++;
    if (res.audit.proofChecked)
        stats_.auditProofChecked++;
    if (res.audit.mismatch) {
        stats_.auditMismatches++;
        warn(strfmt("verdict audit mismatch (%s query): %s",
                    outcomeName(res.outcome), res.audit.detail.c_str()));
    }
    if (span.active()) {
        span.arg("outcome", static_cast<uint64_t>(res.outcome));
        span.arg("coi_cells", res.coiCells);
        span.arg("aig_nodes", res.aigNodes);
        span.arg("sat_vars", res.satVars);
        span.arg("cnf_clauses", ctx.solver.numClauses());
        obs::Registry &reg = obs::Registry::global();
        reg.counter("bmc.queries",
                    {{"outcome", outcomeName(res.outcome)}})
            .add(1);
        reg.histogram("bmc.query_ns")
            .record(static_cast<uint64_t>(res.seconds * 1e9));
        reg.histogram("bmc.coi.cone_cells").record(res.coiCells);
        reg.gauge("bmc.aig_nodes").set(static_cast<int64_t>(res.aigNodes));
        reg.gauge("bmc.cnf_clauses")
            .set(static_cast<int64_t>(ctx.solver.numClauses()));
        reg.gauge("bmc.sat_vars").set(static_cast<int64_t>(res.satVars));
        if (static_false)
            reg.counter("absint.covers_pruned").add(1);
        if (res.audit.replayed)
            reg.counter("audit.replayed").add(1);
        if (res.audit.proofChecked)
            reg.counter("audit.proof_checked").add(1);
        if (res.audit.mismatch)
            reg.counter("audit.mismatch").add(1);
    }
    return res;
}

CoiStats
Engine::coiStats() const
{
    CoiStats s = coi_;
    auto fold = [&](const Ctx &ctx) {
        s.aigNodes += ctx.unrolling.aig().numNodes();
        s.satVars += static_cast<uint64_t>(ctx.solver.numVars());
    };
    if (full_)
        fold(*full_);
    for (const auto &[fp, ctx] : cones_)
        fold(*ctx);
    return s;
}

sat::SatStats
Engine::satStats() const
{
    sat::SatStats s;
    auto fold = [&](const Ctx &ctx) {
        const sat::SatStats &st = ctx.solver.stats();
        s.conflicts += st.conflicts;
        s.decisions += st.decisions;
        s.propagations += st.propagations;
        s.restarts += st.restarts;
        s.learnedClauses += st.learnedClauses;
        s.removedClauses += st.removedClauses;
    };
    if (full_)
        fold(*full_);
    for (const auto &[fp, ctx] : cones_)
        fold(*ctx);
    return s;
}

namespace
{

/** Evaluate the cover match and assume conditions on rc.trace. Shared by
 *  the interpreted and compiled replay paths so both apply the exact
 *  same acceptance criteria. */
void
evalReplay(ReplayCheck &rc, const prop::ExprRef &seq,
           const std::vector<prop::ExprRef> &assumes, unsigned bound)
{
    for (unsigned t = 0; t < bound && !rc.matched; t++) {
        if (prop::evalOnTrace(seq, rc.trace, t)) {
            rc.matched = true;
            rc.matchFrame = t;
        }
    }
    for (const auto &a : assumes) {
        unsigned last = bound > a->depth() ? bound - a->depth() : 1;
        for (unsigned t = 0; t < last && rc.assumesHold; t++) {
            if (!prop::evalOnTrace(a, rc.trace, t)) {
                rc.assumesHold = false;
                rc.failCycle = t;
            }
        }
        if (!rc.assumesHold)
            break;
    }
}

} // anonymous namespace

ReplayCheck
replayWitness(const Design &design, const std::vector<InputMap> &inputs,
              const prop::ExprRef &seq,
              const std::vector<prop::ExprRef> &assumes, unsigned bound)
{
    ReplayCheck rc;
    Simulator sim(design);
    sim.reserveTrace(std::min<size_t>(bound, inputs.size()));
    for (unsigned t = 0; t < bound && t < inputs.size(); t++)
        sim.step(inputs[t]);
    rc.trace = sim.trace();
    evalReplay(rc, seq, assumes, bound);
    return rc;
}

ReplayCheck
replayWitnessCompiled(const sim::Tape &tape, const Design &design,
                      const std::vector<InputMap> &inputs,
                      const prop::ExprRef &seq,
                      const std::vector<prop::ExprRef> &assumes,
                      unsigned bound, sim::SimBackend backend)
{
    ReplayCheck rc;
    sim::BatchSim bs(tape, 1, backend);
    bs.reserveTrace(std::min<size_t>(bound, inputs.size()));
    for (unsigned t = 0; t < bound && t < inputs.size(); t++) {
        bs.clearInputs();
        bs.stageInputs(0, inputs[t]);
        bs.step();
    }
    rc.trace = bs.laneTrace(0, design.numCells());
    evalReplay(rc, seq, assumes, bound);
    return rc;
}

const sim::Tape &
Engine::replayTapeFor(const prop::ExprRef &seq,
                      const std::vector<prop::ExprRef> &assumes)
{
    // Known-bits facts constantize tape cells beyond syntactic folding;
    // sound here because replays only ever run reachable-from-reset
    // stimulus (the facts' trace set). Seed once per engine.
    if (cfg.staticPrune && cfg.staticFacts && replayFold_.kbDesign != &d)
        analysis::seedFoldCache(d, *cfg.staticFacts, &replayFold_);
    if (replayWatched_.empty())
        replayWatched_.assign(d.numCells(), 0);
    bool grew = replayTape_ == nullptr;
    auto add = [&](SigId s) {
        if (s != kNoSig && !replayWatched_[s]) {
            replayWatched_[s] = 1;
            replayWatch_.push_back(s);
            grew = true;
        }
    };
    for (SigId s : cfg.witnessWatch)
        add(s);
    std::vector<SigId> support;
    prop::collectSigs(seq, &support);
    for (const auto &a : assumes)
        prop::collectSigs(a, &support);
    for (SigId s : support)
        add(s);
    // Recompile only when the watch closure grows; in steady state every
    // query template's support is already covered and the tape is shared
    // across all replays on this engine.
    if (grew)
        replayTape_ = std::make_unique<sim::Tape>(
            sim::compileTape(d, replayWatch_, &replayFold_));
    return *replayTape_;
}

Witness
Engine::extractWitness(Ctx &ctx, const prop::ExprRef &seq,
                       const std::vector<prop::ExprRef> &assumes,
                       VerdictAudit *audit)
{
    obs::Span span("witness-extract", "bmc");
    if (span.active()) {
        span.arg("bound", cfg.bound);
        span.arg("validated", cfg.validateWitnesses);
        obs::Registry::global().counter("bmc.witnesses").add(1);
    }
    Witness w;
    w.inputs.resize(cfg.bound);
    for (unsigned t = 0; t < cfg.bound; t++) {
        for (SigId in : d.inputs()) {
            uint64_t val = 0;
            unsigned width = d.cell(in).width;
            for (unsigned bit = 0; bit < width; bit++) {
                AigLit l = ctx.unrolling.inputLit(t, in, bit);
                uint32_t n = aigNode(l);
                bool v = false;
                if (n < ctx.nodeVar.size() && ctx.nodeVar[n] >= 0)
                    v = ctx.solver.modelValue(ctx.nodeVar[n]) !=
                        aigSign(l);
                if (v)
                    val |= 1ULL << bit;
            }
            w.inputs[t][in] = val;
        }
    }
    if (cfg.validateWitnesses || cfg.auditReplay) {
        // Independent soundness cross-check: replay the decoded stimulus
        // and confirm the sequence matches and all assumes hold. The
        // audit always replays on the interpreted simulator — it is the
        // trusted oracle the compiled engine itself is checked against —
        // while plain validation may ride the compiled tape when the
        // caller opted in (sparse watch-set traces suffice for it).
        ReplayCheck rc =
            cfg.compiledReplay && !cfg.auditReplay
                ? replayWitnessCompiled(replayTapeFor(seq, assumes), d,
                                        w.inputs, seq, assumes, cfg.bound,
                                        cfg.simBackend)
                : replayWitness(d, w.inputs, seq, assumes, cfg.bound);
        if (cfg.auditReplay && audit) {
            // Audit mode records the mismatch for the caller to report
            // and quarantine; hard-asserting here would take down a whole
            // synthesis run on the first solver defect found.
            audit->replayed = true;
            if (!rc.ok()) {
                audit->mismatch = true;
                audit->detail =
                    !rc.matched
                        ? "witness replay: cover did not match on the "
                          "simulator"
                        : strfmt("witness replay: assume violated at "
                                 "cycle %u",
                                 rc.failCycle);
            }
        } else {
            rmp_assert(rc.matched, "witness replay: cover did not match");
            rmp_assert(rc.assumesHold,
                       "witness replay: assume violated at cycle %u",
                       rc.failCycle);
        }
        w.matchFrame = rc.matchFrame;
        w.trace = std::move(rc.trace);
    }
    return w;
}

} // namespace rmp::bmc
