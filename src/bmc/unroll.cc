#include "bmc/unroll.hh"

#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace rmp::bmc
{

Unrolling::Unrolling(const Design &design, std::vector<uint8_t> coi_mask,
                     std::vector<int8_t> mux_sel)
    : d(design), mask(std::move(coi_mask)), muxSel(std::move(mux_sel))
{
    rmp_assert(mask.empty() || mask.size() == d.numCells(),
               "COI mask covers %zu of %zu cells", mask.size(),
               d.numCells());
    rmp_assert(muxSel.empty() || muxSel.size() == d.numCells(),
               "mux-select facts cover %zu of %zu cells", muxSel.size(),
               d.numCells());
}

void
Unrolling::ensureFrames(unsigned t)
{
    while (frames.size() <= t) {
        if (!obs::enabled()) {
            buildFrame();
            continue;
        }
        obs::Span span("bmc-unroll", "bmc");
        uint64_t nodes0 = g.numNodes();
        uint64_t t0 = obs::nowNs();
        buildFrame();
        span.arg("frame", frames.size() - 1);
        span.arg("aig_nodes_added", g.numNodes() - nodes0);
        obs::Registry &reg = obs::Registry::global();
        reg.histogram("bmc.unroll.frame_ns").record(obs::nowNs() - t0);
        reg.counter("bmc.unroll.frames").add(1);
        reg.counter("bmc.unroll.aig_nodes").add(g.numNodes() - nodes0);
    }
}

const Word &
Unrolling::sig(unsigned t, SigId id)
{
    ensureFrames(t);
    rmp_assert(!frames[t][id].empty(),
               "signal %u is outside this unrolling's COI mask", id);
    return frames[t][id];
}

AigLit
Unrolling::sigBit(unsigned t, SigId id, unsigned bit)
{
    const Word &w = sig(t, id);
    rmp_assert(bit < w.size(), "sigBit out of range");
    return w[bit];
}

AigLit
Unrolling::inputLit(unsigned t, SigId id, unsigned bit) const
{
    rmp_assert(t < frames.size(), "frame not materialized");
    for (size_t i = 0; i < d.inputs().size(); i++)
        if (d.inputs()[i] == id)
            return inputWords[t][i][bit];
    rmp_panic("inputLit: %u is not an input", id);
}

AigLit
Unrolling::sigEqConst(unsigned t, SigId id, uint64_t value)
{
    const Word &w = sig(t, id);
    std::vector<AigLit> bits;
    bits.reserve(w.size());
    for (size_t i = 0; i < w.size(); i++) {
        bool bit = (value >> i) & 1;
        bits.push_back(bit ? w[i] : aigNot(w[i]));
    }
    return g.mkAndN(bits);
}

namespace
{

/** Ripple-carry a + b + cin; returns sum, sets carry-out. */
Word
rippleAdd(Aig &g, const Word &a, const Word &b, AigLit cin, AigLit *cout)
{
    Word s(a.size());
    AigLit c = cin;
    for (size_t i = 0; i < a.size(); i++) {
        AigLit axb = g.mkXor(a[i], b[i]);
        s[i] = g.mkXor(axb, c);
        c = g.mkOr(g.mkAnd(a[i], b[i]), g.mkAnd(c, axb));
    }
    if (cout)
        *cout = c;
    return s;
}

Word
notWord(Aig &, const Word &a)
{
    Word r(a.size());
    for (size_t i = 0; i < a.size(); i++)
        r[i] = aigNot(a[i]);
    return r;
}

} // anonymous namespace

void
Unrolling::buildFrame()
{
    unsigned t = static_cast<unsigned>(frames.size());
    frames.emplace_back(d.numCells());
    inputWords.emplace_back(d.inputs().size());
    auto &fr = frames[t];

    // Sources: inputs get fresh AIG inputs; registers get reset constants
    // (frame 0) or the previous frame's next-state words.
    for (size_t i = 0; i < d.inputs().size(); i++) {
        SigId id = d.inputs()[i];
        unsigned w = d.cell(id).width;
        Word word(w);
        for (unsigned bit = 0; bit < w; bit++)
            word[bit] = g.addInput();
        inputWords[t][i] = word;
        fr[id] = std::move(word);
    }
    for (SigId r : d.registers()) {
        if (!materializes(r))
            continue;
        const Cell &c = d.cell(r);
        Word word(c.width);
        if (t == 0) {
            for (unsigned bit = 0; bit < c.width; bit++)
                word[bit] = c.cval.bit(bit) ? kTrue : kFalse;
        } else {
            word = frames[t - 1][c.args[0]];
            rmp_assert(word.size() == c.width,
                       "COI mask is not backward-closed at register %s",
                       c.name.c_str());
        }
        fr[r] = std::move(word);
    }

    // Combinational cells in topological order (COI-masked cells are
    // skipped: nothing inside the cone reads them, by closure).
    for (SigId id : d.topoOrder()) {
        if (!materializes(id))
            continue;
        const Cell &c = d.cell(id);
        auto &A = fr[c.args[0] == kNoSig ? id : c.args[0]];
        Word out;
        switch (c.op) {
          case Op::Const: {
              out.resize(c.width);
              for (unsigned i = 0; i < c.width; i++)
                  out[i] = c.cval.bit(i) ? kTrue : kFalse;
              break;
          }
          case Op::Not:
            out = notWord(g, A);
            break;
          case Op::And:
          case Op::Or:
          case Op::Xor: {
              const Word &B = fr[c.args[1]];
              out.resize(c.width);
              for (unsigned i = 0; i < c.width; i++) {
                  if (c.op == Op::And)
                      out[i] = g.mkAnd(A[i], B[i]);
                  else if (c.op == Op::Or)
                      out[i] = g.mkOr(A[i], B[i]);
                  else
                      out[i] = g.mkXor(A[i], B[i]);
              }
              break;
          }
          case Op::RedOr:
            out = {g.mkOrN(A)};
            break;
          case Op::RedAnd:
            out = {g.mkAndN(A)};
            break;
          case Op::Eq: {
              const Word &B = fr[c.args[1]];
              std::vector<AigLit> eqs(A.size());
              for (size_t i = 0; i < A.size(); i++)
                  eqs[i] = g.mkXnor(A[i], B[i]);
              out = {g.mkAndN(eqs)};
              break;
          }
          case Op::Ult: {
              const Word &B = fr[c.args[1]];
              // a < b  <=>  borrow out of a - b.
              AigLit borrow = kFalse;
              for (size_t i = 0; i < A.size(); i++) {
                  AigLit na = aigNot(A[i]);
                  borrow = g.mkOr(g.mkAnd(na, B[i]),
                                  g.mkAnd(g.mkOr(na, B[i]), borrow));
              }
              out = {borrow};
              break;
          }
          case Op::Add: {
              const Word &B = fr[c.args[1]];
              out = rippleAdd(g, A, B, kFalse, nullptr);
              break;
          }
          case Op::Sub: {
              const Word &B = fr[c.args[1]];
              out = rippleAdd(g, A, notWord(g, B), kTrue, nullptr);
              break;
          }
          case Op::Mul: {
              const Word &B = fr[c.args[1]];
              unsigned w = c.width;
              Word acc(w, kFalse);
              for (unsigned i = 0; i < w; i++) {
                  // Partial product: (a << i) & {w{b[i]}}, truncated.
                  Word pp(w, kFalse);
                  for (unsigned j = i; j < w; j++)
                      pp[j] = g.mkAnd(A[j - i], B[i]);
                  acc = rippleAdd(g, acc, pp, kFalse, nullptr);
              }
              out = acc;
              break;
          }
          case Op::Shl:
          case Op::Shr: {
              const Word &B = fr[c.args[1]];
              unsigned w = c.width;
              Word cur = A;
              // Barrel shifter over each bit of the shift amount.
              for (unsigned j = 0; j < B.size(); j++) {
                  uint64_t dist = 1ULL << j;
                  Word shifted(w, kFalse);
                  if (dist < w) {
                      for (unsigned i = 0; i < w; i++) {
                          if (c.op == Op::Shl) {
                              if (i >= dist)
                                  shifted[i] = cur[i - dist];
                          } else {
                              if (i + dist < w)
                                  shifted[i] = cur[i + dist];
                          }
                      }
                  }
                  Word next(w);
                  for (unsigned i = 0; i < w; i++)
                      next[i] = g.mkMux(B[j], shifted[i], cur[i]);
                  cur = std::move(next);
              }
              out = cur;
              break;
          }
          case Op::Mux: {
              // A statically fixed select short-circuits to the taken
              // arm; the select and dead arm may be outside the COI mask
              // (their frame words empty), so neither is read.
              int8_t fixed = muxSel.empty() ? int8_t{-1} : muxSel[id];
              if (fixed >= 0) {
                  out = fr[c.args[fixed ? 1 : 2]];
                  break;
              }
              const Word &T = fr[c.args[1]];
              const Word &F = fr[c.args[2]];
              AigLit sel = A[0];
              out.resize(c.width);
              for (unsigned i = 0; i < c.width; i++)
                  out[i] = g.mkMux(sel, T[i], F[i]);
              break;
          }
          case Op::Slice: {
              out.assign(A.begin() + c.aux0, A.begin() + c.aux0 + c.width);
              break;
          }
          case Op::Zext: {
              out = A;
              out.resize(c.width, kFalse);
              break;
          }
          case Op::Concat: {
              const Word &B = fr[c.args[1]];
              out = B;
              out.insert(out.end(), A.begin(), A.end());
              break;
          }
          default:
            rmp_panic("buildFrame: unexpected op %s", opName(c.op));
        }
        rmp_assert(out.size() == c.width, "bit-blast width mismatch for %s",
                   opName(c.op));
        fr[id] = std::move(out);
    }
}

} // namespace rmp::bmc
