/**
 * @file
 * The bounded model-checking engine: the reproduction's stand-in for the
 * paper's JasperGold runs.
 *
 * Evaluates cover properties subject to always-assumes over a shared
 * incremental unrolling: one CNF per (design, bound) reused across the
 * thousands of template-instantiated queries RTL2MμPATH and SynthLC issue,
 * with per-query SAT assumptions. Outcomes follow the paper exactly:
 *
 *  - Reachable: a witness trace exists (extracted, and independently
 *    re-validated on the rtlir simulator before being reported);
 *  - Unreachable: UNSAT across all start frames up to the design's
 *    completeness bound — sound because each DUV provably drains an
 *    instruction within that bound (DESIGN.md §5);
 *  - Undetermined: the per-query SAT budget was exhausted (the paper's
 *    timeout verdict, §VII-B3/B4).
 *
 * With EngineConfig::coiPruning the engine unrolls, per query, only the
 * sequential cone of influence of the property's support signals
 * (analysis::backwardCone): queries whose cones coincide share one
 * incremental instance (unrolling + solver + learned clauses), and logic
 * outside the cone contributes no AIG nodes and no SAT variables. The
 * restriction is sound — the fixpoint cone is closed under every
 * dependency the unroller follows — so Reachable/Unreachable verdicts
 * are identical to full-design unrolling; only budget-exhaustion
 * (Undetermined) verdicts are instance-relative, which is why the cone
 * fingerprint participates in exec::QueryCache keys (DESIGN.md §3e).
 *
 * With EngineConfig::staticPrune the engine additionally consults the
 * abstract-interpretation fixpoint (analysis::absInterpret, DESIGN.md
 * §3i) before touching the solver: a cover whose sequence — or any of
 * whose assumes — evaluates to constant FALSE under the facts is
 * returned Unreachable without unrolling or solving. Only the FALSE
 * verdict of the ternary evaluator is consumed, and the facts
 * over-approximate every reachable-from-reset valuation, so a pruned
 * cover is genuinely unreachable and the verdict is identical to what
 * the solver would return. Under verdict auditing the query falls
 * through to the solver anyway and the two answers are cross-checked.
 */

#ifndef BMC_ENGINE_HH
#define BMC_ENGINE_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/absint.hh"
#include "analysis/coi.hh"
#include "bmc/unroll.hh"
#include "prop/property.hh"
#include "sat/drat.hh"
#include "sat/solver.hh"
#include "sim/batch.hh"
#include "sim/simulator.hh"
#include "sim/tape.hh"

namespace rmp::bmc
{

/** The paper's three verifier verdicts. */
enum class Outcome : uint8_t { Reachable, Unreachable, Undetermined };

const char *outcomeName(Outcome o);

/** Verdict of replayWitness(). */
struct ReplayCheck
{
    /** The covered sequence fired on the replayed trace. */
    bool matched = false;
    /** First frame at which it fired (valid iff matched). */
    unsigned matchFrame = 0;
    /** Every assume held at every constrained cycle. */
    bool assumesHold = true;
    /** First cycle at which an assume failed (valid iff !assumesHold). */
    unsigned failCycle = 0;
    /** The replayed trace (all signals, all cycles). */
    SimTrace trace;

    bool ok() const { return matched && assumesHold; }
};

/**
 * Replay @p inputs cycle by cycle through a fresh rtlir simulator and
 * report whether @p seq fires within [0, bound) and every assume in
 * @p assumes holds at each cycle it constrains. This is the witness
 * oracle: it shares no code with the unroller/solver path that produced
 * the witness, which is what makes the cross-check meaningful. Also used
 * directly by the seeded-defect audit tests.
 */
ReplayCheck replayWitness(const Design &design,
                          const std::vector<InputMap> &inputs,
                          const prop::ExprRef &seq,
                          const std::vector<prop::ExprRef> &assumes,
                          unsigned bound);

/**
 * Compiled-engine counterpart of replayWitness(): replays @p inputs on a
 * single-lane sim::BatchSim over @p tape and evaluates the same match /
 * assume conditions. @p tape must watch every signal the sequence and
 * assumes read (Engine maintains such a tape under
 * EngineConfig::compiledReplay). The returned trace is sparse: only
 * watched signals carry values. Never used by the verdict audit, which
 * stays on the interpreted oracle (DESIGN.md §3g/§3h).
 */
ReplayCheck replayWitnessCompiled(
    const sim::Tape &tape, const Design &design,
    const std::vector<InputMap> &inputs, const prop::ExprRef &seq,
    const std::vector<prop::ExprRef> &assumes, unsigned bound,
    sim::SimBackend backend = sim::SimBackend::Tape);

/** Kleene truth value of a property under time-invariant facts. */
enum class StaticTern : int8_t { False = 0, True = 1, Unknown = 2 };

/**
 * Ternary verdict of @p e on every reachable cycle, judged only from the
 * absint facts. False means: no cycle of any reachable-from-reset trace
 * satisfies @p e — facts hold on every such cycle, so a signal predicate
 * the facts refute is refuted always. True is best-effort (##-delayed
 * sequences never report True: the bounded semantics can falsify them
 * near the unrolling bound); Unknown is always sound. The engine's
 * static pruning consumes the False direction only.
 */
StaticTern staticEval(const Design &design, const analysis::AbsFacts &facts,
                      const prop::ExprRef &e);

/** A concrete witness for a Reachable cover. */
struct Witness
{
    /** Input valuations per cycle, replayable on the simulator. */
    std::vector<InputMap> inputs;
    /** Start frame at which the covered sequence matched. */
    unsigned matchFrame = 0;
    /** The replayed trace (all signals, all cycles). */
    SimTrace trace;
};

/**
 * Outcome of auditing one verdict (EngineConfig::auditReplay /
 * auditProof). A mismatch means the evidence did NOT support the verdict
 * — a solver or engine defect, never a property of the design — and is
 * recorded rather than asserted so the caller (exec::EnginePool, the
 * CLI) can fail loudly with context and keep the poisoned result out of
 * the query cache.
 */
struct VerdictAudit
{
    /** Witness was replayed through the rtlir simulator. */
    bool replayed = false;
    /** Unsat verdict was closed against the DRAT trace. */
    bool proofChecked = false;
    /** The evidence contradicted the verdict. */
    bool mismatch = false;
    /** Human-readable description of the mismatch ("" if none). */
    std::string detail;
};

/** Result of one cover query. */
struct CoverResult
{
    Outcome outcome = Outcome::Undetermined;
    Witness witness; ///< valid iff outcome == Reachable
    double seconds = 0.0;
    VerdictAudit audit; ///< populated when verdict auditing is on

    /** @name Instance-size statistics (0 on cache hits)
     * Size of the unrolled instance that answered this query, after the
     * query ran: cells materialized (== the COI size under pruning, the
     * whole design otherwise), AIG nodes, and SAT variables. Shared
     * incremental instances make these cumulative per instance, not
     * per query. */
    /// @{
    uint32_t coiCells = 0;
    uint64_t aigNodes = 0;
    uint64_t satVars = 0;
    /// @}

    bool reachable() const { return outcome == Outcome::Reachable; }
    bool unreachable() const { return outcome == Outcome::Unreachable; }
};

/** Engine configuration. */
struct EngineConfig
{
    /** Unrolling depth == the design's completeness bound. */
    unsigned bound = 16;
    /** Per-query SAT budget; exhaustion yields Undetermined. */
    sat::SatBudget budget{};
    /** Replay every witness on the simulator (soundness cross-check). */
    bool validateWitnesses = true;
    /**
     * Unroll only each query's sequential cone of influence. Verdicts
     * match full unrolling exactly except at SAT-budget boundaries
     * (Undetermined is instance-relative); both modes are individually
     * deterministic and jobs-invariant.
     */
    bool coiPruning = false;
    /**
     * Audit Reachable verdicts: decode the SAT witness into per-cycle
     * input stimulus, replay it through the rtlir simulator, and record
     * (not assert) a mismatch if the cover fails to fire or an assume is
     * violated. Unlike validateWitnesses — which hard-asserts — audit
     * mismatches surface through CoverResult::audit so callers can
     * report them and quarantine the result (DESIGN.md §3g).
     */
    bool auditReplay = false;
    /**
     * Audit Unreachable verdicts: attach a sat::DratChecker to each
     * instance's solver (RUP-checking every learned clause as it is
     * derived) and close each unsat frame with
     * DratChecker::checkUnsat(assumptions). Verdicts that never reach
     * the solver (vacuous assumes, constant-false cover literals) are
     * discharged by AIG constant folding, which stays in the trusted
     * base — they are counted as neither checked nor mismatched.
     */
    bool auditProof = false;
    /**
     * Validate witnesses on the compiled op-tape engine instead of the
     * interpreted simulator. Witness traces then become sparse watch-set
     * traces covering witnessWatch plus the query's support signals —
     * callers that read other signals from witness traces must leave
     * this off (the default). Ignored whenever auditReplay is set: the
     * audit's whole point is the independent interpreted oracle, so it
     * never rides the engine it is meant to check.
     */
    bool compiledReplay = false;
    /** Execution backend for compiledReplay (bit-identical by contract;
     *  replay batches are single-lane, so the default interpreter tape
     *  kernel is usually the right choice). */
    sim::SimBackend simBackend = sim::SimBackend::Tape;
    /**
     * Signals witness traces must expose under compiledReplay beyond
     * the query's own support (e.g. the harness PL trackers μPATH
     * construction reads). Deduplicated; order irrelevant.
     */
    std::vector<SigId> witnessWatch;
    /**
     * Discharge covers statically: a query whose sequence or assumes
     * are constant-false under the absint fixpoint returns Unreachable
     * without touching the unroller or solver. Sound (facts
     * over-approximate all reachable-from-reset traces; only the FALSE
     * direction is consumed) and verdict-identical to solving. With
     * auditReplay/auditProof the solver runs anyway and disagreements
     * are recorded as audit mismatches. Also narrows COI cones through
     * statically fixed mux selects when coiPruning is on.
     */
    bool staticPrune = false;
    /**
     * Facts consulted by staticPrune, shared across engines (EnginePool
     * computes them once per design). Computed by the engine itself
     * when null and staticPrune is set.
     */
    std::shared_ptr<const analysis::AbsFacts> staticFacts;
};

/** Aggregate query statistics (reported by bench_perf_properties). */
struct EngineStats
{
    uint64_t queries = 0;
    uint64_t reachable = 0;
    uint64_t unreachable = 0;
    uint64_t undetermined = 0;
    /** Of unreachable, verdicts discharged by the absint facts alone
     *  (no SAT query; counted even when auditing re-proves them). */
    uint64_t staticPruned = 0;
    double totalSeconds = 0.0;
    /** @name Verdict-audit tallies (zero unless auditing is on) */
    /// @{
    uint64_t auditReplayed = 0;
    uint64_t auditProofChecked = 0;
    uint64_t auditMismatches = 0;
    /// @}
};

/** COI statistics (reported through src/report and BENCH_static_coi). */
struct CoiStats
{
    /** Queries answered (matches EngineStats::queries). */
    uint64_t queries = 0;
    /** Sum over queries of the answering instance's cell count. */
    uint64_t coneCells = 0;
    /** Sum over queries of the full design's cell count. */
    uint64_t designCells = 0;
    /** Distinct unrolled instances (1 when pruning is off). */
    uint64_t conesBuilt = 0;
    /** AIG nodes across all live instances. */
    uint64_t aigNodes = 0;
    /** SAT variables across all live instances. */
    uint64_t satVars = 0;
};

/**
 * Incremental cover/assume evaluator over one design.
 *
 * Queries with the same cone (the whole design when pruning is off)
 * share an unrolled CNF and that solver's learned clauses; per-query
 * constraints enter as SAT assumptions only.
 */
class Engine
{
  public:
    Engine(const Design &design, const EngineConfig &config);

    /**
     * Evaluate `cover (seq)` under `assume (a)` for every a in @p assumes
     * holding at all cycles. The sequence may match starting at any frame
     * in [0, bound).
     */
    CoverResult cover(const prop::ExprRef &seq,
                      const std::vector<prop::ExprRef> &assumes);

    /** Like cover(), but the sequence must match starting at @p frame. */
    CoverResult coverAt(const prop::ExprRef &seq,
                        const std::vector<prop::ExprRef> &assumes,
                        unsigned frame);

    /** Verdicts of prove(). */
    enum class ProveOutcome : uint8_t { Proven, Falsified, Undetermined };

    /**
     * Bounded safety proof: "@p invariant holds at every cycle" (under
     * the assumes). A cover of the negation decides it: Unreachable ->
     * Proven (up to the bound), Reachable -> Falsified with the
     * counterexample in @p cex (if non-null).
     */
    ProveOutcome prove(const prop::ExprRef &invariant,
                       const std::vector<prop::ExprRef> &assumes,
                       Witness *cex = nullptr);

    const EngineStats &stats() const { return stats_; }
    /** COI statistics (instance sizes; meaningful with pruning too off). */
    CoiStats coiStats() const;
    /** Underlying solver statistics, summed across instances. */
    sat::SatStats satStats() const;
    const Design &design() const { return d; }
    unsigned bound() const { return cfg.bound; }
    const EngineConfig &config() const { return cfg; }

  private:
    /** One unrolled instance: full design, or one support cone. */
    struct Ctx
    {
        Unrolling unrolling;
        sat::Solver solver;
        /** Live proof checker (auditProof only); attached to the solver
         *  before the first clause so the trace covers the formula. */
        std::unique_ptr<sat::DratChecker> drat;
        /** AIG node -> SAT var (-1 = not yet encoded). */
        std::vector<int32_t> nodeVar;
        /** Cells this instance materializes. */
        uint32_t cells = 0;

        Ctx(const Design &dd, std::vector<uint8_t> mask,
            std::vector<int8_t> mux_sel, uint32_t n, bool audit_proof)
            : unrolling(dd, std::move(mask), std::move(mux_sel)), cells(n)
        {
            if (audit_proof) {
                drat = std::make_unique<sat::DratChecker>();
                solver.setProofSink(drat.get());
            }
        }
    };

    CoverResult run(const prop::ExprRef &seq,
                    const std::vector<prop::ExprRef> &assumes,
                    int fixed_frame);

    /** Instance answering queries over @p seq / @p assumes. */
    Ctx &ctxFor(const prop::ExprRef &seq,
                const std::vector<prop::ExprRef> &assumes);

    /** Tseitin-encode @p lit's cone; returns the SAT literal. */
    sat::Lit satLit(Ctx &ctx, AigLit lit);

    Witness extractWitness(Ctx &ctx, const prop::ExprRef &seq,
                           const std::vector<prop::ExprRef> &assumes,
                           VerdictAudit *audit);

    /**
     * The replay tape for @p seq / @p assumes (compiledReplay only):
     * lazily compiled against witnessWatch plus every support signal
     * seen so far, recompiled only when a query's support grows the
     * watch closure.
     */
    const sim::Tape &replayTapeFor(const prop::ExprRef &seq,
                                   const std::vector<prop::ExprRef> &assumes);

    /** True iff staticPrune proves this query Unreachable. */
    bool staticallyFalse(const prop::ExprRef &seq,
                         const std::vector<prop::ExprRef> &assumes) const;

    const Design &d;
    EngineConfig cfg;
    /** Fixed mux selects (staticPrune && coiPruning only; else empty). */
    std::vector<int8_t> muxSel_;
    /** The full-design instance (absent under COI pruning). */
    std::unique_ptr<Ctx> full_;
    /** Cone fingerprint -> instance (COI pruning only). */
    std::unordered_map<uint64_t, std::unique_ptr<Ctx>> cones_;
    EngineStats stats_;
    CoiStats coi_;
    /** @name Compiled witness-replay state (compiledReplay only) */
    /// @{
    std::unique_ptr<sim::Tape> replayTape_;
    std::vector<SigId> replayWatch_;
    std::vector<uint8_t> replayWatched_; ///< bitmap over SigIds
    /** Memoized constant folding across watch-closure recompiles. */
    sim::FoldCache replayFold_;
    /// @}
};

} // namespace rmp::bmc

#endif // BMC_ENGINE_HH
