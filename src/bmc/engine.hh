/**
 * @file
 * The bounded model-checking engine: the reproduction's stand-in for the
 * paper's JasperGold runs.
 *
 * Evaluates cover properties subject to always-assumes over a shared
 * incremental unrolling: one CNF per (design, bound) reused across the
 * thousands of template-instantiated queries RTL2MμPATH and SynthLC issue,
 * with per-query SAT assumptions. Outcomes follow the paper exactly:
 *
 *  - Reachable: a witness trace exists (extracted, and independently
 *    re-validated on the rtlir simulator before being reported);
 *  - Unreachable: UNSAT across all start frames up to the design's
 *    completeness bound — sound because each DUV provably drains an
 *    instruction within that bound (DESIGN.md §5);
 *  - Undetermined: the per-query SAT budget was exhausted (the paper's
 *    timeout verdict, §VII-B3/B4).
 */

#ifndef BMC_ENGINE_HH
#define BMC_ENGINE_HH

#include <string>
#include <vector>

#include "bmc/unroll.hh"
#include "prop/property.hh"
#include "sat/solver.hh"
#include "sim/simulator.hh"

namespace rmp::bmc
{

/** The paper's three verifier verdicts. */
enum class Outcome : uint8_t { Reachable, Unreachable, Undetermined };

const char *outcomeName(Outcome o);

/** A concrete witness for a Reachable cover. */
struct Witness
{
    /** Input valuations per cycle, replayable on the simulator. */
    std::vector<InputMap> inputs;
    /** Start frame at which the covered sequence matched. */
    unsigned matchFrame = 0;
    /** The replayed trace (all signals, all cycles). */
    SimTrace trace;
};

/** Result of one cover query. */
struct CoverResult
{
    Outcome outcome = Outcome::Undetermined;
    Witness witness; ///< valid iff outcome == Reachable
    double seconds = 0.0;

    bool reachable() const { return outcome == Outcome::Reachable; }
    bool unreachable() const { return outcome == Outcome::Unreachable; }
};

/** Engine configuration. */
struct EngineConfig
{
    /** Unrolling depth == the design's completeness bound. */
    unsigned bound = 16;
    /** Per-query SAT budget; exhaustion yields Undetermined. */
    sat::SatBudget budget{};
    /** Replay every witness on the simulator (soundness cross-check). */
    bool validateWitnesses = true;
};

/** Aggregate query statistics (reported by bench_perf_properties). */
struct EngineStats
{
    uint64_t queries = 0;
    uint64_t reachable = 0;
    uint64_t unreachable = 0;
    uint64_t undetermined = 0;
    double totalSeconds = 0.0;
};

/**
 * Incremental cover/assume evaluator over one design.
 *
 * All queries share the unrolled CNF and the solver's learned clauses;
 * per-query constraints enter as SAT assumptions only.
 */
class Engine
{
  public:
    Engine(const Design &design, const EngineConfig &config);

    /**
     * Evaluate `cover (seq)` under `assume (a)` for every a in @p assumes
     * holding at all cycles. The sequence may match starting at any frame
     * in [0, bound).
     */
    CoverResult cover(const prop::ExprRef &seq,
                      const std::vector<prop::ExprRef> &assumes);

    /** Like cover(), but the sequence must match starting at @p frame. */
    CoverResult coverAt(const prop::ExprRef &seq,
                        const std::vector<prop::ExprRef> &assumes,
                        unsigned frame);

    /** Verdicts of prove(). */
    enum class ProveOutcome : uint8_t { Proven, Falsified, Undetermined };

    /**
     * Bounded safety proof: "@p invariant holds at every cycle" (under
     * the assumes). A cover of the negation decides it: Unreachable ->
     * Proven (up to the bound), Reachable -> Falsified with the
     * counterexample in @p cex (if non-null).
     */
    ProveOutcome prove(const prop::ExprRef &invariant,
                       const std::vector<prop::ExprRef> &assumes,
                       Witness *cex = nullptr);

    const EngineStats &stats() const { return stats_; }
    /** Underlying solver statistics (merged across lanes by exec). */
    const sat::SatStats &satStats() const { return solver.stats(); }
    const Design &design() const { return d; }
    unsigned bound() const { return cfg.bound; }
    const EngineConfig &config() const { return cfg; }

  private:
    CoverResult run(const prop::ExprRef &seq,
                    const std::vector<prop::ExprRef> &assumes,
                    int fixed_frame);

    /** Tseitin-encode @p lit's cone; returns the SAT literal. */
    sat::Lit satLit(AigLit lit);

    Witness extractWitness(const prop::ExprRef &seq,
                           const std::vector<prop::ExprRef> &assumes);

    const Design &d;
    EngineConfig cfg;
    Unrolling unrolling;
    sat::Solver solver;
    /** AIG node -> SAT var (-1 = not yet encoded). */
    std::vector<int32_t> nodeVar;
    EngineStats stats_;
};

} // namespace rmp::bmc

#endif // BMC_ENGINE_HH
