#include "bmc/aig.hh"

#include <algorithm>

namespace rmp::bmc
{

Aig::Aig()
{
    nodes.emplace_back(); // node 0: constant false
}

AigLit
Aig::addInput()
{
    Node n;
    n.isInput = true;
    nodes.push_back(n);
    return static_cast<AigLit>((nodes.size() - 1) * 2);
}

AigLit
Aig::mkAnd(AigLit a, AigLit b)
{
    // Constant folding and trivial cases.
    if (a > b)
        std::swap(a, b);
    if (a == kFalse)
        return kFalse;
    if (a == kTrue)
        return b;
    if (a == b)
        return a;
    if (a == aigNot(b))
        return kFalse;
    Key key{a, b};
    auto it = strash.find(key);
    if (it != strash.end())
        return it->second;
    Node n;
    n.a = a;
    n.b = b;
    nodes.push_back(n);
    andCount++;
    AigLit lit = static_cast<AigLit>((nodes.size() - 1) * 2);
    strash.emplace(key, lit);
    return lit;
}

AigLit
Aig::mkXor(AigLit a, AigLit b)
{
    if (a == kFalse)
        return b;
    if (a == kTrue)
        return aigNot(b);
    if (b == kFalse)
        return a;
    if (b == kTrue)
        return aigNot(a);
    if (a == b)
        return kFalse;
    if (a == aigNot(b))
        return kTrue;
    return mkOr(mkAnd(a, aigNot(b)), mkAnd(aigNot(a), b));
}

AigLit
Aig::mkMux(AigLit sel, AigLit t, AigLit f)
{
    if (sel == kTrue)
        return t;
    if (sel == kFalse)
        return f;
    if (t == f)
        return t;
    return mkOr(mkAnd(sel, t), mkAnd(aigNot(sel), f));
}

AigLit
Aig::mkAndN(const std::vector<AigLit> &ls)
{
    if (ls.empty())
        return kTrue;
    std::vector<AigLit> cur = ls;
    while (cur.size() > 1) {
        std::vector<AigLit> next;
        for (size_t i = 0; i + 1 < cur.size(); i += 2)
            next.push_back(mkAnd(cur[i], cur[i + 1]));
        if (cur.size() & 1)
            next.push_back(cur.back());
        cur = std::move(next);
    }
    return cur[0];
}

AigLit
Aig::mkOrN(const std::vector<AigLit> &ls)
{
    std::vector<AigLit> neg;
    neg.reserve(ls.size());
    for (AigLit l : ls)
        neg.push_back(aigNot(l));
    return aigNot(mkAndN(neg));
}

} // namespace rmp::bmc
