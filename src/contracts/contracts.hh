/**
 * @file
 * Leakage-contract derivation (§II-B, §IV-D, Table I).
 *
 * From the μPATHs synthesized by RTL2MμPATH and the leakage signatures
 * synthesized by SynthLC, this module derives the six leakage contracts of
 * Table I: the canonical constant-time (CT) contract plus the bespoke
 * contracts of MI6, OISA, STT (shared by SDO and SPT), SDO's
 * data-oblivious variants, and Dolma. Each derivation follows the
 * component mapping of Table I exactly; no additional model checking is
 * required.
 */

#ifndef CONTRACTS_CONTRACTS_HH
#define CONTRACTS_CONTRACTS_HH

#include <map>
#include <string>
#include <vector>

#include "designs/harness.hh"
#include "synthlc/synthlc.hh"
#include "uhb/graph.hh"

namespace rmp::ct
{

/** The combined analysis results for one DUV. */
struct AnalysisDb
{
    const designs::Harness *hx = nullptr;
    /** μPATHs + decisions per analyzed instruction. */
    std::map<uhb::InstrId, uhb::InstrPaths> paths;
    /** All synthesized leakage signatures. */
    std::vector<slc::LeakageSignature> signatures;
};

/** CT contract entry: a transmitter and its unsafe operands (§II-B). */
struct CtEntry
{
    uhb::InstrId instr = 0;
    bool rs1Unsafe = false;
    bool rs2Unsafe = false;
};

/** The canonical constant-time contract. */
struct CtContract
{
    std::vector<CtEntry> transmitters;
};

/** One channel for the MI6 contract. */
struct Mi6Channel
{
    uhb::InstrId transponder = 0;
    uhb::PlId src = uhb::kNoPl;
    std::vector<slc::TransmitterInput> inputs;
};

/** MI6: dynamic (contention) channels + static channels (§II-B). */
struct Mi6Contract
{
    std::vector<Mi6Channel> dynamicChannels;
    std::vector<Mi6Channel> staticChannels;
};

/** OISA: arithmetic units with input-dependent occupancy. */
struct OisaContract
{
    struct Unit
    {
        std::string unitPl;       ///< the FU performing location
        uhb::InstrId transmitter; ///< instruction with variable occupancy
        bool rs1Unsafe = false, rs2Unsafe = false;
    };
    std::vector<Unit> units;
};

/** STT/SDO/SPT fine-grained contract (§II-B). */
struct SttContract
{
    struct Channel
    {
        uhb::InstrId transponder;
        uhb::PlId src;
        std::vector<slc::TransmitterInput> inputs;
    };
    std::vector<Channel> explicitChannels; ///< intrinsic-transmitter srcs
    std::vector<Channel> implicitChannels; ///< dynamic/static-dependent srcs
    /** Instructions whose variability depends on others' operands. */
    std::vector<uhb::InstrId> implicitBranches;
    /** Architectural control-flow instructions. */
    std::vector<uhb::InstrId> explicitBranches;
    /** Channels modulated by static transmitters (predictor-like state). */
    std::vector<Channel> predictionBased;
    /** Channels modulated by dynamic transmitters (resolution-based). */
    std::vector<Channel> resolutionBased;
};

/** SDO data-oblivious variants: realizable μPATHs per transmitter. */
struct SdoContract
{
    struct Variants
    {
        uhb::InstrId transmitter;
        size_t numVariants = 0;        ///< realizable μPATH count
        std::vector<unsigned> latencies; ///< witness latencies per variant
    };
    std::vector<Variants> perTransmitter;
};

/** Dolma contract components (§II-B). */
struct DolmaContract
{
    /** Micro-ops with operand-dependent execution time (intrinsic Ts). */
    std::vector<uhb::InstrId> variableTimeOps;
    /** Transponders whose variability others' operands induce. */
    std::vector<uhb::InstrId> inducive;
    /** The transmitters resolving that variability. */
    std::vector<uhb::InstrId> resolvent;
    /** (transponder, src) pairs: prediction resolution points. */
    std::vector<std::pair<uhb::InstrId, uhb::PlId>> resolutionPoints;
    /** Micro-ops that modify persistent state after commit. */
    std::vector<uhb::InstrId> persistentStateModifying;
};

/** @name Derivations (Table I) */
/// @{
CtContract deriveConstantTime(const AnalysisDb &db);
Mi6Contract deriveMi6(const AnalysisDb &db);
OisaContract deriveOisa(const AnalysisDb &db);
SttContract deriveStt(const AnalysisDb &db);
SdoContract deriveSdo(const AnalysisDb &db);
DolmaContract deriveDolma(const AnalysisDb &db);
/// @}

/** Render the six contracts as a paper-style report. */
std::string renderContracts(const AnalysisDb &db);

} // namespace rmp::ct

#endif // CONTRACTS_CONTRACTS_HH
