#include "contracts/contracts.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace rmp::ct
{

using namespace uhb;
using slc::LeakageSignature;
using slc::Operand;
using slc::TransmitterInput;
using slc::TxType;

namespace
{

bool
isDynamicOrIntrinsic(TxType t)
{
    return t == TxType::Intrinsic || t == TxType::DynamicOlder ||
           t == TxType::DynamicYounger;
}

} // anonymous namespace

CtContract
deriveConstantTime(const AnalysisDb &db)
{
    // Table I: the CT contract is the set of transmitters (any type) with
    // their unsafe arguments — exactly the typed explicit inputs of all
    // leakage signatures, collapsed per instruction.
    std::map<InstrId, CtEntry> acc;
    for (const auto &sig : db.signatures) {
        for (const auto &ti : sig.inputs) {
            CtEntry &e = acc[ti.instr];
            e.instr = ti.instr;
            if (ti.op == Operand::Rs1)
                e.rs1Unsafe = true;
            else
                e.rs2Unsafe = true;
        }
    }
    CtContract out;
    for (auto &[id, e] : acc)
        out.transmitters.push_back(e);
    return out;
}

Mi6Contract
deriveMi6(const AnalysisDb &db)
{
    // MI6 splits channels by transmitter persistence: dynamic channels
    // are modulated by intrinsic/dynamic transmitters (contention),
    // static channels by static transmitters (§IV-C).
    Mi6Contract out;
    for (const auto &sig : db.signatures) {
        Mi6Channel dyn{sig.transponder, sig.src, {}};
        Mi6Channel sta{sig.transponder, sig.src, {}};
        for (const auto &ti : sig.inputs) {
            if (isDynamicOrIntrinsic(ti.type))
                dyn.inputs.push_back(ti);
            else
                sta.inputs.push_back(ti);
        }
        if (!dyn.inputs.empty())
            out.dynamicChannels.push_back(std::move(dyn));
        if (!sta.inputs.empty())
            out.staticChannels.push_back(std::move(sta));
    }
    return out;
}

OisaContract
deriveOisa(const AnalysisDb &db)
{
    // OISA targets input-dependent arithmetic units: intrinsic
    // transmitters whose decision source is a functional-unit PL that
    // they may occupy for an operand-dependent number of cycles.
    OisaContract out;
    const auto &hx = *db.hx;
    std::set<std::pair<std::string, InstrId>> seen;
    for (const auto &sig : db.signatures) {
        for (const auto &ti : sig.inputs) {
            if (ti.type != TxType::Intrinsic)
                continue;
            // The unit is the decision source's μFSM if the source can be
            // revisited (variable occupancy).
            const auto pit = db.paths.find(sig.transponder);
            if (pit == db.paths.end())
                continue;
            bool revisits = false;
            for (const auto &p : pit->second.paths) {
                auto r = p.revisit.find(sig.src);
                if (r != p.revisit.end() && r->second != Revisit::None)
                    revisits = true;
            }
            if (!revisits)
                continue;
            std::string unit = hx.plName(sig.src);
            if (!seen.insert({unit, ti.instr}).second) {
                // merge operand flags into the existing entry
                for (auto &u : out.units)
                    if (u.unitPl == unit && u.transmitter == ti.instr) {
                        u.rs1Unsafe |= ti.op == Operand::Rs1;
                        u.rs2Unsafe |= ti.op == Operand::Rs2;
                    }
                continue;
            }
            OisaContract::Unit u;
            u.unitPl = unit;
            u.transmitter = ti.instr;
            u.rs1Unsafe = ti.op == Operand::Rs1;
            u.rs2Unsafe = ti.op == Operand::Rs2;
            out.units.push_back(u);
        }
    }
    return out;
}

SttContract
deriveStt(const AnalysisDb &db)
{
    SttContract out;
    const auto &info = db.hx->duv();
    std::set<InstrId> implicit_br;
    for (const auto &sig : db.signatures) {
        SttContract::Channel expl{sig.transponder, sig.src, {}};
        SttContract::Channel impl{sig.transponder, sig.src, {}};
        SttContract::Channel pred{sig.transponder, sig.src, {}};
        SttContract::Channel reso{sig.transponder, sig.src, {}};
        for (const auto &ti : sig.inputs) {
            if (ti.type == TxType::Intrinsic) {
                expl.inputs.push_back(ti);
            } else {
                impl.inputs.push_back(ti);
                implicit_br.insert(sig.transponder);
                if (ti.type == TxType::Static)
                    pred.inputs.push_back(ti);
                else
                    reso.inputs.push_back(ti);
            }
        }
        if (!expl.inputs.empty())
            out.explicitChannels.push_back(std::move(expl));
        if (!impl.inputs.empty())
            out.implicitChannels.push_back(std::move(impl));
        if (!pred.inputs.empty())
            out.predictionBased.push_back(std::move(pred));
        if (!reso.inputs.empty())
            out.resolutionBased.push_back(std::move(reso));
    }
    out.implicitBranches.assign(implicit_br.begin(), implicit_br.end());
    for (InstrId i = 0; i < info.instrs.size(); i++)
        if (info.instrs[i].cls == InstrClass::Branch ||
            info.instrs[i].cls == InstrClass::Jump)
            out.explicitBranches.push_back(i);
    return out;
}

SdoContract
deriveSdo(const AnalysisDb &db)
{
    // SDO's data-oblivious variants are derived from the realizable
    // μPATHs of each transmitter (Table I: the only contract component
    // needing μ in addition to signatures).
    SdoContract out;
    std::set<InstrId> transmitters;
    for (const auto &sig : db.signatures)
        for (const auto &ti : sig.inputs)
            transmitters.insert(ti.instr);
    for (InstrId t : transmitters) {
        auto it = db.paths.find(t);
        if (it == db.paths.end())
            continue;
        SdoContract::Variants v;
        v.transmitter = t;
        v.numVariants = it->second.paths.size();
        for (const auto &p : it->second.paths)
            v.latencies.push_back(p.latency());
        out.perTransmitter.push_back(std::move(v));
    }
    return out;
}

DolmaContract
deriveDolma(const AnalysisDb &db)
{
    DolmaContract out;
    const auto &info = db.hx->duv();
    std::set<InstrId> vt, ind, res, psm;
    std::set<std::pair<InstrId, PlId>> rp;
    for (const auto &sig : db.signatures) {
        for (const auto &ti : sig.inputs) {
            if (ti.type == TxType::Intrinsic)
                vt.insert(ti.instr);
            // Dynamic transmitters are distinct dynamic instances even
            // when they share the transponder's opcode: the transponder
            // is an inducive micro-op resolved by them.
            if (ti.type == TxType::DynamicOlder ||
                ti.type == TxType::DynamicYounger) {
                ind.insert(sig.transponder);
                res.insert(ti.instr);
                rp.insert({sig.transponder, sig.src});
            }
            if (ti.type == TxType::Static)
                psm.insert(ti.instr);
        }
    }
    // Stores modify persistent (post-commit) state by construction.
    for (InstrId i = 0; i < info.instrs.size(); i++)
        if (info.instrs[i].cls == InstrClass::Store)
            psm.insert(i);
    out.variableTimeOps.assign(vt.begin(), vt.end());
    out.inducive.assign(ind.begin(), ind.end());
    out.resolvent.assign(res.begin(), res.end());
    out.resolutionPoints.assign(rp.begin(), rp.end());
    out.persistentStateModifying.assign(psm.begin(), psm.end());
    return out;
}

std::string
renderContracts(const AnalysisDb &db)
{
    const auto &info = db.hx->duv();
    auto iname = [&](InstrId i) { return info.instrs[i].name; };
    auto ops = [&](bool r1, bool r2) {
        std::string s;
        if (r1)
            s += "rs1";
        if (r2)
            s += s.empty() ? "rs2" : ",rs2";
        return s.empty() ? "-" : s;
    };
    std::ostringstream os;

    CtContract ctc = deriveConstantTime(db);
    os << "== Constant-time (CT) contract: transmitters & unsafe operands\n";
    AsciiTable tc;
    tc.setHeader({"transmitter", "unsafe operands"});
    for (const auto &e : ctc.transmitters)
        tc.addRow({iname(e.instr), ops(e.rs1Unsafe, e.rs2Unsafe)});
    os << tc.str();

    Mi6Contract mi6 = deriveMi6(db);
    os << "\n== MI6: " << mi6.dynamicChannels.size()
       << " contention-based dynamic channels, "
       << mi6.staticChannels.size() << " static channels\n";

    OisaContract oisa = deriveOisa(db);
    os << "\n== OISA: input-dependent arithmetic units\n";
    for (const auto &u : oisa.units)
        os << "  unit " << u.unitPl << " <- " << iname(u.transmitter)
           << " (" << ops(u.rs1Unsafe, u.rs2Unsafe) << ")\n";

    SttContract stt = deriveStt(db);
    os << "\n== STT/SDO/SPT: " << stt.explicitChannels.size()
       << " explicit channels, " << stt.implicitChannels.size()
       << " implicit channels, " << stt.implicitBranches.size()
       << " implicit branches, " << stt.explicitBranches.size()
       << " explicit branches, " << stt.predictionBased.size()
       << " prediction-based, " << stt.resolutionBased.size()
       << " resolution-based\n";
    os << "   implicit branches:";
    for (InstrId i : stt.implicitBranches)
        os << " " << iname(i);
    os << "\n";

    SdoContract sdo = deriveSdo(db);
    os << "\n== SDO data-oblivious variants\n";
    for (const auto &v : sdo.perTransmitter) {
        os << "  " << iname(v.transmitter) << ": " << v.numVariants
           << " path variants, latencies {";
        for (size_t i = 0; i < v.latencies.size(); i++)
            os << (i ? "," : "") << v.latencies[i];
        os << "}\n";
    }

    DolmaContract dol = deriveDolma(db);
    auto list = [&](const std::vector<InstrId> &v) {
        std::string s;
        for (InstrId i : v)
            s += (s.empty() ? "" : " ") + iname(i);
        return s.empty() ? std::string("-") : s;
    };
    os << "\n== Dolma\n";
    os << "  variable-time micro-ops: " << list(dol.variableTimeOps) << "\n";
    os << "  inducive micro-ops:      " << list(dol.inducive) << "\n";
    os << "  resolvent micro-ops:     " << list(dol.resolvent) << "\n";
    os << "  resolution points:      ";
    for (const auto &[p, src] : dol.resolutionPoints)
        os << " " << iname(p) << "@" << db.hx->plName(src);
    os << "\n  persistent-state-modifying: "
       << list(dol.persistentStateModifying) << "\n";
    return os.str();
}

} // namespace rmp::ct
