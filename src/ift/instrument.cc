#include "ift/instrument.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rmp::ift
{

namespace
{

/** Small cell-construction helpers over the instrumented design. */
struct Ops
{
    Design &d;

    SigId
    zero(unsigned w)
    {
        auto it = zeros.find(w);
        if (it != zeros.end())
            return it->second;
        SigId z = d.addConst(BitVec(w, 0));
        zeros[w] = z;
        return z;
    }
    SigId
    ones(unsigned w)
    {
        SigId z = d.addConst(BitVec(w, BitVec::maskOf(w)));
        return z;
    }
    SigId bAnd(SigId a, SigId b) { return d.addBinary(Op::And, a, b); }
    SigId bOr(SigId a, SigId b) { return d.addBinary(Op::Or, a, b); }
    SigId bXor(SigId a, SigId b) { return d.addBinary(Op::Xor, a, b); }
    SigId bNot(SigId a) { return d.addUnary(Op::Not, a, d.cell(a).width); }
    SigId rOr(SigId a) { return d.addUnary(Op::RedOr, a, 1); }
    SigId mux(SigId s, SigId t, SigId f) { return d.addMux(s, t, f); }
    /** Replicate a 1-bit signal to width w (smear). */
    SigId
    smear(SigId bit, unsigned w)
    {
        return mux(bit, ones(w), zero(w));
    }
    /** Prefix-OR from the LSB upward (taint rule for add/sub carries). */
    SigId
    prefixOr(SigId a)
    {
        unsigned w = d.cell(a).width;
        if (w == 1)
            return a;
        SigId acc = d.addUnary(Op::Slice, a, 1, 0);
        SigId prev = acc;
        for (unsigned i = 1; i < w; i++) {
            SigId bit = d.addUnary(Op::Slice, a, 1, i);
            prev = bOr(prev, bit);
            acc = d.addBinary(Op::Concat, prev, acc);
        }
        return acc;
    }

    std::unordered_map<unsigned, SigId> zeros;
};

} // anonymous namespace

Instrumented
instrument(const Design &orig, const IftConfig &cfg)
{
    Instrumented out;
    out.design = std::make_shared<Design>(orig);
    Design &d = *out.design;
    Ops ops{d, {}};

    size_t n_orig = orig.numCells();
    out.shadow.assign(n_orig, kNoSig);

    // Sticky-flush plumbing (§V-C1 Assumption 3).
    out.stickyMode = d.addInput("ift_sticky_mode", 1);
    SigId flush_active = kNoSig;
    if (cfg.txmGone != kNoSig) {
        SigId prev = d.addReg("ift_gone_prev", BitVec(1, 0));
        d.connectRegNext(prev, cfg.txmGone);
        SigId pulse = ops.bAnd(cfg.txmGone, ops.bNot(prev));
        flush_active = ops.bAnd(out.stickyMode, pulse);
        d.setName(flush_active, "ift_flush_active");
    }

    // Shadow registers first, so combinational shadows can reference them.
    std::unordered_map<SigId, SigId> shadow_reg;
    for (SigId r : orig.registers()) {
        if (r >= n_orig)
            continue;
        const Cell &c = orig.cell(r);
        SigId sreg = d.addReg("t_" + c.name, BitVec(c.width, 0));
        shadow_reg[r] = sreg;
        out.shadow[r] = sreg;
    }
    // Taint-introduction inputs: injected combinationally on the source
    // register's shadow READ path, so taint marks exactly the cycles in
    // which the register holds the transmitter's operand (the assume
    // pins the input to the transmitter-at-issue condition, §V-C1).
    for (SigId src : cfg.taintSources) {
        rmp_assert(orig.cell(src).op == Op::Reg,
                   "taint source must be a register");
        SigId tin = d.addInput("ift_in_" + orig.cell(src).name,
                               orig.cell(src).width);
        out.taintIn[src] = tin;
        out.shadow[src] = ops.bOr(shadow_reg[src], tin);
    }
    // Inputs and constants carry no taint.
    for (SigId i : orig.inputs())
        if (i < n_orig)
            out.shadow[i] = ops.zero(orig.cell(i).width);

    // Combinational shadows in topological order.
    for (SigId id : orig.topoOrder()) {
        if (id >= n_orig)
            continue;
        const Cell &c = orig.cell(id);
        auto sh = [&](unsigned k) { return out.shadow[c.args[k]]; };
        auto ar = [&](unsigned k) { return c.args[k]; };
        SigId t = kNoSig;
        switch (c.op) {
          case Op::Const:
            t = ops.zero(c.width);
            break;
          case Op::Not:
            t = sh(0);
            break;
          case Op::And: {
              // taint if both tainted, or one tainted and the other 1.
              SigId tt = ops.bAnd(sh(0), sh(1));
              SigId t0 = ops.bAnd(sh(0), ar(1));
              SigId t1 = ops.bAnd(sh(1), ar(0));
              t = ops.bOr(tt, ops.bOr(t0, t1));
              break;
          }
          case Op::Or: {
              SigId tt = ops.bAnd(sh(0), sh(1));
              SigId t0 = ops.bAnd(sh(0), ops.bNot(ar(1)));
              SigId t1 = ops.bAnd(sh(1), ops.bNot(ar(0)));
              t = ops.bOr(tt, ops.bOr(t0, t1));
              break;
          }
          case Op::Xor:
            t = ops.bOr(sh(0), sh(1));
            break;
          case Op::RedOr: {
              // Untainted if some untainted bit is already 1.
              SigId anyt = ops.rOr(sh(0));
              SigId sure1 = ops.rOr(ops.bAnd(ar(0), ops.bNot(sh(0))));
              t = ops.bAnd(anyt, ops.bNot(sure1));
              break;
          }
          case Op::RedAnd: {
              SigId anyt = ops.rOr(sh(0));
              SigId sure0 =
                  ops.rOr(ops.bAnd(ops.bNot(ar(0)), ops.bNot(sh(0))));
              t = ops.bAnd(anyt, ops.bNot(sure0));
              break;
          }
          case Op::Eq: {
              // Untainted if a pair of untainted bits already differs.
              SigId diff = ops.bXor(ar(0), ar(1));
              SigId unt =
                  ops.bAnd(ops.bNot(sh(0)), ops.bNot(sh(1)));
              SigId det0 = ops.rOr(ops.bAnd(diff, unt));
              SigId anyt = ops.bOr(ops.rOr(sh(0)), ops.rOr(sh(1)));
              t = ops.bAnd(anyt, ops.bNot(det0));
              break;
          }
          case Op::Ult:
            t = ops.bOr(ops.rOr(sh(0)), ops.rOr(sh(1)));
            break;
          case Op::Add:
          case Op::Sub:
            // Carries only propagate upward: prefix-OR of input taint.
            t = ops.prefixOr(ops.bOr(sh(0), sh(1)));
            break;
          case Op::Mul: {
              SigId any = ops.bOr(ops.rOr(sh(0)), ops.rOr(sh(1)));
              t = ops.smear(any, c.width);
              break;
          }
          case Op::Shl:
          case Op::Shr: {
              // Data taint shifts with the data; a tainted shift amount
              // smears everything.
              SigId moved = d.addBinary(c.op, sh(0), ar(1));
              SigId amt = ops.smear(ops.rOr(sh(1)), c.width);
              t = ops.bOr(moved, amt);
              break;
          }
          case Op::Mux: {
              SigId picked = ops.mux(ar(0), sh(1), sh(2));
              SigId arms = ops.bOr(ops.bXor(ar(1), ar(2)),
                                   ops.bOr(sh(1), sh(2)));
              SigId sel_t = ops.mux(sh(0), arms, ops.zero(c.width));
              t = ops.bOr(picked, sel_t);
              break;
          }
          case Op::Slice:
            t = d.addUnary(Op::Slice, sh(0), c.width, c.aux0);
            break;
          case Op::Zext:
            t = d.addUnary(Op::Zext, sh(0), c.width);
            break;
          case Op::Concat:
            t = d.addBinary(Op::Concat, sh(0), sh(1));
            break;
          default:
            rmp_panic("instrument: unexpected op %s", opName(c.op));
        }
        rmp_assert(d.cell(t).width == c.width, "shadow width mismatch");
        out.shadow[id] = t;
    }

    // Connect shadow registers.
    auto in_list = [](const std::vector<SigId> &v, SigId x) {
        return std::find(v.begin(), v.end(), x) != v.end();
    };
    for (SigId r : orig.registers()) {
        if (r >= n_orig)
            continue;
        const Cell &c = orig.cell(r);
        SigId sreg = shadow_reg[r];
        if (in_list(cfg.blockRegs, r) || in_list(cfg.taintSources, r)) {
            // Architectural boundary: taint never persists here. Operand
            // registers are likewise architectural — taint enters them
            // only through the explicit introduction inputs above, never
            // by propagation from older instructions' (forwarded)
            // results.
            d.connectRegNext(sreg, ops.zero(c.width));
            continue;
        }
        SigId next = out.shadow[c.args[0]];
        if (flush_active != kNoSig && !in_list(cfg.persistentRegs, r))
            next = ops.mux(flush_active, ops.zero(c.width), next);
        d.connectRegNext(sreg, next);
    }

    d.validate();
    return out;
}

SigId
Instrumented::anyTaintWire(const std::vector<SigId> &origs) const
{
    rmp_assert(!origs.empty(), "anyTaintWire of nothing");
    Design &d = *design;
    SigId acc = kNoSig;
    for (SigId o : origs) {
        SigId s = shadow[o];
        rmp_assert(s != kNoSig, "no shadow for signal %u", o);
        SigId bit = d.addUnary(Op::RedOr, s, 1);
        acc = acc == kNoSig ? bit : d.addBinary(Op::Or, acc, bit);
    }
    return acc;
}

} // namespace rmp::ift
