/**
 * @file
 * CellIFT-style information-flow-tracking instrumentation (§V-C1).
 *
 * instrument() clones a finalized design and appends one shadow (taint)
 * cell per functional cell, preserving all original SigIds so harness
 * signals and assume-expressions remain valid on the instrumented design.
 * Propagation rules are precise for logic/mux/reductions/equality and
 * soundly conservative for arithmetic (prefix-or for add/sub, smear for
 * mul), mirroring the cell-level granularity of CellIFT [78].
 *
 * Features required by SynthLC's symbolic-IFT step:
 *  - taint-introduction inputs on designated source registers (the operand
 *    registers of §V-A), ORed into the source's shadow;
 *  - architectural-boundary blocking: ARF/AMEM shadows are pinned to zero
 *    so taint cannot propagate architecturally between instruction
 *    outputs and inputs;
 *  - the Assumption-3 sticky-taint flush: under a per-query mode input,
 *    every non-persistent register's shadow is cleared in the cycle the
 *    transmitter dematerializes, leaving only taint held in persistent
 *    state (caches, buffers) — isolating static influence (§V-C1).
 */

#ifndef IFT_INSTRUMENT_HH
#define IFT_INSTRUMENT_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "rtlir/design.hh"

namespace rmp::ift
{

/** Instrumentation configuration. */
struct IftConfig
{
    /** Registers that receive taint-introduction inputs. */
    std::vector<SigId> taintSources;
    /** Registers whose shadow is pinned to zero (ARF/AMEM words). */
    std::vector<SigId> blockRegs;
    /** Registers that keep taint across the sticky flush. */
    std::vector<SigId> persistentRegs;
    /**
     * Wire (in the original design) that is high once the transmitter has
     * dematerialized; its rising edge triggers the sticky flush when the
     * sticky mode input is asserted. kNoSig disables the flush plumbing.
     */
    SigId txmGone = kNoSig;
};

/** The instrumented design plus the taint-plane bookkeeping. */
struct Instrumented
{
    std::shared_ptr<Design> design;
    /** shadow[orig] = SigId of the taint word for original signal orig. */
    std::vector<SigId> shadow;
    /** Taint-introduction input per source register. */
    std::unordered_map<SigId, SigId> taintIn;
    /** 1-bit mode input: 1 = Assumption-3 sticky-flush semantics. */
    SigId stickyMode = kNoSig;

    /** Build (once per call) a wire asserting any of @p origs is tainted. */
    SigId anyTaintWire(const std::vector<SigId> &origs) const;
};

/** Instrument @p orig; the original design object is left untouched. */
Instrumented instrument(const Design &orig, const IftConfig &config);

} // namespace rmp::ift

#endif // IFT_INSTRUMENT_HH
