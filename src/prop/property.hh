/**
 * @file
 * SVA-lite property AST.
 *
 * Models the fragment of SystemVerilog Assertions that the paper's
 * templates use (§V-B, §V-C): boolean combinations of signal predicates,
 * the one-cycle sequence operator ##1, cover directives, and assume
 * constraints that must hold in every cycle. Properties are compiled
 * against a bmc::Unrolling into per-start-frame AIG literals.
 */

#ifndef PROP_PROPERTY_HH
#define PROP_PROPERTY_HH

#include <memory>
#include <string>
#include <vector>

#include "bmc/unroll.hh"
#include "rtlir/design.hh"
#include "sim/simulator.hh"

namespace rmp::prop
{

/** Expression node kinds. */
enum class ExprKind : uint8_t
{
    True,
    SigEqConst, ///< signal == constant value
    SigBit,     ///< a 1-bit signal (or bit aux0 of a wider one) is high
    Not,
    And,
    Or,
    Delay, ///< ##k: child evaluated k cycles later
};

/** Immutable expression tree (shared_ptr DAG). */
struct Expr;
using ExprRef = std::shared_ptr<const Expr>;

struct Expr
{
    ExprKind kind = ExprKind::True;
    SigId sig = kNoSig;
    uint64_t value = 0; ///< constant for SigEqConst; bit index for SigBit
    unsigned delay = 0; ///< cycles for Delay
    ExprRef a, b;

    /** Maximum ##-delay depth: frames needed beyond the start frame. */
    unsigned depth() const;

    /** Render in an SVA-like syntax for logs and reports. */
    std::string str(const Design &d) const;
};

/** @name Constructors */
/// @{
ExprRef pTrue();
ExprRef pEq(SigId sig, uint64_t value);
ExprRef pBit(SigId sig, unsigned bit = 0);
ExprRef pNot(ExprRef a);
ExprRef pAnd(ExprRef a, ExprRef b);
ExprRef pOr(ExprRef a, ExprRef b);
ExprRef pAndN(const std::vector<ExprRef> &xs);
ExprRef pOrN(const std::vector<ExprRef> &xs);
/** seq: a ##delay b. */
ExprRef pDelay(ExprRef a, unsigned delay, ExprRef b);
/// @}

/**
 * Canonical structural hash of an expression DAG, seeded by @p seed.
 *
 * Two structurally identical expressions hash equal regardless of how
 * their nodes are shared; shared subtrees are visited once (memoized on
 * node identity). Combining two calls with independent seeds yields a
 * 128-bit digest, which exec::QueryCache uses to key memoized cover
 * results — the hash covers every field that affects compile()/
 * evalOnTrace() semantics (kind, signal, constant, bit index, delay,
 * children), so equal digests mean semantically identical properties
 * over the same design.
 */
uint64_t exprHash(const ExprRef &e, uint64_t seed = 0);

/**
 * Append a canonical byte serialization of @p e to @p out: parenthesized
 * prefix form over (kind, sig, value, delay, children), expanded as a
 * *tree* so the bytes depend only on expression structure, never on how
 * DAG nodes happen to be shared. Two expressions serialize identically
 * iff they are structurally identical — unlike exprHash, with no
 * collision probability — which is what exec::QueryCache stores to make
 * digest collisions observable instead of silently aliasing verdicts.
 * Shared subtrees serialize once (memoized) but are spliced per
 * occurrence, so output size follows the expanded tree.
 */
void serializeExpr(const ExprRef &e, std::string *out);

/**
 * Append the distinct signals referenced by @p e to @p out (shared
 * subtrees visited once; duplicates across calls are the caller's to
 * fold). This is the support set a COI-pruned BMC run grows its cone
 * from (analysis::backwardCone).
 */
void collectSigs(const ExprRef &e, std::vector<SigId> *out);

/**
 * Compile @p e as observed starting at frame @p start.
 * Frames beyond the unrolling bound make the expression FALSE (a bounded
 * semantics; the engine accounts for this when deciding outcomes).
 */
bmc::AigLit compile(const ExprRef &e, bmc::Unrolling &u, unsigned start,
                    unsigned bound);

/**
 * Evaluate @p e over a simulated trace starting at cycle @p start, with the
 * same bounded semantics as compile(). Used to re-validate BMC witnesses
 * through an independent implementation path.
 */
bool evalOnTrace(const ExprRef &e, const SimTrace &trace, unsigned start);

} // namespace rmp::prop

#endif // PROP_PROPERTY_HH
