#include "prop/property.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace rmp::prop
{

unsigned
Expr::depth() const
{
    switch (kind) {
      case ExprKind::True:
      case ExprKind::SigEqConst:
      case ExprKind::SigBit:
        return 0;
      case ExprKind::Not:
        return a->depth();
      case ExprKind::And:
      case ExprKind::Or:
        return std::max(a->depth(), b->depth());
      case ExprKind::Delay:
        return std::max(a->depth(), delay + b->depth());
    }
    return 0;
}

std::string
Expr::str(const Design &d) const
{
    auto sig_name = [&](SigId s) {
        const std::string &n = d.cell(s).name;
        return n.empty() ? "sig" + std::to_string(s) : n;
    };
    switch (kind) {
      case ExprKind::True:
        return "1";
      case ExprKind::SigEqConst:
        return sig_name(sig) + "==" + std::to_string(value);
      case ExprKind::SigBit:
        return d.cell(sig).width == 1
                   ? sig_name(sig)
                   : sig_name(sig) + "[" + std::to_string(value) + "]";
      case ExprKind::Not:
        return "!(" + a->str(d) + ")";
      case ExprKind::And:
        return "(" + a->str(d) + " & " + b->str(d) + ")";
      case ExprKind::Or:
        return "(" + a->str(d) + " | " + b->str(d) + ")";
      case ExprKind::Delay:
        return "(" + a->str(d) + " ##" + std::to_string(delay) + " " +
               b->str(d) + ")";
    }
    return "?";
}

ExprRef
pTrue()
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::True;
    return e;
}

ExprRef
pEq(SigId sig, uint64_t value)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::SigEqConst;
    e->sig = sig;
    e->value = value;
    return e;
}

ExprRef
pBit(SigId sig, unsigned bit)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::SigBit;
    e->sig = sig;
    e->value = bit;
    return e;
}

ExprRef
pNot(ExprRef a)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Not;
    e->a = std::move(a);
    return e;
}

ExprRef
pAnd(ExprRef a, ExprRef b)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::And;
    e->a = std::move(a);
    e->b = std::move(b);
    return e;
}

ExprRef
pOr(ExprRef a, ExprRef b)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Or;
    e->a = std::move(a);
    e->b = std::move(b);
    return e;
}

ExprRef
pAndN(const std::vector<ExprRef> &xs)
{
    if (xs.empty())
        return pTrue();
    ExprRef acc = xs[0];
    for (size_t i = 1; i < xs.size(); i++)
        acc = pAnd(acc, xs[i]);
    return acc;
}

ExprRef
pOrN(const std::vector<ExprRef> &xs)
{
    if (xs.empty())
        return pNot(pTrue());
    ExprRef acc = xs[0];
    for (size_t i = 1; i < xs.size(); i++)
        acc = pOr(acc, xs[i]);
    return acc;
}

ExprRef
pDelay(ExprRef a, unsigned delay, ExprRef b)
{
    auto e = std::make_shared<Expr>();
    e->kind = ExprKind::Delay;
    e->a = std::move(a);
    e->b = std::move(b);
    e->delay = delay;
    return e;
}

namespace
{

/** splitmix64 finalizer: the avalanche step used to combine hash words. */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
hashRec(const Expr *e, uint64_t seed,
        std::unordered_map<const Expr *, uint64_t> &memo)
{
    auto it = memo.find(e);
    if (it != memo.end())
        return it->second;
    uint64_t h = mix64(seed ^ static_cast<uint64_t>(e->kind));
    h = mix64(h ^ static_cast<uint64_t>(e->sig));
    h = mix64(h ^ e->value);
    h = mix64(h ^ e->delay);
    if (e->a)
        h = mix64(h ^ hashRec(e->a.get(), seed, memo));
    if (e->b)
        h = mix64((h + 0x85ebca6bULL) ^ hashRec(e->b.get(), seed, memo));
    memo.emplace(e, h);
    return h;
}

const std::string &
serializeRec(const Expr *e,
             std::unordered_map<const Expr *, std::string> &memo)
{
    auto it = memo.find(e);
    if (it != memo.end())
        return it->second;
    std::string s;
    s.push_back('(');
    s.push_back(static_cast<char>('A' + static_cast<int>(e->kind)));
    s += std::to_string(e->sig);
    s.push_back(',');
    s += std::to_string(e->value);
    s.push_back(',');
    s += std::to_string(e->delay);
    if (e->a)
        s += serializeRec(e->a.get(), memo);
    if (e->b)
        s += serializeRec(e->b.get(), memo);
    s.push_back(')');
    return memo.emplace(e, std::move(s)).first->second;
}

} // anonymous namespace

uint64_t
exprHash(const ExprRef &e, uint64_t seed)
{
    std::unordered_map<const Expr *, uint64_t> memo;
    return hashRec(e.get(), mix64(seed ^ 0xc2b2ae3d27d4eb4fULL), memo);
}

void
serializeExpr(const ExprRef &e, std::string *out)
{
    std::unordered_map<const Expr *, std::string> memo;
    *out += serializeRec(e.get(), memo);
}

void
collectSigs(const ExprRef &e, std::vector<SigId> *out)
{
    std::vector<const Expr *> stack{e.get()};
    std::unordered_map<const Expr *, bool> seen;
    while (!stack.empty()) {
        const Expr *n = stack.back();
        stack.pop_back();
        if (!n || !seen.emplace(n, true).second)
            continue;
        if (n->sig != kNoSig)
            out->push_back(n->sig);
        stack.push_back(n->a.get());
        stack.push_back(n->b.get());
    }
}

bmc::AigLit
compile(const ExprRef &e, bmc::Unrolling &u, unsigned start, unsigned bound)
{
    using namespace bmc;
    if (start >= bound)
        return kFalse;
    switch (e->kind) {
      case ExprKind::True:
        return kTrue;
      case ExprKind::SigEqConst:
        return u.sigEqConst(start, e->sig, e->value);
      case ExprKind::SigBit:
        return u.sigBit(start, e->sig, static_cast<unsigned>(e->value));
      case ExprKind::Not:
        return aigNot(compile(e->a, u, start, bound));
      case ExprKind::And:
        return u.aig().mkAnd(compile(e->a, u, start, bound),
                             compile(e->b, u, start, bound));
      case ExprKind::Or:
        return u.aig().mkOr(compile(e->a, u, start, bound),
                            compile(e->b, u, start, bound));
      case ExprKind::Delay: {
          AigLit la = compile(e->a, u, start, bound);
          AigLit lb = compile(e->b, u, start + e->delay, bound);
          return u.aig().mkAnd(la, lb);
      }
    }
    rmp_panic("compile: bad expr kind");
}

bool
evalOnTrace(const ExprRef &e, const SimTrace &trace, unsigned start)
{
    if (start >= trace.numCycles())
        return false;
    switch (e->kind) {
      case ExprKind::True:
        return true;
      case ExprKind::SigEqConst:
        return trace.value(start, e->sig) == e->value;
      case ExprKind::SigBit:
        return (trace.value(start, e->sig) >> e->value) & 1;
      case ExprKind::Not:
        return !evalOnTrace(e->a, trace, start);
      case ExprKind::And:
        return evalOnTrace(e->a, trace, start) &&
               evalOnTrace(e->b, trace, start);
      case ExprKind::Or:
        return evalOnTrace(e->a, trace, start) ||
               evalOnTrace(e->b, trace, start);
      case ExprKind::Delay:
        return evalOnTrace(e->a, trace, start) &&
               evalOnTrace(e->b, trace, start + e->delay);
    }
    rmp_panic("evalOnTrace: bad expr kind");
}

} // namespace rmp::prop
