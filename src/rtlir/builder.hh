/**
 * @file
 * Chisel-like hardware construction layer over the netlist IR.
 *
 * Provides a Sig value type with operator overloads, registers with
 * last-connect-wins conditional assignment under when()/elseWhen()/
 * otherwise() scopes, and memory arrays elaborated into register files.
 * This is how every DUV in src/designs is written; it plays the role of
 * SystemVerilog source in the paper's flow.
 */

#ifndef RTLIR_BUILDER_HH
#define RTLIR_BUILDER_HH

#include <string>
#include <vector>

#include "rtlir/design.hh"

namespace rmp
{

class Builder;

/** A signal handle: a SigId plus the Builder it belongs to. */
struct Sig
{
    Builder *b = nullptr;
    SigId id = kNoSig;

    bool valid() const { return id != kNoSig; }
    unsigned width() const;

    /** @name Bitwise / arithmetic operators (width-checked) */
    /// @{
    Sig operator&(Sig o) const;
    Sig operator|(Sig o) const;
    Sig operator^(Sig o) const;
    Sig operator~() const;
    Sig operator+(Sig o) const;
    Sig operator-(Sig o) const;
    Sig operator*(Sig o) const;
    Sig operator==(Sig o) const;
    Sig operator!=(Sig o) const;
    Sig operator<(Sig o) const;  ///< unsigned
    Sig operator>=(Sig o) const; ///< unsigned
    /// @}

    /** Bits [lo .. lo+width-1]. */
    Sig slice(unsigned lo, unsigned width) const;
    /** Single bit @p i as a 1-bit signal. */
    Sig bit(unsigned i) const;
    /** Zero-extend to @p width. */
    Sig zext(unsigned width) const;
    /** OR-reduce to 1 bit ("is any bit set"). */
    Sig orR() const;
    /** AND-reduce to 1 bit. */
    Sig andR() const;
};

/** A register handle: read via q, written via Builder::assign. */
struct RegSig
{
    Sig q;
    /** Index into Builder's internal register table. */
    size_t slot = 0;
    unsigned width() const { return q.width(); }
    operator Sig() const { return q; }
};

/** A memory elaborated as a register array with mux-tree read ports. */
struct MemArray
{
    std::string name;
    unsigned wordWidth = 0;
    std::vector<RegSig> words;
    size_t size() const { return words.size(); }
};

/**
 * Hardware construction context for one Design.
 *
 * Registers accumulate conditional assignments; finalize() lowers them into
 * mux chains and connects every register's next-state input. A Builder must
 * be finalized exactly once, after which the Design is complete.
 */
class Builder
{
  public:
    explicit Builder(Design &design) : d(design) {}

    Design &design() { return d; }

    /** @name Leaf signals */
    /// @{
    Sig input(const std::string &name, unsigned width);
    Sig lit(unsigned width, uint64_t value);
    Sig lit1(bool value) { return lit(1, value); }
    Sig reg(const std::string &name, unsigned width, uint64_t reset = 0);
    /** Register with a handle for conditional assignment. */
    RegSig regh(const std::string &name, unsigned width, uint64_t reset = 0);
    /// @}

    /** @name Combinational helpers */
    /// @{
    Sig mux(Sig sel, Sig then_val, Sig else_val);
    Sig cat(Sig hi, Sig lo);
    Sig shl(Sig val, Sig amount);
    Sig shr(Sig val, Sig amount);
    /** Name a wire for debugging / report readability. */
    Sig named(const std::string &name, Sig s);
    /// @}

    /** @name Conditional assignment scopes (Chisel-style) */
    /// @{
    void when(Sig cond);
    void elseWhen(Sig cond);
    void otherwise();
    void end();
    /** Assign @p value to @p reg under the current condition stack. */
    void assign(RegSig &reg, Sig value);
    /// @}

    /** @name Memories */
    /// @{
    /** Create a @p words x @p width memory elaborated as registers. */
    MemArray mem(const std::string &name, size_t words, unsigned width);
    /** Combinational (same-cycle) read port. */
    Sig memRead(const MemArray &m, Sig addr);
    /** Write port active under the current when-scope and @p en. */
    void memWrite(MemArray &m, Sig en, Sig addr, Sig data);
    /// @}

    /**
     * Lower all conditional assignments and connect register next-state
     * inputs. Registers never assigned keep their value. Must be called
     * exactly once; validates the design.
     */
    void finalize();

  private:
    friend struct Sig;

    struct PendingAssign
    {
        Sig cond;  ///< fully resolved condition (invalid = unconditional)
        Sig value;
    };

    struct RegState
    {
        SigId id;
        std::vector<PendingAssign> assigns;
    };

    struct ScopeFrame
    {
        Sig cond;          ///< condition of the active branch
        Sig priorNegated;  ///< conjunction of negations of earlier branches
    };

    /** Conjunction of all active scope conditions (invalid if empty). */
    Sig currentCond() const;

    Design &d;
    std::vector<RegState> regStates;
    std::vector<ScopeFrame> scopes;
    bool finalized = false;
};

} // namespace rmp

#endif // RTLIR_BUILDER_HH
