/**
 * @file
 * Word-level synchronous netlist IR.
 *
 * This is the elaborated-design substrate that replaces the paper's
 * SystemVerilog + Verific/Yosys frontend (DESIGN.md §1). A Design is a flat
 * vector of cells; combinational cells form a DAG, Reg cells are the
 * sequential boundary. All signals are 1..64 bits wide (BitVec).
 *
 * Registers reset synchronously to their reset value, giving the "valid
 * reset state" from which all of the paper's properties are evaluated
 * (§V-B). Memories are elaborated into register arrays by the Builder, so
 * downstream passes (simulation, bit-blasting, IFT instrumentation) only
 * ever see Input/Const/comb/Reg cells.
 */

#ifndef RTLIR_DESIGN_HH
#define RTLIR_DESIGN_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvec.hh"

namespace rmp
{

/** Index of a cell (== of the signal it drives) within a Design. */
using SigId = uint32_t;

/** Sentinel for "no signal". */
constexpr SigId kNoSig = static_cast<SigId>(-1);

/** Cell operations. Comments give (operand widths) -> result width. */
enum class Op : uint8_t
{
    Input,   ///< free symbolic input; fresh value every cycle
    Const,   ///< constant (value in Cell::cval)
    Not,     ///< (w) -> w, bitwise
    And,     ///< (w, w) -> w
    Or,      ///< (w, w) -> w
    Xor,     ///< (w, w) -> w
    RedOr,   ///< (w) -> 1
    RedAnd,  ///< (w) -> 1
    Eq,      ///< (w, w) -> 1
    Ult,     ///< (w, w) -> 1, unsigned less-than
    Add,     ///< (w, w) -> w, modulo 2^w
    Sub,     ///< (w, w) -> w, modulo 2^w
    Mul,     ///< (w, w) -> w, modulo 2^w
    Shl,     ///< (w, k) -> w, shift left by unsigned amount
    Shr,     ///< (w, k) -> w, logical shift right
    Mux,     ///< (1, w, w) -> w; sel ? a : b
    Slice,   ///< (w) -> width, bits [aux0 +: width]
    Concat,  ///< (wh, wl) -> wh+wl; arg0 is the high part
    Zext,    ///< (w) -> width >= w, zero extension
    Reg,     ///< sequential; arg0 = next-state signal, cval = reset value
};

/** True for cells that neither latch nor introduce free values. */
bool isCombOp(Op op);

/** Human-readable op mnemonic. */
const char *opName(Op op);

/** One cell: it both computes and names the signal it drives. */
struct Cell
{
    Op op = Op::Const;
    unsigned width = 1;
    SigId args[3] = {kNoSig, kNoSig, kNoSig};
    /** Constant value (Const) or reset value (Reg). */
    BitVec cval;
    /** Slice low bit index. */
    unsigned aux0 = 0;
    /** Optional name (inputs, registers, and named wires). */
    std::string name;

    unsigned
    numArgs() const
    {
        unsigned n = 0;
        while (n < 3 && args[n] != kNoSig)
            n++;
        return n;
    }
};

/** Aggregate size statistics for a design (cf. the paper's §VI counts). */
struct DesignStats
{
    size_t cells = 0;       ///< total cells
    size_t combCells = 0;   ///< combinational cells
    size_t inputs = 0;      ///< free inputs
    size_t registers = 0;   ///< Reg cells
    size_t flopBits = 0;    ///< total register bits
    size_t constants = 0;   ///< Const cells
};

/**
 * A flat synchronous netlist.
 *
 * Cells are created through the add* methods (normally via Builder) and are
 * immutable afterwards, except that a Reg's next-state input is connected
 * late (connectRegNext) to allow sequential feedback loops.
 */
class Design
{
  public:
    explicit Design(std::string name = "design") : _name(std::move(name)) {}

    /** Design name (used in reports). */
    const std::string &name() const { return _name; }

    /** @name Cell construction */
    /// @{
    SigId addInput(const std::string &name, unsigned width);
    SigId addConst(const BitVec &value);
    SigId addUnary(Op op, SigId a, unsigned result_width, unsigned aux0 = 0);
    SigId addBinary(Op op, SigId a, SigId b);
    /** Compare/arith ops whose result width differs from operand width. */
    SigId addBinaryW(Op op, SigId a, SigId b, unsigned result_width);
    SigId addMux(SigId sel, SigId a, SigId b);
    /** Create a register; next-state input is connected later. */
    SigId addReg(const std::string &name, const BitVec &reset_value);
    /** Connect a register's next-state input (exactly once). */
    void connectRegNext(SigId reg, SigId next);
    /// @}

    /** Give a cell a (better) name; used for debug and PL rendering. */
    void setName(SigId id, const std::string &name);

    /** @name Introspection */
    /// @{
    const Cell &cell(SigId id) const { return cells_[id]; }
    size_t numCells() const { return cells_.size(); }
    unsigned width(SigId id) const { return cells_[id].width; }
    const std::vector<SigId> &inputs() const { return inputIds; }
    const std::vector<SigId> &registers() const { return regIds; }
    /** Look up a named signal; kNoSig if absent. */
    SigId findByName(const std::string &name) const;
    DesignStats stats() const;
    /// @}

    /**
     * Check structural invariants: widths consistent, registers connected,
     * no combinational cycles. Calls rmp_fatal on violation.
     */
    void validate() const;

    /**
     * Combinational cells in topological order (inputs/consts/regs are
     * sources). Cached; invalidated on cell creation.
     */
    const std::vector<SigId> &topoOrder() const;

    /**
     * The set of registers and inputs in the combinational fan-in cone of
     * @p sig (stopping at sequential boundaries). Used by RTL2MμPATH's
     * HB-edge candidate derivation (§V-B5).
     */
    std::vector<SigId> combFanInSources(SigId sig) const;

    /** Like combFanInSources for several roots at once, de-duplicated. */
    std::vector<SigId> combFanInSources(const std::vector<SigId> &sigs) const;

  private:
    SigId push(Cell c);

    std::string _name;
    std::vector<Cell> cells_;
    std::vector<SigId> inputIds;
    std::vector<SigId> regIds;
    std::unordered_map<std::string, SigId> nameMap;
    mutable std::vector<SigId> topoCache;
    mutable bool topoValid = false;
};

} // namespace rmp

#endif // RTLIR_DESIGN_HH
