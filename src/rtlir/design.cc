#include "rtlir/design.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rmp
{

bool
isCombOp(Op op)
{
    return op != Op::Input && op != Op::Reg;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Input: return "input";
      case Op::Const: return "const";
      case Op::Not: return "not";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::RedOr: return "redor";
      case Op::RedAnd: return "redand";
      case Op::Eq: return "eq";
      case Op::Ult: return "ult";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Mux: return "mux";
      case Op::Slice: return "slice";
      case Op::Concat: return "concat";
      case Op::Zext: return "zext";
      case Op::Reg: return "reg";
    }
    return "?";
}

SigId
Design::push(Cell c)
{
    cells_.push_back(std::move(c));
    topoValid = false;
    return static_cast<SigId>(cells_.size() - 1);
}

SigId
Design::addInput(const std::string &name, unsigned width)
{
    rmp_assert(width >= 1 && width <= 64, "input %s width %u", name.c_str(),
               width);
    Cell c;
    c.op = Op::Input;
    c.width = width;
    c.name = name;
    SigId id = push(std::move(c));
    inputIds.push_back(id);
    rmp_assert(!nameMap.count(name), "duplicate input name %s", name.c_str());
    nameMap[name] = id;
    return id;
}

SigId
Design::addConst(const BitVec &value)
{
    Cell c;
    c.op = Op::Const;
    c.width = value.width();
    c.cval = value;
    return push(std::move(c));
}

SigId
Design::addUnary(Op op, SigId a, unsigned result_width, unsigned aux0)
{
    rmp_assert(a < cells_.size(), "bad operand");
    Cell c;
    c.op = op;
    c.width = result_width;
    c.args[0] = a;
    c.aux0 = aux0;
    switch (op) {
      case Op::Not:
        rmp_assert(result_width == cells_[a].width, "not width");
        break;
      case Op::RedOr:
      case Op::RedAnd:
        rmp_assert(result_width == 1, "reduction width");
        break;
      case Op::Slice:
        rmp_assert(aux0 + result_width <= cells_[a].width,
                   "slice [%u +: %u] out of %u-bit signal", aux0,
                   result_width, cells_[a].width);
        break;
      case Op::Zext:
        rmp_assert(result_width >= cells_[a].width, "zext narrows");
        break;
      default:
        rmp_panic("addUnary: op %s is not unary", opName(op));
    }
    return push(std::move(c));
}

SigId
Design::addBinary(Op op, SigId a, SigId b)
{
    rmp_assert(a < cells_.size() && b < cells_.size(), "bad operand");
    unsigned wa = cells_[a].width, wb = cells_[b].width;
    unsigned rw = 0;
    switch (op) {
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
        rmp_assert(wa == wb, "%s width mismatch %u vs %u", opName(op), wa,
                   wb);
        rw = wa;
        break;
      case Op::Shl:
      case Op::Shr:
        rw = wa;
        break;
      case Op::Eq:
      case Op::Ult:
        rmp_assert(wa == wb, "%s width mismatch %u vs %u", opName(op), wa,
                   wb);
        rw = 1;
        break;
      case Op::Concat:
        rw = wa + wb;
        rmp_assert(rw <= 64, "concat exceeds 64 bits");
        break;
      default:
        rmp_panic("addBinary: op %s is not binary", opName(op));
    }
    Cell c;
    c.op = op;
    c.width = rw;
    c.args[0] = a;
    c.args[1] = b;
    return push(std::move(c));
}

SigId
Design::addBinaryW(Op op, SigId a, SigId b, unsigned result_width)
{
    SigId id = addBinary(op, a, b);
    rmp_assert(cells_[id].width == result_width, "addBinaryW width");
    return id;
}

SigId
Design::addMux(SigId sel, SigId a, SigId b)
{
    rmp_assert(sel < cells_.size() && a < cells_.size() && b < cells_.size(),
               "bad operand");
    rmp_assert(cells_[sel].width == 1, "mux select must be 1 bit");
    rmp_assert(cells_[a].width == cells_[b].width, "mux arm width mismatch");
    Cell c;
    c.op = Op::Mux;
    c.width = cells_[a].width;
    c.args[0] = sel;
    c.args[1] = a;
    c.args[2] = b;
    return push(std::move(c));
}

SigId
Design::addReg(const std::string &name, const BitVec &reset_value)
{
    Cell c;
    c.op = Op::Reg;
    c.width = reset_value.width();
    c.cval = reset_value;
    c.name = name;
    SigId id = push(std::move(c));
    regIds.push_back(id);
    rmp_assert(!nameMap.count(name), "duplicate register name %s",
               name.c_str());
    nameMap[name] = id;
    return id;
}

void
Design::connectRegNext(SigId reg, SigId next)
{
    rmp_assert(reg < cells_.size() && cells_[reg].op == Op::Reg,
               "connectRegNext on non-register");
    rmp_assert(cells_[reg].args[0] == kNoSig,
               "register %s already connected", cells_[reg].name.c_str());
    rmp_assert(cells_[next].width == cells_[reg].width,
               "register %s next width %u != %u", cells_[reg].name.c_str(),
               cells_[next].width, cells_[reg].width);
    cells_[reg].args[0] = next;
}

void
Design::setName(SigId id, const std::string &name)
{
    rmp_assert(id < cells_.size(), "bad signal");
    if (cells_[id].name.empty() && !nameMap.count(name)) {
        cells_[id].name = name;
        nameMap[name] = id;
    }
}

SigId
Design::findByName(const std::string &name) const
{
    auto it = nameMap.find(name);
    return it == nameMap.end() ? kNoSig : it->second;
}

DesignStats
Design::stats() const
{
    DesignStats s;
    s.cells = cells_.size();
    for (const auto &c : cells_) {
        switch (c.op) {
          case Op::Input:
            s.inputs++;
            break;
          case Op::Reg:
            s.registers++;
            s.flopBits += c.width;
            break;
          case Op::Const:
            s.constants++;
            s.combCells++;
            break;
          default:
            s.combCells++;
        }
    }
    return s;
}

const std::vector<SigId> &
Design::topoOrder() const
{
    if (topoValid)
        return topoCache;
    topoCache.clear();
    topoCache.reserve(cells_.size());
    // 0 = unvisited, 1 = on stack, 2 = done.
    std::vector<uint8_t> mark(cells_.size(), 0);
    // Iterative DFS over combinational fan-in.
    std::vector<std::pair<SigId, unsigned>> stack;
    for (SigId root = 0; root < cells_.size(); root++) {
        if (mark[root])
            continue;
        if (!isCombOp(cells_[root].op)) {
            mark[root] = 2;
            continue;
        }
        stack.emplace_back(root, 0);
        mark[root] = 1;
        while (!stack.empty()) {
            SigId id = stack.back().first;
            unsigned arg_idx = stack.back().second;
            bool descended = false;
            while (arg_idx < 3 && cells_[id].args[arg_idx] != kNoSig) {
                SigId a = cells_[id].args[arg_idx++];
                if (!isCombOp(cells_[a].op)) {
                    mark[a] = 2;
                    continue;
                }
                if (mark[a] == 1)
                    rmp_fatal("combinational cycle through cell %u (%s %s)",
                              a, opName(cells_[a].op),
                              cells_[a].name.c_str());
                if (mark[a] == 0) {
                    stack.back().second = arg_idx;
                    mark[a] = 1;
                    stack.emplace_back(a, 0);
                    descended = true;
                    break;
                }
            }
            if (!descended) {
                mark[id] = 2;
                topoCache.push_back(id);
                stack.pop_back();
            }
        }
    }
    topoValid = true;
    return topoCache;
}

std::vector<SigId>
Design::combFanInSources(SigId sig) const
{
    return combFanInSources(std::vector<SigId>{sig});
}

std::vector<SigId>
Design::combFanInSources(const std::vector<SigId> &sigs) const
{
    std::vector<uint8_t> seen(cells_.size(), 0);
    std::vector<SigId> work;
    std::vector<SigId> out;
    for (SigId s : sigs) {
        rmp_assert(s < cells_.size(), "bad signal");
        if (!seen[s]) {
            seen[s] = 1;
            work.push_back(s);
        }
    }
    while (!work.empty()) {
        SigId id = work.back();
        work.pop_back();
        const Cell &c = cells_[id];
        if (c.op == Op::Reg || c.op == Op::Input) {
            out.push_back(id);
            continue;
        }
        for (unsigned i = 0; i < 3 && c.args[i] != kNoSig; i++) {
            SigId a = c.args[i];
            if (!seen[a]) {
                seen[a] = 1;
                work.push_back(a);
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
Design::validate() const
{
    for (SigId id = 0; id < cells_.size(); id++) {
        const Cell &c = cells_[id];
        if (c.op == Op::Reg && c.args[0] == kNoSig)
            rmp_fatal("register %s has no next-state connection",
                      c.name.c_str());
        for (unsigned i = 0; i < 3; i++)
            if (c.args[i] != kNoSig)
                rmp_assert(c.args[i] < cells_.size(),
                           "cell %u has dangling operand", id);
    }
    // Detects combinational cycles through register next-state logic too.
    topoOrder();
}

} // namespace rmp
