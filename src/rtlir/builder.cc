#include "rtlir/builder.hh"

#include "common/logging.hh"

namespace rmp
{

unsigned
Sig::width() const
{
    return b->d.width(id);
}

Sig
Sig::operator&(Sig o) const
{
    return {b, b->d.addBinary(Op::And, id, o.id)};
}

Sig
Sig::operator|(Sig o) const
{
    return {b, b->d.addBinary(Op::Or, id, o.id)};
}

Sig
Sig::operator^(Sig o) const
{
    return {b, b->d.addBinary(Op::Xor, id, o.id)};
}

Sig
Sig::operator~() const
{
    return {b, b->d.addUnary(Op::Not, id, width())};
}

Sig
Sig::operator+(Sig o) const
{
    return {b, b->d.addBinary(Op::Add, id, o.id)};
}

Sig
Sig::operator-(Sig o) const
{
    return {b, b->d.addBinary(Op::Sub, id, o.id)};
}

Sig
Sig::operator*(Sig o) const
{
    return {b, b->d.addBinary(Op::Mul, id, o.id)};
}

Sig
Sig::operator==(Sig o) const
{
    return {b, b->d.addBinary(Op::Eq, id, o.id)};
}

Sig
Sig::operator!=(Sig o) const
{
    Sig eq = *this == o;
    return ~eq;
}

Sig
Sig::operator<(Sig o) const
{
    return {b, b->d.addBinary(Op::Ult, id, o.id)};
}

Sig
Sig::operator>=(Sig o) const
{
    Sig lt = *this < o;
    return ~lt;
}

Sig
Sig::slice(unsigned lo, unsigned w) const
{
    return {b, b->d.addUnary(Op::Slice, id, w, lo)};
}

Sig
Sig::bit(unsigned i) const
{
    return slice(i, 1);
}

Sig
Sig::zext(unsigned w) const
{
    if (w == width())
        return *this;
    return {b, b->d.addUnary(Op::Zext, id, w)};
}

Sig
Sig::orR() const
{
    return {b, b->d.addUnary(Op::RedOr, id, 1)};
}

Sig
Sig::andR() const
{
    return {b, b->d.addUnary(Op::RedAnd, id, 1)};
}

Sig
Builder::input(const std::string &name, unsigned width)
{
    return {this, d.addInput(name, width)};
}

Sig
Builder::lit(unsigned width, uint64_t value)
{
    return {this, d.addConst(BitVec(width, value))};
}

Sig
Builder::reg(const std::string &name, unsigned width, uint64_t reset)
{
    RegSig r = regh(name, width, reset);
    return r.q;
}

RegSig
Builder::regh(const std::string &name, unsigned width, uint64_t reset)
{
    SigId id = d.addReg(name, BitVec(width, reset));
    RegState st;
    st.id = id;
    regStates.push_back(std::move(st));
    RegSig r;
    r.q = {this, id};
    r.slot = regStates.size() - 1;
    return r;
}

Sig
Builder::mux(Sig sel, Sig then_val, Sig else_val)
{
    return {this, d.addMux(sel.id, then_val.id, else_val.id)};
}

Sig
Builder::cat(Sig hi, Sig lo)
{
    return {this, d.addBinary(Op::Concat, hi.id, lo.id)};
}

Sig
Builder::shl(Sig val, Sig amount)
{
    return {this, d.addBinary(Op::Shl, val.id, amount.id)};
}

Sig
Builder::shr(Sig val, Sig amount)
{
    return {this, d.addBinary(Op::Shr, val.id, amount.id)};
}

Sig
Builder::named(const std::string &name, Sig s)
{
    d.setName(s.id, name);
    return s;
}

void
Builder::when(Sig cond)
{
    rmp_assert(cond.width() == 1, "when() condition must be 1 bit");
    ScopeFrame f;
    f.cond = cond;
    f.priorNegated = ~cond;
    scopes.push_back(f);
}

void
Builder::elseWhen(Sig cond)
{
    rmp_assert(!scopes.empty(), "elseWhen() without when()");
    rmp_assert(cond.width() == 1, "elseWhen() condition must be 1 bit");
    ScopeFrame &f = scopes.back();
    f.cond = f.priorNegated & cond;
    f.priorNegated = f.priorNegated & ~cond;
}

void
Builder::otherwise()
{
    rmp_assert(!scopes.empty(), "otherwise() without when()");
    ScopeFrame &f = scopes.back();
    f.cond = f.priorNegated;
}

void
Builder::end()
{
    rmp_assert(!scopes.empty(), "end() without when()");
    scopes.pop_back();
}

Sig
Builder::currentCond() const
{
    Sig acc;
    for (const auto &f : scopes) {
        if (!acc.valid())
            acc = f.cond;
        else
            acc = acc & f.cond;
    }
    return acc;
}

void
Builder::assign(RegSig &reg, Sig value)
{
    rmp_assert(!finalized, "assign after finalize");
    rmp_assert(value.width() == reg.width(),
               "assign width %u to %u-bit register", value.width(),
               reg.width());
    PendingAssign pa;
    pa.cond = currentCond();
    pa.value = value;
    regStates[reg.slot].assigns.push_back(pa);
}

MemArray
Builder::mem(const std::string &name, size_t words, unsigned width)
{
    MemArray m;
    m.name = name;
    m.wordWidth = width;
    m.words.reserve(words);
    for (size_t i = 0; i < words; i++)
        m.words.push_back(
            regh(name + "[" + std::to_string(i) + "]", width, 0));
    return m;
}

Sig
Builder::memRead(const MemArray &m, Sig addr)
{
    rmp_assert(!m.words.empty(), "read from empty memory");
    Sig result = m.words[0].q;
    for (size_t i = 1; i < m.size(); i++) {
        Sig is_i = addr == lit(addr.width(), i);
        result = mux(is_i, m.words[i].q, result);
    }
    return result;
}

void
Builder::memWrite(MemArray &m, Sig en, Sig addr, Sig data)
{
    for (size_t i = 0; i < m.size(); i++) {
        Sig sel = en & (addr == lit(addr.width(), i));
        when(sel);
        assign(m.words[i], data);
        end();
    }
}

void
Builder::finalize()
{
    rmp_assert(!finalized, "finalize called twice");
    finalized = true;
    for (auto &st : regStates) {
        // Default: hold current value; apply assignments in program order
        // so the last active assignment wins (Chisel semantics).
        Sig next{this, st.id};
        for (const auto &pa : st.assigns) {
            if (!pa.cond.valid())
                next = pa.value;
            else
                next = mux(pa.cond, pa.value, next);
        }
        d.connectRegNext(st.id, next.id);
    }
    d.validate();
}

} // namespace rmp
