#include "analysis/fsmreach.hh"

#include <algorithm>
#include <set>

#include "analysis/combgraph.hh"
#include "common/logging.hh"

namespace rmp::analysis
{

namespace
{

struct Closure
{
    bool exact = false;
    std::vector<uint64_t> states;
};

/**
 * Successor closure of register @p r under @p base (a snapshot of the
 * facts): pin each reachable state, re-evaluate r's same-cycle forward
 * comb cone, and concretize the next-state abstraction. Works on a
 * private copy of @p base — per state, every cone cell is recomputed
 * from scratch, so states cannot contaminate each other.
 */
Closure
successorClosure(const Design &d, const CombGraph &g, SigId r,
                 const std::vector<AbsVal> &base, const FsmReachConfig &cfg)
{
    const Cell &rc = d.cell(r);
    unsigned w = rc.width;
    if (w > cfg.maxStateBits)
        return {};
    uint64_t mask = BitVec::maskOf(w);
    const std::vector<SigId> &cone = g.forwardComb(r);
    SigId next = rc.args[0];
    std::vector<AbsVal> env = base;

    std::set<uint64_t> reach;
    std::vector<uint64_t> work;
    reach.insert(rc.cval.value());
    work.push_back(rc.cval.value());
    while (!work.empty()) {
        uint64_t s = work.back();
        work.pop_back();
        env[r] = AbsVal::constant(s, mask);
        for (SigId id : cone)
            env[id] = transferCell(d, id, env);
        const AbsVal &nv = env[next];

        std::vector<uint64_t> succ;
        if (!nv.set.empty()) {
            succ = nv.set;
        } else {
            uint64_t unknown = mask & ~(nv.zeros | nv.ones);
            if (static_cast<unsigned>(__builtin_popcountll(unknown)) >
                cfg.maxEnumBits)
                return {};
            // Enumerate every assignment of the unknown bits; admits()
            // additionally filters by the derived range.
            uint64_t sub = 0;
            do {
                uint64_t v = (nv.ones | sub) & mask;
                if (nv.admits(v))
                    succ.push_back(v);
                sub = (sub - unknown) & unknown;
            } while (sub != 0);
        }
        for (uint64_t v : succ) {
            if (reach.insert(v).second) {
                if (reach.size() > cfg.maxStates)
                    return {};
                work.push_back(v);
            }
        }
    }

    Closure c;
    c.exact = true;
    c.states.assign(reach.begin(), reach.end());
    return c;
}

} // anonymous namespace

std::vector<FsmReachResult>
fsmReachability(const Design &d, const std::vector<SigId> &controlRegs,
                AbsFacts &facts, const FsmReachConfig &cfg)
{
    rmp_assert(facts.val.size() == d.numCells(),
               "fsmReachability: facts/design mismatch");
    CombGraph g(d);

    std::vector<SigId> regs;
    for (SigId r : controlRegs) {
        if (r >= d.numCells() || d.cell(r).op != Op::Reg) {
            warn(strfmt(
                "fsmReachability: ignoring non-register control sig %u",
                r));
            continue;
        }
        if (std::find(regs.begin(), regs.end(), r) == regs.end())
            regs.push_back(r);
    }

    // Refined registers are pinned: their sets are proven invariants
    // (successor-closed from reset under an env at least as weak as the
    // final one), so re-stabilization must not join them back up.
    std::vector<uint8_t> pinned(d.numCells(), 0);
    unsigned extraIters = 0;
    for (unsigned round = 0; round < cfg.maxRefineRounds; round++) {
        bool changed = false;
        // All closures in one round run against the same snapshot; the
        // refinements they prove land in facts.val for the next round.
        const std::vector<AbsVal> base = facts.val;
        for (SigId r : regs) {
            Closure c = successorClosure(d, g, r, base, cfg);
            if (!c.exact)
                continue;
            uint64_t mask = BitVec::maskOf(d.width(r));
            AbsVal refined = AbsVal::fromSet(c.states, mask);
            const AbsVal &cur = facts.val[r];
            // Only adopt strict refinements; the closure can never be
            // wider than the current abstraction admits.
            bool shrinks =
                refined.zeros != cur.zeros || refined.ones != cur.ones ||
                refined.set != cur.set || refined.lo != cur.lo ||
                refined.hi != cur.hi;
            if (shrinks) {
                facts.val[r] = refined;
                pinned[r] = 1;
                changed = true;
            }
        }
        if (!changed)
            break;
        // Re-stabilize the rest of the system under the pinned sets.
        bool ch = true;
        while (ch) {
            rmp_assert(extraIters < 100000,
                       "fsmReachability: re-stabilization diverged");
            absEvalComb(d, facts.val);
            ch = false;
            for (SigId rr : d.registers()) {
                if (pinned[rr])
                    continue;
                uint64_t mask = BitVec::maskOf(d.width(rr));
                const AbsVal &next = facts.val[d.cell(rr).args[0]];
                AbsVal joined = joinAbs(facts.val[rr], next, mask);
                const AbsVal &cur = facts.val[rr];
                if (joined.zeros != cur.zeros || joined.ones != cur.ones ||
                    joined.set != cur.set || joined.lo != cur.lo ||
                    joined.hi != cur.hi) {
                    facts.val[rr] = std::move(joined);
                    ch = true;
                }
            }
            extraIters++;
        }
    }

    // Report from the final facts (one more closure per register so the
    // result is consistent with what consumers will see).
    std::vector<FsmReachResult> out;
    for (SigId r : regs) {
        FsmReachResult res;
        res.reg = r;
        Closure c = successorClosure(d, g, r, facts.val, cfg);
        res.exact = c.exact;
        res.states = std::move(c.states);
        facts.exactSet[r] =
            res.exact && !facts.val[r].set.empty() &&
            facts.val[r].set == res.states;
        out.push_back(std::move(res));
    }

    facts.fixpointIters += extraIters;
    absSeal(d, facts);
    return out;
}

AbsFacts
staticFacts(const Design &d, const std::vector<SigId> &controlRegs,
            const AbsintConfig &acfg, const FsmReachConfig &fcfg)
{
    AbsFacts f = absInterpret(d, acfg);
    if (!controlRegs.empty())
        fsmReachability(d, controlRegs, f, fcfg);
    return f;
}

} // namespace rmp::analysis
