/**
 * @file
 * Word-level abstract interpretation over the netlist IR (DESIGN.md §3i).
 *
 * Computes, for every cell, a sound over-approximation of the set of
 * values the signal can take at ANY cycle of ANY run that starts in the
 * reset state with free inputs — exactly the trace set over which the
 * BMC engine's properties are evaluated (§V-B). Three coupled domains:
 *
 *  - ternary known-bits: per bit, proven-0 / proven-1 / unknown (⊤);
 *  - a small value set (≤ kMaxSetSize sorted values) when enumerable —
 *    this is what makes FSM-style control registers precise;
 *  - an unsigned interval [lo, hi], derived from the set when present
 *    and from the known bits otherwise (never iterated independently,
 *    which keeps the fixpoint lattice finite).
 *
 * The fixpoint seeds registers at their reset values (fully known),
 * inputs at ⊤ and constants at themselves, evaluates the combinational
 * DAG in topological order with per-op transfer functions that mirror
 * Simulator::step() bit for bit, then joins each register's next-state
 * abstraction into its state. Joins only discard knowledge (clear known
 * bits, grow/clear sets), so the iteration is monotone on a finite
 * lattice and terminates; a generous iteration cap panics in case of a
 * transfer-function monotonicity bug rather than looping.
 *
 * Soundness of the consumers (static cover pruning, tape const-folding,
 * mux-arm COI narrowing, the absint lint rules) reduces to one claim,
 * argued in DESIGN.md §3i: facts().val[s] contains every value cell s
 * takes on any reachable-from-reset trace. Anything proven impossible
 * here is impossible in every bounded unrolling and every simulation.
 */

#ifndef ANALYSIS_ABSINT_HH
#define ANALYSIS_ABSINT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "rtlir/design.hh"

namespace rmp::sim
{
struct FoldCache;
}

namespace rmp::analysis
{

/** Maximum tracked value-set size before a cell's set widens to ⊤. */
inline constexpr size_t kMaxSetSize = 64;

/** Abstract value of one cell. Invariants: zeros & ones == 0; both are
 *  subsets of the width mask; when set is non-empty it lists every
 *  possible value (sorted, deduped) and zeros/ones/lo/hi agree with it. */
struct AbsVal
{
    /** Bits proven 0 on every reachable cycle. */
    uint64_t zeros = 0;
    /** Bits proven 1 on every reachable cycle. */
    uint64_t ones = 0;
    /** Derived unsigned range (lo <= value <= hi on every cycle). */
    uint64_t lo = 0;
    uint64_t hi = ~0ULL;
    /** Exhaustive possible-value set; empty = not enumerable. */
    std::vector<uint64_t> set;

    /** Fully known iff every bit in @p mask is proven. */
    bool known(uint64_t mask) const { return (zeros | ones) == mask; }
    /** The proven constant (meaningful only when known()). */
    uint64_t cval() const { return ones; }
    /** Bits that may be 1 under @p mask. */
    uint64_t possible(uint64_t mask) const { return mask & ~zeros; }
    /** True iff @p v is consistent with every tracked fact. */
    bool admits(uint64_t v) const;
    /** Number of proven bits under @p mask. */
    unsigned knownBits(uint64_t mask) const;

    static AbsVal top(uint64_t mask);
    static AbsVal constant(uint64_t v, uint64_t mask);
    /** From an explicit value set (derives bits + range; widens to the
     *  common-bits abstraction if the set exceeds kMaxSetSize). */
    static AbsVal fromSet(std::vector<uint64_t> vals, uint64_t mask);
};

/** Lattice join (set union): keeps only facts true of both sides. */
AbsVal joinAbs(const AbsVal &x, const AbsVal &y, uint64_t mask);

/** Fixpoint results for one design. Immutable once computed; shared by
 *  reference between the engine pool's lanes (bmc::EngineConfig). */
struct AbsFacts
{
    /** Structural fingerprint of the analyzed design
     *  (exec::designFingerprint) — guards reuse across designs. */
    uint64_t designFp = 0;
    /** Per-cell abstraction at the fixpoint, indexed by SigId. */
    std::vector<AbsVal> val;
    /** Registers whose reachable value set was proven exhaustively by
     *  fsmReachability() (val[reg].set is then the exact state set). */
    std::vector<uint8_t> exactSet;
    /** Fixpoint iterations until stable (incl. fsmreach refinements). */
    unsigned fixpointIters = 0;
    /** Total proven bits / total bits across all cells. */
    uint64_t bitsKnown = 0;
    uint64_t bitsTotal = 0;
    /** Order-independent digest of every per-cell fact. Folded into
     *  exec::QueryCache keys: runs pruned under different facts (e.g.
     *  with vs without FSM refinement) never share memoized verdicts. */
    uint64_t fingerprint = 0;

    const AbsVal &of(SigId id) const { return val[id]; }
};

/** Abstract-interpretation knobs (defaults are the shipping profile). */
struct AbsintConfig
{
    /** Hard cap on sweeps over the register file; hitting it indicates
     *  a non-monotone transfer function and panics. */
    unsigned maxIters = 100000;
};

/**
 * Run the known-bits/value-set fixpoint on @p d. Registers classified
 * as control by the caller can afterwards be sharpened with
 * fsmReachability() (fsmreach.hh), which refines the same AbsFacts.
 */
AbsFacts absInterpret(const Design &d, const AbsintConfig &cfg = {});

/**
 * Evaluate one comb cell's transfer function. @p vals must hold valid
 * abstractions for the cell's operands. Exposed for fsmreach's pinned
 * successor enumeration and the unit tests.
 */
AbsVal transferCell(const Design &d, SigId id,
                    const std::vector<AbsVal> &vals);

/** One full combinational sweep: refresh every input/const/comb cell's
 *  abstraction in @p vals from the register entries (left untouched).
 *  Exposed for fsmreach's refinement re-stabilization. */
void absEvalComb(const Design &d, std::vector<AbsVal> &vals);

/** Recompute @p f's bit tallies, fingerprint, and obs gauges after its
 *  val[] entries changed (fsmreach refinement). */
void absSeal(const Design &d, AbsFacts &f);

/**
 * Per-Mux statically-fixed select values: muxSel[id] is 0 or 1 when
 * @p facts proves cell id is a Mux whose select is that constant on
 * every reachable cycle, -1 otherwise (including non-Mux cells). The
 * contract consumed by COI mux-arm narrowing: analysis::backwardCone
 * and bmc::Unrolling must be given the SAME vector so the narrowed
 * cone stays closed under exactly the edges the unroller reads.
 */
std::vector<int8_t> muxSelectFacts(const Design &d, const AbsFacts &facts);

/**
 * Seed @p fold (sim/tape.hh) with @p facts: comb cells proven constant
 * become foldable slots (kbConst/kbVal) and every cell gets its
 * possibly-one mask (kbPossible) for the tape's mask-narrowing alias
 * rules. Sound for the tape because BatchSim runs start from reset
 * with free inputs — precisely the trace set the facts over-approximate.
 * Registers and inputs are never marked foldable (their slots are
 * written externally).
 */
void seedFoldCache(const Design &d, const AbsFacts &facts,
                   sim::FoldCache *fold);

} // namespace rmp::analysis

#endif // ANALYSIS_ABSINT_HH
