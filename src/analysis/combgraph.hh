/**
 * @file
 * Per-design combinational-graph cache.
 *
 * Design::combFanInSources and analysis::forwardReach both re-derive
 * graph structure on every call — the former re-runs a fresh backward
 * DFS with per-call allocations, the latter rebuilds the full fan-out
 * (users) adjacency. Both are called per query on hot paths (lintIft
 * checks every taint root and shadow; HB-edge candidate derivation hits
 * every PL), so CombGraph hoists the shared structure into one object
 * computed once per design:
 *
 *  - a CSR fan-out adjacency (users of every signal);
 *  - each comb cell's topological position;
 *  - memoized combFanInSources results per root;
 *  - memoized same-cycle forward comb cones (fsmreach's per-state
 *    successor propagation re-evaluates exactly this cone per state).
 *
 * The cache is read-only with respect to the Design and must not
 * outlive it; memo tables make the object non-thread-safe (one
 * CombGraph per analysis pass, not shared across threads).
 */

#ifndef ANALYSIS_COMBGRAPH_HH
#define ANALYSIS_COMBGRAPH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rtlir/design.hh"

namespace rmp::analysis
{

class CombGraph
{
  public:
    explicit CombGraph(const Design &d);

    const Design &design() const { return *d_; }

    /** Cells reading signal @p id (fan-out edges, CSR slice). */
    const SigId *
    usersBegin(SigId id) const
    {
        return userList_.data() + userStart_[id];
    }
    const SigId *
    usersEnd(SigId id) const
    {
        return userList_.data() + userStart_[id + 1];
    }

    /** Topological position of a comb cell (sources are ~0u). */
    uint32_t topoPos(SigId id) const { return topoPos_[id]; }

    /**
     * The registers and inputs in @p root's combinational fan-in cone —
     * Design::combFanInSources, memoized per root. The returned
     * reference stays valid for the CombGraph's lifetime.
     */
    const std::vector<SigId> &fanInSources(SigId root) const;

    /**
     * Comb cells whose same-cycle value @p src can influence (fan-out
     * without crossing a register boundary), sorted by topological
     * position — i.e. a valid evaluation order. Memoized per source.
     */
    const std::vector<SigId> &forwardComb(SigId src) const;

  private:
    const Design *d_;
    std::vector<uint32_t> userStart_; ///< CSR offsets, numCells+1
    std::vector<SigId> userList_;
    std::vector<uint32_t> topoPos_;
    mutable std::unordered_map<SigId, std::vector<SigId>> fanInMemo_;
    mutable std::unordered_map<SigId, std::vector<SigId>> fwdMemo_;
};

/** forwardReach (coi.hh) on a prebuilt CombGraph: identical result,
 *  no per-call adjacency rebuild. */
std::vector<SigId> forwardReach(const CombGraph &g,
                                const std::vector<SigId> &roots,
                                int maxRegDepth = -1);

} // namespace rmp::analysis

#endif // ANALYSIS_COMBGRAPH_HH
