#include "analysis/coi.hh"

#include <algorithm>
#include <deque>

#include "analysis/combgraph.hh"
#include "common/logging.hh"

namespace rmp::analysis
{

namespace
{

/** splitmix64 finalizer (the repo's standard hash combiner). */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // anonymous namespace

Cone
backwardCone(const Design &d, const std::vector<SigId> &roots,
             int maxRegDepth, const std::vector<int8_t> *muxSel)
{
    size_t n = d.numCells();
    rmp_assert(!muxSel || muxSel->size() == n,
               "backwardCone: muxSel size mismatch");
    // depth[id] = fewest register boundaries crossed to reach id from a
    // root; kUnseen = not reached. Comb edges keep the depth, crossing a
    // register's next-state connection adds one, so a breadth-first wave
    // per depth layer computes the minimum.
    constexpr unsigned kUnseen = ~0u;
    std::vector<unsigned> depth(n, kUnseen);
    std::deque<SigId> frontier;
    for (SigId r : roots) {
        rmp_assert(r < n, "backwardCone: bad root %u", r);
        if (depth[r] != kUnseen)
            continue;
        depth[r] = 0;
        frontier.push_back(r);
    }
    while (!frontier.empty()) {
        SigId id = frontier.front();
        frontier.pop_front();
        const Cell &c = d.cell(id);
        unsigned dep = depth[id];
        unsigned arg_depth = dep;
        if (c.op == Op::Reg) {
            // Crossing the sequential boundary into next-state logic.
            if (maxRegDepth >= 0 && dep >= static_cast<unsigned>(maxRegDepth))
                continue;
            arg_depth = dep + 1;
        }
        // Mux-arm narrowing: when absint proved the select constant, the
        // unroller reads only the taken arm (neither the select nor the
        // dead arm), so the cone need not include their fan-in. The SAME
        // muxSel vector must be handed to bmc::Unrolling — the cone stays
        // closed under exactly the edges buildFrame() follows.
        int8_t fixed_sel =
            (muxSel && c.op == Op::Mux) ? (*muxSel)[id] : int8_t(-1);
        for (unsigned i = 0; i < 3 && c.args[i] != kNoSig; i++) {
            if (fixed_sel >= 0 && i != (fixed_sel ? 1u : 2u))
                continue;
            SigId a = c.args[i];
            if (depth[a] <= arg_depth)
                continue;
            depth[a] = arg_depth;
            // 0/1-BFS: same-depth edges go to the front so each depth
            // layer is fully comb-closed before the next wave starts. A
            // cell whose depth improves is re-queued so its fan-in is
            // re-relaxed under the smaller register budget.
            if (arg_depth == dep)
                frontier.push_front(a);
            else
                frontier.push_back(a);
        }
    }

    Cone cone;
    cone.inCone.assign(n, 0);
    uint64_t fp = mix64(0x5ca1ab1e ^ n);
    for (SigId id = 0; id < n; id++) {
        if (depth[id] == kUnseen)
            continue;
        cone.inCone[id] = 1;
        cone.cells.push_back(id);
        // cells is built in ascending SigId order, so the digest is
        // canonical for the member set.
        fp = mix64(fp ^ id);
        if (d.cell(id).op == Op::Reg)
            cone.regs.push_back(id);
        else if (d.cell(id).op == Op::Input)
            cone.inputs.push_back(id);
    }
    cone.fingerprint = fp;
    return cone;
}

std::vector<SigId>
forwardReach(const Design &d, const std::vector<SigId> &roots,
             int maxRegDepth)
{
    // One-shot convenience wrapper; repeated callers should hold a
    // CombGraph and use the overload in combgraph.hh.
    CombGraph g(d);
    return forwardReach(g, roots, maxRegDepth);
}

} // namespace rmp::analysis
