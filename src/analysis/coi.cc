#include "analysis/coi.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace rmp::analysis
{

namespace
{

/** splitmix64 finalizer (the repo's standard hash combiner). */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // anonymous namespace

Cone
backwardCone(const Design &d, const std::vector<SigId> &roots,
             int maxRegDepth)
{
    size_t n = d.numCells();
    // depth[id] = fewest register boundaries crossed to reach id from a
    // root; kUnseen = not reached. Comb edges keep the depth, crossing a
    // register's next-state connection adds one, so a breadth-first wave
    // per depth layer computes the minimum.
    constexpr unsigned kUnseen = ~0u;
    std::vector<unsigned> depth(n, kUnseen);
    std::deque<SigId> frontier;
    for (SigId r : roots) {
        rmp_assert(r < n, "backwardCone: bad root %u", r);
        if (depth[r] != kUnseen)
            continue;
        depth[r] = 0;
        frontier.push_back(r);
    }
    while (!frontier.empty()) {
        SigId id = frontier.front();
        frontier.pop_front();
        const Cell &c = d.cell(id);
        unsigned dep = depth[id];
        unsigned arg_depth = dep;
        if (c.op == Op::Reg) {
            // Crossing the sequential boundary into next-state logic.
            if (maxRegDepth >= 0 && dep >= static_cast<unsigned>(maxRegDepth))
                continue;
            arg_depth = dep + 1;
        }
        for (unsigned i = 0; i < 3 && c.args[i] != kNoSig; i++) {
            SigId a = c.args[i];
            if (depth[a] <= arg_depth)
                continue;
            depth[a] = arg_depth;
            // 0/1-BFS: same-depth edges go to the front so each depth
            // layer is fully comb-closed before the next wave starts. A
            // cell whose depth improves is re-queued so its fan-in is
            // re-relaxed under the smaller register budget.
            if (arg_depth == dep)
                frontier.push_front(a);
            else
                frontier.push_back(a);
        }
    }

    Cone cone;
    cone.inCone.assign(n, 0);
    uint64_t fp = mix64(0x5ca1ab1e ^ n);
    for (SigId id = 0; id < n; id++) {
        if (depth[id] == kUnseen)
            continue;
        cone.inCone[id] = 1;
        cone.cells.push_back(id);
        // cells is built in ascending SigId order, so the digest is
        // canonical for the member set.
        fp = mix64(fp ^ id);
        if (d.cell(id).op == Op::Reg)
            cone.regs.push_back(id);
        else if (d.cell(id).op == Op::Input)
            cone.inputs.push_back(id);
    }
    cone.fingerprint = fp;
    return cone;
}

std::vector<SigId>
forwardReach(const Design &d, const std::vector<SigId> &roots,
             int maxRegDepth)
{
    size_t n = d.numCells();
    // users[a] = cells reading signal a.
    std::vector<std::vector<SigId>> users(n);
    for (SigId id = 0; id < n; id++) {
        const Cell &c = d.cell(id);
        for (unsigned i = 0; i < 3 && c.args[i] != kNoSig; i++)
            users[c.args[i]].push_back(id);
    }
    constexpr unsigned kUnseen = ~0u;
    std::vector<unsigned> depth(n, kUnseen);
    std::deque<SigId> frontier;
    for (SigId r : roots) {
        rmp_assert(r < n, "forwardReach: bad root %u", r);
        if (depth[r] != kUnseen)
            continue;
        depth[r] = 0;
        frontier.push_back(r);
    }
    while (!frontier.empty()) {
        SigId id = frontier.front();
        frontier.pop_front();
        unsigned dep = depth[id];
        for (SigId u : users[id]) {
            // Entering a register crosses the sequential boundary: the
            // influence lands one cycle later.
            unsigned ud = dep;
            if (d.cell(u).op == Op::Reg) {
                if (maxRegDepth >= 0 &&
                    dep >= static_cast<unsigned>(maxRegDepth))
                    continue;
                ud = dep + 1;
            }
            if (depth[u] <= ud)
                continue;
            depth[u] = ud;
            if (ud == dep)
                frontier.push_front(u);
            else
                frontier.push_back(u);
        }
    }
    std::vector<SigId> out;
    for (SigId id = 0; id < n; id++)
        if (depth[id] != kUnseen)
            out.push_back(id);
    return out;
}

} // namespace rmp::analysis
