#include "analysis/combgraph.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace rmp::analysis
{

CombGraph::CombGraph(const Design &d) : d_(&d)
{
    size_t n = d.numCells();
    // CSR fan-out adjacency: two passes, counts then fill.
    userStart_.assign(n + 1, 0);
    for (SigId id = 0; id < n; id++) {
        const Cell &c = d.cell(id);
        for (unsigned i = 0; i < 3 && c.args[i] != kNoSig; i++)
            userStart_[c.args[i] + 1]++;
    }
    for (size_t i = 1; i <= n; i++)
        userStart_[i] += userStart_[i - 1];
    userList_.resize(userStart_[n]);
    std::vector<uint32_t> cursor(userStart_.begin(), userStart_.end() - 1);
    for (SigId id = 0; id < n; id++) {
        const Cell &c = d.cell(id);
        for (unsigned i = 0; i < 3 && c.args[i] != kNoSig; i++)
            userList_[cursor[c.args[i]]++] = id;
    }
    topoPos_.assign(n, ~0u);
    uint32_t pos = 0;
    for (SigId id : d.topoOrder())
        topoPos_[id] = pos++;
}

const std::vector<SigId> &
CombGraph::fanInSources(SigId root) const
{
    auto it = fanInMemo_.find(root);
    if (it != fanInMemo_.end())
        return it->second;
    return fanInMemo_.emplace(root, d_->combFanInSources(root))
        .first->second;
}

const std::vector<SigId> &
CombGraph::forwardComb(SigId src) const
{
    auto it = fwdMemo_.find(src);
    if (it != fwdMemo_.end())
        return it->second;
    rmp_assert(src < d_->numCells(), "forwardComb: bad source %u", src);
    std::vector<uint8_t> seen(d_->numCells(), 0);
    std::vector<SigId> work{src};
    std::vector<SigId> out;
    seen[src] = 1;
    while (!work.empty()) {
        SigId id = work.back();
        work.pop_back();
        for (const SigId *u = usersBegin(id); u != usersEnd(id); ++u) {
            if (seen[*u] || !isCombOp(d_->cell(*u).op))
                continue;
            seen[*u] = 1;
            out.push_back(*u);
            work.push_back(*u);
        }
    }
    std::sort(out.begin(), out.end(), [&](SigId x, SigId y) {
        return topoPos_[x] < topoPos_[y];
    });
    return fwdMemo_.emplace(src, std::move(out)).first->second;
}

std::vector<SigId>
forwardReach(const CombGraph &g, const std::vector<SigId> &roots,
             int maxRegDepth)
{
    const Design &d = g.design();
    size_t n = d.numCells();
    constexpr unsigned kUnseen = ~0u;
    std::vector<unsigned> depth(n, kUnseen);
    std::deque<SigId> frontier;
    for (SigId r : roots) {
        rmp_assert(r < n, "forwardReach: bad root %u", r);
        if (depth[r] != kUnseen)
            continue;
        depth[r] = 0;
        frontier.push_back(r);
    }
    while (!frontier.empty()) {
        SigId id = frontier.front();
        frontier.pop_front();
        unsigned dep = depth[id];
        for (const SigId *up = g.usersBegin(id); up != g.usersEnd(id);
             ++up) {
            SigId u = *up;
            // Entering a register crosses the sequential boundary: the
            // influence lands one cycle later.
            unsigned ud = dep;
            if (d.cell(u).op == Op::Reg) {
                if (maxRegDepth >= 0 &&
                    dep >= static_cast<unsigned>(maxRegDepth))
                    continue;
                ud = dep + 1;
            }
            if (depth[u] <= ud)
                continue;
            depth[u] = ud;
            if (ud == dep)
                frontier.push_front(u);
            else
                frontier.push_back(u);
        }
    }
    std::vector<SigId> out;
    for (SigId id = 0; id < n; id++)
        if (depth[id] != kUnseen)
            out.push_back(id);
    return out;
}

} // namespace rmp::analysis
