/**
 * @file
 * FSM reachability on the abstract domain (DESIGN.md §3i).
 *
 * For registers the μFSM identifier classifies as control (the state
 * variables of uhb::MicroFsm — passed in as plain SigIds so this layer
 * stays below uhb), the global known-bits fixpoint is usually coarse:
 * joining all states loses exactly the "which states exist at all"
 * information the synthesis loop's PL-occupancy covers ask about.
 *
 * fsmReachability() sharpens them with symbolic successor enumeration:
 * starting from the reset value, each reachable state s is pinned into
 * the register while every other cell keeps its global abstraction,
 * the register's same-cycle forward comb cone is re-evaluated with the
 * absint transfer functions, and the resulting next-state abstraction
 * is concretized (via its value set, or by enumerating its few unknown
 * bits). The closure of this relation over-approximates the register's
 * reachable value set — with free inputs it is almost always exact —
 * and replaces the register's abstraction in the AbsFacts, after which
 * the global fixpoint is re-stabilized with the refined registers
 * pinned (their sets are proven invariants: closed under successors
 * from reset, computed under an env that over-approximates the final
 * one). Refinement rounds repeat until nothing shrinks.
 *
 * This is what lets a statically dead PL valuation kill its occupancy
 * cover: Eq(state_var, dead_value) evaluates to known-0, the occupancy
 * conjunction collapses, and bmc::Engine never builds the query.
 */

#ifndef ANALYSIS_FSMREACH_HH
#define ANALYSIS_FSMREACH_HH

#include <cstdint>
#include <vector>

#include "analysis/absint.hh"
#include "rtlir/design.hh"

namespace rmp::analysis
{

/** Successor-enumeration knobs. */
struct FsmReachConfig
{
    /** Skip registers wider than this (state space too large). */
    unsigned maxStateBits = 12;
    /** Bail to inexact when the closure exceeds this many states. */
    unsigned maxStates = 1024;
    /** Max unknown bits to concretize in one successor abstraction. */
    unsigned maxEnumBits = 10;
    /** Refinement rounds (closure -> pin -> re-stabilize) to run. */
    unsigned maxRefineRounds = 4;
};

/** Reachable-state verdict for one control register. */
struct FsmReachResult
{
    SigId reg = kNoSig;
    /** Successor closure completed without bailing: states is a sound
     *  over-approximation, and empirically the exact reachable set. */
    bool exact = false;
    /** Sorted reachable values (valid iff exact). */
    std::vector<uint64_t> states;
};

/**
 * Run successor enumeration for @p controlRegs (deduped; non-register
 * ids are ignored with a warning) and refine @p facts in place: each
 * exactly-closed register's abstraction becomes its reachable-state
 * set, facts.exactSet marks registers whose set survived the size cap,
 * and the fixpoint is re-stabilized and re-sealed (new fingerprint).
 */
std::vector<FsmReachResult> fsmReachability(const Design &d,
                                            const std::vector<SigId> &controlRegs,
                                            AbsFacts &facts,
                                            const FsmReachConfig &cfg = {});

/**
 * Convenience: absInterpret() sharpened by fsmReachability() over
 * @p controlRegs, as one call. This is the fact set every static-pruning
 * consumer (bmc::EngineConfig::staticFacts, the CLI's analyze command)
 * should use for a harnessed design — the caller supplies the μFSM state
 * variables (e.g. uhb::MicroFsm::vars) as plain SigIds.
 */
AbsFacts staticFacts(const Design &d, const std::vector<SigId> &controlRegs,
                     const AbsintConfig &acfg = {},
                     const FsmReachConfig &fcfg = {});

} // namespace rmp::analysis

#endif // ANALYSIS_FSMREACH_HH
