#include "analysis/absint.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"
#include "sim/tape.hh"

namespace rmp::analysis
{

namespace
{

/** splitmix64 finalizer (the repo's standard hash combiner). */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Shape digest of @p d (same recipe as exec::designFingerprint, local
 *  copy to keep the analysis layer below exec). */
uint64_t
shapeFingerprint(const Design &d)
{
    uint64_t h = mix64(0xab51f0c7 ^ d.numCells());
    for (SigId id = 0; id < d.numCells(); id++) {
        const Cell &c = d.cell(id);
        h = mix64(h ^ static_cast<uint64_t>(c.op));
        h = mix64(h ^ c.width);
        for (SigId a : c.args)
            h = mix64(h ^ a);
        h = mix64(h ^ c.cval.value());
        h = mix64(h ^ c.aux0);
    }
    return h;
}

/**
 * Concrete evaluation of one comb cell on operand VALUES (not ids) —
 * must match sim's foldCell / Simulator::step() bit for bit. Mux is
 * handled by the caller (it selects between operand abstractions).
 */
uint64_t
concreteCell(const Design &d, const Cell &c, uint64_t a, uint64_t b)
{
    uint64_t mask = BitVec::maskOf(c.width);
    switch (c.op) {
      case Op::Not: return ~a & mask;
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::RedOr: return a != 0;
      case Op::RedAnd:
        return a == BitVec::maskOf(d.cell(c.args[0]).width);
      case Op::Eq: return a == b;
      case Op::Ult: return a < b;
      case Op::Add: return (a + b) & mask;
      case Op::Sub: return (a - b) & mask;
      case Op::Mul: return (a * b) & mask;
      case Op::Shl: return b >= 64 ? 0 : (a << b) & mask;
      case Op::Shr: return b >= 64 ? 0 : (a >> b) & mask;
      case Op::Slice: return (a >> c.aux0) & mask;
      case Op::Concat: return (a << d.cell(c.args[1]).width) | b;
      case Op::Zext: return a;
      default:
        rmp_panic("concreteCell: unexpected op %s", opName(c.op));
    }
}

/** Trailing proven-zero bits of @p v under @p mask (capped at width). */
unsigned
trailingKnownZeros(const AbsVal &v, unsigned width)
{
    unsigned n = 0;
    while (n < width && ((v.zeros >> n) & 1))
        n++;
    return n;
}

/** Exhaustive enumeration over small operand sets; false if any needed
 *  operand set is missing or the cartesian product is too large. */
bool
setPath(const Design &d, const Cell &c, const AbsVal &A, const AbsVal *B,
        AbsVal *out)
{
    constexpr size_t kMaxProduct = 4 * kMaxSetSize;
    uint64_t mask = BitVec::maskOf(c.width);
    if (A.set.empty())
        return false;
    std::vector<uint64_t> vals;
    if (B == nullptr) {
        vals.reserve(A.set.size());
        for (uint64_t a : A.set)
            vals.push_back(concreteCell(d, c, a, 0));
    } else {
        if (B->set.empty() || A.set.size() * B->set.size() > kMaxProduct)
            return false;
        vals.reserve(A.set.size() * B->set.size());
        for (uint64_t a : A.set)
            for (uint64_t b : B->set)
                vals.push_back(concreteCell(d, c, a, b));
    }
    *out = AbsVal::fromSet(std::move(vals), mask);
    return true;
}

} // anonymous namespace

bool
AbsVal::admits(uint64_t v) const
{
    if ((v & zeros) != 0 || (v & ones) != ones)
        return false;
    if (v < lo || v > hi)
        return false;
    if (!set.empty() && !std::binary_search(set.begin(), set.end(), v))
        return false;
    return true;
}

unsigned
AbsVal::knownBits(uint64_t mask) const
{
    return static_cast<unsigned>(__builtin_popcountll((zeros | ones) & mask));
}

AbsVal
AbsVal::top(uint64_t mask)
{
    AbsVal v;
    v.lo = 0;
    v.hi = mask;
    return v;
}

AbsVal
AbsVal::constant(uint64_t c, uint64_t mask)
{
    AbsVal v;
    v.ones = c & mask;
    v.zeros = mask & ~c;
    v.lo = v.hi = c & mask;
    v.set = {c & mask};
    return v;
}

AbsVal
AbsVal::fromSet(std::vector<uint64_t> vals, uint64_t mask)
{
    rmp_assert(!vals.empty(), "AbsVal::fromSet: empty value set");
    for (uint64_t &v : vals)
        v &= mask;
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    AbsVal r;
    r.zeros = mask;
    r.ones = mask;
    for (uint64_t v : vals) {
        r.zeros &= ~v;
        r.ones &= v;
    }
    r.lo = vals.front();
    r.hi = vals.back();
    if (vals.size() <= kMaxSetSize)
        r.set = std::move(vals);
    return r;
}

AbsVal
joinAbs(const AbsVal &x, const AbsVal &y, uint64_t mask)
{
    AbsVal r;
    r.zeros = x.zeros & y.zeros;
    r.ones = x.ones & y.ones;
    r.lo = std::min(x.lo, y.lo);
    r.hi = std::max(x.hi, y.hi);
    (void)mask;
    if (!x.set.empty() && !y.set.empty()) {
        std::vector<uint64_t> u;
        u.reserve(x.set.size() + y.set.size());
        std::set_union(x.set.begin(), x.set.end(), y.set.begin(),
                       y.set.end(), std::back_inserter(u));
        if (u.size() <= kMaxSetSize)
            r.set = std::move(u);
    }
    return r;
}

AbsVal
transferCell(const Design &d, SigId id, const std::vector<AbsVal> &vals)
{
    const Cell &c = d.cell(id);
    uint64_t mask = BitVec::maskOf(c.width);
    switch (c.op) {
      case Op::Input: return AbsVal::top(mask);
      case Op::Const: return AbsVal::constant(c.cval.value(), mask);
      case Op::Reg:
        rmp_panic("transferCell: Reg cells are handled at the sequential "
                  "boundary");
      case Op::Mux: {
          const AbsVal &S = vals[c.args[0]];
          if (S.known(1))
              return vals[S.cval() ? c.args[1] : c.args[2]];
          return joinAbs(vals[c.args[1]], vals[c.args[2]], mask);
      }
      default: break;
    }

    const AbsVal &A = vals[c.args[0]];
    const AbsVal *B = c.numArgs() > 1 ? &vals[c.args[1]] : nullptr;

    // Exact small-set enumeration dominates everything below when it
    // applies (FSM state cones, decoded opcodes, ...).
    AbsVal r;
    if (setPath(d, c, A, B, &r))
        return r;

    // Known-bits / range transfer. Every rule here must be sound for
    // EVERY concretization of the unknown bits.
    r = AbsVal::top(mask);
    uint64_t maskA = BitVec::maskOf(d.cell(c.args[0]).width);
    switch (c.op) {
      case Op::Not:
        r.ones = A.zeros;
        r.zeros = A.ones;
        break;
      case Op::And:
        r.ones = A.ones & B->ones;
        r.zeros = A.zeros | B->zeros;
        break;
      case Op::Or:
        r.ones = A.ones | B->ones;
        r.zeros = A.zeros & B->zeros;
        break;
      case Op::Xor:
        r.ones = (A.ones & B->zeros) | (A.zeros & B->ones);
        r.zeros = (A.zeros & B->zeros) | (A.ones & B->ones);
        break;
      case Op::RedOr:
        if (A.ones != 0 || A.lo > 0)
            return AbsVal::constant(1, mask);
        if (A.zeros == maskA)
            return AbsVal::constant(0, mask);
        break;
      case Op::RedAnd:
        if (A.zeros != 0)
            return AbsVal::constant(0, mask);
        if (A.ones == maskA)
            return AbsVal::constant(1, mask);
        break;
      case Op::Eq:
        // A bit proven different, or disjoint ranges: never equal.
        if (((A.ones & B->zeros) | (A.zeros & B->ones)) != 0 ||
            A.lo > B->hi || B->lo > A.hi)
            return AbsVal::constant(0, mask);
        if (A.known(maskA) && B->known(maskA) && A.cval() == B->cval())
            return AbsVal::constant(1, mask);
        break;
      case Op::Ult:
        if (A.hi < B->lo)
            return AbsVal::constant(1, mask);
        if (A.lo >= B->hi)
            return AbsVal::constant(0, mask);
        break;
      case Op::Add: {
          // Ripple known low bits while operands and carry stay known.
          uint64_t carry = 0;
          for (unsigned i = 0; i < c.width; i++) {
              uint64_t bit = 1ULL << i;
              if (!((A.zeros | A.ones) & bit) ||
                  !((B->zeros | B->ones) & bit))
                  break;
              uint64_t s = ((A.ones >> i) & 1) + ((B->ones >> i) & 1) +
                           carry;
              if (s & 1)
                  r.ones |= bit;
              else
                  r.zeros |= bit;
              carry = s >> 1;
          }
          break;
      }
      case Op::Sub: {
          uint64_t borrow = 0;
          for (unsigned i = 0; i < c.width; i++) {
              uint64_t bit = 1ULL << i;
              if (!((A.zeros | A.ones) & bit) ||
                  !((B->zeros | B->ones) & bit))
                  break;
              uint64_t ai = (A.ones >> i) & 1, bi = (B->ones >> i) & 1;
              uint64_t diff = ai - bi - borrow;
              if (diff & 1)
                  r.ones |= bit;
              else
                  r.zeros |= bit;
              borrow = (diff >> 63) & 1; // underflow -> borrow out
          }
          break;
      }
      case Op::Mul: {
          if (A.zeros == maskA || B->zeros == BitVec::maskOf(
                                      d.cell(c.args[1]).width))
              return AbsVal::constant(0, mask);
          // The product of values with t and u trailing zeros has t+u.
          unsigned tz = trailingKnownZeros(A, c.width) +
                        trailingKnownZeros(*B, c.width);
          tz = std::min(tz, c.width);
          r.zeros = mask & (tz >= 64 ? ~0ULL : ((1ULL << tz) - 1));
          break;
      }
      case Op::Shl: {
          unsigned wb = d.cell(c.args[1]).width;
          if (B->known(BitVec::maskOf(wb))) {
              uint64_t s = B->cval();
              uint64_t poss = s >= 64 ? 0 : (A.possible(maskA) << s) & mask;
              r.zeros = mask & ~poss;
              r.ones = s >= 64 ? 0 : (A.ones << s) & mask;
          } else {
              // Left shifts only add trailing zeros.
              unsigned tz = trailingKnownZeros(A, c.width);
              r.zeros = mask & ((tz >= 64 ? ~0ULL : (1ULL << tz) - 1));
          }
          break;
      }
      case Op::Shr: {
          unsigned wb = d.cell(c.args[1]).width;
          if (B->known(BitVec::maskOf(wb))) {
              uint64_t s = B->cval();
              uint64_t poss = s >= 64 ? 0 : (A.possible(maskA) >> s) & mask;
              r.zeros = mask & ~poss;
              r.ones = s >= 64 ? 0 : (A.ones >> s) & mask;
          }
          break;
      }
      case Op::Slice: {
          uint64_t poss = (A.possible(maskA) >> c.aux0) & mask;
          r.zeros = mask & ~poss;
          r.ones = (A.ones >> c.aux0) & mask;
          break;
      }
      case Op::Concat: {
          unsigned wl = d.cell(c.args[1]).width;
          r.ones = ((A.ones << wl) | B->ones) & mask;
          r.zeros = ((A.zeros << wl) | B->zeros) & mask;
          break;
      }
      case Op::Zext:
        r.ones = A.ones;
        r.zeros = A.zeros | (mask & ~maskA);
        break;
      default:
        rmp_panic("transferCell: unexpected op %s", opName(c.op));
    }

    // Normalize: tighten the derived range from the known bits, and
    // promote fully-known results to constants (singleton sets).
    r.lo = std::max(r.lo, r.ones);
    r.hi = std::min(r.hi, mask & ~r.zeros);
    if (r.known(mask))
        return AbsVal::constant(r.cval(), mask);
    return r;
}

/** One full combinational sweep: refresh every cell's abstraction from
 *  the current register state (held in vals[reg] by the caller). */
void
absEvalComb(const Design &d, std::vector<AbsVal> &vals)
{
    for (SigId in : d.inputs())
        vals[in] = AbsVal::top(BitVec::maskOf(d.width(in)));
    for (SigId id = 0; id < d.numCells(); id++)
        if (d.cell(id).op == Op::Const)
            vals[id] = AbsVal::constant(d.cell(id).cval.value(),
                                        BitVec::maskOf(d.width(id)));
    for (SigId id : d.topoOrder())
        vals[id] = transferCell(d, id, vals);
}

/** Digest + bit tallies over the final facts. */
void
absSeal(const Design &d, AbsFacts &f)
{
    f.bitsKnown = 0;
    f.bitsTotal = 0;
    uint64_t h = mix64(0xfac75ea1 ^ f.designFp);
    for (SigId id = 0; id < d.numCells(); id++) {
        const AbsVal &v = f.val[id];
        uint64_t mask = BitVec::maskOf(d.width(id));
        f.bitsKnown += v.knownBits(mask);
        f.bitsTotal += d.width(id);
        h = mix64(h ^ v.zeros);
        h = mix64(h ^ v.ones);
        h = mix64(h ^ (v.set.size() + (f.exactSet[id] ? 0x100000 : 0)));
        for (uint64_t s : v.set)
            h = mix64(h ^ s);
    }
    f.fingerprint = h;
    if (obs::enabled()) {
        auto &reg = obs::Registry::global();
        reg.gauge("absint.bits_known")
            .set(static_cast<int64_t>(f.bitsKnown));
        reg.gauge("absint.bits_total")
            .set(static_cast<int64_t>(f.bitsTotal));
        reg.gauge("absint.fixpoint_iters").set(f.fixpointIters);
    }
}

AbsFacts
absInterpret(const Design &d, const AbsintConfig &cfg)
{
    AbsFacts f;
    f.designFp = shapeFingerprint(d);
    f.val.assign(d.numCells(), AbsVal{});
    f.exactSet.assign(d.numCells(), 0);

    // Register state starts fully known at reset (§V-B: every property
    // is evaluated on runs from the valid reset state).
    for (SigId r : d.registers())
        f.val[r] = AbsVal::constant(d.cell(r).cval.value(),
                                    BitVec::maskOf(d.width(r)));

    unsigned iters = 0;
    bool changed = true;
    while (changed) {
        rmp_assert(iters < cfg.maxIters,
                   "absInterpret: fixpoint did not converge in %u sweeps "
                   "(non-monotone transfer function?)",
                   cfg.maxIters);
        if (iters == cfg.maxIters / 2) {
            // Range/set widening backstop: collapse every register to its
            // known-bits abstraction. The remaining pure-bits iteration is
            // strictly monotone on a finite lattice, so it terminates.
            for (SigId r : d.registers()) {
                uint64_t mask = BitVec::maskOf(d.width(r));
                AbsVal &v = f.val[r];
                v.set.clear();
                v.lo = v.ones;
                v.hi = mask & ~v.zeros;
            }
        }
        absEvalComb(d, f.val);
        changed = false;
        for (SigId r : d.registers()) {
            uint64_t mask = BitVec::maskOf(d.width(r));
            const AbsVal &next = f.val[d.cell(r).args[0]];
            AbsVal joined = joinAbs(f.val[r], next, mask);
            if (joined.zeros != f.val[r].zeros ||
                joined.ones != f.val[r].ones ||
                joined.set != f.val[r].set || joined.lo != f.val[r].lo ||
                joined.hi != f.val[r].hi) {
                f.val[r] = std::move(joined);
                changed = true;
            }
        }
        iters++;
    }
    f.fixpointIters = iters;
    absSeal(d, f);
    return f;
}

std::vector<int8_t>
muxSelectFacts(const Design &d, const AbsFacts &facts)
{
    std::vector<int8_t> sel(d.numCells(), -1);
    for (SigId id = 0; id < d.numCells(); id++) {
        const Cell &c = d.cell(id);
        if (c.op != Op::Mux)
            continue;
        const AbsVal &s = facts.val[c.args[0]];
        if (s.known(1))
            sel[id] = s.cval() ? 1 : 0;
    }
    return sel;
}

void
seedFoldCache(const Design &d, const AbsFacts &facts, sim::FoldCache *fold)
{
    size_t n = d.numCells();
    fold->kbDesign = &d;
    fold->kbApplied = false;
    fold->kbConst.assign(n, 0);
    fold->kbVal.assign(n, 0);
    fold->kbPossible.assign(n, 0);
    for (SigId id = 0; id < n; id++) {
        const Cell &c = d.cell(id);
        uint64_t mask = BitVec::maskOf(c.width);
        const AbsVal &v = facts.val[id];
        fold->kbPossible[id] = v.possible(mask);
        // Only comb cells may fold: register and input slots are written
        // externally (latches / per-cycle input binds).
        if (isCombOp(c.op) && c.op != Op::Const && v.known(mask)) {
            fold->kbConst[id] = 1;
            fold->kbVal[id] = v.cval();
        }
    }
}

} // namespace rmp::analysis
