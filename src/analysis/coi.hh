/**
 * @file
 * Sequential cone-of-influence analysis over the netlist IR.
 *
 * Generalizes Design::combFanInSources — which stops at the first
 * register/input boundary — into multi-cycle reachability that crosses
 * register next-state connections, in both directions:
 *
 *  - backwardCone(): every cell whose value can influence the roots,
 *    crossing at most @p maxRegDepth register boundaries (unlimited by
 *    default, i.e. the classical cone of influence / transitive support);
 *  - forwardReach(): every cell the roots can influence (fan-out).
 *
 * The backward fixpoint cone is the soundness basis for COI-pruned BMC
 * (bmc::Engine with EngineConfig::coiPruning): a cover/assume property's
 * verdict depends only on its support signals, and the unbounded backward
 * cone of those signals is closed under every dependency edge the
 * unroller follows — a register in the cone brings its next-state logic,
 * a comb cell brings its operands — so unrolling only the cone yields a
 * formula equisatisfiable with the full-design unrolling restricted to
 * the property (DESIGN.md §3e).
 */

#ifndef ANALYSIS_COI_HH
#define ANALYSIS_COI_HH

#include <cstdint>
#include <vector>

#include "rtlir/design.hh"

namespace rmp::analysis
{

/** A cone of influence: a subset of a Design's cells. */
struct Cone
{
    /** Per-cell membership mask, indexed by SigId. */
    std::vector<uint8_t> inCone;
    /** Member cells, sorted ascending. */
    std::vector<SigId> cells;
    /** Member registers (sorted). */
    std::vector<SigId> regs;
    /** Member inputs (sorted). */
    std::vector<SigId> inputs;
    /**
     * Order-independent structural digest of the member set (over the
     * design it was computed from). Folded into exec::QueryCache keys so
     * pruned and unpruned runs never share memoized verdicts.
     */
    uint64_t fingerprint = 0;

    size_t size() const { return cells.size(); }
    bool
    contains(SigId id) const
    {
        return id < inCone.size() && inCone[id];
    }
};

/**
 * Backward sequential cone of influence of @p roots.
 *
 * Traversal follows every value dependency: comb cells to their
 * operands, and registers — unlike combFanInSources — onward to their
 * next-state signals, crossing at most @p maxRegDepth register
 * boundaries (< 0 = unlimited, the fixpoint cone). Registers reached at
 * the depth limit are members, but their next-state logic is not
 * explored; only the fixpoint cone (the default) is closed under
 * backward edges, which Unrolling requires of its restriction mask.
 *
 * A non-null @p muxSel (analysis::muxSelectFacts) narrows the traversal
 * through multiplexers whose select is statically fixed: only the taken
 * arm is followed. Callers MUST then hand the same vector to
 * bmc::Unrolling so the mask stays closed under the edges it reads.
 */
Cone backwardCone(const Design &d, const std::vector<SigId> &roots,
                  int maxRegDepth = -1,
                  const std::vector<int8_t> *muxSel = nullptr);

/**
 * Forward reachability: cells whose value @p roots can influence, again
 * crossing at most @p maxRegDepth register boundaries (< 0 = unlimited).
 * Returns the sorted cell set. Used by the lint's liveness rules and by
 * taint-cone sanity checks (a signal can only ever taint its forward
 * reach).
 */
std::vector<SigId> forwardReach(const Design &d,
                                const std::vector<SigId> &roots,
                                int maxRegDepth = -1);

} // namespace rmp::analysis

#endif // ANALYSIS_COI_HH
