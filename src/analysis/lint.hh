/**
 * @file
 * Netlist lint: structural diagnostics over rtlir::Design.
 *
 * The paper's synthesis procedure trusts the elaborated netlist before a
 * single property is evaluated — candidate performing locations and
 * HB-edge candidates are derived purely structurally (§V-B), and the
 * CellIFT-style instrumentation clones the netlist cell by cell. This
 * pass is the correctness gate for that trust: it re-derives every
 * structural invariant independently of the construction-time asserts
 * (Design::validate aborts on first violation; lint never aborts, it
 * reports), so netlists produced by builders, by instrumentation, or by
 * future frontends can be checked wholesale.
 *
 * Rule catalogue (DESIGN.md §3e):
 *  - comb-cycle       [error]   combinational SCC (Tarjan) or self-loop
 *  - undriven         [error]   register with no next-state connection
 *  - dangling         [error]   operand SigId out of range, or an
 *                               operand missing where the op requires one
 *  - width-mismatch   [error]   cell width inconsistent with its
 *                               operands under the op's width rules
 *  - duplicate-name   [error]   two cells carrying the same non-empty
 *                               name (the single-driver IR's analogue of
 *                               a multiply-driven net: name-based lookup
 *                               no longer denotes one signal)
 *  - dead-cell        [warning] comb cell outside every observability
 *                               root's sequential fan-in cone
 *  - never-read-reg   [warning] register outside every root's cone
 *                               (state that no observable signal or
 *                               live register ever reads)
 *  - taint-cone-gap   [error]   IFT soundness: an instrumented design
 *                               whose taint fan-in cone fails to cover
 *                               the original data fan-in cone (lintIft)
 *
 * Abstract-interpretation rules (need a valid netlist; skipped when any
 * structural error fires, and gated by LintConfig::checkAbsint):
 *  - unreachable-fsm-state [warning] a control register (μFSM state
 *                               variable) with state valuations the
 *                               successor closure proves unreachable
 *  - constant-register     [warning] a register holding one value on
 *                               every reachable cycle (dead state)
 *  - dead-mux-arm          [warning] a Mux whose select is statically
 *                               fixed, so one arm never drives anything
 *  - truncated-assignment  [warning] a Slice dropping bits proven
 *                               constant-one (real data is lost)
 *  - untainted-taint-sink  [warning] lintIft: a checked sink whose
 *                               shadow is statically zero — no taint
 *                               can ever reach it, so its decision_taint
 *                               covers are trivially unreachable
 */

#ifndef ANALYSIS_LINT_HH
#define ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "ift/instrument.hh"
#include "rtlir/design.hh"

namespace rmp::analysis
{

/** Diagnostic severity. Errors gate CI; warnings inform. */
enum class Severity : uint8_t { Error, Warning };

/** Lint rule identifiers. */
enum class Rule : uint8_t
{
    CombCycle,
    UndrivenReg,
    DanglingOperand,
    WidthMismatch,
    DuplicateName,
    DeadCell,
    NeverReadReg,
    TaintConeGap,
    UnreachableFsmState,
    ConstantRegister,
    DeadMuxArm,
    TruncatedAssignment,
    UntaintedTaintSink,
};

const char *severityName(Severity s);
const char *ruleName(Rule r);

/** One finding. */
struct Diagnostic
{
    Rule rule = Rule::CombCycle;
    Severity severity = Severity::Error;
    /** Primary cell the finding anchors to (kNoSig for design-level). */
    SigId sig = kNoSig;
    std::string message;
};

/** Lint configuration. */
struct LintConfig
{
    /**
     * Observability roots for the liveness rules (dead-cell,
     * never-read-reg): cells considered externally visible. Empty =
     * every named non-input cell (names are what harness properties,
     * reports, and VCD consumers observe, for wires and registers
     * alike); if a design names nothing, every register next-state
     * signal is used instead.
     */
    std::vector<SigId> roots;
    /** Run the liveness rules (they need a backward cone fixpoint). */
    bool checkLiveness = true;
    /** Run the abstract-interpretation rules (absint.hh). They evaluate
     *  the netlist, so they are skipped when any structural error fired. */
    bool checkAbsint = true;
    /** Control registers (μFSM state variables) for the
     *  unreachable-fsm-state rule; empty disables that rule only. */
    std::vector<SigId> controlRegs;
};

/** The findings of one lint run. */
struct LintReport
{
    std::vector<Diagnostic> diags;

    size_t errors() const;
    size_t warnings() const;
    bool clean() const { return errors() == 0; }

    /** Human-readable rendering, one line per finding plus a summary. */
    std::string render(const Design &d) const;
    /** Machine-readable rendering (a JSON object). */
    std::string json(const Design &d) const;
};

/** Lint @p d. Never aborts, regardless of how broken the netlist is. */
LintReport lint(const Design &d, const LintConfig &cfg = {});

/**
 * IFT soundness lint: check that @p inst's taint plane over-approximates
 * data flow in @p orig. For every checked root (named cells and register
 * next-states) and every register src in the root's combinational data
 * fan-in, the shadow of src — including its taint-introduction input, if
 * any — must lie in the combinational fan-in of the root's shadow.
 * CellIFT's cell-level rules guarantee this by construction; a gap means
 * the instrumentation lost a flow and SynthLC's "no taint reaches the
 * decision" verdicts would be unsound. Primary-input sources are exempt:
 * inputs carry no taint by definition (their shadows are constant zero).
 */
LintReport lintIft(const Design &orig, const ift::Instrumented &inst);

} // namespace rmp::analysis

#endif // ANALYSIS_LINT_HH
