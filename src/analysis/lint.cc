#include "analysis/lint.hh"

#include <algorithm>
#include <unordered_map>

#include "analysis/absint.hh"
#include "analysis/coi.hh"
#include "analysis/combgraph.hh"
#include "analysis/fsmreach.hh"
#include "common/logging.hh"
#include "report/json.hh"

namespace rmp::analysis
{

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

const char *
ruleName(Rule r)
{
    switch (r) {
      case Rule::CombCycle: return "comb-cycle";
      case Rule::UndrivenReg: return "undriven";
      case Rule::DanglingOperand: return "dangling";
      case Rule::WidthMismatch: return "width-mismatch";
      case Rule::DuplicateName: return "duplicate-name";
      case Rule::DeadCell: return "dead-cell";
      case Rule::NeverReadReg: return "never-read-reg";
      case Rule::TaintConeGap: return "taint-cone-gap";
      case Rule::UnreachableFsmState: return "unreachable-fsm-state";
      case Rule::ConstantRegister: return "constant-register";
      case Rule::DeadMuxArm: return "dead-mux-arm";
      case Rule::TruncatedAssignment: return "truncated-assignment";
      case Rule::UntaintedTaintSink: return "untainted-taint-sink";
    }
    return "?";
}

size_t
LintReport::errors() const
{
    size_t n = 0;
    for (const auto &di : diags)
        if (di.severity == Severity::Error)
            n++;
    return n;
}

size_t
LintReport::warnings() const
{
    return diags.size() - errors();
}

namespace
{

/** "and 'alu_out' (cell 42)" — best-effort cell label for messages. */
std::string
cellLabel(const Design &d, SigId id)
{
    if (id >= d.numCells())
        return strfmt("cell %u (out of range)", id);
    const Cell &c = d.cell(id);
    std::string label = opName(c.op);
    if (!c.name.empty())
        label += " '" + c.name + "'";
    return strfmt("%s (cell %u)", label.c_str(), id);
}

/** Expected operand count of an op (Reg handled separately). */
unsigned
opArity(Op op)
{
    switch (op) {
      case Op::Input:
      case Op::Const:
        return 0;
      case Op::Not:
      case Op::RedOr:
      case Op::RedAnd:
      case Op::Slice:
      case Op::Zext:
      case Op::Reg:
        return 1;
      case Op::Mux:
        return 3;
      default:
        return 2;
    }
}

/** One lint run's working state. */
struct Linter
{
    const Design &d;
    const LintConfig &cfg;
    LintReport rep;
    /** Cells whose operands all resolved; traversals stay inside these. */
    std::vector<uint8_t> wellFormed;

    void
    emit(Rule rule, Severity sev, SigId sig, std::string msg)
    {
        rep.diags.push_back({rule, sev, sig, std::move(msg)});
    }

    void checkCells();
    void checkNames();
    void checkCycles();
    void checkLiveness();
    void checkWidth(SigId id);
    void checkAbsint();
};

void
Linter::checkCells()
{
    wellFormed.assign(d.numCells(), 1);
    for (SigId id = 0; id < d.numCells(); id++) {
        const Cell &c = d.cell(id);
        unsigned arity = opArity(c.op);
        bool ok = true;
        for (unsigned i = 0; i < 3; i++) {
            if (i < arity && c.args[i] == kNoSig) {
                if (c.op == Op::Reg) {
                    emit(Rule::UndrivenReg, Severity::Error, id,
                         cellLabel(d, id) +
                             " has no next-state connection");
                } else {
                    emit(Rule::DanglingOperand, Severity::Error, id,
                         cellLabel(d, id) +
                             strfmt(" is missing operand %u", i));
                }
                ok = false;
            } else if (c.args[i] != kNoSig && c.args[i] >= d.numCells()) {
                emit(Rule::DanglingOperand, Severity::Error, id,
                     cellLabel(d, id) +
                         strfmt(" operand %u references cell %u, beyond "
                                "the %zu-cell design",
                                i, c.args[i], d.numCells()));
                ok = false;
            } else if (i >= arity && c.args[i] != kNoSig) {
                emit(Rule::DanglingOperand, Severity::Error, id,
                     cellLabel(d, id) +
                         strfmt(" has an unexpected operand %u", i));
                ok = false;
            }
        }
        wellFormed[id] = ok;
        if (ok)
            checkWidth(id);
    }
}

void
Linter::checkWidth(SigId id)
{
    const Cell &c = d.cell(id);
    auto bad = [&](const std::string &why) {
        emit(Rule::WidthMismatch, Severity::Error, id,
             cellLabel(d, id) + ": " + why);
    };
    if (c.width < 1 || c.width > 64) {
        bad(strfmt("width %u outside 1..64", c.width));
        return;
    }
    auto w = [&](unsigned i) { return d.cell(c.args[i]).width; };
    switch (c.op) {
      case Op::Input:
        break;
      case Op::Const:
        if (c.cval.width() != c.width)
            bad(strfmt("constant value is %u bits, cell is %u",
                       c.cval.width(), c.width));
        break;
      case Op::Not:
        if (c.width != w(0))
            bad(strfmt("result %u bits, operand %u", c.width, w(0)));
        break;
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
        if (w(0) != w(1) || c.width != w(0))
            bad(strfmt("operands %u and %u bits, result %u", w(0), w(1),
                       c.width));
        break;
      case Op::Shl:
      case Op::Shr:
        if (c.width != w(0))
            bad(strfmt("result %u bits, shifted value %u", c.width, w(0)));
        break;
      case Op::RedOr:
      case Op::RedAnd:
        if (c.width != 1)
            bad(strfmt("reduction result is %u bits, not 1", c.width));
        break;
      case Op::Eq:
      case Op::Ult:
        if (w(0) != w(1))
            bad(strfmt("compares %u-bit against %u-bit operand", w(0),
                       w(1)));
        else if (c.width != 1)
            bad(strfmt("comparison result is %u bits, not 1", c.width));
        break;
      case Op::Mux:
        if (w(0) != 1)
            bad(strfmt("select is %u bits, not 1", w(0)));
        else if (w(1) != w(2) || c.width != w(1))
            bad(strfmt("arms %u and %u bits, result %u", w(1), w(2),
                       c.width));
        break;
      case Op::Slice:
        if (c.aux0 + c.width > w(0))
            bad(strfmt("slice [%u +: %u] out of the %u-bit operand",
                       c.aux0, c.width, w(0)));
        break;
      case Op::Concat:
        if (c.width != w(0) + w(1))
            bad(strfmt("concat of %u and %u bits, result %u", w(0), w(1),
                       c.width));
        break;
      case Op::Zext:
        if (c.width < w(0))
            bad(strfmt("zext narrows %u bits to %u", w(0), c.width));
        break;
      case Op::Reg:
        if (c.cval.width() != c.width)
            bad(strfmt("reset value is %u bits, register is %u",
                       c.cval.width(), c.width));
        else if (d.cell(c.args[0]).width != c.width)
            bad(strfmt("next-state signal is %u bits, register is %u",
                       d.cell(c.args[0]).width, c.width));
        break;
    }
}

void
Linter::checkNames()
{
    std::unordered_map<std::string, SigId> first;
    for (SigId id = 0; id < d.numCells(); id++) {
        const Cell &c = d.cell(id);
        if (c.name.empty())
            continue;
        auto [it, fresh] = first.try_emplace(c.name, id);
        if (!fresh)
            emit(Rule::DuplicateName, Severity::Error, id,
                 cellLabel(d, id) + strfmt(" reuses the name of cell %u; "
                                           "name-based lookup is ambiguous",
                                           it->second));
    }
}

void
Linter::checkCycles()
{
    // Iterative Tarjan SCC over the combinational dependency graph
    // (comb cell -> comb operand). Any SCC with more than one member, or
    // a comb self-loop, is a combinational cycle. Registers break paths
    // by construction (their operand edge is sequential).
    size_t n = d.numCells();
    constexpr uint32_t kUndef = ~0u;
    std::vector<uint32_t> index(n, kUndef), lowlink(n, 0);
    std::vector<uint8_t> onStack(n, 0);
    std::vector<SigId> sccStack;
    uint32_t counter = 0;

    struct Frame
    {
        SigId id;
        unsigned arg = 0;
    };
    auto combEdge = [&](SigId from, unsigned i, SigId *to) {
        const Cell &c = d.cell(from);
        if (i >= 3 || c.args[i] == kNoSig || !wellFormed[from])
            return false;
        SigId a = c.args[i];
        if (!isCombOp(d.cell(a).op))
            return false;
        *to = a;
        return true;
    };

    for (SigId root = 0; root < n; root++) {
        if (index[root] != kUndef || !isCombOp(d.cell(root).op))
            continue;
        std::vector<Frame> stack{{root}};
        index[root] = lowlink[root] = counter++;
        sccStack.push_back(root);
        onStack[root] = 1;
        while (!stack.empty()) {
            Frame &f = stack.back();
            SigId to;
            if (f.arg < 3 && combEdge(f.id, f.arg, &to)) {
                f.arg++;
                if (index[to] == kUndef) {
                    index[to] = lowlink[to] = counter++;
                    sccStack.push_back(to);
                    onStack[to] = 1;
                    stack.push_back({to});
                } else if (onStack[to]) {
                    lowlink[f.id] = std::min(lowlink[f.id], index[to]);
                }
                continue;
            }
            if (f.arg < 3) {
                f.arg++;
                continue;
            }
            // f.id is finished: pop its SCC if it is a root.
            SigId id = f.id;
            stack.pop_back();
            if (!stack.empty())
                lowlink[stack.back().id] =
                    std::min(lowlink[stack.back().id], lowlink[id]);
            if (lowlink[id] != index[id])
                continue;
            std::vector<SigId> scc;
            for (;;) {
                SigId m = sccStack.back();
                sccStack.pop_back();
                onStack[m] = 0;
                scc.push_back(m);
                if (m == id)
                    break;
            }
            bool self_loop = false;
            if (scc.size() == 1) {
                const Cell &c = d.cell(id);
                for (unsigned i = 0; i < 3; i++)
                    if (c.args[i] == id)
                        self_loop = true;
            }
            if (scc.size() < 2 && !self_loop)
                continue;
            std::sort(scc.begin(), scc.end());
            std::string members;
            for (size_t i = 0; i < scc.size() && i < 8; i++)
                members += (i ? ", " : "") + cellLabel(d, scc[i]);
            if (scc.size() > 8)
                members += strfmt(", ... (%zu cells)", scc.size());
            emit(Rule::CombCycle, Severity::Error, scc.front(),
                 "combinational cycle through " + members);
        }
    }
}

void
Linter::checkLiveness()
{
    std::vector<SigId> roots = cfg.roots;
    if (roots.empty()) {
        // Named cells are the observable surface: harness properties,
        // reports, and VCD consumers address signals (wires and
        // registers alike) by name.
        for (SigId id = 0; id < d.numCells(); id++) {
            const Cell &c = d.cell(id);
            if (!c.name.empty() && c.op != Op::Input)
                roots.push_back(id);
        }
        // A design with no named wires: fall back to "all state evolves
        // observably" so the rule degrades to pure dead-code detection.
        if (roots.empty())
            for (SigId r : d.registers())
                if (d.cell(r).args[0] != kNoSig)
                    roots.push_back(d.cell(r).args[0]);
    }
    if (roots.empty())
        return;
    Cone live = backwardCone(d, roots);
    for (SigId id = 0; id < d.numCells(); id++) {
        if (live.contains(id))
            continue;
        const Cell &c = d.cell(id);
        if (c.op == Op::Reg) {
            emit(Rule::NeverReadReg, Severity::Warning, id,
                 cellLabel(d, id) +
                     " is never read by any observable signal");
        } else if (isCombOp(c.op) && c.op != Op::Const) {
            emit(Rule::DeadCell, Severity::Warning, id,
                 cellLabel(d, id) +
                     " drives no observable signal or register");
        }
    }
}

void
Linter::checkAbsint()
{
    AbsFacts facts = absInterpret(d);
    std::vector<FsmReachResult> fsm;
    if (!cfg.controlRegs.empty())
        fsm = fsmReachability(d, cfg.controlRegs, facts);

    // unreachable-fsm-state: valuations the successor closure never
    // produces from reset. Encodings are often deliberately sparse
    // (one-hot), hence a warning, not an error.
    for (const FsmReachResult &r : fsm) {
        if (!r.exact)
            continue;
        unsigned w = d.cell(r.reg).width;
        uint64_t total = 1ULL << w; // w <= FsmReachConfig::maxStateBits
        if (r.states.size() >= total)
            continue;
        std::string dead;
        unsigned listed = 0;
        for (uint64_t v = 0; v < total && listed < 4; v++) {
            if (std::binary_search(r.states.begin(), r.states.end(), v))
                continue;
            dead += (listed ? ", " : "") + std::to_string(v);
            listed++;
        }
        emit(Rule::UnreachableFsmState, Severity::Warning, r.reg,
             cellLabel(d, r.reg) +
                 strfmt(": %llu of %llu state valuations are unreachable "
                        "(e.g. %s)",
                        static_cast<unsigned long long>(total -
                                                        r.states.size()),
                        static_cast<unsigned long long>(total),
                        dead.c_str()));
    }

    // constant-register: state that provably never changes.
    for (SigId r : d.registers()) {
        const AbsVal &v = facts.val[r];
        uint64_t mask = BitVec::maskOf(d.cell(r).width);
        if (v.known(mask))
            emit(Rule::ConstantRegister, Severity::Warning, r,
                 cellLabel(d, r) +
                     strfmt(" holds constant %llu on every reachable "
                            "cycle",
                            static_cast<unsigned long long>(v.cval())));
    }

    // dead-mux-arm: a select pinned by the fixpoint.
    std::vector<int8_t> sel = muxSelectFacts(d, facts);
    for (SigId id = 0; id < d.numCells(); id++) {
        if (sel[id] < 0)
            continue;
        emit(Rule::DeadMuxArm, Severity::Warning, id,
             cellLabel(d, id) +
                 strfmt(": select is statically %d; the %s arm never "
                        "drives the output",
                        sel[id], sel[id] ? "select-0" : "select-1"));
    }

    // truncated-assignment: a Slice dropping bits proven constant-one —
    // unlike dropping maybe-zero bits (routine field extraction), losing
    // an always-set bit means real data cannot survive the assignment.
    for (SigId id = 0; id < d.numCells(); id++) {
        const Cell &c = d.cell(id);
        if (c.op != Op::Slice || c.aux0 >= 64)
            continue;
        uint64_t opmask = BitVec::maskOf(d.cell(c.args[0]).width);
        uint64_t kept = BitVec::maskOf(c.width) << c.aux0;
        uint64_t droppedOnes = facts.val[c.args[0]].ones & opmask & ~kept;
        if (droppedOnes)
            emit(Rule::TruncatedAssignment, Severity::Warning, id,
                 cellLabel(d, id) +
                     strfmt(" drops operand bits 0x%llx that are "
                            "constant-one",
                            static_cast<unsigned long long>(droppedOnes)));
    }
}

} // anonymous namespace

LintReport
lint(const Design &d, const LintConfig &cfg)
{
    Linter l{d, cfg, {}, {}};
    l.checkCells();
    l.checkNames();
    l.checkCycles();
    // The liveness cone walks operand edges, so it needs a well-formed
    // graph; structural errors above already explain what is wrong.
    bool traversable = true;
    for (uint8_t wf : l.wellFormed)
        traversable &= wf;
    if (cfg.checkLiveness && traversable)
        l.checkLiveness();
    // The absint rules *evaluate* the netlist (topo order, transfer
    // functions), which is only meaningful once no structural error
    // fired — a cyclic or ill-typed graph has no defined semantics.
    if (cfg.checkAbsint && traversable && l.rep.errors() == 0)
        l.checkAbsint();
    return std::move(l.rep);
}

LintReport
lintIft(const Design &orig, const ift::Instrumented &inst)
{
    LintReport rep;
    const Design &di = *inst.design;
    // One comb-graph cache per design: every fan-in query below (roots,
    // shadows, and the per-source requirements) is memoized instead of
    // re-running a fresh backward DFS per call.
    CombGraph gOrig(orig), gInst(di);
    // Facts over the instrumented design, for the untainted-sink rule:
    // the taint plane is ordinary logic (shadow registers reset to 0,
    // taint-introduction inputs are free), so the fixpoint proves where
    // taint can never flow.
    AbsFacts facts = absInterpret(di);

    // Checked roots: every named signal plus every register next-state —
    // together they determine all observable values and state evolution.
    std::vector<SigId> roots;
    std::vector<uint8_t> isRoot(orig.numCells(), 0);
    for (SigId id = 0; id < orig.numCells(); id++) {
        const Cell &c = orig.cell(id);
        if (!c.name.empty() && c.op != Op::Input && !isRoot[id]) {
            isRoot[id] = 1;
            roots.push_back(id);
        }
        SigId nx = c.op == Op::Reg ? c.args[0] : kNoSig;
        if (nx != kNoSig && !isRoot[nx]) {
            isRoot[nx] = 1;
            roots.push_back(nx);
        }
    }

    for (SigId o : roots) {
        if (o >= inst.shadow.size() || inst.shadow[o] == kNoSig) {
            rep.diags.push_back(
                {Rule::TaintConeGap, Severity::Error, o,
                 cellLabel(orig, o) + " has no shadow signal"});
            continue;
        }
        const std::vector<SigId> &have = gInst.fanInSources(inst.shadow[o]);
        for (SigId src : gOrig.fanInSources(o)) {
            if (orig.cell(src).op != Op::Reg)
                continue; // inputs are untainted by definition
            if (src >= inst.shadow.size() || inst.shadow[src] == kNoSig) {
                rep.diags.push_back(
                    {Rule::TaintConeGap, Severity::Error, src,
                     cellLabel(orig, src) + " has no shadow signal"});
                continue;
            }
            const std::vector<SigId> &need =
                gInst.fanInSources(inst.shadow[src]);
            if (!std::includes(have.begin(), have.end(), need.begin(),
                               need.end())) {
                rep.diags.push_back(
                    {Rule::TaintConeGap, Severity::Error, o,
                     "taint cone of " + cellLabel(orig, o) +
                         " misses the shadow of data source " +
                         cellLabel(orig, src)});
            }
        }
        // untainted-taint-sink: the sink's shadow is provably zero on
        // every reachable cycle — no mark placement can ever taint it.
        // Intentional taint boundaries are exempt: constants, and the
        // blocked/source registers instrument() ties to a zero next
        // state (architectural state where taint never persists).
        const Cell &sc = di.cell(inst.shadow[o]);
        bool boundary =
            orig.cell(o).op == Op::Const ||
            (sc.op == Op::Reg && sc.args[0] != kNoSig &&
             di.cell(sc.args[0]).op == Op::Const &&
             di.cell(sc.args[0]).cval.value() == 0);
        const AbsVal &sv = facts.val[inst.shadow[o]];
        uint64_t smask = BitVec::maskOf(di.cell(inst.shadow[o]).width);
        if (!boundary && sv.known(smask) && sv.cval() == 0)
            rep.diags.push_back(
                {Rule::UntaintedTaintSink, Severity::Warning, o,
                 "shadow of " + cellLabel(orig, o) +
                     " is statically zero: no taint can reach this sink"});
    }
    return rep;
}

std::string
LintReport::render(const Design &d) const
{
    std::string out;
    for (const auto &di : diags)
        out += strfmt("%s[%s] %s\n", severityName(di.severity),
                      ruleName(di.rule), di.message.c_str());
    out += strfmt("%s: %zu cells, %zu errors, %zu warnings%s\n",
                  d.name().c_str(), d.numCells(), errors(), warnings(),
                  clean() ? " — clean" : "");
    return out;
}

std::string
LintReport::json(const Design &d) const
{
    // One schema for every diagnostics surface (`rmp lint --json`,
    // `rmp analyze --json`): report/json.hh owns the rendering.
    return report::diagnosticsJson(d, *this);
}

} // namespace rmp::analysis
