/**
 * @file
 * DRAT clausal proofs: emission hooks, serialization, and a standalone
 * forward checker.
 *
 * The CDCL solver is the single most trusted component in the stack —
 * every Unreachable verdict (and through it every synthesized μPATH and
 * leakage signature) rests on an UNSAT answer nobody double-checks. This
 * module closes that gap in the style of certified hardware flows
 * (Btor2MLIR / certified BMC, PAPERS.md): the solver emits a clausal
 * proof trace through sat::ProofSink, and the DratChecker replays it with
 * nothing but unit propagation — a far smaller trusted core than the
 * solver's watched-literal CDCL machinery.
 *
 * The emitted trace is the DRAT subset this solver actually needs:
 *
 *  - every learned clause and every root-level unit the solver derives is
 *    an *addition*, checked as RUP (reverse unit propagation: assuming
 *    the clause's negation must propagate to a conflict);
 *  - every clause dropped by learned-DB reduction is a *deletion*;
 *  - a root-level conflict adds the *empty clause* (a full refutation).
 *
 * Incremental queries solve under assumptions, so "unsat" frames usually
 * end without an explicit empty clause; DratChecker::checkUnsat() closes
 * those by verifying that the accumulated clause set plus the query's
 * assumption units propagates to a conflict. Soundness of that closure:
 * the solver's trail is built exclusively from assumption pseudo-
 * decisions and reason-clause propagations, and every reason clause is
 * either an input clause or a logged addition, so the final conflict is
 * rediscoverable by unit propagation alone.
 *
 * bmc::Engine attaches one checker per solver instance when verdict
 * auditing is on (EngineConfig::auditProof); the standalone
 * checkDrat() entry point verifies a self-contained (CNF, proof) pair,
 * e.g. one parsed back from dimacs + drat text files.
 */

#ifndef SAT_DRAT_HH
#define SAT_DRAT_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "sat/dimacs.hh"
#include "sat/solver.hh"

namespace rmp::sat
{

/** One DRAT proof line. */
struct DratStep
{
    enum class Kind : uint8_t { Add, Delete };

    Kind kind = Kind::Add;
    std::vector<Lit> lits;

    bool operator==(const DratStep &o) const
    {
        return kind == o.kind && lits == o.lits;
    }
};

/** A proof trace: additions and deletions in emission order. */
using DratLog = std::vector<DratStep>;

/**
 * Render a proof in textual DRAT (one clause per line, deletions
 * prefixed "d", literals in DIMACS numbering, 0-terminated).
 */
std::string toDratText(const DratLog &log);

/** Parse textual DRAT. Throws via rmp_fatal on malformed input. */
DratLog parseDratText(std::istream &in);

/**
 * ProofSink that records the solver's trace: inputs into a Cnf (paired
 * with the proof the way a DIMACS file pairs with a .drat file) and
 * derivations/deletions into a DratLog.
 */
class DratLogRecorder : public ProofSink
{
  public:
    void onInput(const std::vector<Lit> &lits) override;
    void onDerive(const std::vector<Lit> &lits) override;
    void onDelete(const std::vector<Lit> &lits) override;

    const Cnf &inputs() const { return inputs_; }
    const DratLog &log() const { return log_; }

  private:
    Cnf inputs_;
    DratLog log_;
};

/**
 * Forward DRAT checker.
 *
 * Feed the formula through onInput() (or addInput()) and the proof
 * through onDerive()/onDelete() (or step()); each addition is RUP-checked
 * the moment it arrives, against exactly the clauses live at that point.
 * The checker maintains its own two-watched-literal propagation state —
 * it shares no code with the solver, which is the point.
 *
 * Used in two modes:
 *  - attached live to an incremental solver (ProofSink), where
 *    checkUnsat() audits each Unsat-under-assumptions verdict;
 *  - offline over a recorded (Cnf, DratLog) pair via checkDrat().
 */
class DratChecker : public ProofSink
{
  public:
    DratChecker();

    /** @name ProofSink interface (live attachment to a solver) */
    /// @{
    void onInput(const std::vector<Lit> &lits) override;
    void onDerive(const std::vector<Lit> &lits) override;
    void onDelete(const std::vector<Lit> &lits) override;
    /// @}

    /** Add one input clause (no RUP obligation). */
    void addInput(const std::vector<Lit> &lits) { onInput(lits); }

    /** Process one proof step; returns false iff an Add fails RUP. */
    bool step(const DratStep &s);

    /** True while every checked addition so far was RUP. */
    bool ok() const { return failed_ == 0; }

    /** Additions RUP-checked so far. */
    uint64_t checked() const { return checked_; }

    /** Additions that failed their RUP check. */
    uint64_t failed() const { return failed_; }

    /** True once a root-level contradiction (empty clause) is derived. */
    bool refuted() const { return contradiction_; }

    /**
     * Audit an "unsat under @p assumptions" verdict: true iff the live
     * clause set extended with the assumption units propagates to a
     * conflict (trivially true once refuted()). Leaves the checker state
     * unchanged. A verdict audit additionally requires ok(): a proof
     * whose additions failed RUP proves nothing.
     */
    bool checkUnsat(const std::vector<Lit> &assumptions);

    /** Human-readable description of the first failure ("" if none). */
    const std::string &firstFailure() const { return firstFailure_; }

  private:
    struct CClause
    {
        std::vector<Lit> lits;
        bool active = true;
    };

    struct Watcher
    {
        uint32_t cref;
    };

    void ensureVar(Var v);
    LBool litValue(Lit l) const;
    /** Enqueue @p l; returns false if it is already false (conflict). */
    bool enqueue(Lit l);
    /** Propagate from @p from; returns false on conflict. */
    bool propagate(size_t from);
    /** Undo all assignments above trail position @p mark. */
    void undoTo(size_t mark);
    /** RUP check of @p lits against the live clause set. */
    bool rupHolds(const std::vector<Lit> &lits);
    /** Attach @p lits as a live clause (propagating root units). */
    void attach(std::vector<Lit> lits);
    void recordFailure(const std::vector<Lit> &lits, const char *why);
    static uint64_t clauseHash(const std::vector<Lit> &sorted);

    std::vector<CClause> clauses_;
    /** Sorted-literal hash -> candidate clause indices (for deletions). */
    std::unordered_map<uint64_t, std::vector<uint32_t>> byHash_;
    std::vector<std::vector<Watcher>> watches_; ///< indexed by Lit.x
    std::vector<LBool> assigns_;
    /** Assignment trail; everything in it is persistent root-level state
     *  except during a rupHolds()/checkUnsat() probe, which undoes its
     *  own suffix before returning. */
    std::vector<Lit> trail_;
    bool contradiction_ = false;
    uint64_t checked_ = 0;
    uint64_t failed_ = 0;
    std::string firstFailure_;
};

/**
 * Check a self-contained refutation: feed @p cnf and @p proof through a
 * fresh checker and require every addition to be RUP and the empty
 * clause to be derived. @p why receives the first failure when non-null.
 */
bool checkDrat(const Cnf &cnf, const DratLog &proof,
               std::string *why = nullptr);

} // namespace rmp::sat

#endif // SAT_DRAT_HH
