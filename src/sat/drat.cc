#include "sat/drat.hh"

#include <algorithm>
#include <istream>
#include <sstream>

#include "common/logging.hh"

namespace rmp::sat
{

std::string
toDratText(const DratLog &log)
{
    std::ostringstream os;
    for (const DratStep &s : log) {
        if (s.kind == DratStep::Kind::Delete)
            os << "d ";
        for (Lit l : s.lits)
            os << (l.sign() ? -(l.var() + 1) : l.var() + 1) << " ";
        os << "0\n";
    }
    return os.str();
}

DratLog
parseDratText(std::istream &in)
{
    DratLog log;
    std::string tok;
    DratStep cur;
    bool open = false;
    while (in >> tok) {
        if (tok == "c") {
            // Comment: skip to end of line.
            std::string rest;
            std::getline(in, rest);
            continue;
        }
        if (tok == "d") {
            if (open)
                rmp_fatal("DRAT: 'd' inside an unterminated clause");
            cur.kind = DratStep::Kind::Delete;
            open = true;
            continue;
        }
        long v = 0;
        try {
            v = std::stol(tok);
        } catch (...) {
            rmp_fatal("DRAT: bad token '%s'", tok.c_str());
        }
        if (v == 0) {
            log.push_back(cur);
            cur = DratStep{};
            open = false;
            continue;
        }
        long var = v < 0 ? -v : v;
        cur.lits.push_back(Lit(static_cast<Var>(var - 1), v < 0));
        open = true;
    }
    if (open)
        rmp_fatal("DRAT: trailing unterminated clause%s", "");
    return log;
}

void
DratLogRecorder::onInput(const std::vector<Lit> &lits)
{
    for (Lit l : lits)
        inputs_.numVars = std::max(inputs_.numVars, l.var() + 1);
    inputs_.clauses.push_back(lits);
}

void
DratLogRecorder::onDerive(const std::vector<Lit> &lits)
{
    log_.push_back({DratStep::Kind::Add, lits});
}

void
DratLogRecorder::onDelete(const std::vector<Lit> &lits)
{
    log_.push_back({DratStep::Kind::Delete, lits});
}

DratChecker::DratChecker() = default;

void
DratChecker::ensureVar(Var v)
{
    while (static_cast<Var>(assigns_.size()) <= v) {
        assigns_.push_back(LBool::Undef);
        watches_.emplace_back();
        watches_.emplace_back();
    }
}

LBool
DratChecker::litValue(Lit l) const
{
    LBool v = assigns_[l.var()];
    if (v == LBool::Undef)
        return LBool::Undef;
    return ((v == LBool::True) != l.sign()) ? LBool::True : LBool::False;
}

bool
DratChecker::enqueue(Lit l)
{
    LBool v = litValue(l);
    if (v == LBool::False)
        return false;
    if (v == LBool::True)
        return true;
    assigns_[l.var()] = l.sign() ? LBool::False : LBool::True;
    trail_.push_back(l);
    return true;
}

bool
DratChecker::propagate(size_t from)
{
    // Two-watched-literal propagation, independent of the solver's.
    // Watch relocations done under temporary (RUP / checkUnsat)
    // assignments stay valid after undoTo(): un-assigning literals only
    // weakens the "watched literal is non-false" invariant's premises.
    size_t qhead = from;
    while (qhead < trail_.size()) {
        Lit p = trail_[qhead++];
        std::vector<Watcher> &ws = watches_[p.x];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            uint32_t cref = ws[i].cref;
            CClause &c = clauses_[cref];
            if (!c.active) {
                i++; // dropped by a deletion; garbage-collect the watcher
                continue;
            }
            Lit false_lit = ~p;
            if (c.lits[0] == false_lit)
                std::swap(c.lits[0], c.lits[1]);
            if (c.lits[1] != false_lit) {
                // Stale watcher from an earlier relocation; drop it.
                i++;
                continue;
            }
            i++;
            Lit first = c.lits[0];
            if (litValue(first) == LBool::True) {
                ws[j++] = {cref};
                continue;
            }
            bool found = false;
            for (size_t k = 2; k < c.lits.size(); k++) {
                if (litValue(c.lits[k]) != LBool::False) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches_[(~c.lits[1]).x].push_back({cref});
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
            ws[j++] = {cref};
            if (litValue(first) == LBool::False) {
                while (i < ws.size())
                    ws[j++] = ws[i++];
                ws.resize(j);
                return false; // conflict
            }
            if (!enqueue(first)) {
                while (i < ws.size())
                    ws[j++] = ws[i++];
                ws.resize(j);
                return false;
            }
        }
        ws.resize(j);
    }
    return true;
}

void
DratChecker::undoTo(size_t mark)
{
    while (trail_.size() > mark) {
        assigns_[trail_.back().var()] = LBool::Undef;
        trail_.pop_back();
    }
}

bool
DratChecker::rupHolds(const std::vector<Lit> &lits)
{
    // F ∪ ¬C must unit-propagate to a conflict.
    if (contradiction_)
        return true; // F already refuted: anything follows
    size_t mark = trail_.size();
    bool conflict = false;
    for (Lit l : lits) {
        ensureVar(l.var());
        if (!enqueue(~l)) {
            conflict = true; // l is already true at root
            break;
        }
    }
    if (!conflict)
        conflict = !propagate(mark);
    undoTo(mark);
    return conflict;
}

uint64_t
DratChecker::clauseHash(const std::vector<Lit> &sorted)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (Lit l : sorted) {
        h ^= static_cast<uint64_t>(static_cast<uint32_t>(l.x)) + 1;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
DratChecker::attach(std::vector<Lit> lits)
{
    if (contradiction_)
        return; // refuted: nothing further can matter
    for (Lit l : lits)
        ensureVar(l.var());
    if (lits.empty()) {
        contradiction_ = true;
        return;
    }

    uint32_t cref = static_cast<uint32_t>(clauses_.size());
    {
        std::vector<Lit> sorted = lits;
        std::sort(sorted.begin(), sorted.end());
        byHash_[clauseHash(sorted)].push_back(cref);
    }

    if (lits.size() == 1) {
        // Root unit: assign permanently and propagate to fixpoint.
        clauses_.push_back({std::move(lits), true});
        size_t mark = trail_.size();
        Lit u = clauses_.back().lits[0];
        if (!enqueue(u) || !propagate(mark))
            contradiction_ = true;
        return;
    }

    // Prefer non-false watch literals so the invariant holds at attach
    // time under the current root assignment.
    size_t w = 0;
    for (size_t k = 0; k < lits.size() && w < 2; k++) {
        if (litValue(lits[k]) != LBool::False)
            std::swap(lits[w++], lits[k]);
    }
    if (w == 0) {
        // All literals root-false: the clause is a root conflict.
        clauses_.push_back({std::move(lits), true});
        contradiction_ = true;
        return;
    }
    if (w == 1) {
        // Unit under the root assignment: propagate its implied literal.
        Lit u = lits[0];
        clauses_.push_back({std::move(lits), true});
        size_t mark = trail_.size();
        if (!enqueue(u) || !propagate(mark))
            contradiction_ = true;
        // Still watch two literals so later deletions stay uniform.
        const CClause &c = clauses_.back();
        watches_[(~c.lits[0]).x].push_back({cref});
        watches_[(~c.lits[1]).x].push_back({cref});
        return;
    }
    clauses_.push_back({std::move(lits), true});
    const CClause &c = clauses_.back();
    watches_[(~c.lits[0]).x].push_back({cref});
    watches_[(~c.lits[1]).x].push_back({cref});
}

void
DratChecker::recordFailure(const std::vector<Lit> &lits, const char *why)
{
    failed_++;
    if (!firstFailure_.empty())
        return;
    std::ostringstream os;
    os << why << ":";
    for (Lit l : lits)
        os << " " << (l.sign() ? -(l.var() + 1) : l.var() + 1);
    firstFailure_ = os.str();
}

void
DratChecker::onInput(const std::vector<Lit> &lits)
{
    attach(lits);
}

void
DratChecker::onDerive(const std::vector<Lit> &lits)
{
    checked_++;
    if (!rupHolds(lits)) {
        recordFailure(lits, "addition is not RUP");
        return; // do not attach an unjustified clause
    }
    attach(lits);
}

void
DratChecker::onDelete(const std::vector<Lit> &lits)
{
    std::vector<Lit> sorted = lits;
    std::sort(sorted.begin(), sorted.end());
    auto it = byHash_.find(clauseHash(sorted));
    if (it == byHash_.end())
        return; // deleting an unknown clause only weakens the set: sound
    for (uint32_t cref : it->second) {
        CClause &c = clauses_[cref];
        if (!c.active)
            continue;
        std::vector<Lit> cs = c.lits;
        std::sort(cs.begin(), cs.end());
        if (cs != sorted)
            continue;
        // Lazy detach: propagate() skips inactive clauses.
        c.active = false;
        return;
    }
}

bool
DratChecker::step(const DratStep &s)
{
    uint64_t failed_before = failed_;
    if (s.kind == DratStep::Kind::Add)
        onDerive(s.lits);
    else
        onDelete(s.lits);
    return failed_ == failed_before;
}

bool
DratChecker::checkUnsat(const std::vector<Lit> &assumptions)
{
    if (!ok())
        return false;
    if (contradiction_)
        return true;
    size_t mark = trail_.size();
    bool conflict = false;
    for (Lit a : assumptions) {
        ensureVar(a.var());
        if (!enqueue(a)) {
            conflict = true;
            break;
        }
    }
    if (!conflict)
        conflict = !propagate(mark);
    undoTo(mark);
    return conflict;
}

bool
checkDrat(const Cnf &cnf, const DratLog &proof, std::string *why)
{
    DratChecker chk;
    for (const auto &cl : cnf.clauses)
        chk.addInput(cl);
    for (const DratStep &s : proof)
        chk.step(s);
    bool good = chk.ok() && chk.refuted();
    if (!good && why) {
        *why = !chk.ok() ? chk.firstFailure()
                         : "proof does not derive the empty clause";
    }
    return good;
}

} // namespace rmp::sat
