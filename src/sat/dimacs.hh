/**
 * @file
 * DIMACS CNF import/export for the SAT solver — lets formulas from the
 * BMC engine be cross-checked against external solvers and external
 * instances be replayed against ours during debugging.
 */

#ifndef SAT_DIMACS_HH
#define SAT_DIMACS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hh"

namespace rmp::sat
{

/** A parsed CNF: variable count plus clauses of literals. */
struct Cnf
{
    int numVars = 0;
    std::vector<std::vector<Lit>> clauses;
};

/**
 * Parse DIMACS text ("p cnf V C" header, clauses terminated by 0,
 * 'c' comment lines). Throws via rmp_fatal on malformed input.
 */
Cnf parseDimacs(std::istream &in);

/** Render a CNF in DIMACS format. */
std::string toDimacs(const Cnf &cnf);

/** Load a CNF into a fresh solver; returns false if trivially unsat. */
bool loadCnf(Solver &solver, const Cnf &cnf);

} // namespace rmp::sat

#endif // SAT_DIMACS_HH
