#include "sat/dimacs.hh"

#include <istream>
#include <sstream>

#include "common/logging.hh"

namespace rmp::sat
{

Cnf
parseDimacs(std::istream &in)
{
    Cnf cnf;
    std::string line;
    int expected_clauses = -1;
    std::vector<Lit> cur;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == 'c')
            continue;
        if (line[0] == 'p') {
            std::istringstream hs(line);
            std::string p, fmt;
            hs >> p >> fmt >> cnf.numVars >> expected_clauses;
            if (fmt != "cnf" || cnf.numVars < 0)
                rmp_fatal("malformed DIMACS header: %s", line.c_str());
            continue;
        }
        std::istringstream ls(line);
        long v;
        while (ls >> v) {
            if (v == 0) {
                cnf.clauses.push_back(cur);
                cur.clear();
                continue;
            }
            long var = v < 0 ? -v : v;
            if (var > cnf.numVars)
                rmp_fatal("DIMACS literal %ld exceeds declared vars", v);
            cur.push_back(Lit(static_cast<Var>(var - 1), v < 0));
        }
    }
    if (!cur.empty())
        cnf.clauses.push_back(cur);
    if (expected_clauses >= 0 &&
        cnf.clauses.size() != static_cast<size_t>(expected_clauses))
        warn(strfmt("DIMACS clause count %zu != declared %d",
                    cnf.clauses.size(), expected_clauses));
    return cnf;
}

std::string
toDimacs(const Cnf &cnf)
{
    std::ostringstream os;
    os << "p cnf " << cnf.numVars << " " << cnf.clauses.size() << "\n";
    for (const auto &cl : cnf.clauses) {
        for (Lit l : cl)
            os << (l.sign() ? -(l.var() + 1) : l.var() + 1) << " ";
        os << "0\n";
    }
    return os.str();
}

bool
loadCnf(Solver &solver, const Cnf &cnf)
{
    while (solver.numVars() < cnf.numVars)
        solver.newVar();
    bool ok = true;
    for (const auto &cl : cnf.clauses)
        ok &= solver.addClause(cl);
    return ok;
}

} // namespace rmp::sat
