#include "sat/dimacs.hh"

#include <istream>
#include <sstream>

#include "common/logging.hh"

namespace rmp::sat
{

Cnf
parseDimacs(std::istream &in)
{
    Cnf cnf;
    std::string line;
    int expected_clauses = -1;
    bool undeclared_warned = false;
    std::vector<Lit> cur;
    bool open = false; ///< distinguishes "0\n" (empty clause) from no clause
    while (std::getline(in, line)) {
        // Tolerate leading whitespace before 'c'/'p' markers.
        size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == 'c')
            continue;
        if (line[first] == 'p') {
            std::istringstream hs(line.substr(first));
            std::string p, fmt;
            hs >> p >> fmt >> cnf.numVars >> expected_clauses;
            if (fmt != "cnf" || cnf.numVars < 0)
                rmp_fatal("malformed DIMACS header: %s", line.c_str());
            continue;
        }
        std::istringstream ls(line);
        long v;
        while (ls >> v) {
            if (v == 0) {
                // A bare terminator is a valid (empty) clause.
                cnf.clauses.push_back(cur);
                cur.clear();
                open = false;
                continue;
            }
            open = true;
            long var = v < 0 ? -v : v;
            if (var > cnf.numVars) {
                // Headers under-declaring the variable count are common
                // in machine-generated files (and our own fuzz corpus);
                // widen instead of bailing, but say so once.
                if (!undeclared_warned) {
                    warn(strfmt("DIMACS literal %ld exceeds declared %d"
                                " vars; widening",
                                v, cnf.numVars));
                    undeclared_warned = true;
                }
                cnf.numVars = static_cast<int>(var);
            }
            cur.push_back(Lit(static_cast<Var>(var - 1), v < 0));
        }
    }
    // A final clause whose "0" (or trailing newline) is missing still
    // counts — files truncated at the last byte round-trip losslessly.
    if (open)
        cnf.clauses.push_back(cur);
    if (expected_clauses >= 0 &&
        cnf.clauses.size() != static_cast<size_t>(expected_clauses))
        warn(strfmt("DIMACS clause count %zu != declared %d",
                    cnf.clauses.size(), expected_clauses));
    return cnf;
}

std::string
toDimacs(const Cnf &cnf)
{
    std::ostringstream os;
    os << "p cnf " << cnf.numVars << " " << cnf.clauses.size() << "\n";
    for (const auto &cl : cnf.clauses) {
        for (Lit l : cl)
            os << (l.sign() ? -(l.var() + 1) : l.var() + 1) << " ";
        os << "0\n";
    }
    return os.str();
}

bool
loadCnf(Solver &solver, const Cnf &cnf)
{
    while (solver.numVars() < cnf.numVars)
        solver.newVar();
    bool ok = true;
    for (const auto &cl : cnf.clauses)
        ok &= solver.addClause(cl);
    return ok;
}

} // namespace rmp::sat
