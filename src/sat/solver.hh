/**
 * @file
 * CDCL SAT solver used by the BMC engine.
 *
 * Plays the role of the paper's JasperGold property verifier back end.
 * Feature set: two-watched-literal propagation, 1UIP conflict-driven clause
 * learning with clause minimization, VSIDS-style activity with phase saving,
 * Luby restarts, learned-clause DB reduction, incremental solving under
 * assumptions, and conflict/propagation budgets that yield an Undetermined
 * outcome (the paper's third verifier verdict, §V-B / §VII-B3).
 */

#ifndef SAT_SOLVER_HH
#define SAT_SOLVER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmp::sat
{

/** Variable index, 0-based. */
using Var = int32_t;

/** Literal: var * 2 + (negated ? 1 : 0). */
struct Lit
{
    int32_t x = -2;

    Lit() = default;
    Lit(Var v, bool neg) : x(v * 2 + (neg ? 1 : 0)) {}

    Var var() const { return x >> 1; }
    bool sign() const { return x & 1; }
    Lit operator~() const
    {
        Lit l;
        l.x = x ^ 1;
        return l;
    }
    bool operator==(const Lit &o) const { return x == o.x; }
    bool operator!=(const Lit &o) const { return x != o.x; }
    bool operator<(const Lit &o) const { return x < o.x; }
};

/** Positive literal of @p v. */
inline Lit mkLit(Var v) { return Lit(v, false); }

/** Three-valued assignment. */
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/** Solver outcome. */
enum class SatResult : uint8_t
{
    Sat,          ///< satisfying assignment found
    Unsat,        ///< proven unsatisfiable (under the given assumptions)
    Undetermined, ///< budget exhausted (the paper's timeout outcome)
};

/**
 * Resource budgets; 0 means unlimited.
 *
 * Budgets are compared against per-solve() deltas at a single
 * deterministic point — the top of the search loop, before the next
 * propagation/decision — so a given (formula, budget) pair on a fresh
 * solver always exhausts at exactly the same step, independent of
 * phase-saving, restart timing, or how the previous iteration happened
 * to interleave conflicts and propagations.
 */
struct SatBudget
{
    uint64_t maxConflicts = 0;
    uint64_t maxPropagations = 0;
};

/**
 * Receives the solver's clausal proof trace (the DRAT subset described
 * in sat/drat.hh). onInput() sees every problem clause exactly as handed
 * to addClause() (pre-simplification); onDerive() sees every clause the
 * solver claims follows from them — learned clauses, root-level units,
 * and the empty clause on refutation; onDelete() sees learned clauses
 * dropped by DB reduction. Callbacks run synchronously on the solving
 * thread. Install with setProofSink() *before* adding clauses.
 */
class ProofSink
{
  public:
    virtual ~ProofSink() = default;
    virtual void onInput(const std::vector<Lit> &lits) = 0;
    virtual void onDerive(const std::vector<Lit> &lits) = 0;
    virtual void onDelete(const std::vector<Lit> &lits) = 0;
};

/** Cumulative statistics, reported by bench_perf_properties. */
struct SatStats
{
    uint64_t conflicts = 0;
    uint64_t decisions = 0;
    uint64_t propagations = 0;
    uint64_t restarts = 0;
    uint64_t learnedClauses = 0;
    uint64_t removedClauses = 0;
};

/**
 * The CDCL solver.
 *
 * Usage: newVar()/addClause() to build the formula, then solve() —
 * optionally under assumptions, enabling incremental reuse of the clause
 * database and learned clauses across queries on the same unrolling.
 */
class Solver
{
  public:
    Solver();

    /** Create a fresh variable; returns its index. */
    Var newVar();

    /** Number of variables. */
    int numVars() const { return static_cast<int>(assigns.size()); }

    /** Number of clauses in the database (original + learned). */
    size_t numClauses() const { return clauses.size(); }

    /**
     * Add a clause (disjunction of literals).
     * @return false if the formula is already trivially unsat.
     */
    bool addClause(std::vector<Lit> lits);

    /** Convenience overloads. */
    bool addClause(Lit a) { return addClause(std::vector<Lit>{a}); }
    bool addClause(Lit a, Lit b) { return addClause(std::vector<Lit>{a, b}); }
    bool
    addClause(Lit a, Lit b, Lit c)
    {
        return addClause(std::vector<Lit>{a, b, c});
    }

    /**
     * Solve under optional assumptions with optional budget.
     *
     * When observability is on (obs::enabled) each call records a
     * `sat-solve` span carrying the decision/conflict/propagation/
     * restart/learned-clause deltas of this call, and folds the same
     * deltas into the global metrics registry.
     */
    SatResult solve(const std::vector<Lit> &assumptions = {},
                    const SatBudget &budget = {});

    /** Model value of @p v after a Sat result. */
    bool modelValue(Var v) const;

    /**
     * Install a proof sink (nullptr to detach). Must be installed before
     * the first addClause() for the trace to cover the whole formula;
     * the solver never takes ownership.
     */
    void setProofSink(ProofSink *sink) { proof = sink; }

    /** Statistics accumulated across all solve() calls. */
    const SatStats &stats() const { return stats_; }

  private:
    struct Clause
    {
        std::vector<Lit> lits;
        bool learned = false;
        double activity = 0.0;
    };

    using ClauseRef = int32_t;
    static constexpr ClauseRef kNoReason = -1;

    struct Watcher
    {
        ClauseRef cref;
        Lit blocker;
    };

    SatResult solveLoop(const std::vector<Lit> &assumptions,
                        const SatBudget &budget);
    LBool litValue(Lit l) const;
    void enqueue(Lit l, ClauseRef reason);
    ClauseRef propagate();
    void analyze(ClauseRef confl, std::vector<Lit> &out_learned,
                 int &out_btlevel);
    bool litRedundant(Lit l, uint32_t abstract_levels);
    void backtrack(int level);
    Lit pickBranchLit();
    void bumpVar(Var v);
    void bumpClause(Clause &c);
    void decayActivities();
    void reduceDB();
    void attachClause(ClauseRef cref);
    static uint64_t luby(uint64_t i);

    std::vector<Clause> clauses;
    std::vector<std::vector<Watcher>> watches; // indexed by Lit.x
    std::vector<LBool> assigns;
    std::vector<bool> savedPhase;
    std::vector<int> level;
    std::vector<ClauseRef> reason;
    std::vector<Lit> trail;
    std::vector<int> trailLim;
    size_t qhead = 0;

    /** @name Activity-ordered decision heap (MiniSat-style) */
    /// @{
    void heapInsert(Var v);
    void heapPercolateUp(int i);
    void heapPercolateDown(int i);
    bool heapLess(Var a, Var b) const { return activity[a] > activity[b]; }
    std::vector<Var> heap;
    std::vector<int> heapPos; ///< -1 if not in heap
    /// @}

    std::vector<double> activity;
    double varInc = 1.0;
    double claInc = 1.0;
    std::vector<uint8_t> seen;

    bool okay = true;
    SatStats stats_;
    std::vector<Lit> model;
    ProofSink *proof = nullptr;
};

} // namespace rmp::sat

#endif // SAT_SOLVER_HH
