#include "sat/solver.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace rmp::sat
{

Solver::Solver() = default;

Var
Solver::newVar()
{
    Var v = numVars();
    assigns.push_back(LBool::Undef);
    savedPhase.push_back(false);
    level.push_back(0);
    reason.push_back(kNoReason);
    activity.push_back(0.0);
    seen.push_back(0);
    heapPos.push_back(-1);
    watches.emplace_back();
    watches.emplace_back();
    heapInsert(v);
    return v;
}

void
Solver::heapInsert(Var v)
{
    if (heapPos[v] >= 0)
        return;
    heapPos[v] = static_cast<int>(heap.size());
    heap.push_back(v);
    heapPercolateUp(heapPos[v]);
}

void
Solver::heapPercolateUp(int i)
{
    Var v = heap[i];
    while (i > 0) {
        int p = (i - 1) >> 1;
        if (!heapLess(v, heap[p]))
            break;
        heap[i] = heap[p];
        heapPos[heap[i]] = i;
        i = p;
    }
    heap[i] = v;
    heapPos[v] = i;
}

void
Solver::heapPercolateDown(int i)
{
    Var v = heap[i];
    int n = static_cast<int>(heap.size());
    while (true) {
        int l = 2 * i + 1, r = 2 * i + 2;
        int best = i;
        Var bv = v;
        if (l < n && heapLess(heap[l], bv)) {
            best = l;
            bv = heap[l];
        }
        if (r < n && heapLess(heap[r], bv)) {
            best = r;
            bv = heap[r];
        }
        if (best == i)
            break;
        heap[i] = heap[best];
        heapPos[heap[i]] = i;
        heap[best] = v; // placeholder; fixed on next iteration/exit
        heapPos[v] = best;
        i = best;
    }
    heap[i] = v;
    heapPos[v] = i;
}

LBool
Solver::litValue(Lit l) const
{
    LBool v = assigns[l.var()];
    if (v == LBool::Undef)
        return LBool::Undef;
    bool b = (v == LBool::True) != l.sign();
    return b ? LBool::True : LBool::False;
}

bool
Solver::addClause(std::vector<Lit> lits)
{
    if (!okay)
        return false;
    // The proof trace records the clause exactly as handed in; the
    // simplifications below are all derivable from it plus the logged
    // root units, so the checker never needs to see them.
    if (proof)
        proof->onInput(lits);
    // Incremental use: clauses may arrive between solve() calls while the
    // trail still holds assumption levels from the previous query.
    backtrack(0);
    std::sort(lits.begin(), lits.end());
    // Remove duplicates; detect tautologies; drop false literals.
    std::vector<Lit> out;
    for (size_t i = 0; i < lits.size(); i++) {
        Lit l = lits[i];
        if (i + 1 < lits.size() && lits[i + 1] == ~l)
            return true; // tautology: l and ~l adjacent after sort by x
        if (!out.empty() && out.back() == l)
            continue;
        LBool v = litValue(l);
        if (v == LBool::True)
            return true;
        if (v == LBool::False)
            continue;
        out.push_back(l);
    }
    if (out.empty()) {
        // Every literal is false under the root assignment: refuted.
        okay = false;
        if (proof)
            proof->onDerive({});
        return false;
    }
    if (out.size() == 1) {
        // A root-level unit (the clause itself, strengthened by root
        // units) is a derived fact the checker must be told about.
        if (proof)
            proof->onDerive(out);
        enqueue(out[0], kNoReason);
        if (propagate() != kNoReason) {
            okay = false;
            if (proof)
                proof->onDerive({});
            return false;
        }
        return true;
    }
    Clause c;
    c.lits = std::move(out);
    clauses.push_back(std::move(c));
    attachClause(static_cast<ClauseRef>(clauses.size() - 1));
    return true;
}

void
Solver::attachClause(ClauseRef cref)
{
    const Clause &c = clauses[cref];
    watches[(~c.lits[0]).x].push_back({cref, c.lits[1]});
    watches[(~c.lits[1]).x].push_back({cref, c.lits[0]});
}

void
Solver::enqueue(Lit l, ClauseRef r)
{
    rmp_assert(litValue(l) == LBool::Undef, "enqueue of assigned literal");
    assigns[l.var()] = l.sign() ? LBool::False : LBool::True;
    level[l.var()] = static_cast<int>(trailLim.size());
    reason[l.var()] = r;
    trail.push_back(l);
}

Solver::ClauseRef
Solver::propagate()
{
    while (qhead < trail.size()) {
        Lit p = trail[qhead++];
        stats_.propagations++;
        std::vector<Watcher> &ws = watches[p.x];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (litValue(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            Clause &c = clauses[w.cref];
            // Make sure the false literal is lits[1].
            Lit false_lit = ~p;
            if (c.lits[0] == false_lit)
                std::swap(c.lits[0], c.lits[1]);
            rmp_assert(c.lits[1] == false_lit, "watch invariant");
            i++;
            Lit first = c.lits[0];
            if (litValue(first) == LBool::True) {
                ws[j++] = {w.cref, first};
                continue;
            }
            // Look for a new literal to watch.
            bool found = false;
            for (size_t k = 2; k < c.lits.size(); k++) {
                if (litValue(c.lits[k]) != LBool::False) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches[(~c.lits[1]).x].push_back({w.cref, first});
                    found = true;
                    break;
                }
            }
            if (found)
                continue;
            // Unit or conflicting.
            ws[j++] = {w.cref, first};
            if (litValue(first) == LBool::False) {
                // Conflict: copy remaining watchers and bail out.
                while (i < ws.size())
                    ws[j++] = ws[i++];
                ws.resize(j);
                qhead = trail.size();
                return w.cref;
            }
            enqueue(first, w.cref);
        }
        ws.resize(j);
    }
    return kNoReason;
}

void
Solver::bumpVar(Var v)
{
    activity[v] += varInc;
    if (activity[v] > 1e100) {
        for (auto &a : activity)
            a *= 1e-100;
        varInc *= 1e-100;
    }
    if (heapPos[v] >= 0)
        heapPercolateUp(heapPos[v]);
}

void
Solver::bumpClause(Clause &c)
{
    c.activity += claInc;
    if (c.activity > 1e20) {
        for (auto &cl : clauses)
            if (cl.learned)
                cl.activity *= 1e-20;
        claInc *= 1e-20;
    }
}

void
Solver::decayActivities()
{
    varInc /= 0.95;
    claInc /= 0.999;
}

void
Solver::analyze(ClauseRef confl, std::vector<Lit> &out_learned,
                int &out_btlevel)
{
    out_learned.clear();
    out_learned.push_back(Lit()); // placeholder for asserting literal
    int path_count = 0;
    Lit p;
    bool have_p = false;
    size_t index = trail.size();
    int cur_level = static_cast<int>(trailLim.size());

    do {
        rmp_assert(confl != kNoReason, "analyze with no reason");
        Clause &c = clauses[confl];
        if (c.learned)
            bumpClause(c);
        for (size_t k = have_p ? 1 : 0; k < c.lits.size(); k++) {
            Lit q = c.lits[k];
            if (have_p && q == p)
                continue;
            Var v = q.var();
            if (!seen[v] && level[v] > 0) {
                seen[v] = 1;
                bumpVar(v);
                if (level[v] >= cur_level)
                    path_count++;
                else
                    out_learned.push_back(q);
            }
        }
        // Select next literal on the trail to resolve on.
        while (!seen[trail[index - 1].var()])
            index--;
        p = trail[--index];
        have_p = true;
        confl = reason[p.var()];
        seen[p.var()] = 0;
        path_count--;
        // Reason clauses always hold their implied literal at lits[0]
        // (propagate() enqueues first == lits[0], and a true lits[0] is
        // never swapped away while p stays assigned), so the k=1 start in
        // the loop above is sound for them.
        if (path_count > 0 && confl == kNoReason)
            rmp_panic("analyze: decision literal with pending paths");
    } while (path_count > 0);
    out_learned[0] = ~p;

    // Clause minimization: drop literals implied by the rest. Literals
    // removed here still carry their seen[] mark, so remember everything
    // for the final clear (MiniSat's analyze_toclear).
    std::vector<Lit> to_clear(out_learned.begin() + 1, out_learned.end());
    uint32_t abstract_levels = 0;
    for (size_t i = 1; i < out_learned.size(); i++)
        abstract_levels |= 1u << (level[out_learned[i].var()] & 31);
    size_t keep = 1;
    for (size_t i = 1; i < out_learned.size(); i++) {
        Lit l = out_learned[i];
        if (reason[l.var()] == kNoReason ||
            !litRedundant(l, abstract_levels)) {
            out_learned[keep++] = l;
        }
    }
    out_learned.resize(keep);

    // Compute backtrack level = second-highest level in the clause.
    if (out_learned.size() == 1) {
        out_btlevel = 0;
    } else {
        size_t max_i = 1;
        for (size_t i = 2; i < out_learned.size(); i++)
            if (level[out_learned[i].var()] >
                level[out_learned[max_i].var()])
                max_i = i;
        std::swap(out_learned[1], out_learned[max_i]);
        out_btlevel = level[out_learned[1].var()];
    }

    seen[out_learned[0].var()] = 0;
    for (Lit l : to_clear)
        seen[l.var()] = 0;
}

bool
Solver::litRedundant(Lit l, uint32_t abstract_levels)
{
    // DFS through the implication graph; l is redundant if every path
    // terminates in literals already in the learned clause.
    std::vector<Lit> stack{l};
    std::vector<Var> cleared;
    bool ok = true;
    while (!stack.empty() && ok) {
        Lit cur = stack.back();
        stack.pop_back();
        ClauseRef r = reason[cur.var()];
        if (r == kNoReason) {
            ok = false;
            break;
        }
        const Clause &c = clauses[r];
        for (Lit q : c.lits) {
            Var v = q.var();
            if (v == cur.var() || seen[v] || level[v] == 0)
                continue;
            if (reason[v] == kNoReason ||
                !(abstract_levels & (1u << (level[v] & 31)))) {
                ok = false;
                break;
            }
            seen[v] = 2;
            cleared.push_back(v);
            stack.push_back(q);
        }
    }
    for (Var v : cleared)
        if (seen[v] == 2)
            seen[v] = 0;
    return ok;
}

void
Solver::backtrack(int lvl)
{
    if (static_cast<int>(trailLim.size()) <= lvl)
        return;
    for (size_t i = trail.size(); i > static_cast<size_t>(trailLim[lvl]);
         i--) {
        Var v = trail[i - 1].var();
        savedPhase[v] = assigns[v] == LBool::True;
        assigns[v] = LBool::Undef;
        reason[v] = kNoReason;
        heapInsert(v);
    }
    trail.resize(trailLim[lvl]);
    trailLim.resize(lvl);
    qhead = trail.size();
}

Lit
Solver::pickBranchLit()
{
    // Pop the activity-ordered heap until an unassigned variable surfaces.
    while (!heap.empty()) {
        Var v = heap[0];
        Var last = heap.back();
        heap.pop_back();
        heapPos[v] = -1;
        if (!heap.empty() && last != v) {
            heap[0] = last;
            heapPos[last] = 0;
            heapPercolateDown(0);
        }
        if (assigns[v] == LBool::Undef)
            return Lit(v, !savedPhase[v]);
    }
    return Lit();
}

void
Solver::reduceDB()
{
    // Remove the least active half of long learned clauses that are not
    // currently reasons.
    std::vector<ClauseRef> learned;
    for (ClauseRef i = 0; i < static_cast<ClauseRef>(clauses.size()); i++)
        if (clauses[i].learned && clauses[i].lits.size() > 2)
            learned.push_back(i);
    if (learned.size() < 2000)
        return;
    std::sort(learned.begin(), learned.end(), [&](ClauseRef a, ClauseRef b) {
        return clauses[a].activity < clauses[b].activity;
    });
    std::vector<bool> locked(clauses.size(), false);
    for (Lit l : trail)
        if (reason[l.var()] != kNoReason)
            locked[reason[l.var()]] = true;
    size_t removed = 0;
    for (size_t i = 0; i < learned.size() / 2; i++) {
        ClauseRef cref = learned[i];
        if (locked[cref] || clauses[cref].lits.empty())
            continue;
        if (proof)
            proof->onDelete(clauses[cref].lits);
        // Detach from watch lists lazily: mark as empty and filter watches.
        for (int w = 0; w < 2; w++) {
            auto &ws = watches[(~clauses[cref].lits[w]).x];
            ws.erase(std::remove_if(
                         ws.begin(), ws.end(),
                         [&](const Watcher &x) { return x.cref == cref; }),
                     ws.end());
        }
        clauses[cref].lits.clear();
        removed++;
    }
    stats_.removedClauses += removed;
}

uint64_t
Solver::luby(uint64_t i)
{
    // Luby sequence: 1 1 2 1 1 2 4 ...
    uint64_t k = 1;
    while ((1ULL << (k + 1)) <= i + 1)
        k++;
    while ((1ULL << k) - 1 != i + 1) {
        i = i - ((1ULL << k) - 1);
        k = 1;
        while ((1ULL << (k + 1)) <= i + 1)
            k++;
    }
    return 1ULL << (k - 1);
}

SatResult
Solver::solve(const std::vector<Lit> &assumptions, const SatBudget &budget)
{
    if (!obs::enabled())
        return solveLoop(assumptions, budget);
    obs::Span span("sat-solve", "sat");
    SatStats before = stats_;
    SatResult r = solveLoop(assumptions, budget);
    span.arg("decisions", stats_.decisions - before.decisions);
    span.arg("conflicts", stats_.conflicts - before.conflicts);
    span.arg("propagations", stats_.propagations - before.propagations);
    span.arg("restarts", stats_.restarts - before.restarts);
    span.arg("learned", stats_.learnedClauses - before.learnedClauses);
    span.arg("sat", r == SatResult::Sat);
    obs::Registry &reg = obs::Registry::global();
    reg.counter("sat.solves").add(1);
    reg.counter("sat.decisions").add(stats_.decisions - before.decisions);
    reg.counter("sat.conflicts").add(stats_.conflicts - before.conflicts);
    reg.counter("sat.propagations")
        .add(stats_.propagations - before.propagations);
    reg.counter("sat.restarts").add(stats_.restarts - before.restarts);
    reg.counter("sat.learned_clauses")
        .add(stats_.learnedClauses - before.learnedClauses);
    reg.counter("sat.removed_clauses")
        .add(stats_.removedClauses - before.removedClauses);
    return r;
}

SatResult
Solver::solveLoop(const std::vector<Lit> &assumptions,
                  const SatBudget &budget)
{
    if (!okay)
        return SatResult::Unsat;
    backtrack(0);
    uint64_t conflicts_start = stats_.conflicts;
    uint64_t props_start = stats_.propagations;
    uint64_t restart_num = 0;
    uint64_t restart_limit = 64 * luby(restart_num);
    uint64_t conflicts_this_restart = 0;

    std::vector<Lit> learned;
    while (true) {
        // Deterministic budget boundary: the one and only exhaustion
        // check, taken before each propagate/decide round against this
        // call's deltas. Checking here (instead of, say, only after
        // conflicts) makes the effective budget a pure function of the
        // (formula, budget) pair — a propagation-heavy, conflict-free
        // stretch can no longer blow arbitrarily far past
        // maxPropagations before anyone looks.
        if ((budget.maxConflicts &&
             stats_.conflicts - conflicts_start >= budget.maxConflicts) ||
            (budget.maxPropagations &&
             stats_.propagations - props_start >= budget.maxPropagations))
            return SatResult::Undetermined;
        ClauseRef confl = propagate();
        if (confl != kNoReason) {
            stats_.conflicts++;
            conflicts_this_restart++;
            if (trailLim.empty()) {
                // Conflict at root level: the formula itself is unsat.
                // Record it permanently — the conflict path advanced qhead
                // past the falsified literals, so a later solve() would
                // otherwise never rediscover it.
                okay = false;
                if (proof)
                    proof->onDerive({});
                return SatResult::Unsat;
            }
            int btlevel = 0;
            analyze(confl, learned, btlevel);
            backtrack(btlevel);
            // Every learned clause (asserting 1UIP, minimized) is RUP
            // against the clause database that produced it: log it.
            if (proof)
                proof->onDerive(learned);
            if (learned.size() == 1) {
                enqueue(learned[0], kNoReason);
            } else {
                Clause c;
                c.lits = learned;
                c.learned = true;
                clauses.push_back(std::move(c));
                ClauseRef cref = static_cast<ClauseRef>(clauses.size() - 1);
                attachClause(cref);
                bumpClause(clauses[cref]);
                enqueue(learned[0], cref);
                stats_.learnedClauses++;
            }
            decayActivities();
            continue;
        }
        if (conflicts_this_restart >= restart_limit) {
            // Restart: keep assumptions logic simple by going to root.
            stats_.restarts++;
            restart_num++;
            restart_limit = 64 * luby(restart_num);
            conflicts_this_restart = 0;
            backtrack(0);
            reduceDB();
            continue;
        }
        // Apply pending assumptions as pseudo-decisions.
        Lit next;
        bool have_next = false;
        if (trailLim.size() < assumptions.size()) {
            Lit a = assumptions[trailLim.size()];
            LBool v = litValue(a);
            if (v == LBool::True) {
                // Already satisfied: open an empty decision level.
                trailLim.push_back(static_cast<int>(trail.size()));
                continue;
            }
            if (v == LBool::False) {
                // Conflicting assumption set.
                return SatResult::Unsat;
            }
            next = a;
            have_next = true;
        }
        if (!have_next) {
            next = pickBranchLit();
            if (next.x < 0) {
                // All variables assigned: SAT. Under RMP_SAT_CHECK_MODELS
                // (exported by the test suite) self-check the model
                // against every clause so a solver bug can never silently
                // corrupt a verification verdict. (The BMC layer
                // additionally replays every witness on the simulator.)
                static const bool check_models =
                    std::getenv("RMP_SAT_CHECK_MODELS") != nullptr;
                if (check_models) {
                    for (const Clause &c : clauses) {
                        if (c.lits.empty())
                            continue;
                        bool any = false;
                        for (Lit l : c.lits)
                            if (litValue(l) == LBool::True)
                                any = true;
                        rmp_assert(any, "SAT model violates a clause");
                    }
                }
                model.assign(trail.begin(), trail.end());
                return SatResult::Sat;
            }
            stats_.decisions++;
        }
        trailLim.push_back(static_cast<int>(trail.size()));
        enqueue(next, kNoReason);
    }
}

bool
Solver::modelValue(Var v) const
{
    return assigns[v] == LBool::True;
}

} // namespace rmp::sat
