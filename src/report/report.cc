#include "report/report.hh"

#include <map>
#include <set>
#include <sstream>

#include "common/table.hh"
#include "obs/registry.hh"
#include "report/json.hh"

namespace rmp::report
{

using namespace uhb;
using slc::Operand;
using slc::TxType;

std::string
renderFig8Matrix(const ct::AnalysisDb &db)
{
    const auto &info = db.hx->duv();
    auto iname = [&](InstrId i) { return info.instrs[i].name; };

    // Columns: one per leakage signature (transponder_src), grouped by
    // transponder; rows: (transmitter, type) pairs with rs1/rs2 sub-rows.
    struct Row
    {
        InstrId t;
        TxType type;
        Operand op;
        bool
        operator<(const Row &o) const
        {
            return std::tie(t, type, op) < std::tie(o.t, o.type, o.op);
        }
    };
    std::set<Row> rows;
    for (const auto &sig : db.signatures)
        for (const auto &ti : sig.inputs)
            rows.insert({ti.instr, ti.type, ti.op});

    AsciiTable t;
    std::vector<std::string> header{"transmitter (type, operand)"};
    for (const auto &sig : db.signatures) {
        header.push_back(iname(sig.transponder) + "_" +
                         db.hx->plName(sig.src) + " (|out|=" +
                         std::to_string(sig.outputRange()) + ")");
    }
    t.setHeader(header);
    for (const auto &row : rows) {
        std::vector<std::string> cells;
        std::string label = iname(row.t);
        switch (row.type) {
          case TxType::Intrinsic: label += " N"; break;
          case TxType::DynamicOlder: label += " D(older)"; break;
          case TxType::DynamicYounger: label += " D(younger)"; break;
          case TxType::Static: label += " S"; break;
        }
        label += std::string(" .") + slc::operandName(row.op);
        cells.push_back(label);
        for (const auto &sig : db.signatures) {
            bool hit = false;
            for (const auto &ti : sig.inputs)
                if (ti.instr == row.t && ti.type == row.type &&
                    ti.op == row.op)
                    hit = true;
            cells.push_back(hit ? "X" : "");
        }
        t.addRow(cells);
    }
    std::ostringstream os;
    os << "Leakage-signature matrix (Fig. 8 style): " << db.signatures.size()
       << " signatures, " << rows.size() << " typed transmitter inputs\n"
       << t.str();
    return os.str();
}

std::string
renderTableII(const designs::Harness &hx)
{
    const DuvInfo &info = hx.duv();
    size_t state_regs = 0;
    for (const auto &f : info.fsms)
        state_regs += f.vars.size();
    AsciiTable t;
    t.setHeader({"annotation (§V-A)", info.name, "paper's CVA6 core"});
    t.addRow({"IFR", "1 reg", "1 reg"});
    t.addRow({"μFSMs (PCR+vars tuples)", std::to_string(info.fsms.size()),
              "21"});
    t.addRow({"μFSM state variable regs", std::to_string(state_regs),
              "38"});
    t.addRow({"PCRs", std::to_string(info.fsms.size()), "21 (14 added)"});
    t.addRow({"commit signal", "1 wire", "1 wire"});
    t.addRow({"operand regs", "2 regs", "2 regs"});
    t.addRow({"ARF", std::to_string(info.arfRegs.size()) + " words",
              "1 array"});
    t.addRow({"AMEM", std::to_string(info.amemRegs.size()) + " words",
              "1 array"});
    t.addRow({"candidate PLs", std::to_string(hx.numPls()),
              "41 (reachable)"});
    DesignStats st = hx.design().stats();
    t.addRow({"design cells", std::to_string(st.cells), "19,575 std cells"});
    t.addRow({"flip-flop bits", std::to_string(st.flopBits), "11,985"});
    return t.str();
}

std::string
renderStepStats(const std::vector<r2m::StepStats> &steps,
                const slc::SynthLcStats *synthlc)
{
    AsciiTable t;
    t.setHeader({"step", "properties", "reachable", "unreachable",
                 "undetermined", "undet %", "avg s/prop"});
    auto pct = [](uint64_t part, uint64_t whole) {
        if (!whole)
            return std::string("0.0");
        char buf[16];
        snprintf(buf, sizeof(buf), "%.1f", 100.0 * part / whole);
        return std::string(buf);
    };
    auto avg = [](double s, uint64_t q) {
        char buf[16];
        snprintf(buf, sizeof(buf), "%.4f", q ? s / q : 0.0);
        return std::string(buf);
    };
    uint64_t tq = 0, tr = 0, tu = 0, tun = 0;
    double ts = 0;
    for (const auto &s : steps) {
        if (!s.queries)
            continue;
        t.addRow({s.step, std::to_string(s.queries),
                  std::to_string(s.reachable), std::to_string(s.unreachable),
                  std::to_string(s.undetermined),
                  pct(s.undetermined, s.queries), avg(s.seconds, s.queries)});
        tq += s.queries;
        tr += s.reachable;
        tu += s.unreachable;
        tun += s.undetermined;
        ts += s.seconds;
    }
    t.addSeparator();
    t.addRow({"RTL2MμPATH total", std::to_string(tq), std::to_string(tr),
              std::to_string(tu), std::to_string(tun), pct(tun, tq),
              avg(ts, tq)});
    if (synthlc) {
        t.addRow({"SynthLC sim-discharged", std::to_string(synthlc->simHits),
                  std::to_string(synthlc->simHits), "0", "0", "0.0", "-"});
        t.addRow({"SynthLC (decision_taint)",
                  std::to_string(synthlc->queries),
                  std::to_string(synthlc->reachable),
                  std::to_string(synthlc->unreachable),
                  std::to_string(synthlc->undetermined),
                  pct(synthlc->undetermined, synthlc->queries),
                  avg(synthlc->seconds, synthlc->queries)});
    }
    return t.str();
}

std::string
renderCoiStats(const bmc::CoiStats &coi)
{
    AsciiTable t;
    t.setHeader({"metric", "value"});
    auto fmt1 = [](double v) {
        char buf[32];
        snprintf(buf, sizeof(buf), "%.1f", v);
        return std::string(buf);
    };
    double avg_cone =
        coi.queries ? double(coi.coneCells) / double(coi.queries) : 0.0;
    double share = coi.designCells
                       ? 100.0 * double(coi.coneCells) /
                             double(coi.designCells)
                       : 0.0;
    t.addRow({"solver-evaluated queries", std::to_string(coi.queries)});
    t.addRow({"avg cone cells / query", fmt1(avg_cone)});
    t.addRow({"cone share of design (%)", fmt1(share)});
    t.addRow({"distinct unrolled instances", std::to_string(coi.conesBuilt)});
    t.addRow({"AIG nodes (all instances)", std::to_string(coi.aigNodes)});
    t.addRow({"SAT variables (all instances)", std::to_string(coi.satVars)});
    return t.str();
}

std::string
renderInstrPaths(const designs::Harness &hx, const InstrPaths &paths)
{
    const auto &info = hx.duv();
    std::ostringstream os;
    os << info.instrs[paths.instr].name << ": " << paths.paths.size()
       << " μPATH(s)\n";
    for (size_t i = 0; i < paths.paths.size(); i++) {
        const UPath &p = paths.paths[i];
        os << "-- μPATH " << i << " (latency " << p.latency()
           << " cycles, " << p.edges.size() << " HB edges)\n";
        os << renderUPath(p, hx.plNames());
        for (const auto &[pl, counts] : p.revisitCounts) {
            os << "   revisit counts at " << hx.plName(pl) << ": {";
            for (size_t k = 0; k < counts.size(); k++)
                os << (k ? "," : "") << counts[k];
            os << "}\n";
        }
    }
    return os.str();
}

std::string
renderDecisions(const designs::Harness &hx, const InstrPaths &paths)
{
    const auto &info = hx.duv();
    std::ostringstream os;
    os << "d^" << info.instrs[paths.instr].name << " = {";
    for (size_t i = 0; i < paths.decisions.size(); i++) {
        os << (i ? ", " : "")
           << renderDecision(paths.decisions[i], hx.plNames());
    }
    os << "}\n";
    auto srcs = paths.decisionSources();
    os << "decision sources: {";
    for (size_t i = 0; i < srcs.size(); i++)
        os << (i ? ", " : "") << hx.plName(srcs[i]);
    os << "}\n";
    return os.str();
}

std::string
renderObsStats()
{
    std::vector<obs::Sample> samples = obs::Registry::global().snapshot();
    if (samples.empty())
        return "";
    AsciiTable t;
    t.setHeader({"metric", "labels", "kind", "value", "sum", "max", "mean"});
    auto fmt1 = [](double v) {
        char buf[32];
        snprintf(buf, sizeof(buf), "%.1f", v);
        return std::string(buf);
    };
    for (const obs::Sample &s : samples) {
        const char *kind = s.kind == obs::Sample::Kind::Counter ? "counter"
                           : s.kind == obs::Sample::Kind::Gauge
                               ? "gauge"
                               : "histogram";
        bool hist = s.kind == obs::Sample::Kind::Histogram;
        t.addRow({s.name, s.labels, kind, std::to_string(s.value),
                  hist ? std::to_string(s.sum) : "",
                  hist ? std::to_string(s.max) : "",
                  hist ? fmt1(s.mean) : ""});
    }
    std::ostringstream os;
    os << "Run metrics (" << samples.size() << " series)\n" << t.str();
    return os.str();
}

std::string
runSummaryJson(const std::string &bench, const std::string &design,
               double wall_seconds, const exec::PoolStats *pool)
{
    JsonReport out;
    out.put("bench", bench);
    out.put("design", design);
    out.put("wall_seconds", wall_seconds);
    if (pool)
        out.putRaw("pool", poolStatsJson(*pool));
    JsonReport metrics;
    for (const obs::Sample &s : obs::Registry::global().snapshot()) {
        std::string key = s.name;
        if (!s.labels.empty())
            key += "{" + s.labels + "}";
        if (s.kind == obs::Sample::Kind::Histogram) {
            metrics.put(key + ".count", static_cast<uint64_t>(s.value));
            metrics.put(key + ".sum", s.sum);
            metrics.put(key + ".max", s.max);
        } else {
            metrics.put(key, static_cast<uint64_t>(s.value));
        }
    }
    out.putRaw("metrics", metrics.str());
    return out.str();
}

} // namespace rmp::report
