/**
 * @file
 * Minimal JSON emission for machine-readable result files.
 *
 * One insertion-ordered object builder (JsonReport) serves every JSON
 * surface in the repo: the benches' BENCH_*.json result files, the CLI's
 * `--stats --json` run summaries, and nested sub-objects like the engine
 * pool statistics. Keeping a single builder keeps the schemas congruent —
 * a run summary nests the exact same "pool" object a bench file does, so
 * downstream tooling parses both with one code path.
 */

#ifndef REPORT_JSON_HH
#define REPORT_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.hh"
#include "exec/engine_pool.hh"

namespace rmp::report
{

/** Escape a string for embedding in a JSON document. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Minimal insertion-ordered JSON object builder. Nest objects with
 * putRaw(child JsonReport::str()).
 */
class JsonReport
{
  public:
    void
    put(const std::string &key, uint64_t v)
    {
        kv.emplace_back(key, std::to_string(v));
    }
    void
    put(const std::string &key, double v)
    {
        if (!std::isfinite(v)) // JSON has no NaN/Inf
            v = 0.0;
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        kv.emplace_back(key, buf);
    }
    void
    put(const std::string &key, const std::string &v)
    {
        kv.emplace_back(key, "\"" + jsonEscape(v) + "\"");
    }
    /** Insert a pre-rendered JSON value (nested object/array). */
    void
    putRaw(const std::string &key, const std::string &json)
    {
        kv.emplace_back(key, json);
    }

    std::string
    str() const
    {
        std::string out = "{";
        for (size_t i = 0; i < kv.size(); i++) {
            if (i)
                out += ", ";
            out += "\"" + jsonEscape(kv[i].first) + "\": " + kv[i].second;
        }
        return out + "}";
    }

    bool
    writeFile(const std::string &path) const
    {
        std::ofstream f(path);
        if (!f)
            return false;
        f << str() << "\n";
        return static_cast<bool>(f);
    }

  private:
    std::vector<std::pair<std::string, std::string>> kv;
};

/**
 * Minimal insertion-ordered JSON array builder, the sequence analogue of
 * JsonReport. Nest into an object with putRaw(arr.str()).
 */
class JsonArray
{
  public:
    void add(uint64_t v) { items.push_back(std::to_string(v)); }
    void
    add(const std::string &v)
    {
        items.push_back("\"" + jsonEscape(v) + "\"");
    }
    /** Append a pre-rendered JSON value (nested object/array). */
    void addRaw(const std::string &json) { items.push_back(json); }

    size_t size() const { return items.size(); }

    std::string
    str() const
    {
        std::string out = "[";
        for (size_t i = 0; i < items.size(); i++) {
            if (i)
                out += ", ";
            out += items[i];
        }
        return out + "]";
    }

  private:
    std::vector<std::string> items;
};

/**
 * Render a lint/analyze diagnostics report as a JSON object. This is the
 * ONE schema shared by `rmp lint --json`, `rmp analyze --json`, and
 * analysis::LintReport::json (which delegates here): {design, cells,
 * errors, warnings, diagnostics: [{rule, severity, cell, message}]},
 * with cell = -1 for design-level findings.
 */
inline std::string
diagnosticsJson(const Design &d, const analysis::LintReport &rep)
{
    JsonArray diags;
    for (const analysis::Diagnostic &di : rep.diags) {
        JsonReport e;
        e.put("rule", std::string(analysis::ruleName(di.rule)));
        e.put("severity", std::string(analysis::severityName(di.severity)));
        e.putRaw("cell", di.sig == kNoSig
                             ? "-1"
                             : std::to_string(
                                   static_cast<long long>(di.sig)));
        e.put("message", di.message);
        diags.addRaw(e.str());
    }
    JsonReport j;
    j.put("design", d.name());
    j.put("cells", static_cast<uint64_t>(d.numCells()));
    j.put("errors", static_cast<uint64_t>(rep.errors()));
    j.put("warnings", static_cast<uint64_t>(rep.warnings()));
    j.putRaw("diagnostics", diags.str());
    return j.str();
}

/** Render an engine pool's aggregate statistics as a JSON object. */
inline std::string
poolStatsJson(const exec::PoolStats &s)
{
    JsonReport j;
    j.put("solver_queries", s.engine.queries);
    j.put("reachable", s.engine.reachable);
    j.put("unreachable", s.engine.unreachable);
    j.put("undetermined", s.engine.undetermined);
    j.put("static_pruned", s.engine.staticPruned);
    j.put("solver_seconds", s.engine.totalSeconds);
    j.put("cache_hits", s.cache.hits);
    j.put("cache_misses", s.cache.misses);
    j.put("cache_entries", s.cache.entries);
    j.put("cache_collisions", s.cache.collisions);
    j.put("audit_replayed", s.engine.auditReplayed);
    j.put("audit_proof_checked", s.engine.auditProofChecked);
    j.put("audit_mismatches", s.engine.auditMismatches);
    j.put("lanes_built", static_cast<uint64_t>(s.lanesBuilt));
    j.put("sat_conflicts", s.sat.conflicts);
    j.put("sat_decisions", s.sat.decisions);
    j.put("sat_propagations", s.sat.propagations);
    j.put("sat_learned_clauses", s.sat.learnedClauses);
    return j.str();
}

} // namespace rmp::report

#endif // REPORT_JSON_HH
