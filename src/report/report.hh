/**
 * @file
 * Paper-style report rendering: the Fig. 8 leakage-signature matrix, the
 * Table II metadata summary, property-evaluation statistics (§VII-B3),
 * and μPATH figure rendering helpers used by the benches and examples.
 */

#ifndef REPORT_REPORT_HH
#define REPORT_REPORT_HH

#include <string>
#include <vector>

#include "contracts/contracts.hh"
#include "rtl2mupath/synth.hh"
#include "synthlc/synthlc.hh"

namespace rmp::report
{

/**
 * Render the Fig. 8-style matrix: transponder classes (columns) x typed
 * transmitter inputs (rows, with rs1/rs2 sub-rows), with each column's
 * leakage-signature output-range size.
 */
std::string renderFig8Matrix(const ct::AnalysisDb &db);

/**
 * Render the Table II metadata summary for a harnessed DUV, next to the
 * paper's CVA6 numbers for comparison.
 */
std::string renderTableII(const designs::Harness &hx);

/** Render §VII-B3-style property-evaluation statistics. */
std::string renderStepStats(const std::vector<r2m::StepStats> &steps,
                            const slc::SynthLcStats *synthlc = nullptr);

/**
 * Render cone-of-influence statistics for one engine-pool run: how much
 * of the design the average query actually unrolled, how many distinct
 * cone instances were built, and the AIG/SAT instance sizes
 * (bmc::Engine::coiStats, merged across lanes by exec::EnginePool).
 */
std::string renderCoiStats(const bmc::CoiStats &coi);

/** Render all μPATHs of one instruction with figure-style headers. */
std::string renderInstrPaths(const designs::Harness &hx,
                             const uhb::InstrPaths &paths);

/** Summarize a decision list in §IV-B notation. */
std::string renderDecisions(const designs::Harness &hx,
                            const uhb::InstrPaths &paths);

} // namespace rmp::report

#endif // REPORT_REPORT_HH
