/**
 * @file
 * Paper-style report rendering: the Fig. 8 leakage-signature matrix, the
 * Table II metadata summary, property-evaluation statistics (§VII-B3),
 * and μPATH figure rendering helpers used by the benches and examples.
 */

#ifndef REPORT_REPORT_HH
#define REPORT_REPORT_HH

#include <string>
#include <vector>

#include "contracts/contracts.hh"
#include "exec/engine_pool.hh"
#include "rtl2mupath/synth.hh"
#include "synthlc/synthlc.hh"

namespace rmp::report
{

/**
 * Render the Fig. 8-style matrix: transponder classes (columns) x typed
 * transmitter inputs (rows, with rs1/rs2 sub-rows), with each column's
 * leakage-signature output-range size.
 */
std::string renderFig8Matrix(const ct::AnalysisDb &db);

/**
 * Render the Table II metadata summary for a harnessed DUV, next to the
 * paper's CVA6 numbers for comparison.
 */
std::string renderTableII(const designs::Harness &hx);

/** Render §VII-B3-style property-evaluation statistics. */
std::string renderStepStats(const std::vector<r2m::StepStats> &steps,
                            const slc::SynthLcStats *synthlc = nullptr);

/**
 * Render cone-of-influence statistics for one engine-pool run: how much
 * of the design the average query actually unrolled, how many distinct
 * cone instances were built, and the AIG/SAT instance sizes
 * (bmc::Engine::coiStats, merged across lanes by exec::EnginePool).
 */
std::string renderCoiStats(const bmc::CoiStats &coi);

/**
 * Render the global obs::Registry as a text table: one row per
 * (metric, labels) pair, with count/sum/max/mean columns for histograms.
 * Empty string when the registry holds no samples.
 */
std::string renderObsStats();

/**
 * Build the `--stats --json` run summary: a flat JSON object in the
 * BENCH_*.json schema ("bench" key first, scalars after), nesting the
 * pool statistics under "pool" exactly as the bench reporters do and the
 * registry metrics under "metrics" (one key per metric/label pair;
 * histograms expand to .count/.sum/.max).
 *
 * @p bench  the run's identifier (e.g. "rmp-synth").
 * @p design the DUV name.
 * @p wall_seconds end-to-end wall-clock time of the run.
 * @p pool   the engine pool's aggregate statistics, or nullptr when the
 *           command ran no pool.
 */
std::string runSummaryJson(const std::string &bench,
                           const std::string &design, double wall_seconds,
                           const exec::PoolStats *pool);

/** Render all μPATHs of one instruction with figure-style headers. */
std::string renderInstrPaths(const designs::Harness &hx,
                             const uhb::InstrPaths &paths);

/** Summarize a decision list in §IV-B notation. */
std::string renderDecisions(const designs::Harness &hx,
                            const uhb::InstrPaths &paths);

} // namespace rmp::report

#endif // REPORT_REPORT_HH
