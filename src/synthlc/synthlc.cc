#include "synthlc/synthlc.hh"

#include <algorithm>
#include <atomic>
#include <random>
#include <set>
#include <sstream>

#include "analysis/fsmreach.hh"
#include "common/logging.hh"
#include "obs/progress.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "rtl2mupath/sim_explore.hh"

namespace rmp::slc
{

using namespace uhb;
using namespace prop;

const char *
txTypeName(TxType t)
{
    switch (t) {
      case TxType::Intrinsic: return "intrinsic";
      case TxType::DynamicOlder: return "dynamic-older";
      case TxType::DynamicYounger: return "dynamic-younger";
      case TxType::Static: return "static";
    }
    return "?";
}

const char *
operandName(Operand o)
{
    return o == Operand::Rs1 ? "rs1" : "rs2";
}

namespace
{

ift::IftConfig
iftConfigFor(const designs::Harness &hx)
{
    const DuvInfo &info = hx.duv();
    ift::IftConfig cfg;
    rmp_assert(info.rs1Reg != kNoSig && info.rs2Reg != kNoSig,
               "DUV %s lacks operand-register metadata", info.name.c_str());
    cfg.taintSources = {info.rs1Reg, info.rs2Reg};
    cfg.blockRegs = info.arfRegs;
    cfg.blockRegs.insert(cfg.blockRegs.end(), info.amemRegs.begin(),
                         info.amemRegs.end());
    cfg.persistentRegs = info.persistentRegs;
    cfg.txmGone = hx.txmGone;
    return cfg;
}

/** Build the per-μFSM taint-reduction wires (vars + PCR shadows). */
std::vector<SigId>
buildFsmTaintWires(const designs::Harness &hx, const ift::Instrumented &inst)
{
    std::vector<SigId> out;
    for (const MicroFsm &fsm : hx.duv().fsms) {
        std::vector<SigId> regs = fsm.vars;
        regs.push_back(fsm.pcr);
        out.push_back(inst.anyTaintWire(regs));
    }
    return out;
}

/** Named-field engine configuration (positional init breaks silently as
 *  EngineConfig grows). SynthLC never reads witness traces — only
 *  outcomes — so compiled witness validation needs no extra watch
 *  signals beyond the queries' own supports. */
bmc::EngineConfig
engineConfigFor(const designs::Harness &hx, const ift::Instrumented &inst,
                const SynthLcConfig &config)
{
    bmc::EngineConfig ec;
    ec.bound = config.bound ? config.bound : hx.duv().completenessBound;
    ec.budget = config.budget;
    ec.validateWitnesses = true;
    ec.coiPruning = config.coiPruning;
    ec.auditReplay = config.auditReplay;
    ec.auditProof = config.auditProof;
    ec.compiledReplay = true;
    ec.simBackend = config.simBackend;
    if (config.staticPrune) {
        ec.staticPrune = true;
        // Facts are over the instrumented design (the one the pool's
        // engines unroll); instrumentation appends taint cells without
        // renumbering, so the harness's μFSM SigIds remain valid.
        std::vector<SigId> ctrl;
        for (const uhb::MicroFsm &fsm : hx.duv().fsms)
            for (SigId v : fsm.vars)
                ctrl.push_back(v);
        ec.staticFacts = std::make_shared<const analysis::AbsFacts>(
            analysis::staticFacts(*inst.design, ctrl));
    }
    return ec;
}

} // anonymous namespace

SynthLc::SynthLc(const designs::Harness &harness, const SynthLcConfig &config)
    : hx(harness), cfg(config),
      inst(ift::instrument(hx.design(), iftConfigFor(harness))),
      fsmTaint(buildFsmTaintWires(harness, inst)),
      pool_(*inst.design, engineConfigFor(harness, inst, config),
            exec::ExecConfig{config.jobs, config.lanes}),
      base(hx.baseAssumes())
{
}

prop::ExprRef
SynthLc::taintIntro(Operand op) const
{
    const DuvInfo &info = hx.duv();
    SigId sel = op == Operand::Rs1 ? info.rs1Reg : info.rs2Reg;
    SigId other = op == Operand::Rs1 ? info.rs2Reg : info.rs1Reg;
    SigId sel_in = inst.taintIn.at(sel);
    SigId other_in = inst.taintIn.at(other);
    uint64_t mask = BitVec::maskOf(inst.design->cell(sel_in).width);
    ExprRef at_issue = pBit(hx.txmAtIssue);
    // Taint is introduced exactly while the transmitter occupies the
    // issue stage (§V-C1), and never anywhere else.
    ExprRef intro = pOr(pAnd(at_issue, pEq(sel_in, mask)),
                        pAnd(pNot(at_issue), pEq(sel_in, 0)));
    return pAnd(intro, pEq(other_in, 0));
}

prop::ExprRef
SynthLc::assumptionExpr(TxType type, PlId src) const
{
    ExprRef both = pAnd(pBit(hx.iuvTaken), pBit(hx.txmTaken));
    ExprRef at_src = pBit(hx.plSig(src).iuvAt);
    switch (type) {
      case TxType::Intrinsic:
        // Assumption 1: iT and iP are the same dynamic instruction.
        return pOr(pNot(both), pBit(hx.txmSame));
      case TxType::DynamicOlder:
        // Assumption 2a: iT older, and in-flight whenever iP is at src.
        return pAnd(pOr(pNot(both), pBit(hx.txmOlder)),
                    pOr(pNot(at_src), pBit(hx.txmPresent)));
      case TxType::DynamicYounger:
        // Assumption 2b: iT younger (neither older nor the same), and
        // in-flight whenever iP is at src.
        return pAnd(pOr(pNot(both), pAnd(pNot(pBit(hx.txmOlder)),
                                         pNot(pBit(hx.txmSame)))),
                    pOr(pNot(at_src), pBit(hx.txmPresent)));
      case TxType::Static:
        // Assumption 3: iT materialized and dematerialized before iP
        // reaches src (and is a distinct instruction).
        return pAnd(pOr(pNot(both), pNot(pBit(hx.txmSame))),
                    pOr(pNot(at_src), pBit(hx.txmGone)));
    }
    rmp_panic("bad TxType");
}

prop::ExprRef
SynthLc::coverExpr(const Decision &d,
                   const std::vector<PlId> &succ_universe) const
{
    ExprRef at_src = pBit(hx.plSig(d.src).iuvAt);
    // Exact destination occupancy over the successor universe.
    std::vector<ExprRef> terms;
    for (PlId q : succ_universe) {
        bool in = std::find(d.dst.begin(), d.dst.end(), q) != d.dst.end();
        ExprRef at_q = pBit(hx.plSig(q).iuvAt);
        terms.push_back(in ? at_q : pNot(at_q));
    }
    // Destination μFSM taint (for the departure decision, the source
    // μFSM's taint stands in for the observable freeing of the resource).
    std::vector<ExprRef> taint_terms;
    if (d.dst.empty()) {
        terms.push_back(pBit(hx.iuvGone));
        taint_terms.push_back(pBit(fsmTaint[hx.pl(d.src).fsm]));
    } else {
        for (PlId q : d.dst)
            taint_terms.push_back(pBit(fsmTaint[hx.pl(q).fsm]));
    }
    terms.push_back(pOrN(taint_terms));
    return pDelay(at_src, 1, pAndN(terms));
}

std::vector<prop::ExprRef>
SynthLc::queryAssumes(InstrId transponder, InstrId transmitter, Operand op,
                      TxType type, PlId src) const
{
    std::vector<ExprRef> assumes = base;
    assumes.push_back(hx.assumeIuvIs(transponder));
    assumes.push_back(hx.assumeTxmIs(transmitter));
    assumes.push_back(taintIntro(op));
    assumes.push_back(assumptionExpr(type, src));
    assumes.push_back(
        pEq(inst.stickyMode, type == TxType::Static ? 1 : 0));
    return assumes;
}

void
SynthLc::simBatch(InstrId transponder, InstrId transmitter, Operand op,
                  TxType type,
                  const std::map<PlId, std::vector<Decision>> &by_src,
                  const std::map<PlId, std::vector<PlId>> &universe,
                  std::set<std::pair<PlId, Decision>> *hits) const
{
    if (cfg.simRuns == 0)
        return;
    const DuvInfo &info = hx.duv();
    const Design &d = *inst.design;
    // Pre-step taint-introduction needs register-backed issue metadata.
    if (d.cell(info.issueOccupied).op != Op::Reg ||
        d.cell(info.issuePcr).op != Op::Reg)
        return;
    SigId sel = op == Operand::Rs1 ? info.rs1Reg : info.rs2Reg;
    SigId other = op == Operand::Rs1 ? info.rs2Reg : info.rs1Reg;
    SigId sel_in = inst.taintIn.at(sel);
    SigId other_in = inst.taintIn.at(other);
    uint64_t mask = BitVec::maskOf(d.cell(sel_in).width);
    bool sticky = type == TxType::Static;

    r2m::SimExploreConfig ecfg;
    ecfg.fetchProb = sticky ? 0.35 : 0.85;
    std::mt19937_64 rng(cfg.simSeed * 0x2545f4914f6cdd1dULL +
                        transponder * 131 + transmitter * 17 +
                        static_cast<int>(op) * 5 + static_cast<int>(type));
    unsigned bound = pool_.bound();

    auto extra = [&](unsigned, Simulator &sim, InputMap &in) {
        bool at_issue = sim.regValue(info.issueOccupied) &&
                        sim.regValue(hx.txmTaken) &&
                        sim.regValue(info.issuePcr) ==
                            sim.regValue(hx.txmPc);
        in[sel_in] = at_issue ? mask : 0;
        in[other_in] = 0;
        in[inst.stickyMode] = sticky;
    };

    for (unsigned run = 0; run < cfg.simRuns; run++) {
        unsigned iuv_pos = 0, txm_pos = 0;
        switch (type) {
          case TxType::Intrinsic:
            iuv_pos = txm_pos = rng() % 3;
            break;
          case TxType::DynamicOlder:
            txm_pos = rng() % 3;
            iuv_pos = txm_pos + 1 + rng() % 2;
            break;
          case TxType::DynamicYounger:
            iuv_pos = rng() % 3;
            txm_pos = iuv_pos + 1 + rng() % 2;
            break;
          case TxType::Static:
            txm_pos = 0;
            iuv_pos = 1 + rng() % 3;
            break;
        }
        r2m::SimRun rr = r2m::randomConstrainedRun(
            hx, d, bound, transponder, iuv_pos,
            static_cast<int>(transmitter), txm_pos, ecfg, rng, extra);
        const SimTrace &tr = rr.trace;
        for (const auto &[src, ds] : by_src) {
            // The run must satisfy every assume of this src's query for
            // a cover match to be equivalent to a BMC witness.
            bool valid = true;
            auto assumes =
                queryAssumes(transponder, transmitter, op, type, src);
            for (const auto &a : assumes) {
                unsigned lastf =
                    bound > a->depth() ? bound - a->depth() : 1;
                for (unsigned t = 0; t < lastf && valid; t++)
                    valid = prop::evalOnTrace(a, tr, t);
                if (!valid)
                    break;
            }
            if (!valid)
                continue;
            for (const Decision &dec : ds) {
                if (hits->count({src, dec}))
                    continue;
                ExprRef cov = coverExpr(dec, universe.at(src));
                for (unsigned t = 0; t + 1 < bound; t++) {
                    if (prop::evalOnTrace(cov, tr, t)) {
                        hits->insert({src, dec});
                        break;
                    }
                }
            }
        }
    }
}

std::vector<std::string>
SynthLc::implicitInputsOf(const Decision &d) const
{
    const Design &dsg = *inst.design;
    const DuvInfo &info = hx.duv();
    // Structures combinationally read by the destination μFSMs' (and the
    // source μFSM's) next-state logic.
    std::set<FsmId> fsms{hx.pl(d.src).fsm};
    for (PlId q : d.dst)
        fsms.insert(hx.pl(q).fsm);
    std::vector<SigId> roots;
    for (FsmId f : fsms) {
        for (SigId v : info.fsms[f].vars)
            roots.push_back(dsg.cell(v).args[0]);
    }
    auto srcs = dsg.combFanInSources(roots);

    std::set<SigId> excluded;
    excluded.insert(info.rs1Reg);
    excluded.insert(info.rs2Reg);
    for (SigId s : info.arfRegs)
        excluded.insert(s);
    for (SigId s : info.amemRegs)
        excluded.insert(s);
    for (const MicroFsm &f : info.fsms) {
        excluded.insert(f.pcr);
        for (SigId v : f.vars)
            excluded.insert(v);
    }
    std::set<std::string> names;
    for (SigId s : srcs) {
        const Cell &c = dsg.cell(s);
        if (c.op != Op::Reg || excluded.count(s))
            continue;
        const std::string &n = c.name;
        if (n.rfind("hx_", 0) == 0 || n.rfind("t_", 0) == 0 ||
            n.rfind("ift_", 0) == 0)
            continue;
        names.insert(n);
    }
    return {names.begin(), names.end()};
}

std::vector<LeakageSignature>
SynthLc::analyze(InstrId transponder, const std::vector<Decision> &decisions,
                 const std::vector<InstrId> &transmitters)
{
    const DuvInfo &info = hx.duv();

    // Group decisions by source and form each source's successor universe.
    std::map<PlId, std::vector<Decision>> by_src;
    std::map<PlId, std::vector<PlId>> universe;
    for (const Decision &d : decisions) {
        by_src[d.src].push_back(d);
        auto &u = universe[d.src];
        for (PlId q : d.dst)
            if (std::find(u.begin(), u.end(), q) == u.end())
                u.push_back(q);
    }

    // Only decision sources (>= 2 decisions) are analyzed (§IV-B).
    std::map<PlId, std::vector<Decision>> sources;
    for (auto &[src, ds] : by_src)
        if (ds.size() >= 2)
            sources[src] = ds;

    // Enumerate the (transmitter, operand, assumption) batches in the
    // canonical order; every batch is independent of every other.
    struct Batch
    {
        InstrId t;
        Operand op;
        TxType type;
    };
    std::vector<Batch> batches;
    for (InstrId t : transmitters) {
        const InstrSpec &spec = info.instrs[t];
        for (Operand op : {Operand::Rs1, Operand::Rs2}) {
            if (op == Operand::Rs1 && !spec.usesRs1)
                continue;
            if (op == Operand::Rs2 && !spec.usesRs2)
                continue;
            if (cfg.testIntrinsic && t == transponder)
                batches.push_back({t, op, TxType::Intrinsic});
            if (cfg.testDynamicOlder)
                batches.push_back({t, op, TxType::DynamicOlder});
            if (cfg.testDynamicYounger)
                batches.push_back({t, op, TxType::DynamicYounger});
            if (cfg.testStatic)
                batches.push_back({t, op, TxType::Static});
        }
    }

    obs::Span span("slc-analyze", "slc");
    span.arg("transponder", transponder);
    span.arg("batches", batches.size());

    // Phase A: taint-simulation pre-filtering. The batches are pure
    // functions of their parameters and write index-distinct hit sets,
    // so they run concurrently on the pool's workers; the simHits tally
    // is folded in serially afterwards.
    std::vector<std::set<std::pair<PlId, Decision>>> hits(batches.size());
    {
        obs::Span sim_span("slc-sim-filter", "slc");
        sim_span.arg("batches", batches.size());
        std::atomic<uint64_t> done{0};
        pool_.parallelFor(batches.size(), [&](size_t k) {
            simBatch(transponder, batches[k].t, batches[k].op,
                     batches[k].type, sources, universe, &hits[k]);
            obs::progress("slc:sim-filter", done.fetch_add(1) + 1,
                          batches.size(),
                          info.instrs[transponder].name);
        });
    }
    uint64_t batch_hits = 0;
    for (const auto &h : hits)
        batch_hits += h.size();
    stats_.simHits += batch_hits;
    if (obs::enabled())
        obs::Registry::global()
            .counter("slc.sim_hits", {{"design", hx.design().name()}})
            .add(batch_hits);

    // Phase B: the decision_taint covers the simulations did not
    // discharge. All of them — across every batch — are mutually
    // independent, so they go through the pool as one batch; verdicts
    // are tallied in submission order.
    std::vector<exec::Query> qs;
    for (size_t k = 0; k < batches.size(); k++) {
        for (auto &[src, ds] : sources) {
            for (const Decision &d : ds) {
                if (hits[k].count({src, d}))
                    continue;
                qs.push_back(exec::Query{
                    coverExpr(d, universe[src]),
                    queryAssumes(transponder, batches[k].t, batches[k].op,
                                 batches[k].type, src),
                    -1});
            }
        }
    }
    span.arg("probes", qs.size());
    if (obs::enabled())
        obs::Registry::global()
            .counter("slc.probes", {{"design", hx.design().name()}})
            .add(qs.size());
    std::vector<bmc::CoverResult> rs = pool_.evalBatch(qs);

    // Per-(decision) tag accumulation, in the canonical batch order.
    std::map<std::pair<PlId, Decision>, std::vector<TransmitterInput>>
        tags;
    size_t pi = 0;
    for (size_t k = 0; k < batches.size(); k++) {
        for (auto &[src, ds] : sources) {
            for (const Decision &d : ds) {
                bool hit;
                if (hits[k].count({src, d})) {
                    hit = true;
                } else {
                    const bmc::CoverResult &r = rs[pi++];
                    stats_.queries++;
                    stats_.seconds += r.seconds;
                    switch (r.outcome) {
                      case bmc::Outcome::Reachable:
                        stats_.reachable++;
                        hit = true;
                        break;
                      case bmc::Outcome::Unreachable:
                        stats_.unreachable++;
                        hit = false;
                        break;
                      default:
                        stats_.undetermined++;
                        hit = cfg.undeterminedAsReachable;
                        break;
                    }
                }
                if (hit)
                    tags[{src, d}].push_back(
                        {batches[k].t, batches[k].op, batches[k].type});
            }
        }
    }
    rmp_assert(pi == rs.size(), "probe/result count mismatch");

    std::vector<LeakageSignature> out;
    for (auto &[src, ds] : sources) {
        LeakageSignature sig;
        sig.transponder = transponder;
        sig.src = src;
        size_t tagged_decisions = 0;
        for (const Decision &d : ds) {
            TaggedDecision td;
            td.decision = d;
            td.tags = tags[{src, d}];
            if (!td.tags.empty())
                tagged_decisions++;
            sig.decisions.push_back(std::move(td));
        }
        // Footnote 3: at least two operand-dependent decisions are needed
        // to yield >1 observation as a function of operand values.
        if (tagged_decisions < 2)
            continue;
        std::set<TransmitterInput> ins;
        for (const auto &td : sig.decisions)
            for (const auto &ti : td.tags)
                ins.insert(ti);
        sig.inputs.assign(ins.begin(), ins.end());
        sig.implicitInputs = implicitInputsOf(ds[0]);
        out.push_back(std::move(sig));
    }
    if (span.active()) {
        span.arg("signatures", out.size());
        obs::Registry::global()
            .counter("slc.signatures",
                     {{"design", hx.design().name()},
                      {"transponder", info.instrs[transponder].name}})
            .add(out.size());
    }
    return out;
}

std::string
SynthLc::render(const LeakageSignature &sig) const
{
    const DuvInfo &info = hx.duv();
    std::ostringstream os;
    os << "dst " << info.instrs[sig.transponder].name << "_"
       << hx.plName(sig.src) << "(";
    for (size_t i = 0; i < sig.inputs.size(); i++) {
        const auto &ti = sig.inputs[i];
        if (i)
            os << ", ";
        os << info.instrs[ti.instr].name;
        switch (ti.type) {
          case TxType::Intrinsic: os << "^N"; break;
          case TxType::DynamicOlder: os << "^D_O"; break;
          case TxType::DynamicYounger: os << "^D_Y"; break;
          case TxType::Static: os << "^S"; break;
        }
        os << " i" << i << "." << operandName(ti.op);
    }
    os << ") -> one of {";
    for (size_t i = 0; i < sig.decisions.size(); i++) {
        if (i)
            os << " | ";
        os << "{";
        const auto &dst = sig.decisions[i].decision.dst;
        for (size_t j = 0; j < dst.size(); j++) {
            if (j)
                os << ",";
            os << hx.plName(dst[j]);
        }
        os << "}";
    }
    os << "}";
    if (!sig.implicitInputs.empty()) {
        os << "  // implicit: ";
        for (size_t i = 0; i < sig.implicitInputs.size(); i++) {
            if (i)
                os << ", ";
            os << sig.implicitInputs[i];
        }
    }
    return os.str();
}

} // namespace rmp::slc
