/**
 * @file
 * SynthLC: synthesizing formally verified leakage signatures (§IV-D, §V-C).
 *
 * Given the decisions RTL2MμPATH uncovered for a candidate transponder,
 * SynthLC runs a symbolic information-flow analysis on the IFT-instrumented
 * DUV: for every (decision, transmitter, operand, assumption) combination
 * it evaluates the paper's decision_taint cover — taint is introduced at
 * the transmitter's operand register while the transmitter occupies the
 * issue stage, and the cover looks for an execution where the transponder
 * exhibits the decision with tainted destination μFSMs.
 *
 * The four assumption schemes of Fig. 7 classify transmitters as
 * intrinsic (1), older dynamic (2a), younger dynamic (2b), or static (3);
 * the static scheme uses the sticky-taint flush plane (ift).
 *
 * A leakage signature is constructed for decision source src when at
 * least two of the transponder's decisions at src are transmitter
 * operand-dependent (footnote 3).
 */

#ifndef SYNTHLC_SYNTHLC_HH
#define SYNTHLC_SYNTHLC_HH

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "bmc/engine.hh"
#include "designs/harness.hh"
#include "exec/engine_pool.hh"
#include "ift/instrument.hh"
#include "uhb/graph.hh"

namespace rmp::slc
{

/** Transmitter typing (§IV-C). */
enum class TxType : uint8_t
{
    Intrinsic,      ///< the transponder itself (Assumption 1)
    DynamicOlder,   ///< older in-flight instruction (Assumption 2a)
    DynamicYounger, ///< younger in-flight instruction (Assumption 2b);
                    ///< flags susceptibility to speculative interference
    Static,         ///< completed before the transponder (Assumption 3)
};

const char *txTypeName(TxType t);

/** Transmitter operand under test. */
enum class Operand : uint8_t { Rs1, Rs2 };

const char *operandName(Operand o);

/** One typed explicit input to a leakage function. */
struct TransmitterInput
{
    uhb::InstrId instr = 0;
    Operand op = Operand::Rs1;
    TxType type = TxType::Intrinsic;

    bool
    operator<(const TransmitterInput &o) const
    {
        return std::tie(instr, op, type) < std::tie(o.instr, o.op, o.type);
    }
    bool
    operator==(const TransmitterInput &o) const
    {
        return instr == o.instr && op == o.op && type == o.type;
    }
};

/** A decision plus the transmitter inputs it was proven to depend on. */
struct TaggedDecision
{
    uhb::Decision decision;
    std::vector<TransmitterInput> tags;
};

/**
 * A leakage signature (§IV-D): the function name (transponder + decision
 * source), typed transmitters (explicit inputs) with their unsafe
 * operands, decision destinations (the output range), and the implicit
 * inputs (microarchitectural structures read by the path selector).
 */
struct LeakageSignature
{
    uhb::InstrId transponder = 0;
    uhb::PlId src = uhb::kNoPl;
    /** All decisions at src (the output range), with per-decision tags. */
    std::vector<TaggedDecision> decisions;
    /** Union of tags: the typed explicit inputs. */
    std::vector<TransmitterInput> inputs;
    /** Names of microarchitectural structures read by the selector. */
    std::vector<std::string> implicitInputs;

    /** Number of distinct decision destinations (output range size). */
    size_t outputRange() const { return decisions.size(); }
};

/** Configuration. */
struct SynthLcConfig
{
    sat::SatBudget budget{};
    bool undeterminedAsReachable = false;
    /** Unrolling bound; 0 = the DUV's completeness bound. */
    unsigned bound = 0;
    /** Assumption schemes to evaluate (all four by default). */
    bool testIntrinsic = true;
    bool testDynamicOlder = true;
    bool testDynamicYounger = true;
    bool testStatic = true;
    /**
     * Randomized taint-simulation runs per (transmitter, operand,
     * assumption) batch. Each run executes the IFT-instrumented design
     * with the batch's mark placement, taint introduction, and sticky
     * mode; a run whose trace satisfies every assume of the corresponding
     * decision_taint query and matches its cover is a sound Reachable
     * verdict with a concrete witness, so only the misses go to the BMC
     * engine (semi-formal mode, as in rtl2mupath/sim_explore.hh).
     * 0 disables simulation pre-filtering.
     */
    unsigned simRuns = 160;
    uint64_t simSeed = 7;
    /** Backend for compiled witness replay
     *  (bmc::EngineConfig::simBackend). */
    sim::SimBackend simBackend = sim::SimBackend::Tape;
    /**
     * Worker threads for parallel probe evaluation and taint simulation.
     * 0 = hardware_concurrency(). Results are identical for every value
     * (DESIGN.md §"Parallel evaluation").
     */
    unsigned jobs = 0;
    /** Engine lanes (0 = exec::EnginePool::kDefaultLanes). */
    unsigned lanes = 0;
    /** Unroll only each query's sequential cone of influence (see
     *  r2m::SynthesisConfig::coiPruning). */
    bool coiPruning = false;
    /**
     * Statically discharge covers refuted by the absint fixpoint over
     * the *instrumented* design (see r2m::SynthesisConfig::staticPrune).
     * Facts are sharpened with the μFSM state registers' reachable sets;
     * taint-plane registers reset to 0 and widen through taint
     * introduction, so a statically-zero taint sink refutes its
     * decision_taint cover without a solver call.
     */
    bool staticPrune = true;
    /** Audit Reachable verdicts by simulator witness replay
     *  (bmc::EngineConfig::auditReplay). */
    bool auditReplay = false;
    /** Audit Unreachable verdicts against the solver's DRAT trace
     *  (bmc::EngineConfig::auditProof). */
    bool auditProof = false;
};

/** Aggregate statistics for §VII-B3 reporting. */
struct SynthLcStats
{
    uint64_t queries = 0;      ///< BMC decision_taint covers evaluated
    uint64_t reachable = 0;
    uint64_t unreachable = 0;
    uint64_t undetermined = 0;
    uint64_t simHits = 0;      ///< covers discharged by taint simulation
    double seconds = 0.0;
};

/** The analysis driver; one instance per harnessed DUV. */
class SynthLc
{
  public:
    SynthLc(const designs::Harness &harness,
            const SynthLcConfig &config = {});

    /**
     * Analyze one candidate transponder: evaluate decision_taint covers
     * for each decision against each candidate transmitter/operand under
     * the enabled assumption schemes, and assemble leakage signatures.
     */
    std::vector<LeakageSignature>
    analyze(uhb::InstrId transponder,
            const std::vector<uhb::Decision> &decisions,
            const std::vector<uhb::InstrId> &transmitters);

    const SynthLcStats &stats() const { return stats_; }
    /** Underlying engine pool (aggregate SAT/cache statistics). */
    const exec::EnginePool &pool() const { return pool_; }
    const designs::Harness &harness() const { return hx; }
    const ift::Instrumented &instrumented() const { return inst; }

    /** Render a leakage signature in the style of Fig. 5. */
    std::string render(const LeakageSignature &sig) const;

  private:
    /** The decision_taint cover sequence (shared by sim and BMC). */
    prop::ExprRef coverExpr(const uhb::Decision &d,
                            const std::vector<uhb::PlId> &succ_universe)
        const;
    /** The full assume set for one query (shared by sim and BMC). */
    std::vector<prop::ExprRef> queryAssumes(uhb::InstrId transponder,
                                            uhb::InstrId transmitter,
                                            Operand op, TxType type,
                                            uhb::PlId src) const;

    /**
     * Run one batch of randomized taint simulations for (transmitter,
     * op, type) and record which decisions' covers were matched by a
     * trace that satisfies all of that query's assumes. Pure with
     * respect to *this (statistics are tallied by the caller), so
     * independent batches may run concurrently.
     */
    void simBatch(uhb::InstrId transponder, uhb::InstrId transmitter,
                  Operand op, TxType type,
                  const std::map<uhb::PlId, std::vector<uhb::Decision>>
                      &by_src,
                  const std::map<uhb::PlId, std::vector<uhb::PlId>>
                      &universe,
                  std::set<std::pair<uhb::PlId, uhb::Decision>> *hits)
        const;

    std::vector<std::string> implicitInputsOf(const uhb::Decision &d) const;

    prop::ExprRef taintIntro(Operand op) const;
    prop::ExprRef assumptionExpr(TxType type, uhb::PlId src) const;

    const designs::Harness &hx;
    SynthLcConfig cfg;
    ift::Instrumented inst;
    /**
     * Per-μFSM "any state/pcr shadow bit set" wires. Built before the
     * engine so its eager unrolling covers them.
     */
    std::vector<SigId> fsmTaint;
    exec::EnginePool pool_;
    std::vector<prop::ExprRef> base;
    SynthLcStats stats_;
};

} // namespace rmp::slc

#endif // SYNTHLC_SYNTHLC_HH
