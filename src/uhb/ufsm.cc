#include "uhb/ufsm.hh"

namespace rmp::uhb
{

std::string
plLabel(const MicroFsm &fsm, const PerfLoc &pl,
        const std::vector<std::string> &state_aliases)
{
    (void)state_aliases;
    for (const auto &[vals, label] : fsm.stateNames)
        if (vals == pl.state)
            return label;
    // Single implicit occupied state: the μFSM name is the label.
    bool trivial = fsm.vars.size() == 1 && pl.state.size() == 1 &&
                   pl.state[0] == 1 && fsm.idleStates.size() == 1 &&
                   fsm.idleStates[0].size() == 1 &&
                   fsm.idleStates[0][0] == 0;
    if (trivial)
        return fsm.name;
    std::string s = fsm.name + "{";
    for (size_t i = 0; i < pl.state.size(); i++) {
        if (i)
            s += ",";
        s += std::to_string(pl.state[i]);
    }
    return s + "}";
}

} // namespace rmp::uhb
