/**
 * @file
 * Cycle-accurate μHB graphs, μPATHs, and decisions (§III-B, §IV-B).
 *
 * A node is (PL, cycle): the instruction updating that PL's state subset in
 * that specific cycle; edges are one-cycle happens-before relations. A
 * μPATH additionally records the exact Reachable PL Set it concretizes,
 * revisit classifications (for Row(1)/Row(l) summarization), and the
 * happens-before edges verified against combinational connectivity.
 */

#ifndef UHB_GRAPH_HH
#define UHB_GRAPH_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "uhb/duv.hh"
#include "uhb/ufsm.hh"

namespace rmp::uhb
{

/** How a PL may be revisited within executions of one Reachable PL Set. */
enum class Revisit : uint8_t
{
    None,          ///< visited at most once
    Consecutive,   ///< may be revisited in consecutive cycles (Row(1)/(l))
    NonConsecutive,///< may be revisited after a gap
    Both,
};

const char *revisitName(Revisit r);

/** A verified happens-before edge between two cycle-accurate nodes. */
struct HbEdge
{
    PlId from = kNoPl;
    unsigned fromCycle = 0;
    PlId to = kNoPl;
    unsigned toCycle = 0;
};

/**
 * One synthesized μPATH: a concrete cycle-accurate execution shape of one
 * instruction, plus set-level facts that hold across all executions
 * exhibiting the same Reachable PL Set.
 */
struct UPath
{
    InstrId instr = 0;

    /**
     * Concrete schedule from the witness execution: schedule[t] = PLs the
     * instruction occupies in relative cycle t (t=0 is its first visit).
     */
    std::vector<std::vector<PlId>> schedule;

    /** The exact Reachable PL Set this μPATH concretizes. */
    std::set<PlId> plSet;

    /** Revisit classification per PL in plSet (set-level, verified). */
    std::map<PlId, Revisit> revisit;

    /**
     * Achievable consecutive-visit counts per PL (§V-B6 mode (i));
     * populated only when revisit-count synthesis is enabled.
     */
    std::map<PlId, std::vector<unsigned>> revisitCounts;

    /** Verified HB edges over the concrete schedule. */
    std::vector<HbEdge> edges;

    /** Overall latency: number of cycles from first visit to last. */
    unsigned latency() const
    {
        return static_cast<unsigned>(schedule.size());
    }
};

/**
 * A decision (src, dst): the instruction visits src one cycle before
 * exactly the PLs in dst (§IV-B). dst is kept sorted for set semantics.
 */
struct Decision
{
    PlId src = kNoPl;
    std::vector<PlId> dst;

    bool
    operator<(const Decision &o) const
    {
        if (src != o.src)
            return src < o.src;
        return dst < o.dst;
    }
    bool
    operator==(const Decision &o) const
    {
        return src == o.src && dst == o.dst;
    }
};

/** All μPATHs plus all decisions for one instruction on one DUV. */
struct InstrPaths
{
    InstrId instr = 0;
    std::vector<UPath> paths;
    std::vector<Decision> decisions;
    /** Decision sources (src PLs appearing in >= 2 distinct decisions). */
    std::vector<PlId> decisionSources() const;
};

/**
 * Render a μPATH as an ASCII grid in the style of the paper's figures:
 * rows are PL labels, columns are cycles, '*' marks a visit.
 */
std::string renderUPath(const UPath &path,
                        const std::vector<std::string> &pl_names);

/** Render a decision like "(issue, {LSQ, ldStall})". */
std::string renderDecision(const Decision &d,
                           const std::vector<std::string> &pl_names);

/**
 * Render a μPATH as a Graphviz digraph in the visual style of the
 * paper's μHB figures: one row per PL, one column per cycle, solid
 * happens-before edges. Decision sources/destinations can be highlighted
 * (orange/blue, as in the paper) by passing the instruction's decisions.
 */
std::string renderUPathDot(const UPath &path,
                           const std::vector<std::string> &pl_names,
                           const std::vector<Decision> &decisions = {});

} // namespace rmp::uhb

#endif // UHB_GRAPH_HH
