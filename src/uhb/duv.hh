/**
 * @file
 * Design-under-verification metadata: the user annotations that SYNTHLC and
 * RTL2MμPATH require (§V-A and Table II) — IFR, μFSMs with PCRs, commit
 * signal, operand registers, ARF/AMEM, plus the instruction encoding list.
 */

#ifndef UHB_DUV_HH
#define UHB_DUV_HH

#include <memory>
#include <string>
#include <vector>

#include "rtlir/design.hh"
#include "uhb/ufsm.hh"

namespace rmp::uhb
{

/** Coarse instruction classes used by contract derivation (Table I). */
enum class InstrClass : uint8_t
{
    Alu,     ///< single-cycle integer ops (incl. LUI/AUIPC)
    Mul,     ///< multiplier unit ops
    DivRem,  ///< serial divider ops (variable latency)
    Load,
    Store,
    Branch,  ///< conditional branches (explicit branches in STT terms)
    Jump,    ///< JAL/JALR
};

const char *instrClassName(InstrClass c);

/** One implemented instruction: its name, encoding, and class. */
struct InstrSpec
{
    std::string name;   ///< e.g. "DIV", "LW", "BEQ"
    uint64_t opcode = 0;///< value of the IFR opcode field
    InstrClass cls = InstrClass::Alu;
    bool usesRs1 = true;
    bool usesRs2 = true;
};

/** Index into DuvInfo::instrs. */
using InstrId = uint32_t;

/**
 * Everything the tools need to know about a DUV.
 *
 * The design itself plus the §V-A metadata. The verification harness
 * (designs/harness) consumes this and produces the augmented design with
 * IUV/transmitter tracking and visited flags.
 */
struct DuvInfo
{
    std::string name;
    std::shared_ptr<Design> design;

    /** @name Frontend interface (driven by the model checker, §V-B) */
    /// @{
    SigId ifr = kNoSig;        ///< instruction fetch register (an input)
    SigId fetchValid = kNoSig; ///< input: IFR holds an instruction
    SigId fetchReady = kNoSig; ///< wire: core accepts the instruction
    SigId fetchPc = kNoSig;    ///< input: PC of the fetched instruction
    /// @}

    /** Commit signal and the PC of the committing instruction. */
    SigId commit = kNoSig;
    SigId commitPc = kNoSig;

    /**
     * Issue/register-read stage identification (taint-introduction point,
     * §V-C1): the stage-occupied wire and the PCR of the occupant.
     */
    SigId issueOccupied = kNoSig;
    SigId issuePcr = kNoSig;

    /** All μFSMs (PCR + vars + idle states). */
    std::vector<MicroFsm> fsms;

    /** Opcode field position within the IFR word. */
    unsigned opcodeLo = 0, opcodeWidth = 0;

    /** Operand-field layout within the IFR word (width 0 = absent). */
    struct EncodingLayout
    {
        unsigned rdLo = 0, rdW = 0;
        unsigned rs1Lo = 0, rs1W = 0;
        unsigned rs2Lo = 0, rs2W = 0;
        unsigned immLo = 0, immW = 0;
    } layout;

    /** Implemented instructions. */
    std::vector<InstrSpec> instrs;

    /** Encode an instruction word for simulation-based tests/examples. */
    uint64_t encode(const std::string &name, uint64_t rd = 0,
                    uint64_t rs1 = 0, uint64_t rs2 = 0,
                    uint64_t imm = 0) const;

    /** @name SynthLC inputs (§V-A) */
    /// @{
    /** Operand registers at issue/register-read (taint introduction). */
    SigId rs1Reg = kNoSig, rs2Reg = kNoSig;
    /** Architectural register file words (taint blocking). */
    std::vector<SigId> arfRegs;
    /** Architectural main memory words (taint blocking). */
    std::vector<SigId> amemRegs;
    /**
     * Persistent microarchitectural state (caches, buffers that survive an
     * instruction's dematerialization): retains taint across the
     * Assumption-3 sticky-taint flush (§V-C1).
     */
    std::vector<SigId> persistentRegs;
    /// @}

    /**
     * Completeness bound: the number of cycles within which any single
     * instruction provably drains from the pipeline, plus the context
     * window. UNSAT covers up to this bound are reported Unreachable
     * (DESIGN.md §5).
     */
    unsigned completenessBound = 24;

    /** PCs are counters of this width in the harness. */
    unsigned pcWidth = 6;

    /** Find an instruction by name; panics if absent. */
    const InstrSpec &instr(const std::string &name) const;
    InstrId instrId(const std::string &name) const;
};

} // namespace rmp::uhb

#endif // UHB_DUV_HH
