/**
 * @file
 * μFSMs and performing locations (PLs), the paper's §III-C formalism.
 *
 * A μFSM is a tuple <iir, vars>: an instruction-identifying register (in
 * this reproduction always a PC register, as RTL2MμPATH requires, §V-A)
 * plus the state-variable registers whose valuation grants the occupying
 * instruction exclusive write access to a subset of design state. A PL is
 * a <μfsm, state> pair where state is a valid non-idle valuation of vars.
 */

#ifndef UHB_UFSM_HH
#define UHB_UFSM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rtlir/design.hh"

namespace rmp::uhb
{

/** One μFSM: <pcr, vars> with its idle valuations. */
struct MicroFsm
{
    /** Short name used in μHB row labels (e.g. "ID", "mulU", "scbCmt"). */
    std::string name;
    /** The PC register (the IIR in this reproduction). */
    SigId pcr = kNoSig;
    /** State-variable registers, in a fixed order. */
    std::vector<SigId> vars;
    /**
     * Idle valuations of vars (one vector per idle state, parallel to
     * vars). A PL exists for every non-idle valuation.
     */
    std::vector<std::vector<uint64_t>> idleStates;
    /**
     * Optional labels for specific non-idle valuations, e.g. the retire
     * μFSM's states "scbCmt"/"scbExcp". Unnamed states render as
     * name{v0,v1,...}.
     */
    std::vector<std::pair<std::vector<uint64_t>, std::string>> stateNames;
};

/** Index of a μFSM within a DUV's metadata. */
using FsmId = uint32_t;

/** A performing location: a μFSM in one specific non-idle state. */
struct PerfLoc
{
    FsmId fsm = 0;
    /** Valuation of the μFSM's vars, parallel to MicroFsm::vars. */
    std::vector<uint64_t> state;

    bool
    operator==(const PerfLoc &o) const
    {
        return fsm == o.fsm && state == o.state;
    }
};

/** Index of a PL within a DUV's enumerated PL universe. */
using PlId = uint32_t;

constexpr PlId kNoPl = static_cast<PlId>(-1);

/**
 * Render a PL label. Single-state μFSMs render as just the μFSM name;
 * multi-state ones as name.sN or a user-supplied state alias.
 */
std::string plLabel(const MicroFsm &fsm, const PerfLoc &pl,
                    const std::vector<std::string> &state_aliases = {});

} // namespace rmp::uhb

#endif // UHB_UFSM_HH
