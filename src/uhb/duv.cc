#include "uhb/duv.hh"

#include "common/logging.hh"

namespace rmp::uhb
{

const char *
instrClassName(InstrClass c)
{
    switch (c) {
      case InstrClass::Alu: return "alu";
      case InstrClass::Mul: return "mul";
      case InstrClass::DivRem: return "div/rem";
      case InstrClass::Load: return "load";
      case InstrClass::Store: return "store";
      case InstrClass::Branch: return "branch";
      case InstrClass::Jump: return "jump";
    }
    return "?";
}

const InstrSpec &
DuvInfo::instr(const std::string &name) const
{
    return instrs[instrId(name)];
}

uint64_t
DuvInfo::encode(const std::string &name, uint64_t rd, uint64_t rs1,
                uint64_t rs2, uint64_t imm) const
{
    const InstrSpec &spec = instr(name);
    uint64_t w = spec.opcode << opcodeLo;
    auto put = [&](uint64_t val, unsigned lo, unsigned width) {
        if (width == 0) {
            rmp_assert(val == 0, "field not present in %s encoding",
                       this->name.c_str());
            return;
        }
        rmp_assert(val <= BitVec::maskOf(width), "field value too wide");
        w |= val << lo;
    };
    put(rd, layout.rdLo, layout.rdW);
    put(rs1, layout.rs1Lo, layout.rs1W);
    put(rs2, layout.rs2Lo, layout.rs2W);
    put(imm, layout.immLo, layout.immW);
    return w;
}

InstrId
DuvInfo::instrId(const std::string &name) const
{
    for (size_t i = 0; i < instrs.size(); i++)
        if (instrs[i].name == name)
            return static_cast<InstrId>(i);
    rmp_panic("unknown instruction %s on %s", name.c_str(), this->name.c_str());
}

} // namespace rmp::uhb
