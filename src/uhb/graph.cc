#include "uhb/graph.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace rmp::uhb
{

const char *
revisitName(Revisit r)
{
    switch (r) {
      case Revisit::None: return "none";
      case Revisit::Consecutive: return "consecutive";
      case Revisit::NonConsecutive: return "non-consecutive";
      case Revisit::Both: return "both";
    }
    return "?";
}

std::vector<PlId>
InstrPaths::decisionSources() const
{
    std::map<PlId, std::set<std::vector<PlId>>> by_src;
    for (const auto &d : decisions)
        by_src[d.src].insert(d.dst);
    std::vector<PlId> out;
    for (const auto &[src, dsts] : by_src)
        if (dsts.size() >= 2)
            out.push_back(src);
    return out;
}

std::string
renderUPath(const UPath &path, const std::vector<std::string> &pl_names)
{
    // Collect rows in order of first visit.
    std::vector<PlId> rows;
    for (const auto &cyc : path.schedule)
        for (PlId p : cyc)
            if (std::find(rows.begin(), rows.end(), p) == rows.end())
                rows.push_back(p);
    size_t label_w = 0;
    for (PlId p : rows)
        label_w = std::max(label_w, pl_names[p].size());

    std::ostringstream os;
    os << "cycle:";
    os << std::string(label_w > 5 ? label_w - 5 : 1, ' ');
    for (size_t t = 0; t < path.schedule.size(); t++)
        os << (t < 10 ? "  " : " ") << t;
    os << '\n';
    for (PlId p : rows) {
        const std::string &name = pl_names[p];
        os << name << std::string(label_w - name.size() + 1, ' ');
        for (size_t t = 0; t < path.schedule.size(); t++) {
            bool vis = std::find(path.schedule[t].begin(),
                                 path.schedule[t].end(),
                                 p) != path.schedule[t].end();
            os << "  " << (vis ? '*' : '.');
        }
        auto rv = path.revisit.find(p);
        if (rv != path.revisit.end() && rv->second != Revisit::None)
            os << "   [" << revisitName(rv->second) << "]";
        os << '\n';
    }
    return os.str();
}

std::string
renderUPathDot(const UPath &path, const std::vector<std::string> &pl_names,
               const std::vector<Decision> &decisions)
{
    std::set<PlId> srcs;
    std::set<PlId> dsts;
    for (const auto &d : decisions) {
        srcs.insert(d.src);
        dsts.insert(d.dst.begin(), d.dst.end());
    }
    auto node_id = [](PlId p, unsigned t) {
        return "n" + std::to_string(p) + "_" + std::to_string(t);
    };
    std::ostringstream os;
    os << "digraph upath {\n  rankdir=LR;\n  node [shape=circle, "
          "fontsize=10];\n";
    // Nodes per (PL, cycle).
    for (unsigned t = 0; t < path.schedule.size(); t++) {
        for (PlId p : path.schedule[t]) {
            const char *color = srcs.count(p)   ? "orange"
                                : dsts.count(p) ? "lightblue"
                                                : "white";
            os << "  " << node_id(p, t) << " [label=\"" << pl_names[p]
               << "\\n@" << t << "\", style=filled, fillcolor=" << color
               << "];\n";
        }
    }
    for (const auto &e : path.edges) {
        os << "  " << node_id(e.from, e.fromCycle) << " -> "
           << node_id(e.to, e.toCycle) << ";\n";
    }
    os << "}\n";
    return os.str();
}

std::string
renderDecision(const Decision &d, const std::vector<std::string> &pl_names)
{
    std::string s = "(" + pl_names[d.src] + ", {";
    for (size_t i = 0; i < d.dst.size(); i++) {
        if (i)
            s += ", ";
        s += pl_names[d.dst[i]];
    }
    return s + "})";
}

} // namespace rmp::uhb
