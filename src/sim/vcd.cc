#include "sim/vcd.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace rmp
{

namespace
{

/** VCD identifier code for the n-th dumped signal. */
std::string
vcdId(size_t n)
{
    std::string s;
    do {
        s += static_cast<char>('!' + n % 94);
        n /= 94;
    } while (n);
    return s;
}

std::string
vcdBits(uint64_t value, unsigned width)
{
    std::string s;
    for (int i = static_cast<int>(width) - 1; i >= 0; i--)
        s += ((value >> i) & 1) ? '1' : '0';
    return s;
}

} // anonymous namespace

std::string
traceToVcd(const Design &design, const SimTrace &trace,
           const std::vector<SigId> &signals)
{
    std::vector<SigId> dump = signals;
    if (dump.empty()) {
        for (SigId i = 0; i < design.numCells(); i++)
            if (!design.cell(i).name.empty())
                dump.push_back(i);
    }
    std::ostringstream os;
    os << "$date rtl2mupath reproduction $end\n"
       << "$version rmp::traceToVcd $end\n"
       << "$timescale 1ns $end\n"
       << "$scope module " << design.name() << " $end\n";
    for (size_t i = 0; i < dump.size(); i++) {
        const Cell &c = design.cell(dump[i]);
        std::string name = c.name;
        for (auto &ch : name)
            if (ch == ' ' || ch == '[' || ch == ']')
                ch = '_';
        os << "$var wire " << c.width << " " << vcdId(i) << " " << name
           << " $end\n";
    }
    os << "$upscope $end\n$enddefinitions $end\n";
    std::vector<uint64_t> prev(dump.size(), ~0ULL);
    for (size_t t = 0; t < trace.numCycles(); t++) {
        os << "#" << t << "\n";
        for (size_t i = 0; i < dump.size(); i++) {
            uint64_t v = trace.value(t, dump[i]);
            if (v == prev[i])
                continue;
            prev[i] = v;
            unsigned w = design.cell(dump[i]).width;
            if (w == 1)
                os << (v ? '1' : '0') << vcdId(i) << "\n";
            else
                os << "b" << vcdBits(v, w) << " " << vcdId(i) << "\n";
        }
    }
    os << "#" << trace.numCycles() << "\n";
    return os.str();
}

bool
writeVcd(const Design &design, const SimTrace &trace,
         const std::string &path, const std::vector<SigId> &signals)
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << traceToVcd(design, trace, signals);
    return static_cast<bool>(f);
}

} // namespace rmp
