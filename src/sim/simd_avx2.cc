/**
 * @file
 * AVX2 tape kernel: four 64-bit lanes per __m256i.
 *
 * This is the only translation unit compiled with -mavx2 (the build adds
 * the flag per-source when the compiler supports it and defines
 * RMP_SIMD_AVX2_TU); simd.cc calls in here only after a runtime
 * __builtin_cpu_supports("avx2") check, so the rest of the binary stays
 * runnable on baseline x86-64. AVX2 gives native forms for everything
 * the SSE2 kernel had to compose or scalarize: 64-bit compares, per-lane
 * variable shifts (whose count >= 64 -> 0 semantics exactly match the
 * tape's), and byte blends for Mux.
 */

#include "sim/simd_kernels.hh"

#if defined(RMP_SIMD_AVX2_TU) && defined(__AVX2__)

#include <immintrin.h>

namespace rmp::sim::detail
{

namespace
{

struct VAvx2
{
    static constexpr unsigned W = 4;
    __m256i x;

    static VAvx2
    load(const uint64_t *p)
    {
        return {_mm256_loadu_si256(reinterpret_cast<const __m256i *>(p))};
    }
    void
    store(uint64_t *p) const
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), x);
    }
    static VAvx2 splat(uint64_t v)
    {
        return {_mm256_set1_epi64x(static_cast<long long>(v))};
    }

    static VAvx2 band(const VAvx2 &a, const VAvx2 &b)
    {
        return {_mm256_and_si256(a.x, b.x)};
    }
    static VAvx2 bor(const VAvx2 &a, const VAvx2 &b)
    {
        return {_mm256_or_si256(a.x, b.x)};
    }
    static VAvx2 bxor(const VAvx2 &a, const VAvx2 &b)
    {
        return {_mm256_xor_si256(a.x, b.x)};
    }
    static VAvx2 notm(const VAvx2 &a, const VAvx2 &m)
    {
        return {_mm256_andnot_si256(a.x, m.x)}; // (~a) & m
    }
    static VAvx2 add(const VAvx2 &a, const VAvx2 &b)
    {
        return {_mm256_add_epi64(a.x, b.x)};
    }
    static VAvx2 sub(const VAvx2 &a, const VAvx2 &b)
    {
        return {_mm256_sub_epi64(a.x, b.x)};
    }
    static VAvx2
    mul(const VAvx2 &a, const VAvx2 &b)
    {
        // 64-bit product from 32x32->64 partials (hi*hi shifts out).
        __m256i lolo = _mm256_mul_epu32(a.x, b.x);
        __m256i lohi = _mm256_mul_epu32(a.x, _mm256_srli_epi64(b.x, 32));
        __m256i hilo = _mm256_mul_epu32(_mm256_srli_epi64(a.x, 32), b.x);
        __m256i mid = _mm256_slli_epi64(_mm256_add_epi64(lohi, hilo), 32);
        return {_mm256_add_epi64(lolo, mid)};
    }
    static VAvx2
    eq01(const VAvx2 &a, const VAvx2 &b)
    {
        return {_mm256_srli_epi64(_mm256_cmpeq_epi64(a.x, b.x), 63)};
    }
    static VAvx2
    ne01(const VAvx2 &a)
    {
        __m256i z = _mm256_cmpeq_epi64(a.x, _mm256_setzero_si256());
        return {_mm256_andnot_si256(z, _mm256_set1_epi64x(1))};
    }
    static VAvx2
    ult01(const VAvx2 &a, const VAvx2 &b)
    {
        // Unsigned < from the signed compare by flipping the sign bit.
        const __m256i bias = _mm256_set1_epi64x(
            static_cast<long long>(0x8000000000000000ULL));
        __m256i lt = _mm256_cmpgt_epi64(_mm256_xor_si256(b.x, bias),
                                        _mm256_xor_si256(a.x, bias));
        return {_mm256_srli_epi64(lt, 63)};
    }
    static VAvx2
    shl(const VAvx2 &a, const VAvx2 &b)
    {
        // sllv: count >= 64 yields 0, exactly the tape's semantics.
        return {_mm256_sllv_epi64(a.x, b.x)};
    }
    static VAvx2
    shr(const VAvx2 &a, const VAvx2 &b)
    {
        return {_mm256_srlv_epi64(a.x, b.x)};
    }
    static VAvx2
    mux(const VAvx2 &s, const VAvx2 &b, const VAvx2 &c)
    {
        // blendv picks c where the (all-ones) s == 0 mask is set.
        __m256i z = _mm256_cmpeq_epi64(s.x, _mm256_setzero_si256());
        return {_mm256_blendv_epi8(b.x, c.x, z)};
    }
    static VAvx2
    shlc(const VAvx2 &a, unsigned s)
    {
        return {
            _mm256_sll_epi64(a.x, _mm_cvtsi32_si128(static_cast<int>(s)))};
    }
    static VAvx2
    shrc(const VAvx2 &a, unsigned s)
    {
        return {
            _mm256_srl_epi64(a.x, _mm_cvtsi32_si128(static_cast<int>(s)))};
    }
};

} // anonymous namespace

void
simdEvalOpsAvx2(const Tape &tp, uint64_t *vals, unsigned P)
{
    evalOpsVec<VAvx2>(tp, vals, P);
}

} // namespace rmp::sim::detail

#elif defined(RMP_SIMD_AVX2_TU)

// Flag was set but __AVX2__ is absent (unexpected toolchain): keep the
// symbol so simd.cc links, backed by the wide portable kernel.
namespace rmp::sim::detail
{
void
simdEvalOpsAvx2(const Tape &tp, uint64_t *vals, unsigned P)
{
    evalOpsVec<VWide>(tp, vals, P);
}
} // namespace rmp::sim::detail

#endif
