/**
 * @file
 * Public surface of the explicit-SIMD tape backend (DESIGN.md §3h).
 *
 * simdEvalOps() evaluates a tape's op program over the SoA value array
 * with platform vector kernels — one dispatch per levelized same-opcode
 * run instead of per op. ISA selection happens once per call:
 *
 *   P >= 4 and the CPU has AVX2  ->  4-lane AVX2 kernel (separate TU,
 *                                    only one compiled with -mavx2)
 *   P a multiple of the baseline ->  SSE2 / NEON / portable 4-lane
 *   otherwise (P in {1, 2})      ->  scalar kernel
 *
 * Bit-identical to the interpreted Simulator and the computed-goto tape
 * kernel by construction; the differential suites enforce it.
 */

#ifndef SIM_SIMD_HH
#define SIM_SIMD_HH

#include <cstdint>

#include "sim/tape.hh"

namespace rmp::sim
{

/** Evaluate @p tp's op program over @p P physical lanes of @p vals
 *  (vals[slot * P + lane]; P a power of two in [1, kMaxLanes]). */
void simdEvalOps(const Tape &tp, uint64_t *vals, unsigned P);

/** Name of the kernel simdEvalOps would pick for @p P physical lanes
 *  on this machine: "avx2", "sse2", "neon", "portable", or "scalar". */
const char *simdIsa(unsigned P);

} // namespace rmp::sim

#endif // SIM_SIMD_HH
