#include "sim/simd.hh"

#include "sim/simd_kernels.hh"

namespace rmp::sim
{

#if defined(RMP_SIMD_AVX2_TU)
namespace detail
{
/** Defined in simd_avx2.cc — the only TU compiled with -mavx2. */
void simdEvalOpsAvx2(const Tape &tp, uint64_t *vals, unsigned P);
} // namespace detail
#endif

namespace
{

bool
avx2Available()
{
#if defined(RMP_SIMD_AVX2_TU) && (defined(__GNUC__) || defined(__clang__)) \
    && (defined(__x86_64__) || defined(__i386__))
    static const bool ok = __builtin_cpu_supports("avx2");
    return ok;
#else
    return false;
#endif
}

} // anonymous namespace

void
simdEvalOps(const Tape &tp, uint64_t *vals, unsigned P)
{
#if defined(RMP_SIMD_AVX2_TU)
    if (P >= 4 && avx2Available()) {
        detail::simdEvalOpsAvx2(tp, vals, P);
        return;
    }
#endif
    if (P % detail::VWide::W == 0)
        detail::evalOpsVec<detail::VWide>(tp, vals, P);
    else
        detail::evalOpsVec<detail::VPort<1>>(tp, vals, P);
}

const char *
simdIsa(unsigned P)
{
    if (P >= 4 && avx2Available())
        return "avx2";
    if (P % detail::VWide::W == 0)
        return detail::kWideIsa;
    return "scalar";
}

} // namespace rmp::sim
