/**
 * @file
 * Per-design native codegen: the tape as straight-line C, compiled once
 * and dlopen'd (DESIGN.md §3h, "Backend selection").
 *
 * The op tape is a fixed program per (design, watch set, lane count) —
 * exactly the situation where static recompilation beats interpretation:
 * emitTapeC() prints each op as a block of plain C with the slot
 * offsets, masks, and lane count folded in as literals, the system C
 * compiler turns that into a shared object (vectorizing the fixed-trip
 * lane loops with full knowledge of -march=native), and BatchSim calls
 * the resulting function pointer with zero dispatch of any kind.
 *
 * Compiled objects are cached under $RMP_CACHE_DIR (default
 * ~/.cache/rmp), keyed by a fingerprint over the full op program + lane
 * count + emitter version. The load path is paranoid: the .so must
 * export the expected symbols AND report the expected fingerprint, or
 * it is unlinked and rebuilt (stale or corrupted cache entries can only
 * cost a recompile, never a wrong simulation). When no working compiler
 * is available, acquire() returns null and BatchSim falls back to the
 * SIMD interpreter — the native path is an accelerator, never a
 * requirement.
 */

#ifndef SIM_CODEGEN_HH
#define SIM_CODEGEN_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/tape.hh"

namespace rmp::sim
{

/** Bump when emitTapeC's output or ABI changes: the version feeds the
 *  fingerprint, so stale cache entries miss instead of mis-executing. */
inline constexpr uint32_t kNativeCodegenVersion = 1;

/** FNV-1a over the op program, slot/lane geometry, and emitter version.
 *  Two tapes with equal fingerprints produce identical native code. */
uint64_t tapeFingerprint(const Tape &tape, unsigned physLanes);

/** The tape as a self-contained C translation unit (exports
 *  rmp_tape_eval and rmp_tape_fingerprint). */
std::string emitTapeC(const Tape &tape, unsigned physLanes);

/** Cache directory: $RMP_CACHE_DIR, else ~/.cache/rmp, else a /tmp
 *  fallback. Created on first use. */
std::string nativeCacheDir();

/** True when the configured C compiler ($RMP_CC, default "cc") runs. */
bool nativeCompilerAvailable();

/** Lifetime counters for tests and the bench harness. */
struct NativeStats
{
    uint64_t memHits = 0;   ///< served from the in-process registry
    uint64_t diskHits = 0;  ///< loaded from a cached .so
    uint64_t compiles = 0;  ///< emitted + compiled fresh
    uint64_t rejected = 0;  ///< cache entries unlinked (stale/corrupt)
    uint64_t fallbacks = 0; ///< acquire() gave up (no compiler, ...)
};

/**
 * A loaded per-design native kernel. Holds the dlopen handle for its
 * lifetime; any number of BatchSim instances may share one kernel (the
 * eval function is pure w.r.t. everything but the passed value array).
 */
class NativeKernel
{
  public:
    /** void rmp_tape_eval(uint64_t *vals) — one full op-program pass. */
    using EvalFn = void (*)(uint64_t *);

    /**
     * Get the kernel for @p tape at @p physLanes lanes: from the
     * in-process registry, the on-disk cache, or a fresh compile, in
     * that order. Returns null when native execution is unavailable
     * (no compiler / compile failed) — callers must fall back.
     */
    static std::shared_ptr<const NativeKernel>
    acquire(const Tape &tape, unsigned physLanes);

    ~NativeKernel();
    NativeKernel(const NativeKernel &) = delete;
    NativeKernel &operator=(const NativeKernel &) = delete;

    EvalFn fn() const { return fn_; }
    uint64_t fingerprint() const { return fp_; }
    /** Path of the backing .so in the cache. */
    const std::string &path() const { return path_; }

    static NativeStats stats();
    static void resetStats();

  private:
    NativeKernel() = default;

    void *dl_ = nullptr;
    EvalFn fn_ = nullptr;
    uint64_t fp_ = 0;
    std::string path_;
};

} // namespace rmp::sim

#endif // SIM_CODEGEN_HH
