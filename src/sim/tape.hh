/**
 * @file
 * Op-tape compilation: lowering an elaborated netlist into a dense linear
 * program for the batched simulation engine (DESIGN.md §3h).
 *
 * compileTape() runs once per (design, watch set) and produces a Tape —
 * flat parallel arrays of opcode / destination slot / operand slots /
 * width masks, ordered by the design's combinational topological order —
 * that BatchSim then executes with a tight dispatch loop over contiguous
 * value arrays: no hash maps, no per-step Cell lookups, no virtual calls.
 *
 * Lowering performs several semantics-preserving simplifications:
 *
 *  - constant folding: cells whose transitive inputs are all Const
 *    collapse to a preloaded slot value and emit no op; distinct folded
 *    cells with equal values share one pooled slot;
 *  - dead-code pruning: combinational cells outside the register cone
 *    (every register's next-state function) and the caller's watch set
 *    emit nothing — their SigIds map to kNoSlot;
 *  - slot aliasing: cells that are the identity on one operand (Zext,
 *    And with all-ones, Or/Xor/Add with zero, shift/slice by zero, a
 *    Mux whose select folded), absorbed into a constant (And/Mul with
 *    zero, Or with all-ones), or duplicates of an already-emitted op
 *    tuple (CSE, commutative operands normalized) emit no op and share
 *    the surviving slot.
 *
 * Ops are emitted level by level (longest path from a register, input,
 * or constant), grouped by opcode within a level — any level order is a
 * valid evaluation order, and the grouping gives BatchSim's dispatch
 * loop long same-opcode runs to amortize its indirect jumps over.
 *
 * The interpreted Simulator remains the reference oracle: the tape is
 * only trusted because test_sim_compiled replays seeded random programs
 * through both engines and asserts bit-identical watched values.
 */

#ifndef SIM_TAPE_HH
#define SIM_TAPE_HH

#include <cstdint>
#include <vector>

#include "rtlir/design.hh"

namespace rmp::sim
{

/** Index into a Tape's dense value array. */
using Slot = uint32_t;

/** Slot of a pruned (never-evaluated) cell. */
inline constexpr Slot kNoSlot = UINT32_MAX;

/** Dense input ordinal of a cell that is not a live input. */
inline constexpr uint32_t kNoInput = UINT32_MAX;

/**
 * Tape opcodes. A subset of rtlir::Op: Const/Input/Reg cells become
 * preloaded or externally written slots, Zext becomes slot aliasing.
 */
enum class TOp : uint8_t {
    Not,    ///< dst = ~a & mask
    And,    ///< dst = a & b
    Or,     ///< dst = a | b
    Xor,    ///< dst = a ^ b
    RedOr,  ///< dst = a != 0
    RedAnd, ///< dst = a == mask (mask = operand's full mask)
    Eq,     ///< dst = a == b
    Ult,    ///< dst = a < b
    Add,    ///< dst = (a + b) & mask
    Sub,    ///< dst = (a - b) & mask
    Mul,    ///< dst = (a * b) & mask
    Shl,    ///< dst = b >= 64 ? 0 : (a << b) & mask
    Shr,    ///< dst = b >= 64 ? 0 : (a >> b) & mask
    Mux,    ///< dst = a ? b : c
    Slice,  ///< dst = (a >> aux) & mask
    Concat, ///< dst = (a << aux) | b   (aux = low operand's width)
};

const char *topName(TOp op);

/**
 * A compiled design: the linear op program plus everything BatchSim
 * needs to seed, drive, and observe it. Immutable after compileTape();
 * any number of BatchSim instances (one per worker thread) may share
 * one tape concurrently.
 */
struct Tape
{
    /** @name The op program (parallel arrays, topo order) */
    /// @{
    std::vector<uint8_t> opc; ///< static_cast<TOp>
    std::vector<Slot> dst;
    std::vector<Slot> a, b, c; ///< operand slots (unused -> 0)
    std::vector<uint32_t> aux; ///< Slice shift / Concat low width
    std::vector<uint64_t> mask;
    /// @}

    /** Number of value slots (dense, contiguous). */
    uint32_t numSlots = 0;

    /** Per-slot reset value: folded constants and register resets. */
    std::vector<uint64_t> init;

    /** Register latch: after each step, slot[reg] <- slot[next]. */
    struct Latch
    {
        Slot reg = kNoSlot;
        Slot next = kNoSlot;
    };
    std::vector<Latch> latches;

    /** One live (unpruned) input: its slot and width mask. */
    struct InBind
    {
        Slot slot = kNoSlot;
        uint64_t mask = 0;
    };
    /** Live inputs, indexed by dense input ordinal. */
    std::vector<InBind> inputs;

    /** The caller's watch set (deduped, caller order preserved). */
    std::vector<SigId> watchSigs;
    /** watchSlots[k] = slot of watchSigs[k]. */
    std::vector<Slot> watchSlots;

    /** SigId -> slot; kNoSlot for pruned cells. */
    std::vector<Slot> slotOf;
    /** SigId -> dense input ordinal; kNoInput for non-inputs and pruned
     *  inputs (whose values cannot reach a register or watched signal). */
    std::vector<uint32_t> inputOrdinal;

    /** @name Compile statistics */
    /// @{
    uint32_t cellsTotal = 0;
    uint32_t cellsPruned = 0;
    uint32_t constsFolded = 0;
    /** Of constsFolded, cells only known-bits facts could constantize. */
    uint32_t kbFolded = 0;
    /** Cells elided by identity / absorption / CSE slot aliasing. */
    uint32_t cellsAliased = 0;
    /** Of cellsAliased, rewrites enabled by known-bits mask narrowing. */
    uint32_t kbAliased = 0;
    /** Distinct pooled constant slots (the `sim.tape_consts` metric:
     *  every folded cell and absorption rewrite shares one of these). */
    uint32_t constsPooled = 0;
    double compileMs = 0.0;
    /// @}

    size_t numOps() const { return opc.size(); }
    size_t numInputs() const { return inputs.size(); }
};

/**
 * Memoized constant-folding results for one design, reused across
 * compileTape() calls. Folding is watch-set independent (every comb
 * cell's foldability is decided from its transitive inputs alone), but
 * the witness re-derivation path (bmc::Engine::replayTapeFor) recompiles
 * the same design's tape every time its watch closure grows — without a
 * cache each recompile re-derives and re-pools the same constants.
 * Callers that recompile hold one FoldCache and pass it to every call;
 * the cache is invalidated automatically if the design changes shape.
 */
struct FoldCache
{
    const Design *design = nullptr;
    size_t numCells = 0;
    /** folded[id] != 0 iff cell id's value is a compile-time constant. */
    std::vector<uint8_t> folded;
    /** cval[id] = that constant (meaningful only where folded). */
    std::vector<uint64_t> cval;
    /** Number of compiles served from this cache (test observability). */
    uint32_t hits = 0;

    /**
     * @name Optional known-bits facts (analysis::seedFoldCache)
     *
     * Semantic constants beyond syntactic folding: kbConst[id] marks a
     * comb cell proven constant kbVal[id] on every cycle of every run
     * from reset — the only runs BatchSim ever executes — and
     * kbPossible[id] is the cell's possibly-one bit mask, which the
     * compiler's alias rules use to narrow redundant masking. Empty
     * (size 0) when no facts were seeded; sized numCells otherwise.
     * Registers and inputs are never marked (their slots are written
     * externally).
     */
    /// @{
    /** Design the kb facts were derived from (seed-time stamp; facts
     *  are ignored unless it matches the compiled design). */
    const Design *kbDesign = nullptr;
    std::vector<uint8_t> kbConst;
    std::vector<uint64_t> kbVal;
    std::vector<uint64_t> kbPossible;
    /** kb facts already merged into folded/cval (once per cache). */
    bool kbApplied = false;
    /** Cells constantized by kb facts alone (not syntactically). */
    uint32_t kbFoldedCells = 0;
    /// @}
};

/**
 * Lower @p design into a Tape that preserves, cycle for cycle and bit
 * for bit, the interpreted Simulator's values of every signal in
 * @p watch plus every register. Duplicate watch entries are deduped.
 * A non-null @p fold memoizes constant folding across repeated calls
 * on the same design (see FoldCache).
 */
Tape compileTape(const Design &design, const std::vector<SigId> &watch,
                 FoldCache *fold = nullptr);

} // namespace rmp::sim

#endif // SIM_TAPE_HH
