#include "sim/tape.hh"

#include <algorithm>
#include <chrono>
#include <map>
#include <tuple>

#include "common/logging.hh"
#include "obs/obs.hh"
#include "obs/registry.hh"

namespace rmp::sim
{

const char *
topName(TOp op)
{
    switch (op) {
      case TOp::Not: return "not";
      case TOp::And: return "and";
      case TOp::Or: return "or";
      case TOp::Xor: return "xor";
      case TOp::RedOr: return "redor";
      case TOp::RedAnd: return "redand";
      case TOp::Eq: return "eq";
      case TOp::Ult: return "ult";
      case TOp::Add: return "add";
      case TOp::Sub: return "sub";
      case TOp::Mul: return "mul";
      case TOp::Shl: return "shl";
      case TOp::Shr: return "shr";
      case TOp::Mux: return "mux";
      case TOp::Slice: return "slice";
      case TOp::Concat: return "concat";
    }
    return "?";
}

namespace
{

/** Fold one comb cell whose arguments are all known constants. The
 *  semantics must match Simulator::step() bit for bit. */
uint64_t
foldCell(const Design &d, const Cell &c, const std::vector<uint64_t> &cv)
{
    uint64_t mask = BitVec::maskOf(c.width);
    auto a = [&]() { return cv[c.args[0]]; };
    auto b = [&]() { return cv[c.args[1]]; };
    switch (c.op) {
      case Op::Not: return ~a() & mask;
      case Op::And: return a() & b();
      case Op::Or: return a() | b();
      case Op::Xor: return a() ^ b();
      case Op::RedOr: return a() != 0;
      case Op::RedAnd:
        return a() == BitVec::maskOf(d.cell(c.args[0]).width);
      case Op::Eq: return a() == b();
      case Op::Ult: return a() < b();
      case Op::Add: return (a() + b()) & mask;
      case Op::Sub: return (a() - b()) & mask;
      case Op::Mul: return (a() * b()) & mask;
      case Op::Shl: {
          uint64_t sh = b();
          return sh >= 64 ? 0 : (a() << sh) & mask;
      }
      case Op::Shr: {
          uint64_t sh = b();
          return sh >= 64 ? 0 : (a() >> sh) & mask;
      }
      case Op::Mux: return a() ? cv[c.args[1]] : cv[c.args[2]];
      case Op::Slice: return (a() >> c.aux0) & mask;
      case Op::Concat:
        return (a() << d.cell(c.args[1]).width) | b();
      case Op::Zext: return a();
      default:
        rmp_panic("foldCell: unexpected op %s", opName(c.op));
    }
}

TOp
lowerOp(Op op)
{
    switch (op) {
      case Op::Not: return TOp::Not;
      case Op::And: return TOp::And;
      case Op::Or: return TOp::Or;
      case Op::Xor: return TOp::Xor;
      case Op::RedOr: return TOp::RedOr;
      case Op::RedAnd: return TOp::RedAnd;
      case Op::Eq: return TOp::Eq;
      case Op::Ult: return TOp::Ult;
      case Op::Add: return TOp::Add;
      case Op::Sub: return TOp::Sub;
      case Op::Mul: return TOp::Mul;
      case Op::Shl: return TOp::Shl;
      case Op::Shr: return TOp::Shr;
      case Op::Mux: return TOp::Mux;
      case Op::Slice: return TOp::Slice;
      case Op::Concat: return TOp::Concat;
      default:
        rmp_panic("lowerOp: unexpected op %s", opName(op));
    }
}

} // anonymous namespace

Tape
compileTape(const Design &d, const std::vector<SigId> &watch,
            FoldCache *fold)
{
    auto t0 = std::chrono::steady_clock::now();
    Tape tp;
    tp.cellsTotal = static_cast<uint32_t>(d.numCells());
    tp.slotOf.assign(d.numCells(), kNoSlot);
    tp.inputOrdinal.assign(d.numCells(), kNoInput);

    // Dedupe the watch set, preserving the caller's order: watch indices
    // are positional for BatchSim::watched().
    std::vector<uint8_t> inWatch(d.numCells(), 0);
    for (SigId s : watch) {
        rmp_assert(s < d.numCells(), "watch signal out of range");
        if (!inWatch[s]) {
            inWatch[s] = 1;
            tp.watchSigs.push_back(s);
        }
    }

    // Liveness: everything the register cone (each register's next-state
    // function) or the watch set transitively reads. Registers themselves
    // always latch, so every reg and its next-state arg is a root.
    std::vector<uint8_t> live(d.numCells(), 0);
    std::vector<SigId> stack;
    auto root = [&](SigId s) {
        if (s != kNoSig && !live[s]) {
            live[s] = 1;
            stack.push_back(s);
        }
    };
    for (SigId s : tp.watchSigs)
        root(s);
    for (SigId r : d.registers()) {
        root(r);
        root(d.cell(r).args[0]);
    }
    while (!stack.empty()) {
        SigId id = stack.back();
        stack.pop_back();
        const Cell &c = d.cell(id);
        if (c.op == Op::Reg)
            continue; // sequential boundary: next-state is its own root
        for (unsigned i = 0; i < c.numArgs(); i++)
            root(c.args[i]);
    }

    // Constant folding, in topo order so every argument's foldability
    // is known first. Folding is deliberately liveness-independent: a
    // cell's foldability depends only on its transitive inputs, so the
    // results hold for any watch set and can be memoized in a FoldCache
    // across the recompiles of the witness re-derivation path.
    FoldCache localFold;
    FoldCache *fc = fold ? fold : &localFold;
    if (fc->design == &d && fc->numCells == d.numCells()) {
        fc->hits++;
        if (obs::enabled())
            obs::Registry::global().counter("sim.tape_fold_reuse").add(1);
    } else {
        fc->design = &d;
        fc->numCells = d.numCells();
        fc->hits = 0;
        fc->kbApplied = false;
        fc->kbFoldedCells = 0;
        fc->folded.assign(d.numCells(), 0);
        fc->cval.assign(d.numCells(), 0);
        for (SigId id = 0; id < d.numCells(); id++) {
            if (d.cell(id).op == Op::Const) {
                fc->folded[id] = 1;
                fc->cval[id] = d.cell(id).cval.value();
            }
        }
        for (SigId id : d.topoOrder()) {
            const Cell &c = d.cell(id);
            if (fc->folded[id])
                continue;
            bool all_const = c.numArgs() > 0;
            for (unsigned i = 0; i < c.numArgs(); i++)
                all_const = all_const && fc->folded[c.args[i]];
            if (all_const) {
                fc->folded[id] = 1;
                fc->cval[id] = foldCell(d, c, fc->cval);
            }
        }
    }
    // Known-bits constantization (analysis::seedFoldCache): comb cells
    // the absint fixpoint proved constant on every reachable cycle fold
    // exactly like syntactic constants — BatchSim only ever executes
    // runs from reset with free inputs, the trace set the facts cover.
    const bool haveKb =
        fc->kbDesign == &d && fc->kbConst.size() == d.numCells();
    if (haveKb && !fc->kbApplied) {
        fc->kbApplied = true;
        fc->kbFoldedCells = 0;
        for (SigId id = 0; id < d.numCells(); id++) {
            if (!fc->kbConst[id] || fc->folded[id])
                continue;
            const Cell &c = d.cell(id);
            rmp_assert(isCombOp(c.op) && c.op != Op::Const,
                       "kb fold marked non-comb cell %u", id);
            fc->folded[id] = 1;
            fc->cval[id] = fc->kbVal[id];
            fc->kbFoldedCells++;
        }
        if (obs::enabled())
            obs::Registry::global()
                .counter("sim.tape_kb_folded")
                .add(fc->kbFoldedCells);
    }
    const std::vector<uint8_t> &folded = fc->folded;
    const std::vector<uint64_t> &cval = fc->cval;
    tp.kbFolded = haveKb ? fc->kbFoldedCells : 0;
    for (SigId id = 0; id < d.numCells(); id++)
        if (live[id] && folded[id] && d.cell(id).op != Op::Const)
            tp.constsFolded++;

    // Count pruned comb cells (for the stats only).
    for (SigId id = 0; id < d.numCells(); id++)
        if (!live[id] && isCombOp(d.cell(id).op))
            tp.cellsPruned++;

    // Slot allocation. Slots carry their reset value and whether they are
    // provably constant (never written by an op, a latch, or an input
    // scatter) — the aliasing rules below key off that.
    std::vector<uint8_t> slotConst;
    std::vector<uint64_t> slotVal;
    auto fresh = [&](uint64_t initv, bool is_const) -> Slot {
        slotConst.push_back(is_const);
        slotVal.push_back(initv);
        tp.init.push_back(initv);
        return tp.numSlots++;
    };

    // Registers and live inputs first: they persist across cycles, so
    // keeping them in one dense block keeps the latch and input-scatter
    // loops on few cache lines.
    for (SigId r : d.registers())
        tp.slotOf[r] = fresh(d.cell(r).cval.value(), false);
    for (SigId in : d.inputs())
        if (live[in])
            tp.slotOf[in] = fresh(0, false);

    // Folded cells share one pooled slot per distinct constant value.
    std::map<uint64_t, Slot> pool;
    auto constSlot = [&](uint64_t v) -> Slot {
        auto [it, inserted] = pool.try_emplace(v, 0);
        if (inserted)
            it->second = fresh(v, true);
        return it->second;
    };
    for (SigId id = 0; id < d.numCells(); id++)
        if (live[id] && folded[id])
            tp.slotOf[id] = constSlot(cval[id]);

    // Levelize the remaining comb cells (level = longest path from a
    // register / input / constant) and emit level by level, grouped by
    // opcode within a level. Any level order is a valid topo order, and
    // opcode grouping gives the execution kernel long same-opcode runs
    // that amortize its dispatch cost. Zext sits one above its operand so
    // its alias resolves before any same-level consumer reads it.
    std::vector<uint32_t> level(d.numCells(), 0);
    std::vector<SigId> emit;
    for (SigId id : d.topoOrder()) {
        const Cell &c = d.cell(id);
        if (!live[id] || folded[id])
            continue;
        uint32_t lv = 0;
        for (unsigned i = 0; i < c.numArgs(); i++)
            lv = std::max(lv, level[c.args[i]]);
        level[id] = lv + 1;
        emit.push_back(id);
    }
    std::stable_sort(emit.begin(), emit.end(), [&](SigId x, SigId y) {
        if (level[x] != level[y])
            return level[x] < level[y];
        return d.cell(x).op < d.cell(y).op;
    });

    // Emission, with three op-eliding rewrites on top of the folding and
    // pruning above — all semantics-preserving on masked slot values:
    //  - identity aliasing (And with all-ones, Or/Xor/Add with zero, a
    //    shift or slice by zero, a Mux whose select folded, ...): the
    //    cell shares its surviving operand's slot;
    //  - absorption (And with zero, Mul with zero, Or with all-ones):
    //    the cell collapses into the constant pool;
    //  - common-subexpression elimination: a cell whose lowered op tuple
    //    was already emitted shares the original's slot (commutative ops
    //    are normalized first).
    // An aliased value can only be widened, never narrowed: every rule
    // checks the surviving operand's width mask fits the result's.
    std::map<std::tuple<uint8_t, Slot, Slot, Slot, uint32_t, uint64_t>,
             Slot>
        cse;
    for (SigId id : emit) {
        const Cell &c = d.cell(id);
        if (c.op == Op::Zext) {
            tp.slotOf[id] = tp.slotOf[c.args[0]];
            rmp_assert(tp.slotOf[id] != kNoSlot, "zext arg unassigned");
            continue;
        }
        uint64_t mask = BitVec::maskOf(c.width);
        Slot sa = tp.slotOf[c.args[0]];
        Slot sb = c.numArgs() > 1 ? tp.slotOf[c.args[1]] : 0;
        Slot sc = c.numArgs() > 2 ? tp.slotOf[c.args[2]] : 0;
        uint32_t aux = 0;
        switch (c.op) {
          case Op::RedAnd:
            // Result is 1-bit; the mask field carries the operand's full
            // mask the reduction compares against.
            mask = BitVec::maskOf(d.cell(c.args[0]).width);
            break;
          case Op::Slice:
            aux = c.aux0;
            break;
          case Op::Concat:
            aux = d.cell(c.args[1]).width;
            break;
          default:
            break;
        }

        // fits(i): operand i's values always fit the result mask, so
        // aliasing it cannot leak high bits.
        auto fits = [&](unsigned i) {
            return (BitVec::maskOf(d.cell(c.args[i]).width) & ~mask) == 0;
        };
        Slot alias = kNoSlot;
        const bool ca = slotConst[sa];
        const uint64_t caV = ca ? slotVal[sa] : 0;
        const bool cb = c.numArgs() > 1 && slotConst[sb];
        const uint64_t cbV = cb ? slotVal[sb] : 0;
        switch (c.op) {
          case Op::And:
            if ((ca && caV == 0) || (cb && cbV == 0))
                alias = constSlot(0);
            else if (ca && caV == mask && fits(1))
                alias = sb;
            else if ((cb && cbV == mask && fits(0)) || sa == sb)
                alias = sa;
            break;
          case Op::Or:
            if ((ca && caV == mask) || (cb && cbV == mask))
                alias = constSlot(mask);
            else if (ca && caV == 0 && fits(1))
                alias = sb;
            else if ((cb && cbV == 0 && fits(0)) || sa == sb)
                alias = sa;
            break;
          case Op::Xor:
            if (sa == sb)
                alias = constSlot(0);
            else if (ca && caV == 0 && fits(1))
                alias = sb;
            else if (cb && cbV == 0 && fits(0))
                alias = sa;
            break;
          case Op::Add:
            if (ca && caV == 0 && fits(1))
                alias = sb;
            else if (cb && cbV == 0 && fits(0))
                alias = sa;
            break;
          case Op::Sub:
            if (sa == sb)
                alias = constSlot(0);
            else if (cb && cbV == 0 && fits(0))
                alias = sa;
            break;
          case Op::Mul:
            if ((ca && caV == 0) || (cb && cbV == 0))
                alias = constSlot(0);
            else if (ca && caV == 1 && fits(1))
                alias = sb;
            else if (cb && cbV == 1 && fits(0))
                alias = sa;
            break;
          case Op::Eq:
            if (sa == sb)
                alias = constSlot(1);
            break;
          case Op::Ult:
            if (sa == sb)
                alias = constSlot(0);
            break;
          case Op::Shl:
          case Op::Shr:
            if (cb && cbV == 0 && fits(0))
                alias = sa;
            break;
          case Op::Mux:
            if (ca && caV != 0 && fits(1))
                alias = sb;
            else if (ca && caV == 0 && fits(2))
                alias = sc;
            else if (sb == sc && fits(1))
                alias = sb;
            break;
          case Op::Slice:
            if (c.aux0 == 0 && fits(0))
                alias = sa;
            break;
          case Op::Concat:
            if (ca && caV == 0)
                alias = sb; // result mask always covers the low operand
            break;
          default:
            break;
        }
        // Known-bits mask narrowing: rewrites the syntactic rules above
        // cannot see. An And whose constant mask already covers every
        // possibly-one bit of the other operand is the identity on it,
        // and a low Slice that provably drops only zero bits is too.
        if (alias == kNoSlot && haveKb) {
            const std::vector<uint64_t> &poss = fc->kbPossible;
            switch (c.op) {
              case Op::And:
                if (cb && (poss[c.args[0]] & ~cbV) == 0 && fits(0))
                    alias = sa;
                else if (ca && (poss[c.args[1]] & ~caV) == 0 && fits(1))
                    alias = sb;
                break;
              case Op::Slice:
                if (c.aux0 == 0 && (poss[c.args[0]] & ~mask) == 0)
                    alias = sa;
                break;
              default:
                break;
            }
            if (alias != kNoSlot)
                tp.kbAliased++;
        }
        if (alias != kNoSlot) {
            tp.slotOf[id] = alias;
            tp.cellsAliased++;
            continue;
        }

        uint8_t opc = static_cast<uint8_t>(lowerOp(c.op));
        bool commutes = c.op == Op::And || c.op == Op::Or ||
                        c.op == Op::Xor || c.op == Op::Add ||
                        c.op == Op::Mul || c.op == Op::Eq;
        if (commutes && sb < sa)
            std::swap(sa, sb);
        auto key = std::make_tuple(opc, sa, sb, sc, aux, mask);
        if (auto it = cse.find(key); it != cse.end()) {
            tp.slotOf[id] = it->second;
            tp.cellsAliased++;
            continue;
        }
        Slot dst = fresh(0, false);
        tp.slotOf[id] = dst;
        cse.emplace(key, dst);
        tp.opc.push_back(opc);
        tp.dst.push_back(dst);
        tp.a.push_back(sa);
        tp.b.push_back(sb);
        tp.c.push_back(sc);
        tp.aux.push_back(aux);
        tp.mask.push_back(mask);
    }

    // Register latches (two-phase in BatchSim: reads complete before any
    // reg slot is overwritten, so Reg->Reg forwarding stays correct).
    for (SigId r : d.registers())
        tp.latches.push_back({tp.slotOf[r], tp.slotOf[d.cell(r).args[0]]});

    // Live inputs get dense ordinals in design-input order.
    for (SigId in : d.inputs()) {
        if (!live[in])
            continue; // value provably cannot reach a reg or watched sig
        tp.inputOrdinal[in] = static_cast<uint32_t>(tp.inputs.size());
        tp.inputs.push_back(
            {tp.slotOf[in], BitVec::maskOf(d.cell(in).width)});
    }

    tp.watchSlots.reserve(tp.watchSigs.size());
    for (SigId s : tp.watchSigs) {
        rmp_assert(tp.slotOf[s] != kNoSlot, "watched signal pruned");
        tp.watchSlots.push_back(tp.slotOf[s]);
    }

    tp.constsPooled = static_cast<uint32_t>(pool.size());
    tp.compileMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (obs::enabled()) {
        auto &reg = obs::Registry::global();
        reg.counter("sim.tape_compiles").add(1);
        reg.gauge("sim.tape_ops").set(static_cast<int64_t>(tp.numOps()));
        reg.gauge("sim.tape_slots").set(tp.numSlots);
        reg.gauge("sim.tape_consts").set(tp.constsPooled);
        reg.counter("sim.tape_cells_pruned").add(tp.cellsPruned);
        reg.counter("sim.tape_consts_folded").add(tp.constsFolded);
        reg.counter("sim.tape_cells_aliased").add(tp.cellsAliased);
        reg.histogram("sim.compile_ms")
            .record(static_cast<uint64_t>(tp.compileMs));
    }
    return tp;
}

} // namespace rmp::sim
