#include "sim/batch.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/codegen.hh"
#include "sim/simd.hh"

namespace rmp::sim
{

const char *
backendName(SimBackend b)
{
    switch (b) {
      case SimBackend::Tape: return "tape";
      case SimBackend::Simd: return "simd";
      case SimBackend::Native: return "native";
    }
    return "?";
}

BatchSim::BatchSim(const Tape &tape, unsigned lanes, SimBackend backend)
    : tp(tape)
{
    rmp_assert(lanes >= 1 && lanes <= kMaxLanes,
               "lane count %u outside [1, %u]", lanes, kMaxLanes);
    lanes_ = lanes;
    P_ = 1;
    while (P_ < lanes)
        P_ <<= 1;
    backend_ = active_ = backend;
    if (backend_ == SimBackend::Native) {
        native_ = NativeKernel::acquire(tp, P_);
        if (native_)
            nativeFn_ = native_->fn();
        else
            active_ = SimBackend::Simd; // no compiler / compile failed
    }
    valsStore_.resize(size_t(tp.numSlots) * P_ + 7);
    vals_ = reinterpret_cast<uint64_t *>(
        (reinterpret_cast<uintptr_t>(valsStore_.data()) + 63) &
        ~uintptr_t(63));
    in_.resize(tp.inputs.size() * P_);
    scratch_.resize(tp.latches.size() * P_);
    reset();
}

void
BatchSim::reset()
{
    for (uint32_t s = 0; s < tp.numSlots; s++)
        for (unsigned l = 0; l < P_; l++)
            vals_[size_t(s) * P_ + l] = tp.init[s];
    std::fill(in_.begin(), in_.end(), 0);
    frames_.clear();
    cycles_ = 0;
}

void
BatchSim::clearInputs()
{
    std::fill(in_.begin(), in_.end(), 0);
}

bool
BatchSim::stageInput(unsigned lane, SigId sig, uint64_t v)
{
    uint32_t ord = tp.inputOrdinal[sig];
    if (ord == kNoInput)
        return false;
    setInput(lane, ord, v);
    return true;
}

void
BatchSim::stageInputs(unsigned lane, const InputMap &in)
{
    for (const auto &[sig, v] : in)
        stageInput(lane, sig, v);
}

void
BatchSim::reserveTrace(size_t cycles)
{
    frames_.reserve(cycles * tp.watchSlots.size() * P_);
}

/*
 * The compiled kernel. One instantiation per physical lane width: P is a
 * compile-time constant, so each per-op lane loop has a fixed trip count
 * the compiler unrolls and vectorizes. Dispatch is threaded (computed
 * goto) on GCC/Clang — each op jumps directly to the next op's handler,
 * giving the branch predictor one indirect-jump site per handler instead
 * of a single shared switch branch — with a plain switch loop as the
 * portable fallback.
 */

// NOLINTBEGIN(cppcoreguidelines-macro-usage)
#define RMP_UNARY()                                                        \
    uint64_t *__restrict pd = v + size_t(dd[i]) * P;                       \
    const uint64_t *pa = v + size_t(da[i]) * P
#define RMP_BINARY()                                                       \
    RMP_UNARY();                                                           \
    const uint64_t *pb = v + size_t(db[i]) * P
#define RMP_TERNARY()                                                      \
    RMP_BINARY();                                                          \
    const uint64_t *pc = v + size_t(dc[i]) * P

#define RMP_DO_NOT                                                         \
    {                                                                      \
        RMP_UNARY();                                                       \
        const uint64_t m = msk[i];                                         \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = ~pa[l] & m;                                            \
    }
#define RMP_DO_AND                                                         \
    {                                                                      \
        RMP_BINARY();                                                      \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pa[l] & pb[l];                                         \
    }
#define RMP_DO_OR                                                          \
    {                                                                      \
        RMP_BINARY();                                                      \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pa[l] | pb[l];                                         \
    }
#define RMP_DO_XOR                                                         \
    {                                                                      \
        RMP_BINARY();                                                      \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pa[l] ^ pb[l];                                         \
    }
#define RMP_DO_REDOR                                                       \
    {                                                                      \
        RMP_UNARY();                                                       \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pa[l] != 0;                                            \
    }
#define RMP_DO_REDAND                                                      \
    {                                                                      \
        RMP_UNARY();                                                       \
        const uint64_t m = msk[i];                                         \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pa[l] == m;                                            \
    }
#define RMP_DO_EQ                                                          \
    {                                                                      \
        RMP_BINARY();                                                      \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pa[l] == pb[l];                                        \
    }
#define RMP_DO_ULT                                                         \
    {                                                                      \
        RMP_BINARY();                                                      \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pa[l] < pb[l];                                         \
    }
#define RMP_DO_ADD                                                         \
    {                                                                      \
        RMP_BINARY();                                                      \
        const uint64_t m = msk[i];                                         \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = (pa[l] + pb[l]) & m;                                   \
    }
#define RMP_DO_SUB                                                         \
    {                                                                      \
        RMP_BINARY();                                                      \
        const uint64_t m = msk[i];                                         \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = (pa[l] - pb[l]) & m;                                   \
    }
#define RMP_DO_MUL                                                         \
    {                                                                      \
        RMP_BINARY();                                                      \
        const uint64_t m = msk[i];                                         \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = (pa[l] * pb[l]) & m;                                   \
    }
#define RMP_DO_SHL                                                         \
    {                                                                      \
        RMP_BINARY();                                                      \
        const uint64_t m = msk[i];                                         \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pb[l] >= 64 ? 0 : (pa[l] << pb[l]) & m;                \
    }
#define RMP_DO_SHR                                                         \
    {                                                                      \
        RMP_BINARY();                                                      \
        const uint64_t m = msk[i];                                         \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pb[l] >= 64 ? 0 : (pa[l] >> pb[l]) & m;                \
    }
#define RMP_DO_MUX                                                         \
    {                                                                      \
        RMP_TERNARY();                                                     \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = pa[l] ? pb[l] : pc[l];                                 \
    }
#define RMP_DO_SLICE                                                       \
    {                                                                      \
        RMP_UNARY();                                                       \
        const uint64_t m = msk[i];                                         \
        const uint32_t s = aux[i];                                         \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = (pa[l] >> s) & m;                                      \
    }
#define RMP_DO_CONCAT                                                      \
    {                                                                      \
        RMP_BINARY();                                                      \
        const uint32_t s = aux[i];                                         \
        for (unsigned l = 0; l < P; l++)                                   \
            pd[l] = (pa[l] << s) | pb[l];                                  \
    }

template <unsigned P>
void
BatchSim::evalOps()
{
    const size_t n = tp.opc.size();
    if (n == 0)
        return;
    uint64_t *v = vals_;
    const uint8_t *opc = tp.opc.data();
    const Slot *dd = tp.dst.data();
    const Slot *da = tp.a.data();
    const Slot *db = tp.b.data();
    const Slot *dc = tp.c.data();
    const uint32_t *aux = tp.aux.data();
    const uint64_t *msk = tp.mask.data();
    size_t i = 0;

#if defined(__GNUC__) || defined(__clang__)
    // Jump-table order must match the TOp enumerator order.
    static const void *kJump[] = {
        &&L_Not, &&L_And, &&L_Or,  &&L_Xor, &&L_RedOr, &&L_RedAnd,
        &&L_Eq,  &&L_Ult, &&L_Add, &&L_Sub, &&L_Mul,   &&L_Shl,
        &&L_Shr, &&L_Mux, &&L_Slice, &&L_Concat};
    // Each handler drains its whole same-opcode run before the next
    // indirect jump: compileTape groups ops by opcode within a topo
    // level, so the run-continuation branch is long and predictable
    // where the indirect dispatch would mispredict.
#define RMP_RUN(LBL, DO)                                                   \
    L_##LBL:                                                               \
    do                                                                     \
        DO                                                                 \
    while (++i != n && opc[i] == static_cast<uint8_t>(TOp::LBL));          \
    if (i == n)                                                            \
        return;                                                            \
    goto *kJump[opc[i]]

    goto *kJump[opc[0]];
    RMP_RUN(Not, RMP_DO_NOT);
    RMP_RUN(And, RMP_DO_AND);
    RMP_RUN(Or, RMP_DO_OR);
    RMP_RUN(Xor, RMP_DO_XOR);
    RMP_RUN(RedOr, RMP_DO_REDOR);
    RMP_RUN(RedAnd, RMP_DO_REDAND);
    RMP_RUN(Eq, RMP_DO_EQ);
    RMP_RUN(Ult, RMP_DO_ULT);
    RMP_RUN(Add, RMP_DO_ADD);
    RMP_RUN(Sub, RMP_DO_SUB);
    RMP_RUN(Mul, RMP_DO_MUL);
    RMP_RUN(Shl, RMP_DO_SHL);
    RMP_RUN(Shr, RMP_DO_SHR);
    RMP_RUN(Mux, RMP_DO_MUX);
    RMP_RUN(Slice, RMP_DO_SLICE);
    RMP_RUN(Concat, RMP_DO_CONCAT);
#undef RMP_RUN
#else
    for (; i < n; i++) {
        switch (static_cast<TOp>(opc[i])) {
          case TOp::Not: RMP_DO_NOT break;
          case TOp::And: RMP_DO_AND break;
          case TOp::Or: RMP_DO_OR break;
          case TOp::Xor: RMP_DO_XOR break;
          case TOp::RedOr: RMP_DO_REDOR break;
          case TOp::RedAnd: RMP_DO_REDAND break;
          case TOp::Eq: RMP_DO_EQ break;
          case TOp::Ult: RMP_DO_ULT break;
          case TOp::Add: RMP_DO_ADD break;
          case TOp::Sub: RMP_DO_SUB break;
          case TOp::Mul: RMP_DO_MUL break;
          case TOp::Shl: RMP_DO_SHL break;
          case TOp::Shr: RMP_DO_SHR break;
          case TOp::Mux: RMP_DO_MUX break;
          case TOp::Slice: RMP_DO_SLICE break;
          case TOp::Concat: RMP_DO_CONCAT break;
        }
    }
#endif
}
// NOLINTEND(cppcoreguidelines-macro-usage)

template <unsigned P>
void
BatchSim::latch()
{
    // Two-phase: every next-state value is read into the scratch buffer
    // before any register slot is overwritten, so Reg->Reg forwarding
    // (a register whose next-state is another register) sees the old
    // values, exactly like the interpreted Simulator.
    uint64_t *v = vals_;
    uint64_t *s = scratch_.data();
    const Tape::Latch *lt = tp.latches.data();
    const size_t nl = tp.latches.size();
    for (size_t j = 0; j < nl; j++) {
        const uint64_t *src = v + size_t(lt[j].next) * P;
        for (unsigned l = 0; l < P; l++)
            s[j * P + l] = src[l];
    }
    for (size_t j = 0; j < nl; j++) {
        uint64_t *dst = v + size_t(lt[j].reg) * P;
        for (unsigned l = 0; l < P; l++)
            dst[l] = s[j * P + l];
    }
}

void
BatchSim::step()
{
    // Scatter staged inputs into their slots, masked to input width
    // (unstaged inputs default to zero via clearInputs / initial state).
    uint64_t *v = vals_;
    for (size_t j = 0; j < tp.inputs.size(); j++) {
        const uint64_t m = tp.inputs[j].mask;
        uint64_t *dst = v + size_t(tp.inputs[j].slot) * P_;
        const uint64_t *src = in_.data() + j * P_;
        for (unsigned l = 0; l < P_; l++)
            dst[l] = src[l] & m;
    }

    switch (active_) {
      case SimBackend::Native:
        nativeFn_(vals_);
        break;
      case SimBackend::Simd:
        simdEvalOps(tp, vals_, P_);
        break;
      case SimBackend::Tape:
        switch (P_) {
          case 1: evalOps<1>(); break;
          case 2: evalOps<2>(); break;
          case 4: evalOps<4>(); break;
          case 8: evalOps<8>(); break;
          case 16: evalOps<16>(); break;
          default: rmp_panic("unsupported physical lane count %u", P_);
        }
        break;
    }

    // Record watched values pre-latch: this is the cycle's frame.
    if (recording_) {
        const size_t nw = tp.watchSlots.size();
        size_t base = frames_.size();
        frames_.resize(base + nw * P_);
        for (size_t k = 0; k < nw; k++) {
            const uint64_t *src = v + size_t(tp.watchSlots[k]) * P_;
            for (unsigned l = 0; l < P_; l++)
                frames_[base + k * P_ + l] = src[l];
        }
    }

    switch (P_) {
      case 1: latch<1>(); break;
      case 2: latch<2>(); break;
      case 4: latch<4>(); break;
      case 8: latch<8>(); break;
      case 16: latch<16>(); break;
      default: rmp_panic("unsupported physical lane count %u", P_);
    }
    cycles_++;
}

SimTrace
BatchSim::laneTrace(unsigned lane, size_t num_cells) const
{
    SimTrace tr;
    tr.frames.assign(cycles_, std::vector<uint64_t>(num_cells, 0));
    for (size_t t = 0; t < cycles_; t++)
        for (size_t k = 0; k < tp.watchSigs.size(); k++)
            tr.frames[t][tp.watchSigs[k]] = watched(t, k, lane);
    return tr;
}

} // namespace rmp::sim
