/**
 * @file
 * VCD (Value Change Dump) export for simulation traces, so witnesses and
 * program runs can be inspected in any waveform viewer — the equivalent
 * of the paper's "RTL waveforms produced by RTL2MμPATH's reachable SVA
 * cover properties" (§VII-B2), through which they localized the CVA6
 * scoreboard bug.
 */

#ifndef SIM_VCD_HH
#define SIM_VCD_HH

#include <string>
#include <vector>

#include "rtlir/design.hh"
#include "sim/simulator.hh"

namespace rmp
{

/**
 * Serialize the named signals of @p trace as a VCD document.
 * Only named cells (inputs, registers, named wires) are dumped unless
 * @p signals narrows the selection.
 */
std::string traceToVcd(const Design &design, const SimTrace &trace,
                       const std::vector<SigId> &signals = {});

/** Write traceToVcd() output to @p path; returns false on I/O failure. */
bool writeVcd(const Design &design, const SimTrace &trace,
              const std::string &path,
              const std::vector<SigId> &signals = {});

} // namespace rmp

#endif // SIM_VCD_HH
