/**
 * @file
 * Two-state cycle-accurate simulator for the netlist IR.
 *
 * The simulator serves three roles in the reproduction:
 *  - functional oracle for the DUVs (tests run programs and check
 *    architectural results),
 *  - independent witness validator: every Reachable verdict from the BMC
 *    engine is replayed here before being trusted (DESIGN.md §5),
 *  - observation-trace generator for the SC-Safe experiment (Def. V.1).
 */

#ifndef SIM_SIMULATOR_HH
#define SIM_SIMULATOR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "rtlir/design.hh"

namespace rmp
{

/** Input valuations for one cycle: SigId of an Input cell -> value. */
using InputMap = std::unordered_map<SigId, uint64_t>;

/**
 * A simulated execution trace: per cycle, the value of every signal.
 *
 * Watch-set traces (BatchSim::laneTrace, compiled witness replay) use the
 * same representation sparsely: frames stay full-width but only watched
 * signals carry values — everything else reads as zero. Consumers of such
 * traces must restrict themselves to the watch set.
 */
struct SimTrace
{
    /** frames[t][sig] = value of sig during cycle t (masked to width). */
    std::vector<std::vector<uint64_t>> frames;

    size_t numCycles() const { return frames.size(); }
    uint64_t value(size_t cycle, SigId sig) const
    {
#if !defined(NDEBUG)
        rmp_assert(cycle < frames.size(),
                   "trace cycle %zu out of range (%zu cycles)", cycle,
                   frames.size());
        rmp_assert(sig < frames[cycle].size(),
                   "trace signal %u out of range (%zu signals)", sig,
                   frames[cycle].size());
#endif
        return frames[cycle][sig];
    }
    /** Pre-reserve frame storage for @p cycles cycles. */
    void reserveCycles(size_t cycles) { frames.reserve(cycles); }
};

/**
 * Cycle-accurate evaluator.
 *
 * reset() puts every register at its reset value (the paper's valid reset
 * state). Each step() evaluates combinational logic given that cycle's
 * inputs, records the frame, and latches registers. Unspecified inputs
 * default to zero.
 */
class Simulator
{
  public:
    explicit Simulator(const Design &design);

    /** Return to the valid reset state and clear the trace. */
    void reset();

    /** Simulate one cycle with the given input valuation. */
    void step(const InputMap &inputs = {});

    /** Value of @p sig as computed in the most recent step. */
    uint64_t value(SigId sig) const;

    /** Current (post-step) register value. */
    uint64_t regValue(SigId reg) const;

    /** Cycles executed since reset. */
    size_t cycle() const { return trace_.numCycles(); }

    /** Full recorded trace. */
    const SimTrace &trace() const { return trace_; }

    /** Enable/disable trace recording (on by default). */
    void setRecording(bool on) { recording = on; }

    /** Pre-reserve trace storage for @p cycles cycles (allocation-churn
     *  fix: hot callers that know their horizon reserve up front). */
    void reserveTrace(size_t cycles) { trace_.reserveCycles(cycles); }

  private:
    const Design &d;
    /** Current register values (indexed by SigId). */
    std::vector<uint64_t> regs;
    /** Last evaluated frame (all signals). */
    std::vector<uint64_t> vals;
    SimTrace trace_;
    bool recording = true;
    bool stepped = false;
};

} // namespace rmp

#endif // SIM_SIMULATOR_HH
