/**
 * @file
 * BatchSim: the compiled, multi-lane execution engine for op tapes
 * (DESIGN.md §3h).
 *
 * Values live in one contiguous SoA array, vals[slot * P + lane], where P
 * is the physical lane count — the requested lane count rounded up to a
 * power of two and dispatched to a lane-count-templated kernel, so every
 * per-op inner loop has a compile-time trip count the compiler can
 * vectorize. Lanes are fully independent simulations stepped in lockstep;
 * unused (padding) lanes run the all-zero-input program and are never
 * observed.
 *
 * Inputs are staged into a dense per-ordinal array (no hash map on the
 * hot path; stageInputs() is the map-based shim for oracle/test call
 * sites). Only watched signals are recorded, pre-latch, exactly like the
 * interpreted Simulator's frames: watched(t, k, lane) equals what
 * Simulator::trace() would show for watch signal k at cycle t.
 *
 * value(lane, sig) reads the raw slot after step(): correct for
 * combinational signals; register slots have already latched their
 * next-cycle state, so per-cycle register observation must go through
 * the recorded watch frames.
 */

#ifndef SIM_BATCH_HH
#define SIM_BATCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hh"
#include "sim/tape.hh"

namespace rmp::sim
{

class NativeKernel;

/** Largest supported physical lane width. */
inline constexpr unsigned kMaxLanes = 16;

/** Default exploration lane count (one AVX2 register of 64-bit lanes
 *  per four ops' worth of loop unrolling; measured sweet spot). */
inline constexpr unsigned kDefaultLanes = 8;

/**
 * Which kernel executes the op program. All backends are bit-identical
 * by contract (the differential suites enforce it); they differ only in
 * throughput and availability:
 *
 *   Tape    computed-goto interpreter, one indirect jump per same-opcode
 *           run; always available (the compiled baseline).
 *   Simd    explicit vector kernels (AVX2/SSE2/NEON/portable), one
 *           dispatch per run and intrinsics across lanes.
 *   Native  per-design straight-line C, compiled and cached on disk,
 *           zero dispatch; falls back to Simd when no compiler exists.
 */
enum class SimBackend : uint8_t {
    Tape,
    Simd,
    Native,
};

const char *backendName(SimBackend b);

class BatchSim
{
  public:
    /** @p lanes in [1, kMaxLanes]; rounded up to a power of two. */
    BatchSim(const Tape &tape, unsigned lanes,
             SimBackend backend = SimBackend::Tape);

    /** Back to the reset state; clears the recorded frames. */
    void reset();

    /** Requested (observable) lane count. */
    unsigned lanes() const { return lanes_; }
    /** Physical (padded power-of-two) lane count. */
    unsigned physLanes() const { return P_; }

    /** Requested execution backend. */
    SimBackend backend() const { return backend_; }
    /** Backend actually running (== backend() unless Native fell back
     *  to Simd because no kernel could be compiled or loaded). */
    SimBackend activeBackend() const { return active_; }

    /** @name Per-cycle input staging */
    /// @{
    /** Zero every staged input (all lanes). */
    void clearInputs();
    /** Stage input @p ordinal (dense, Tape::inputOrdinal) on @p lane. */
    void
    setInput(unsigned lane, uint32_t ordinal, uint64_t v)
    {
        in_[size_t(ordinal) * P_ + lane] = v;
    }
    /**
     * Map-based shim: stage by SigId, masking to the input's width.
     * Returns false (and stages nothing) for pruned inputs — their
     * values cannot reach a register or watched signal.
     */
    bool stageInput(unsigned lane, SigId sig, uint64_t v);
    /** Stage a whole InputMap (oracle/test convenience). */
    void stageInputs(unsigned lane, const InputMap &in);
    /// @}

    /** Simulate one cycle on every lane with the staged inputs. */
    void step();

    /** Cycles executed since reset(). */
    size_t cycle() const { return cycles_; }

    /** Raw slot value after step() (see file comment for the register
     *  caveat). @p sig must not be pruned. */
    uint64_t
    value(unsigned lane, SigId sig) const
    {
        return vals_[size_t(tp.slotOf[sig]) * P_ + lane];
    }

    /** @name Watch-set trace */
    /// @{
    void setRecording(bool on) { recording_ = on; }
    void reserveTrace(size_t cycles);
    size_t numWatch() const { return tp.watchSlots.size(); }
    /** Watched signal @p k's value at cycle @p t on @p lane (pre-latch,
     *  == the interpreted Simulator's frame value). */
    uint64_t
    watched(size_t t, size_t k, unsigned lane) const
    {
        return frames_[(t * tp.watchSlots.size() + k) * P_ + lane];
    }
    /**
     * Materialize one lane's recording as a sparse SimTrace: frames are
     * @p num_cells wide with watched signals filled in and every other
     * signal zero. Downstream consumers (prop::evalOnTrace, μPATH
     * construction) may only read watched signals from such a trace.
     */
    SimTrace laneTrace(unsigned lane, size_t num_cells) const;
    /// @}

    const Tape &tape() const { return tp; }

  private:
    template <unsigned P> void evalOps();
    template <unsigned P> void latch();

    const Tape &tp;
    unsigned lanes_ = 1;
    unsigned P_ = 1;
    SimBackend backend_ = SimBackend::Tape;
    SimBackend active_ = SimBackend::Tape;
    /** Keeps the dlopen'd kernel alive for the Native backend. */
    std::shared_ptr<const NativeKernel> native_;
    void (*nativeFn_)(uint64_t *) = nullptr;
    /** Backing store for vals_, over-allocated so the aligned pointer
     *  always has numSlots * P valid elements behind it. */
    std::vector<uint64_t> valsStore_;
    /** numSlots * P values, 64-byte aligned: at P = 8 each slot's lane
     *  row is exactly one cache line, and std::vector's weaker default
     *  alignment would otherwise split every row across two lines. */
    uint64_t *vals_ = nullptr;
    std::vector<uint64_t> in_;      ///< numInputs * P, staged
    std::vector<uint64_t> scratch_; ///< latches * P (two-phase latch)
    std::vector<uint64_t> frames_;  ///< cycles * numWatch * P
    size_t cycles_ = 0;
    bool recording_ = true;
};

} // namespace rmp::sim

#endif // SIM_BATCH_HH
