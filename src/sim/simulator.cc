#include "sim/simulator.hh"

#include "common/logging.hh"

namespace rmp
{

Simulator::Simulator(const Design &design) : d(design)
{
    reset();
}

void
Simulator::reset()
{
    regs.assign(d.numCells(), 0);
    vals.assign(d.numCells(), 0);
    for (SigId r : d.registers())
        regs[r] = d.cell(r).cval.value();
    trace_.frames.clear();
    stepped = false;
}

namespace
{

uint64_t
evalCell(const Cell &c, const std::vector<uint64_t> &vals)
{
    uint64_t mask = BitVec::maskOf(c.width);
    auto a = [&]() { return vals[c.args[0]]; };
    auto b = [&]() { return vals[c.args[1]]; };
    switch (c.op) {
      case Op::Const:
        return c.cval.value();
      case Op::Not:
        return ~a() & mask;
      case Op::And:
        return a() & b();
      case Op::Or:
        return a() | b();
      case Op::Xor:
        return a() ^ b();
      case Op::RedOr:
        return a() != 0;
      case Op::Eq:
        return a() == b();
      case Op::Ult:
        return a() < b();
      case Op::Add:
        return (a() + b()) & mask;
      case Op::Sub:
        return (a() - b()) & mask;
      case Op::Mul:
        return (a() * b()) & mask;
      case Op::Shl: {
          uint64_t sh = b();
          return sh >= 64 ? 0 : (a() << sh) & mask;
      }
      case Op::Shr: {
          uint64_t sh = b();
          return sh >= 64 ? 0 : (a() >> sh) & mask;
      }
      case Op::Slice:
        return (a() >> c.aux0) & mask;
      case Op::Zext:
        return a();
      default:
        // RedAnd/Mux/Concat need operand-width context and are handled by
        // the caller; Input/Reg are seeded before evaluation.
        rmp_panic("evalCell: unexpected op %s", opName(c.op));
    }
}

} // anonymous namespace

void
Simulator::step(const InputMap &inputs)
{
    // Seed sources: registers and inputs.
    for (SigId r : d.registers())
        vals[r] = regs[r];
    for (SigId in : d.inputs()) {
        auto it = inputs.find(in);
        vals[in] = it == inputs.end()
                       ? 0
                       : (it->second & BitVec::maskOf(d.cell(in).width));
    }
    // Evaluate combinational cells in topological order.
    for (SigId id : d.topoOrder()) {
        const Cell &c = d.cell(id);
        switch (c.op) {
          case Op::RedAnd: {
              const Cell &ac = d.cell(c.args[0]);
              vals[id] = vals[c.args[0]] == BitVec::maskOf(ac.width);
              break;
          }
          case Op::Mux:
            vals[id] = vals[c.args[0]] ? vals[c.args[1]] : vals[c.args[2]];
            break;
          case Op::Concat: {
              const Cell &lo = d.cell(c.args[1]);
              vals[id] = (vals[c.args[0]] << lo.width) | vals[c.args[1]];
              break;
          }
          default:
            vals[id] = evalCell(c, vals);
        }
    }
    if (recording)
        trace_.frames.push_back(vals);
    // Latch registers.
    for (SigId r : d.registers())
        regs[r] = vals[d.cell(r).args[0]];
    stepped = true;
}

uint64_t
Simulator::value(SigId sig) const
{
    rmp_assert(stepped, "value() before any step()");
    return vals[sig];
}

uint64_t
Simulator::regValue(SigId reg) const
{
    rmp_assert(d.cell(reg).op == Op::Reg, "regValue on non-register");
    return regs[reg];
}

} // namespace rmp
