/**
 * @file
 * Internal vector-kernel templates for the explicit-SIMD tape backend
 * (DESIGN.md §3h, "Backend selection").
 *
 * The tape's SoA layout — vals[slot * P + lane] — makes every op a dense
 * strip of P independent 64-bit lanes. The interpreter (BatchSim's
 * computed-goto kernel) leans on the autovectorizer for that strip; the
 * kernels here vectorize it explicitly through a small vector-value
 * abstraction V:
 *
 *   VPort<W>  portable fixed-width array, plain loops (W = 1 is the
 *             scalar kernel used for P < the native vector width);
 *   VSse2     x86-64 baseline, two 64-bit lanes per __m128i;
 *   VNeon     AArch64, two 64-bit lanes per uint64x2_t;
 *   VAvx2     four lanes per __m256i — lives in simd_avx2.cc, the only
 *             TU compiled with -mavx2, and is selected at runtime.
 *
 * evalOpsVec<V> fuses each levelized same-opcode run (compileTape groups
 * ops by opcode within a topo level) into one switch arm: a single
 * opcode test covers the whole run, and the inner loops are straight
 * vector ops with no per-op dispatch at all. Ops inside a run execute
 * sequentially — a run can span topo levels, so op k may legitimately
 * read op k-1's destination; only lanes are vectorized, never ops.
 *
 * Every kernel must match the interpreted Simulator bit for bit; the
 * differential tests (test_sim_compiled, test_sim_backends) enforce it
 * on boundary widths (1, 63, 64) and seeded random programs. Ops with
 * no native mapping (e.g. 64-bit multiply on SSE2/NEON, variable shifts
 * on SSE2) round-trip through a scalar strip — correctness first, the
 * surrounding ops still vectorize.
 */

#ifndef SIM_SIMD_KERNELS_HH
#define SIM_SIMD_KERNELS_HH

#include <cstdint>

#include "sim/tape.hh"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>
#define RMP_SIMD_HAVE_SSE2 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define RMP_SIMD_HAVE_NEON 1
#endif

namespace rmp::sim::detail
{

/** Apply a scalar binary op lane by lane through a store/load round
 *  trip — the fallback for ops a given ISA has no native form of. */
template <typename V, typename F>
inline V
vmap2(const V &a, const V &b, F &&f)
{
    uint64_t ta[V::W], tb[V::W];
    a.store(ta);
    b.store(tb);
    for (unsigned i = 0; i < V::W; i++)
        ta[i] = f(ta[i], tb[i]);
    return V::load(ta);
}

/** Portable vector of W 64-bit lanes; plain loops the compiler may
 *  autovectorize. VPort<1> doubles as the scalar kernel. */
template <unsigned W_>
struct VPort
{
    static constexpr unsigned W = W_;
    uint64_t x[W_];

    static VPort
    load(const uint64_t *p)
    {
        VPort r;
        for (unsigned i = 0; i < W; i++)
            r.x[i] = p[i];
        return r;
    }
    void
    store(uint64_t *p) const
    {
        for (unsigned i = 0; i < W; i++)
            p[i] = x[i];
    }
    static VPort
    splat(uint64_t v)
    {
        VPort r;
        for (unsigned i = 0; i < W; i++)
            r.x[i] = v;
        return r;
    }

#define RMP_VPORT_LANEWISE(NAME, EXPR)                                     \
    static VPort NAME(const VPort &a, const VPort &b)                      \
    {                                                                      \
        VPort r;                                                           \
        for (unsigned i = 0; i < W; i++)                                   \
            r.x[i] = (EXPR);                                               \
        return r;                                                          \
    }
    RMP_VPORT_LANEWISE(band, a.x[i] & b.x[i])
    RMP_VPORT_LANEWISE(bor, a.x[i] | b.x[i])
    RMP_VPORT_LANEWISE(bxor, a.x[i] ^ b.x[i])
    /** (~a) & m — the mask operand makes Not width-correct. */
    RMP_VPORT_LANEWISE(notm, ~a.x[i] & b.x[i])
    RMP_VPORT_LANEWISE(add, a.x[i] + b.x[i])
    RMP_VPORT_LANEWISE(sub, a.x[i] - b.x[i])
    RMP_VPORT_LANEWISE(mul, a.x[i] * b.x[i])
    RMP_VPORT_LANEWISE(eq01, a.x[i] == b.x[i] ? 1 : 0)
    RMP_VPORT_LANEWISE(ult01, a.x[i] < b.x[i] ? 1 : 0)
    RMP_VPORT_LANEWISE(shl, b.x[i] >= 64 ? 0 : a.x[i] << b.x[i])
    RMP_VPORT_LANEWISE(shr, b.x[i] >= 64 ? 0 : a.x[i] >> b.x[i])
#undef RMP_VPORT_LANEWISE

    static VPort
    ne01(const VPort &a)
    {
        VPort r;
        for (unsigned i = 0; i < W; i++)
            r.x[i] = a.x[i] != 0 ? 1 : 0;
        return r;
    }
    static VPort
    mux(const VPort &s, const VPort &b, const VPort &c)
    {
        VPort r;
        for (unsigned i = 0; i < W; i++)
            r.x[i] = s.x[i] ? b.x[i] : c.x[i];
        return r;
    }
    /** Constant shifts (Slice / Concat): s is in [0, 63]. */
    static VPort
    shlc(const VPort &a, unsigned s)
    {
        VPort r;
        for (unsigned i = 0; i < W; i++)
            r.x[i] = a.x[i] << s;
        return r;
    }
    static VPort
    shrc(const VPort &a, unsigned s)
    {
        VPort r;
        for (unsigned i = 0; i < W; i++)
            r.x[i] = a.x[i] >> s;
        return r;
    }
};

#if defined(RMP_SIMD_HAVE_SSE2)

/** x86-64 baseline kernel: two 64-bit lanes per __m128i. SSE2 has no
 *  64-bit compare/multiply/per-lane shift, so eq and mul are composed
 *  from 32-bit forms and ult / variable shifts fall back to the scalar
 *  strip. */
struct VSse2
{
    static constexpr unsigned W = 2;
    __m128i x;

    static VSse2
    load(const uint64_t *p)
    {
        return {_mm_loadu_si128(reinterpret_cast<const __m128i *>(p))};
    }
    void
    store(uint64_t *p) const
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), x);
    }
    static VSse2 splat(uint64_t v)
    {
        return {_mm_set1_epi64x(static_cast<long long>(v))};
    }

    static VSse2 band(const VSse2 &a, const VSse2 &b)
    {
        return {_mm_and_si128(a.x, b.x)};
    }
    static VSse2 bor(const VSse2 &a, const VSse2 &b)
    {
        return {_mm_or_si128(a.x, b.x)};
    }
    static VSse2 bxor(const VSse2 &a, const VSse2 &b)
    {
        return {_mm_xor_si128(a.x, b.x)};
    }
    static VSse2 notm(const VSse2 &a, const VSse2 &m)
    {
        return {_mm_andnot_si128(a.x, m.x)}; // (~a) & m
    }
    static VSse2 add(const VSse2 &a, const VSse2 &b)
    {
        return {_mm_add_epi64(a.x, b.x)};
    }
    static VSse2 sub(const VSse2 &a, const VSse2 &b)
    {
        return {_mm_sub_epi64(a.x, b.x)};
    }
    static VSse2
    mul(const VSse2 &a, const VSse2 &b)
    {
        // 64-bit product from 32x32->64 partials:
        // lo*lo + ((lo*hi + hi*lo) << 32); the hi*hi term shifts out.
        __m128i lolo = _mm_mul_epu32(a.x, b.x);
        __m128i lohi = _mm_mul_epu32(a.x, _mm_srli_epi64(b.x, 32));
        __m128i hilo = _mm_mul_epu32(_mm_srli_epi64(a.x, 32), b.x);
        __m128i mid = _mm_slli_epi64(_mm_add_epi64(lohi, hilo), 32);
        return {_mm_add_epi64(lolo, mid)};
    }
    /** All-ones per 64-bit lane where a == b (composed from the 32-bit
     *  compare: both halves must match). */
    static __m128i
    eqMask(__m128i a, __m128i b)
    {
        __m128i t = _mm_cmpeq_epi32(a, b);
        return _mm_and_si128(t,
                             _mm_shuffle_epi32(t, _MM_SHUFFLE(2, 3, 0, 1)));
    }
    static VSse2
    eq01(const VSse2 &a, const VSse2 &b)
    {
        return {_mm_srli_epi64(eqMask(a.x, b.x), 63)};
    }
    static VSse2
    ne01(const VSse2 &a)
    {
        __m128i z = eqMask(a.x, _mm_setzero_si128());
        return {_mm_andnot_si128(z, _mm_set1_epi64x(1))};
    }
    static VSse2
    ult01(const VSse2 &a, const VSse2 &b)
    {
        return vmap2(a, b, [](uint64_t p, uint64_t q) -> uint64_t {
            return p < q ? 1 : 0;
        });
    }
    static VSse2
    shl(const VSse2 &a, const VSse2 &b)
    {
        return vmap2(a, b, [](uint64_t p, uint64_t q) -> uint64_t {
            return q >= 64 ? 0 : p << q;
        });
    }
    static VSse2
    shr(const VSse2 &a, const VSse2 &b)
    {
        return vmap2(a, b, [](uint64_t p, uint64_t q) -> uint64_t {
            return q >= 64 ? 0 : p >> q;
        });
    }
    static VSse2
    mux(const VSse2 &s, const VSse2 &b, const VSse2 &c)
    {
        __m128i z = eqMask(s.x, _mm_setzero_si128()); // ones where s == 0
        return {_mm_or_si128(_mm_and_si128(z, c.x),
                             _mm_andnot_si128(z, b.x))};
    }
    static VSse2
    shlc(const VSse2 &a, unsigned s)
    {
        return {_mm_sll_epi64(a.x, _mm_cvtsi32_si128(static_cast<int>(s)))};
    }
    static VSse2
    shrc(const VSse2 &a, unsigned s)
    {
        return {_mm_srl_epi64(a.x, _mm_cvtsi32_si128(static_cast<int>(s)))};
    }
};

using VWide = VSse2;
inline constexpr const char *kWideIsa = "sse2";

#elif defined(RMP_SIMD_HAVE_NEON)

/** AArch64 kernel: two 64-bit lanes per uint64x2_t. NEON has native
 *  64-bit compares and selects; multiply and variable shifts fall back
 *  to the scalar strip (vshlq's modulo-256 count semantics do not match
 *  the tape's shift >= 64 -> 0 rule for arbitrary 64-bit counts). */
struct VNeon
{
    static constexpr unsigned W = 2;
    uint64x2_t x;

    static VNeon load(const uint64_t *p) { return {vld1q_u64(p)}; }
    void store(uint64_t *p) const { vst1q_u64(p, x); }
    static VNeon splat(uint64_t v) { return {vdupq_n_u64(v)}; }

    static VNeon band(const VNeon &a, const VNeon &b)
    {
        return {vandq_u64(a.x, b.x)};
    }
    static VNeon bor(const VNeon &a, const VNeon &b)
    {
        return {vorrq_u64(a.x, b.x)};
    }
    static VNeon bxor(const VNeon &a, const VNeon &b)
    {
        return {veorq_u64(a.x, b.x)};
    }
    static VNeon notm(const VNeon &a, const VNeon &m)
    {
        return {vbicq_u64(m.x, a.x)}; // m & ~a
    }
    static VNeon add(const VNeon &a, const VNeon &b)
    {
        return {vaddq_u64(a.x, b.x)};
    }
    static VNeon sub(const VNeon &a, const VNeon &b)
    {
        return {vsubq_u64(a.x, b.x)};
    }
    static VNeon
    mul(const VNeon &a, const VNeon &b)
    {
        return vmap2(a, b,
                     [](uint64_t p, uint64_t q) -> uint64_t { return p * q; });
    }
    static VNeon
    eq01(const VNeon &a, const VNeon &b)
    {
        return {vshrq_n_u64(vceqq_u64(a.x, b.x), 63)};
    }
    static VNeon
    ne01(const VNeon &a)
    {
        return {vshrq_n_u64(vtstq_u64(a.x, a.x), 63)};
    }
    static VNeon
    ult01(const VNeon &a, const VNeon &b)
    {
        return {vshrq_n_u64(vcltq_u64(a.x, b.x), 63)};
    }
    static VNeon
    shl(const VNeon &a, const VNeon &b)
    {
        return vmap2(a, b, [](uint64_t p, uint64_t q) -> uint64_t {
            return q >= 64 ? 0 : p << q;
        });
    }
    static VNeon
    shr(const VNeon &a, const VNeon &b)
    {
        return vmap2(a, b, [](uint64_t p, uint64_t q) -> uint64_t {
            return q >= 64 ? 0 : p >> q;
        });
    }
    static VNeon
    mux(const VNeon &s, const VNeon &b, const VNeon &c)
    {
        uint64x2_t z = vceqq_u64(s.x, vdupq_n_u64(0));
        return {vbslq_u64(z, c.x, b.x)};
    }
    static VNeon
    shlc(const VNeon &a, unsigned s)
    {
        int64x2_t cnt = vdupq_n_s64(static_cast<int64_t>(s));
        return {vshlq_u64(a.x, cnt)};
    }
    static VNeon
    shrc(const VNeon &a, unsigned s)
    {
        int64x2_t cnt = vdupq_n_s64(-static_cast<int64_t>(s));
        return {vshlq_u64(a.x, cnt)};
    }
};

using VWide = VNeon;
inline constexpr const char *kWideIsa = "neon";

#else

using VWide = VPort<4>;
inline constexpr const char *kWideIsa = "portable";

#endif

// NOLINTBEGIN(cppcoreguidelines-macro-usage)
#define RMP_KRN_UNARY()                                                    \
    uint64_t *__restrict pd = v + size_t(dd[i]) * P;                       \
    const uint64_t *pa = v + size_t(da[i]) * P
#define RMP_KRN_BINARY()                                                   \
    RMP_KRN_UNARY();                                                       \
    const uint64_t *pb = v + size_t(db[i]) * P
#define RMP_KRN_TERNARY()                                                  \
    RMP_KRN_BINARY();                                                      \
    const uint64_t *pc = v + size_t(dc[i]) * P

/** One switch arm: drain the whole same-opcode run [i, e). */
#define RMP_KRN_RUN(TOPC, BODY)                                            \
    case TOp::TOPC:                                                        \
        for (; i < e; i++) {                                               \
            BODY                                                           \
        }                                                                  \
        break

/**
 * Execute the tape's op program over @p P physical lanes of @p v with
 * vector type V. Requires P % V::W == 0; the caller (simdEvalOps)
 * guarantees it by construction (P is a power of two >= V::W).
 */
template <typename V>
void
evalOpsVec(const Tape &tp, uint64_t *v, unsigned P)
{
    const size_t n = tp.opc.size();
    const uint8_t *opc = tp.opc.data();
    const Slot *dd = tp.dst.data();
    const Slot *da = tp.a.data();
    const Slot *db = tp.b.data();
    const Slot *dc = tp.c.data();
    const uint32_t *aux = tp.aux.data();
    const uint64_t *msk = tp.mask.data();

    size_t i = 0;
    while (i < n) {
        // One dispatch per same-opcode run: compileTape groups ops by
        // opcode within each topo level, so runs are long.
        const uint8_t o = opc[i];
        size_t e = i + 1;
        while (e < n && opc[e] == o)
            e++;
        switch (static_cast<TOp>(o)) {
            RMP_KRN_RUN(Not, {
                RMP_KRN_UNARY();
                const V m = V::splat(msk[i]);
                for (unsigned l = 0; l < P; l += V::W)
                    V::notm(V::load(pa + l), m).store(pd + l);
            });
            RMP_KRN_RUN(And, {
                RMP_KRN_BINARY();
                for (unsigned l = 0; l < P; l += V::W)
                    V::band(V::load(pa + l), V::load(pb + l)).store(pd + l);
            });
            RMP_KRN_RUN(Or, {
                RMP_KRN_BINARY();
                for (unsigned l = 0; l < P; l += V::W)
                    V::bor(V::load(pa + l), V::load(pb + l)).store(pd + l);
            });
            RMP_KRN_RUN(Xor, {
                RMP_KRN_BINARY();
                for (unsigned l = 0; l < P; l += V::W)
                    V::bxor(V::load(pa + l), V::load(pb + l)).store(pd + l);
            });
            RMP_KRN_RUN(RedOr, {
                RMP_KRN_UNARY();
                for (unsigned l = 0; l < P; l += V::W)
                    V::ne01(V::load(pa + l)).store(pd + l);
            });
            RMP_KRN_RUN(RedAnd, {
                RMP_KRN_UNARY();
                const V m = V::splat(msk[i]);
                for (unsigned l = 0; l < P; l += V::W)
                    V::eq01(V::load(pa + l), m).store(pd + l);
            });
            RMP_KRN_RUN(Eq, {
                RMP_KRN_BINARY();
                for (unsigned l = 0; l < P; l += V::W)
                    V::eq01(V::load(pa + l), V::load(pb + l)).store(pd + l);
            });
            RMP_KRN_RUN(Ult, {
                RMP_KRN_BINARY();
                for (unsigned l = 0; l < P; l += V::W)
                    V::ult01(V::load(pa + l), V::load(pb + l)).store(pd + l);
            });
            RMP_KRN_RUN(Add, {
                RMP_KRN_BINARY();
                const V m = V::splat(msk[i]);
                for (unsigned l = 0; l < P; l += V::W)
                    V::band(V::add(V::load(pa + l), V::load(pb + l)), m)
                        .store(pd + l);
            });
            RMP_KRN_RUN(Sub, {
                RMP_KRN_BINARY();
                const V m = V::splat(msk[i]);
                for (unsigned l = 0; l < P; l += V::W)
                    V::band(V::sub(V::load(pa + l), V::load(pb + l)), m)
                        .store(pd + l);
            });
            RMP_KRN_RUN(Mul, {
                RMP_KRN_BINARY();
                const V m = V::splat(msk[i]);
                for (unsigned l = 0; l < P; l += V::W)
                    V::band(V::mul(V::load(pa + l), V::load(pb + l)), m)
                        .store(pd + l);
            });
            RMP_KRN_RUN(Shl, {
                RMP_KRN_BINARY();
                const V m = V::splat(msk[i]);
                for (unsigned l = 0; l < P; l += V::W)
                    V::band(V::shl(V::load(pa + l), V::load(pb + l)), m)
                        .store(pd + l);
            });
            RMP_KRN_RUN(Shr, {
                RMP_KRN_BINARY();
                const V m = V::splat(msk[i]);
                for (unsigned l = 0; l < P; l += V::W)
                    V::band(V::shr(V::load(pa + l), V::load(pb + l)), m)
                        .store(pd + l);
            });
            RMP_KRN_RUN(Mux, {
                RMP_KRN_TERNARY();
                for (unsigned l = 0; l < P; l += V::W)
                    V::mux(V::load(pa + l), V::load(pb + l),
                           V::load(pc + l))
                        .store(pd + l);
            });
            RMP_KRN_RUN(Slice, {
                RMP_KRN_UNARY();
                const V m = V::splat(msk[i]);
                const unsigned s = aux[i];
                for (unsigned l = 0; l < P; l += V::W)
                    V::band(V::shrc(V::load(pa + l), s), m).store(pd + l);
            });
            RMP_KRN_RUN(Concat, {
                RMP_KRN_BINARY();
                const unsigned s = aux[i];
                for (unsigned l = 0; l < P; l += V::W)
                    V::bor(V::shlc(V::load(pa + l), s), V::load(pb + l))
                        .store(pd + l);
            });
        }
        i = e;
    }
}

#undef RMP_KRN_RUN
#undef RMP_KRN_TERNARY
#undef RMP_KRN_BINARY
#undef RMP_KRN_UNARY
// NOLINTEND(cppcoreguidelines-macro-usage)

} // namespace rmp::sim::detail

#endif // SIM_SIMD_KERNELS_HH
