/**
 * @file
 * Cross-query memoization of BMC cover results.
 *
 * RTL2MμPATH and SynthLC instantiate the same property templates over and
 * over — across pipeline steps, across IUVs, and across candidate sets —
 * so the same (design, bound, budget, sequence, assumes, fixed-frame)
 * query recurs many times per run. The QueryCache memoizes the full
 * CoverResult (verdict + replay-validated witness) under a canonical
 * 128-bit key covering the complete semantic input of a query, so a
 * repeat is answered without touching a solver.
 *
 * Soundness: the key includes every input that can influence the verdict —
 * the design fingerprint, the unrolling bound, the per-query SAT budget
 * (budgets decide Undetermined outcomes), the structural hash of the
 * cover sequence DAG, the multiset of assume hashes (conjunction is
 * order-insensitive, so the per-assume hashes are sorted before mixing),
 * the fixed start frame, and — under COI pruning — the fingerprint of
 * the sequential cone the query is answered over (Undetermined verdicts
 * are instance-relative: the same budget exhausts differently on a
 * pruned instance than on the full design, so results from the two
 * instance shapes must never alias). A cached Reachable witness was
 * simulator-replayed when first computed and stays valid because the
 * design is immutable.
 */

#ifndef EXEC_QUERY_CACHE_HH
#define EXEC_QUERY_CACHE_HH

#include <mutex>
#include <unordered_map>
#include <vector>

#include "bmc/engine.hh"
#include "obs/registry.hh"
#include "prop/property.hh"

namespace rmp::exec
{

/** Canonical 128-bit key of one cover query. */
struct QueryKey
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool
    operator==(const QueryKey &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

struct QueryKeyHash
{
    size_t operator()(const QueryKey &k) const { return k.lo; }
};

/**
 * Build the canonical key for one query.
 *
 * @p design_fp is the structural fingerprint of the design the engine
 * unrolls (designFingerprint()); @p fixed_frame is -1 for any-frame
 * covers, matching bmc::Engine::cover vs coverAt. @p coi_fp is the
 * fingerprint of the query's sequential support cone
 * (analysis::Cone::fingerprint) when EngineConfig::coiPruning routes the
 * query to a cone-restricted instance, 0 otherwise.
 */
QueryKey makeQueryKey(uint64_t design_fp, const bmc::EngineConfig &cfg,
                      const prop::ExprRef &seq,
                      const std::vector<prop::ExprRef> &assumes,
                      int fixed_frame, uint64_t coi_fp = 0);

/**
 * Canonical byte serialization of the same semantic inputs makeQueryKey
 * digests. The 128-bit QueryKey is itself a hash, so two distinct
 * queries CAN collide on it — astronomically unlikely, but a silent
 * collision would alias one query's verdict to another, the worst
 * possible cache failure. The cache therefore stores these bytes
 * alongside each entry and compares them on lookup: a digest collision
 * degrades to a counted miss (`exec.cache.collisions`) instead of a
 * wrong verdict. Assume serializations are sorted before joining,
 * mirroring the key's order-insensitive conjunction hashing.
 */
std::string makeQueryKeyBytes(uint64_t design_fp,
                              const bmc::EngineConfig &cfg,
                              const prop::ExprRef &seq,
                              const std::vector<prop::ExprRef> &assumes,
                              int fixed_frame, uint64_t coi_fp = 0);

/** Structural fingerprint of a Design (cells, widths, connectivity). */
uint64_t designFingerprint(const Design &d);

/**
 * Cache counter snapshot (monotonic; read via EnginePool::stats). The
 * live counters are obs::Counter instances in the global metrics
 * registry, labeled `cache=<instance>` so concurrent pools (e.g. the
 * jobs=1 vs jobs=4 runs of bench_perf_properties) stay individually
 * exact; this struct is the point-in-time copy handed to reports.
 */
struct CacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
    /** Digest collisions caught by the canonical-bytes comparison. */
    uint64_t collisions = 0;
};

/**
 * A CoverResult in its stored form: a Reachable witness keeps only its
 * replayable per-cycle inputs, not the full all-signals trace (a trace is
 * cells x bound x 8 bytes — megabytes on the core DUV — while the inputs
 * are a few KB). expandResult() re-derives the identical trace by
 * deterministic simulator replay, which is exactly how the engine
 * produced the original trace during witness validation.
 */
struct CachedResult
{
    bmc::Outcome outcome = bmc::Outcome::Undetermined;
    std::vector<InputMap> inputs;
    unsigned matchFrame = 0;
    bool hasTrace = false;
};

/** Compress a CoverResult for storage. */
CachedResult compressResult(const bmc::CoverResult &r);

/** Reconstruct the full CoverResult (replaying the witness on @p d). */
bmc::CoverResult expandResult(const CachedResult &c, const Design &d);

/**
 * Thread-safe memoization table: QueryKey -> CachedResult, with the
 * query's canonical bytes (makeQueryKeyBytes) stored per entry and
 * compared on every lookup, so a 128-bit digest collision is detected
 * (and counted) rather than silently aliasing one query's verdict to
 * another. Colliding queries coexist in one digest bucket.
 *
 * get()/put() are individually locked; the EnginePool performs all get()
 * calls on the submitting thread (deterministic order) and put() calls
 * from workers, so a result is published exactly once per key. The
 * hit/miss/entry/collision counters are lock-free obs::Counter handles
 * owned by the global metrics registry (labeled per cache instance),
 * updated outside the map mutex.
 */
class QueryCache
{
  public:
    QueryCache();

    /**
     * Look up @p key; returns true and fills @p out on a hit. A hit
     * additionally requires @p keyBytes to match the stored entry's
     * canonical bytes.
     */
    bool get(const QueryKey &key, const std::string &keyBytes,
             CachedResult *out);

    /** Publish the result of a completed query. */
    void put(const QueryKey &key, const std::string &keyBytes,
             const bmc::CoverResult &result);

    CacheStats stats() const;

  private:
    explicit QueryCache(const obs::Labels &labels);

    /** Entries sharing one 128-bit digest (almost always exactly one). */
    struct Entry
    {
        std::string keyBytes;
        CachedResult res;
    };

    mutable std::mutex mu;
    std::unordered_map<QueryKey, std::vector<Entry>, QueryKeyHash> map;
    obs::Counter &hits_;
    obs::Counter &misses_;
    obs::Counter &entries_;
    obs::Counter &collisions_;
};

} // namespace rmp::exec

#endif // EXEC_QUERY_CACHE_HH
