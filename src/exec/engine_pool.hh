/**
 * @file
 * Parallel cover-query evaluation: a pool of BMC engine lanes driven by
 * worker threads, with cross-query memoization.
 *
 * The paper leans on JasperGold's proof-grid parallelism to evaluate the
 * thousands of template-instantiated cover properties RTL2MμPATH and
 * SynthLC issue per DUV (§V-B, §VII-B3); this is the reproduction's
 * equivalent. The pool owns a fixed number of engine *lanes* — each a
 * private bmc::Engine with its own solver and incremental unrolling over
 * the shared immutable Design — and a configurable number of worker
 * threads that execute queued lane work. Queries submitted in one batch
 * are independent by contract and run concurrently, one lane per thread
 * at a time; order-dependent loops (all-SAT blocking-clause enumeration)
 * use the sequential eval() path.
 *
 * Determinism: verdicts must not depend on --jobs. A query's verdict can
 * depend on its engine's history (learned clauses shift which queries
 * exhaust a SAT budget), so the pool fixes the lane count *independently
 * of the thread count* and assigns queries to lanes round-robin in
 * submission order, with all cache decisions made serially on the
 * submitting thread. Every lane therefore sees the same query sequence —
 * and returns the same verdicts, witnesses, and Undetermined tallies —
 * whether the lanes are drained by 1 thread or 16.
 */

#ifndef EXEC_ENGINE_POOL_HH
#define EXEC_ENGINE_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bmc/engine.hh"
#include "exec/query_cache.hh"

namespace rmp::exec
{

/** One cover query: the unit of work submitted to the pool. */
struct Query
{
    prop::ExprRef seq;
    std::vector<prop::ExprRef> assumes;
    /** Start frame; -1 = any frame (Engine::cover vs coverAt). */
    int fixedFrame = -1;
};

/** Pool sizing. */
struct ExecConfig
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
    /**
     * Engine lanes; 0 = kDefaultLanes. Verdict determinism across --jobs
     * values requires the lane count to NOT depend on jobs — two runs
     * with different lane counts shard query history differently and may
     * disagree on budget-exhaustion (Undetermined) verdicts.
     */
    unsigned lanes = 0;
};

/** Aggregate pool statistics. */
struct PoolStats
{
    /** Engine stats merged across lanes (solver-evaluated queries only). */
    bmc::EngineStats engine;
    /** SAT solver stats merged across lanes. */
    sat::SatStats sat;
    /** COI / instance-size stats merged across lanes. */
    bmc::CoiStats coi;
    /** Query-cache counters (hits never touch a lane). */
    CacheStats cache;
    /** Lanes whose engine was actually constructed. */
    unsigned lanesBuilt = 0;
};

/**
 * The engine pool. One instance per (design, engine config); both
 * synthesizers own one and submit every BMC query through it.
 *
 * Threading contract: a single orchestrator thread calls eval()/
 * evalBatch()/parallelFor(); the calls block until the submitted work is
 * complete. Worker threads never submit work themselves.
 */
class EnginePool
{
  public:
    static constexpr unsigned kDefaultLanes = 8;

    EnginePool(const Design &design, const bmc::EngineConfig &engine_cfg,
               const ExecConfig &exec_cfg = {});
    ~EnginePool();

    EnginePool(const EnginePool &) = delete;
    EnginePool &operator=(const EnginePool &) = delete;

    /** Evaluate one query (cache-checked) on the calling thread. */
    bmc::CoverResult eval(const Query &q);

    /**
     * Evaluate a batch of independent queries; results are returned in
     * submission order. Duplicate queries within the batch are solved
     * once (the rest are cache hits).
     */
    std::vector<bmc::CoverResult> evalBatch(const std::vector<Query> &qs);

    /**
     * Generic data parallelism on the same workers (no engines touched):
     * run fn(0..n-1) across the pool. Used for simulation batches. @p fn
     * must only write to index-distinct state.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    unsigned jobs() const { return jobs_; }
    unsigned lanes() const { return static_cast<unsigned>(lanes_.size()); }
    unsigned bound() const { return engCfg.bound; }
    const Design &design() const { return d; }
    const bmc::EngineConfig &engineConfig() const { return engCfg; }

    PoolStats stats() const;

  private:
    struct Lane
    {
        std::unique_ptr<bmc::Engine> eng;
    };

    /** A deduplicated batch entry routed to one lane. */
    struct Unit
    {
        QueryKey key;
        std::string keyBytes;
        const Query *q = nullptr;
        size_t primary = 0;           ///< result slot filled by the solver
        std::vector<size_t> aliases;  ///< duplicate slots (served as hits)
        unsigned lane = 0;
    };

    bmc::Engine &laneEngine(unsigned lane);
    /** @p submit_ns: submission timestamp for queue-wait attribution
     *  (0 = not queued, e.g. the synchronous eval() path). */
    bmc::CoverResult runOnLane(unsigned lane, const Query &q,
                               const QueryKey &key,
                               const std::string &keyBytes,
                               uint64_t submit_ns = 0);
    void runTasks(std::vector<std::function<void()>> tasks);
    void workerLoop();

    /**
     * Fingerprint of @p q's sequential support cone, for cache keying
     * under COI pruning (0 when pruning is off). Memoized per support
     * set; called only from the submitting thread, like all cache
     * decisions, so the memo needs no lock.
     */
    uint64_t coneFp(const Query &q);

    const Design &d;
    bmc::EngineConfig engCfg;
    uint64_t designFp;
    unsigned jobs_ = 1;
    std::vector<Lane> lanes_;
    /** Round-robin lane cursor; advanced once per cache-missed query. */
    uint64_t nextLane = 0;
    QueryCache cache_;
    /** Support-set hash -> cone fingerprint (COI pruning only). */
    std::unordered_map<uint64_t, uint64_t> coneFps;
    /** Fixed mux selects (staticPrune && coiPruning only; else empty);
     *  keeps coneFp() consistent with the lane engines' narrowing. */
    std::vector<int8_t> muxSel_;

    /** @name Worker machinery (only active when jobs > 1) */
    /// @{
    std::mutex mu;
    std::condition_variable cvWork, cvDone;
    std::deque<std::function<void()>> tasks_;
    size_t pending = 0;
    bool stopping = false;
    std::vector<std::thread> workers;
    /// @}
};

} // namespace rmp::exec

#endif // EXEC_ENGINE_POOL_HH
