#include "exec/query_cache.hh"

#include <algorithm>

namespace rmp::exec
{

namespace
{

/** splitmix64 finalizer (same combiner family as prop::exprHash). */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

uint64_t
keyWord(uint64_t seed, uint64_t design_fp, const bmc::EngineConfig &cfg,
        const prop::ExprRef &seq, const std::vector<prop::ExprRef> &assumes,
        int fixed_frame, uint64_t coi_fp)
{
    uint64_t h = mix64(seed ^ design_fp);
    h = mix64(h ^ cfg.bound);
    h = mix64(h ^ cfg.budget.maxConflicts);
    h = mix64(h ^ cfg.budget.maxPropagations);
    h = mix64(h ^ static_cast<uint64_t>(cfg.validateWitnesses));
    h = mix64(h ^ static_cast<uint64_t>(static_cast<int64_t>(fixed_frame)));
    h = mix64(h ^ coi_fp);
    // Static pruning changes which queries reach the solver (and, with
    // COI narrowing, the instance shape), so pruned and unpruned runs
    // must never share entries; the facts fingerprint covers the facts
    // themselves (a refined fixpoint is a different pruning oracle).
    h = mix64(h ^ static_cast<uint64_t>(cfg.staticPrune));
    h = mix64(h ^ (cfg.staticPrune && cfg.staticFacts
                       ? cfg.staticFacts->fingerprint
                       : 0));
    h = mix64(h ^ prop::exprHash(seq, seed));
    // Assumes form a conjunction: order must not change the key.
    std::vector<uint64_t> ah;
    ah.reserve(assumes.size());
    for (const auto &a : assumes)
        ah.push_back(prop::exprHash(a, seed + 1));
    std::sort(ah.begin(), ah.end());
    for (uint64_t x : ah)
        h = mix64(h ^ x);
    return h;
}

} // anonymous namespace

QueryKey
makeQueryKey(uint64_t design_fp, const bmc::EngineConfig &cfg,
             const prop::ExprRef &seq,
             const std::vector<prop::ExprRef> &assumes, int fixed_frame,
             uint64_t coi_fp)
{
    QueryKey k;
    k.lo = keyWord(0x517cc1b727220a95ULL, design_fp, cfg, seq, assumes,
                   fixed_frame, coi_fp);
    k.hi = keyWord(0x2545f4914f6cdd1dULL, design_fp, cfg, seq, assumes,
                   fixed_frame, coi_fp);
    return k;
}

std::string
makeQueryKeyBytes(uint64_t design_fp, const bmc::EngineConfig &cfg,
                  const prop::ExprRef &seq,
                  const std::vector<prop::ExprRef> &assumes, int fixed_frame,
                  uint64_t coi_fp)
{
    // Scalar fields in decimal, '|'-separated; expression serializations
    // use only "(),A-G" and digits, so '|' is an unambiguous delimiter.
    std::string s;
    s += std::to_string(design_fp);
    s.push_back('|');
    s += std::to_string(cfg.bound);
    s.push_back('|');
    s += std::to_string(cfg.budget.maxConflicts);
    s.push_back('|');
    s += std::to_string(cfg.budget.maxPropagations);
    s.push_back('|');
    s += std::to_string(static_cast<int>(cfg.validateWitnesses));
    s.push_back('|');
    s += std::to_string(fixed_frame);
    s.push_back('|');
    s += std::to_string(coi_fp);
    s.push_back('|');
    s += std::to_string(static_cast<int>(cfg.staticPrune));
    s.push_back('|');
    s += std::to_string(cfg.staticPrune && cfg.staticFacts
                            ? cfg.staticFacts->fingerprint
                            : 0);
    s.push_back('|');
    prop::serializeExpr(seq, &s);
    // Sorted, like the key's assume-hash multiset: conjunction order
    // must not change the bytes either.
    std::vector<std::string> ab(assumes.size());
    for (size_t i = 0; i < assumes.size(); i++)
        prop::serializeExpr(assumes[i], &ab[i]);
    std::sort(ab.begin(), ab.end());
    for (const std::string &a : ab) {
        s.push_back('|');
        s += a;
    }
    return s;
}

uint64_t
designFingerprint(const Design &d)
{
    uint64_t h = mix64(0x9ae16a3b2f90404fULL ^ d.numCells());
    for (SigId id = 0; id < d.numCells(); id++) {
        const Cell &c = d.cell(id);
        h = mix64(h ^ static_cast<uint64_t>(c.op));
        h = mix64(h ^ c.width);
        for (unsigned i = 0; i < 3; i++)
            h = mix64(h ^ static_cast<uint64_t>(c.args[i]));
        h = mix64(h ^ c.cval.value());
        h = mix64(h ^ c.aux0);
    }
    return h;
}

CachedResult
compressResult(const bmc::CoverResult &r)
{
    CachedResult c;
    c.outcome = r.outcome;
    if (r.outcome == bmc::Outcome::Reachable) {
        c.inputs = r.witness.inputs;
        c.matchFrame = r.witness.matchFrame;
        c.hasTrace = r.witness.trace.numCycles() > 0;
    }
    return c;
}

bmc::CoverResult
expandResult(const CachedResult &c, const Design &d)
{
    bmc::CoverResult r;
    r.outcome = c.outcome;
    r.seconds = 0.0; // a hit costs (essentially) nothing
    if (c.outcome == bmc::Outcome::Reachable) {
        r.witness.inputs = c.inputs;
        r.witness.matchFrame = c.matchFrame;
        if (c.hasTrace) {
            Simulator sim(d);
            for (const auto &in : c.inputs)
                sim.step(in);
            r.witness.trace = sim.trace();
        }
    }
    return r;
}

QueryCache::QueryCache()
    // Per-instance registry counters: concurrent caches (one per pool)
    // must tally independently for the benches' per-run accounting, so
    // each instance gets a distinct `cache=<n>` label.
    : QueryCache([] {
          static std::atomic<uint64_t> next{0};
          return obs::Labels{{"cache", std::to_string(next.fetch_add(1))}};
      }())
{
}

QueryCache::QueryCache(const obs::Labels &labels)
    : hits_(obs::Registry::global().counter("exec.cache.hits", labels)),
      misses_(obs::Registry::global().counter("exec.cache.misses", labels)),
      entries_(obs::Registry::global().counter("exec.cache.entries", labels)),
      collisions_(
          obs::Registry::global().counter("exec.cache.collisions", labels))
{
}

bool
QueryCache::get(const QueryKey &key, const std::string &keyBytes,
                CachedResult *out)
{
    bool hit = false;
    bool collided = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = map.find(key);
        if (it != map.end()) {
            for (const Entry &e : it->second) {
                if (e.keyBytes == keyBytes) {
                    *out = e.res;
                    hit = true;
                    break;
                }
            }
            // Digest matched but no entry's bytes did: a genuine 128-bit
            // collision, served as a miss instead of a wrong verdict.
            collided = !hit;
        }
    }
    (hit ? hits_ : misses_).add(1);
    if (collided)
        collisions_.add(1);
    return hit;
}

void
QueryCache::put(const QueryKey &key, const std::string &keyBytes,
                const bmc::CoverResult &result)
{
    bool inserted = false;
    bool collided = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        std::vector<Entry> &bucket = map[key];
        bool present = false;
        for (const Entry &e : bucket)
            if (e.keyBytes == keyBytes) {
                present = true;
                break;
            }
        if (!present) {
            collided = !bucket.empty();
            bucket.push_back(Entry{keyBytes, compressResult(result)});
            inserted = true;
        }
    }
    if (inserted)
        entries_.add(1);
    if (collided)
        collisions_.add(1);
}

CacheStats
QueryCache::stats() const
{
    CacheStats s;
    s.hits = hits_.value();
    s.misses = misses_.value();
    s.entries = entries_.value();
    s.collisions = collisions_.value();
    return s;
}

} // namespace rmp::exec
