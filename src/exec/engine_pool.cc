#include "exec/engine_pool.hh"

#include <algorithm>
#include <atomic>
#include <map>

#include "analysis/coi.hh"
#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace rmp::exec
{

EnginePool::EnginePool(const Design &design,
                       const bmc::EngineConfig &engine_cfg,
                       const ExecConfig &exec_cfg)
    : d(design), engCfg(engine_cfg), designFp(designFingerprint(design))
{
    // Compute the absint facts once here rather than once per lane: every
    // lane engine shares one immutable AbsFacts (and the cone-fingerprint
    // memo below narrows with the same mux-select vector the engines use).
    if (engCfg.staticPrune) {
        if (!engCfg.staticFacts)
            engCfg.staticFacts = std::make_shared<const analysis::AbsFacts>(
                analysis::absInterpret(d));
        if (engCfg.coiPruning)
            muxSel_ = analysis::muxSelectFacts(d, *engCfg.staticFacts);
    }
    unsigned lanes = exec_cfg.lanes ? exec_cfg.lanes : kDefaultLanes;
    lanes_.resize(lanes);
    unsigned hw = std::thread::hardware_concurrency();
    jobs_ = exec_cfg.jobs ? exec_cfg.jobs : std::max(1u, hw);
    // Warm the design's lazy topo-order cache before any worker can race
    // on it; every later const access is then read-only.
    d.topoOrder();
    if (jobs_ > 1) {
        workers.reserve(jobs_);
        for (unsigned i = 0; i < jobs_; i++)
            workers.emplace_back([this] { workerLoop(); });
    }
}

EnginePool::~EnginePool()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    cvWork.notify_all();
    for (auto &w : workers)
        w.join();
}

bmc::Engine &
EnginePool::laneEngine(unsigned lane)
{
    Lane &l = lanes_[lane];
    if (!l.eng)
        l.eng = std::make_unique<bmc::Engine>(d, engCfg);
    return *l.eng;
}

bmc::CoverResult
EnginePool::runOnLane(unsigned lane, const Query &q, const QueryKey &key,
                      const std::string &keyBytes, uint64_t submit_ns)
{
    // A verdict that failed its audit (witness replay or DRAT closure
    // contradicted the solver) is quarantined: returned to the caller
    // with audit.mismatch set, loudly flagged, and kept OUT of the query
    // cache so a poisoned verdict can never be served as a future hit.
    auto publish = [&](const bmc::CoverResult &r) {
        if (r.audit.mismatch)
            warn(strfmt("lane %u: audited verdict quarantined (not "
                        "cached): %s",
                        lane, r.audit.detail.c_str()));
        else
            cache_.put(key, keyBytes, r);
    };
    if (!obs::enabled()) {
        bmc::Engine &eng = laneEngine(lane);
        bmc::CoverResult r =
            q.fixedFrame >= 0
                ? eng.coverAt(q.seq, q.assumes,
                              static_cast<unsigned>(q.fixedFrame))
                : eng.cover(q.seq, q.assumes);
        publish(r);
        return r;
    }
    // Route everything this query records — the lane span and the nested
    // bmc/sat spans — onto the lane's own track, so the exported trace
    // shows one swim-lane per engine lane irrespective of which worker
    // thread drained it (the paper's proof-grid picture).
    obs::ScopedTrack track(static_cast<int32_t>(lane));
    obs::setTrackName(static_cast<int32_t>(lane),
                      "lane-" + std::to_string(lane));
    obs::Span span("pool-lane", "exec");
    span.arg("lane", lane);
    uint64_t start = obs::nowNs();
    obs::Registry &reg = obs::Registry::global();
    if (submit_ns) {
        span.arg("queue_wait_ns", start - submit_ns);
        reg.histogram("exec.queue_wait_ns").record(start - submit_ns);
    }
    bmc::Engine &eng = laneEngine(lane);
    bmc::CoverResult r =
        q.fixedFrame >= 0
            ? eng.coverAt(q.seq, q.assumes,
                          static_cast<unsigned>(q.fixedFrame))
            : eng.cover(q.seq, q.assumes);
    publish(r);
    span.arg("outcome", static_cast<uint64_t>(r.outcome));
    obs::Labels lane_label{{"lane", std::to_string(lane)}};
    reg.counter("exec.lane_tasks", lane_label).add(1);
    reg.counter("exec.lane_busy_ns", lane_label)
        .add(obs::nowNs() - start);
    return r;
}

void
EnginePool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            cvWork.wait(lock, [this] { return stopping || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping, queue drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu);
            pending--;
        }
        cvDone.notify_all();
    }
}

void
EnginePool::runTasks(std::vector<std::function<void()>> tasks)
{
    if (workers.empty() || tasks.size() <= 1) {
        for (auto &t : tasks)
            t();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu);
        pending += tasks.size();
        for (auto &t : tasks)
            tasks_.push_back(std::move(t));
    }
    cvWork.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    cvDone.wait(lock, [this] { return pending == 0; });
}

uint64_t
EnginePool::coneFp(const Query &q)
{
    if (!engCfg.coiPruning)
        return 0;
    std::vector<SigId> roots;
    prop::collectSigs(q.seq, &roots);
    for (const auto &a : q.assumes)
        prop::collectSigs(a, &roots);
    std::sort(roots.begin(), roots.end());
    roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
    // FNV-1a over the sorted support set keys the memo; the value is the
    // cone fingerprint the engine's ctxFor() would compute for it.
    uint64_t rh = 0xcbf29ce484222325ULL;
    for (SigId r : roots) {
        rh ^= static_cast<uint64_t>(r) + 1;
        rh *= 0x100000001b3ULL;
    }
    auto it = coneFps.find(rh);
    if (it != coneFps.end())
        return it->second;
    // Same mux-select narrowing as the lane engines' ctxFor(), so this
    // fingerprint names the instance that will actually answer the query.
    const std::vector<int8_t> *ms = muxSel_.empty() ? nullptr : &muxSel_;
    analysis::Cone cone = analysis::backwardCone(d, roots, -1, ms);
    coneFps.emplace(rh, cone.fingerprint);
    return cone.fingerprint;
}

bmc::CoverResult
EnginePool::eval(const Query &q)
{
    uint64_t cone_fp = coneFp(q);
    QueryKey key = makeQueryKey(designFp, engCfg, q.seq, q.assumes,
                                q.fixedFrame, cone_fp);
    std::string bytes = makeQueryKeyBytes(designFp, engCfg, q.seq, q.assumes,
                                          q.fixedFrame, cone_fp);
    CachedResult hit;
    if (cache_.get(key, bytes, &hit))
        return expandResult(hit, d);
    unsigned lane = static_cast<unsigned>(nextLane++ % lanes_.size());
    return runOnLane(lane, q, key, bytes);
}

std::vector<bmc::CoverResult>
EnginePool::evalBatch(const std::vector<Query> &qs)
{
    obs::Span span("pool-batch", "exec");
    span.arg("queries", qs.size());
    std::vector<bmc::CoverResult> results(qs.size());
    // Serial pass on the submitting thread: cache decisions and lane
    // assignment happen in deterministic submission order.
    std::vector<Unit> units;
    std::map<std::string, size_t> firstUnit;
    for (size_t i = 0; i < qs.size(); i++) {
        uint64_t cone_fp = coneFp(qs[i]);
        QueryKey key = makeQueryKey(designFp, engCfg, qs[i].seq,
                                    qs[i].assumes, qs[i].fixedFrame,
                                    cone_fp);
        std::string bytes =
            makeQueryKeyBytes(designFp, engCfg, qs[i].seq, qs[i].assumes,
                              qs[i].fixedFrame, cone_fp);
        CachedResult hit;
        if (cache_.get(key, bytes, &hit)) {
            results[i] = expandResult(hit, d);
            continue;
        }
        // In-batch dedup keys on the canonical bytes, not the digest, so
        // a digest collision within one batch cannot alias two queries.
        auto [it, fresh] = firstUnit.try_emplace(bytes, units.size());
        if (!fresh) {
            units[it->second].aliases.push_back(i);
            continue;
        }
        Unit u;
        u.key = key;
        u.keyBytes = std::move(bytes);
        u.q = &qs[i];
        u.primary = i;
        u.lane = static_cast<unsigned>(nextLane++ % lanes_.size());
        units.push_back(std::move(u));
    }

    span.arg("solver_units", units.size());

    // Group units by lane, preserving submission order within a lane.
    std::vector<std::vector<Unit *>> perLane(lanes_.size());
    for (Unit &u : units)
        perLane[u.lane].push_back(&u);
    std::vector<std::function<void()>> tasks;
    uint64_t submit_ns = span.active() ? obs::nowNs() : 0;
    for (auto &lane_units : perLane) {
        if (lane_units.empty())
            continue;
        tasks.push_back([this, &results, lane_units, submit_ns] {
            for (Unit *u : lane_units)
                results[u->primary] = runOnLane(u->lane, *u->q, u->key,
                                                u->keyBytes, submit_ns);
        });
    }
    runTasks(std::move(tasks));

    // Serve in-batch duplicates from the now-published entries (counted
    // as cache hits: they never touched a solver). A quarantined result
    // (audit mismatch) was deliberately never published — duplicates of
    // it copy the primary's flagged result instead.
    for (const Unit &u : units) {
        for (size_t i : u.aliases) {
            CachedResult hit;
            if (cache_.get(u.key, u.keyBytes, &hit)) {
                results[i] = expandResult(hit, d);
            } else {
                rmp_assert(results[u.primary].audit.mismatch,
                           "batch duplicate missing from cache");
                results[i] = results[u.primary];
            }
        }
    }
    return results;
}

void
EnginePool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    obs::Span span("parallel-for", "exec");
    span.arg("n", n);
    if (workers.empty() || n <= 1) {
        for (size_t i = 0; i < n; i++)
            fn(i);
        return;
    }
    auto next = std::make_shared<std::atomic<size_t>>(0);
    size_t width = std::min<size_t>(jobs_, n);
    std::vector<std::function<void()>> tasks;
    for (size_t t = 0; t < width; t++) {
        tasks.push_back([next, n, &fn] {
            for (size_t i = (*next)++; i < n; i = (*next)++)
                fn(i);
        });
    }
    runTasks(std::move(tasks));
}

PoolStats
EnginePool::stats() const
{
    PoolStats s;
    for (const Lane &l : lanes_) {
        if (!l.eng)
            continue;
        s.lanesBuilt++;
        const bmc::EngineStats &e = l.eng->stats();
        s.engine.queries += e.queries;
        s.engine.reachable += e.reachable;
        s.engine.unreachable += e.unreachable;
        s.engine.undetermined += e.undetermined;
        s.engine.staticPruned += e.staticPruned;
        s.engine.totalSeconds += e.totalSeconds;
        s.engine.auditReplayed += e.auditReplayed;
        s.engine.auditProofChecked += e.auditProofChecked;
        s.engine.auditMismatches += e.auditMismatches;
        const sat::SatStats st = l.eng->satStats();
        s.sat.conflicts += st.conflicts;
        s.sat.decisions += st.decisions;
        s.sat.propagations += st.propagations;
        s.sat.restarts += st.restarts;
        s.sat.learnedClauses += st.learnedClauses;
        s.sat.removedClauses += st.removedClauses;
        const bmc::CoiStats ci = l.eng->coiStats();
        s.coi.queries += ci.queries;
        s.coi.coneCells += ci.coneCells;
        s.coi.designCells += ci.designCells;
        s.coi.conesBuilt += ci.conesBuilt;
        s.coi.aigNodes += ci.aigNodes;
        s.coi.satVars += ci.satVars;
    }
    s.cache = cache_.stats();
    return s;
}

} // namespace rmp::exec
