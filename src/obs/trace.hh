/**
 * @file
 * Scoped tracing with chrome://tracing-compatible JSON export.
 *
 * A Span is an RAII scope: construction samples the steady clock,
 * destruction appends one complete event to the recording thread's
 * private buffer. Buffers are strictly per-thread — only the owning
 * thread ever appends — so recording never contends: the per-buffer
 * mutex exists solely so the exporter can take a consistent snapshot
 * while pool worker threads are still alive, and is uncontended on the
 * hot path. When observability is disabled (obs::enabled() == false) a
 * Span is inert: one relaxed atomic load, no clock read, no buffer
 * touch.
 *
 * Span names and categories must be string literals (or otherwise
 * outlive the trace); args are numeric key/value pairs stored inline,
 * so recording a span never allocates.
 *
 * Tracks: by default an event lands on the recording thread's track.
 * ScopedTrack overrides the track for everything recorded in its scope
 * — the engine pool routes each lane's work onto a `lane-N` track, so
 * the exported trace shows one swim-lane per engine lane (the paper's
 * proof-grid picture), regardless of which worker thread drained it.
 * exportChromeTrace()/traceJson() emit the Trace Event Format JSON that
 * chrome://tracing and Perfetto load directly.
 */

#ifndef OBS_TRACE_HH
#define OBS_TRACE_HH

#include <cstdint>
#include <string>

#include "obs/obs.hh"

namespace rmp::obs
{

/** No track override. */
constexpr int32_t kNoTrack = -1;

/** An RAII trace span ("X" complete event in the chrome trace). */
class Span
{
  public:
    static constexpr int kMaxArgs = 6;

    explicit Span(const char *name, const char *cat = "rmp")
    {
        if (enabled()) {
            name_ = name;
            cat_ = cat;
            t0_ = nowNs();
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span()
    {
        if (name_)
            finish();
    }

    /** True when this span is recording (observability was enabled). */
    bool active() const { return name_ != nullptr; }

    /** Attach a numeric argument (ignored beyond kMaxArgs / inactive). */
    void
    arg(const char *key, uint64_t value)
    {
        if (name_ && nargs_ < kMaxArgs) {
            keys_[nargs_] = key;
            vals_[nargs_] = value;
            nargs_++;
        }
    }

  private:
    void finish();

    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    uint64_t t0_ = 0;
    const char *keys_[kMaxArgs];
    uint64_t vals_[kMaxArgs];
    int nargs_ = 0;
};

/** Route spans recorded in this scope onto track @p track. */
class ScopedTrack
{
  public:
    explicit ScopedTrack(int32_t track);
    ~ScopedTrack();

    ScopedTrack(const ScopedTrack &) = delete;
    ScopedTrack &operator=(const ScopedTrack &) = delete;

  private:
    int32_t prev_;
};

/** Name a track (rendered as the thread name in Perfetto). */
void setTrackName(int32_t track, const std::string &name);

/** Total spans recorded so far (across all threads). */
size_t eventCount();

/** Drop all recorded events and track names (buffers stay registered). */
void clearTrace();

/** The full trace as chrome Trace Event Format JSON. */
std::string traceJson();

/** Write traceJson() to @p path; returns false on I/O failure. */
bool exportChromeTrace(const std::string &path);

} // namespace rmp::obs

#endif // OBS_TRACE_HH
