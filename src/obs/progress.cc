#include "obs/progress.hh"

#include <cstdio>

#include "obs/obs.hh"

namespace rmp::obs
{

namespace
{
std::atomic<ProgressSink *> g_sink{nullptr};
} // anonymous namespace

void
setProgressSink(ProgressSink *sink)
{
    g_sink.store(sink, std::memory_order_release);
}

void
progress(const char *phase, uint64_t done, uint64_t total,
         const std::string &detail)
{
    ProgressSink *s = g_sink.load(std::memory_order_acquire);
    if (!s)
        return;
    Progress p;
    p.phase = phase;
    p.done = done;
    p.total = total;
    p.detail = detail;
    s->update(p);
}

StderrProgress::StderrProgress(uint64_t minIntervalNs)
    : minIntervalNs_(minIntervalNs)
{
}

StderrProgress::~StderrProgress()
{
    std::lock_guard<std::mutex> lock(mu);
    if (dirty_)
        std::fprintf(stderr, "\n");
}

void
StderrProgress::update(const Progress &p)
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t now = nowNs();
    bool phaseChange = p.phase != lastPhase_;
    bool finished = p.total && p.done >= p.total;
    if (!phaseChange && !finished && now - lastNs_ < minIntervalNs_)
        return;
    lastNs_ = now;
    lastPhase_ = p.phase;
    if (p.total)
        std::fprintf(stderr, "\r\033[K[%s] %llu/%llu %s", p.phase,
                     static_cast<unsigned long long>(p.done),
                     static_cast<unsigned long long>(p.total),
                     p.detail.c_str());
    else
        std::fprintf(stderr, "\r\033[K[%s] %llu %s", p.phase,
                     static_cast<unsigned long long>(p.done),
                     p.detail.c_str());
    std::fflush(stderr);
    dirty_ = true;
}

} // namespace rmp::obs
