/**
 * @file
 * Live synthesis progress reporting.
 *
 * A ProgressSink receives (phase, done, total) updates from the
 * synthesis layers — exploration runs finished, covers evaluated per
 * step, IUVs completed — so long runs (the paper's multi-day CVA6
 * campaigns, §VII-B3) are observable while in flight. The sink is
 * installed globally and updates may arrive from pool worker threads,
 * so implementations must be internally synchronized; the default
 * StderrProgress rewrites a single rate-limited status line.
 *
 * With no sink installed, progress() is one relaxed atomic load.
 */

#ifndef OBS_PROGRESS_HH
#define OBS_PROGRESS_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace rmp::obs
{

/** One progress update. @p phase must outlive the call (string literal). */
struct Progress
{
    const char *phase = "";
    uint64_t done = 0;
    uint64_t total = 0; ///< 0 when the total is unknown
    std::string detail; ///< e.g. the IUV or design under work
};

class ProgressSink
{
  public:
    virtual ~ProgressSink() = default;
    virtual void update(const Progress &p) = 0;
};

/** Install @p sink (not owned; nullptr uninstalls). Thread-safe. */
void setProgressSink(ProgressSink *sink);

/** Report progress to the installed sink, if any. */
void progress(const char *phase, uint64_t done, uint64_t total,
              const std::string &detail = "");

/**
 * Default sink: a single in-place status line on stderr, rewritten at
 * most every @p minIntervalNs (phase changes always print).
 */
class StderrProgress : public ProgressSink
{
  public:
    explicit StderrProgress(uint64_t minIntervalNs = 100'000'000);
    ~StderrProgress() override;

    void update(const Progress &p) override;

  private:
    std::mutex mu;
    uint64_t minIntervalNs_;
    uint64_t lastNs_ = 0;
    std::string lastPhase_;
    bool dirty_ = false; ///< a line is on screen and needs a final \n
};

} // namespace rmp::obs

#endif // OBS_PROGRESS_HH
