/**
 * @file
 * Thread-safe metrics registry: counters, gauges, and log2-bucketed
 * histograms (for times and sizes), identified by (name, labels).
 *
 * Handles returned by Registry::counter()/gauge()/histogram() are stable
 * references into registry-owned storage: acquisition takes the registry
 * mutex once, after which every update is a lock-free atomic operation.
 * Instrumented subsystems acquire their handles at construction time
 * (e.g. exec::QueryCache) or on first use and hold them for their
 * lifetime; Registry::reset() zeroes values but never invalidates a
 * handle, so tests can reset between cases while pools stay live.
 *
 * Labels attribute a metric to its source — design, IUV, property class,
 * pool instance — mirroring how the paper's evaluation (§VII) breaks
 * verifier effort down per DUV and per property template.
 */

#ifndef OBS_REGISTRY_HH
#define OBS_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rmp::obs
{

/** Monotonic counter. Updates are relaxed atomic adds (exact totals). */
class Counter
{
  public:
    void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Last-write-wins instantaneous value (e.g. live instance sizes). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Log2-bucketed histogram for durations (record ns) and sizes (record
 * counts). Bucket b holds samples with floor(log2(v)) == b (v=0 goes to
 * bucket 0); sum/count/max give exact aggregates. All updates are
 * relaxed atomics, so concurrent recording from pool workers is exact
 * for count and sum and monotonic for max.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    void
    record(uint64_t v)
    {
        unsigned b = 0;
        while ((1ULL << (b + 1)) <= v && b + 1 < kBuckets)
            b++;
        buckets_[b].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
        uint64_t prev = max_.load(std::memory_order_relaxed);
        while (v > prev &&
               !max_.compare_exchange_weak(prev, v,
                                           std::memory_order_relaxed))
            ;
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }
    double
    mean() const
    {
        uint64_t c = count();
        return c ? static_cast<double>(sum()) / static_cast<double>(c) : 0.0;
    }
    uint64_t
    bucket(unsigned b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> buckets_[kBuckets]{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> max_{0};
};

/** Sorted label list; rendered as `k1=v1,k2=v2`. */
struct Labels
{
    std::vector<std::pair<std::string, std::string>> kv;

    Labels() = default;
    Labels(std::initializer_list<std::pair<std::string, std::string>> init);

    std::string str() const;
    bool operator<(const Labels &o) const { return kv < o.kv; }
};

/** One metric's point-in-time value, for rendering and JSON export. */
struct Sample
{
    enum class Kind : uint8_t { Counter, Gauge, Histogram };

    std::string name;
    std::string labels;
    Kind kind = Kind::Counter;
    /** Counter/gauge value, or histogram count. */
    int64_t value = 0;
    /** Histogram aggregates (0 for counters/gauges). */
    uint64_t sum = 0;
    uint64_t max = 0;
    double mean = 0.0;
};

/**
 * The registry. One process-global instance (Registry::global()) backs
 * the `--stats` report and the run-summary JSON; independent instances
 * can be constructed for tests.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(const std::string &name, const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});
    Histogram &histogram(const std::string &name, const Labels &labels = {});

    /** All metrics, sorted by (name, labels). */
    std::vector<Sample> snapshot() const;

    /**
     * Zero every metric. Handles stay valid — metrics are zeroed in
     * place, never destroyed — so long-lived instruments keep working.
     */
    void reset();

  private:
    struct Metric
    {
        Sample::Kind kind;
        std::unique_ptr<Counter> c;
        std::unique_ptr<Gauge> g;
        std::unique_ptr<Histogram> h;
    };

    Metric &find(const std::string &name, const Labels &labels,
                 Sample::Kind kind);

    mutable std::mutex mu;
    std::map<std::pair<std::string, Labels>, Metric> metrics;
};

} // namespace rmp::obs

#endif // OBS_REGISTRY_HH
