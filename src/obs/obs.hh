/**
 * @file
 * Observability master switch and clock.
 *
 * All tracing and metric *sampling* in the hot layers (sat, bmc, exec,
 * rtl2mupath, synthlc) is gated behind one relaxed atomic load —
 * obs::enabled() — so a build with observability compiled in but turned
 * off pays a single predictable branch per instrumentation site and no
 * clock reads, no allocation, and no locking (bench_obs_overhead proves
 * the <2% bound). Always-on counters (e.g. the query-cache hit/miss
 * counters, which the benches require regardless of observability) live
 * in registry.hh and are plain atomic increments.
 */

#ifndef OBS_OBS_HH
#define OBS_OBS_HH

#include <atomic>
#include <chrono>
#include <cstdint>

namespace rmp::obs
{

namespace detail
{
extern std::atomic<bool> g_enabled;
} // namespace detail

/** True when tracing / metric sampling is on. One relaxed atomic load. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * Turn observability on or off. Enabling also pins the trace epoch (the
 * zero of chrome-trace timestamps) if it is not already set.
 */
void setEnabled(bool on);

/** Monotonic nanoseconds (steady clock). */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace rmp::obs

#endif // OBS_OBS_HH
