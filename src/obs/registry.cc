#include "obs/registry.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rmp::obs
{

Labels::Labels(
    std::initializer_list<std::pair<std::string, std::string>> init)
    : kv(init)
{
    std::sort(kv.begin(), kv.end());
}

std::string
Labels::str() const
{
    std::string out;
    for (size_t i = 0; i < kv.size(); i++) {
        if (i)
            out += ",";
        out += kv[i].first + "=" + kv[i].second;
    }
    return out;
}

Registry &
Registry::global()
{
    static Registry r;
    return r;
}

Registry::Metric &
Registry::find(const std::string &name, const Labels &labels,
               Sample::Kind kind)
{
    std::lock_guard<std::mutex> lock(mu);
    auto [it, fresh] = metrics.try_emplace({name, labels});
    Metric &m = it->second;
    if (fresh) {
        m.kind = kind;
        switch (kind) {
          case Sample::Kind::Counter:
            m.c = std::make_unique<Counter>();
            break;
          case Sample::Kind::Gauge:
            m.g = std::make_unique<Gauge>();
            break;
          case Sample::Kind::Histogram:
            m.h = std::make_unique<Histogram>();
            break;
        }
    }
    rmp_assert(m.kind == kind, "metric '%s' re-registered as another kind",
               name.c_str());
    return m;
}

Counter &
Registry::counter(const std::string &name, const Labels &labels)
{
    return *find(name, labels, Sample::Kind::Counter).c;
}

Gauge &
Registry::gauge(const std::string &name, const Labels &labels)
{
    return *find(name, labels, Sample::Kind::Gauge).g;
}

Histogram &
Registry::histogram(const std::string &name, const Labels &labels)
{
    return *find(name, labels, Sample::Kind::Histogram).h;
}

std::vector<Sample>
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<Sample> out;
    out.reserve(metrics.size());
    for (const auto &[key, m] : metrics) {
        Sample s;
        s.name = key.first;
        s.labels = key.second.str();
        s.kind = m.kind;
        switch (m.kind) {
          case Sample::Kind::Counter:
            s.value = static_cast<int64_t>(m.c->value());
            break;
          case Sample::Kind::Gauge:
            s.value = m.g->value();
            break;
          case Sample::Kind::Histogram:
            s.value = static_cast<int64_t>(m.h->count());
            s.sum = m.h->sum();
            s.max = m.h->max();
            s.mean = m.h->mean();
            break;
        }
        out.push_back(std::move(s));
    }
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[key, m] : metrics) {
        switch (m.kind) {
          case Sample::Kind::Counter: m.c->reset(); break;
          case Sample::Kind::Gauge: m.g->reset(); break;
          case Sample::Kind::Histogram: m.h->reset(); break;
        }
    }
}

} // namespace rmp::obs
