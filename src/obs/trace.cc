#include "obs/trace.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace rmp::obs
{

namespace detail
{
std::atomic<bool> g_enabled{false};
} // namespace detail

namespace
{

/** One recorded complete event. */
struct Event
{
    const char *name;
    const char *cat;
    uint64_t ts;  ///< start, ns (steady clock)
    uint64_t dur; ///< ns
    int32_t track;
    const char *keys[Span::kMaxArgs];
    uint64_t vals[Span::kMaxArgs];
    uint8_t nargs;
};

/**
 * Per-thread event buffer. Only the owning thread appends; the mutex is
 * taken by the exporter (and by clearTrace) to snapshot safely while
 * the thread is alive, and is uncontended during recording.
 */
struct ThreadBuf
{
    std::mutex mu;
    std::vector<Event> events;
    uint32_t tid = 0;
};

struct TraceState
{
    std::mutex mu; ///< guards bufs / trackNames / epoch / nextTid
    std::vector<std::unique_ptr<ThreadBuf>> bufs;
    std::map<int32_t, std::string> trackNames;
    uint64_t epochNs = 0;
    uint32_t nextTid = 1000; ///< thread tracks; explicit tracks sit below
};

TraceState &
state()
{
    static TraceState *s = new TraceState; // immortal: threads may outlive main
    return *s;
}

thread_local ThreadBuf *tl_buf = nullptr;
thread_local int32_t tl_track = kNoTrack;

ThreadBuf &
threadBuf()
{
    if (!tl_buf) {
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        s.bufs.push_back(std::make_unique<ThreadBuf>());
        s.bufs.back()->tid = s.nextTid++;
        tl_buf = s.bufs.back().get();
    }
    return *tl_buf;
}

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    for (char c : in) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) >= 0x20)
            out += c;
    }
    return out;
}

} // anonymous namespace

void
setEnabled(bool on)
{
    if (on) {
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        if (!s.epochNs)
            s.epochNs = nowNs();
    }
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
Span::finish()
{
    uint64_t t1 = nowNs();
    Event e;
    e.name = name_;
    e.cat = cat_;
    e.ts = t0_;
    e.dur = t1 - t0_;
    e.track = tl_track;
    e.nargs = static_cast<uint8_t>(nargs_);
    for (int i = 0; i < nargs_; i++) {
        e.keys[i] = keys_[i];
        e.vals[i] = vals_[i];
    }
    ThreadBuf &b = threadBuf();
    std::lock_guard<std::mutex> lock(b.mu);
    b.events.push_back(e);
}

ScopedTrack::ScopedTrack(int32_t track) : prev_(tl_track)
{
    tl_track = track;
}

ScopedTrack::~ScopedTrack() { tl_track = prev_; }

void
setTrackName(int32_t track, const std::string &name)
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.trackNames[track] = name;
}

size_t
eventCount()
{
    TraceState &s = state();
    std::vector<ThreadBuf *> bufs;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        for (auto &b : s.bufs)
            bufs.push_back(b.get());
    }
    size_t n = 0;
    for (ThreadBuf *b : bufs) {
        std::lock_guard<std::mutex> lock(b->mu);
        n += b->events.size();
    }
    return n;
}

void
clearTrace()
{
    TraceState &s = state();
    std::vector<ThreadBuf *> bufs;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        for (auto &b : s.bufs)
            bufs.push_back(b.get());
        s.trackNames.clear();
    }
    for (ThreadBuf *b : bufs) {
        std::lock_guard<std::mutex> lock(b->mu);
        b->events.clear();
    }
}

std::string
traceJson()
{
    TraceState &s = state();
    std::vector<ThreadBuf *> bufs;
    std::map<int32_t, std::string> names;
    uint64_t epoch;
    {
        std::lock_guard<std::mutex> lock(s.mu);
        for (auto &b : s.bufs)
            bufs.push_back(b.get());
        names = s.trackNames;
        epoch = s.epochNs;
    }
    struct Rec
    {
        Event e;
        uint32_t tid;
    };
    std::vector<Rec> recs;
    for (ThreadBuf *b : bufs) {
        std::lock_guard<std::mutex> lock(b->mu);
        for (const Event &e : b->events)
            recs.push_back(
                {e, e.track >= 0 ? static_cast<uint32_t>(e.track) : b->tid});
    }
    std::stable_sort(recs.begin(), recs.end(),
                     [](const Rec &a, const Rec &b) {
                         return a.e.ts < b.e.ts;
                     });

    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };
    for (const auto &[track, name] : names) {
        sep();
        os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << track
           << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
           << jsonEscape(name) << "\"}}";
    }
    char buf[64];
    for (const Rec &r : recs) {
        sep();
        double ts_us = (r.e.ts - epoch) / 1000.0;
        double dur_us = r.e.dur / 1000.0;
        std::snprintf(buf, sizeof buf, "%.3f", ts_us);
        os << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << r.tid
           << ", \"name\": \"" << r.e.name << "\", \"cat\": \"" << r.e.cat
           << "\", \"ts\": " << buf;
        std::snprintf(buf, sizeof buf, "%.3f", dur_us);
        os << ", \"dur\": " << buf;
        if (r.e.nargs) {
            os << ", \"args\": {";
            for (int i = 0; i < r.e.nargs; i++) {
                if (i)
                    os << ", ";
                os << "\"" << r.e.keys[i] << "\": " << r.e.vals[i];
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
    return os.str();
}

bool
exportChromeTrace(const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << traceJson();
    return static_cast<bool>(f);
}

} // namespace rmp::obs
