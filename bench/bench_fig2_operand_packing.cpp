/**
 * @file
 * Fig. 2 — ADD μPATHs on CVA6-OP (operand packing): the packed path
 * spends one cycle in ID, the non-packed path revisits ID, and the
 * ADD_ID leakage function (Fig. 5 top) depends on the operands of the
 * ADD itself and of the concurrently decoded ALU op.
 */

#include <set>

#include "bench/bench_util.hh"
#include "designs/mcva.hh"

using namespace rmp;
using namespace rmp::bench;
using namespace rmp::designs;

int
main()
{
    banner("Fig. 2 — ADD μPATHs on CVA6-OP (operand packing)");
    Harness hx(buildMcva({.withOperandPacking = true}));
    const auto &info = hx.duv();

    r2m::SynthesisConfig scfg = benchSynthConfig();
    scfg.revisitCounts = true;
    scfg.maxRevisitCount = 4;
    r2m::MuPathSynthesizer synth(hx, scfg);

    uhb::InstrId add = info.instrId("ADD");
    uhb::InstrPaths paths = synth.synthesize(add);
    std::printf("%s\n", report::renderInstrPaths(hx, paths).c_str());
    std::printf("%s\n", report::renderDecisions(hx, paths).c_str());

    std::set<unsigned> id_counts;
    for (const auto &p : paths.paths)
        for (const auto &[pl, cs] : p.revisitCounts)
            if (hx.plName(pl) == "ID")
                for (unsigned c : cs)
                    id_counts.insert(c);
    std::string got = "{";
    for (unsigned c : id_counts)
        got += (got.size() > 1 ? "," : "") + std::to_string(c);
    got += "}";
    paperNote("packed ADD spends 1 cycle in ID (Fig. 2b); non-packed "
              "ADD revisits ID (Fig. 2c, ID(l=2))",
              "achievable ID visit counts = " + got);

    slc::SynthLcConfig lcfg = benchLcConfig();
    slc::SynthLc slc(hx, lcfg);
    auto sigs = slc.analyze(add, paths.decisions, {add});
    std::printf("\nsynthesized ADD leakage signatures (cf. ADD_ID in "
                "Fig. 5):\n");
    bool at_id = false;
    for (const auto &s : sigs) {
        std::printf("  %s\n", slc.render(s).c_str());
        at_id |= hx.plName(s.src) == "ID" && !s.inputs.empty();
    }
    paperNote("dst ADD_ID(ADD^N i0, ADD^D i1): packing eligibility reads "
              "both instructions' operands",
              std::string("operand-dependent decision at ID: ") +
                  (at_id ? "yes" : "no"));
    return 0;
}
