/**
 * @file
 * §VII-B3 — property-evaluation statistics: per-step property counts,
 * outcome breakdown, undetermined fraction, and the core-vs-cache
 * (whole-vs-modular) per-property cost comparison.
 *
 * The paper reports 124,459 RTL2MμPATH properties at 4.43 min/property
 * (16.39% undetermined) and 30,774 SynthLC properties at 2.35 min each
 * (13.74% undetermined) for the core, versus 4,178 properties at 3
 * *seconds* each for the cache. Absolute numbers are testbed-specific;
 * the shape we reproduce is (i) per-step property accounting, (ii) a
 * nonzero undetermined fraction under a finite budget, treated as
 * unreachable (§VII-B4), and (iii) the order-of-magnitude modularity win
 * of the cache DUV.
 */

#include "bench/bench_util.hh"
#include "designs/dcache.hh"
#include "designs/mcva.hh"

using namespace rmp;
using namespace rmp::bench;
using namespace rmp::designs;

namespace
{

struct RunCost
{
    uint64_t props = 0;
    double seconds = 0;
    uint64_t undet = 0;
};

RunCost
runOne(Harness &hx, const char *transponder, sat::SatBudget budget)
{
    r2m::SynthesisConfig scfg;
    scfg.budget = budget;
    r2m::MuPathSynthesizer synth(hx, scfg);
    slc::SynthLcConfig lcfg;
    lcfg.budget = budget;
    slc::SynthLc slc(hx, lcfg);
    uhb::InstrId id = hx.duv().instrId(transponder);
    auto paths = synth.synthesize(id);
    slc.analyze(id, paths.decisions, {id});
    std::printf("%s\n",
                report::renderStepStats(synth.stepStats(), &slc.stats())
                    .c_str());
    RunCost c;
    for (const auto &s : synth.stepStats()) {
        c.props += s.queries;
        c.seconds += s.seconds;
        c.undet += s.undetermined;
    }
    c.props += slc.stats().queries;
    c.seconds += slc.stats().seconds;
    c.undet += slc.stats().undetermined;
    return c;
}

} // namespace

int
main()
{
    banner("§VII-B3 — property-evaluation performance");
    sat::SatBudget tight;
    tight.maxConflicts = fullMode() ? 200'000 : 8'000;

    std::printf("\n-- Core DUV (MiniCVA), transponder LW\n");
    Harness core(buildMcva());
    RunCost c = runOne(core, "LW", tight);

    std::printf("\n-- Cache DUV (modular), transponder LDREQ\n");
    Harness cache(buildDcache());
    RunCost k = runOne(cache, "LDREQ", tight);

    double core_avg = c.props ? c.seconds / c.props : 0;
    double cache_avg = k.props ? k.seconds / k.props : 0;
    std::printf("\ncore:  %llu properties, %.3f s avg, %llu undetermined\n",
                (unsigned long long)c.props, core_avg,
                (unsigned long long)c.undet);
    std::printf("cache: %llu properties, %.3f s avg, %llu undetermined\n",
                (unsigned long long)k.props, cache_avg,
                (unsigned long long)k.undet);
    paperNote("core: 4.43 min/property (16.39% undetermined); cache: ALL "
              "properties complete within 3 seconds — 'highlighting the "
              "benefits of modularization'",
              "cache properties are " +
                  std::to_string(cache_avg > 0 ? core_avg / cache_avg : 0) +
                  "x cheaper than core properties on average "
                  "(same order-of-magnitude modularity win)");
    return 0;
}
