/**
 * @file
 * §VII-B3 — property-evaluation statistics: per-step property counts,
 * outcome breakdown, undetermined fraction, and the core-vs-cache
 * (whole-vs-modular) per-property cost comparison, plus the engine-pool
 * parallel-evaluation speedup (jobs=1 vs jobs=4 on the same workload).
 *
 * The paper reports 124,459 RTL2MμPATH properties at 4.43 min/property
 * (16.39% undetermined) and 30,774 SynthLC properties at 2.35 min each
 * (13.74% undetermined) for the core, versus 4,178 properties at 3
 * *seconds* each for the cache — evaluated on JasperGold's proof grid.
 * Absolute numbers are testbed-specific; the shape we reproduce is
 * (i) per-step property accounting, (ii) a nonzero undetermined fraction
 * under a finite budget, treated as unreachable (§VII-B4), (iii) the
 * order-of-magnitude modularity win of the cache DUV, and (iv) verdict
 * tallies that are bit-identical across --jobs values (DESIGN.md
 * §"Parallel evaluation").
 *
 * Machine-readable results land in BENCH_perf_properties.json.
 */

#include <chrono>

#include "bench/bench_util.hh"
#include "designs/dcache.hh"
#include "designs/mcva.hh"

using namespace rmp;
using namespace rmp::bench;
using namespace rmp::designs;

namespace
{

struct RunCost
{
    uint64_t props = 0;
    double seconds = 0;  ///< summed per-property solver time
    double wall = 0;     ///< end-to-end wall-clock time
    uint64_t reach = 0;
    uint64_t unreach = 0;
    uint64_t undet = 0;
    exec::PoolStats synthPool;
    exec::PoolStats lcPool;
};

RunCost
runOne(Harness &hx, const char *transponder, sat::SatBudget budget,
       unsigned jobs, bool verbose)
{
    auto t0 = std::chrono::steady_clock::now();
    r2m::SynthesisConfig scfg;
    scfg.budget = budget;
    scfg.jobs = jobs;
    r2m::MuPathSynthesizer synth(hx, scfg);
    slc::SynthLcConfig lcfg;
    lcfg.budget = budget;
    lcfg.jobs = jobs;
    slc::SynthLc slc(hx, lcfg);
    uhb::InstrId id = hx.duv().instrId(transponder);
    auto paths = synth.synthesize(id);
    slc.analyze(id, paths.decisions, {id});
    auto t1 = std::chrono::steady_clock::now();
    if (verbose)
        std::printf("%s\n",
                    report::renderStepStats(synth.stepStats(), &slc.stats())
                        .c_str());
    RunCost c;
    c.wall = std::chrono::duration<double>(t1 - t0).count();
    for (const auto &s : synth.stepStats()) {
        c.props += s.queries;
        c.seconds += s.seconds;
        c.reach += s.reachable;
        c.unreach += s.unreachable;
        c.undet += s.undetermined;
    }
    c.props += slc.stats().queries;
    c.seconds += slc.stats().seconds;
    c.reach += slc.stats().reachable;
    c.unreach += slc.stats().unreachable;
    c.undet += slc.stats().undetermined;
    c.synthPool = synth.pool().stats();
    c.lcPool = slc.pool().stats();
    return c;
}

std::string
runJson(const RunCost &c)
{
    JsonReport j;
    j.put("properties", c.props);
    j.put("wall_seconds", c.wall);
    j.put("solver_seconds", c.seconds);
    j.put("properties_per_second", c.wall > 0 ? c.props / c.wall : 0.0);
    j.put("reachable", c.reach);
    j.put("unreachable", c.unreach);
    j.put("undetermined", c.undet);
    j.putRaw("rtl2mupath_pool", poolStatsJson(c.synthPool));
    j.putRaw("synthlc_pool", poolStatsJson(c.lcPool));
    return j.str();
}

} // namespace

int
main()
{
    banner("§VII-B3 — property-evaluation performance");
    sat::SatBudget tight;
    tight.maxConflicts = fullMode() ? 200'000 : 8'000;

    // Parallel-evaluation comparison: the same core workload at jobs=1
    // and jobs=4. Verdict tallies must match exactly; wall time is the
    // only thing allowed to differ.
    std::printf("\n-- Core DUV (MiniCVA), transponder LW, jobs=1\n");
    Harness core(buildMcva());
    RunCost c1 = runOne(core, "LW", tight, 1, true);
    std::printf("\n-- Core DUV (MiniCVA), transponder LW, jobs=4\n");
    RunCost c4 = runOne(core, "LW", tight, 4, false);
    bool tallies_match = c1.props == c4.props && c1.reach == c4.reach &&
                         c1.unreach == c4.unreach && c1.undet == c4.undet;
    double speedup = c4.wall > 0 ? c1.wall / c4.wall : 0;
    std::printf("jobs=1: %.2fs wall   jobs=4: %.2fs wall   speedup %.2fx   "
                "tallies %s\n",
                c1.wall, c4.wall, speedup,
                tallies_match ? "identical" : "MISMATCH");
    std::printf("query cache: %llu hits / %llu misses (rtl2mupath, "
                "jobs=4 run)\n",
                (unsigned long long)c4.synthPool.cache.hits,
                (unsigned long long)c4.synthPool.cache.misses);

    std::printf("\n-- Cache DUV (modular), transponder LDREQ\n");
    Harness cache(buildDcache());
    RunCost k = runOne(cache, "LDREQ", tight, benchJobs(), true);

    double core_avg = c1.props ? c1.seconds / c1.props : 0;
    double cache_avg = k.props ? k.seconds / k.props : 0;
    std::printf("\ncore:  %llu properties, %.3f s avg, %llu undetermined\n",
                (unsigned long long)c1.props, core_avg,
                (unsigned long long)c1.undet);
    std::printf("cache: %llu properties, %.3f s avg, %llu undetermined\n",
                (unsigned long long)k.props, cache_avg,
                (unsigned long long)k.undet);
    paperNote("core: 4.43 min/property (16.39% undetermined); cache: ALL "
              "properties complete within 3 seconds — 'highlighting the "
              "benefits of modularization'",
              "cache properties are " +
                  std::to_string(cache_avg > 0 ? core_avg / cache_avg : 0) +
                  "x cheaper than core properties on average "
                  "(same order-of-magnitude modularity win)");

    JsonReport out;
    out.put("bench", std::string("perf_properties"));
    out.put("duv_core", std::string("mcva"));
    out.put("duv_cache", std::string("dcache"));
    out.put("budget_max_conflicts", (uint64_t)tight.maxConflicts);
    out.putRaw("core_jobs1", runJson(c1));
    out.putRaw("core_jobs4", runJson(c4));
    out.putRaw("cache", runJson(k));
    out.put("speedup_jobs4_over_jobs1", speedup);
    out.putRaw("tallies_match", tallies_match ? "true" : "false");
    out.put("core_avg_seconds_per_property", core_avg);
    out.put("cache_avg_seconds_per_property", cache_avg);
    const char *path = "BENCH_perf_properties.json";
    if (out.writeFile(path))
        std::printf("\nwrote %s\n", path);
    else
        std::printf("\nFAILED to write %s\n", path);
    return tallies_match ? 0 : 1;
}
