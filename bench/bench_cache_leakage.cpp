/**
 * @file
 * §VII-A2 — the cache leakage experiment: LDREQ/STREQ signatures on the
 * standalone cache DUV, including *static* transmitters (prior requests
 * whose fills persist in the tag/data arrays), which the core experiment
 * cannot produce. This is also the modular-verification showcase: the
 * cache DUV's properties are far cheaper than the core's (§VII-B3).
 */

#include <set>

#include "bench/bench_util.hh"
#include "designs/dcache.hh"

using namespace rmp;
using namespace rmp::bench;
using namespace rmp::designs;

int
main()
{
    banner("§VII-A2 — cache leakage signatures");
    Harness hx(buildDcache());
    const auto &info = hx.duv();
    r2m::SynthesisConfig scfg = benchSynthConfig();
    r2m::MuPathSynthesizer synth(hx, scfg);
    slc::SynthLcConfig lcfg = benchLcConfig();
    slc::SynthLc slc(hx, lcfg);

    ct::AnalysisDb db = analyzeInstructions(hx, synth, slc,
                                            {"LDREQ", "STREQ"},
                                            {"LDREQ", "STREQ"});
    std::printf("\nsignatures:\n");
    for (const auto &s : db.signatures)
        std::printf("  %s\n", slc.render(s).c_str());
    std::printf("\n%s\n", report::renderFig8Matrix(db).c_str());

    bool static_ld = false, static_st_at_wbvld = false;
    bool intr_st = false, dyn_any = false;
    for (const auto &s : db.signatures) {
        for (const auto &ti : s.inputs) {
            const std::string &n = info.instrs[ti.instr].name;
            if (ti.type == slc::TxType::Static && n == "LDREQ")
                static_ld = true;
            if (ti.type == slc::TxType::Static && n == "STREQ" &&
                hx.plName(s.src) == "wBVld")
                static_st_at_wbvld = true;
            if (ti.type == slc::TxType::Intrinsic && n == "STREQ")
                intr_st = true;
            if (ti.type == slc::TxType::DynamicOlder ||
                ti.type == slc::TxType::DynamicYounger)
                dyn_any = true;
        }
    }
    paperNote("the cache surfaces static transmitters (a prior LD's fill "
              "decides a later request's hit/miss); ST_wBVld flags LDs as "
              "static transmitters but not STs (no-write-allocate), and "
              "the ST itself as intrinsic",
              std::string("static LD input: ") +
                  (static_ld ? "YES" : "no") +
                  "; static ST input at wBVld: " +
                  (static_st_at_wbvld ? "yes (unexpected)" : "NO (as in "
                                                             "the paper)") +
                  "; intrinsic ST: " + (intr_st ? "yes" : "no") +
                  "; dynamic contention inputs: " +
                  (dyn_any ? "yes" : "no"));
    std::printf("\n%s\n",
                report::renderStepStats(synth.stepStats(), &slc.stats())
                    .c_str());
    return 0;
}
