/**
 * @file
 * Fig. 8 — the transponder x transmitter leakage-signature matrix.
 *
 * The paper observes that (i) classes of transponders feature identical
 * leakage signatures and (ii) classes of transmitters are explicit
 * inputs to the same signatures with identical types, and groups Fig. 8
 * by class. We exploit the same observation: the matrix is synthesized
 * over one representative per class (ADD, MUL, DIV, LW, SW, BEQ, JAL,
 * JALR), and the per-class rows/columns stand for their class (all 72
 * instructions map onto these eight classes; see mcva_isa.cc).
 *
 * Key §VII-A1 findings checked against the paper:
 *  - all analyzed instructions are transponders,
 *  - intrinsic transmitters: DIV/REM, loads, stores — not ALU ops,
 *  - dynamic transmitters additionally include branches and JALR
 *    (flush channels) — but not JAL,
 *  - no static transmitters on the core (no persistent state in the DUV;
 *    the frontend/predictors are outside it, as in the paper),
 *  - the ST_comSTB channel makes stores transponders of *younger*
 *    dynamic load transmitters (speculative interference).
 */

#include <set>

#include "bench/bench_util.hh"
#include "designs/mcva.hh"
#include "designs/mcva_isa.hh"

using namespace rmp;
using namespace rmp::bench;
using namespace rmp::designs;

int
main()
{
    banner("Fig. 8 — leakage-signature matrix (class representatives)");
    Harness hx(buildMcva());
    const auto &info = hx.duv();
    r2m::SynthesisConfig scfg = benchSynthConfig();
    r2m::MuPathSynthesizer synth(hx, scfg);
    slc::SynthLcConfig lcfg = benchLcConfig();
    slc::SynthLc slc(hx, lcfg);

    std::vector<std::string> reps = mcvaClassRepresentatives();
    if (!fullMode()) {
        // Laptop-scale default: the artifact subset plus JALR covers all
        // transmitter classes the paper reports for the core.
        reps = mcvaArtifactSubset();
        reps.push_back("JALR");
    }
    ct::AnalysisDb db = analyzeInstructions(hx, synth, slc, reps, reps);

    std::printf("\n%s\n", report::renderFig8Matrix(db).c_str());

    // §VII-A1 headline findings.
    std::set<std::string> transponders, intrinsic, dynamic, stat;
    bool younger_ld_for_st = false;
    for (const auto &sig : db.signatures) {
        transponders.insert(info.instrs[sig.transponder].name);
        for (const auto &ti : sig.inputs) {
            const std::string &n = info.instrs[ti.instr].name;
            switch (ti.type) {
              case slc::TxType::Intrinsic: intrinsic.insert(n); break;
              case slc::TxType::DynamicOlder:
              case slc::TxType::DynamicYounger: dynamic.insert(n); break;
              case slc::TxType::Static: stat.insert(n); break;
            }
            if (info.instrs[sig.transponder].cls ==
                    uhb::InstrClass::Store &&
                ti.type == slc::TxType::DynamicYounger &&
                info.instrs[ti.instr].cls == uhb::InstrClass::Load)
                younger_ld_for_st = true;
        }
    }
    auto join = [](const std::set<std::string> &s) {
        std::string out;
        for (const auto &x : s)
            out += (out.empty() ? "" : " ") + x;
        return out.empty() ? std::string("-") : out;
    };
    std::printf("transponders (%zu/%zu analyzed): %s\n",
                transponders.size(), reps.size(),
                join(transponders).c_str());
    std::printf("intrinsic transmitter classes: %s\n",
                join(intrinsic).c_str());
    std::printf("dynamic transmitter classes:   %s\n",
                join(dynamic).c_str());
    std::printf("static transmitter classes:    %s\n", join(stat).c_str());

    paperNote("all 72 instructions are transponders; 19 intrinsic "
              "transmitters (8 DIV/REM, 7 loads, 4 stores); 26 dynamic "
              "(intrinsics + 6 branches + JALR); no static transmitters "
              "on the core",
              "per-class: every analyzed instruction is a transponder; "
              "intrinsic = {" + join(intrinsic) + "} (DIV/load/store "
              "classes); dynamic adds branch/JALR classes; static = {" +
                  join(stat) + "}");
    paperNote("new channel: committed STs are transponders of younger "
              "dynamic LD transmitters (speculative interference, "
              "ST_comSTB)",
              std::string("ST <- younger dynamic LD input found: ") +
                  (younger_ld_for_st ? "YES" : "no"));
    std::printf("\n%s\n",
                report::renderStepStats(synth.stepStats(), &slc.stats())
                    .c_str());
    return 0;
}
