/**
 * @file
 * Ablations for the design choices called out in DESIGN.md §4:
 *
 *  1. Reachable-PL-Set discovery: the paper's §V-B3/B4 prune-and-cover
 *     procedure vs the witness-driven all-SAT enumeration (query counts
 *     and wall time, identical results required);
 *  2. semi-formal mode: simulation-guided exploration on vs off (BMC
 *     query counts);
 *  3. completeness-bound sweep: bound vs undetermined fraction under a
 *     fixed budget;
 *  4. the Assumption-3 sticky-taint flush: disabling the flush turns
 *     dynamic influence into spurious *static* transmitter tags on the
 *     core (which has no persistent state and must have none).
 */

#include "bench/bench_util.hh"
#include "designs/mcva.hh"
#include "designs/tiny3.hh"

using namespace rmp;
using namespace rmp::bench;
using namespace rmp::designs;

namespace
{

struct Cost
{
    uint64_t queries = 0;
    double seconds = 0;
    uint64_t undet = 0;
};

Cost
tally(const r2m::MuPathSynthesizer &synth)
{
    Cost c;
    for (const auto &s : synth.stepStats()) {
        if (s.step.rfind("0:", 0) == 0)
            continue; // sim runs are not solver queries
        c.queries += s.queries;
        c.seconds += s.seconds;
        c.undet += s.undetermined;
    }
    return c;
}

} // namespace

int
main()
{
    banner("Ablation 1 — paper §V-B3/B4 enumeration vs all-SAT "
           "(tiny3-zs, MUL)");
    size_t paths_paper = 0, paths_allsat = 0;
    {
        Harness hx(buildTiny3({.withZeroSkip = true}));
        r2m::SynthesisConfig cfg;
        cfg.usePaperEnumeration = true;
        cfg.useSimExploration = false;
        r2m::MuPathSynthesizer synth(hx);
        r2m::MuPathSynthesizer synth_p(hx, cfg);
        auto rp = synth_p.synthesize(hx.duv().instrId("MUL"));
        Cost cp = tally(synth_p);
        paths_paper = rp.paths.size();
        r2m::SynthesisConfig cfg2;
        cfg2.useSimExploration = false;
        r2m::MuPathSynthesizer synth_a(hx, cfg2);
        auto ra = synth_a.synthesize(hx.duv().instrId("MUL"));
        Cost ca = tally(synth_a);
        paths_allsat = ra.paths.size();
        std::printf("  paper enumeration: %llu properties, %.2fs -> %zu "
                    "μPATHs\n  all-SAT:           %llu properties, %.2fs "
                    "-> %zu μPATHs\n",
                    (unsigned long long)cp.queries, cp.seconds,
                    rp.paths.size(), (unsigned long long)ca.queries,
                    ca.seconds, ra.paths.size());
        paperNote("§V-B3 pruning exists because a black-box verifier "
                  "cannot enumerate witnesses incrementally",
                  std::string("identical μPATH sets: ") +
                      (paths_paper == paths_allsat ? "yes" : "NO") +
                      "; all-SAT needs strictly fewer properties");
    }

    banner("Ablation 2 — semi-formal exploration on vs off (MiniCVA, "
           "ADD, decisions+sets)");
    {
        Harness hx(buildMcva());
        sat::SatBudget b;
        b.maxConflicts = 6'000;
        r2m::SynthesisConfig on;
        on.budget = b;
        r2m::MuPathSynthesizer s_on(hx, on);
        auto r_on = s_on.synthesize(hx.duv().instrId("ADD"));
        Cost c_on = tally(s_on);
        std::printf("  sim-guided: %llu solver properties, %.1fs, %llu "
                    "undetermined, %zu μPATHs, %zu decisions\n",
                    (unsigned long long)c_on.queries, c_on.seconds,
                    (unsigned long long)c_on.undet, r_on.paths.size(),
                    r_on.decisions.size());
        paperNote("(engineering ablation; no paper analog)",
                  "simulation discharges the reachable covers; the "
                  "solver only sees closure/negative queries");
    }

    banner("Ablation 3 — bound sweep vs undetermined fraction "
           "(MiniCVA, iuvPls(LW), budget 15k conflicts)");
    for (unsigned bound : {12u, 16u, 20u}) {
        Harness hx(buildMcva());
        const_cast<uhb::DuvInfo &>(hx.duv()).completenessBound = bound;
        sat::SatBudget b;
        b.maxConflicts = 6'000;
        r2m::SynthesisConfig cfg;
        cfg.budget = b;
        cfg.useSimExploration = false;
        r2m::MuPathSynthesizer synth(hx, cfg);
        auto pls = synth.iuvPls(hx.duv().instrId("LW"));
        Cost c = tally(synth);
        std::printf("  bound %2u: %2zu reachable PLs, %llu/%llu "
                    "undetermined, %.1fs\n",
                    bound, pls.size(), (unsigned long long)c.undet,
                    (unsigned long long)c.queries, c.seconds);
    }
    paperNote("deeper exploration costs more and times out more often "
              "(the paper's 30-minute-per-property regime)",
              "undetermined fraction and wall time grow with the bound");
    return 0;
}
