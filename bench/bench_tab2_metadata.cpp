/**
 * @file
 * Table II: the user annotations SYNTHLC requires, for the MiniCVA core
 * and the cache DUV, next to the paper's CVA6 numbers.
 */

#include "bench/bench_util.hh"
#include "designs/dcache.hh"
#include "designs/mcva.hh"

using namespace rmp;
using namespace rmp::bench;

int
main()
{
    banner("Table II — user annotations required by SynthLC (§V-A)");
    {
        designs::Harness hx(designs::buildMcva());
        std::printf("%s\n", report::renderTableII(hx).c_str());
        paperNote("CVA6 Core: 1 IFR, 21 μFSMs (21 PCRs, 14 added), 38 "
                  "state regs, 1 commit wire, 2 operand regs, ARF+AMEM",
                  "MiniCVA keeps every annotation category at scaled-down "
                  "counts (see table)");
    }
    {
        designs::Harness hx(designs::buildDcache());
        std::printf("%s\n", report::renderTableII(hx).c_str());
        paperNote("CVA6 Cache: 9 IIRs (9 PCRs added), 13 μFSMs",
                  "dcache DUV uses transaction-id PCRs on every μFSM "
                  "(see table)");
    }
    return 0;
}
