/**
 * @file
 * Compiled-engine throughput: the tape backends (interpreter / explicit
 * SIMD / per-design native codegen, DESIGN.md §3h) against the
 * interpreted reference on the exploration workload that dominates
 * semi-formal synthesis.
 *
 * The paper's flow leans on massive randomized simulation before any
 * formal query runs (§VII-B); our reproduction's equivalent is
 * exploreSim, which simulates thousands of random constrained programs
 * per instruction. This bench sweeps the full execution matrix —
 * backend × lane width (P ∈ {4, 8, 16}) × worker threads — on tiny3 and
 * mcva, reports simulated cycles/second and speedup over the
 * interpreted engine for every cell, and records the whole matrix in
 * BENCH_sim_throughput.json (plus the best configuration per design).
 *
 * Equivalence is the exit code, not the timing: exploration facts —
 * witnesses included — must be bit-identical across every backend,
 * lane width, and thread count (factsEqual), and a full semi-formal
 * synthesis run per backend must render byte-identical μPATHs. A
 * backend that is fast but wrong fails the bench.
 */

#include <chrono>

#include "bench/bench_util.hh"
#include "designs/mcva.hh"
#include "designs/tiny3.hh"
#include "rtl2mupath/sim_explore.hh"
#include "sim/codegen.hh"
#include "sim/simd.hh"

using namespace rmp;
using namespace rmp::bench;
using namespace rmp::designs;

namespace
{

struct EngineRun
{
    double wall = 0;
    uint64_t cycles = 0;
    double cyclesPerSec = 0;
};

/** Explore every instruction on one configuration, discarding the
 *  facts: the timed passes measure exploration alone, without hundreds
 *  of MB of accumulated witnesses distorting the allocator and caches.
 *  The engines are deterministic, so the untimed verification pass
 *  below re-derives and compares the exact same facts. */
void
exploreAll(const Harness &hx, const r2m::SimExploreConfig &cfg,
           EngineRun &er)
{
    auto t0 = std::chrono::steady_clock::now();
    for (uhb::InstrId i = 0; i < hx.duv().instrs.size(); i++)
        r2m::exploreSim(hx, i, cfg);
    er.wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    er.cycles = uint64_t(cfg.runs) * hx.duv().completenessBound *
                hx.duv().instrs.size();
    er.cyclesPerSec = er.wall > 0 ? double(er.cycles) / er.wall : 0;
}

/** Untimed equivalence pass at reduced run count: per instruction,
 *  compare the cell's facts (witnesses included) against the
 *  interpreted reference, freeing as it goes. */
bool
factsAgree(const Harness &hx, const r2m::SimExploreConfig &icfg,
           const r2m::SimExploreConfig &ccfg)
{
    for (uhb::InstrId i = 0; i < hx.duv().instrs.size(); i++)
        if (!r2m::factsEqual(r2m::exploreSim(hx, i, icfg),
                             r2m::exploreSim(hx, i, ccfg)))
            return false;
    return true;
}

/** Full semi-formal synthesis with the given engine; rendered μPATHs. */
std::string
synthRender(Harness &hx, r2m::SimEngine eng, sim::SimBackend backend)
{
    r2m::SynthesisConfig scfg = benchSynthConfig();
    scfg.explore.engine = eng;
    scfg.explore.backend = backend;
    r2m::MuPathSynthesizer synth(hx, scfg);
    std::vector<uhb::InstrId> ids;
    for (uhb::InstrId i = 0; i < hx.duv().instrs.size(); i++)
        ids.push_back(i);
    auto all = synth.synthesizeAll(ids);
    std::string out;
    for (uhb::InstrId i : ids) {
        out += report::renderInstrPaths(hx, all.at(i));
        out += report::renderDecisions(hx, all.at(i));
    }
    return out;
}

std::string
engineJson(const EngineRun &er)
{
    JsonReport j;
    j.put("wall_seconds", er.wall);
    j.put("simulated_cycles", er.cycles);
    j.put("cycles_per_second", er.cyclesPerSec);
    return j.str();
}

constexpr sim::SimBackend kBackends[] = {
    sim::SimBackend::Tape, sim::SimBackend::Simd, sim::SimBackend::Native};
constexpr unsigned kLaneWidths[] = {4, 8, 16};
constexpr unsigned kThreadCounts[] = {1, 4};

} // namespace

int
main()
{
    banner("compiled batched simulation — backend throughput matrix");

    r2m::SimExploreConfig cfg;
    cfg.runs = fullMode() ? 6000 : 1500;
    const unsigned eqRuns = fullMode() ? 1200 : 300;
    const bool haveCc = sim::nativeCompilerAvailable();

    bool factsMatch = true, pathsMatch = true;
    JsonReport out;
    out.put("bench", std::string("sim_throughput"));
    out.put("runs_per_instruction", uint64_t(cfg.runs));
    out.put("equivalence_runs", uint64_t(eqRuns));
    out.put("simd_isa", std::string(sim::simdIsa(8)));
    out.putRaw("native_compiler", haveCc ? "true" : "false");
    double mcvaBest = 0;
    std::string mcvaBestCfg;

    for (const char *name : {"tiny3", "mcva"}) {
        Harness hx(std::string(name) == "tiny3" ? buildTiny3()
                                                : buildMcva());
        std::printf("\nDUV %s: %zu cells, %zu instructions, bound %u\n",
                    name, hx.design().numCells(),
                    hx.duv().instrs.size(), hx.duv().completenessBound);

        r2m::SimExploreConfig icfg = cfg;
        icfg.engine = r2m::SimEngine::Interpreted;
        EngineRun interp;
        exploreAll(hx, icfg, interp);
        std::printf("  interpreted: %10.0f cycles/s  (%.2fs)\n",
                    interp.cyclesPerSec, interp.wall);

        r2m::SimExploreConfig eqIcfg = icfg;
        eqIcfg.runs = eqRuns;

        double best = 0;
        std::string bestCfg;
        std::string cells; // JSON array of per-cell objects
        for (sim::SimBackend be : kBackends) {
            for (unsigned lanes : kLaneWidths) {
                for (unsigned threads : kThreadCounts) {
                    r2m::SimExploreConfig ccfg = cfg;
                    ccfg.engine = r2m::SimEngine::Compiled;
                    ccfg.backend = be;
                    ccfg.lanes = lanes;
                    ccfg.threads = threads;
                    if (be == sim::SimBackend::Native) {
                        // Warm the native kernel cache so the timed pass
                        // measures execution, not the one-off compile.
                        r2m::SimExploreConfig warm = ccfg;
                        warm.runs = lanes;
                        r2m::exploreSim(hx, 0, warm);
                    }
                    EngineRun er;
                    exploreAll(hx, ccfg, er);
                    double speedup =
                        interp.wall > 0 && er.wall > 0
                            ? interp.wall / er.wall
                            : 0;
                    r2m::SimExploreConfig eqCcfg = ccfg;
                    eqCcfg.runs = eqRuns;
                    bool fm = factsAgree(hx, eqIcfg, eqCcfg);
                    factsMatch = factsMatch && fm;

                    const std::string label =
                        std::string(sim::backendName(be)) + " P=" +
                        std::to_string(lanes) + " T=" +
                        std::to_string(threads);
                    std::printf("  %-18s %10.0f cycles/s  %6.1fx  "
                                "facts %s\n",
                                label.c_str(), er.cyclesPerSec, speedup,
                                fm ? "identical" : "MISMATCH");
                    if (speedup > best) {
                        best = speedup;
                        bestCfg = label;
                    }

                    JsonReport c;
                    c.put("backend",
                          std::string(sim::backendName(be)));
                    c.put("lanes", uint64_t(lanes));
                    c.put("threads", uint64_t(threads));
                    c.putRaw("run", engineJson(er));
                    c.put("speedup", speedup);
                    c.putRaw("facts_match", fm ? "true" : "false");
                    cells += (cells.empty() ? "" : ",\n  ") + c.str();
                }
            }
        }
        std::printf("  best: %s at %.1fx over interpreted\n",
                    bestCfg.c_str(), best);
        if (std::string(name) == "mcva") {
            mcvaBest = best;
            mcvaBestCfg = bestCfg;
        }

        // Backend-invariant μPATHs: interpreted vs every backend.
        std::string ri =
            synthRender(hx, r2m::SimEngine::Interpreted,
                        sim::SimBackend::Tape);
        bool pm = true;
        for (sim::SimBackend be : kBackends)
            pm = pm &&
                 ri == synthRender(hx, r2m::SimEngine::Compiled, be);
        pathsMatch = pathsMatch && pm;
        std::printf("  synthesized uPATHs across backends: %s\n",
                    pm ? "byte-identical" : "MISMATCH");

        JsonReport d;
        d.putRaw("interpreted", engineJson(interp));
        d.putRaw("configs", "[" + cells + "]");
        d.put("best_speedup", best);
        d.put("best_config", bestCfg);
        d.putRaw("paths_match", pm ? "true" : "false");
        out.putRaw(name, d.str());
    }

    paperNote("the flow front-loads randomized simulation before formal "
              "queries (§VII-B); throughput bounds how much reachability "
              "evidence the semi-formal mode can gather",
              strfmt("best backend configuration reaches %.1fx "
                     "interpreted throughput on mcva (%s)",
                     mcvaBest, mcvaBestCfg.c_str()));

    out.putRaw("facts_match", factsMatch ? "true" : "false");
    out.putRaw("paths_match", pathsMatch ? "true" : "false");
    const char *path = "BENCH_sim_throughput.json";
    if (out.writeFile(path))
        std::printf("\nwrote %s\n", path);
    else
        std::printf("\nFAILED to write %s\n", path);
    if (!factsMatch || !pathsMatch) {
        std::printf("FAIL: backends disagree (facts %s, paths %s)\n",
                    factsMatch ? "ok" : "mismatch",
                    pathsMatch ? "ok" : "mismatch");
        return 1;
    }
    std::printf("backends agree on every fact and every synthesized "
                "uPATH\n");
    return 0;
}
