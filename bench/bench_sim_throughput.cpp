/**
 * @file
 * Compiled-engine throughput: the op-tape batched simulator (DESIGN.md
 * §3h) against the interpreted reference on the exploration workload
 * that dominates semi-formal synthesis.
 *
 * The paper's flow leans on massive randomized simulation before any
 * formal query runs (§VII-B); our reproduction's equivalent is
 * exploreSim, which simulates thousands of random constrained programs
 * per instruction. This bench measures simulated cycles/second for both
 * engines on tiny3 and mcva at the default lane/thread configuration and
 * reports the speedup.
 *
 * Equivalence is the exit code, not the timing: exploration facts —
 * witnesses included — must be bit-identical across engines for every
 * instruction (factsEqual), and a full semi-formal synthesis run on each
 * engine must render byte-identical μPATHs. A compiled engine that is
 * fast but wrong fails the bench.
 *
 * Machine-readable results land in BENCH_sim_throughput.json.
 */

#include <chrono>

#include "bench/bench_util.hh"
#include "designs/mcva.hh"
#include "designs/tiny3.hh"
#include "rtl2mupath/sim_explore.hh"

using namespace rmp;
using namespace rmp::bench;
using namespace rmp::designs;

namespace
{

struct EngineRun
{
    double wall = 0;
    uint64_t cycles = 0;
    double cyclesPerSec = 0;
};

/** Explore every instruction on one engine, discarding the facts: the
 *  timed passes measure exploration alone, without hundreds of MB of
 *  accumulated witnesses distorting the allocator and caches. The
 *  engines are deterministic, so the untimed verification pass below
 *  re-derives and compares the exact same facts. */
void
exploreAll(const Harness &hx, const r2m::SimExploreConfig &cfg,
           EngineRun &er)
{
    auto t0 = std::chrono::steady_clock::now();
    for (uhb::InstrId i = 0; i < hx.duv().instrs.size(); i++)
        r2m::exploreSim(hx, i, cfg);
    er.wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    er.cycles = uint64_t(cfg.runs) * hx.duv().completenessBound *
                hx.duv().instrs.size();
    er.cyclesPerSec = er.wall > 0 ? double(er.cycles) / er.wall : 0;
}

/** Untimed equivalence pass: per instruction, explore on both engines
 *  and compare facts (witnesses included), freeing as it goes. */
bool
factsAgree(const Harness &hx, const r2m::SimExploreConfig &icfg,
           const r2m::SimExploreConfig &ccfg)
{
    for (uhb::InstrId i = 0; i < hx.duv().instrs.size(); i++)
        if (!r2m::factsEqual(r2m::exploreSim(hx, i, icfg),
                             r2m::exploreSim(hx, i, ccfg)))
            return false;
    return true;
}

/** Full semi-formal synthesis with the given engine; rendered μPATHs. */
std::string
synthRender(Harness &hx, r2m::SimEngine eng)
{
    r2m::SynthesisConfig scfg = benchSynthConfig();
    scfg.explore.engine = eng;
    r2m::MuPathSynthesizer synth(hx, scfg);
    std::vector<uhb::InstrId> ids;
    for (uhb::InstrId i = 0; i < hx.duv().instrs.size(); i++)
        ids.push_back(i);
    auto all = synth.synthesizeAll(ids);
    std::string out;
    for (uhb::InstrId i : ids) {
        out += report::renderInstrPaths(hx, all.at(i));
        out += report::renderDecisions(hx, all.at(i));
    }
    return out;
}

std::string
engineJson(const EngineRun &er)
{
    JsonReport j;
    j.put("wall_seconds", er.wall);
    j.put("simulated_cycles", er.cycles);
    j.put("cycles_per_second", er.cyclesPerSec);
    return j.str();
}

} // namespace

int
main()
{
    banner("compiled batched simulation — exploration throughput");

    r2m::SimExploreConfig cfg;
    cfg.runs = fullMode() ? 6000 : 1500;

    bool factsMatch = true, pathsMatch = true;
    JsonReport out;
    out.put("bench", std::string("sim_throughput"));
    out.put("runs_per_instruction", uint64_t(cfg.runs));
    out.put("lanes", uint64_t(cfg.lanes));
    out.put("threads", uint64_t(cfg.threads));
    double mcvaSpeedup = 0;

    for (const char *name : {"tiny3", "mcva"}) {
        Harness hx(std::string(name) == "tiny3" ? buildTiny3()
                                                : buildMcva());
        std::printf("\nDUV %s: %zu cells, %zu instructions, bound %u\n",
                    name, hx.design().numCells(),
                    hx.duv().instrs.size(), hx.duv().completenessBound);

        r2m::SimExploreConfig icfg = cfg;
        icfg.engine = r2m::SimEngine::Interpreted;
        EngineRun interp, compiled;
        exploreAll(hx, icfg, interp);

        r2m::SimExploreConfig ccfg = cfg;
        ccfg.engine = r2m::SimEngine::Compiled;
        exploreAll(hx, ccfg, compiled);

        double speedup = interp.wall > 0 && compiled.wall > 0
                             ? interp.wall / compiled.wall
                             : 0;
        if (std::string(name) == "mcva")
            mcvaSpeedup = speedup;
        std::printf("  interpreted: %8.0f cycles/s  (%.2fs)\n",
                    interp.cyclesPerSec, interp.wall);
        std::printf("  compiled:    %8.0f cycles/s  (%.2fs, %u lanes x "
                    "%u threads)\n",
                    compiled.cyclesPerSec, compiled.wall, cfg.lanes,
                    cfg.threads);
        std::printf("  speedup: %.1fx\n", speedup);

        bool fm = factsAgree(hx, icfg, ccfg);
        factsMatch = factsMatch && fm;
        std::printf("  exploration facts (witnesses included): %s\n",
                    fm ? "identical" : "MISMATCH");

        std::string ri = synthRender(hx, r2m::SimEngine::Interpreted);
        std::string rc = synthRender(hx, r2m::SimEngine::Compiled);
        bool pm = ri == rc;
        pathsMatch = pathsMatch && pm;
        std::printf("  synthesized uPATHs across engines: %s\n",
                    pm ? "byte-identical" : "MISMATCH");

        JsonReport d;
        d.putRaw("interpreted", engineJson(interp));
        d.putRaw("compiled", engineJson(compiled));
        d.put("speedup", speedup);
        d.putRaw("facts_match", fm ? "true" : "false");
        d.putRaw("paths_match", pm ? "true" : "false");
        out.putRaw(name, d.str());
    }

    paperNote("the flow front-loads randomized simulation before formal "
              "queries (§VII-B); throughput bounds how much reachability "
              "evidence the semi-formal mode can gather",
              strfmt("compiled op-tape engine reaches %.1fx interpreted "
                     "throughput on mcva at default lanes/threads",
                     mcvaSpeedup));

    out.putRaw("facts_match", factsMatch ? "true" : "false");
    out.putRaw("paths_match", pathsMatch ? "true" : "false");
    const char *path = "BENCH_sim_throughput.json";
    if (out.writeFile(path))
        std::printf("\nwrote %s\n", path);
    else
        std::printf("\nFAILED to write %s\n", path);
    if (!factsMatch || !pathsMatch) {
        std::printf("FAIL: engines disagree (facts %s, paths %s)\n",
                    factsMatch ? "ok" : "mismatch",
                    pathsMatch ? "ok" : "mismatch");
        return 1;
    }
    std::printf("engines agree on every fact and every synthesized "
                "uPATH\n");
    return 0;
}
