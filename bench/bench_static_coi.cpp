/**
 * @file
 * Static COI pruning — the src/analysis sequential cone-of-influence
 * engine applied to μPATH synthesis: the same tiny3 workload evaluated
 * with full-design unrolling and with COI-pruned per-property instances,
 * checked for bit-identical verdicts and compared on structural cost
 * (materialized cells, AIG nodes, SAT variables).
 *
 * The paper evaluates 124,459 RTL2MμPATH properties at 4.43 minutes each
 * (§VII-B3) on a commercial proof grid, where per-property cone-of-
 * influence reduction is part of what the tool's engines do under the
 * hood. Our BMC engine makes that reduction explicit and measurable:
 * each cover property unrolls only its sequential support cone
 * (analysis::backwardCone over the property's signals), and queries
 * whose cones share a fingerprint share one incremental solver. Pruning
 * is sound — the cone is backward-closed, so every assignment of the
 * pruned unrolling extends to the full design — which this bench checks
 * operationally: verdict tallies and rendered μPATHs must be identical
 * in both modes, and that identity is the exit code.
 *
 * Machine-readable results land in BENCH_static_coi.json.
 */

#include <chrono>

#include "analysis/coi.hh"
#include "common/logging.hh"
#include "bench/bench_util.hh"
#include "designs/tiny3.hh"

using namespace rmp;
using namespace rmp::bench;
using namespace rmp::designs;

namespace
{

struct RunCost
{
    uint64_t props = 0;
    double wall = 0;
    uint64_t reach = 0;
    uint64_t unreach = 0;
    uint64_t undet = 0;
    exec::PoolStats pool;
    /** renderInstrPaths over every instruction, concatenated. */
    std::string rendered;
};

RunCost
runOne(Harness &hx, const std::vector<uhb::InstrId> &ids, bool coiPruning)
{
    auto t0 = std::chrono::steady_clock::now();
    r2m::SynthesisConfig scfg = benchSynthConfig();
    scfg.jobs = 1; // serial: isolate structural cost from scheduling
    scfg.coiPruning = coiPruning;
    r2m::MuPathSynthesizer synth(hx, scfg);
    auto all = synth.synthesizeAll(ids);
    auto t1 = std::chrono::steady_clock::now();
    RunCost c;
    c.wall = std::chrono::duration<double>(t1 - t0).count();
    for (const auto &s : synth.stepStats()) {
        c.props += s.queries;
        c.reach += s.reachable;
        c.unreach += s.unreachable;
        c.undet += s.undetermined;
    }
    c.pool = synth.pool().stats();
    for (uhb::InstrId id : ids)
        c.rendered += report::renderInstrPaths(hx, all.at(id));
    return c;
}

std::string
coiStatsJson(const bmc::CoiStats &s)
{
    JsonReport j;
    j.put("queries", s.queries);
    j.put("cone_cells", s.coneCells);
    j.put("design_cells", s.designCells);
    j.put("cones_built", s.conesBuilt);
    j.put("aig_nodes", s.aigNodes);
    j.put("sat_vars", s.satVars);
    return j.str();
}

std::string
runJson(const RunCost &c)
{
    JsonReport j;
    j.put("properties", c.props);
    j.put("wall_seconds", c.wall);
    j.put("reachable", c.reach);
    j.put("unreachable", c.unreach);
    j.put("undetermined", c.undet);
    j.putRaw("coi", coiStatsJson(c.pool.coi));
    j.putRaw("pool", poolStatsJson(c.pool));
    return j.str();
}

} // namespace

int
main()
{
    banner("static COI — cone-of-influence-pruned property evaluation");

    Harness hx(buildTiny3());
    std::vector<uhb::InstrId> ids;
    for (uhb::InstrId i = 0; i < hx.duv().instrs.size(); i++)
        ids.push_back(i);
    std::printf("DUV tiny3: %zu cells, %zu instructions\n",
                hx.design().numCells(), ids.size());

    // Static cone summary, before any solving: the per-instruction μPATH
    // properties observe the commit/PCR signals, so their joint cone is
    // what the pruned engine will materialize per unrolled frame.
    {
        const uhb::DuvInfo &info = hx.duv();
        std::vector<SigId> roots{info.commit, info.commitPc};
        analysis::Cone cone = analysis::backwardCone(hx.design(), roots);
        std::printf("commit-observing cone: %zu of %zu cells "
                    "(%zu regs, %zu inputs)\n",
                    cone.cells.size(), hx.design().numCells(),
                    cone.regs.size(), cone.inputs.size());
    }

    std::printf("\n-- full unrolling (coiPruning=off), jobs=1\n");
    RunCost full = runOne(hx, ids, false);
    std::printf("%zu properties, %.2fs wall\n", (size_t)full.props,
                full.wall);
    std::printf("\n-- COI-pruned (coiPruning=on), jobs=1\n");
    RunCost coi = runOne(hx, ids, true);
    std::printf("%zu properties, %.2fs wall\n", (size_t)coi.props,
                coi.wall);
    std::printf("%s\n", report::renderCoiStats(coi.pool.coi).c_str());

    bool tallies_match = full.props == coi.props &&
                         full.reach == coi.reach &&
                         full.unreach == coi.unreach &&
                         full.undet == coi.undet;
    bool paths_match = full.rendered == coi.rendered;
    double cells_full = full.pool.coi.queries
                            ? (double)full.pool.coi.coneCells /
                                  full.pool.coi.queries
                            : 0;
    double cells_coi = coi.pool.coi.queries
                           ? (double)coi.pool.coi.coneCells /
                                 coi.pool.coi.queries
                           : 0;
    std::printf("avg materialized cells/query: full %.0f   pruned %.0f   "
                "(%.1f%% of design)\n",
                cells_full, cells_coi,
                cells_full > 0 ? 100.0 * cells_coi / cells_full : 0);
    std::printf("AIG nodes (all instances):    full %llu   pruned %llu\n",
                (unsigned long long)full.pool.coi.aigNodes,
                (unsigned long long)coi.pool.coi.aigNodes);
    std::printf("SAT variables (all instances): full %llu   pruned %llu\n",
                (unsigned long long)full.pool.coi.satVars,
                (unsigned long long)coi.pool.coi.satVars);
    std::printf("verdict tallies %s, rendered μPATHs %s\n",
                tallies_match ? "identical" : "MISMATCH",
                paths_match ? "identical" : "MISMATCH");
    paperNote("per-property cost dominates the evaluation (4.43 min "
              "average per RTL2MμPATH property, §VII-B3); engines prune "
              "each property to its cone of influence",
              strfmt("explicit COI pruning materializes %.0f of %.0f "
                     "cells per query with bit-identical verdicts",
                     cells_coi, cells_full));

    JsonReport out;
    out.put("bench", std::string("static_coi"));
    out.put("duv", std::string("tiny3"));
    out.put("instructions", (uint64_t)ids.size());
    out.putRaw("full", runJson(full));
    out.putRaw("coi_pruned", runJson(coi));
    out.put("avg_cells_per_query_full", cells_full);
    out.put("avg_cells_per_query_pruned", cells_coi);
    out.putRaw("tallies_match", tallies_match ? "true" : "false");
    out.putRaw("paths_match", paths_match ? "true" : "false");
    const char *path = "BENCH_static_coi.json";
    if (out.writeFile(path))
        std::printf("\nwrote %s\n", path);
    else
        std::printf("\nFAILED to write %s\n", path);
    return (tallies_match && paths_match) ? 0 : 1;
}
