/**
 * @file
 * Disabled-mode overhead of the observability subsystem (DESIGN.md §3f).
 *
 * The obs instrumentation is compiled into every hot path — SAT solves,
 * BMC unrolling, pool lanes, synthesis steps — guarded by one relaxed
 * atomic load (obs::enabled()). This bench quantifies what that guard
 * costs when observability is off:
 *
 *  1. A macro run: the tiny3 full-ISA synthesis workload, repeated with
 *     observability disabled and enabled (min wall time of N repeats
 *     each, fresh synthesizer per repeat so no query cache carries
 *     over).
 *  2. A micro run: the per-call cost of a disabled Span (the only thing
 *     a disabled run pays at each instrumentation point), measured over
 *     many iterations.
 *  3. The derived disabled-mode overhead bound: the number of spans an
 *     enabled run records times the disabled per-span cost, as a
 *     fraction of the disabled run's wall time. This bounds the
 *     instrumentation tax of a production (disabled) run without
 *     needing an uninstrumented binary to diff against.
 *
 * Writes BENCH_obs_overhead.json and exits non-zero when the derived
 * overhead reaches 2%, so CI catches instrumentation creep.
 */

#include <chrono>
#include <cstdio>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "designs/tiny3.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"

using namespace rmp;
using namespace rmp::bench;

namespace
{

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** One full tiny3 synthesis (all instructions), fresh state. */
double
synthOnce()
{
    designs::Harness hx(designs::buildTiny3());
    r2m::MuPathSynthesizer synth(hx, benchSynthConfig());
    std::vector<uhb::InstrId> ids;
    for (const auto &ins : hx.duv().instrs)
        ids.push_back(hx.duv().instrId(ins.name));
    double t0 = nowSeconds();
    auto all = synth.synthesizeAll(ids);
    double wall = nowSeconds() - t0;
    if (all.empty()) // keep the workload observable to the optimizer
        std::printf("impossible\n");
    return wall;
}

/** ns per disabled Span construction+destruction. */
double
disabledSpanNs(uint64_t iters)
{
    rmp_assert(!obs::enabled(), "micro-bench needs obs disabled");
    double t0 = nowSeconds();
    for (uint64_t i = 0; i < iters; i++) {
        obs::Span s("micro", "bench");
        s.arg("i", i);
    }
    double wall = nowSeconds() - t0;
    return wall * 1e9 / static_cast<double>(iters);
}

} // anonymous namespace

int
main()
{
    banner("bench_obs_overhead: observability disabled-mode tax");
    const unsigned repeats = fullMode() ? 5 : 3;

    obs::setEnabled(false);
    double disabled = 1e300;
    for (unsigned r = 0; r < repeats; r++)
        disabled = std::min(disabled, synthOnce());

    obs::setEnabled(true);
    obs::clearTrace();
    double enabled = 1e300;
    for (unsigned r = 0; r < repeats; r++)
        enabled = std::min(enabled, synthOnce());
    size_t spans = obs::eventCount() / repeats;
    obs::setEnabled(false);

    const uint64_t iters = 20'000'000;
    double ns_per_span = disabledSpanNs(iters);

    // Disabled-mode overhead bound: every span an enabled run records is
    // one enabled() check a disabled run still executes.
    double overhead_pct =
        disabled > 0 ? 100.0 * (static_cast<double>(spans) * ns_per_span) /
                           (disabled * 1e9)
                     : 0.0;
    double enabled_pct =
        disabled > 0 ? 100.0 * (enabled - disabled) / disabled : 0.0;

    std::printf("  disabled wall (min of %u): %.3f s\n", repeats, disabled);
    std::printf("  enabled  wall (min of %u): %.3f s  (%+.1f%%)\n", repeats,
                enabled, enabled_pct);
    std::printf("  spans per enabled run:     %zu\n", spans);
    std::printf("  disabled span cost:        %.2f ns\n", ns_per_span);
    std::printf("  derived disabled overhead: %.4f%%  (budget < 2%%)\n",
                overhead_pct);
    bool pass = overhead_pct < 2.0;
    paperNote("instrumentation must not perturb production runs",
              pass ? "disabled-mode overhead within budget"
                   : "disabled-mode overhead EXCEEDS budget");

    JsonReport out;
    out.put("bench", std::string("obs_overhead"));
    out.put("duv", std::string("tiny3"));
    out.put("repeats", static_cast<uint64_t>(repeats));
    out.put("disabled_wall_seconds", disabled);
    out.put("enabled_wall_seconds", enabled);
    out.put("enabled_overhead_pct", enabled_pct);
    out.put("spans_per_run", static_cast<uint64_t>(spans));
    out.put("ns_per_disabled_span", ns_per_span);
    out.put("overhead_disabled_pct", overhead_pct);
    out.put("pass", static_cast<uint64_t>(pass));
    out.writeFile("BENCH_obs_overhead.json");
    std::printf("wrote BENCH_obs_overhead.json\n");
    return pass ? 0 : 1;
}
