/**
 * @file
 * Shared helpers for the table/figure-regeneration benches.
 *
 * Each bench binary regenerates one of the paper's tables or figures
 * (DESIGN.md §3) and prints the measured result next to the paper's
 * reported shape. Benches default to laptop-scale budgets; set
 * RMP_BENCH_FULL=1 to lift scopes/budgets for longer, more complete runs.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "contracts/contracts.hh"
#include "designs/harness.hh"
#include "report/report.hh"
#include "rtl2mupath/synth.hh"
#include "synthlc/synthlc.hh"

namespace rmp::bench
{

/** True when RMP_BENCH_FULL=1 requests complete (slow) runs. */
inline bool
fullMode()
{
    const char *v = std::getenv("RMP_BENCH_FULL");
    return v && v[0] == '1';
}

/** Worker threads for bench runs: RMP_JOBS env, else hardware default. */
inline unsigned
benchJobs()
{
    const char *v = std::getenv("RMP_JOBS");
    return v ? static_cast<unsigned>(std::strtoul(v, nullptr, 10)) : 0;
}

/** Default per-query SAT budget for bench runs. */
inline sat::SatBudget
benchBudget()
{
    sat::SatBudget b;
    b.maxConflicts = fullMode() ? 2'000'000 : 6'000;
    return b;
}

/** RTL2MμPATH bench profile: semi-formal by default (README §Soundness). */
inline r2m::SynthesisConfig
benchSynthConfig()
{
    r2m::SynthesisConfig c;
    c.budget = benchBudget();
    c.closureChecks = fullMode();
    c.explore.runs = fullMode() ? 2000 : 800;
    c.jobs = benchJobs();
    return c;
}

/** SynthLC bench profile: simulation-first, tightly budgeted closure. */
inline slc::SynthLcConfig
benchLcConfig()
{
    slc::SynthLcConfig c;
    c.budget.maxConflicts = fullMode() ? 200'000 : 500;
    c.simRuns = fullMode() ? 300 : 110;
    c.jobs = benchJobs();
    return c;
}

/** Escape a string for embedding in a JSON document. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Minimal insertion-ordered JSON object builder for machine-readable
 * bench result files (BENCH_*.json). Nest objects with putRaw(child
 * JsonReport::str()).
 */
class JsonReport
{
  public:
    void
    put(const std::string &key, uint64_t v)
    {
        kv.emplace_back(key, std::to_string(v));
    }
    void
    put(const std::string &key, double v)
    {
        if (!std::isfinite(v)) // JSON has no NaN/Inf
            v = 0.0;
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        kv.emplace_back(key, buf);
    }
    void
    put(const std::string &key, const std::string &v)
    {
        kv.emplace_back(key, "\"" + jsonEscape(v) + "\"");
    }
    /** Insert a pre-rendered JSON value (nested object/array). */
    void
    putRaw(const std::string &key, const std::string &json)
    {
        kv.emplace_back(key, json);
    }

    std::string
    str() const
    {
        std::string out = "{";
        for (size_t i = 0; i < kv.size(); i++) {
            if (i)
                out += ", ";
            out += "\"" + jsonEscape(kv[i].first) + "\": " + kv[i].second;
        }
        return out + "}";
    }

    bool
    writeFile(const std::string &path) const
    {
        std::ofstream f(path);
        if (!f)
            return false;
        f << str() << "\n";
        return static_cast<bool>(f);
    }

  private:
    std::vector<std::pair<std::string, std::string>> kv;
};

/** Render an engine pool's aggregate statistics as a JSON object. */
inline std::string
poolStatsJson(const exec::PoolStats &s)
{
    JsonReport j;
    j.put("solver_queries", s.engine.queries);
    j.put("reachable", s.engine.reachable);
    j.put("unreachable", s.engine.unreachable);
    j.put("undetermined", s.engine.undetermined);
    j.put("solver_seconds", s.engine.totalSeconds);
    j.put("cache_hits", s.cache.hits);
    j.put("cache_misses", s.cache.misses);
    j.put("cache_entries", s.cache.entries);
    j.put("lanes_built", static_cast<uint64_t>(s.lanesBuilt));
    j.put("sat_conflicts", s.sat.conflicts);
    j.put("sat_decisions", s.sat.decisions);
    j.put("sat_propagations", s.sat.propagations);
    j.put("sat_learned_clauses", s.sat.learnedClauses);
    return j.str();
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n================================================="
                "=============\n%s\n"
                "=================================================="
                "============\n",
                title.c_str());
}

/** Paper-vs-measured note line (collected into EXPERIMENTS.md). */
inline void
paperNote(const std::string &paper, const std::string &measured)
{
    std::printf("  paper:    %s\n  measured: %s\n", paper.c_str(),
                measured.c_str());
}

/** Run RTL2MμPATH + SynthLC for a set of instructions on one harness. */
inline ct::AnalysisDb
analyzeInstructions(const designs::Harness &hx,
                    r2m::MuPathSynthesizer &synth, slc::SynthLc &slc,
                    const std::vector<std::string> &transponders,
                    const std::vector<std::string> &transmitters)
{
    ct::AnalysisDb db;
    db.hx = &hx;
    std::vector<uhb::InstrId> txm;
    for (const auto &t : transmitters)
        txm.push_back(hx.duv().instrId(t));
    std::vector<uhb::InstrId> ids;
    for (const auto &p : transponders)
        ids.push_back(hx.duv().instrId(p));
    // Cross-IUV parallel synthesis (exploration + independent covers run
    // through the engine pool up front).
    auto all = synth.synthesizeAll(ids);
    for (size_t i = 0; i < ids.size(); i++) {
        uhb::InstrId id = ids[i];
        std::printf("  analyzing %s ...\n", transponders[i].c_str());
        std::fflush(stdout);
        uhb::InstrPaths paths = std::move(all.at(id));
        auto sigs = slc.analyze(id, paths.decisions, txm);
        for (auto &s : sigs)
            db.signatures.push_back(std::move(s));
        db.paths[id] = std::move(paths);
    }
    return db;
}

} // namespace rmp::bench

#endif // BENCH_BENCH_UTIL_HH
